(* Benchmark & reproduction harness.

   For every table and figure of the paper this prints the corresponding
   reproduction (same rows/series, our measured values), and registers one
   Bechamel micro-benchmark for the computation that generates it:

     TABLE-1   area & standby leakage of the three techniques, circuits A/B
     FIG-1     MT-cell characterization (delay / leakage / area by flavour)
     FIG-2/3   conventional vs improved transform on the same logic
     FIG-4     the improved flow stage by stage
     ABLATION  the design-choice sweeps DESIGN.md calls out

   Sections are independent, so they run through the deterministic domain
   pool (SMT_JOBS controls the width): each section renders into its own
   buffer and the buffers are printed in input order, so stdout is the
   same at any job count. *)

module Netlist = Smt_netlist.Netlist
module Clone = Smt_netlist.Clone
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library
module Placement = Smt_place.Placement
module Sta = Smt_sta.Sta
module Equiv = Smt_sim.Equiv
module Flow = Smt_core.Flow
module Compare = Smt_core.Compare
module Cluster = Smt_core.Cluster
module Vth_assign = Smt_core.Vth_assign
module Mt_replace = Smt_core.Mt_replace
module Switch_insert = Smt_core.Switch_insert
module Suite = Smt_circuits.Suite
module Generators = Smt_circuits.Generators
module Text_table = Smt_util.Text_table
module Metrics = Smt_obs.Metrics
module Par = Smt_obs.Par
module Pool = Smt_util.Pool

let lib = Library.default ()
let tech = Library.tech lib

let bpf = Printf.bprintf

let bline buf s =
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

let bnl buf = Buffer.add_char buf '\n'

let section buf name =
  bpf buf "\n================ %s ================\n\n" name

(* ------------------------------------------------------------------ *)
(* TABLE 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 buf =
  section buf "TABLE-1: Comparison of three techniques";
  let rows =
    [
      Compare.table1_row (fun () -> Suite.circuit_a lib);
      Compare.table1_row (fun () -> Suite.circuit_b lib);
    ]
  in
  bline buf (Compare.render rows);
  bnl buf;
  bpf buf "paper reports:   A: 100%% / 164.84%% / 133.18%% area, 100%% / 14.58%% / 9.42%% leakage\n";
  bpf buf "                 B: 100%% / 142.22%% / 115.65%% area, 100%% / 19.42%% / 12.21%% leakage\n\n";
  List.iter
    (fun row ->
      let area_saving, leak_saving = Compare.improvement row in
      bpf buf
        "%s improved vs conventional: area -%.1f%%, leakage -%.1f%%  (paper: ~-20%%, ~-40%%)\n"
        row.Compare.circuit (100.0 *. area_saving) (100.0 *. leak_saving))
    rows;
  bnl buf;
  bline buf (Compare.render_details rows)

(* ------------------------------------------------------------------ *)
(* FIG 1: MT-cell characterization                                     *)
(* ------------------------------------------------------------------ *)

let fig1 buf =
  section buf "FIG-1: 2-input NAND MT-cell structure & characterization";
  let load = 8.0 in
  let flavours =
    [
      ("low-Vth (NAND2_LVT)", Library.variant lib Func.Nand2 Vth.Low Vth.Plain);
      ("high-Vth (NAND2_HVT)", Library.variant lib Func.Nand2 Vth.High Vth.Plain);
      ("MT embedded, Fig.1a (NAND2_MTE)", Library.variant lib Func.Nand2 Vth.Low Vth.Mt_embedded);
      ("MT + VGND port, Fig.1b (NAND2_MTV)", Library.variant lib Func.Nand2 Vth.Low Vth.Mt_vgnd);
    ]
  in
  let rows =
    List.map
      (fun (label, c) ->
        [
          label;
          Printf.sprintf "%.2f" (Cell.delay c ~load_ff:load);
          Printf.sprintf "%.3f" c.Cell.leak_standby;
          Printf.sprintf "%.2f" c.Cell.area;
          Printf.sprintf "%.1f" c.Cell.switch_width;
        ])
      flavours
  in
  bline buf
    (Text_table.render
       ~header:[ "Cell"; "Delay @8fF (ps)"; "Standby leak (nW)"; "Area (um^2)"; "Footer W" ]
       rows);
  let d name v = (name, v) in
  let get n = List.assoc n (List.map (fun (l, c) -> d l c) flavours) in
  let lv = get "low-Vth (NAND2_LVT)" and hv = get "high-Vth (NAND2_HVT)" in
  let mtv = get "MT + VGND port, Fig.1b (NAND2_MTV)" in
  bpf buf
    "\npaper's claims hold: MT faster than high-Vth (%.1f < %.1f ps), less standby leakage \
     than low-Vth (%.3f << %.3f nW)\n"
    (Cell.delay mtv ~load_ff:load) (Cell.delay hv ~load_ff:load) mtv.Cell.leak_standby
    lv.Cell.leak_standby

(* ------------------------------------------------------------------ *)
(* FIG 2/3: conventional vs improved circuit on the same logic        *)
(* ------------------------------------------------------------------ *)

let transform technique nl =
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  match technique with
  | `Conventional ->
    let n = Mt_replace.replace Mt_replace.Conventional nl in
    let mte = Switch_insert.mte_net_of nl in
    Netlist.iter_insts nl (fun iid ->
        let c = Netlist.cell nl iid in
        if Vth.style_equal c.Cell.style Vth.Mt_embedded && Netlist.pin_net nl iid "MTE" = None
        then Netlist.connect nl iid "MTE" mte);
    (n, n (* one embedded switch and holder per MT-cell *), n, nl)
  | `Improved ->
    let n = Mt_replace.replace Mt_replace.Improved nl in
    if n = 0 then (0, 0, 0, nl)
    else begin
      let place = Placement.place nl in
      let ins = Switch_insert.insert place in
      let act = Smt_sim.Activity.estimate ~cycles:64 nl in
      let built = Cluster.build ~activity:act place ~mte_net:ins.Switch_insert.mte_net in
      (n, List.length built.Cluster.clusters, ins.Switch_insert.holders_inserted, nl)
    end

let fig23 buf =
  section buf "FIG-2/3: conventional vs improved Selective-MT circuit";
  let run_on name gen =
    let con = gen () in
    let imp = gen () in
    let n_con, sw_con, hold_con, con = transform `Conventional con in
    let n_imp, sw_imp, hold_imp, imp = transform `Improved imp in
    let equivalent = n_con = 0 || Equiv.equivalent ~vectors:64 con imp in
    bpf buf "%-10s MT-cells=%d | Fig.2 conventional: %d switches, %d holders | \
             Fig.3 improved: %d shared switches, %d holders | equivalent=%b\n"
      name n_con sw_con hold_con sw_imp hold_imp equivalent;
    (n_imp, sw_imp, hold_imp)
  in
  let _ = run_on "fig23" (fun () -> Suite.fig23_example lib) in
  let n, sw, holders = run_on "mult8" (fun () -> Generators.multiplier ~name:"mult8" ~bits:8 lib) in
  bpf buf
    "\nthe improved circuit shares switches (%d cells over %d switches) and drops the \
     holders whose fanouts stay inside the MT domain (%d holders for %d MT-cells)\n"
    n sw holders n

(* ------------------------------------------------------------------ *)
(* FIG 4: the design flow, stage by stage                              *)
(* ------------------------------------------------------------------ *)

let fig4 buf =
  section buf "FIG-4: improved Selective-MT design flow on circuit A";
  let r = Flow.run Flow.Improved_smt (Suite.circuit_a lib) in
  bpf buf "clock period %.1f ps; final: wns=%.1f ps (met=%b), hold=%.1f ps (met=%b)\n\n"
    r.Flow.clock_period r.Flow.wns r.Flow.timing_met r.Flow.hold_slack r.Flow.hold_met;
  let rows =
    List.map
      (fun (s : Flow.stage) ->
        [
          s.Flow.stage_name;
          Printf.sprintf "%.0f" s.Flow.stage_area;
          Printf.sprintf "%.0f" s.Flow.stage_standby_nw;
          Printf.sprintf "%.1f" s.Flow.stage_wns;
          Printf.sprintf "%.4f" s.Flow.stage_worst_bounce;
          string_of_int s.Flow.stage_switches;
          string_of_int s.Flow.stage_holders;
        ])
      r.Flow.stages
  in
  bline buf
    (Text_table.render
       ~header:[ "Stage"; "Area"; "Standby nW"; "WNS ps"; "Bounce V"; "Sw"; "Holders" ]
       rows);
  bpf buf
    "\nnote the single initial switch violating the %.2f V bounce limit, repaired by the \
     clustering stage, and the post-route re-optimization absorbing the extraction error\n"
    tech.Tech.bounce_limit

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablation buf =
  section buf "ABLATION: design-choice sweeps (improved flow on circuit A)";
  let base = Flow.default_options in
  let run ?(options = base) () = Flow.run ~options Flow.Improved_smt (Suite.circuit_a lib) in
  let params = Cluster.default_params tech in
  (* bounce-limit sweep: the designer's knob *)
  bline buf "bounce-limit sweep:";
  let rows =
    List.map
      (fun limit ->
        let options =
          { base with Flow.cluster_params = Some { params with Cluster.bounce_limit = limit } }
        in
        let r = run ~options () in
        [
          Printf.sprintf "%.3f V" limit;
          Printf.sprintf "%.0f" r.Flow.area;
          Printf.sprintf "%.0f" r.Flow.standby_nw;
          string_of_int r.Flow.n_clusters;
          Printf.sprintf "%.1f" r.Flow.total_switch_width;
          Printf.sprintf "%.1f" r.Flow.wns;
        ])
      [ 0.04; 0.06; 0.08; 0.10; 0.14 ]
  in
  bline buf
    (Text_table.render
       ~header:[ "Bounce limit"; "Area"; "Standby nW"; "Clusters"; "Total W"; "WNS ps" ]
       rows);
  (* VGND length cap sweep: the crosstalk knob *)
  bline buf "\nVGND length cap sweep:";
  let rows =
    List.map
      (fun cap ->
        let options =
          { base with Flow.cluster_params = Some { params with Cluster.length_limit = cap } }
        in
        let r = run ~options () in
        [
          Printf.sprintf "%.0f um" cap;
          string_of_int r.Flow.n_clusters;
          Printf.sprintf "%.0f" r.Flow.area;
          Printf.sprintf "%.1f" r.Flow.total_switch_width;
        ])
      [ 30.0; 60.0; 120.0; 240.0 ]
  in
  bline buf
    (Text_table.render ~header:[ "Length cap"; "Clusters"; "Area"; "Total W" ] rows);
  (* EM cells-per-switch sweep *)
  bline buf "\nEM cells-per-switch cap sweep:";
  let rows =
    List.map
      (fun cap ->
        let options =
          { base with Flow.cluster_params = Some { params with Cluster.cell_limit = cap } }
        in
        let r = run ~options () in
        [
          string_of_int cap;
          string_of_int r.Flow.n_clusters;
          Printf.sprintf "%.0f" r.Flow.area;
          Printf.sprintf "%.0f" r.Flow.standby_nw;
        ])
      [ 4; 8; 16; 24; 48 ]
  in
  bline buf
    (Text_table.render ~header:[ "Cells/switch"; "Clusters"; "Area"; "Standby nW" ] rows);
  (* binary knobs *)
  bline buf "\nbinary design choices:";
  let knob name options =
    let r = run ~options () in
    [
      name;
      Printf.sprintf "%.0f" r.Flow.area;
      Printf.sprintf "%.0f" r.Flow.standby_nw;
      Printf.sprintf "%.1f" r.Flow.total_switch_width;
      string_of_int r.Flow.bounce_violations;
      string_of_int r.Flow.n_holders;
    ]
  in
  let rows =
    [
      knob "baseline (all on)" base;
      knob "no activity-diversity sizing"
        { base with Flow.cluster_params = Some { params with Cluster.diversity = false } };
      knob "no holder minimization" { base with Flow.minimize_holders = false };
      knob "no post-route re-optimization (detour 1.5)"
        { base with Flow.reoptimize = false; Flow.detour = 1.5 };
    ]
  in
  bline buf
    (Text_table.render
       ~header:[ "Variant"; "Area"; "Standby nW"; "Total W"; "Bounce viol"; "Holders" ]
       rows)

(* ------------------------------------------------------------------ *)
(* Extensions: corners, wake-up, retention, sizing                     *)
(* ------------------------------------------------------------------ *)

let extensions buf =
  section buf "EXTENSIONS: corners, wake-up cost, retention, gate sizing";
  (* leakage vs temperature per technique: why standby leakage is the
     battery killer precisely where phones live (warm pockets) *)
  bline buf "standby leakage vs temperature (circuit B, nW):";
  let reports = Flow.completed (Flow.run_all (fun () -> Suite.circuit_b lib)) in
  let temps = [ -40.0; 0.0; 25.0; 85.0; 125.0 ] in
  let header =
    "Technique" :: List.map (fun t -> Printf.sprintf "%.0fC" t) temps
  in
  let rows =
    List.map
      (fun (r : Flow.report) ->
        Flow.technique_name r.Flow.technique
        :: List.map
             (fun temp ->
               let corner = Smt_cell.Corner.make ~temperature_c:temp tech in
               let k = Smt_cell.Corner.leakage_factor tech corner in
               Printf.sprintf "%.0f" (r.Flow.standby_nw *. k))
             temps)
      reports
  in
  bline buf (Text_table.render ~header rows);
  (* wake-up cost vs cluster size: the trade-off that bounds sharing *)
  bline buf "\nwake-up cost vs cells-per-switch (improved transform of mult8):";
  let rows =
    List.map
      (fun cap ->
        let nl = Generators.multiplier ~name:"m8w" ~bits:8 lib in
        let probe = 1e6 in
        let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
        let period = (probe -. Sta.wns sta) *. 1.05 in
        ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
        ignore (Mt_replace.replace Mt_replace.Improved nl);
        let place = Placement.place nl in
        let ins = Switch_insert.insert place in
        let params = { (Cluster.default_params tech) with Cluster.cell_limit = cap } in
        let built = Cluster.build ~params place ~mte_net:ins.Switch_insert.mte_net in
        let wire_length_of = Cluster.vgnd_lengths place in
        let wake = Smt_power.Wakeup.analyze nl ~wire_length_of in
        [
          string_of_int cap;
          string_of_int (List.length built.Cluster.clusters);
          Printf.sprintf "%.1f" (Smt_power.Wakeup.worst_wake_time wake);
          Printf.sprintf "%.1f" (Smt_power.Wakeup.total_wake_energy wake);
        ])
      [ 2; 4; 8; 16; 24 ]
  in
  bline buf
    (Text_table.render
       ~header:[ "Cells/switch"; "Clusters"; "Worst wake (ps)"; "Wake energy (fJ)" ]
       rows);
  (* retention registers: removing the sequential leakage floor *)
  bline buf "\nretention registers (improved flow, circuit B):";
  let base = Flow.run Flow.Improved_smt (Suite.circuit_b lib) in
  let ret =
    Flow.run
      ~options:{ Flow.default_options with Flow.retention_registers = true }
      Flow.Improved_smt (Suite.circuit_b lib)
  in
  let row (r : Flow.report) label =
    [
      label;
      Printf.sprintf "%.0f" r.Flow.area;
      Printf.sprintf "%.0f" r.Flow.standby_nw;
      Printf.sprintf "%.0f" r.Flow.leakage.Smt_power.Leakage.sequential;
      string_of_int r.Flow.ffs_retained;
    ]
  in
  bline buf
    (Text_table.render
       ~header:[ "Variant"; "Area"; "Standby nW"; "FF leak nW"; "FFs retained" ]
       [ row base "plain flip-flops"; row ret "retention flip-flops" ]);
  (* the Table-1 shape is robust to the timing model: rerun circuit B under
     the NLDM slew-aware engine *)
  bline buf "\nTable 1 (circuit B) under the NLDM slew-aware timing model:";
  let nldm_row =
    Compare.table1_row
      ~options:{ Flow.default_options with Flow.slew_aware = true }
      (fun () -> Suite.circuit_b lib)
  in
  bline buf (Compare.render [ nldm_row ]);
  (* statistical leakage under process variation *)
  bline buf "\nstandby leakage under process variation (circuit B, 500 samples, sigma 0.35):";
  let nl_by_tech =
    List.map
      (fun technique ->
        let nl = Suite.circuit_b lib in
        ignore (Flow.run technique nl);
        (technique, nl))
      [ Flow.Dual_vth; Flow.Conventional_smt; Flow.Improved_smt ]
  in
  let rows =
    List.map
      (fun (technique, nl) ->
        let s = Smt_power.Variation.sample_standby nl in
        [
          Flow.technique_name technique;
          Printf.sprintf "%.0f" s.Smt_power.Variation.deterministic;
          Printf.sprintf "%.0f" s.Smt_power.Variation.mean;
          Printf.sprintf "%.0f" s.Smt_power.Variation.p95;
          Printf.sprintf "%.1f%%"
            (100.0 *. s.Smt_power.Variation.stddev /. s.Smt_power.Variation.mean);
        ])
      nl_by_tech
  in
  bline buf
    (Text_table.render
       ~header:[ "Technique"; "Nominal nW"; "Mean nW"; "P95 nW"; "Rel sigma" ]
       rows);
  (* gate sizing on an X2-mapped netlist *)
  bline buf "\ngate sizing (X2-mapped mult8, Dual-Vth flow):";
  let x2_mult () =
    let nl = Generators.multiplier ~name:"m8x2" ~bits:8 lib in
    Smt_netlist.Netlist.iter_insts nl (fun iid ->
        let c = Smt_netlist.Netlist.cell nl iid in
        if Library.has_variant ~drive:2 lib c.Cell.kind c.Cell.vth c.Cell.style then
          Smt_netlist.Netlist.replace_cell nl iid (Library.resize lib c 2));
    nl
  in
  let unsized = Flow.run Flow.Dual_vth (x2_mult ()) in
  let sized =
    Flow.run ~options:{ Flow.default_options with Flow.gate_sizing = true } Flow.Dual_vth
      (x2_mult ())
  in
  let row (r : Flow.report) label =
    [
      label;
      Printf.sprintf "%.0f" r.Flow.area;
      Printf.sprintf "%.0f" r.Flow.standby_nw;
      string_of_int r.Flow.cells_downsized;
      Printf.sprintf "%.1f" r.Flow.wns;
    ]
  in
  bline buf
    (Text_table.render
       ~header:[ "Variant"; "Area"; "Standby nW"; "Downsized"; "WNS ps" ]
       [ row unsized "as mapped (X2)"; row sized "with drive recovery" ])

(* ------------------------------------------------------------------ *)
(* System: router-measured detours, sleep protocol, power domains      *)
(* ------------------------------------------------------------------ *)

let system buf =
  section buf "SYSTEM: measured routing detour, sleep protocol, power domains";
  (* circuit inventory *)
  bline buf "circuit inventory (improved flow on each):";
  let rows =
    List.filter_map
      (fun (name, g) ->
        let nl = g lib in
        let stats0 = Smt_netlist.Nl_stats.compute nl in
        if Netlist.clock_net nl = None then None
        else begin
          let r = Flow.run Flow.Improved_smt nl in
          Some
            [
              name;
              string_of_int stats0.Smt_netlist.Nl_stats.instances;
              string_of_int stats0.Smt_netlist.Nl_stats.sequential;
              Printf.sprintf "%.0f" r.Flow.clock_period;
              string_of_int r.Flow.n_mt_cells;
              Printf.sprintf "%.0f" r.Flow.standby_nw;
              (if r.Flow.timing_met then "met" else "VIOLATED");
            ]
        end)
      Suite.all
  in
  bline buf
    (Text_table.render
       ~header:[ "Circuit"; "Insts"; "FFs"; "Clock ps"; "MT cells"; "Standby nW"; "Timing" ]
       rows);
  bnl buf;
  (* the detour factor the flow assumes (1.15), measured by the router *)
  let nl = Generators.multiplier ~name:"m8sys" ~bits:8 lib in
  let place = Placement.place nl in
  let routed = Smt_route.Global_router.route place in
  bpf buf
    "global router on mult8: %d nets, %.0f um routed, overflow %d edges, max congestion \
     %.2f, measured detour factor %.3f (flow assumes 1.15)\n\n"
    (Smt_route.Global_router.routed_nets routed)
    (Smt_route.Global_router.total_length routed)
    (Smt_route.Global_router.overflow routed)
    (Smt_route.Global_router.max_congestion routed)
    (Smt_route.Global_router.detour_factor routed place);
  (* sleep protocol on the finished improved block *)
  let nl = Generators.multiplier ~name:"m8sp" ~bits:8 lib in
  let report = Flow.run Flow.Improved_smt nl in
  let o = Smt_core.Standby.simulate nl in
  bpf buf
    "sleep protocol (improved mult8): state preserved %b | outputs held %b | X leaks %d | \
     wake-up correct from cycle 1 %b | MTE tree delay %.1f ps\n\n"
    o.Smt_core.Standby.state_preserved o.Smt_core.Standby.outputs_defined_in_standby
    o.Smt_core.Standby.x_leaks_into_awake_logic o.Smt_core.Standby.first_wake_cycle_correct
    (Smt_core.Standby.mte_tree_delay
       (Sta.config ~clock_period:report.Flow.clock_period ())
       nl);
  (* power domains: the partial-standby states a single MTE cannot express *)
  let nl = Generators.multiplier ~name:"m8pd" ~bits:8 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
  ignore (Mt_replace.replace Mt_replace.Improved nl);
  let place = Placement.place nl in
  ignore (Switch_insert.insert place);
  let d = Smt_core.Domains.partition ~domains:2 place in
  bline buf "two power domains on mult8:";
  let rows =
    List.map
      (fun (label, asleep) ->
        [ label; Printf.sprintf "%.1f" (Smt_core.Domains.standby_leakage d ~asleep) ])
      [
        ("all awake", []); ("domain 0 asleep", [ 0 ]); ("domain 1 asleep", [ 1 ]);
        ("full standby", [ 0; 1 ]);
      ]
  in
  bline buf (Text_table.render ~header:[ "State"; "Leakage nW" ] rows);
  (* sleep-vector selection: the state of the cells left powered matters *)
  let nl_sv = Generators.multiplier ~name:"m8sv" ~bits:8 lib in
  ignore (Flow.run Flow.Dual_vth nl_sv);
  let sv = Smt_power.Sleep_vector.search ~tries:64 nl_sv in
  bpf buf
    "\nsleep-vector search (Dual-Vth mult8, 64 vectors): best %.0f nW, average %.0f nW, \
     worst %.0f nW — parking the inputs well saves %.1f%% of standby leakage for free\n\n"
    sv.Smt_power.Sleep_vector.best_nw sv.Smt_power.Sleep_vector.average_nw
    sv.Smt_power.Sleep_vector.worst_nw
    (100.0
    *. (sv.Smt_power.Sleep_vector.worst_nw -. sv.Smt_power.Sleep_vector.best_nw)
    /. sv.Smt_power.Sleep_vector.worst_nw);
  (* VGND lengths measured on the congestion map vs the assumed detour *)
  let nl_vg = Generators.multiplier ~name:"m8vg" ~bits:8 lib in
  let sta_vg = Sta.analyze (Sta.config ~clock_period:probe ()) nl_vg in
  let period_vg = (probe -. Sta.wns sta_vg) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period_vg ()) nl_vg);
  ignore (Mt_replace.replace Mt_replace.Improved nl_vg);
  let place_vg = Placement.place nl_vg in
  let ins_vg = Switch_insert.insert place_vg in
  ignore (Cluster.build place_vg ~mte_net:ins_vg.Switch_insert.mte_net);
  let routed_vg = Smt_route.Global_router.route place_vg in
  let vgnd_len = Cluster.vgnd_lengths place_vg in
  let assumed = ref 0.0 and measured = ref 0.0 in
  List.iter
    (fun (sw, members) ->
      let pts =
        List.filter_map (fun m -> Placement.inst_point_opt place_vg m) members
        @ (match Placement.inst_point_opt place_vg sw with Some p -> [ p ] | None -> [])
      in
      assumed := !assumed +. (vgnd_len sw *. 1.15);
      measured := !measured +. Smt_route.Global_router.congested_length routed_vg pts)
    (Netlist.switch_groups nl_vg);
  bpf buf
    "VGND line lengths, all clusters (mult8): assumed %.0f um (spanning x1.15) vs \
     congestion-measured %.0f um\n\n"
    !assumed !measured;
  (* multi-corner sign-off of the finished improved block *)
  bline buf "\nmulti-corner sign-off (improved mult8):";
  let nl_so = Generators.multiplier ~name:"m8so" ~bits:8 lib in
  let rep_so = Flow.run Flow.Improved_smt nl_so in
  let so =
    Smt_core.Signoff.run (Sta.config ~clock_period:rep_so.Flow.clock_period ()) nl_so
  in
  bline buf (Smt_core.Signoff.render so);
  (* scalability of the flow infrastructure *)
  bline buf "\nflow scalability (improved flow on multipliers):";
  let evals = Metrics.counter "sta.arrival_evals" in
  let rows =
    List.map
      (fun bits ->
        let nl = Generators.multiplier ~name:(Printf.sprintf "m%dsc" bits) ~bits lib in
        let t0 = Unix.gettimeofday () in
        let e0 = Metrics.counter_value evals in
        let r = Flow.run Flow.Improved_smt nl in
        let dt = Unix.gettimeofday () -. t0 in
        let e1 = Metrics.counter_value evals in
        let stats = Smt_netlist.Nl_stats.compute nl in
        [
          Printf.sprintf "mult%d" bits;
          string_of_int stats.Smt_netlist.Nl_stats.instances;
          string_of_int r.Flow.n_mt_cells;
          string_of_int r.Flow.n_clusters;
          Printf.sprintf "%.0f ms" (dt *. 1000.0);
          string_of_int (e1 - e0);
          (if r.Flow.timing_met then "met" else "VIOLATED");
        ])
      [ 4; 8; 12; 16 ]
  in
  bline buf
    (Text_table.render
       ~header:
         [ "Circuit"; "Instances"; "MT cells"; "Clusters"; "Flow time"; "STA evals"; "Timing" ]
       rows);
  (* the all-MT strawman, apples to apples: identical mini-pipelines
     (Vth assignment -> replacement -> insertion -> clustering), the only
     difference being whether high-Vth survivors are gated too *)
  bline buf "\nall-MT comparison point (identical pipelines on mult8):";
  let mini ~all name =
    let nl = Generators.multiplier ~name ~bits:8 lib in
    let sta0 = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
    let period = (probe -. Sta.wns sta0) *. 1.05 in
    ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
    let n =
      if all then Mt_replace.replace_all Mt_replace.Improved nl
      else Mt_replace.replace Mt_replace.Improved nl
    in
    let place = Placement.place nl in
    let ins = Switch_insert.insert place in
    let act = Smt_sim.Activity.estimate ~cycles:64 nl in
    ignore (Cluster.build ~activity:act place ~mte_net:ins.Switch_insert.mte_net);
    let stats = Smt_netlist.Nl_stats.compute nl in
    let leak = (Smt_power.Leakage.standby nl).Smt_power.Leakage.total in
    let wakes =
      Smt_power.Wakeup.analyze nl ~wire_length_of:(Cluster.vgnd_lengths place)
    in
    let wake = Smt_power.Wakeup.worst_wake_time wakes in
    let rush =
      List.fold_left (fun acc w -> acc +. w.Smt_power.Wakeup.rush_current_ua) 0.0 wakes
    in
    let energy = Smt_power.Wakeup.total_wake_energy wakes in
    [
      (if all then "all-MT" else "improved Selective-MT");
      string_of_int n;
      Printf.sprintf "%.0f" stats.Smt_netlist.Nl_stats.area_total;
      Printf.sprintf "%.0f" leak;
      string_of_int stats.Smt_netlist.Nl_stats.holders;
      Printf.sprintf "%.0f" wake;
      Printf.sprintf "%.0f" rush;
      Printf.sprintf "%.0f" energy;
    ]
  in
  bline buf
    (Text_table.render
       ~header:
         [ "Style"; "MT cells"; "Area"; "Standby nW"; "Holders"; "Wake ps"; "Rush uA";
           "Wake fJ" ]
       [ mini ~all:false "m8sel"; mini ~all:true "m8all" ]);
  bline buf
    "(gating everything buys a few percent of leakage but gates twice the cells:\n\
     more area, a larger wake-up charge and rush-current surge — for logic that\n\
     barely leaked. That asymmetry is the 'selective' in Selective-MT.)"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table / figure         *)
(* ------------------------------------------------------------------ *)

let bechamel_benches buf =
  section buf "BECHAMEL: runtime of each experiment's generator";
  let open Bechamel in
  let open Toolkit in
  (* Named workloads, used twice: once instrumented (counter deltas per
     single run) and once under the bechamel timer. *)
  let workload_table1 () = ignore (Flow.run Flow.Improved_smt (Suite.circuit_a lib)) in
  let workload_fig1 () =
    List.iter
      (fun kind ->
        ignore (Cell.delay (Library.variant lib kind Vth.Low Vth.Mt_vgnd) ~load_ff:8.0))
      Library.comb_kinds
  in
  let workload_fig23 () =
    ignore (transform `Improved (Generators.multiplier ~name:"m8b" ~bits:8 lib))
  in
  let workload_fig4 () = ignore (Flow.run Flow.Improved_smt (Suite.circuit_b lib)) in
  let workload_ablation =
    let nl = Generators.multiplier ~name:"m8c" ~bits:8 lib in
    let probe = 1e6 in
    let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl in
    let period = (probe -. Sta.wns sta) *. 1.05 in
    ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl);
    ignore (Mt_replace.replace Mt_replace.Improved nl);
    let place = Placement.place nl in
    let ins = Switch_insert.insert place in
    fun () -> ignore (Cluster.build place ~mte_net:ins.Switch_insert.mte_net)
  in
  let workloads =
    [
      ("table1-improved-flow-circuit-a", workload_table1);
      ("fig1-cell-characterization", workload_fig1);
      ("fig23-improved-transform-mult8", workload_fig23);
      ("fig4-staged-flow-circuit-b", workload_fig4);
      ("ablation-cluster-build-mult8", workload_ablation);
    ]
  in
  (* What each benchmark actually does, from the observability registry:
     the counters that moved during one run of the workload. *)
  let tracked =
    [
      ("sta.analyses", "STA runs");
      ("sta.arrival_evals", "Arrival evals");
      ("place.iterations", "Place iters");
      ("cluster.clusters_formed", "Clusters");
      ("eco.hold_buffers_added", "ECO bufs");
    ]
  in
  let counter_value name = Metrics.counter_value (Metrics.counter name) in
  (* Arrival-evals per timing update, as quantiles of the sta.update_evals
     histogram.  Read as before/after hit-count deltas so each row is the
     distribution of that workload's own updates — identical whether the
     section runs on a fresh worker store or inline on the shared one. *)
  let h_update = Metrics.histogram "sta.update_evals" in
  let instrumented =
    List.map
      (fun (name, f) ->
        let before = List.map (fun (c, _) -> counter_value c) tracked in
        let hits0 = Metrics.histogram_hits h_update in
        f ();
        let after = List.map (fun (c, _) -> counter_value c) tracked in
        let hits = Array.map2 ( - ) (Metrics.histogram_hits h_update) hits0 in
        let counters =
          name :: List.map2 (fun a b -> string_of_int (a - b)) after before
        in
        let updates = Array.fold_left ( + ) 0 hits in
        let q p =
          if updates = 0 then "-"
          else Printf.sprintf "%.0f" (Metrics.quantile_of_hits h_update hits p)
        in
        (counters, [ name; string_of_int updates; q 0.5; q 0.9; q 0.99 ]))
      workloads
  in
  let counter_rows = List.map fst instrumented in
  bline buf "per-benchmark counters (one untimed run each):";
  bline buf
    (Text_table.render ~header:("Benchmark" :: List.map snd tracked) counter_rows);
  bnl buf;
  bline buf "arrival evals per STA update (same untimed runs):";
  bline buf
    (Text_table.render
       ~header:[ "Benchmark"; "Updates"; "Evals p50"; "Evals p90"; "Evals p99" ]
       (List.map snd instrumented));
  bnl buf;
  let test =
    Test.make_grouped ~name:"selective-mt"
      (List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) workloads)
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let time_ns =
        match Analyze.OLS.estimates result with Some (t :: _) -> t | Some [] | None -> nan
      in
      rows := [ name; Printf.sprintf "%.3f ms" (time_ns /. 1e6) ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  bline buf (Text_table.render ~header:[ "Benchmark"; "Time per run" ] rows)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(* Each section's counter readout is the delta its own work produced, not
   the accumulation of everything before it. Computing before/after deltas
   (instead of resetting the registry per section) gives the same numbers
   whether sections run sequentially or spread across pool workers, where
   each job already starts against a fresh domain-local store. *)
let run_sections ~jobs sections =
  let run_one (name, f) =
    let before = Metrics.counters () in
    let buf = Buffer.create 8192 in
    f buf;
    let after = Metrics.counters () in
    let delta =
      List.filter_map
        (fun (c, v) ->
          let v0 = Option.value (List.assoc_opt c before) ~default:0 in
          if v - v0 <> 0 then Some (c, v - v0) else None)
        after
    in
    (name, Buffer.contents buf, delta)
  in
  Par.map ~jobs run_one sections

let sections_json per_section =
  let module J = Smt_obs.Obs_json in
  J.obj
    (List.map
       (fun (name, _, counters) ->
         ( name,
           J.obj
             (List.map (fun (c, v) -> (c, string_of_int v))
                (List.sort compare counters)) ))
       per_section)

let () =
  let jobs = Pool.default_jobs () in
  let per_section =
    run_sections ~jobs
      [
        ("table1", table1);
        ("fig1", fig1);
        ("fig23", fig23);
        ("fig4", fig4);
        ("ablation", ablation);
        ("extensions", extensions);
        ("system", system);
        ("bechamel", bechamel_benches);
      ]
  in
  (* Buffers print in input order: stdout is identical at any job count. *)
  List.iter (fun (_, out, _) -> print_string out) per_section;
  (* SMT_METRICS=FILE dumps one counter object per section — regression
     tracking of how much work each reproduction does, not just how long. *)
  (match Sys.getenv_opt "SMT_METRICS" with
  | Some path ->
    Smt_obs.Obs_json.to_file path (sections_json per_section);
    Printf.eprintf "per-section metrics written to %s\n%!" path
  | None -> ());
  (* Freeze the QoR snapshot the regression gate compares against
     (SMT_BENCH_OUT overrides the path). *)
  let bench_out =
    Option.value (Sys.getenv_opt "SMT_BENCH_OUT") ~default:"BENCH_seed.json"
  in
  Metrics.reset ();
  let snap = Smt_core.Qor.collect ~jobs ~tag:"seed" () in
  Smt_obs.Snapshot.write bench_out snap;
  Printf.eprintf "QoR snapshot (%d workloads) written to %s\n%!"
    (List.length snap.Smt_obs.Snapshot.s_workloads)
    bench_out;
  print_newline ();
  print_endline "all reproduction sections complete."
