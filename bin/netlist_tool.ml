(* Netlist utility: inspect, validate, optimize, diff, and export.

     netlist_tool gen -c mult8 -o mult8.v          # generate & dump
     netlist_tool stats mult8.v
     netlist_tool validate mult8.v --post-mt
     netlist_tool optimize mult8.v -o slim.v
     netlist_tool equiv mult8.v slim.v
     netlist_tool liberty -o cells.lib
     netlist_tool route -c circuit_a               # congestion snapshot *)

module Netlist = Smt_netlist.Netlist
module Parser = Smt_netlist.Parser
module Writer = Smt_netlist.Writer
module Check = Smt_check.Drc
module Nl_stats = Smt_netlist.Nl_stats
module Optimize = Smt_netlist.Optimize
module Equiv = Smt_sim.Equiv
module Placement = Smt_place.Placement
module Global_router = Smt_route.Global_router
module Library = Smt_cell.Library
module Suite = Smt_circuits.Suite

open Cmdliner

let lib = Library.default ()

let load path = Parser.of_file ~lib path

let file_arg n doc = Arg.(required & pos n (some file) None & info [] ~doc)

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")

let circuit_arg =
  Arg.(value & opt string "mult8" & info [ "c"; "circuit" ] ~doc:"Generator name.")

let post_mt_arg =
  Arg.(value & flag & info [ "post-mt" ] ~doc:"Apply the post-MT validation rules.")

let emit out text =
  match out with
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
    Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  | None -> print_string text

let gen_cmd =
  let run circuit out =
    match List.assoc_opt circuit Suite.all with
    | None ->
      Printf.eprintf "unknown circuit %s\n" circuit;
      exit 2
    | Some g -> emit out (Writer.to_string (g lib))
  in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a circuit and dump it")
    Term.(const run $ circuit_arg $ out_arg)

let stats_cmd =
  let run path =
    let nl = load path in
    Format.printf "%a@." Nl_stats.pp (Nl_stats.compute nl)
  in
  Cmd.v (Cmd.info "stats" ~doc:"Composition statistics of a netlist file")
    Term.(const run $ file_arg 0 "Netlist file.")

let validate_cmd =
  let run path post_mt =
    let nl = load path in
    let phase = if post_mt then Check.Post_mt else Check.Pre_mt in
    match Check.validate ~phase nl with
    | [] ->
      print_endline "ok";
      exit 0
    | problems ->
      List.iter print_endline problems;
      exit 1
  in
  Cmd.v (Cmd.info "validate" ~doc:"Structural validation")
    Term.(const run $ file_arg 0 "Netlist file." $ post_mt_arg)

let optimize_cmd =
  let run path out =
    let nl = load path in
    let r = Optimize.run nl in
    Printf.printf "removed %d dead cells, collapsed %d buffers (%d iterations)\n"
      r.Optimize.dead_removed r.Optimize.buffers_collapsed r.Optimize.iterations;
    emit out (Writer.to_string nl)
  in
  Cmd.v (Cmd.info "optimize" ~doc:"Dead-logic removal and buffer collapsing")
    Term.(const run $ file_arg 0 "Netlist file." $ out_arg)

let equiv_cmd =
  let run a b =
    let na = load a and nb = load b in
    match Equiv.check na nb with
    | Equiv.Equivalent ->
      print_endline "equivalent";
      exit 0
    | Equiv.Mismatch { output; _ } ->
      Printf.printf "NOT equivalent (first mismatch on output %s)\n" output;
      exit 1
  in
  Cmd.v (Cmd.info "equiv" ~doc:"Simulation-based equivalence check of two netlists")
    Term.(const run $ file_arg 0 "First netlist." $ file_arg 1 "Second netlist.")

let liberty_cmd =
  let run out = emit out (Smt_cell.Liberty.to_string lib) in
  Cmd.v (Cmd.info "liberty" ~doc:"Export the cell library as .lib text")
    Term.(const run $ out_arg)

let route_cmd =
  let run circuit =
    match List.assoc_opt circuit Suite.all with
    | None ->
      Printf.eprintf "unknown circuit %s\n" circuit;
      exit 2
    | Some g ->
      let nl = g lib in
      let place = Placement.place nl in
      let r = Global_router.route place in
      Printf.printf
        "%s: %d nets routed, %.0f um total, overflow %d, max congestion %.2f, detour %.3f\n"
        circuit (Global_router.routed_nets r) (Global_router.total_length r)
        (Global_router.overflow r)
        (Global_router.max_congestion r)
        (Global_router.detour_factor r place)
  in
  Cmd.v (Cmd.info "route" ~doc:"Global-routing congestion snapshot of a generated circuit")
    Term.(const run $ circuit_arg)

let sdf_cmd =
  let run path out =
    let nl = load path in
    let probe = 1e6 in
    let sta0 = Smt_sta.Sta.analyze (Smt_sta.Sta.config ~clock_period:probe ()) nl in
    let period = (probe -. Smt_sta.Sta.wns sta0) *. 1.1 in
    let sta = Smt_sta.Sta.analyze (Smt_sta.Sta.config ~clock_period:period ()) nl in
    emit out (Smt_sta.Sdf.to_string ~t:sta ~design:(Netlist.design_name nl))
  in
  Cmd.v (Cmd.info "sdf" ~doc:"Export analyzed delays as SDF")
    Term.(const run $ file_arg 0 "Netlist file." $ out_arg)

let json_cmd =
  let run circuit out =
    match List.assoc_opt circuit Suite.all with
    | None ->
      Printf.eprintf "unknown circuit %s\n" circuit;
      exit 2
    | Some g ->
      let row = Smt_core.Compare.table1_row (fun () -> g lib) in
      emit out (Smt_core.Report_json.of_rows [ row ])
  in
  Cmd.v (Cmd.info "json" ~doc:"Table-1 comparison of a circuit as JSON")
    Term.(const run $ circuit_arg $ out_arg)

let main =
  Cmd.group
    (Cmd.info "netlist_tool" ~version:"1.0.0" ~doc:"Netlist utilities for the Selective-MT flow")
    [
      gen_cmd; stats_cmd; validate_cmd; optimize_cmd; equiv_cmd; liberty_cmd; route_cmd;
      sdf_cmd; json_cmd;
    ]

let () = exit (Cmd.eval main)
