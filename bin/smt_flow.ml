(* Command-line driver for the Selective-MT design flows.

   Examples:
     smt_flow run -c circuit_a -t improved
     smt_flow run -c circuit_b -t dual --bounce-limit 0.08
     smt_flow run -c circuit_a -t improved --guard strict
     smt_flow table1
     smt_flow list
     smt_flow stages -c circuit_a
     smt_flow check -c circuit_a -t improved
     smt_flow check -c circuit_a -t improved --fault drop-switch --repair
     smt_flow lint -t improved --jobs 4 --format sarif
     smt_flow lint -c circuit_a --waivers waivers.txt --sarif lint.sarif

   Exit codes: 0 clean, 1 Error-severity violations (check, or run with a
   guard enabled), 2 usage errors. *)

module Flow = Smt_core.Flow
module Cluster = Smt_core.Cluster
module Suite = Smt_circuits.Suite
module Library = Smt_cell.Library
module Tech = Smt_cell.Tech
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Obs_log = Smt_obs.Log
module Drc = Smt_check.Drc
module Repair = Smt_check.Repair
module Violation = Smt_check.Violation
module Fault = Smt_fault.Fault
module Verify = Smt_verify.Verify
module Rules = Smt_verify.Rules
module Waiver = Smt_verify.Waiver
module Sarif = Smt_verify.Sarif
module Prof = Smt_obs.Prof
module Ledger = Smt_obs.Ledger
module Trend = Smt_obs.Trend
module Flame = Smt_obs.Flame
module J = Smt_obs.Obs_json
module Cjob = Smt_campaign.Job
module Ckpt = Smt_campaign.Checkpoint
module Cman = Smt_campaign.Manifest
module Csup = Smt_campaign.Supervisor
module Cmerge = Smt_campaign.Merge
module Ctele = Smt_campaign.Telemetry
module Cheart = Smt_campaign.Heartbeat

open Cmdliner

let version = "1.0.0"
let tool = "smt_flow " ^ version

let lib () = Library.default ()

(* --- observability flags, shared by every subcommand --- *)

type obs = {
  obs_trace : string option;
  obs_metrics : string option;
  obs_profile : bool;
  obs_ledger : string option;
}

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span per flow stage and write a Chrome trace_event JSON to $(docv) \
           (open in Perfetto or about://tracing).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write the metrics registry (counters, gauges, histograms) as JSON to $(docv).")

let log_level_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-level" ] ~docv:"LVL"
        ~doc:"Stderr log level: debug|info|warn|error|off.  Overrides the SMT_LOG \
              environment variable.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Attribute GC/heap cost (minor/major words, collections, peak heap) to each \
           flow stage; surfaces as prof.* gauges, a per-stage column block in reports, \
           and the ledger's per-stage attribution.")

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Append one provenance + QoR record per completed invocation to this JSONL \
           run ledger (default: the SMT_LEDGER environment variable).  Implies \
           $(b,--profile).")

let obs_term =
  let setup trace metrics log_level profile ledger =
    (match log_level with
    | None -> ()
    | Some s -> (
      match Obs_log.level_of_string s with
      | Ok l -> Obs_log.set_level l
      | Error e ->
        prerr_endline e;
        exit 2));
    if trace <> None then Trace.enable ();
    let ledger = match ledger with Some _ as l -> l | None -> Ledger.default_path () in
    let profile = profile || ledger <> None in
    if profile then Prof.enable ();
    { obs_trace = trace; obs_metrics = metrics; obs_profile = profile; obs_ledger = ledger }
  in
  Term.(const setup $ trace_arg $ metrics_arg $ log_level_arg $ profile_arg $ ledger_arg)

(* Flush the requested observability outputs after the command body ran. *)
let finish obs =
  (match obs.obs_trace with
  | Some path ->
    Trace.write path;
    Printf.eprintf "trace written to %s (%d spans)\n%!" path (List.length (Trace.events ()))
  | None -> ());
  match obs.obs_metrics with
  | Some path ->
    Metrics.write path;
    Printf.eprintf "metrics written to %s\n%!" path
  | None -> ()

(* Append one provenance+QoR record for a completed invocation.  Only
   completed work reaches the ledger — aborted flows leave no record, and
   the truncated line of a crashed append is tolerated by the reader. *)
let ledger_append obs ~kind ?(tag = "") ?(circuit = "-") ?(technique = "-")
    ?(guard = "off") ?(jobs = 1) workloads =
  match obs.obs_ledger with
  | None -> ()
  | Some path ->
    let r =
      Ledger.make ~time:(Ledger.clock ()) ~tool ~tag ~circuit ~technique ~guard ~jobs
        ~args:(List.tl (Array.to_list Sys.argv))
        ~kind workloads
    in
    Ledger.append path r;
    Printf.eprintf "ledger: appended record %s to %s\n%!" r.Ledger.r_id path

(* The run-ledger form of one completed flow report: QoR fields, counter
   deltas over the run, stage wall-clock, and — when profiling — the
   per-stage GC attribution. *)
let ledger_workload_of_report ~name ~before (r : Flow.report) =
  let workload =
    Smt_obs.Snapshot.workload ~name
      ~qor:(Smt_core.Qor.qor_of r)
      ~counters:(Smt_core.Qor.counter_delta ~before ~after:(Metrics.counters ()))
      ~stage_ms:
        (List.map (fun (s : Flow.stage) -> (s.Flow.stage_name, s.Flow.stage_ms)) r.Flow.stages)
  in
  {
    Ledger.lw_workload = workload;
    Ledger.lw_prof =
      List.filter_map
        (fun (s : Flow.stage) ->
          Option.map (fun p -> (s.Flow.stage_name, p)) s.Flow.stage_prof)
        r.Flow.stages;
  }

let generator_of name =
  match List.assoc_opt name Suite.all with
  | Some g -> Ok g
  | None ->
    Error
      (Printf.sprintf "unknown circuit %s (try: %s)" name
         (String.concat ", " (List.map fst Suite.all)))

let technique_of = function
  | "dual" | "dual-vth" -> Ok Flow.Dual_vth
  | "conventional" | "con" -> Ok Flow.Conventional_smt
  | "improved" | "imp" -> Ok Flow.Improved_smt
  | s -> Error (Printf.sprintf "unknown technique %s (dual|conventional|improved)" s)

let circuit_arg =
  Arg.(value & opt string "circuit_a" & info [ "c"; "circuit" ] ~doc:"Circuit name.")

let technique_arg =
  Arg.(value & opt string "improved" & info [ "t"; "technique" ] ~doc:"dual|conventional|improved.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the independent flow runs (default: the SMT_JOBS \
           environment variable, else the recommended domain count).  Results, QoR \
           fields, and work counters are identical at any job count.")

let jobs_of = function
  | Some n when n >= 1 -> n
  | Some n ->
    Printf.eprintf "--jobs must be >= 1 (got %d)\n" n;
    exit 2
  | None -> Smt_util.Pool.default_jobs ()

let bounce_arg =
  Arg.(value & opt (some float) None & info [ "bounce-limit" ] ~doc:"VGND bounce limit (V).")

let length_arg =
  Arg.(value & opt (some float) None & info [ "vgnd-length" ] ~doc:"VGND length cap (um).")

let cells_arg =
  Arg.(value & opt (some int) None & info [ "cells-per-switch" ] ~doc:"EM cap on cells per switch.")

let retention_arg =
  Arg.(value & flag & info [ "retention" ] ~doc:"Convert slack-rich flip-flops to retention flip-flops.")

let sizing_arg =
  Arg.(value & flag & info [ "gate-sizing" ] ~doc:"Downsize off-critical cells after the Vth assignment.")

let options_of ?(retention = false) ?(sizing = false) seed bounce length cells =
  let tech = Tech.default in
  let p = Cluster.default_params tech in
  let p =
    {
      p with
      Cluster.bounce_limit = Option.value bounce ~default:p.Cluster.bounce_limit;
      Cluster.length_limit = Option.value length ~default:p.Cluster.length_limit;
      Cluster.cell_limit = Option.value cells ~default:p.Cluster.cell_limit;
    }
  in
  {
    Flow.default_options with
    Flow.seed;
    Flow.cluster_params = Some p;
    Flow.retention_registers = retention;
    Flow.gate_sizing = sizing;
  }

let emit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~doc:"Write the transformed netlist to this file.")

let guard_arg =
  Arg.(
    value & opt string "off"
    & info [ "guard" ] ~docv:"MODE"
        ~doc:
          "Per-stage structural checking: off|warn|repair|strict.  warn records \
           violations in the report, repair also fixes the repairable ones, strict \
           aborts on the first Error.  Any mode other than off makes the command exit 1 \
           when Error-severity violations remain.")

let guard_of s =
  match Flow.guard_of_string s with
  | Ok g -> g
  | Error e ->
    prerr_endline e;
    exit 2

let print_diagnostics (report : Flow.report) =
  if report.Flow.diagnostics <> [] then begin
    Printf.printf "guard diagnostics (%d violations, %d repairs%s):\n"
      report.Flow.check_violations report.Flow.check_repairs
      (if report.Flow.degraded then ", DEGRADED" else "");
    List.iter (fun d -> Printf.printf "  %s\n" d) report.Flow.diagnostics
  end

let run_cmd =
  let run obs circuit technique seed bounce length cells retention sizing emit guard =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let guard = guard_of guard in
      let options =
        { (options_of ~retention ~sizing seed bounce length cells) with Flow.guard }
      in
      let nl = gen (lib ()) in
      let before = Metrics.counters () in
      (match Flow.run ~options t nl with
      | report ->
        Format.printf "%a@." Flow.pp_report report;
        print_diagnostics report;
        (match emit with
        | Some path ->
          Smt_netlist.Writer.to_file nl path;
          Printf.printf "netlist written to %s\n" path
        | None -> ());
        let name =
          Printf.sprintf "%s/%s" circuit (Smt_core.Qor.technique_slug t)
        in
        ledger_append obs ~kind:"run" ~circuit ~technique:(Smt_core.Qor.technique_slug t)
          ~guard:(Flow.guard_name guard)
          [ ledger_workload_of_report ~name ~before report ];
        finish obs;
        if guard <> Flow.Guard_off && Drc.has_errors (Drc.check nl) then exit 1
      | exception Flow.Flow_error e ->
        Printf.eprintf "flow aborted at stage %S on %s:\n" e.Flow.fe_stage
          e.Flow.fe_circuit;
        List.iter (fun d -> Printf.eprintf "  %s\n" d) e.Flow.fe_diagnostics;
        finish obs;
        exit 1)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one flow on one circuit")
    Term.(
      const run $ obs_term $ circuit_arg $ technique_arg $ seed_arg $ bounce_arg $ length_arg
      $ cells_arg $ retention_arg $ sizing_arg $ emit_arg $ guard_arg)

let corners_cmd =
  let run obs circuit technique seed =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let options = { Flow.default_options with Flow.seed } in
      let nl = gen (lib ()) in
      let report = Flow.run ~options t nl in
      Printf.printf "multi-corner sign-off of %s (%s), clock %.1f ps:\n\n"
        report.Flow.circuit
        (Flow.technique_name report.Flow.technique)
        report.Flow.clock_period;
      let cfg =
        Smt_sta.Sta.config ~clock_period:report.Flow.clock_period ()
      in
      print_endline (Smt_core.Signoff.render (Smt_core.Signoff.run cfg nl));
      finish obs
  in
  Cmd.v (Cmd.info "corners" ~doc:"Multi-corner timing & leakage sign-off")
    Term.(const run $ obs_term $ circuit_arg $ technique_arg $ seed_arg)

let stages_cmd =
  let run obs circuit seed bounce length cells =
    match generator_of circuit with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok gen ->
      let options = options_of seed bounce length cells in
      let before = Metrics.counters () in
      let report = Flow.run ~options Flow.Improved_smt (gen (lib ())) in
      Printf.printf "Improved Selective-MT flow on %s (clock %.1f ps)\n\n"
        report.Flow.circuit report.Flow.clock_period;
      (* With --profile, a GC-attribution column block rides the table:
         words allocated (minor/major) and collections charged per stage. *)
      let prof_cols =
        obs.obs_profile
        && List.exists (fun (s : Flow.stage) -> s.Flow.stage_prof <> None) report.Flow.stages
      in
      let header =
        [
          "Stage"; "Area um^2"; "Standby nW"; "WNS ps"; "Bounce V"; "Switches"; "Holders";
          "ms";
        ]
        @ (if prof_cols then [ "Minor Mw"; "Major Mw"; "GC min"; "GC maj" ] else [])
      in
      let rows =
        List.map
          (fun (s : Flow.stage) ->
            [
              s.Flow.stage_name;
              Printf.sprintf "%.1f" s.Flow.stage_area;
              Printf.sprintf "%.1f" s.Flow.stage_standby_nw;
              Printf.sprintf "%.1f" s.Flow.stage_wns;
              Printf.sprintf "%.4f" s.Flow.stage_worst_bounce;
              string_of_int s.Flow.stage_switches;
              string_of_int s.Flow.stage_holders;
              Printf.sprintf "%.1f" s.Flow.stage_ms;
            ]
            @
            if not prof_cols then []
            else
              match s.Flow.stage_prof with
              | None -> [ "-"; "-"; "-"; "-" ]
              | Some p ->
                [
                  Printf.sprintf "%.2f" (p.Prof.minor_words /. 1e6);
                  Printf.sprintf "%.2f" (p.Prof.major_words /. 1e6);
                  string_of_int p.Prof.minor_collections;
                  string_of_int p.Prof.major_collections;
                ])
          report.Flow.stages
      in
      print_endline (Smt_util.Text_table.render ~header rows);
      ledger_append obs ~kind:"run" ~circuit ~technique:"improved"
        [ ledger_workload_of_report ~name:(circuit ^ "/improved") ~before report ];
      finish obs
  in
  Cmd.v (Cmd.info "stages" ~doc:"Show per-stage metrics of the improved flow (the paper's Fig. 4)")
    Term.(const run $ obs_term $ circuit_arg $ seed_arg $ bounce_arg $ length_arg $ cells_arg)

let table1_cmd =
  let run obs seed jobs json =
    let jobs = jobs_of jobs in
    let l = lib () in
    let options = { Flow.default_options with Flow.seed } in
    let rows =
      [
        Smt_core.Compare.table1_row ~options ~jobs (fun () -> Suite.circuit_a l);
        Smt_core.Compare.table1_row ~options ~jobs (fun () -> Suite.circuit_b l);
      ]
    in
    (match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (Smt_core.Report_json.of_rows rows);
      close_out oc;
      Printf.eprintf "table written to %s\n%!" path
    | None -> ());
    print_endline (Smt_core.Compare.render rows);
    finish obs
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Also write the comparison as JSON to $(docv).")
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce the paper's Table 1")
    Term.(const run $ obs_term $ seed_arg $ jobs_arg $ json_arg)

let report_cmd =
  let run obs circuit technique seed =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let options = { Flow.default_options with Flow.seed } in
      let nl = gen (lib ()) in
      let r = Flow.run ~options t nl in
      let cfg = Smt_sta.Sta.config ~clock_period:r.Flow.clock_period () in
      let sta = Smt_sta.Sta.analyze cfg nl in
      print_endline (Smt_core.Report.summary sta);
      print_newline ();
      print_endline (Smt_core.Report.timing ~paths:2 sta);
      print_endline (Smt_core.Report.power nl);
      print_newline ();
      print_endline (Smt_core.Report.area nl);
      finish obs
  in
  Cmd.v (Cmd.info "report" ~doc:"Sign-off style timing / power / area reports")
    Term.(const run $ obs_term $ circuit_arg $ technique_arg $ seed_arg)

let explain_cmd =
  let run obs what circuit technique seed k json =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let options = { Flow.default_options with Flow.seed } in
      let report, artifacts = Flow.run_with_artifacts ~options t (gen (lib ())) in
      let out =
        match what with
        | "paths" ->
          if json then Smt_core.Explain.paths_json ~k report artifacts
          else Smt_core.Explain.paths ~k report artifacts
        | "leakage" ->
          if json then Smt_core.Explain.leakage_json report artifacts
          else Smt_core.Explain.leakage report artifacts
        | "clusters" ->
          if json then Smt_core.Explain.clusters_json report artifacts
          else Smt_core.Explain.clusters report artifacts
        | s ->
          Printf.eprintf "unknown report %s (paths|leakage|clusters)\n" s;
          exit 2
      in
      print_endline out;
      finish obs
  in
  let what_arg =
    Arg.(
      value & pos 0 string "paths"
      & info [] ~docv:"REPORT"
          ~doc:"Which attribution to render: paths|leakage|clusters.")
  in
  let k_arg =
    Arg.(value & opt int 5 & info [ "k"; "paths" ] ~doc:"Worst paths to list (paths report).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON instead of a table.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "QoR attribution: critical paths with per-arc cell/wire delays, standby leakage \
          by Vth class / function / flow stage, or per-cluster switch occupancy and \
          bounce margin.  Reads the flow's own final STA, so the worst path slack \
          matches the reported WNS exactly.")
    Term.(
      const run $ obs_term $ what_arg $ circuit_arg $ technique_arg $ seed_arg $ k_arg
      $ json_arg)

let bench_snapshot_cmd =
  let run obs seed jobs tag out =
    let jobs = jobs_of jobs in
    let snap, workloads = Smt_core.Qor.collect_ledger ~seed ~jobs ~tag () in
    let path = match out with Some p -> p | None -> Printf.sprintf "BENCH_%s.json" tag in
    Smt_obs.Snapshot.write path snap;
    Printf.printf "snapshot %s (%d workloads) written to %s\n" tag
      (List.length snap.Smt_obs.Snapshot.s_workloads)
      path;
    ledger_append obs ~kind:"bench" ~tag ~jobs workloads;
    finish obs
  in
  let tag_arg =
    Arg.(value & opt string "snapshot" & info [ "tag" ] ~doc:"Snapshot tag (names the default output file).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output path (default BENCH_<tag>.json).")
  in
  Cmd.v
    (Cmd.info "bench-snapshot"
       ~doc:
         "Run the benchmark workloads (circuits A and B under each technique) and write \
          a versioned QoR snapshot: per-workload QoR fields, deterministic work-counter \
          deltas, and per-stage wall-clock times.")
    Term.(const run $ obs_term $ seed_arg $ jobs_arg $ tag_arg $ out_arg)

let bench_compare_cmd =
  let run obs baseline current seed jobs =
    let read_or_die path =
      match Smt_obs.Snapshot.read path with
      | Ok s -> s
      | Error e ->
        Printf.eprintf "cannot read snapshot %s: %s\n" path e;
        exit 2
    in
    let baseline = read_or_die baseline in
    let current =
      match current with
      | Some path -> read_or_die path
      | None -> Smt_core.Qor.collect ~seed ~jobs:(jobs_of jobs) ~tag:"current" ()
    in
    let deltas = Smt_obs.Snapshot.compare ~baseline ~current in
    print_endline (Smt_obs.Snapshot.render deltas);
    finish obs;
    if Smt_obs.Snapshot.has_regressions deltas then exit 1
  in
  let baseline_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline snapshot to compare against.")
  in
  let current_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE"
          ~doc:"Snapshot to compare (default: run the workloads fresh).")
  in
  Cmd.v
    (Cmd.info "bench-compare"
       ~doc:
         "Compare a QoR snapshot against a baseline.  QoR fields and work counters must \
          match exactly (wall-clock drift is advisory only); exits 1 when any \
          regression is found.")
    Term.(const run $ obs_term $ baseline_arg $ current_arg $ seed_arg $ jobs_arg)

let list_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available circuits") Term.(const run $ const ())

let check_cmd =
  let run obs circuit technique seed fault fault_seed do_repair =
    match generator_of circuit with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok gen ->
      let l = lib () in
      let nl = gen l in
      (* With a technique, check the flow's product; without, the raw
         synthesized netlist. *)
      (match technique with
      | None -> ()
      | Some t -> (
        match technique_of t with
        | Error e ->
          prerr_endline e;
          exit 2
        | Ok t ->
          let options = { Flow.default_options with Flow.seed } in
          ignore (Flow.run ~options t nl)));
      (match fault with
      | None -> ()
      | Some fname -> (
        match Fault.of_name fname with
        | None ->
          Printf.eprintf "unknown fault %s (try: %s)\n" fname
            (String.concat ", " (List.map Fault.name Fault.all));
          exit 2
        | Some f -> (
          match Fault.inject ~seed:fault_seed nl f with
          | Some inj ->
            Printf.printf "injected %s at %s: %s\n" (Fault.name f) inj.Fault.target
              inj.Fault.detail
          | None -> Printf.printf "fault %s: no applicable site in %s\n" fname circuit)));
      let vs = Drc.check_library l @ Drc.check nl in
      let vs =
        if do_repair && vs <> [] then begin
          let r = Repair.repair nl vs in
          List.iter (fun a -> Printf.printf "repaired: %s\n" a) r.Repair.actions;
          Drc.check_library l @ Drc.check nl
        end
        else vs
      in
      List.iter (fun v -> print_endline (Violation.to_string v)) vs;
      print_endline (Violation.summary vs);
      finish obs;
      if Drc.has_errors vs then exit 1
  in
  let technique_opt_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "technique" ]
          ~doc:"Check the netlist a flow produces (dual|conventional|improved) instead \
                of the raw synthesized circuit.")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"CLASS"
          ~doc:"Inject one seeded structural fault before checking (see smt_flow check \
                --fault help for classes).")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~doc:"Seed for the fault site choice.")
  in
  let repair_arg =
    Arg.(value & flag & info [ "repair" ] ~doc:"Run the repair pass, then re-check.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Structural design-rule check of a circuit (library data, connectivity, MT \
          structure).  Exits 1 when Error-severity violations remain.")
    Term.(
      const run $ obs_term $ circuit_arg $ technique_opt_arg $ seed_arg $ fault_arg
      $ fault_seed_arg $ repair_arg)

(* Today's UTC date for waiver expiry, honouring SMT_CLOCK (unix seconds)
   like every other wall-clock read in the tool. *)
let today_utc () =
  let now =
    match Sys.getenv_opt "SMT_CLOCK" with
    | Some s -> ( try float_of_string (String.trim s) with _ -> Unix.gettimeofday ())
    | None -> Unix.gettimeofday ()
  in
  let tm = Unix.gmtime now in
  (tm.Unix.tm_year + 1900, tm.Unix.tm_mon + 1, tm.Unix.tm_mday)

(* Fingerprints of a previous SARIF report: (ruleId, first logical
   location).  Message text and witness stay out of the key so a reworded
   diagnostic doesn't resurrect an accepted finding. *)
let load_baseline path =
  match J.of_file path with
  | Error e ->
    Printf.eprintf "baseline: %s\n" e;
    exit 2
  | Ok doc ->
    let tbl = Hashtbl.create 64 in
    let arr_of = function Some (J.Arr xs) -> xs | _ -> [] in
    let str_of j = Option.value ~default:"" (Option.bind j J.to_str) in
    List.iter
      (fun run ->
        List.iter
          (fun r ->
            let rule = str_of (J.member "ruleId" r) in
            let fqn =
              match arr_of (J.member "locations" r) with
              | loc :: _ -> (
                match arr_of (J.member "logicalLocations" loc) with
                | ll :: _ -> str_of (J.member "fullyQualifiedName" ll)
                | [] -> "")
              | [] -> ""
            in
            if rule <> "" then Hashtbl.replace tbl (rule, fqn) ())
          (arr_of (J.member "results" run)))
      (arr_of (J.member "runs" doc));
    tbl

(* One randomized ECO delta for the --incremental self-test: a gate swap,
   a keeper deletion, or a keeper-enable rewire — the edit classes the
   flow's own repair/minimize stages produce. *)
let eco_delta rng nl =
  let module Rng = Smt_util.Rng in
  let module Netlist = Smt_netlist.Netlist in
  let module Cell = Smt_cell.Cell in
  let module Func = Smt_cell.Func in
  let pick = function
    | [] -> None
    | xs -> Some (List.nth xs (Rng.int rng (List.length xs)))
  in
  let swap_gate () =
    let comb =
      List.filter
        (fun i ->
          let k = (Netlist.cell nl i).Cell.kind in
          k = Func.Nand2 || k = Func.Nor2)
        (Netlist.live_insts nl)
    in
    match pick comb with
    | None -> ()
    | Some iid ->
      let c = Netlist.cell nl iid in
      let k' = if c.Cell.kind = Func.Nand2 then Func.Nor2 else Func.Nand2 in
      Netlist.replace_cell nl iid
        (Library.variant ~drive:c.Cell.drive (Netlist.lib nl) k' c.Cell.vth
           c.Cell.style)
  in
  let holders () =
    List.filter
      (fun i -> (Netlist.cell nl i).Cell.kind = Func.Holder)
      (Netlist.live_insts nl)
  in
  match Rng.int rng 3 with
  | 0 -> swap_gate ()
  | 1 -> (
    match pick (holders ()) with
    | None -> swap_gate ()
    | Some h -> Netlist.remove_inst nl h)
  | _ -> (
    let nets = ref [] in
    Netlist.iter_nets nl (fun nid ->
        if not (Netlist.is_clock_net nl nid) then nets := nid :: !nets);
    match (pick (holders ()), pick (List.rev !nets)) with
    | Some h, Some nid -> Netlist.connect nl h "MTE" nid
    | _ -> swap_gate ())

(* --incremental N: prove Verify.update against from-scratch analysis on
   this very build, not just in the test suite — N randomized ECO deltas
   per circuit, byte-compared, with the transfer counts as evidence the
   update actually did less work. *)
let incremental_selftest ~seed ~deltas gens =
  let module Rng = Smt_util.Rng in
  let failures = ref 0 in
  List.iter
    (fun (name, gen) ->
      let nl = gen (lib ()) in
      let rng = Rng.create (0xec0 + seed) in
      let session, _ = Verify.start nl in
      let upd_t = ref 0 and full_t = ref 0 in
      for i = 1 to deltas do
        eco_delta rng nl;
        let ru = Verify.update session in
        let rf = Verify.analyze nl in
        upd_t := !upd_t + ru.Verify.transfers;
        full_t := !full_t + rf.Verify.transfers;
        let render r =
          String.concat "\n" (List.map Rules.to_string r.Verify.findings)
        in
        if render ru <> render rf || ru.Verify.values <> rf.Verify.values then begin
          incr failures;
          Printf.eprintf "%s: delta %d/%d: incremental diverged from full\n%!" name
            i deltas
        end
      done;
      Printf.printf "%s: %d deltas, incremental=%d transfers, full=%d transfers%s\n"
        name deltas !upd_t !full_t
        (if !failures = 0 then ", identical findings+values" else ""))
    gens;
  if !failures > 0 then exit 1

let lint_cmd =
  let run obs circuits technique seed raw jobs format sarif_out waivers baseline
      incremental fault fault_seed =
    let jobs = jobs_of jobs in
    let circuits = match circuits with [] -> List.map fst Suite.all | cs -> cs in
    let gens =
      List.map
        (fun name ->
          match generator_of name with
          | Ok g -> (name, g)
          | Error e ->
            prerr_endline e;
            exit 2)
        circuits
    in
    let t =
      match technique_of technique with
      | Ok t -> t
      | Error e ->
        prerr_endline e;
        exit 2
    in
    (match format with
    | "text" | "json" | "sarif" -> ()
    | s ->
      Printf.eprintf "unknown format %s (text|json|sarif)\n" s;
      exit 2);
    let today = today_utc () in
    let wv =
      match waivers with
      | None -> []
      | Some path -> (
        match Waiver.load path with
        | Ok w ->
          List.iter
            (fun (e : Waiver.entry) ->
              match e.Waiver.w_expires with
              | Some (y, m, d) when Waiver.expired ~today e ->
                Printf.eprintf
                  "waivers: line %d (%s %s) expired %04d-%02d-%02d; finding no \
                   longer suppressed\n\
                   %!"
                  e.Waiver.w_line e.Waiver.w_rule e.Waiver.w_loc y m d
              | _ -> ())
            w;
          w
        | Error e ->
          Printf.eprintf "waivers: %s\n" e;
          exit 2)
    in
    let baseline_keys = Option.map load_baseline baseline in
    let fault =
      match fault with
      | None -> None
      | Some fname -> (
        match Fault.of_name fname with
        | Some f -> Some f
        | None ->
          Printf.eprintf "unknown fault %s (try: %s)\n" fname
            (String.concat ", " (List.map Fault.name Fault.all));
          exit 2)
    in
    if incremental > 0 then begin
      incremental_selftest ~seed ~deltas:incremental gens;
      finish obs;
      exit 0
    end;
    (* Multi-domain circuits come out of their generator already
       MT-structured, so the flow never runs on them: they lint raw. *)
    let raw_for name = raw || Suite.is_multi_domain name in
    let suffix_for name = if raw_for name then "raw" else technique in
    (* One workload per circuit; each job builds, runs the flow (unless
       --raw), optionally injects a fault, and analyzes.  Par.map keeps
       results — and therefore every output format — in input order, so
       the report is byte-identical at any job count.  The mode fan-out
       inside Verify gets the job budget only when a single circuit is
       requested; otherwise the circuits are the parallel axis. *)
    let vjobs = match gens with [ _ ] -> jobs | _ -> 1 in
    let process (name, gen) =
      let nl = gen (lib ()) in
      if not (raw_for name) then
        ignore (Flow.run ~options:{ Flow.default_options with Flow.seed } t nl);
      let inj =
        match fault with
        | None -> None
        | Some f -> (
          match Fault.inject ~seed:fault_seed nl f with
          | Some i -> Some (Fault.name f, i)
          | None -> None)
      in
      let r = Verify.analyze ~jobs:vjobs nl in
      let kept, waived = Waiver.apply ~today wv r.Verify.findings in
      ( { Sarif.wl_name = name ^ "/" ^ suffix_for name;
          wl_findings = kept;
          wl_waived = waived;
        },
        inj )
    in
    let results = Smt_obs.Par.map ~jobs process gens in
    List.iter
      (fun ((wl : Sarif.workload), inj) ->
        match inj with
        | Some (fname, (i : Fault.injection)) ->
          Printf.eprintf "%s: injected %s at %s: %s\n%!" wl.Sarif.wl_name fname
            i.Fault.target i.Fault.detail
        | None -> ())
      results;
    let workloads = List.map fst results in
    let json_finding (f : Rules.finding) =
      J.obj
        [
          ("rule", J.str f.Rules.rule.Rules.id);
          ("severity", J.str (Rules.severity_name f.Rules.rule.Rules.severity));
          ("location", J.str f.Rules.loc);
          ("message", J.str f.Rules.message);
          ("witness", J.arr (List.map J.str f.Rules.witness));
        ]
    in
    (match format with
    | "text" ->
      List.iter
        (fun (wl : Sarif.workload) ->
          if wl.Sarif.wl_findings = [] && wl.Sarif.wl_waived = [] then
            Printf.printf "%s: clean\n" wl.Sarif.wl_name
          else begin
            Printf.printf "%s: %s%s\n" wl.Sarif.wl_name
              (Rules.summary wl.Sarif.wl_findings)
              (match wl.Sarif.wl_waived with
              | [] -> ""
              | w -> Printf.sprintf ", %d waived" (List.length w));
            List.iter
              (fun f -> Printf.printf "  %s\n" (Rules.to_string f))
              wl.Sarif.wl_findings;
            List.iter
              (fun (f, (e : Waiver.entry)) ->
                Printf.printf "  waived (line %d): %s\n" e.Waiver.w_line
                  (Rules.to_string f))
              wl.Sarif.wl_waived
          end)
        workloads
    | "json" ->
      print_endline
        (J.arr
           (List.map
              (fun (wl : Sarif.workload) ->
                J.obj
                  [
                    ("workload", J.str wl.Sarif.wl_name);
                    ("findings", J.arr (List.map json_finding wl.Sarif.wl_findings));
                    ( "waived",
                      J.arr (List.map (fun (f, _) -> json_finding f) wl.Sarif.wl_waived)
                    );
                  ])
              workloads))
    | _ -> print_endline (Sarif.render workloads));
    (match sarif_out with
    | Some path ->
      J.to_file path (Sarif.render workloads);
      Printf.eprintf "SARIF written to %s\n%!" path
    | None -> ());
    ledger_append obs ~kind:"lint" ~technique:(if raw then "raw" else technique) ~jobs
      (List.map
         (fun (wl : Sarif.workload) ->
           {
             Ledger.lw_workload =
               Smt_obs.Snapshot.workload ~name:wl.Sarif.wl_name
                 ~qor:
                   [
                     ("findings", float_of_int (List.length wl.Sarif.wl_findings));
                     ("waived", float_of_int (List.length wl.Sarif.wl_waived));
                   ]
                 ~counters:[] ~stage_ms:[];
             Ledger.lw_prof = [];
           })
         workloads);
    finish obs;
    (* With a baseline, only findings absent from it gate the exit code:
       the accepted debt stays visible in the report but doesn't fail CI. *)
    (match baseline_keys with
    | None ->
      if
        List.exists
          (fun (wl : Sarif.workload) -> Rules.has_errors wl.Sarif.wl_findings)
          workloads
      then exit 1
    | Some known ->
      let fresh =
        List.concat_map
          (fun (wl : Sarif.workload) ->
            List.filter
              (fun (f : Rules.finding) ->
                not
                  (Hashtbl.mem known
                     (f.Rules.rule.Rules.id, wl.Sarif.wl_name ^ "/" ^ f.Rules.loc)))
              wl.Sarif.wl_findings)
          workloads
      in
      let total =
        List.fold_left
          (fun n (wl : Sarif.workload) -> n + List.length wl.Sarif.wl_findings)
          0 workloads
      in
      Printf.eprintf "baseline: %d finding(s), %d new\n%!" total (List.length fresh);
      if Rules.has_errors fresh then exit 1)
  in
  let circuits_arg =
    Arg.(
      value & opt_all string []
      & info [ "c"; "circuit" ] ~docv:"NAME"
          ~doc:"Circuit to lint (repeatable; default: every circuit in the suite).")
  in
  let raw_arg =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:"Lint the raw synthesized netlist instead of a flow product.")
  in
  let format_arg =
    Arg.(
      value & opt string "text"
      & info [ "format" ] ~docv:"FMT" ~doc:"Report format: text|json|sarif.")
  in
  let sarif_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Also write the SARIF 2.1.0 report to $(docv) (any --format).")
  in
  let waivers_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "waivers" ] ~docv:"FILE"
          ~doc:"Waiver file: one '<rule-id> <location-glob>' per line; waived findings \
                are suppressed from the exit code but kept, marked, in the reports.")
  in
  let fault_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault" ] ~docv:"CLASS"
          ~doc:"Inject one seeded fault after the flow, before the analysis.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~doc:"Seed for the fault site choice.")
  in
  let baseline_lint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "A previous SARIF report; findings already in it (matched by rule id and \
             logical location) no longer gate the exit code — only new Error findings \
             exit 1.")
  in
  let incremental_arg =
    Arg.(
      value & opt int 0
      & info [ "incremental" ] ~docv:"N"
          ~doc:
            "Self-test mode: apply $(docv) randomized ECO deltas per circuit and check \
             that incremental re-verification matches a from-scratch analysis \
             byte-for-byte.  Exits 1 on any divergence.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Semantic standby verification: abstract interpretation of each circuit's \
          sleep state across every power-domain mode vector (MTE asserted, clocks \
          parked), reporting floating nets read by always-on logic, crowbar-risk \
          inputs, useless holders, MTE polarity bugs, floating retention-FF inputs, \
          and cross-domain crossing bugs.  Exits 1 when unwaived Error findings \
          remain.")
    Term.(
      const run $ obs_term $ circuits_arg $ technique_arg $ seed_arg $ raw_arg $ jobs_arg
      $ format_arg $ sarif_out_arg $ waivers_arg $ baseline_lint_arg $ incremental_arg
      $ fault_arg $ fault_seed_arg)

(* --- crash-tolerant campaign runner: smt_flow campaign {run,status,resume,merge,worker} --- *)

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let campaign_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "dir" ] ~docv:"DIR"
        ~doc:
          "Campaign directory: holds the manifest, one atomic checkpoint per \
           completed job, per-shard logs, and the merged snapshot.  This directory \
           is the unit of crash-tolerance — a campaign is resumable from it alone.")

let campaign_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Merged snapshot path (default: $(b,DIR)/merged.json).")

let campaign_out_of dir = function
  | Some p -> p
  | None -> Filename.concat dir "merged.json"

(* Parse-and-canonicalize the matrix coordinates, so job ids are stable
   however the user spelled them ("imp" -> "improved"). *)
let campaign_matrix circuits techniques guards seeds =
  let circuits = match circuits with [] -> List.map fst Suite.all | cs -> cs in
  List.iter
    (fun c ->
      match generator_of c with
      | Ok _ -> ()
      | Error e ->
        prerr_endline e;
        exit 2)
    circuits;
  let techniques =
    match techniques with [] -> [ "dual"; "conventional"; "improved" ] | ts -> ts
  in
  let techniques =
    List.map
      (fun s ->
        match technique_of s with
        | Ok t -> Smt_core.Qor.technique_slug t
        | Error e ->
          prerr_endline e;
          exit 2)
      techniques
  in
  let guards = match guards with [] -> [ "off" ] | gs -> gs in
  let guards = List.map (fun s -> Flow.guard_name (guard_of s)) guards in
  let seeds = match seeds with [] -> [ 1 ] | ss -> ss in
  (circuits, techniques, guards, seeds)

let timeout_arg =
  Arg.(
    value & opt float 60.
    & info [ "timeout" ] ~docv:"S"
        ~doc:"Wall-clock limit per shard attempt; a shard past it is SIGKILLed and \
              the attempt counts as failed.")

let stall_timeout_arg =
  Arg.(
    value & opt float 0.
    & info [ "stall-timeout" ] ~docv:"S"
        ~doc:
          "Heartbeat liveness limit: SIGKILL a shard whose heartbeat file stops \
           advancing for $(docv) seconds — hung, not just slow — and retry it \
           immediately instead of waiting out $(b,--timeout).  0 disables.  Keep \
           it well above the heartbeat interval (SMT_HB_INTERVAL_MS, default \
           200 ms).")

let max_attempts_arg =
  Arg.(
    value & opt int 3
    & info [ "max-attempts" ] ~docv:"K"
        ~doc:"Attempts per job before it is quarantined and the campaign continues \
              without it.")

let retry_base_arg =
  Arg.(
    value & opt float 100.
    & info [ "retry-delay-ms" ] ~docv:"MS"
        ~doc:"Backoff of the first retry; doubles per attempt up to \
              $(b,--retry-cap-ms), with deterministic jitter in [1, 1.5).")

let retry_cap_arg =
  Arg.(
    value & opt float 2000.
    & info [ "retry-cap-ms" ] ~docv:"MS" ~doc:"Backoff ceiling (before jitter).")

let chaos_arg =
  Arg.(
    value & opt float 0.
    & info [ "chaos" ] ~docv:"P"
        ~doc:
          "Self-fault-injection: SIGKILL each shard attempt with probability $(docv), \
           at a random instant within $(b,--chaos-delay-ms) of its spawn.  The kill \
           schedule is drawn from a seeded RNG ($(b,--chaos-seed)), so a chaos \
           campaign is exactly replayable; killed shards are retried/resumed and the \
           merged snapshot stays byte-identical to an undisturbed run.")

let chaos_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "chaos-seed" ] ~docv:"N"
        ~doc:"Seed of the chaos kill schedule and the retry-backoff jitter.")

let chaos_delay_arg =
  Arg.(
    value & opt float 25.
    & info [ "chaos-delay-ms" ] ~docv:"MS"
        ~doc:"Chaos kills land uniformly within this delay of the shard's spawn.")

let campaign_config jobs timeout stall_timeout max_attempts retry_base retry_cap chaos
    chaos_seed chaos_delay =
  let jobs = jobs_of jobs in
  if timeout <= 0. then begin
    prerr_endline "--timeout must be positive";
    exit 2
  end;
  if stall_timeout < 0. then begin
    prerr_endline "--stall-timeout must be >= 0";
    exit 2
  end;
  if max_attempts < 1 then begin
    prerr_endline "--max-attempts must be >= 1";
    exit 2
  end;
  if chaos < 0. || chaos > 1. then begin
    prerr_endline "--chaos must be a probability in [0, 1]";
    exit 2
  end;
  {
    Csup.default_config with
    Csup.sv_jobs = jobs;
    Csup.sv_timeout_s = timeout;
    Csup.sv_stall_timeout_s = stall_timeout;
    Csup.sv_max_attempts = max_attempts;
    Csup.sv_retry_base_ms = retry_base;
    Csup.sv_retry_cap_ms = retry_cap;
    Csup.sv_chaos = chaos;
    Csup.sv_chaos_delay_ms = chaos_delay;
    Csup.sv_seed = chaos_seed;
  }

(* Supervise every not-yet-done matrix job of [man], persist the
   quarantine list, merge, and exit under the campaign contract:
   0 complete, 1 partial (quarantined or missing jobs), 2 infrastructure
   failure. *)
let campaign_supervise obs ~dir ~out cfg (man : Cman.t) =
  let jobs = Cman.jobs man in
  let byid = List.map (fun j -> (Cjob.id j, j)) jobs in
  let done_ids =
    match Ckpt.scan dir with
    | Error e ->
      Printf.eprintf "campaign: %s\n" e;
      exit 2
    | Ok { Ckpt.sc_checkpoints; _ } ->
      List.filter_map
        (fun (id, (cp : Ckpt.t)) ->
          if cp.Ckpt.cp_status = Ckpt.Done then Some id else None)
        sc_checkpoints
  in
  let todo = List.filter (fun j -> not (List.mem (Cjob.id j) done_ids)) jobs in
  Printf.printf "campaign %s: %d jobs, %d already complete, %d to run on %d shards\n%!"
    man.Cman.m_tag (List.length jobs) (List.length done_ids) (List.length todo)
    cfg.Csup.sv_jobs;
  let exe =
    if Filename.is_relative Sys.executable_name then
      Filename.concat (Unix.getcwd ()) Sys.executable_name
    else Sys.executable_name
  in
  (* Cross-process telemetry: when the supervisor was asked for any
     observability output, workers record their own spans/metrics/prof
     and leave a sidecar next to the checkpoint; the supervisor absorbs
     each sidecar onto the shard's stable tid (2 + matrix slot — a pure
     function of the manifest, so retries and resumes land on the same
     trace row).  Dedup by (job, attempt): retries overwrite the sidecar
     and resumes re-see old ones, but nothing is double-counted. *)
  let telemetry = obs.obs_trace <> None || obs.obs_metrics <> None || obs.obs_profile in
  let slots = Cman.slots man in
  let tid_of id = 2 + (match List.assoc_opt id slots with Some i -> i | None -> 0) in
  let absorbed : (string * int, unit) Hashtbl.t = Hashtbl.create 17 in
  let absorb_sidecar id =
    match Ctele.load (Ctele.path ~dir id) with
    | Error _ -> () (* absent or torn: telemetry is an overlay, never fatal *)
    | Ok t ->
      let key = (id, t.Ctele.tl_attempt) in
      if not (Hashtbl.mem absorbed key) then begin
        Hashtbl.add absorbed key ();
        Ctele.absorb ~tid:(tid_of id) t
      end
  in
  (* A resumed campaign's unified trace covers the already-done shards
     too — their sidecars are still on disk. *)
  if telemetry then List.iter absorb_sidecar done_ids;
  let command ~id ~attempt =
    let j = List.assoc id byid in
    Array.append
      [|
        exe; "campaign"; "worker"; "--dir"; dir; "--circuit"; j.Cjob.jb_circuit;
        "--technique"; j.Cjob.jb_technique; "--guard"; j.Cjob.jb_guard; "--seed";
        string_of_int j.Cjob.jb_seed; "--attempt"; string_of_int attempt;
      |]
      (if telemetry then [| "--telemetry" |] else [||])
  in
  let verify id =
    let j = List.assoc id byid in
    match Ckpt.load (Ckpt.path ~dir j) with
    | Ok { Ckpt.cp_status = Ckpt.Done; _ } -> Ok ()
    | Ok { Ckpt.cp_status = Ckpt.Failed e; _ } ->
      Error ("checkpoint records failure: " ^ e)
    | Error e -> Error ("no valid checkpoint: " ^ e)
  in
  let log_path id = Filename.concat dir (id ^ ".log") in
  let hb_path id = Cheart.path ~dir id in
  let on_exit ~id ~attempt:_ = if telemetry then absorb_sidecar id in
  let summary =
    Csup.run cfg ~command ~verify ~log_path ~hb_path ~on_exit (List.map Cjob.id todo)
  in
  (* Persist the quarantine list: status/resume/merge must see terminal
     failures without re-supervising (a later resume grants a fresh
     attempt budget by re-running every failed checkpoint). *)
  List.iter
    (fun (id, attempts, err) ->
      Ckpt.write ~dir
        {
          Ckpt.cp_version = Ckpt.schema_version;
          cp_job = List.assoc id byid;
          cp_status = Ckpt.Failed err;
          cp_attempt = attempts;
          cp_time = Ledger.clock ();
          cp_duration_s = 0.;
          cp_workload = None;
          cp_prof = [];
        })
    (Csup.quarantined summary);
  match Cmerge.of_dir dir with
  | Error e ->
    Printf.eprintf "campaign: %s\n" e;
    exit 2
  | Ok m ->
    Smt_obs.Snapshot.write out m.Cmerge.mg_snapshot;
    print_endline (Cmerge.render_status m);
    Printf.printf
      "retries %d, chaos kills %d, timeouts %d, stalls %d; merged snapshot (%d \
       workloads) written to %s\n"
      summary.Csup.sm_retries summary.Csup.sm_chaos_kills summary.Csup.sm_timeouts
      summary.Csup.sm_stalls m.Cmerge.mg_done out;
    let only = function [ x ] -> x | _ -> "-" in
    ledger_append obs ~kind:"campaign" ~tag:man.Cman.m_tag
      ~circuit:(only man.Cman.m_circuits) ~technique:(only man.Cman.m_techniques)
      ~guard:(only man.Cman.m_guards) ~jobs:cfg.Csup.sv_jobs (Cmerge.workloads m);
    finish obs;
    exit (if Cmerge.complete m then 0 else 1)

let campaign_run_cmd =
  let run obs dir circuits techniques guards seeds jobs timeout stall_timeout
      max_attempts retry_base retry_cap chaos chaos_seed chaos_delay tag out =
    let circuits, techniques, guards, seeds =
      campaign_matrix circuits techniques guards seeds
    in
    let cfg =
      campaign_config jobs timeout stall_timeout max_attempts retry_base retry_cap
        chaos chaos_seed chaos_delay
    in
    mkdir_p dir;
    if Sys.file_exists (Cman.path dir) then begin
      Printf.eprintf
        "campaign: %s is already initialized; use `smt_flow campaign resume --dir %s`\n"
        dir dir;
      exit 2
    end;
    let man = Cman.make ~tag ~circuits ~techniques ~guards ~seeds in
    Cman.write dir man;
    campaign_supervise obs ~dir ~out:(campaign_out_of dir out) cfg man
  in
  let circuits_arg =
    Arg.(
      value & opt_all string []
      & info [ "c"; "circuit" ] ~docv:"NAME"
          ~doc:"Circuit axis of the matrix (repeatable; default: every suite circuit).")
  in
  let techniques_arg =
    Arg.(
      value & opt_all string []
      & info [ "t"; "technique" ] ~docv:"T"
          ~doc:"Technique axis (repeatable; default: dual, conventional, improved).")
  in
  let guards_arg =
    Arg.(
      value & opt_all string []
      & info [ "guard" ] ~docv:"MODE" ~doc:"Guard axis (repeatable; default: off).")
  in
  let seeds_arg =
    Arg.(
      value & opt_all int []
      & info [ "seed" ] ~docv:"N" ~doc:"Flow-seed axis (repeatable; default: 1).")
  in
  let tag_arg =
    Arg.(
      value & opt string "campaign"
      & info [ "tag" ] ~doc:"Tag of the merged snapshot (recorded in the manifest).")
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Expand the (circuit x technique x guard x seed) matrix into jobs, shard \
          them across worker OS processes with per-shard supervision (timeout, retry \
          with exponential backoff, quarantine after $(b,--max-attempts)), persist \
          one atomic checkpoint per job, and merge the results into one \
          byte-deterministic snapshot.  Exit 0 when every job completed, 1 when the \
          campaign finished partial (quarantined jobs), 2 on infrastructure failure.")
    Term.(
      const run $ obs_term $ campaign_dir_arg $ circuits_arg $ techniques_arg
      $ guards_arg $ seeds_arg $ jobs_arg $ timeout_arg $ stall_timeout_arg
      $ max_attempts_arg $ retry_base_arg $ retry_cap_arg $ chaos_arg $ chaos_seed_arg
      $ chaos_delay_arg $ tag_arg $ campaign_out_arg)

let campaign_resume_cmd =
  let run obs dir jobs timeout stall_timeout max_attempts retry_base retry_cap chaos
      chaos_seed chaos_delay out =
    match Cman.load dir with
    | Error e ->
      Printf.eprintf "campaign: %s (is %s a campaign directory?)\n" e dir;
      exit 2
    | Ok man ->
      Metrics.incr (Metrics.counter "campaign.resumes");
      let cfg =
        campaign_config jobs timeout stall_timeout max_attempts retry_base retry_cap
          chaos chaos_seed chaos_delay
      in
      campaign_supervise obs ~dir ~out:(campaign_out_of dir out) cfg man
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Re-scan the checkpoint directory and finish an interrupted or partial \
          campaign: completed jobs are skipped, failed / quarantined / in-flight ones \
          re-run with a fresh attempt budget.  The matrix comes from the manifest, \
          so resume cycles cannot drift; the merged snapshot is byte-identical to an \
          uninterrupted run's.  Same exit contract as $(b,run).")
    Term.(
      const run $ obs_term $ campaign_dir_arg $ jobs_arg $ timeout_arg
      $ stall_timeout_arg $ max_attempts_arg $ retry_base_arg $ retry_cap_arg
      $ chaos_arg $ chaos_seed_arg $ chaos_delay_arg $ campaign_out_arg)

(* --- live campaign status: checkpoints + heartbeats, no supervisor --- *)

type shard_row = {
  sr_id : string;
  sr_state : string;  (* done | failed | running | queued *)
  sr_attempt : int;
  sr_stage : string;
  sr_detail : string;
}

(* A job with no checkpoint is [running] when its heartbeat file is being
   actively rewritten (mtime within a few beat intervals), else [queued].
   Reading files the shards rewrite concurrently is safe: both heartbeat
   and checkpoint writes are atomic renames. *)
let campaign_rows dir (m : Cmerge.t) =
  let now = Unix.gettimeofday () in
  let fresh_s = Float.max 1.0 (4. *. Cheart.interval_s ()) in
  List.map
    (fun (js : Cmerge.job_state) ->
      let id = Cjob.id js.Cmerge.js_job in
      let hb =
        match Cheart.read (Cheart.path ~dir id) with Ok h -> Some h | Error _ -> None
      in
      let stage =
        match hb with Some h -> h.Cheart.hb_stage | None -> ""
      in
      match js.Cmerge.js_state with
      | Cmerge.Sdone ->
        {
          sr_id = id;
          sr_state = "done";
          sr_attempt = js.Cmerge.js_attempt;
          sr_stage = "";
          sr_detail = Printf.sprintf "%.2fs" js.Cmerge.js_duration_s;
        }
      | Cmerge.Sfailed e ->
        {
          sr_id = id;
          sr_state = "failed";
          sr_attempt = js.Cmerge.js_attempt;
          sr_stage = "";
          sr_detail = e;
        }
      | Cmerge.Smissing ->
        let live =
          match Unix.stat (Cheart.path ~dir id) with
          | st -> now -. st.Unix.st_mtime < fresh_s
          | exception Unix.Unix_error _ -> false
        in
        {
          sr_id = id;
          sr_state = (if live then "running" else "queued");
          sr_attempt = 0;
          sr_stage = stage;
          sr_detail = "";
        })
    m.Cmerge.mg_states

let count_state rows s = List.length (List.filter (fun r -> r.sr_state = s) rows)

(* ETA: remaining jobs x the mean wall-clock of completed ones — an
   aggregate-compute estimate (shard count is not knowable from the
   directory alone).  NaN-free: zero until the first job lands. *)
let campaign_eta (m : Cmerge.t) rows =
  let durations =
    List.filter_map
      (fun (js : Cmerge.job_state) ->
        if js.Cmerge.js_state = Cmerge.Sdone && js.Cmerge.js_duration_s > 0. then
          Some js.Cmerge.js_duration_s
        else None)
      m.Cmerge.mg_states
  in
  let avg =
    match durations with
    | [] -> 0.
    | ds -> List.fold_left ( +. ) 0. ds /. float_of_int (List.length ds)
  in
  let remaining = count_state rows "running" + count_state rows "queued" in
  (avg, remaining, avg *. float_of_int remaining)

let campaign_status_json (m : Cmerge.t) rows =
  let avg, remaining, eta = campaign_eta m rows in
  J.obj
    [
      ("tag", J.str m.Cmerge.mg_tag);
      ("total", string_of_int (List.length rows));
      ("done", string_of_int m.Cmerge.mg_done);
      ("failed", string_of_int m.Cmerge.mg_failed);
      ("running", string_of_int (count_state rows "running"));
      ("queued", string_of_int (count_state rows "queued"));
      ("unreadable", string_of_int m.Cmerge.mg_unreadable);
      ("complete", J.boolean (Cmerge.complete m));
      ("avg_job_s", J.num avg);
      ("remaining", string_of_int remaining);
      ("eta_s", J.num eta);
      ( "jobs",
        J.arr
          (List.map
             (fun r ->
               J.obj
                 [
                   ("id", J.str r.sr_id);
                   ("state", J.str r.sr_state);
                   ("attempt", string_of_int r.sr_attempt);
                   ("stage", J.str r.sr_stage);
                   ("detail", J.str r.sr_detail);
                 ])
             rows) );
    ]

let campaign_status_text (m : Cmerge.t) rows =
  let header = [ "Job"; "State"; "Attempt"; "Stage"; "Detail" ] in
  let table =
    List.map
      (fun r ->
        [
          r.sr_id;
          r.sr_state;
          (if r.sr_attempt = 0 then "-" else string_of_int r.sr_attempt);
          (if r.sr_stage = "" then "-" else r.sr_stage);
          r.sr_detail;
        ])
      rows
  in
  let avg, remaining, eta = campaign_eta m rows in
  let progress =
    Printf.sprintf "campaign %s: %d/%d done, %d failed, %d running, %d queued%s"
      m.Cmerge.mg_tag m.Cmerge.mg_done (List.length rows) m.Cmerge.mg_failed
      (count_state rows "running") (count_state rows "queued")
      (if m.Cmerge.mg_unreadable = 0 then ""
       else
         Printf.sprintf " (%d unreadable checkpoint%s treated as missing)"
           m.Cmerge.mg_unreadable
           (if m.Cmerge.mg_unreadable = 1 then "" else "s"))
  in
  let eta_line =
    if remaining = 0 then ""
    else if avg = 0. then "\nno completed jobs yet; ETA unknown"
    else
      Printf.sprintf "\n~%.1fs of shard compute remaining (%d jobs x %.2fs avg)" eta
        remaining avg
  in
  Smt_util.Text_table.render ~header table ^ "\n" ^ progress ^ eta_line

let campaign_interval_arg =
  Arg.(
    value & opt float 1.0
    & info [ "interval" ] ~docv:"S" ~doc:"Refresh period of $(b,--follow).")

let campaign_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Machine-readable status: one JSON object (per refresh under \
           $(b,--follow)) with per-job state, stage, and the ETA estimate.")

let campaign_status_run ~follow dir json interval =
  let interval = Float.max 0.1 interval in
  let render () =
    match Cmerge.of_dir dir with
    | Error e ->
      Printf.eprintf "campaign: %s\n" e;
      exit 2
    | Ok m ->
      let rows = campaign_rows dir m in
      if json then print_endline (campaign_status_json m rows)
      else begin
        (* In-place refresh: home the cursor and clear below, so a follow
           session reads like a dashboard rather than a scroll. *)
        if follow then print_string "\027[H\027[2J";
        print_endline (campaign_status_text m rows)
      end;
      flush stdout;
      m
  in
  if not follow then begin
    let m = render () in
    exit (if Cmerge.complete m then 0 else 1)
  end
  else begin
    let rec loop () =
      let m = render () in
      if m.Cmerge.mg_done + m.Cmerge.mg_failed >= List.length m.Cmerge.mg_states then
        exit (if Cmerge.complete m then 0 else 1)
      else begin
        Unix.sleepf interval;
        loop ()
      end
    in
    loop ()
  end

let campaign_follow_arg =
  Arg.(
    value & flag
    & info [ "follow" ]
        ~doc:
          "Keep re-rendering until every job reaches a terminal state (done or \
           failed), then exit under the status contract.")

let campaign_status_doc =
  "Report per-job campaign state from the checkpoint directory alone: done / \
   failed from checkpoints, running / queued from heartbeat liveness, plus \
   per-shard current stage and an ETA from completed-job durations.  \
   $(b,--follow) re-renders in place until the campaign reaches a terminal \
   state; $(b,--json) emits the same view as one JSON object per render.  Exit \
   0 when complete, 1 when partial or in progress, 2 on infrastructure failure \
   (unreadable directory or manifest)."

let campaign_status_cmd =
  let run dir json follow interval = campaign_status_run ~follow dir json interval in
  Cmd.v
    (Cmd.info "status" ~doc:campaign_status_doc)
    Term.(
      const run $ campaign_dir_arg $ campaign_json_arg $ campaign_follow_arg
      $ campaign_interval_arg)

let campaign_watch_cmd =
  let run dir json interval = campaign_status_run ~follow:true dir json interval in
  Cmd.v
    (Cmd.info "watch"
       ~doc:("Alias for $(b,status --follow).  " ^ campaign_status_doc))
    Term.(const run $ campaign_dir_arg $ campaign_json_arg $ campaign_interval_arg)

let campaign_merge_cmd =
  let run dir out =
    match Cmerge.of_dir dir with
    | Error e ->
      Printf.eprintf "campaign: %s\n" e;
      exit 2
    | Ok m ->
      let out = campaign_out_of dir out in
      Smt_obs.Snapshot.write out m.Cmerge.mg_snapshot;
      print_endline (Cmerge.render_status m);
      Printf.printf "merged snapshot (%d workloads) written to %s\n" m.Cmerge.mg_done
        out;
      exit (if Cmerge.complete m then 0 else 1)
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Re-merge the checkpoints into the campaign snapshot without running \
          anything.  The merge is byte-deterministic: independent of shard count, \
          scheduling, and resume history.  Exit 0 when complete, 1 when partial.")
    Term.(const run $ campaign_dir_arg $ campaign_out_arg)

(* The shard body: one flow run, one atomic checkpoint.  Spawned by the
   supervisor — not intended for interactive use, but safe for it. *)
let campaign_worker_cmd =
  let run dir circuit technique guard seed attempt telemetry =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      if telemetry then begin
        Trace.enable ();
        Prof.enable ()
      end;
      let guard_mode = guard_of guard in
      let job =
        {
          Cjob.jb_circuit = circuit;
          jb_technique = Smt_core.Qor.technique_slug t;
          jb_guard = Flow.guard_name guard_mode;
          jb_seed = seed;
        }
      in
      let id = Cjob.id job in
      let hb = Cheart.start ~path:(Cheart.path ~dir id) in
      let options =
        {
          Flow.default_options with
          Flow.seed;
          Flow.guard = guard_mode;
          Flow.on_stage = Some (fun stage -> Cheart.set_stage hb stage);
        }
      in
      let nl = gen (lib ()) in
      let before = Metrics.counters () in
      let t0 = Unix.gettimeofday () in
      (* The checkpoint is the durable decision and lands first; the
         telemetry sidecar is best-effort enrichment.  A kill between the
         two writes loses spans, never results. *)
      let sidecar () =
        if telemetry then Ctele.write ~dir (Ctele.capture ~job:id ~attempt)
      in
      let ok =
        Fun.protect
          ~finally:(fun () -> Cheart.stop hb)
          (fun () ->
            match Flow.run ~options t nl with
            | report ->
              let workload =
                Smt_obs.Snapshot.workload ~name:(Cjob.name job)
                  ~qor:(Smt_core.Qor.qor_of report)
                  ~counters:
                    (Smt_core.Qor.counter_delta ~before
                       ~after:(Metrics.counters ()))
                  ~stage_ms:
                    (List.map
                       (fun (s : Flow.stage) ->
                         (s.Flow.stage_name, s.Flow.stage_ms))
                       report.Flow.stages)
              in
              Ckpt.write ~dir
                {
                  Ckpt.cp_version = Ckpt.schema_version;
                  cp_job = job;
                  cp_status = Ckpt.Done;
                  cp_attempt = attempt;
                  cp_time = Ledger.clock ();
                  cp_duration_s = Unix.gettimeofday () -. t0;
                  cp_prof =
                    List.filter_map
                      (fun (s : Flow.stage) ->
                        Option.map
                          (fun p -> (s.Flow.stage_name, p))
                          s.Flow.stage_prof)
                      report.Flow.stages;
                  cp_workload = Some workload;
                };
              sidecar ();
              true
            | exception Flow.Flow_error e ->
              Ckpt.write ~dir
                {
                  Ckpt.cp_version = Ckpt.schema_version;
                  cp_job = job;
                  cp_status =
                    Ckpt.Failed
                      (Printf.sprintf "flow aborted at stage %S: %s"
                         e.Flow.fe_stage
                         (String.concat "; " e.Flow.fe_diagnostics));
                  cp_attempt = attempt;
                  cp_time = Ledger.clock ();
                  cp_duration_s = Unix.gettimeofday () -. t0;
                  cp_prof = [];
                  cp_workload = None;
                };
              sidecar ();
              false)
      in
      if not ok then exit 1
  in
  let attempt_arg =
    Arg.(value & opt int 1 & info [ "attempt" ] ~docv:"N" ~doc:"Supervisor attempt number.")
  in
  let telemetry_arg =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "Record this shard's Trace spans, Metrics store, and Prof deltas \
             to an atomic $(i,job).telemetry.json sidecar for the supervisor \
             to absorb.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Internal: run one campaign job (one circuit, one technique, one guard, one \
          seed) and persist its result as an atomic checkpoint, beating a heartbeat \
          file while it runs.  Exec'd per shard by $(b,campaign run)/$(b,resume).")
    Term.(
      const run $ campaign_dir_arg $ circuit_arg $ technique_arg $ guard_arg
      $ seed_arg $ attempt_arg $ telemetry_arg)

let campaign_cmd =
  Cmd.group
    (Cmd.info "campaign"
       ~doc:
         "Crash-tolerant, resumable campaign runner: shard a (circuit x technique x \
          guard x seed) matrix across supervised worker processes with retry, \
          backoff, quarantine, and seeded chaos injection; checkpoint every job \
          atomically; merge byte-deterministically.")
    [
      campaign_run_cmd; campaign_status_cmd; campaign_watch_cmd; campaign_resume_cmd;
      campaign_merge_cmd; campaign_worker_cmd;
    ]

(* --- run-ledger inspection: smt_flow runs {list,show,trend,gc} --- *)

let runs_ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:"Run ledger to read (default: the SMT_LEDGER environment variable).")

let ledger_path_of = function
  | Some p -> p
  | None -> (
    match Ledger.default_path () with
    | Some p -> p
    | None ->
      prerr_endline "no ledger: pass --ledger FILE or set SMT_LEDGER";
      exit 2)

let read_ledger_or_die path =
  match Ledger.read path with
  | Ok r -> r
  | Error e ->
    Printf.eprintf "cannot read ledger %s: %s\n" path e;
    exit 2

let time_str t =
  if Float.is_integer t && Float.abs t < 1e15 then Printf.sprintf "%.0f" t
  else Printf.sprintf "%.3f" t

let runs_list_cmd =
  let run ledger kind =
    let path = ledger_path_of ledger in
    let { Ledger.records; skipped } = read_ledger_or_die path in
    let records =
      match kind with
      | None -> records
      | Some k -> List.filter (fun (r : Ledger.record) -> r.Ledger.r_kind = k) records
    in
    let header =
      [ "Id"; "Time"; "Kind"; "Tag"; "Circuit"; "Technique"; "Guard"; "Jobs"; "Workloads" ]
    in
    let rows =
      List.map
        (fun (r : Ledger.record) ->
          [
            r.Ledger.r_id; time_str r.Ledger.r_time; r.Ledger.r_kind; r.Ledger.r_tag;
            r.Ledger.r_circuit; r.Ledger.r_technique; r.Ledger.r_guard;
            string_of_int r.Ledger.r_jobs;
            string_of_int (List.length r.Ledger.r_workloads);
          ])
        records
    in
    if rows <> [] then print_endline (Smt_util.Text_table.render ~header rows);
    if skipped > 0 then
      Printf.printf "(%d malformed line%s skipped)\n" skipped (if skipped = 1 then "" else "s");
    Printf.printf "%d record%s\n" (List.length records)
      (if List.length records = 1 then "" else "s")
  in
  let kind_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Only records of this kind (run|bench|lint|campaign).")
  in
  Cmd.v (Cmd.info "list" ~doc:"List the ledger's records, oldest first")
    Term.(const run $ runs_ledger_arg $ kind_arg)

let runs_show_cmd =
  let run ledger id =
    let path = ledger_path_of ledger in
    match Ledger.find path id with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok r ->
      Printf.printf "record %s (schema v%d)\n" r.Ledger.r_id r.Ledger.r_version;
      Printf.printf "  time      %s\n" (time_str r.Ledger.r_time);
      Printf.printf "  tool      %s\n" r.Ledger.r_tool;
      Printf.printf "  kind      %s\n" r.Ledger.r_kind;
      if r.Ledger.r_tag <> "" then Printf.printf "  tag       %s\n" r.Ledger.r_tag;
      Printf.printf "  circuit   %s\n" r.Ledger.r_circuit;
      Printf.printf "  technique %s\n" r.Ledger.r_technique;
      Printf.printf "  guard     %s\n" r.Ledger.r_guard;
      Printf.printf "  jobs      %d\n" r.Ledger.r_jobs;
      Printf.printf "  args_hash %s\n" r.Ledger.r_args_hash;
      List.iter
        (fun (lw : Ledger.workload) ->
          let w = lw.Ledger.lw_workload in
          Printf.printf "\nworkload %s\n" w.Smt_obs.Snapshot.w_name;
          List.iter
            (fun (k, v) -> Printf.printf "  qor.%s = %s\n" k (time_str v))
            w.Smt_obs.Snapshot.w_qor;
          List.iter
            (fun (k, v) -> Printf.printf "  counter.%s = %d\n" k v)
            w.Smt_obs.Snapshot.w_counters;
          List.iter
            (fun (stage, ms) ->
              let prof =
                match List.assoc_opt stage lw.Ledger.lw_prof with
                | None -> ""
                | Some (p : Prof.stats) ->
                  Printf.sprintf " [minor %.2f Mw, major %.2f Mw, gc %d/%d]"
                    (p.Prof.minor_words /. 1e6)
                    (p.Prof.major_words /. 1e6)
                    p.Prof.minor_collections p.Prof.major_collections
              in
              Printf.printf "  stage %-55s %8.1f ms%s\n" stage ms prof)
            w.Smt_obs.Snapshot.w_stage_ms)
        r.Ledger.r_workloads
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc:"Record id.")
  in
  Cmd.v (Cmd.info "show" ~doc:"Show one ledger record in full")
    Term.(const run $ runs_ledger_arg $ id_arg)

let runs_trend_cmd =
  let run ledger snapshot_dir metric workload all json gate jobs =
    let jobs = jobs_of jobs in
    let records =
      match snapshot_dir with
      | Some dir -> (
        match Trend.of_snapshot_dir dir with
        | Ok rs -> rs
        | Error e ->
          Printf.eprintf "cannot read snapshot dir %s: %s\n" dir e;
          exit 2)
      | None -> (read_ledger_or_die (ledger_path_of ledger)).Ledger.records
    in
    (* Fan the per-workload analysis out over domains; concatenating in
       input order keeps the output byte-identical at any job count. *)
    let series =
      List.concat
        (Smt_obs.Par.map ~jobs
           (Trend.analyze_workload ~metric ~qor_only:(not all) records)
           (Trend.workload_names ~filter:workload records))
    in
    if json then print_endline (Trend.to_json series)
    else begin
      if series <> [] then print_endline (Trend.render series);
      print_string (Trend.render_regressions records)
    end;
    if gate && Trend.has_regressions records then exit 1
  in
  let snapshot_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:"Analyze a directory of BENCH_*.json snapshots (filename order) instead \
                of a ledger.")
  in
  let metric_arg =
    Arg.(
      value & opt string ""
      & info [ "metric" ] ~docv:"SUBSTR" ~doc:"Only metrics containing this substring.")
  in
  let workload_arg =
    Arg.(
      value & opt string ""
      & info [ "workload" ] ~docv:"SUBSTR" ~doc:"Only workloads containing this substring.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Include counter.* and stage_ms.* series, not just qor.* (no effect when \
                --metric is given).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the series as JSON instead of a table.")
  in
  let gate_arg =
    Arg.(
      value & flag
      & info [ "gate" ]
          ~doc:"Exit 1 when any adjacent-record transition classifies as a regression \
                under the bench-compare rules.")
  in
  Cmd.v
    (Cmd.info "trend"
       ~doc:
         "Per-workload, per-metric time series over the ledger: first/latest/best/worst \
          values and a Regression/Advisory classification of every adjacent-record \
          transition, reusing the bench-compare rules.")
    Term.(
      const run $ runs_ledger_arg $ snapshot_dir_arg $ metric_arg $ workload_arg $ all_arg
      $ json_arg $ gate_arg $ jobs_arg)

let runs_gc_cmd =
  let run ledger keep =
    let path = ledger_path_of ledger in
    match Ledger.gc ?keep path with
    | Error e ->
      Printf.eprintf "ledger gc: %s\n" e;
      exit 2
    | Ok g ->
      Printf.printf "ledger gc: kept %d record%s, dropped %d malformed line%s, %d old record%s\n"
        g.Ledger.kept
        (if g.Ledger.kept = 1 then "" else "s")
        g.Ledger.dropped_malformed
        (if g.Ledger.dropped_malformed = 1 then "" else "s")
        g.Ledger.dropped_old
        (if g.Ledger.dropped_old = 1 then "" else "s")
  in
  let keep_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "keep" ] ~docv:"N" ~doc:"Also drop all but the newest $(docv) records.")
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:"Rewrite the ledger dropping malformed (truncated) lines and, with --keep, \
             old records.")
    Term.(const run $ runs_ledger_arg $ keep_arg)

let runs_cmd =
  Cmd.group
    (Cmd.info "runs"
       ~doc:
         "Inspect the persistent run ledger: list records, show one in full, chart \
          QoR trends with regression detection, or compact the file.")
    [ runs_list_cmd; runs_show_cmd; runs_trend_cmd; runs_gc_cmd ]

let flame_cmd =
  let run trace out =
    match Flame.of_file trace with
    | Error e ->
      Printf.eprintf "flame: %s\n" e;
      exit 2
    | Ok folded ->
      let rendered = Flame.render folded in
      (match out with
      | Some path ->
        J.to_file path rendered;
        Printf.eprintf "folded stacks written to %s (%d stacks)\n%!" path
          (List.length folded)
      | None -> print_string rendered)
  in
  let trace_pos_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE" ~doc:"Chrome trace_event JSON written by --trace.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")
  in
  Cmd.v
    (Cmd.info "flame"
       ~doc:
         "Convert a --trace Chrome trace into folded-stacks format (one \
          'root;child;leaf <self-us>' line per stack, flamegraph.pl / speedscope / \
          inferno input).  Nesting is rebuilt from span time containment per thread; \
          identical stacks merge across threads, so the output is stable under worker \
          placement.")
    Term.(const run $ trace_pos_arg $ out_arg)

let main =
  Cmd.group
    (Cmd.info "smt_flow" ~version
       ~doc:"Selective multi-threshold CMOS design flows (DATE 2005 reproduction)")
    [
      run_cmd; stages_cmd; table1_cmd; corners_cmd; report_cmd; explain_cmd;
      bench_snapshot_cmd; bench_compare_cmd; check_cmd; lint_cmd; list_cmd; runs_cmd;
      flame_cmd; campaign_cmd;
    ]

let () = exit (Cmd.eval main)
