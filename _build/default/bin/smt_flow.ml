(* Command-line driver for the Selective-MT design flows.

   Examples:
     smt_flow run -c circuit_a -t improved
     smt_flow run -c circuit_b -t dual --bounce-limit 0.08
     smt_flow table1
     smt_flow list
     smt_flow stages -c circuit_a *)

module Flow = Smt_core.Flow
module Cluster = Smt_core.Cluster
module Suite = Smt_circuits.Suite
module Library = Smt_cell.Library
module Tech = Smt_cell.Tech

open Cmdliner

let lib () = Library.default ()

let generator_of name =
  match List.assoc_opt name Suite.all with
  | Some g -> Ok g
  | None ->
    Error
      (Printf.sprintf "unknown circuit %s (try: %s)" name
         (String.concat ", " (List.map fst Suite.all)))

let technique_of = function
  | "dual" | "dual-vth" -> Ok Flow.Dual_vth
  | "conventional" | "con" -> Ok Flow.Conventional_smt
  | "improved" | "imp" -> Ok Flow.Improved_smt
  | s -> Error (Printf.sprintf "unknown technique %s (dual|conventional|improved)" s)

let circuit_arg =
  Arg.(value & opt string "circuit_a" & info [ "c"; "circuit" ] ~doc:"Circuit name.")

let technique_arg =
  Arg.(value & opt string "improved" & info [ "t"; "technique" ] ~doc:"dual|conventional|improved.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let bounce_arg =
  Arg.(value & opt (some float) None & info [ "bounce-limit" ] ~doc:"VGND bounce limit (V).")

let length_arg =
  Arg.(value & opt (some float) None & info [ "vgnd-length" ] ~doc:"VGND length cap (um).")

let cells_arg =
  Arg.(value & opt (some int) None & info [ "cells-per-switch" ] ~doc:"EM cap on cells per switch.")

let retention_arg =
  Arg.(value & flag & info [ "retention" ] ~doc:"Convert slack-rich flip-flops to retention flip-flops.")

let sizing_arg =
  Arg.(value & flag & info [ "gate-sizing" ] ~doc:"Downsize off-critical cells after the Vth assignment.")

let options_of ?(retention = false) ?(sizing = false) seed bounce length cells =
  let tech = Tech.default in
  let p = Cluster.default_params tech in
  let p =
    {
      p with
      Cluster.bounce_limit = Option.value bounce ~default:p.Cluster.bounce_limit;
      Cluster.length_limit = Option.value length ~default:p.Cluster.length_limit;
      Cluster.cell_limit = Option.value cells ~default:p.Cluster.cell_limit;
    }
  in
  {
    Flow.default_options with
    Flow.seed;
    Flow.cluster_params = Some p;
    Flow.retention_registers = retention;
    Flow.gate_sizing = sizing;
  }

let emit_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit" ] ~doc:"Write the transformed netlist to this file.")

let run_cmd =
  let run circuit technique seed bounce length cells retention sizing emit =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let options = options_of ~retention ~sizing seed bounce length cells in
      let nl = gen (lib ()) in
      let report = Flow.run ~options t nl in
      Format.printf "%a@." Flow.pp_report report;
      (match emit with
      | Some path ->
        Smt_netlist.Writer.to_file nl path;
        Printf.printf "netlist written to %s\n" path
      | None -> ())
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one flow on one circuit")
    Term.(
      const run $ circuit_arg $ technique_arg $ seed_arg $ bounce_arg $ length_arg $ cells_arg
      $ retention_arg $ sizing_arg $ emit_arg)

let corners_cmd =
  let run circuit technique seed =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let options = { Flow.default_options with Flow.seed } in
      let nl = gen (lib ()) in
      let report = Flow.run ~options t nl in
      Printf.printf "multi-corner sign-off of %s (%s), clock %.1f ps:\n\n"
        report.Flow.circuit
        (Flow.technique_name report.Flow.technique)
        report.Flow.clock_period;
      let cfg =
        Smt_sta.Sta.config ~clock_period:report.Flow.clock_period ()
      in
      print_endline (Smt_core.Signoff.render (Smt_core.Signoff.run cfg nl))
  in
  Cmd.v (Cmd.info "corners" ~doc:"Multi-corner timing & leakage sign-off")
    Term.(const run $ circuit_arg $ technique_arg $ seed_arg)

let stages_cmd =
  let run circuit seed bounce length cells =
    match generator_of circuit with
    | Error e ->
      prerr_endline e;
      exit 2
    | Ok gen ->
      let options = options_of seed bounce length cells in
      let report = Flow.run ~options Flow.Improved_smt (gen (lib ())) in
      Printf.printf "Improved Selective-MT flow on %s (clock %.1f ps)\n\n"
        report.Flow.circuit report.Flow.clock_period;
      let header =
        [ "Stage"; "Area um^2"; "Standby nW"; "WNS ps"; "Bounce V"; "Switches"; "Holders" ]
      in
      let rows =
        List.map
          (fun (s : Flow.stage) ->
            [
              s.Flow.stage_name;
              Printf.sprintf "%.1f" s.Flow.stage_area;
              Printf.sprintf "%.1f" s.Flow.stage_standby_nw;
              Printf.sprintf "%.1f" s.Flow.stage_wns;
              Printf.sprintf "%.4f" s.Flow.stage_worst_bounce;
              string_of_int s.Flow.stage_switches;
              string_of_int s.Flow.stage_holders;
            ])
          report.Flow.stages
      in
      print_endline (Smt_util.Text_table.render ~header rows)
  in
  Cmd.v (Cmd.info "stages" ~doc:"Show per-stage metrics of the improved flow (the paper's Fig. 4)")
    Term.(const run $ circuit_arg $ seed_arg $ bounce_arg $ length_arg $ cells_arg)

let table1_cmd =
  let run seed =
    let l = lib () in
    let options = { Flow.default_options with Flow.seed } in
    let rows =
      [
        Smt_core.Compare.table1_row ~options (fun () -> Suite.circuit_a l);
        Smt_core.Compare.table1_row ~options (fun () -> Suite.circuit_b l);
      ]
    in
    print_endline (Smt_core.Compare.render rows)
  in
  Cmd.v (Cmd.info "table1" ~doc:"Reproduce the paper's Table 1")
    Term.(const run $ seed_arg)

let report_cmd =
  let run circuit technique seed =
    match (generator_of circuit, technique_of technique) with
    | Error e, _ | _, Error e ->
      prerr_endline e;
      exit 2
    | Ok gen, Ok t ->
      let options = { Flow.default_options with Flow.seed } in
      let nl = gen (lib ()) in
      let r = Flow.run ~options t nl in
      let cfg = Smt_sta.Sta.config ~clock_period:r.Flow.clock_period () in
      let sta = Smt_sta.Sta.analyze cfg nl in
      print_endline (Smt_core.Report.summary sta);
      print_newline ();
      print_endline (Smt_core.Report.timing ~paths:2 sta);
      print_endline (Smt_core.Report.power nl);
      print_newline ();
      print_endline (Smt_core.Report.area nl)
  in
  Cmd.v (Cmd.info "report" ~doc:"Sign-off style timing / power / area reports")
    Term.(const run $ circuit_arg $ technique_arg $ seed_arg)

let list_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List available circuits") Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "smt_flow" ~version:"1.0.0"
       ~doc:"Selective multi-threshold CMOS design flows (DATE 2005 reproduction)")
    [ run_cmd; stages_cmd; table1_cmd; corners_cmd; report_cmd; list_cmd ]

let () = exit (Cmd.eval main)
