(* Reproduce the paper's Table 1: Dual-Vth vs conventional vs improved
   Selective-MT on circuits A and B, normalized to Dual-Vth = 100%. *)

let () =
  let lib = Smt_cell.Library.default () in
  let rows =
    [
      Smt_core.Compare.table1_row (fun () -> Smt_circuits.Suite.circuit_a lib);
      Smt_core.Compare.table1_row (fun () -> Smt_circuits.Suite.circuit_b lib);
    ]
  in
  print_endline "Table 1: Comparison of three techniques";
  print_endline (Smt_core.Compare.render rows);
  print_newline ();
  print_endline "Details:";
  print_endline (Smt_core.Compare.render_details rows);
  List.iter
    (fun row ->
      let area_saving, leak_saving = Smt_core.Compare.improvement row in
      Printf.printf
        "%s: improved vs conventional: area -%.1f%%, leakage -%.1f%% (paper: ~-20%%, ~-40%%)\n"
        row.Smt_core.Compare.circuit (100.0 *. area_saving) (100.0 *. leak_saving))
    rows
