module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Geom = Smt_util.Geom
module Generators = Smt_circuits.Generators
module Library = Smt_cell.Library

let lib = Library.default ()

let test_all_instances_placed () =
  let nl = Generators.multiplier ~name:"m" ~bits:6 lib in
  let place = Placement.place nl in
  let die = Placement.die place in
  List.iter
    (fun iid ->
      match Placement.inst_point_opt place iid with
      | Some p ->
        Alcotest.(check bool)
          (Netlist.inst_name nl iid ^ " inside die")
          true (Geom.contains die p)
      | None -> Alcotest.fail (Netlist.inst_name nl iid ^ " unplaced"))
    (Netlist.live_insts nl)

let test_die_sized_to_utilization () =
  let nl = Generators.multiplier ~name:"m" ~bits:6 lib in
  let place = Placement.place ~utilization:0.5 nl in
  let die = Placement.die place in
  let die_area = Geom.width die *. Geom.height die in
  let cell_area = Netlist.total_area nl in
  Alcotest.(check bool) "die fits cells at utilization" true
    (die_area >= cell_area /. 0.5 *. 0.9)

let test_deterministic_by_seed () =
  let nl1 = Generators.multiplier ~name:"m" ~bits:5 lib in
  let nl2 = Generators.multiplier ~name:"m" ~bits:5 lib in
  let p1 = Placement.place ~seed:7 nl1 and p2 = Placement.place ~seed:7 nl2 in
  List.iter2
    (fun a b ->
      let pa = Placement.inst_point p1 a and pb = Placement.inst_point p2 b in
      Alcotest.(check bool) "same position" true (pa = pb))
    (Netlist.live_insts nl1) (Netlist.live_insts nl2)

let test_rows_legalized () =
  let nl = Generators.multiplier ~name:"m" ~bits:6 lib in
  let place = Placement.place nl in
  let tech = Library.tech lib in
  let row_h = tech.Smt_cell.Tech.row_height in
  (* every y sits at a row centre *)
  List.iter
    (fun iid ->
      let p = Placement.inst_point place iid in
      let frac = Float.rem (p.Geom.y -. (row_h /. 2.0)) row_h in
      Alcotest.(check bool) "on row centre" true (Float.abs frac < 1e-6))
    (Netlist.live_insts nl)

let test_no_overlap_in_rows () =
  let nl = Generators.multiplier ~name:"m" ~bits:5 lib in
  let place = Placement.place nl in
  let tech = Library.tech lib in
  let row_h = tech.Smt_cell.Tech.row_height in
  (* group by row, check x-extents do not overlap *)
  let by_row = Hashtbl.create 97 in
  List.iter
    (fun iid ->
      let p = Placement.inst_point place iid in
      let row = int_of_float (p.Geom.y /. row_h) in
      let w = (Netlist.cell nl iid).Smt_cell.Cell.area /. row_h in
      let lo = p.Geom.x -. (w /. 2.0) and hi = p.Geom.x +. (w /. 2.0) in
      Hashtbl.replace by_row row ((lo, hi) :: (Option.value (Hashtbl.find_opt by_row row) ~default:[])))
    (Netlist.live_insts nl);
  Hashtbl.iter
    (fun _row spans ->
      let sorted = List.sort compare spans in
      let rec walk = function
        | (_, hi1) :: ((lo2, _) as b) :: rest ->
          Alcotest.(check bool) "no overlap" true (lo2 >= hi1 -. 1e-6);
          walk (b :: rest)
        | [ _ ] | [] -> ()
      in
      walk sorted)
    by_row

let test_ports_on_boundary () =
  let nl = Generators.c17 lib in
  let place = Placement.place nl in
  let die = Placement.die place in
  List.iter
    (fun (name, _) ->
      match Placement.port_point place name with
      | Some p -> Alcotest.(check (float 1e-9)) (name ^ " on west edge") die.Geom.lx p.Geom.x
      | None -> Alcotest.fail (name ^ " missing"))
    (Netlist.inputs nl);
  List.iter
    (fun (name, _) ->
      match Placement.port_point place name with
      | Some p -> Alcotest.(check (float 1e-9)) (name ^ " on east edge") die.Geom.hx p.Geom.x
      | None -> Alcotest.fail (name ^ " missing"))
    (Netlist.outputs nl)

let test_place_inst_clamps () =
  let nl = Generators.c17 lib in
  let place = Placement.place nl in
  let die = Placement.die place in
  let iid = List.hd (Netlist.live_insts nl) in
  Placement.place_inst place iid { Geom.x = -100.0; Geom.y = 1e9 };
  let p = Placement.inst_point place iid in
  Alcotest.(check bool) "clamped" true (Geom.contains die p)

let test_hpwl_positive_and_localized () =
  let nl = Generators.multiplier ~name:"m" ~bits:6 lib in
  let place = Placement.place nl in
  let total = Placement.total_hpwl place in
  Alcotest.(check bool) "positive" true (total > 0.0);
  (* refinement should beat a shuffled placement *)
  let nl2 = Generators.multiplier ~name:"m" ~bits:6 lib in
  let place2 = Placement.place ~iterations:0 ~seed:99 nl2 in
  let total2 = Placement.total_hpwl place2 in
  Alcotest.(check bool) "refined <= unrefined * 1.1" true (total <= total2 *. 1.1)

let test_centroid () =
  let nl = Generators.c17 lib in
  let place = Placement.place nl in
  let insts = Netlist.live_insts nl in
  let c = Placement.centroid place insts in
  Alcotest.(check bool) "centroid inside die" true (Geom.contains (Placement.die place) c);
  let empty_c = Placement.centroid place [] in
  let die_c = Geom.center (Placement.die place) in
  Alcotest.(check bool) "empty = die centre" true (empty_c = die_c)

let test_net_hpwl_and_pin_points () =
  let nl = Generators.c17 lib in
  let place = Placement.place nl in
  Netlist.iter_nets nl (fun nid ->
      let pts = Placement.pin_points place nid in
      Alcotest.(check bool) "every net has points" true (pts <> []);
      Alcotest.(check bool) "hpwl non-negative" true (Placement.net_hpwl place nid >= 0.0))

let () =
  Alcotest.run "smt_place"
    [
      ( "placement",
        [
          Alcotest.test_case "all placed in die" `Quick test_all_instances_placed;
          Alcotest.test_case "die utilization" `Quick test_die_sized_to_utilization;
          Alcotest.test_case "deterministic" `Quick test_deterministic_by_seed;
          Alcotest.test_case "rows legalized" `Quick test_rows_legalized;
          Alcotest.test_case "no overlap in rows" `Quick test_no_overlap_in_rows;
          Alcotest.test_case "ports on boundary" `Quick test_ports_on_boundary;
          Alcotest.test_case "place_inst clamps" `Quick test_place_inst_clamps;
        ] );
      ( "wirelength",
        [
          Alcotest.test_case "hpwl positive/localized" `Quick test_hpwl_positive_and_localized;
          Alcotest.test_case "centroid" `Quick test_centroid;
          Alcotest.test_case "net pins" `Quick test_net_hpwl_and_pin_points;
        ] );
    ]
