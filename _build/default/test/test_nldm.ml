(* Tests for the NLDM table model and the slew-aware STA path. *)

module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Sta = Smt_sta.Sta
module Nldm = Smt_cell.Nldm
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()

let nand2 = Library.variant lib Func.Nand2 Vth.Low Vth.Plain

(* --- table mechanics --- *)

let linear_table () =
  Nldm.make ~slews:[| 0.0; 10.0; 20.0 |] ~loads:[| 0.0; 5.0; 50.0 |]
    ~f:(fun ~slew ~load -> (2.0 *. slew) +. (3.0 *. load))

let test_lookup_grid_points () =
  let t = linear_table () in
  List.iter
    (fun (s, l) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "at (%g,%g)" s l)
        ((2.0 *. s) +. (3.0 *. l))
        (Nldm.lookup t ~slew:s ~load:l))
    [ (0.0, 0.0); (10.0, 5.0); (20.0, 50.0); (0.0, 50.0); (20.0, 0.0) ]

let test_lookup_bilinear_exact_on_linear () =
  (* bilinear interpolation reproduces a linear function everywhere *)
  let t = linear_table () in
  List.iter
    (fun (s, l) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "between (%g,%g)" s l)
        ((2.0 *. s) +. (3.0 *. l))
        (Nldm.lookup t ~slew:s ~load:l))
    [ (5.0, 2.5); (15.0, 27.5); (1.0, 49.0); (19.0, 1.0) ]

let test_lookup_clamps () =
  let t = linear_table () in
  Alcotest.(check (float 1e-9)) "below both axes" 0.0 (Nldm.lookup t ~slew:(-5.0) ~load:(-1.0));
  Alcotest.(check (float 1e-9)) "above both axes"
    ((2.0 *. 20.0) +. (3.0 *. 50.0))
    (Nldm.lookup t ~slew:100.0 ~load:500.0)

let test_make_validates () =
  Alcotest.(check bool) "empty axis rejected" true
    (try
       ignore (Nldm.make ~slews:[||] ~loads:[| 1.0 |] ~f:(fun ~slew:_ ~load:_ -> 0.0));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unsorted axis rejected" true
    (try
       ignore
         (Nldm.make ~slews:[| 1.0; 1.0 |] ~loads:[| 1.0 |] ~f:(fun ~slew:_ ~load:_ -> 0.0));
       false
     with Invalid_argument _ -> true)

(* --- characterization --- *)

let test_characterize_monotone () =
  let arcs = Nldm.characterize nand2 in
  let d s l = Nldm.lookup arcs.Nldm.delay ~slew:s ~load:l in
  Alcotest.(check bool) "delay grows with load" true (d 20.0 40.0 > d 20.0 2.0);
  Alcotest.(check bool) "delay grows with input slew" true (d 150.0 10.0 > d 10.0 10.0);
  let s s l = Nldm.lookup arcs.Nldm.out_slew ~slew:s ~load:l in
  Alcotest.(check bool) "output slew grows with load" true (s 20.0 40.0 > s 20.0 2.0)

let test_characterize_anchored_to_linear () =
  (* at the fastest input edge the table should sit near the linear model *)
  let arcs = Nldm.characterize nand2 in
  let table = Nldm.lookup arcs.Nldm.delay ~slew:5.0 ~load:10.0 in
  let linear = Cell.delay nand2 ~load_ff:10.0 in
  Alcotest.(check bool) "within 15% of linear at fast edge" true
    (Float.abs (table -. linear) /. linear < 0.15)

let test_store_caches () =
  let store = Nldm.store () in
  let a1 = Nldm.arcs_of store nand2 in
  let a2 = Nldm.arcs_of store nand2 in
  Alcotest.(check bool) "same physical table" true (a1 == a2)

(* --- slew-aware STA --- *)

let chain n =
  let b = Builder.create ~name:"chain" ~lib () in
  let a = Builder.input b "a" in
  let last = ref a in
  for _ = 1 to n do
    last := Builder.not_ b !last
  done;
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ !last ] o;
  Builder.netlist b

let test_slew_aware_slower () =
  let nl = chain 8 in
  let plain = Sta.analyze (Sta.config ~clock_period:1e5 ()) nl in
  let aware = Sta.analyze (Sta.config ~slew_aware:true ~clock_period:1e5 ()) nl in
  let o = Option.get (Netlist.find_net nl "o") in
  Alcotest.(check bool) "slew-aware arrival larger" true
    (Sta.arrival aware o > Sta.arrival plain o)

let test_slew_propagates () =
  let nl = chain 6 in
  let aware = Sta.analyze (Sta.config ~slew_aware:true ~clock_period:1e5 ()) nl in
  Netlist.iter_nets nl (fun nid ->
      Alcotest.(check bool) "slew positive everywhere" true (Sta.slew aware nid > 0.0))

let test_heavy_load_degrades_slew () =
  (* an inverter driving 12 sinks emits a slower edge than one driving 1 *)
  let b = Builder.create ~name:"fan" ~lib () in
  let a = Builder.input b "a" in
  let light = Builder.not_ b a in
  let heavy = Builder.not_ b a in
  let o1 = Builder.output b "o1" in
  Builder.gate_into b Func.Buf [ light ] o1;
  for i = 0 to 11 do
    let o = Builder.output b (Printf.sprintf "h%d" i) in
    Builder.gate_into b Func.Buf [ heavy ] o
  done;
  let nl = Builder.netlist b in
  let aware = Sta.analyze (Sta.config ~slew_aware:true ~clock_period:1e5 ()) nl in
  Alcotest.(check bool) "fanout slows the edge" true
    (Sta.slew aware heavy > Sta.slew aware light)

let test_slew_aware_consistent_backward () =
  (* required times must be consistent with the slew-aware delays: on a
     single path, slack is uniform along the path *)
  let nl = chain 5 in
  let sta = Sta.analyze (Sta.config ~slew_aware:true ~clock_period:500.0 ()) nl in
  let o = Option.get (Netlist.find_net nl "o") in
  let end_slack = Sta.net_slack sta o in
  Netlist.iter_nets nl (fun nid ->
      if (not (Netlist.is_clock_net nl nid)) && Sta.net_slack sta nid < infinity then
        Alcotest.(check (float 1e-6)) "uniform slack on a chain" end_slack
          (Sta.net_slack sta nid))

let test_slew_aware_incremental () =
  let nl = Generators.multiplier ~name:"m5" ~bits:5 lib in
  let cfg = Sta.config ~slew_aware:true ~clock_period:5000.0 () in
  let sta = Sta.analyze cfg nl in
  let victims =
    Netlist.live_insts nl
    |> List.filter (fun iid ->
           let c = Netlist.cell nl iid in
           c.Cell.vth = Vth.Low && c.Cell.style = Vth.Plain
           && not (Func.is_sequential c.Cell.kind))
    |> List.filteri (fun i _ -> i mod 7 = 0)
  in
  List.iter
    (fun iid ->
      Netlist.replace_cell nl iid (Library.restyle lib (Netlist.cell nl iid) Vth.High Vth.Plain))
    victims;
  let incr = Sta.update sta ~changed:victims in
  let full = Sta.analyze cfg nl in
  Netlist.iter_nets nl (fun nid ->
      Alcotest.(check (float 1e-6)) "arrival agrees" (Sta.arrival full nid)
        (Sta.arrival incr nid);
      Alcotest.(check (float 1e-6)) "slew agrees" (Sta.slew full nid) (Sta.slew incr nid))

let test_flow_runs_slew_aware () =
  (* the full improved flow also works under the NLDM model *)
  let nl = Generators.multiplier ~name:"m6" ~bits:6 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~slew_aware:true ~clock_period:probe ()) nl in
  let period = (probe -. Sta.wns sta) *. 1.3 in
  let cfg = Sta.config ~slew_aware:true ~clock_period:period () in
  let r = Smt_core.Vth_assign.assign cfg nl in
  Alcotest.(check bool) "assignment works under NLDM" true (r.Smt_core.Vth_assign.swapped > 0);
  Alcotest.(check bool) "timing met" true (Sta.meets_timing r.Smt_core.Vth_assign.sta)

let test_full_flow_slew_aware () =
  let options = { Smt_core.Flow.default_options with Smt_core.Flow.slew_aware = true } in
  let nl = Generators.multiplier ~name:"m6f" ~bits:6 lib in
  let r = Smt_core.Flow.run ~options Smt_core.Flow.Improved_smt nl in
  Alcotest.(check bool) "timing met under NLDM" true r.Smt_core.Flow.timing_met;
  Alcotest.(check bool) "hold met under NLDM" true r.Smt_core.Flow.hold_met;
  Alcotest.(check int) "bounce clean" 0 r.Smt_core.Flow.bounce_violations;
  (* NLDM delays are larger, so the self-calibrated clock is slower *)
  let nl2 = Generators.multiplier ~name:"m6g" ~bits:6 lib in
  let linear = Smt_core.Flow.run Smt_core.Flow.Improved_smt nl2 in
  Alcotest.(check bool) "NLDM clock slower than linear" true
    (r.Smt_core.Flow.clock_period > linear.Smt_core.Flow.clock_period)

let () =
  Alcotest.run "smt_nldm"
    [
      ( "tables",
        [
          Alcotest.test_case "grid points exact" `Quick test_lookup_grid_points;
          Alcotest.test_case "bilinear on linear fn" `Quick test_lookup_bilinear_exact_on_linear;
          Alcotest.test_case "clamping" `Quick test_lookup_clamps;
          Alcotest.test_case "axis validation" `Quick test_make_validates;
        ] );
      ( "characterization",
        [
          Alcotest.test_case "monotone" `Quick test_characterize_monotone;
          Alcotest.test_case "anchored to linear" `Quick test_characterize_anchored_to_linear;
          Alcotest.test_case "store caches" `Quick test_store_caches;
        ] );
      ( "slew-aware-sta",
        [
          Alcotest.test_case "slower than linear" `Quick test_slew_aware_slower;
          Alcotest.test_case "slew propagates" `Quick test_slew_propagates;
          Alcotest.test_case "fanout degrades edge" `Quick test_heavy_load_degrades_slew;
          Alcotest.test_case "backward consistent" `Quick test_slew_aware_consistent_backward;
          Alcotest.test_case "incremental agrees" `Quick test_slew_aware_incremental;
          Alcotest.test_case "vth assignment works" `Quick test_flow_runs_slew_aware;
          Alcotest.test_case "full flow under NLDM" `Quick test_full_flow_slew_aware;
        ] );
    ]
