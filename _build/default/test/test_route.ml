module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Parasitics = Smt_route.Parasitics
module Crosstalk = Smt_route.Crosstalk
module Wire = Smt_sta.Wire
module Library = Smt_cell.Library
module Tech = Smt_cell.Tech
module Generators = Smt_circuits.Generators

let lib = Library.default ()
let tech = Library.tech lib

let fixture () =
  let nl = Generators.multiplier ~name:"m" ~bits:5 lib in
  let place = Placement.place nl in
  (nl, place)

let test_corners () =
  let _, place = fixture () in
  Alcotest.(check bool) "estimate corner" true
    (Parasitics.corner (Parasitics.estimate place) = Parasitics.Estimated);
  Alcotest.(check bool) "extract corner" true
    (Parasitics.corner (Parasitics.extract place) = Parasitics.Extracted)

let test_lengths_positive () =
  let nl, place = fixture () in
  let ext = Parasitics.extract place in
  let some_positive = ref false in
  Netlist.iter_nets nl (fun nid ->
      let len = Parasitics.net_length ext nid in
      Alcotest.(check bool) "non-negative" true (len >= 0.0);
      if len > 0.0 then some_positive := true);
  Alcotest.(check bool) "some routing exists" true !some_positive;
  Alcotest.(check bool) "total positive" true (Parasitics.total_wirelength ext > 0.0)

let test_rc_proportional_to_length () =
  let nl, place = fixture () in
  let ext = Parasitics.extract place in
  Netlist.iter_nets nl (fun nid ->
      let len = Parasitics.net_length ext nid in
      Alcotest.(check (float 1e-6)) "cap = c*len" (len *. tech.Tech.wire_c_per_um)
        (Parasitics.net_cap ext nid);
      Alcotest.(check (float 1e-6)) "res = r*len" (len *. tech.Tech.wire_r_per_um)
        (Parasitics.net_res ext nid))

let test_estimate_error_bounded () =
  let nl, place = fixture () in
  let est = Parasitics.estimate place in
  let bound = tech.Tech.rc_estimation_error in
  Netlist.iter_nets nl (fun nid ->
      let hpwl = Placement.net_hpwl place nid in
      let len = Parasitics.net_length est nid in
      if hpwl > 0.0 then begin
        let err = Float.abs (len -. hpwl) /. hpwl in
        Alcotest.(check bool) "error within bound" true (err <= bound +. 1e-9)
      end)

let test_estimate_deterministic () =
  let _, place = fixture () in
  let e1 = Parasitics.estimate ~seed:5 place in
  let e2 = Parasitics.estimate ~seed:5 place in
  let nl = Placement.netlist place in
  Netlist.iter_nets nl (fun nid ->
      Alcotest.(check (float 1e-12)) "same estimate" (Parasitics.net_length e1 nid)
        (Parasitics.net_length e2 nid))

let test_extracted_longer_than_hpwl () =
  (* spanning tree with detour >= bbox half perimeter on multi-pin nets *)
  let nl, place = fixture () in
  let ext = Parasitics.extract ~detour:1.2 place in
  let violations = ref 0 in
  Netlist.iter_nets nl (fun nid ->
      let hpwl = Placement.net_hpwl place nid in
      if hpwl > 0.0 && Parasitics.net_length ext nid < hpwl /. 2.0 then incr violations);
  Alcotest.(check int) "routed length plausible" 0 !violations

let test_detour_scales () =
  let nl, place = fixture () in
  let e1 = Parasitics.extract ~detour:1.0 place in
  let e2 = Parasitics.extract ~detour:1.5 place in
  Netlist.iter_nets nl (fun nid ->
      Alcotest.(check (float 1e-6)) "linear in detour"
        (1.5 *. Parasitics.net_length e1 nid)
        (Parasitics.net_length e2 nid))

let test_wire_model () =
  let nl, place = fixture () in
  let ext = Parasitics.extract place in
  let wm = Parasitics.wire_model ext nl in
  Netlist.iter_nets nl (fun nid ->
      let cap = wm.Wire.net_cap nid in
      Alcotest.(check bool) "cap >= 0" true (cap >= 0.0);
      List.iter
        (fun pin ->
          let d = wm.Wire.net_delay nid pin in
          Alcotest.(check bool) "delay >= 0" true (d >= 0.0))
        (Netlist.sinks nl nid))

let test_spef_roundtrip () =
  let nl, place = fixture () in
  let ext = Parasitics.extract place in
  let text = Parasitics.to_spef ext nl in
  let back = Parasitics.of_spef ~lib nl text in
  Alcotest.(check bool) "corner preserved" true (Parasitics.corner back = Parasitics.Extracted);
  Netlist.iter_nets nl (fun nid ->
      Alcotest.(check (float 1e-3)) "length round trips" (Parasitics.net_length ext nid)
        (Parasitics.net_length back nid);
      Alcotest.(check (float 1e-3)) "cap round trips" (Parasitics.net_cap ext nid)
        (Parasitics.net_cap back nid))

let test_spef_rejects_bad () =
  let nl, _ = fixture () in
  Alcotest.(check bool) "unknown net" true
    (try
       ignore (Parasitics.of_spef ~lib nl "*D_NET bogus_net 1.0\n");
       false
     with Failure _ -> true);
  Alcotest.(check bool) "orphan *R" true
    (try
       ignore (Parasitics.of_spef ~lib nl "*R 1.0\n");
       false
     with Failure _ -> true)

let test_crosstalk_monotone () =
  let prev = ref (-1.0) in
  List.iter
    (fun len ->
      let f = Crosstalk.coupling_fraction ~length:len in
      Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0);
      Alcotest.(check bool) "monotone" true (f >= !prev);
      prev := f)
    [ 0.0; 10.0; 50.0; 100.0; 500.0; 5000.0 ]

let test_vgnd_length_rule () =
  Alcotest.(check bool) "short ok" true
    (Crosstalk.vgnd_ok tech ~length:(tech.Tech.vgnd_length_limit -. 1.0));
  Alcotest.(check bool) "long rejected" false
    (Crosstalk.vgnd_ok tech ~length:(tech.Tech.vgnd_length_limit +. 1.0));
  Alcotest.(check bool) "noise grows" true
    (Crosstalk.noise_mv tech ~length:300.0 > Crosstalk.noise_mv tech ~length:30.0)

let () =
  Alcotest.run "smt_route"
    [
      ( "parasitics",
        [
          Alcotest.test_case "corners" `Quick test_corners;
          Alcotest.test_case "lengths positive" `Quick test_lengths_positive;
          Alcotest.test_case "rc proportional" `Quick test_rc_proportional_to_length;
          Alcotest.test_case "estimation error bounded" `Quick test_estimate_error_bounded;
          Alcotest.test_case "estimate deterministic" `Quick test_estimate_deterministic;
          Alcotest.test_case "extraction plausible" `Quick test_extracted_longer_than_hpwl;
          Alcotest.test_case "detour scaling" `Quick test_detour_scales;
          Alcotest.test_case "wire model" `Quick test_wire_model;
        ] );
      ( "spef",
        [
          Alcotest.test_case "roundtrip" `Quick test_spef_roundtrip;
          Alcotest.test_case "rejects bad input" `Quick test_spef_rejects_bad;
        ] );
      ( "crosstalk",
        [
          Alcotest.test_case "coupling monotone" `Quick test_crosstalk_monotone;
          Alcotest.test_case "vgnd length rule" `Quick test_vgnd_length_rule;
        ] );
    ]
