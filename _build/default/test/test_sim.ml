module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Logic = Smt_sim.Logic
module Simulator = Smt_sim.Simulator
module Equiv = Smt_sim.Equiv
module Activity = Smt_sim.Activity
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators

let lib = Library.default ()

let value = Alcotest.testable (fun fmt v -> Format.pp_print_char fmt (Logic.to_char v)) Logic.equal

(* --- three-valued logic --- *)

let test_logic_basics () =
  Alcotest.check value "of_bool true" Logic.T (Logic.of_bool true);
  Alcotest.(check (option bool)) "to_bool x" None (Logic.to_bool_opt Logic.X);
  Alcotest.(check (option bool)) "to_bool f" (Some false) (Logic.to_bool_opt Logic.F);
  Alcotest.(check char) "char" 'x' (Logic.to_char Logic.X)

let test_x_propagation_controlled () =
  (* NAND with one input 0 is 1 regardless of the X. *)
  Alcotest.check value "nand(0,x)=1" Logic.T (Logic.eval Func.Nand2 [| Logic.F; Logic.X |]);
  Alcotest.check value "and(0,x)=0" Logic.F (Logic.eval Func.And2 [| Logic.F; Logic.X |]);
  Alcotest.check value "or(1,x)=1" Logic.T (Logic.eval Func.Or2 [| Logic.T; Logic.X |]);
  Alcotest.check value "nor(1,x)=0" Logic.F (Logic.eval Func.Nor2 [| Logic.T; Logic.X |])

let test_x_propagation_sensitized () =
  Alcotest.check value "nand(1,x)=x" Logic.X (Logic.eval Func.Nand2 [| Logic.T; Logic.X |]);
  Alcotest.check value "xor(0,x)=x" Logic.X (Logic.eval Func.Xor2 [| Logic.F; Logic.X |]);
  Alcotest.check value "inv(x)=x" Logic.X (Logic.eval Func.Inv [| Logic.X |]);
  (* mux with equal data is insensitive to an unknown select *)
  Alcotest.check value "mux(a,a,x)=a" Logic.T
    (Logic.eval Func.Mux2 [| Logic.T; Logic.T; Logic.X |]);
  Alcotest.check value "mux(a,b,x)=x" Logic.X
    (Logic.eval Func.Mux2 [| Logic.T; Logic.F; Logic.X |])

(* --- combinational simulation: c17 against a reference model --- *)

let c17_reference g1 g2 g3 g4 g5 =
  let nand a b = not (a && b) in
  let n10 = nand g1 g3 in
  let n11 = nand g3 g4 in
  let n16 = nand g2 n11 in
  let n19 = nand n11 g5 in
  (nand n10 n16, nand n16 n19)

let test_c17_exhaustive () =
  let nl = Generators.c17 lib in
  let sim = Simulator.create nl in
  for mask = 0 to 31 do
    let bit i = mask land (1 lsl i) <> 0 in
    Simulator.set_inputs sim
      (List.mapi (fun i name -> (name, Logic.of_bool (bit i))) [ "G1"; "G2"; "G3"; "G4"; "G5" ]);
    Simulator.propagate sim;
    let e22, e23 = c17_reference (bit 0) (bit 1) (bit 2) (bit 3) (bit 4) in
    let outs = Simulator.output_values sim in
    Alcotest.check value "G22" (Logic.of_bool e22) (List.assoc "G22" outs);
    Alcotest.check value "G23" (Logic.of_bool e23) (List.assoc "G23" outs)
  done

let test_set_input_guards () =
  let nl = Generators.c17 lib in
  let sim = Simulator.create nl in
  Alcotest.(check bool) "non-PI rejected" true
    (try
       Simulator.set_inputs sim [ ("G22", Logic.T) ];
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "unknown rejected" true
    (try
       Simulator.set_inputs sim [ ("NOPE", Logic.T) ];
       false
     with Invalid_argument _ -> true)

(* --- sequential simulation --- *)

let test_dff_pipeline () =
  let b = Builder.create ~name:"pipe" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d = Builder.input b "d" in
  let q1 = Builder.dff b ~d ~clk in
  let q2 = Builder.dff b ~d:q1 ~clk in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ q2 ] o;
  let nl = Builder.netlist b in
  let sim = Simulator.create nl in
  Simulator.reset sim;
  let feed v =
    Simulator.set_inputs sim [ ("d", v) ];
    Simulator.propagate sim;
    let out = List.assoc "o" (Simulator.output_values sim) in
    Simulator.clock_edge sim;
    out
  in
  let o1 = feed Logic.T in
  let o2 = feed Logic.F in
  let o3 = feed Logic.F in
  let o4 = feed Logic.F in
  Alcotest.check value "cycle1: reset state" Logic.F o1;
  Alcotest.check value "cycle2: still old" Logic.F o2;
  Alcotest.check value "cycle3: T arrives after 2 edges" Logic.T o3;
  Alcotest.check value "cycle4: F follows" Logic.F o4

let test_counter_counts () =
  let nl = Generators.counter ~name:"cnt" ~bits:4 lib in
  let sim = Simulator.create nl in
  Simulator.reset sim;
  let read () =
    let outs = Simulator.output_values sim in
    List.fold_left
      (fun acc i ->
        match List.assoc (Printf.sprintf "count%d" i) outs with
        | Logic.T -> acc lor (1 lsl i)
        | Logic.F | Logic.X -> acc)
      0 [ 0; 1; 2; 3 ]
  in
  Simulator.set_inputs sim [ ("en", Logic.T) ];
  for expected = 0 to 9 do
    Simulator.propagate sim;
    Alcotest.(check int) (Printf.sprintf "count at cycle %d" expected) expected (read ());
    Simulator.clock_edge sim
  done;
  (* disable: value must hold *)
  Simulator.set_inputs sim [ ("en", Logic.F) ];
  Simulator.propagate sim;
  let frozen = read () in
  Simulator.clock_edge sim;
  Simulator.propagate sim;
  Alcotest.(check int) "hold when disabled" frozen (read ())

let test_ff_state_access () =
  let b = Builder.create ~name:"s" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d = Builder.input b "d" in
  let q = Builder.dff b ~d ~clk in
  let o = Builder.output b "o" in
  Builder.gate_into b Func.Buf [ q ] o;
  let nl = Builder.netlist b in
  let sim = Simulator.create nl in
  let ff =
    List.find
      (fun iid -> (Netlist.cell nl iid).Smt_cell.Cell.kind = Func.Dff)
      (Netlist.live_insts nl)
  in
  Simulator.set_ff_state sim ff Logic.T;
  Simulator.set_inputs sim [ ("d", Logic.F) ];
  Simulator.propagate sim;
  Alcotest.check value "state visible" Logic.T (List.assoc "o" (Simulator.output_values sim));
  Alcotest.check value "ff_state reads back" Logic.T (Simulator.ff_state sim ff)

(* --- standby mode: the floating-net hazard and holders --- *)

let standby_fixture ~with_holder =
  let nl = Netlist.create ~name:"stby" ~lib in
  let a = Netlist.add_input nl "a" in
  let mid = Netlist.add_net nl "mid" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let mt = Library.variant lib Func.Inv Vth.Low Vth.Mt_vgnd in
  let plain = Library.variant lib Func.Inv Vth.High Vth.Plain in
  ignore (Netlist.add_inst nl ~name:"m" mt [ ("A", a); ("Z", mid) ]);
  ignore (Netlist.add_inst nl ~name:"p" plain [ ("A", mid); ("Z", z) ]);
  if with_holder then
    ignore (Netlist.add_inst nl ~name:"h" (Library.holder lib) [ ("MTE", mte); ("Z", mid) ]);
  nl

let test_standby_floats_without_holder () =
  let nl = standby_fixture ~with_holder:false in
  let sim = Simulator.create nl in
  Simulator.set_inputs sim [ ("a", Logic.T); ("MTE", Logic.T) ];
  Simulator.propagate ~mode:Simulator.Standby sim;
  let mid = Option.get (Netlist.find_net nl "mid") in
  Alcotest.check value "MT output floats" Logic.X (Simulator.value sim mid);
  Alcotest.(check bool) "floating nets reported" true
    (List.mem mid (Simulator.floating_nets sim))

let test_standby_held_with_holder () =
  let nl = standby_fixture ~with_holder:true in
  let sim = Simulator.create nl in
  Simulator.set_inputs sim [ ("a", Logic.T); ("MTE", Logic.T) ];
  Simulator.propagate ~mode:Simulator.Standby sim;
  let mid = Option.get (Netlist.find_net nl "mid") in
  Alcotest.check value "holder forces 1" Logic.T (Simulator.value sim mid);
  let z = Option.get (Netlist.find_net nl "z") in
  Alcotest.check value "downstream cell sees defined input" Logic.F (Simulator.value sim z)

let test_standby_embedded_holds_itself () =
  let nl = Netlist.create ~name:"emb" ~lib in
  let a = Netlist.add_input nl "a" in
  let z = Netlist.add_output nl "z" in
  let mte = Netlist.add_input nl "MTE" in
  let emb = Library.variant lib Func.Inv Vth.Low Vth.Mt_embedded in
  ignore (Netlist.add_inst nl ~name:"m" emb [ ("A", a); ("Z", z); ("MTE", mte) ]);
  let sim = Simulator.create nl in
  Simulator.set_inputs sim [ ("a", Logic.T); ("MTE", Logic.T) ];
  Simulator.propagate ~mode:Simulator.Standby sim;
  let z = Option.get (Netlist.find_net nl "z") in
  Alcotest.check value "embedded MT holds its output" Logic.T (Simulator.value sim z)

let test_active_mode_ignores_mt () =
  let nl = standby_fixture ~with_holder:false in
  let sim = Simulator.create nl in
  Simulator.set_inputs sim [ ("a", Logic.T); ("MTE", Logic.F) ];
  Simulator.propagate sim;
  let z = Option.get (Netlist.find_net nl "z") in
  (* inv(inv(1)) = 1: MT cells compute normally in active mode *)
  Alcotest.check value "active computes" Logic.T (Simulator.value sim z)

(* --- equivalence checking --- *)

let test_equiv_identical () =
  let a = Generators.c17 lib and b = Generators.c17 lib in
  Alcotest.(check bool) "c17 = c17" true (Equiv.equivalent a b)

let test_equiv_detects_mutation () =
  let a = Generators.c17 lib in
  let b = Netlist.create ~name:"c17" ~lib in
  (* c17 with one NAND replaced by NOR: not equivalent *)
  let g1 = Netlist.add_input b "G1" in
  let g2 = Netlist.add_input b "G2" in
  let g3 = Netlist.add_input b "G3" in
  let g4 = Netlist.add_input b "G4" in
  let g5 = Netlist.add_input b "G5" in
  let o1 = Netlist.add_output b "G22" in
  let o2 = Netlist.add_output b "G23" in
  let lv k = Library.variant lib k Vth.Low Vth.Plain in
  let n10 = Netlist.add_net b "n10" in
  let n11 = Netlist.add_net b "n11" in
  let n16 = Netlist.add_net b "n16" in
  let n19 = Netlist.add_net b "n19" in
  ignore (Netlist.add_inst b ~name:"u1" (lv Func.Nor2) [ ("A", g1); ("B", g3); ("Z", n10) ]);
  ignore (Netlist.add_inst b ~name:"u2" (lv Func.Nand2) [ ("A", g3); ("B", g4); ("Z", n11) ]);
  ignore (Netlist.add_inst b ~name:"u3" (lv Func.Nand2) [ ("A", g2); ("B", n11); ("Z", n16) ]);
  ignore (Netlist.add_inst b ~name:"u4" (lv Func.Nand2) [ ("A", n11); ("B", g5); ("Z", n19) ]);
  ignore (Netlist.add_inst b ~name:"u5" (lv Func.Nand2) [ ("A", n10); ("B", n16); ("Z", o1) ]);
  ignore (Netlist.add_inst b ~name:"u6" (lv Func.Nand2) [ ("A", n16); ("B", n19); ("Z", o2) ]);
  (match Equiv.check a b with
  | Equiv.Equivalent -> Alcotest.fail "mutation not detected"
  | Equiv.Mismatch { output; _ } ->
    Alcotest.(check bool) "names an output" true (output = "G22" || output = "G23"))

let test_equiv_interface_mismatch () =
  let a = Generators.c17 lib in
  let b = Generators.counter ~name:"cnt" ~bits:2 lib in
  Alcotest.(check bool) "different interfaces raise" true
    (try
       ignore (Equiv.equivalent a b);
       false
     with Invalid_argument _ -> true)

let test_equiv_sequential () =
  let a = Generators.counter ~name:"cnt" ~bits:5 lib in
  let b = Generators.counter ~name:"cnt" ~bits:5 lib in
  Alcotest.(check bool) "counters equivalent" true (Equiv.equivalent ~vectors:32 a b)

let test_multiplier_correct () =
  (* 4x4 multiplier against integer multiplication, exhaustively, through
     the registered pipeline (feed, clock, read). *)
  let nl = Generators.multiplier ~name:"m4" ~bits:4 lib in
  let sim = Simulator.create nl in
  for x = 0 to 15 do
    for y = 0 to 15 do
      Simulator.reset sim;
      let vec =
        List.init 4 (fun i -> (Printf.sprintf "a%d" i, Logic.of_bool (x land (1 lsl i) <> 0)))
        @ List.init 4 (fun i -> (Printf.sprintf "b%d" i, Logic.of_bool (y land (1 lsl i) <> 0)))
      in
      Simulator.set_inputs sim vec;
      Simulator.propagate sim;
      Simulator.clock_edge sim;
      (* operands latched; combinational product now at the output FFs *)
      Simulator.propagate sim;
      Simulator.clock_edge sim;
      Simulator.propagate sim;
      let outs = Simulator.output_values sim in
      let p =
        List.fold_left
          (fun acc i ->
            match List.assoc_opt (Printf.sprintf "p%d" i) outs with
            | Some Logic.T -> acc lor (1 lsl i)
            | Some (Logic.F | Logic.X) | None -> acc)
          0
          (List.init 8 Fun.id)
      in
      Alcotest.(check int) (Printf.sprintf "%d*%d" x y) (x * y) p
    done
  done

let test_adder_correct () =
  let nl = Generators.ripple_adder ~registered:false ~name:"add4" ~bits:4 lib in
  let sim = Simulator.create nl in
  for x = 0 to 15 do
    for y = 0 to 15 do
      let vec =
        (("cin", Logic.F)
        :: List.init 4 (fun i -> (Printf.sprintf "a%d" i, Logic.of_bool (x land (1 lsl i) <> 0))))
        @ List.init 4 (fun i -> (Printf.sprintf "b%d" i, Logic.of_bool (y land (1 lsl i) <> 0)))
      in
      Simulator.set_inputs sim vec;
      Simulator.propagate sim;
      let outs = Simulator.output_values sim in
      let s =
        List.fold_left
          (fun acc i ->
            match List.assoc_opt (Printf.sprintf "s%d" i) outs with
            | Some Logic.T -> acc lor (1 lsl i)
            | Some (Logic.F | Logic.X) | None -> acc)
          0
          (List.init 4 Fun.id)
      in
      let s = match List.assoc "cout" outs with Logic.T -> s lor 16 | Logic.F | Logic.X -> s in
      Alcotest.(check int) (Printf.sprintf "%d+%d" x y) (x + y) s
    done
  done

(* --- activity --- *)

let test_activity_bounds () =
  let nl = Generators.c17 lib in
  let act = Activity.estimate ~cycles:100 nl in
  Netlist.iter_insts nl (fun iid ->
      let f = Activity.factor act iid in
      Alcotest.(check bool) "factor in [0,1]" true (f >= 0.0 && f <= 1.0));
  Alcotest.(check bool) "some switching happens" true (Activity.average act > 0.0)

let test_activity_deterministic () =
  let nl = Generators.c17 lib in
  let a1 = Activity.estimate ~cycles:64 ~seed:3 nl in
  let a2 = Activity.estimate ~cycles:64 ~seed:3 nl in
  Netlist.iter_insts nl (fun iid ->
      Alcotest.(check (float 1e-12)) "same seed, same activity"
        (Activity.factor a1 iid) (Activity.factor a2 iid))

let () =
  Alcotest.run "smt_sim"
    [
      ( "logic",
        [
          Alcotest.test_case "basics" `Quick test_logic_basics;
          Alcotest.test_case "x controlled" `Quick test_x_propagation_controlled;
          Alcotest.test_case "x sensitized" `Quick test_x_propagation_sensitized;
        ] );
      ( "combinational",
        [
          Alcotest.test_case "c17 exhaustive" `Quick test_c17_exhaustive;
          Alcotest.test_case "input guards" `Quick test_set_input_guards;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "dff pipeline" `Quick test_dff_pipeline;
          Alcotest.test_case "counter counts" `Quick test_counter_counts;
          Alcotest.test_case "ff state access" `Quick test_ff_state_access;
        ] );
      ( "standby",
        [
          Alcotest.test_case "floats without holder" `Quick test_standby_floats_without_holder;
          Alcotest.test_case "held with holder" `Quick test_standby_held_with_holder;
          Alcotest.test_case "embedded holds itself" `Quick test_standby_embedded_holds_itself;
          Alcotest.test_case "active mode computes" `Quick test_active_mode_ignores_mt;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "identical circuits" `Quick test_equiv_identical;
          Alcotest.test_case "detects mutation" `Quick test_equiv_detects_mutation;
          Alcotest.test_case "interface mismatch" `Quick test_equiv_interface_mismatch;
          Alcotest.test_case "sequential circuits" `Quick test_equiv_sequential;
          Alcotest.test_case "multiplier arithmetic" `Slow test_multiplier_correct;
          Alcotest.test_case "adder arithmetic" `Quick test_adder_correct;
        ] );
      ( "activity",
        [
          Alcotest.test_case "bounds" `Quick test_activity_bounds;
          Alcotest.test_case "deterministic" `Quick test_activity_deterministic;
        ] );
    ]
