test/test_domains_io.mli:
