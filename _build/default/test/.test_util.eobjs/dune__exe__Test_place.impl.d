test/test_place.ml: Alcotest Float Hashtbl List Option Smt_cell Smt_circuits Smt_netlist Smt_place Smt_util
