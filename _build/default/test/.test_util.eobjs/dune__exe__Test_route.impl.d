test/test_route.ml: Alcotest Float List Smt_cell Smt_circuits Smt_netlist Smt_place Smt_route Smt_sta
