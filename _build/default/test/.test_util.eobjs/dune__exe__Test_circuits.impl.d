test/test_circuits.ml: Alcotest List Printf Smt_cell Smt_circuits Smt_core Smt_netlist Smt_sim Smt_sta String
