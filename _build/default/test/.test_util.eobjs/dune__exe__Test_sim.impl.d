test/test_sim.ml: Alcotest Format Fun List Option Printf Smt_cell Smt_circuits Smt_netlist Smt_sim
