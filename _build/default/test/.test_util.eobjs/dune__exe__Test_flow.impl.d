test/test_flow.ml: Alcotest Lazy List Smt_cell Smt_circuits Smt_core Smt_netlist Smt_sim String
