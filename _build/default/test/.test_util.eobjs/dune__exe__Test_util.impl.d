test/test_util.ml: Alcotest Array Float Fun List Smt_util String
