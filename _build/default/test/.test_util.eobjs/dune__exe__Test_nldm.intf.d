test/test_nldm.mli:
