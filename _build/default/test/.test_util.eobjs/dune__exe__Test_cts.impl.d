test/test_cts.ml: Alcotest Float List Option Smt_cell Smt_circuits Smt_cts Smt_netlist Smt_place Smt_util
