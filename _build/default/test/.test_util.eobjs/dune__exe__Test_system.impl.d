test/test_system.ml: Alcotest Lazy List Printf Smt_cell Smt_circuits Smt_core Smt_netlist Smt_place Smt_route Smt_sta Smt_util String
