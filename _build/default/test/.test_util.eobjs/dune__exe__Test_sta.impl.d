test/test_sta.ml: Alcotest Float List Option Smt_cell Smt_circuits Smt_netlist Smt_sta
