test/test_cell.ml: Alcotest Array List Printf Smt_cell
