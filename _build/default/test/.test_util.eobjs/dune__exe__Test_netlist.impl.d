test/test_netlist.ml: Alcotest Hashtbl List Option Printf Smt_cell Smt_circuits Smt_netlist Smt_sim Smt_sta String
