test/test_nldm.ml: Alcotest Float List Option Printf Smt_cell Smt_circuits Smt_core Smt_netlist Smt_sta
