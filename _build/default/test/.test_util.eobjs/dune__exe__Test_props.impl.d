test/test_props.ml: Alcotest Array Float Fun Hashtbl List Printf QCheck2 QCheck_alcotest Smt_cell Smt_circuits Smt_core Smt_netlist Smt_place Smt_power Smt_route Smt_sim Smt_sta Smt_util
