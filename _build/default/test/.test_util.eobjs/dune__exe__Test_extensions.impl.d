test/test_extensions.ml: Alcotest Array Float Fun Hashtbl List Option Printf Smt_cell Smt_circuits Smt_core Smt_netlist Smt_place Smt_power Smt_sim Smt_sta Smt_util String
