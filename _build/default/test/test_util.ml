module Rng = Smt_util.Rng
module Union_find = Smt_util.Union_find
module Heap = Smt_util.Heap
module Geom = Smt_util.Geom
module Stats = Smt_util.Stats
module Vec = Smt_util.Vec
module Text_table = Smt_util.Text_table

let feq ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float msg expected got =
  Alcotest.(check (float 1e-9)) msg expected got

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_invalid () =
  let r = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_range () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_float_in () =
  let r = Rng.create 3 in
  for _ = 1 to 100 do
    let v = Rng.float_in r (-1.0) 1.0 in
    Alcotest.(check bool) "in [-1,1)" true (v >= -1.0 && v < 1.0)
  done

let test_rng_chance_extremes () =
  let r = Rng.create 5 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 never" false (Rng.chance r 0.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always" true (Rng.chance r 1.0)
  done

let test_rng_split_independent () =
  (* Drawing from the parent after the split must not affect the child. *)
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  let c1 = Rng.bits64 child in
  let parent2 = Rng.create 9 in
  let child2 = Rng.split parent2 in
  ignore (Rng.bits64 parent2);
  ignore (Rng.bits64 parent2);
  Alcotest.(check int64) "child streams agree despite parent draws" c1 (Rng.bits64 child2)

let test_rng_copy () =
  let a = Rng.create 11 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_gaussian_moments () =
  let r = Rng.create 13 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Rng.gaussian r ~mean:3.0 ~sigma:2.0) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.1);
  Alcotest.(check bool) "sigma near 2" true (Float.abs (s -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let r = Rng.create 17 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 Fun.id) sorted

let test_rng_sample () =
  let r = Rng.create 19 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample r 5 arr in
  Alcotest.(check int) "5 drawn" 5 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "all distinct" 5 (List.length distinct)

let test_rng_pick_empty () =
  let r = Rng.create 1 in
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||]))

(* --- Union_find --- *)

let test_uf_initial () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "5 singletons" 5 (Union_find.count uf);
  Alcotest.(check bool) "separate" false (Union_find.same uf 0 1);
  Alcotest.(check int) "size 1" 1 (Union_find.size uf 3)

let test_uf_union () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 2 3;
  Union_find.union uf 1 2;
  Alcotest.(check bool) "0~3" true (Union_find.same uf 0 3);
  Alcotest.(check bool) "0!~4" false (Union_find.same uf 0 4);
  Alcotest.(check int) "sets" 3 (Union_find.count uf);
  Alcotest.(check int) "size 4" 4 (Union_find.size uf 3)

let test_uf_idempotent_union () =
  let uf = Union_find.create 3 in
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Alcotest.(check int) "still 2 sets" 2 (Union_find.count uf)

let test_uf_groups () =
  let uf = Union_find.create 4 in
  Union_find.union uf 0 2;
  let groups = Union_find.groups uf in
  let non_empty = Array.to_list groups |> List.filter (( <> ) []) in
  Alcotest.(check int) "3 groups" 3 (List.length non_empty);
  let total = List.fold_left (fun acc g -> acc + List.length g) 0 non_empty in
  Alcotest.(check int) "all members covered" 4 total

(* --- Heap --- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 5; 9; 2; 6 ];
  Alcotest.(check (list int)) "ascending" [ 1; 1; 2; 4; 5; 5; 6; 9 ] (Heap.to_sorted_list h)

let test_heap_empty () =
  let h : int Heap.t = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.(check (option int)) "peek none" None (Heap.peek h)

let test_heap_peek_stable () =
  let h = Heap.create ~cmp:compare in
  Heap.push h 3;
  Heap.push h 1;
  Alcotest.(check (option int)) "peek min" (Some 1) (Heap.peek h);
  Alcotest.(check int) "length unchanged" 2 (Heap.length h)

let test_heap_of_array () =
  let h = Heap.of_array ~cmp:compare [| 3; 1; 2 |] in
  Alcotest.(check (list int)) "heapify" [ 1; 2; 3 ] (Heap.to_sorted_list h)

let test_heap_custom_order () =
  let h = Heap.create ~cmp:(fun a b -> compare b a) in
  List.iter (Heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (list int)) "descending" [ 3; 2; 1 ] (Heap.to_sorted_list h)

(* --- Geom --- *)

let p = Geom.point

let test_geom_manhattan () =
  check_float "manhattan" 7.0 (Geom.manhattan (p 1.0 2.0) (p 4.0 (-2.0)))

let test_geom_euclid () =
  check_float "euclid 3-4-5" 5.0 (Geom.euclid (p 0.0 0.0) (p 3.0 4.0))

let test_geom_bbox () =
  let b = Geom.bbox_of_points [ p 1.0 1.0; p 4.0 0.0; p 2.0 5.0 ] in
  check_float "lx" 1.0 b.Geom.lx;
  check_float "hy" 5.0 b.Geom.hy;
  check_float "hpwl" 8.0 (Geom.hpwl b);
  Alcotest.(check bool) "contains" true (Geom.contains b (p 2.0 2.0));
  Alcotest.(check bool) "not contains" false (Geom.contains b (p 0.0 0.0))

let test_geom_bbox_empty () =
  Alcotest.check_raises "empty bbox" (Invalid_argument "Geom.bbox_of_points: empty")
    (fun () -> ignore (Geom.bbox_of_points []))

let test_geom_expand_union () =
  let b = Geom.expand (Geom.bbox_of_point (p 0.0 0.0)) (p 2.0 3.0) in
  check_float "width" 2.0 (Geom.width b);
  check_float "height" 3.0 (Geom.height b);
  let u = Geom.bbox_union b (Geom.bbox_of_point (p (-1.0) 0.0)) in
  check_float "union lx" (-1.0) u.Geom.lx

let test_geom_overlap () =
  let a = Geom.bbox_of_points [ p 0.0 0.0; p 2.0 2.0 ] in
  let b = Geom.bbox_of_points [ p 1.0 1.0; p 3.0 3.0 ] in
  let c = Geom.bbox_of_points [ p 5.0 5.0; p 6.0 6.0 ] in
  Alcotest.(check bool) "a-b overlap" true (Geom.overlap a b);
  Alcotest.(check bool) "a-c disjoint" false (Geom.overlap a c)

let test_geom_clamp () =
  check_float "below" 0.0 (Geom.clamp (-1.0) ~lo:0.0 ~hi:5.0);
  check_float "inside" 3.0 (Geom.clamp 3.0 ~lo:0.0 ~hi:5.0);
  check_float "above" 5.0 (Geom.clamp 9.0 ~lo:0.0 ~hi:5.0)

let test_geom_spanning_trivial () =
  check_float "empty" 0.0 (Geom.spanning_length []);
  check_float "single" 0.0 (Geom.spanning_length [ p 1.0 1.0 ]);
  check_float "pair" 5.0 (Geom.spanning_length [ p 0.0 0.0; p 2.0 3.0 ])

let test_geom_spanning_line () =
  (* collinear points: spanning = end-to-end distance *)
  let pts = List.init 5 (fun i -> p (float_of_int i) 0.0) in
  check_float "line" 4.0 (Geom.spanning_length pts)

let test_geom_spanning_star () =
  (* centre plus 4 arms of length 1: MST = 4 *)
  let pts = [ p 0.0 0.0; p 1.0 0.0; p (-1.0) 0.0; p 0.0 1.0; p 0.0 (-1.0) ] in
  check_float "star" 4.0 (Geom.spanning_length pts)

let test_geom_midpoint () =
  let m = Geom.midpoint (p 0.0 0.0) (p 4.0 2.0) in
  Alcotest.(check bool) "midpoint" true (feq m.Geom.x 2.0 && feq m.Geom.y 1.0)

(* --- Stats --- *)

let test_stats_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty mean" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_float "spread" 2.0 (Stats.stddev [ 2.0; 6.0 ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 2.0 ] in
  check_float "min" (-1.0) lo;
  check_float "max" 3.0 hi

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_ratio () =
  check_float "pct" 50.0 (Stats.ratio_pct 1.0 2.0);
  Alcotest.(check bool) "nan on zero base" true (Float.is_nan (Stats.ratio_pct 1.0 0.0))

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 1.0; 9.0; 10.0 ] in
  Alcotest.(check int) "2 bins" 2 (List.length h);
  let total = List.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total;
  Alcotest.(check (list int)) "empty hist" []
    (List.map (fun (_, _, c) -> c) (Stats.histogram ~bins:3 []))

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  let i0 = Vec.push v "a" and i1 = Vec.push v "b" in
  Alcotest.(check int) "index 0" 0 i0;
  Alcotest.(check int) "index 1" 1 i1;
  Alcotest.(check string) "get" "b" (Vec.get v 1);
  Vec.set v 0 "c";
  Alcotest.(check string) "set" "c" (Vec.get v 0)

let test_vec_bounds () =
  let v = Vec.create () in
  ignore (Vec.push v 1);
  Alcotest.(check bool) "oob raises" true
    (try
       ignore (Vec.get v 1);
       false
     with Invalid_argument _ -> true)

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 999 do
    ignore (Vec.push v i)
  done;
  Alcotest.(check int) "length" 1000 (Vec.length v);
  Alcotest.(check int) "last" 999 (Vec.get v 999);
  Alcotest.(check int) "fold" 499500 (Vec.fold ( + ) 0 v)

let test_vec_iters () =
  let v = Vec.of_list [ 10; 20; 30 ] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (0, 10); (1, 20); (2, 30) ] (List.rev !acc);
  Alcotest.(check (list int)) "to_list" [ 10; 20; 30 ] (Vec.to_list v);
  Alcotest.(check (list int)) "map_to_list" [ 20; 40; 60 ] (Vec.map_to_list (fun x -> 2 * x) v);
  Alcotest.(check bool) "exists" true (Vec.exists (( = ) 20) v);
  Alcotest.(check (option int)) "find_index" (Some 2) (Vec.find_index (( = ) 30) v)

(* --- Text_table --- *)

let test_table_contains_cells () =
  let s = Text_table.render ~header:[ "A"; "B" ] [ [ "x"; "y" ]; [ "longer"; "z" ] ] in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
    loop 0
  in
  Alcotest.(check bool) "has header" true (contains s "A");
  Alcotest.(check bool) "has cell" true (contains s "longer")

let test_table_pads_short_rows () =
  let s = Text_table.render ~header:[ "A"; "B"; "C" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_table_formats () =
  Alcotest.(check string) "pct" "133.18%" (Text_table.pct 133.18);
  Alcotest.(check string) "f2" "1.50" (Text_table.f2 1.5)

let () =
  Alcotest.run "smt_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in range" `Quick test_rng_int_in;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float_in range" `Quick test_rng_float_in;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample;
          Alcotest.test_case "pick empty" `Quick test_rng_pick_empty;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "initial" `Quick test_uf_initial;
          Alcotest.test_case "union" `Quick test_uf_union;
          Alcotest.test_case "idempotent" `Quick test_uf_idempotent_union;
          Alcotest.test_case "groups" `Quick test_uf_groups;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "peek stable" `Quick test_heap_peek_stable;
          Alcotest.test_case "of_array" `Quick test_heap_of_array;
          Alcotest.test_case "custom order" `Quick test_heap_custom_order;
        ] );
      ( "geom",
        [
          Alcotest.test_case "manhattan" `Quick test_geom_manhattan;
          Alcotest.test_case "euclid" `Quick test_geom_euclid;
          Alcotest.test_case "bbox/hpwl" `Quick test_geom_bbox;
          Alcotest.test_case "bbox empty" `Quick test_geom_bbox_empty;
          Alcotest.test_case "expand/union" `Quick test_geom_expand_union;
          Alcotest.test_case "overlap" `Quick test_geom_overlap;
          Alcotest.test_case "clamp" `Quick test_geom_clamp;
          Alcotest.test_case "spanning trivial" `Quick test_geom_spanning_trivial;
          Alcotest.test_case "spanning line" `Quick test_geom_spanning_line;
          Alcotest.test_case "spanning star" `Quick test_geom_spanning_star;
          Alcotest.test_case "midpoint" `Quick test_geom_midpoint;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min_max" `Quick test_stats_min_max;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "ratio_pct" `Quick test_stats_ratio;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
        ] );
      ( "vec",
        [
          Alcotest.test_case "push/get/set" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "iterators" `Quick test_vec_iters;
        ] );
      ( "text_table",
        [
          Alcotest.test_case "contains cells" `Quick test_table_contains_cells;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
    ]
