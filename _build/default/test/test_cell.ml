module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library

let lib = Library.default ()
let tech = Library.tech lib

let lv k = Library.variant lib k Vth.Low Vth.Plain
let hv k = Library.variant lib k Vth.High Vth.Plain
let mtv k = Library.variant lib k Vth.Low Vth.Mt_vgnd
let mte k = Library.variant lib k Vth.Low Vth.Mt_embedded
let mtn k = Library.variant lib k Vth.Low Vth.Mt_no_vgnd

(* --- Func truth tables --- *)

let bools_of_mask arity mask = Array.init arity (fun i -> mask land (1 lsl i) <> 0)

let reference kind (i : bool array) =
  match kind with
  | Func.Inv -> not i.(0)
  | Func.Buf | Func.Clkbuf -> i.(0)
  | Func.Nand2 -> not (i.(0) && i.(1))
  | Func.Nand3 -> not (i.(0) && i.(1) && i.(2))
  | Func.Nand4 -> not (i.(0) && i.(1) && i.(2) && i.(3))
  | Func.Nor2 -> not (i.(0) || i.(1))
  | Func.Nor3 -> not (i.(0) || i.(1) || i.(2))
  | Func.And2 -> i.(0) && i.(1)
  | Func.And3 -> i.(0) && i.(1) && i.(2)
  | Func.Or2 -> i.(0) || i.(1)
  | Func.Or3 -> i.(0) || i.(1) || i.(2)
  | Func.Xor2 -> i.(0) <> i.(1)
  | Func.Xnor2 -> i.(0) = i.(1)
  | Func.Aoi21 -> not ((i.(0) && i.(1)) || i.(2))
  | Func.Oai21 -> not ((i.(0) || i.(1)) && i.(2))
  | Func.Mux2 -> if i.(2) then i.(1) else i.(0)
  | Func.Dff | Func.Sleep_switch | Func.Holder -> assert false

let test_truth_tables () =
  List.iter
    (fun kind ->
      let arity = Func.arity kind in
      for mask = 0 to (1 lsl arity) - 1 do
        let ins = bools_of_mask arity mask in
        Alcotest.(check bool)
          (Printf.sprintf "%s mask %d" (Func.to_string kind) mask)
          (reference kind ins) (Func.eval kind ins)
      done)
    Library.comb_kinds

let test_eval_arity_mismatch () =
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       ignore (Func.eval Func.Nand2 [| true |]);
       false
     with Invalid_argument _ -> true)

let test_eval_non_comb () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Func.to_string kind ^ " rejects eval")
        true
        (try
           ignore (Func.eval kind [||]);
           false
         with Invalid_argument _ -> true))
    [ Func.Dff; Func.Sleep_switch; Func.Holder ]

let test_kind_string_roundtrip () =
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Func.to_string kind ^ " roundtrip")
        true
        (Func.of_string (Func.to_string kind) = Some kind))
    Func.all;
  Alcotest.(check bool) "unknown" true (Func.of_string "FROB" = None)

let test_pin_names_consistent () =
  List.iter
    (fun kind ->
      Alcotest.(check int)
        (Func.to_string kind ^ " arity = |input names|")
        (Func.arity kind)
        (Array.length (Func.input_names kind)))
    Library.comb_kinds

(* --- delay model --- *)

let test_delay_monotone_in_load () =
  let c = lv Func.Nand2 in
  Alcotest.(check bool) "more load, more delay" true
    (Cell.delay c ~load_ff:10.0 > Cell.delay c ~load_ff:1.0)

let test_delay_orders_by_flavour () =
  List.iter
    (fun kind ->
      let load = 8.0 in
      let d_lv = Cell.delay (lv kind) ~load_ff:load in
      let d_hv = Cell.delay (hv kind) ~load_ff:load in
      let d_mt = Cell.delay (mtv kind) ~load_ff:load in
      Alcotest.(check bool)
        (Func.to_string kind ^ ": lv < mt") true (d_lv < d_mt);
      Alcotest.(check bool)
        (Func.to_string kind ^ ": mt < hv (the MT-cell advantage)")
        true (d_mt < d_hv))
    Library.comb_kinds

let test_bounce_derate () =
  let c = mtv Func.Nand2 in
  let base = Cell.delay_with_bounce tech c ~load_ff:4.0 ~bounce_v:0.0 in
  let bounced = Cell.delay_with_bounce tech c ~load_ff:4.0 ~bounce_v:0.12 in
  Alcotest.(check bool) "bounce slows MT" true (bounced > base);
  let plain = lv Func.Nand2 in
  Alcotest.(check (float 1e-9)) "plain immune to bounce"
    (Cell.delay_with_bounce tech plain ~load_ff:4.0 ~bounce_v:0.0)
    (Cell.delay_with_bounce tech plain ~load_ff:4.0 ~bounce_v:0.5)

let test_derate_formula () =
  let m = Cell.bounce_derate tech ~bounce_v:tech.Tech.vdd in
  Alcotest.(check (float 1e-9)) "full-vdd bounce derate"
    (1.0 +. tech.Tech.bounce_delay_factor) m;
  Alcotest.(check (float 1e-9)) "negative bounce clamped" 1.0
    (Cell.bounce_derate tech ~bounce_v:(-0.3))

(* --- leakage & area orderings (what makes the paper's Table 1 work) --- *)

let test_leakage_ordering () =
  List.iter
    (fun kind ->
      let name = Func.to_string kind in
      let l_lv = (lv kind).Cell.leak_standby in
      let l_hv = (hv kind).Cell.leak_standby in
      let l_mtv = (mtv kind).Cell.leak_standby in
      let l_mte = (mte kind).Cell.leak_standby in
      Alcotest.(check bool) (name ^ ": hv << lv") true (l_hv < l_lv /. 10.0);
      Alcotest.(check bool) (name ^ ": mt residual < hv") true (l_mtv < l_hv);
      Alcotest.(check bool) (name ^ ": embedded mt < lv") true (l_mte < l_lv);
      Alcotest.(check bool) (name ^ ": embedded > vgnd (own switch+holder)") true
        (l_mte > l_mtv))
    Library.comb_kinds

let test_area_ordering () =
  List.iter
    (fun kind ->
      let name = Func.to_string kind in
      let a_lv = (lv kind).Cell.area in
      let a_hv = (hv kind).Cell.area in
      let a_mtv = (mtv kind).Cell.area in
      let a_mte = (mte kind).Cell.area in
      Alcotest.(check (float 1e-9)) (name ^ ": hv same footprint") a_lv a_hv;
      Alcotest.(check bool) (name ^ ": vgnd slightly larger") true (a_mtv > a_lv);
      Alcotest.(check bool) (name ^ ": vgnd overhead modest") true (a_mtv < a_lv *. 1.3);
      Alcotest.(check bool) (name ^ ": embedded much larger") true (a_mte > a_lv *. 1.8))
    Library.comb_kinds

let test_mtn_equals_mtv_except_port () =
  (* The paper: the no-VGND variant has the same information except the
     port. Same timing, area, leakage. *)
  List.iter
    (fun kind ->
      let a = mtn kind and b = mtv kind in
      Alcotest.(check (float 1e-9)) "area" a.Cell.area b.Cell.area;
      Alcotest.(check (float 1e-9)) "intrinsic" a.Cell.intrinsic_delay b.Cell.intrinsic_delay;
      Alcotest.(check (float 1e-9)) "leak" a.Cell.leak_standby b.Cell.leak_standby)
    Library.comb_kinds

(* --- switches --- *)

let test_switch_scaling () =
  let s1 = Library.switch lib ~width:2.0 in
  let s2 = Library.switch lib ~width:4.0 in
  Alcotest.(check (float 1e-9)) "area scales" (2.0 *. s1.Cell.area) s2.Cell.area;
  Alcotest.(check (float 1e-9)) "leak scales" (2.0 *. s1.Cell.leak_standby) s2.Cell.leak_standby;
  Alcotest.(check (float 1e-6)) "resistance halves"
    (Tech.switch_resistance tech ~width:2.0 /. 2.0)
    (Tech.switch_resistance tech ~width:4.0)

let test_switch_cache_and_name () =
  let a = Library.switch lib ~width:3.14 in
  let b = Library.switch lib ~width:3.14 in
  Alcotest.(check string) "same cell" a.Cell.name b.Cell.name;
  Alcotest.(check string) "quantized name" "SW_W3p1" a.Cell.name;
  Alcotest.(check (float 1e-9)) "width quantized" 3.1 a.Cell.switch_width

let test_switch_min_width () =
  let s = Library.switch lib ~width:0.01 in
  Alcotest.(check bool) "clamped to min" true (s.Cell.switch_width >= 0.1)

let test_width_for_bounce () =
  let w = Tech.width_for_bounce tech ~current_ua:10.0 ~limit_v:0.1 in
  (* bounce at that width should be exactly the limit *)
  let r = Tech.switch_resistance tech ~width:w in
  Alcotest.(check (float 1e-6)) "sized to the limit" 0.1 (10.0 *. 1e-6 *. r);
  Alcotest.(check bool) "zero current min width" true
    (Tech.width_for_bounce tech ~current_ua:0.0 ~limit_v:0.1 <= 0.1);
  Alcotest.(check bool) "bad limit raises" true
    (try
       ignore (Tech.width_for_bounce tech ~current_ua:1.0 ~limit_v:0.0);
       false
     with Invalid_argument _ -> true)

let test_switch_resistance_invalid () =
  Alcotest.(check bool) "zero width raises" true
    (try
       ignore (Tech.switch_resistance tech ~width:0.0);
       false
     with Invalid_argument _ -> true)

(* --- library lookups --- *)

let test_variant_lookup () =
  Alcotest.(check bool) "nand2 lv exists" true
    (Library.has_variant lib Func.Nand2 Vth.Low Vth.Plain);
  Alcotest.(check bool) "no MT flip-flop" false
    (Library.has_variant lib Func.Dff Vth.Low Vth.Mt_vgnd);
  Alcotest.(check bool) "find_opt none" true (Library.find_opt lib "NOPE" = None);
  Alcotest.(check bool) "find raises" true
    (try
       ignore (Library.find lib "NOPE");
       false
     with Not_found -> true)

let test_restyle () =
  let c = lv Func.Xor2 in
  let h = Library.restyle lib c Vth.High Vth.Plain in
  Alcotest.(check bool) "same kind" true (h.Cell.kind = Func.Xor2);
  Alcotest.(check bool) "now high vth" true (h.Cell.vth = Vth.High)

let test_special_cells () =
  let holder = Library.holder lib in
  Alcotest.(check bool) "holder kind" true (holder.Cell.kind = Func.Holder);
  let mteb = Library.mte_buffer lib in
  Alcotest.(check bool) "mte buffer is high-vth" true (mteb.Cell.vth = Vth.High);
  let clkb = Library.clock_buffer lib in
  Alcotest.(check bool) "clock buffer is high-vth" true (clkb.Cell.vth = Vth.High);
  Alcotest.(check bool) "hold buffer is high-vth" true
    ((Library.hold_buffer lib).Cell.vth = Vth.High)

let test_dff_constraints () =
  let d = lv Func.Dff in
  Alcotest.(check bool) "has setup" true (d.Cell.setup > 0.0);
  Alcotest.(check bool) "has hold" true (d.Cell.hold > 0.0);
  Alcotest.(check bool) "is sequential" true (Cell.is_sequential d);
  Alcotest.(check bool) "nand not sequential" false (Cell.is_sequential (lv Func.Nand2))

let test_cells_listing () =
  let all = Library.cells lib in
  Alcotest.(check bool) "library is populated" true (List.length all > 60)

let test_vth_helpers () =
  Alcotest.(check bool) "is_mt embedded" true (Vth.is_mt Vth.Mt_embedded);
  Alcotest.(check bool) "is_mt plain" false (Vth.is_mt Vth.Plain);
  Alcotest.(check bool) "equal" true (Vth.equal Vth.Low Vth.Low);
  Alcotest.(check bool) "not equal" false (Vth.equal Vth.Low Vth.High);
  Alcotest.(check string) "style name" "mt-vgnd" (Vth.style_to_string Vth.Mt_vgnd)

let () =
  Alcotest.run "smt_cell"
    [
      ( "func",
        [
          Alcotest.test_case "truth tables (exhaustive)" `Quick test_truth_tables;
          Alcotest.test_case "arity mismatch" `Quick test_eval_arity_mismatch;
          Alcotest.test_case "non-combinational rejected" `Quick test_eval_non_comb;
          Alcotest.test_case "kind<->string" `Quick test_kind_string_roundtrip;
          Alcotest.test_case "pin names consistent" `Quick test_pin_names_consistent;
        ] );
      ( "delay",
        [
          Alcotest.test_case "monotone in load" `Quick test_delay_monotone_in_load;
          Alcotest.test_case "lv < mt < hv" `Quick test_delay_orders_by_flavour;
          Alcotest.test_case "bounce derates MT only" `Quick test_bounce_derate;
          Alcotest.test_case "derate formula" `Quick test_derate_formula;
        ] );
      ( "power/area",
        [
          Alcotest.test_case "leakage ordering" `Quick test_leakage_ordering;
          Alcotest.test_case "area ordering" `Quick test_area_ordering;
          Alcotest.test_case "no-VGND = VGND variant" `Quick test_mtn_equals_mtv_except_port;
        ] );
      ( "switch",
        [
          Alcotest.test_case "linear scaling" `Quick test_switch_scaling;
          Alcotest.test_case "cache & naming" `Quick test_switch_cache_and_name;
          Alcotest.test_case "min width" `Quick test_switch_min_width;
          Alcotest.test_case "width for bounce" `Quick test_width_for_bounce;
          Alcotest.test_case "invalid width" `Quick test_switch_resistance_invalid;
        ] );
      ( "library",
        [
          Alcotest.test_case "variant lookup" `Quick test_variant_lookup;
          Alcotest.test_case "restyle" `Quick test_restyle;
          Alcotest.test_case "special cells" `Quick test_special_cells;
          Alcotest.test_case "flip-flop constraints" `Quick test_dff_constraints;
          Alcotest.test_case "cells listing" `Quick test_cells_listing;
          Alcotest.test_case "vth helpers" `Quick test_vth_helpers;
        ] );
    ]
