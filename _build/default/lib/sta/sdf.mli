(** SDF (Standard Delay Format) export of analyzed timing.

    Writes an IOPATH entry per instance with the delay STA actually used
    (wire model, bounce derate, and slew effects included), so the timing
    view of the design can be consumed by external tools or diffed between
    corners/stages. *)

val to_string : t:Sta.t -> design:string -> string

val to_file : t:Sta.t -> design:string -> string -> unit

val instance_count : Sta.t -> int
(** Number of IOPATH-bearing instances the export will contain. *)
