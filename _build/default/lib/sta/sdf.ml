module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func

let iopath_instances sta =
  let nl = Sta.netlist sta in
  List.filter
    (fun iid ->
      let kind = (Netlist.cell nl iid).Cell.kind in
      Array.length (Func.output_names kind) > 0)
    (Netlist.live_insts nl)

let instance_count sta = List.length (iopath_instances sta)

let to_string ~t ~design =
  let nl = Sta.netlist t in
  let b = Buffer.create 8192 in
  Buffer.add_string b "(DELAYFILE\n";
  Buffer.add_string b "  (SDFVERSION \"3.0\")\n";
  Buffer.add_string b (Printf.sprintf "  (DESIGN \"%s\")\n" design);
  Buffer.add_string b "  (TIMESCALE 1ps)\n";
  List.iter
    (fun iid ->
      let cell = Netlist.cell nl iid in
      let d = Sta.used_delay t iid in
      let input =
        match Func.input_names cell.Cell.kind with
        | [||] -> (match cell.Cell.kind with Func.Dff -> "CK" | _ -> "A")
        | ins -> ins.(0)
      in
      let output = (Func.output_names cell.Cell.kind).(0) in
      Buffer.add_string b
        (Printf.sprintf
           "  (CELL (CELLTYPE \"%s\") (INSTANCE %s)\n\
           \    (DELAY (ABSOLUTE (IOPATH %s %s (%.1f) (%.1f))))\n\
           \  )\n"
           cell.Cell.name (Netlist.inst_name nl iid) input output d d))
    (iopath_instances t);
  Buffer.add_string b ")\n";
  Buffer.contents b

let to_file ~t ~design path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ~t ~design))
