lib/sta/sdf.ml: Array Buffer Fun List Printf Smt_cell Smt_netlist Sta
