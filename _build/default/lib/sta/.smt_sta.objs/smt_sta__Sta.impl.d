lib/sta/sta.ml: Array Float List Queue Smt_cell Smt_netlist Wire
