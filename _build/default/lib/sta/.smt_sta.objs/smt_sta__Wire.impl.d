lib/sta/wire.ml: Smt_netlist
