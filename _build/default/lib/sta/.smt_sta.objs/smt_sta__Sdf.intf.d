lib/sta/sdf.mli: Sta
