lib/sta/wire.mli: Smt_netlist
