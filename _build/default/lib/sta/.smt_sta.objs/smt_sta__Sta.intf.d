lib/sta/sta.mli: Smt_cell Smt_netlist Wire
