(** Wire model abstraction consumed by STA.

    Before routing, the router supplies placement-based estimates; after
    routing, extracted parasitics. STA itself does not care which — this is
    the seam that lets the flow re-run timing and switch sizing on SPEF, as
    the paper's post-route re-optimization stage requires. *)

type t = {
  net_cap : Smt_netlist.Netlist.net_id -> float;
      (** capacitance the net adds to its driver's load, fF *)
  net_delay : Smt_netlist.Netlist.net_id -> Smt_netlist.Netlist.pin -> float;
      (** wire delay from the net's driver to the given sink pin, ps *)
}

val zero : t
(** Ideal wires (unit tests, pre-placement timing). *)

val lumped : cap_per_fanout:float -> delay_per_fanout:float -> t
(** Crude fanout-proportional model for quick estimates. *)
