module Netlist = Smt_netlist.Netlist

type t = {
  net_cap : Netlist.net_id -> float;
  net_delay : Netlist.net_id -> Netlist.pin -> float;
}

let zero = { net_cap = (fun _ -> 0.0); net_delay = (fun _ _ -> 0.0) }

let lumped ~cap_per_fanout ~delay_per_fanout =
  {
    net_cap = (fun _ -> cap_per_fanout);
    net_delay = (fun _ _ -> delay_per_fanout);
  }
