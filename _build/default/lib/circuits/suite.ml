module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Func = Smt_cell.Func
module Library = Smt_cell.Library
module Vth = Smt_cell.Vth
module Rng = Smt_util.Rng

(* Helpers to extend an existing netlist (used to fuse blocks into one
   design sharing a clock). *)

let lv_cell lib kind = Library.variant lib kind Vth.Low Vth.Plain

let add_gate nl lib kind ins out =
  let cell = lv_cell lib kind in
  let names = Func.input_names kind in
  let pins = List.mapi (fun i nid -> (names.(i), nid)) ins @ [ ("Z", out) ] in
  let name = Netlist.fresh_inst_name nl (String.lowercase_ascii (Func.to_string kind)) in
  ignore (Netlist.add_inst nl ~name cell pins)

let fresh_gate nl lib kind ins =
  let out = Netlist.fresh_net nl "n" in
  add_gate nl lib kind ins out;
  out

let add_reg nl lib ~clk d =
  let q = Netlist.fresh_net nl "q" in
  let name = Netlist.fresh_inst_name nl "dff" in
  ignore (Netlist.add_inst nl ~name (lv_cell lib Func.Dff) [ ("D", d); ("CK", clk); ("Q", q) ]);
  q

(* Extend a netlist with a registered block of layered random logic sharing
   the clock: column [c] runs for a depth drawn from [min_depth, depth]. *)
let extend_layered nl lib ~clk ~seed ~prefix ~width ~depth ~min_depth =
  let rng = Rng.create seed in
  let ins = List.init width (fun i -> Netlist.add_input nl (Printf.sprintf "%s%d" prefix i)) in
  let current = Array.of_list (List.map (add_reg nl lib ~clk) ins) in
  let col_depth = Array.init width (fun _ -> Rng.int_in rng min_depth depth) in
  let pool =
    [| Func.Nand2; Func.Nor2; Func.Xor2; Func.Aoi21; Func.Oai21; Func.And2; Func.Or2 |]
  in
  for layer = 1 to depth do
    let prev = Array.copy current in
    for c = 0 to width - 1 do
      if layer <= col_depth.(c) then begin
        let kind = Rng.pick rng pool in
        let srcs =
          List.init (Func.arity kind) (fun i ->
              if i = 0 then prev.(c) else prev.(Rng.int rng width))
        in
        current.(c) <- fresh_gate nl lib kind srcs
      end
    done
  done;
  Array.iteri
    (fun c net ->
      let q = add_reg nl lib ~clk net in
      let po = Netlist.add_output nl (Printf.sprintf "%so%d" prefix c) in
      add_gate nl lib Func.Buf [ q ] po)
    current

let clock_of nl =
  match Netlist.clock_net nl with
  | Some c -> c
  | None -> Netlist.add_input ~clock:true nl "clk"

let circuit_a lib =
  (* Datapath-dominated: a 12x12 array multiplier plus a uniformly deep
     layered block — nearly every path is near-critical, like the paper's
     circuit A. *)
  let nl = Generators.multiplier ~name:"circuit_a" ~bits:12 lib in
  let clk = clock_of nl in
  extend_layered nl lib ~clk ~seed:23 ~prefix:"dx" ~width:24 ~depth:16 ~min_depth:16;
  nl

let circuit_b lib =
  (* Mixed: an 8x8 multiplier core keeps a substantial critical population,
     while wide shallow control logic supplies the slack that Dual-Vth
     converts to high-Vth — circuit B's smaller overheads. *)
  let nl = Generators.multiplier ~name:"circuit_b" ~bits:8 lib in
  let clk = clock_of nl in
  extend_layered nl lib ~clk ~seed:31 ~prefix:"cx" ~width:40 ~depth:8 ~min_depth:2;
  nl

let tiny lib = Generators.ripple_adder ~registered:true ~name:"tiny_adder" ~bits:4 lib

let fig23_example lib =
  let b = Builder.create ~name:"fig23" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d0 = Builder.input b "d0" in
  let d1 = Builder.input b "d1" in
  let d2 = Builder.input b "d2" in
  let q0 = Builder.dff b ~d:d0 ~clk in
  let q1 = Builder.dff b ~d:d1 ~clk in
  let q2 = Builder.dff b ~d:d2 ~clk in
  (* critical cloud: a chain with internal and boundary fanouts *)
  let g1 = Builder.nand_ b q0 q1 in
  let g2 = Builder.xor_ b g1 q2 in
  let g3 = Builder.nand_ b g2 g1 in
  let g4 = Builder.or_ b g3 q1 in
  (* non-critical side logic *)
  let s1 = Builder.and_ b q0 q2 in
  let s2 = Builder.not_ b s1 in
  let q3 = Builder.dff b ~d:g4 ~clk in
  let q4 = Builder.dff b ~d:s2 ~clk in
  let o0 = Builder.output b "o0" in
  let o1 = Builder.output b "o1" in
  Builder.gate_into b Func.Buf [ q3 ] o0;
  Builder.gate_into b Func.Xor2 [ q4; g2 ] o1;
  Builder.netlist b

let all =
  [
    ("circuit_a", circuit_a);
    ("circuit_b", circuit_b);
    ("c17", Generators.c17);
    ("tiny", tiny);
    ("fig23", fig23_example);
    ("mult8", fun lib -> Generators.multiplier ~name:"mult8" ~bits:8 lib);
    ("alu8", fun lib -> Generators.alu ~name:"alu8" ~bits:8 lib);
    ("adder16", fun lib -> Generators.ripple_adder ~name:"adder16" ~bits:16 lib);
    ("counter12", fun lib -> Generators.counter ~name:"counter12" ~bits:12 lib);
    ("ks16", fun lib -> Generators.kogge_stone ~name:"ks16" ~bits:16 lib);
    ("crc16", fun lib -> Generators.crc ~name:"crc16" ~bits:16 ~taps:[ 2; 15 ] lib);
    ( "pipe4x16",
      fun lib -> Generators.pipeline ~name:"pipe4x16" ~stages:4 ~width:16 ~stage_depth:6 lib );
    ( "soc",
      fun lib ->
        Smt_netlist.Compose.merge ~name:"soc"
          [
            ("dp", Generators.multiplier ~name:"mult" ~bits:8 lib);
            ("alu", Generators.alu ~name:"alu" ~bits:8 lib);
            ("crc", Generators.crc ~name:"crc" ~bits:16 ~taps:[ 2; 15 ] lib);
          ] );
  ]
