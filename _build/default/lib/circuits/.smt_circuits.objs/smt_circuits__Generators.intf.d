lib/circuits/generators.mli: Smt_cell Smt_netlist
