lib/circuits/suite.ml: Array Generators List Printf Smt_cell Smt_netlist Smt_util String
