lib/circuits/generators.ml: Array List Option Printf Smt_cell Smt_netlist Smt_util
