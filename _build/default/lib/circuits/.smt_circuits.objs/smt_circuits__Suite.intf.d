lib/circuits/suite.mli: Smt_cell Smt_netlist
