module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Func = Smt_cell.Func
module Rng = Smt_util.Rng

let c17 lib =
  let b = Builder.create ~name:"c17" ~lib () in
  let i1 = Builder.input b "G1" in
  let i2 = Builder.input b "G2" in
  let i3 = Builder.input b "G3" in
  let i4 = Builder.input b "G4" in
  let i5 = Builder.input b "G5" in
  let o1 = Builder.output b "G22" in
  let o2 = Builder.output b "G23" in
  let n10 = Builder.nand_ b i1 i3 in
  let n11 = Builder.nand_ b i3 i4 in
  let n16 = Builder.nand_ b i2 n11 in
  let n19 = Builder.nand_ b n11 i5 in
  Builder.gate_into b Func.Nand2 [ n10; n16 ] o1;
  Builder.gate_into b Func.Nand2 [ n16; n19 ] o2;
  Builder.netlist b

(* Random 2-3 input gate kinds a synthesizer would map to. *)
let comb_pool =
  [|
    Func.Nand2; Func.Nor2; Func.And2; Func.Or2; Func.Xor2; Func.Xnor2;
    Func.Aoi21; Func.Oai21; Func.Nand3; Func.Nor3; Func.Inv;
  |]

let layered ?(seed = 11) ?min_depth ~name ~inputs ~outputs ~width ~depth lib =
  let min_depth = match min_depth with Some d -> max 1 (min d depth) | None -> depth in
  let rng = Rng.create seed in
  let b = Builder.create ~name ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let ins = List.init inputs (fun i -> Builder.input b (Printf.sprintf "in%d" i)) in
  (* Register the inputs. *)
  let regs = List.map (fun d -> Builder.dff b ~d ~clk) ins in
  let reg_arr = Array.of_list regs in
  (* Column c runs for a depth drawn from [min_depth, depth]. Every input
     register seeds a column (cyclically) so none dangles; registers beyond
     the width join the parity tree below. *)
  let col_depth = Array.init width (fun _ -> Rng.int_in rng min_depth depth) in
  let current = Array.init width (fun c -> reg_arr.(c mod Array.length reg_arr)) in
  let unseeded_regs =
    if Array.length reg_arr > width then
      Array.to_list (Array.sub reg_arr width (Array.length reg_arr - width))
    else []
  in
  for layer = 1 to depth do
    for c = 0 to width - 1 do
      if layer <= col_depth.(c) then begin
        let kind = Rng.pick rng comb_pool in
        let arity = Func.arity kind in
        let pick_src () =
          (* mostly the same column (chains), sometimes a neighbour *)
          if Rng.chance rng 0.6 then current.(c)
          else current.(Rng.int rng width)
        in
        let srcs = List.init arity (fun i -> if i = 0 then current.(c) else pick_src ()) in
        let out = Builder.gate b kind srcs in
        current.(c) <- out
      end
    done
  done;
  (* Capture: register column tails; named outputs sample the first columns
     and a parity tree observes the rest so no register dangles. *)
  let tails = Array.to_list current in
  let qs = List.map (fun d -> Builder.dff b ~d ~clk) tails in
  let named = List.filteri (fun i _ -> i < outputs) qs in
  let rest = List.filteri (fun i _ -> i >= outputs) qs @ unseeded_regs in
  List.iteri
    (fun i q ->
      let po = Builder.output b (Printf.sprintf "out%d" i) in
      Builder.gate_into b Func.Buf [ q ] po)
    named;
  (match rest with
  | [] -> ()
  | _ :: _ ->
    let parity = Builder.reduce_tree b Builder.xor_ rest in
    let po = Builder.output b "parity" in
    Builder.gate_into b Func.Buf [ parity ] po);
  Builder.netlist b

let ripple_adder ?(registered = true) ~name ~bits lib =
  let b = Builder.create ~name ~lib () in
  let clk = if registered then Some (Builder.input ~clock:true b "clk") else None in
  let reg d = match clk with Some clk -> Builder.dff b ~d ~clk | None -> d in
  let a = List.init bits (fun i -> reg (Builder.input b (Printf.sprintf "a%d" i))) in
  let bb = List.init bits (fun i -> reg (Builder.input b (Printf.sprintf "b%d" i))) in
  let cin = reg (Builder.input b "cin") in
  let carry = ref cin in
  let sums =
    List.map2
      (fun ai bi ->
        let s, c = Builder.full_adder b ~a:ai ~b:bi ~cin:!carry in
        carry := c;
        s)
      a bb
  in
  List.iteri
    (fun i s ->
      let po = Builder.output b (Printf.sprintf "s%d" i) in
      Builder.gate_into b Func.Buf [ reg s ] po)
    sums;
  let po = Builder.output b "cout" in
  Builder.gate_into b Func.Buf [ reg !carry ] po;
  Builder.netlist b

let multiplier ?(registered = true) ~name ~bits lib =
  let b = Builder.create ~name ~lib () in
  let clk = if registered then Some (Builder.input ~clock:true b "clk") else None in
  let reg d = match clk with Some clk -> Builder.dff b ~d ~clk | None -> d in
  let a = Array.init bits (fun i -> reg (Builder.input b (Printf.sprintf "a%d" i))) in
  let bb = Array.init bits (fun i -> reg (Builder.input b (Printf.sprintf "b%d" i))) in
  (* Shift-add array: accumulate partial-product rows, emitting one product
     bit per row.  Absent operands (beyond the accumulator's top) stand for
     constant 0 and degrade full adders to half adders / pass-throughs. *)
  let partial i = Array.init bits (fun j -> Builder.and_ b a.(j) bb.(i)) in
  let add3 x y cin =
    match (y, cin) with
    | None, None -> (x, None)
    | Some y, None | None, Some y ->
      (Builder.xor_ b x y, Some (Builder.and_ b x y))
    | Some y, Some cin ->
      let s, c = Builder.full_adder b ~a:x ~b:y ~cin in
      (s, Some c)
  in
  let out = Array.make (2 * bits) None in
  let acc = ref (Array.map Option.some (partial 0)) in
  let acc_top = ref None in
  out.(0) <- !acc.(0);
  for i = 1 to bits - 1 do
    let row = partial i in
    let next = Array.make bits None in
    let carry = ref None in
    for j = 0 to bits - 1 do
      let shifted = if j < bits - 1 then !acc.(j + 1) else !acc_top in
      let s, c = add3 row.(j) shifted !carry in
      next.(j) <- Some s;
      carry := c
    done;
    acc := next;
    acc_top := !carry;
    out.(i) <- !acc.(0)
  done;
  for j = 1 to bits - 1 do
    out.(bits - 1 + j) <- !acc.(j)
  done;
  out.((2 * bits) - 1) <- !acc_top;
  Array.iteri
    (fun i net ->
      match net with
      | Some net ->
        let po = Builder.output b (Printf.sprintf "p%d" i) in
        Builder.gate_into b Func.Buf [ reg net ] po
      | None -> ())
    out;
  Builder.netlist b

let alu ?(seed = 5) ~name ~bits lib =
  let rng = Rng.create seed in
  ignore rng;
  let b = Builder.create ~name ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let reg d = Builder.dff b ~d ~clk in
  let a = Array.init bits (fun i -> reg (Builder.input b (Printf.sprintf "a%d" i))) in
  let bb = Array.init bits (fun i -> reg (Builder.input b (Printf.sprintf "b%d" i))) in
  let op0 = reg (Builder.input b "op0") in
  let op1 = reg (Builder.input b "op1") in
  (* add *)
  let carry = ref None in
  let adds =
    Array.to_list
      (Array.mapi
         (fun i ai ->
           let bi = bb.(i) in
           match !carry with
           | None ->
             let s = Builder.xor_ b ai bi in
             carry := Some (Builder.and_ b ai bi);
             s
           | Some cin ->
             let s, c = Builder.full_adder b ~a:ai ~b:bi ~cin in
             carry := Some c;
             s)
         a)
  in
  let ands = Array.to_list (Array.mapi (fun i ai -> Builder.and_ b ai bb.(i)) a) in
  let ors = Array.to_list (Array.mapi (fun i ai -> Builder.or_ b ai bb.(i)) a) in
  let xors = Array.to_list (Array.mapi (fun i ai -> Builder.xor_ b ai bb.(i)) a) in
  List.iteri
    (fun i (((add, andv), orv), xorv) ->
      let m0 = Builder.mux_ b ~sel:op0 add andv in
      let m1 = Builder.mux_ b ~sel:op0 orv xorv in
      let m = Builder.mux_ b ~sel:op1 m0 m1 in
      let po = Builder.output b (Printf.sprintf "y%d" i) in
      Builder.gate_into b Func.Buf [ reg m ] po)
    (List.combine (List.combine (List.combine adds ands) ors) xors);
  (match !carry with
  | Some c ->
    let po = Builder.output b "cout" in
    Builder.gate_into b Func.Buf [ reg c ] po
  | None -> ());
  Builder.netlist b

let counter ~name ~bits lib =
  let b = Builder.create ~name ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let en = Builder.input b "en" in
  let nl = Builder.netlist b in
  (* state bits with feedback: q[i]' = q[i] xor (en and q[0..i-1]) *)
  let qs = Array.init bits (fun i -> Netlist.add_net nl (Printf.sprintf "q%d" i)) in
  let carry = ref en in
  Array.iteri
    (fun i q ->
      let d = Builder.xor_ b q !carry in
      if i < bits - 1 then carry := Builder.and_ b !carry q;
      Builder.dff_into b ~d ~clk q)
    qs;
  Array.iteri
    (fun i q ->
      let po = Builder.output b (Printf.sprintf "count%d" i) in
      Builder.gate_into b Func.Buf [ q ] po)
    qs;
  nl

let kogge_stone ?(registered = true) ~name ~bits lib =
  let b = Builder.create ~name ~lib () in
  let clk = if registered then Some (Builder.input ~clock:true b "clk") else None in
  let reg d = match clk with Some clk -> Builder.dff b ~d ~clk | None -> d in
  let a = Array.init bits (fun i -> reg (Builder.input b (Printf.sprintf "a%d" i))) in
  let bb = Array.init bits (fun i -> reg (Builder.input b (Printf.sprintf "b%d" i))) in
  (* generate/propagate pairs, then the log-depth prefix network *)
  let g = Array.init bits (fun i -> Builder.and_ b a.(i) bb.(i)) in
  let p = Array.init bits (fun i -> Builder.xor_ b a.(i) bb.(i)) in
  let gk = Array.copy g and pk = Array.copy p in
  let span = ref 1 in
  while !span < bits do
    let g' = Array.copy gk and p' = Array.copy pk in
    for i = bits - 1 downto !span do
      (* (g,p) o (g',p') = (g or (p and g'), p and p') *)
      let carry_from_below = Builder.and_ b pk.(i) gk.(i - !span) in
      g'.(i) <- Builder.or_ b gk.(i) carry_from_below;
      (* the combined propagate is only consumed by the next level, and
         there only at positions >= 2*span: skip the rest so no gate
         dangles (a synthesizer would prune them the same way) *)
      if (2 * !span) < bits && i >= 2 * !span then
        p'.(i) <- Builder.and_ b pk.(i) pk.(i - !span)
    done;
    Array.blit g' 0 gk 0 bits;
    Array.blit p' 0 pk 0 bits;
    span := !span * 2
  done;
  (* sum_i = p_i xor carry_in_i, carry_in_i = gk_{i-1} *)
  Array.iteri
    (fun i pi ->
      let s = if i = 0 then pi else Builder.xor_ b pi gk.(i - 1) in
      let po = Builder.output b (Printf.sprintf "s%d" i) in
      Builder.gate_into b Func.Buf [ reg s ] po)
    p;
  let po = Builder.output b "cout" in
  Builder.gate_into b Func.Buf [ reg gk.(bits - 1) ] po;
  Builder.netlist b

let crc ~name ~bits ~taps lib =
  let b = Builder.create ~name ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let din = Builder.input b "din" in
  let nl = Builder.netlist b in
  let state = Array.init bits (fun i -> Netlist.add_net nl (Printf.sprintf "s%d" i)) in
  (* Galois form: feedback = state[msb] xor din; bit i gets bit i-1, xored
     with the feedback on tap positions. *)
  let feedback = Builder.xor_ b state.(bits - 1) din in
  Array.iteri
    (fun i s ->
      let d =
        if i = 0 then feedback
        else if List.mem i taps then Builder.xor_ b state.(i - 1) feedback
        else state.(i - 1)
      in
      Builder.dff_into b ~d ~clk s)
    state;
  Array.iteri
    (fun i s ->
      let po = Builder.output b (Printf.sprintf "crc%d" i) in
      Builder.gate_into b Func.Buf [ s ] po)
    state;
  nl

let pipeline ?(seed = 17) ~name ~stages ~width ~stage_depth lib =
  let rng = Rng.create seed in
  let b = Builder.create ~name ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let ins = List.init width (fun i -> Builder.input b (Printf.sprintf "in%d" i)) in
  let bank nets = List.map (fun d -> Builder.dff b ~d ~clk) nets in
  let stage nets =
    let current = Array.of_list nets in
    for _layer = 1 to stage_depth do
      let prev = Array.copy current in
      Array.iteri
        (fun c _ ->
          let kind = Rng.pick rng comb_pool in
          let srcs =
            List.init (Func.arity kind) (fun i ->
                if i = 0 then prev.(c) else prev.(Rng.int rng width))
          in
          current.(c) <- Builder.gate b kind srcs)
        current
    done;
    Array.to_list current
  in
  let data = ref (bank ins) in
  for _stage = 1 to stages do
    data := bank (stage !data)
  done;
  List.iteri
    (fun i q ->
      let po = Builder.output b (Printf.sprintf "out%d" i) in
      Builder.gate_into b Func.Buf [ q ] po)
    !data;
  Builder.netlist b
