(** Circuit generators.

    The paper evaluates on two unnamed production blocks ("circuit A" and
    "circuit B"); since those are Toshiba-internal, the generators here
    produce synthetic netlists with controlled structure: registered
    arithmetic blocks whose paths are uniformly deep (most cells end up
    timing-critical, like a datapath) and layered random logic with varied
    depths (plenty of slack, like control logic).  All generators build
    all-low-Vth netlists with a clock input — the flow's precondition. *)

val c17 : Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** The ISCAS-85 c17 benchmark: 6 NAND2, 5 inputs, 2 outputs, no
    flip-flops. *)

val layered :
  ?seed:int ->
  ?min_depth:int ->
  name:string ->
  inputs:int ->
  outputs:int ->
  width:int ->
  depth:int ->
  Smt_cell.Library.t ->
  Smt_netlist.Netlist.t
(** Registered random layered logic: input flip-flops, [depth] layers of
    [width] random 2-3 input gates wired to the previous layers, output
    flip-flops.  [min_depth] (default [depth]) lets columns end early,
    creating slack diversity; with [min_depth = depth] all paths are
    near-uniform (datapath-like). *)

val ripple_adder :
  ?registered:bool -> name:string -> bits:int -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** Ripple-carry adder; deep single critical chain. *)

val multiplier :
  ?registered:bool -> name:string -> bits:int -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** Array multiplier (AND partial products + full-adder array); most paths
    near-critical. *)

val alu :
  ?seed:int -> name:string -> bits:int -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** Registered ALU: add, and, or, xor selected by a 2-bit opcode mux. *)

val counter : name:string -> bits:int -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** Synchronous binary counter (sequential loop fodder for CTS/hold tests). *)

val kogge_stone :
  ?registered:bool -> name:string -> bits:int -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** Kogge-Stone parallel-prefix adder: logarithmic depth, wide fanout —
    the opposite timing profile of the ripple adder. *)

val crc : name:string -> bits:int -> taps:int list -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** Galois LFSR / CRC register with the given feedback taps (bit indices);
    serial input [din], parallel state outputs. *)

val pipeline :
  ?seed:int ->
  name:string ->
  stages:int ->
  width:int ->
  stage_depth:int ->
  Smt_cell.Library.t ->
  Smt_netlist.Netlist.t
(** A register-to-register pipeline: [stages] banks of flip-flops with
    [stage_depth] layers of random logic between consecutive banks —
    uniform stage timing, the canonical datapath shape. *)

