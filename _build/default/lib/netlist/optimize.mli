(** Post-transformation netlist cleanup.

    The flow's late stages can leave easy fat behind: logic whose outputs
    became unobservable, and buffer pairs that no longer serve a purpose.
    This pass removes combinational cells that drive nothing (iteratively,
    so whole dead cones disappear) and collapses plain buffers whose output
    net is internal.  Infrastructure buffers (clock tree, MTE tree, hold
    ECO — recognizable by their name stems) are never touched: they exist
    for electrical or timing reasons, not logic. *)

type result = {
  dead_removed : int;
  buffers_collapsed : int;
  iterations : int;
}

val remove_dead_logic : Netlist.t -> int
(** One fixpoint of dead-cell removal; returns cells removed. *)

val collapse_buffers : Netlist.t -> int
(** Splice out removable plain buffers; returns buffers removed. *)

val run : Netlist.t -> result
(** Alternate both to fixpoint. *)
