module Cell = Smt_cell.Cell
module Func = Smt_cell.Func

let protected_name name =
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "ctsbuf" || has_prefix "mtebuf" || has_prefix "ecobuf"

let is_comb nl iid =
  let kind = (Netlist.cell nl iid).Cell.kind in
  (not (Func.is_sequential kind)) && not (Func.is_infrastructure kind)

let remove_dead_logic nl =
  let removed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun iid ->
        if is_comb nl iid && not (protected_name (Netlist.inst_name nl iid)) then
          match Netlist.output_net nl iid with
          | Some out
            when Netlist.sinks nl out = []
                 && (not (Netlist.is_po nl out))
                 && Netlist.holder_of nl out = None ->
            Netlist.remove_inst nl iid;
            incr removed;
            progress := true
          | Some _ | None -> ())
      (Netlist.live_insts nl)
  done;
  !removed

let collapse_buffers nl =
  let collapsed = ref 0 in
  List.iter
    (fun iid ->
      let cell = Netlist.cell nl iid in
      if
        cell.Cell.kind = Func.Buf
        && (not (Smt_cell.Cell.is_mt cell))
        && not (protected_name (Netlist.inst_name nl iid))
      then
        match (Netlist.pin_net nl iid "A", Netlist.output_net nl iid) with
        | Some src, Some out
          when (not (Netlist.is_po nl out))
               && (not (Netlist.is_pi nl out))
               && Netlist.holder_of nl out = None
               && not (Netlist.is_clock_net nl out) ->
          (* re-home every sink of [out] onto [src], then drop the buffer *)
          List.iter
            (fun pin -> Netlist.move_sink nl ~from_net:out pin ~to_net:src)
            (Netlist.sinks nl out);
          Netlist.remove_inst nl iid;
          incr collapsed
        | Some _, Some _ | Some _, None | None, Some _ | None, None -> ())
    (Netlist.live_insts nl);
  !collapsed

type result = {
  dead_removed : int;
  buffers_collapsed : int;
  iterations : int;
}

let run nl =
  let dead = ref 0 and bufs = ref 0 and iters = ref 0 in
  let progress = ref true in
  while !progress do
    incr iters;
    let d = remove_dead_logic nl in
    let b = collapse_buffers nl in
    dead := !dead + d;
    bufs := !bufs + b;
    progress := d + b > 0
  done;
  { dead_removed = !dead; buffers_collapsed = !bufs; iterations = !iters }
