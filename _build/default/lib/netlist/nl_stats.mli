(** Composition statistics of a netlist, the raw material of the paper's
    Table 1 area rows. *)

type t = {
  instances : int;
  nets : int;
  combinational : int;
  sequential : int;
  sleep_switches : int;
  holders : int;
  count_low_vth : int;  (** plain low-Vth logic cells *)
  count_high_vth : int;  (** plain high-Vth logic cells *)
  count_mt : int;  (** MT-cells of any style *)
  area_total : float;
  area_logic : float;  (** plain logic incl. flip-flops and buffers *)
  area_mt_cells : float;
  area_switches : float;
  area_holders : float;
  total_switch_width : float;  (** standalone footers plus embedded ones *)
}

val compute : Netlist.t -> t

val pp : Format.formatter -> t -> unit

val mt_area_fraction : t -> float
(** Share of logic area implemented as MT-cells. *)
