let merge ~name blocks =
  (match blocks with [] -> invalid_arg "Compose.merge: no blocks" | _ -> ());
  let prefixes = List.map fst blocks in
  if List.exists (fun p -> String.length p = 0) prefixes then
    invalid_arg "Compose.merge: empty prefix";
  if List.length (List.sort_uniq compare prefixes) <> List.length prefixes then
    invalid_arg "Compose.merge: duplicate prefixes";
  let lib =
    match blocks with (_, nl) :: _ -> Netlist.lib nl | [] -> assert false
  in
  let top = Netlist.create ~name ~lib in
  let clk = ref None in
  let top_clock () =
    match !clk with
    | Some c -> c
    | None ->
      let c = Netlist.add_input ~clock:true top "clk" in
      clk := Some c;
      c
  in
  List.iter
    (fun (prefix, src) ->
      let net_map = Hashtbl.create 997 in
      let inst_map = Hashtbl.create 997 in
      (* nets first: clock PIs unify, other ports get prefixed ports *)
      Netlist.iter_nets src (fun nid ->
          let new_name = prefix ^ "_" ^ Netlist.net_name src nid in
          let dst =
            if Netlist.is_clock_net src nid && Netlist.is_pi src nid then top_clock ()
            else if Netlist.is_pi src nid then Netlist.add_input top new_name
            else if Netlist.is_po src nid then Netlist.add_output top new_name
            else begin
              let n = Netlist.add_net top new_name in
              if Netlist.is_clock_net src nid then Netlist.mark_clock top n;
              n
            end
          in
          Hashtbl.replace net_map nid dst);
      (* instances with mapped pins *)
      Netlist.iter_insts src (fun iid ->
          let cell = Netlist.cell src iid in
          let pins =
            List.map (fun (p, nid) -> (p, Hashtbl.find net_map nid)) (Netlist.conns src iid)
          in
          let new_inst =
            Netlist.add_inst top
              ~name:(prefix ^ "_" ^ Netlist.inst_name src iid)
              cell pins
          in
          Hashtbl.replace inst_map iid new_inst);
      (* VGND attachments *)
      Netlist.iter_insts src (fun iid ->
          match Netlist.vgnd_switch src iid with
          | Some sw ->
            Netlist.set_vgnd_switch top (Hashtbl.find inst_map iid)
              (Some (Hashtbl.find inst_map sw))
          | None -> ()))
    blocks;
  top
