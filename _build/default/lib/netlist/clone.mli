(** Deep copy of a netlist.

    Implemented as a round-trip through {!Writer} and {!Parser}, which both
    exercises the serialization path and guarantees the clone carries
    exactly the information the dump format defines (connectivity, ports,
    clock marking, VGND attachments). Placement is not part of a netlist
    and is not cloned. *)

val copy : Netlist.t -> Netlist.t
