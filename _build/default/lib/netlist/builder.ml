module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library

type t = {
  nl : Netlist.t;
  lib : Library.t;
  vth : Vth.t;
  style : Vth.mt_style;
}

let create ?(vth = Vth.Low) ?(style = Vth.Plain) ~name ~lib () =
  { nl = Netlist.create ~name ~lib; lib; vth; style }

let netlist t = t.nl

let input ?clock t name = Netlist.add_input ?clock t.nl name
let output t name = Netlist.add_output t.nl name
let net t name = Netlist.add_net t.nl name

let instantiate t kind pins =
  let cell = Library.variant t.lib kind t.vth t.style in
  let name = Netlist.fresh_inst_name t.nl (String.lowercase_ascii (Func.to_string kind)) in
  Netlist.add_inst t.nl ~name cell pins

let gate_into t kind ins out =
  let names = Func.input_names kind in
  if Array.length names <> List.length ins then
    invalid_arg
      (Printf.sprintf "Builder.gate: %s takes %d inputs, %d given" (Func.to_string kind)
         (Array.length names) (List.length ins));
  let pins = List.mapi (fun i nid -> (names.(i), nid)) ins in
  ignore (instantiate t kind (pins @ [ ("Z", out) ]))

let gate t kind ins =
  let out = Netlist.fresh_net t.nl "n" in
  gate_into t kind ins out;
  out

let dff_into t ~d ~clk q =
  ignore (instantiate t Func.Dff [ ("D", d); ("CK", clk); ("Q", q) ])

let dff t ~d ~clk =
  let q = Netlist.fresh_net t.nl "q" in
  dff_into t ~d ~clk q;
  q

let not_ t a = gate t Func.Inv [ a ]
let and_ t a b = gate t Func.And2 [ a; b ]
let or_ t a b = gate t Func.Or2 [ a; b ]
let xor_ t a b = gate t Func.Xor2 [ a; b ]
let nand_ t a b = gate t Func.Nand2 [ a; b ]
let nor_ t a b = gate t Func.Nor2 [ a; b ]
let mux_ t ~sel a b = gate t Func.Mux2 [ a; b; sel ]

let reduce_tree t op nets =
  let rec level = function
    | [] -> invalid_arg "Builder.reduce_tree: empty"
    | [ x ] -> x
    | xs ->
      let rec pair acc = function
        | [] -> List.rev acc
        | [ x ] -> List.rev (x :: acc)
        | a :: b :: rest -> pair (op t a b :: acc) rest
      in
      level (pair [] xs)
  in
  level nets

let full_adder t ~a ~b ~cin =
  let axb = xor_ t a b in
  let sum = xor_ t axb cin in
  let c1 = and_ t a b in
  let c2 = and_ t axb cin in
  let cout = or_ t c1 c2 in
  (sum, cout)
