(** Structural-Verilog-subset dump of a netlist.

    The subset is plain gate-level Verilog plus two directive comments that
    carry the non-Verilog connectivity of the Selective-MT style:
    [// @clock <net>] marks clock inputs and [// @vgnd <inst> <switch>]
    records which sleep switch an MT-cell's virtual-ground port hangs from.
    [Parser.of_string] reads the same subset back. *)

val to_string : Netlist.t -> string

val to_file : Netlist.t -> string -> unit
(** Write to a path. *)
