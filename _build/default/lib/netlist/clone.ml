let copy nl = Parser.of_string ~lib:(Netlist.lib nl) (Writer.to_string nl)
