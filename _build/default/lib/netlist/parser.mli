(** Reader for the structural-Verilog subset emitted by {!Writer}.

    Grammar: one [module] with a port list; [input]/[output]/[wire]
    declarations; gate instantiations with named pin connections; optional
    [// @clock] and [// @vgnd] directives. Cell names are resolved against
    the given library; sized sleep switches ([SW_W<w>p<d>]) are synthesized
    on demand. *)

exception Parse_error of string
(** Carries a message with a line number. *)

val of_string : lib:Smt_cell.Library.t -> string -> Netlist.t

val of_file : lib:Smt_cell.Library.t -> string -> Netlist.t
