(** Flat composition of blocks into one top-level netlist.

    Each sub-block's ports and instances are prefixed with its block name;
    clock inputs are unified into a single top-level ["clk"] so the blocks
    share one clock domain (the flow then builds one tree over all of
    them).  VGND attachments and holders survive the copy, so composed
    blocks can already carry their MT structure. *)

val merge : name:string -> (string * Netlist.t) list -> Netlist.t
(** [merge ~name blocks] with [(prefix, netlist)] pairs. Prefixes must be
    unique and non-empty; raises [Invalid_argument] otherwise. *)
