lib/netlist/nl_stats.mli: Format Netlist
