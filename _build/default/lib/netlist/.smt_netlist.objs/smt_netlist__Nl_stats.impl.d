lib/netlist/nl_stats.ml: Format Netlist Smt_cell
