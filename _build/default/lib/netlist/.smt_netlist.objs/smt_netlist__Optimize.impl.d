lib/netlist/optimize.ml: List Netlist Smt_cell String
