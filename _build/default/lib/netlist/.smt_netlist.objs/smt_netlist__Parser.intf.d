lib/netlist/parser.mli: Netlist Smt_cell
