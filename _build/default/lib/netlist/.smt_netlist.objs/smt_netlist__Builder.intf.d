lib/netlist/builder.mli: Netlist Smt_cell
