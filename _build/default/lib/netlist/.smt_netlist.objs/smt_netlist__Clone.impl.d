lib/netlist/clone.ml: Netlist Parser Writer
