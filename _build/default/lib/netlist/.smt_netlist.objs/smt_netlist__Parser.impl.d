lib/netlist/parser.ml: Fun List Netlist Printf Smt_cell String
