lib/netlist/check.ml: Array List Netlist Printf Smt_cell
