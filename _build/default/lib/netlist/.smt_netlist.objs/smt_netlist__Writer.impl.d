lib/netlist/writer.ml: Buffer Fun List Netlist Printf Smt_cell String
