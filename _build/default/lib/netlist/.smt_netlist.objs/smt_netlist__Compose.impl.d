lib/netlist/compose.ml: Hashtbl List Netlist String
