lib/netlist/netlist.ml: Array Hashtbl List Printf Queue Smt_cell Smt_util String
