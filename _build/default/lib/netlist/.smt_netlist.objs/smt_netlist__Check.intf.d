lib/netlist/check.mli: Netlist
