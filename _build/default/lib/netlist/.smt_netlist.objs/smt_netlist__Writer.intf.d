lib/netlist/writer.mli: Netlist
