lib/netlist/clone.mli: Netlist
