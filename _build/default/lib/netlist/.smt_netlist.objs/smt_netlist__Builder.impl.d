lib/netlist/builder.ml: Array List Netlist Printf Smt_cell String
