lib/netlist/netlist.mli: Smt_cell
