module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth

type t = {
  instances : int;
  nets : int;
  combinational : int;
  sequential : int;
  sleep_switches : int;
  holders : int;
  count_low_vth : int;
  count_high_vth : int;
  count_mt : int;
  area_total : float;
  area_logic : float;
  area_mt_cells : float;
  area_switches : float;
  area_holders : float;
  total_switch_width : float;
}

let zero =
  {
    instances = 0;
    nets = 0;
    combinational = 0;
    sequential = 0;
    sleep_switches = 0;
    holders = 0;
    count_low_vth = 0;
    count_high_vth = 0;
    count_mt = 0;
    area_total = 0.0;
    area_logic = 0.0;
    area_mt_cells = 0.0;
    area_switches = 0.0;
    area_holders = 0.0;
    total_switch_width = 0.0;
  }

let compute nl =
  let acc = ref { zero with nets = Netlist.net_count nl } in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      let s = !acc in
      let s = { s with instances = s.instances + 1; area_total = s.area_total +. c.Cell.area } in
      let s =
        match c.Cell.kind with
        | Func.Sleep_switch ->
          {
            s with
            sleep_switches = s.sleep_switches + 1;
            area_switches = s.area_switches +. c.Cell.area;
            total_switch_width = s.total_switch_width +. c.Cell.switch_width;
          }
        | Func.Holder ->
          { s with holders = s.holders + 1; area_holders = s.area_holders +. c.Cell.area }
        | Func.Dff ->
          {
            s with
            sequential = s.sequential + 1;
            area_logic = s.area_logic +. c.Cell.area;
            count_low_vth = (if c.Cell.vth = Vth.Low then s.count_low_vth + 1 else s.count_low_vth);
            count_high_vth =
              (if c.Cell.vth = Vth.High then s.count_high_vth + 1 else s.count_high_vth);
          }
        | Func.Inv | Func.Buf | Func.Clkbuf | Func.Nand2 | Func.Nand3 | Func.Nand4
        | Func.Nor2 | Func.Nor3 | Func.And2 | Func.And3 | Func.Or2 | Func.Or3
        | Func.Xor2 | Func.Xnor2 | Func.Aoi21 | Func.Oai21 | Func.Mux2 ->
          let s = { s with combinational = s.combinational + 1 } in
          if Cell.is_mt c then
            {
              s with
              count_mt = s.count_mt + 1;
              area_mt_cells = s.area_mt_cells +. c.Cell.area;
              total_switch_width = s.total_switch_width +. c.Cell.switch_width;
            }
          else
            {
              s with
              area_logic = s.area_logic +. c.Cell.area;
              count_low_vth =
                (if c.Cell.vth = Vth.Low then s.count_low_vth + 1 else s.count_low_vth);
              count_high_vth =
                (if c.Cell.vth = Vth.High then s.count_high_vth + 1 else s.count_high_vth);
            }
      in
      acc := s);
  !acc

let mt_area_fraction t =
  let logic = t.area_logic +. t.area_mt_cells in
  if logic = 0.0 then 0.0 else t.area_mt_cells /. logic

let pp fmt t =
  Format.fprintf fmt
    "insts=%d (comb=%d seq=%d sw=%d holder=%d) lv=%d hv=%d mt=%d area=%.1f \
     (logic=%.1f mt=%.1f sw=%.1f holder=%.1f) sw_width=%.1f"
    t.instances t.combinational t.sequential t.sleep_switches t.holders t.count_low_vth
    t.count_high_vth t.count_mt t.area_total t.area_logic t.area_mt_cells t.area_switches
    t.area_holders t.total_switch_width
