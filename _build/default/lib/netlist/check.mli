(** Structural validation of a netlist.

    [validate] returns human-readable problems (empty list means the
    netlist is well-formed).  The MT-specific rules implement the paper's
    invariants: after switch insertion every VGND-port MT-cell must hang
    from a sleep switch, and every net driven by an MT-cell whose value
    must survive standby (i.e. with at least one non-MT sink) must carry an
    output holder. *)

type phase =
  | Pre_mt  (** before switch insertion: no VGND connections expected *)
  | Post_mt  (** after switch insertion: VGND and holder rules enforced *)

val validate : ?phase:phase -> Netlist.t -> string list

val is_valid : ?phase:phase -> Netlist.t -> bool

val holder_required : Netlist.t -> Netlist.net_id -> bool
(** The paper's rule: an output holder is unnecessary exactly when all
    fanouts of the MT-cell are themselves MT-cells (their inputs float
    together in standby). Primary outputs and flip-flop/holder-free sinks
    need the value held. Returns false for nets not driven by an MT-cell. *)
