module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth

type phase = Pre_mt | Post_mt

let mt_inst nl iid = Cell.is_mt (Netlist.cell nl iid)

(* Only VGND-style MT-cells need external holders: the conventional
   embedded MT-cell carries its own (paper Fig. 1a). *)
let floating_driver nl iid =
  match (Netlist.cell nl iid).Cell.style with
  | Vth.Mt_vgnd | Vth.Mt_no_vgnd -> true
  | Vth.Plain | Vth.Mt_embedded -> false

let holder_required nl nid =
  match Netlist.driver nl nid with
  | None -> false
  | Some d ->
    floating_driver nl d.Netlist.inst
    && (Netlist.is_po nl nid
       || List.exists (fun (p : Netlist.pin) -> not (mt_inst nl p.Netlist.inst))
            (Netlist.sinks nl nid))

let required_pins (cell : Cell.t) =
  let logic = Array.to_list (Func.input_names cell.Cell.kind) in
  let mte = if Vth.style_equal cell.Cell.style Vth.Mt_embedded then [ "MTE" ] else [] in
  let extra =
    match cell.Cell.kind with
    | Func.Dff -> [ "CK" ]
    | Func.Sleep_switch -> [ "MTE" ]
    | Func.Holder -> [ "MTE"; "Z" ]
    | Func.Inv | Func.Buf | Func.Clkbuf | Func.Nand2 | Func.Nand3 | Func.Nand4
    | Func.Nor2 | Func.Nor3 | Func.And2 | Func.And3 | Func.Or2 | Func.Or3
    | Func.Xor2 | Func.Xnor2 | Func.Aoi21 | Func.Oai21 | Func.Mux2 ->
      []
  in
  logic @ extra @ mte

let validate ?(phase = Pre_mt) nl =
  let problems = ref [] in
  let report fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* nets: drivers and loads *)
  Netlist.iter_nets nl (fun nid ->
      let name = Netlist.net_name nl nid in
      let has_driver = Netlist.driver nl nid <> None || Netlist.is_pi nl nid in
      let has_load = Netlist.sinks nl nid <> [] || Netlist.is_po nl nid in
      if (not has_driver) && has_load then report "net %s has loads but no driver" name;
      if has_driver && not has_load then report "net %s is dangling (no load)" name;
      match Netlist.holder_of nl nid with
      | None -> ()
      | Some h ->
        if Netlist.is_dead nl h then report "net %s holder is a removed instance" name
        else if (Netlist.cell nl h).Cell.kind <> Func.Holder then
          report "net %s keeper %s is not a HOLDER" name (Netlist.inst_name nl h));
  (* instances: pin completeness *)
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      let name = Netlist.inst_name nl iid in
      List.iter
        (fun pin ->
          if Netlist.pin_net nl iid pin = None then
            report "instance %s pin %s is unconnected" name pin)
        (required_pins cell);
      (match Func.output_names cell.Cell.kind with
      | [||] -> ()
      | outs ->
        if Netlist.pin_net nl iid outs.(0) = None then
          report "instance %s output %s is unconnected" name outs.(0));
      match phase with
      | Pre_mt ->
        (match cell.Cell.style with
        | Vth.Mt_vgnd ->
          report "instance %s already has a VGND port before switch insertion" name
        | Vth.Plain | Vth.Mt_embedded | Vth.Mt_no_vgnd -> ())
      | Post_mt -> (
        match cell.Cell.style with
        | Vth.Mt_vgnd ->
          (match Netlist.vgnd_switch nl iid with
          | None -> report "MT-cell %s has a floating VGND port" name
          | Some sw ->
            if Netlist.is_dead nl sw then report "MT-cell %s hangs from removed switch" name)
        | Vth.Mt_no_vgnd ->
          report "instance %s still lacks its VGND port after switch insertion" name
        | Vth.Plain | Vth.Mt_embedded -> ()));
  (* holder rule, post-MT only *)
  (match phase with
  | Pre_mt -> ()
  | Post_mt ->
    Netlist.iter_nets nl (fun nid ->
        if holder_required nl nid && Netlist.holder_of nl nid = None then
          report "net %s needs an output holder (MT driver, non-MT fanout)"
            (Netlist.net_name nl nid)));
  (* combinational cycles *)
  (try ignore (Netlist.topo_order nl)
   with Netlist.Combinational_cycle where -> report "combinational cycle through %s" where);
  List.rev !problems

let is_valid ?phase nl = validate ?phase nl = []
