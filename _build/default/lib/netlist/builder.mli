(** Convenience layer for constructing netlists gate by gate.

    A builder carries the default cell flavour (Vth and MT style) used for
    new gates; generators build everything in low-Vth [Plain] flavour, as
    the paper's flow does before replacement. *)

type t

val create :
  ?vth:Smt_cell.Vth.t ->
  ?style:Smt_cell.Vth.mt_style ->
  name:string ->
  lib:Smt_cell.Library.t ->
  unit ->
  t

val netlist : t -> Netlist.t

val input : ?clock:bool -> t -> string -> Netlist.net_id
val output : t -> string -> Netlist.net_id
val net : t -> string -> Netlist.net_id

val gate : t -> Smt_cell.Func.kind -> Netlist.net_id list -> Netlist.net_id
(** Instantiate a combinational gate on the given input nets (in
    [Func.input_names] order); returns a fresh output net. *)

val gate_into : t -> Smt_cell.Func.kind -> Netlist.net_id list -> Netlist.net_id -> unit
(** Like [gate] but drives an existing net (e.g. a primary output). *)

val dff : t -> d:Netlist.net_id -> clk:Netlist.net_id -> Netlist.net_id
(** Flip-flop; returns its Q net. *)

val dff_into : t -> d:Netlist.net_id -> clk:Netlist.net_id -> Netlist.net_id -> unit

val not_ : t -> Netlist.net_id -> Netlist.net_id
val and_ : t -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id
val or_ : t -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id
val xor_ : t -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id
val nand_ : t -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id
val nor_ : t -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id
val mux_ : t -> sel:Netlist.net_id -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id

val reduce_tree :
  t -> (t -> Netlist.net_id -> Netlist.net_id -> Netlist.net_id) ->
  Netlist.net_id list -> Netlist.net_id
(** Balanced binary reduction, e.g. [reduce_tree b and_ nets].
    Raises [Invalid_argument] on the empty list. *)

val full_adder :
  t -> a:Netlist.net_id -> b:Netlist.net_id -> cin:Netlist.net_id ->
  Netlist.net_id * Netlist.net_id
(** Gate-level full adder; returns (sum, carry). *)
