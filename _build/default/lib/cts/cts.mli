(** Clock tree synthesis by recursive geometric bisection.

    Flip-flop clock pins are grouped geometrically; each group of at most
    [max_fanout] sinks gets a clock buffer at its centroid, and groups are
    merged bottom-up until a single root buffer hangs from the clock port.
    The tree is materialized in the netlist (CLKBUF instances on fresh
    clock-marked nets) and placed, and per-flip-flop insertion latency is
    computed from buffer delays plus wire RC.

    The resulting latency function feeds STA ([Sta.config.clock_latency]);
    the residual skew is what creates the hold violations the ECO stage
    then repairs — the paper's "fixing the hold violation" step. *)

type t

val synthesize : ?max_fanout:int -> Smt_place.Placement.t -> t
(** Builds and places the tree, rewiring every flip-flop CK pin. Designs
    without a clock net or without flip-flops yield an empty tree.
    Default [max_fanout] is 8. *)

val buffer_count : t -> int
val levels : t -> int
val buffer_area : t -> float

val latency : t -> Smt_netlist.Netlist.inst_id -> float
(** Insertion delay to the flip-flop's CK pin (0 for unknown instances). *)

val latency_fn : t -> Smt_netlist.Netlist.inst_id -> float
val max_latency : t -> float
val min_latency : t -> float
val skew : t -> float
