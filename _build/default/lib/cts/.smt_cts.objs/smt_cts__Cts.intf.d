lib/cts/cts.mli: Smt_netlist Smt_place
