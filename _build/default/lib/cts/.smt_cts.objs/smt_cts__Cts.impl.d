lib/cts/cts.ml: Float Hashtbl List Smt_cell Smt_netlist Smt_place Smt_util
