module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library
module Geom = Smt_util.Geom

type t = {
  buffers : Netlist.inst_id list;
  levels : int;
  lat : (Netlist.inst_id, float) Hashtbl.t;
  buffer_area : float;
}

let empty = { buffers = []; levels = 0; lat = Hashtbl.create 7; buffer_area = 0.0 }

let buffer_count t = List.length t.buffers
let levels t = t.levels
let buffer_area t = t.buffer_area
let latency t iid = match Hashtbl.find_opt t.lat iid with Some l -> l | None -> 0.0
let latency_fn t = latency t

let fold_latencies f init t = Hashtbl.fold (fun _ l acc -> f acc l) t.lat init

let max_latency t = fold_latencies Float.max 0.0 t
let min_latency t =
  if Hashtbl.length t.lat = 0 then 0.0 else fold_latencies Float.min infinity t

let skew t = if Hashtbl.length t.lat = 0 then 0.0 else max_latency t -. min_latency t

(* A sink is a flip-flop CK pin at a point. *)
type sink = { ff : Netlist.inst_id; at : Geom.point }

type node =
  | Leaf of sink list
  | Branch of node list

let rec partition max_fanout sinks =
  if List.length sinks <= max_fanout then Leaf sinks
  else begin
    let pts = List.map (fun s -> s.at) sinks in
    let box = Geom.bbox_of_points pts in
    let vertical = Geom.width box >= Geom.height box in
    let key s = if vertical then s.at.Geom.x else s.at.Geom.y in
    let sorted = List.sort (fun a b -> compare (key a) (key b)) sinks in
    let n = List.length sorted in
    let left = List.filteri (fun i _ -> i < n / 2) sorted in
    let right = List.filteri (fun i _ -> i >= n / 2) sorted in
    Branch [ partition max_fanout left; partition max_fanout right ]
  end

let rc_ps r c = r *. c *. 1e-3

let synthesize ?(max_fanout = 8) place =
  let nl = Placement.netlist place in
  match Netlist.clock_net nl with
  | None -> empty
  | Some clock_root ->
    let ffs =
      Netlist.live_insts nl
      |> List.filter (fun iid -> (Netlist.cell nl iid).Cell.kind = Func.Dff)
    in
    if ffs = [] then empty
    else begin
      let lib = Netlist.lib nl in
      let tech = Library.tech lib in
      let buf_cell = Library.clock_buffer lib in
      let sinks =
        List.filter_map
          (fun ff ->
            match Placement.inst_point_opt place ff with
            | Some at -> Some { ff; at }
            | None -> None)
          ffs
      in
      let tree = partition max_fanout sinks in
      let buffers = ref [] in
      let lat = Hashtbl.create (List.length ffs) in
      let area = ref 0.0 in
      (* Build bottom-up: each node returns (input net to be driven by the
         parent, buffer location, relative latency per FF measured from the
         node's input pin). *)
      let wire_delay dist sink_cap =
        let r = dist *. tech.Tech.wire_r_per_um
        and c = dist *. tech.Tech.wire_c_per_um in
        rc_ps r ((0.5 *. c) +. sink_cap)
      in
      let rec build node : Netlist.net_id * Geom.point * (Netlist.inst_id * float) list =
        match node with
        | Leaf group ->
          let pts = List.map (fun s -> s.at) group in
          let here = Geom.center (Geom.bbox_of_points pts) in
          let in_net = Netlist.fresh_net nl "clk" in
          let out_net = Netlist.fresh_net nl "clk" in
          Netlist.mark_clock nl in_net;
          Netlist.mark_clock nl out_net;
          let name = Netlist.fresh_inst_name nl "ctsbuf" in
          let buf = Netlist.add_inst nl ~name buf_cell [ ("A", in_net); ("Z", out_net) ] in
          Placement.place_inst place buf here;
          buffers := buf :: !buffers;
          area := !area +. buf_cell.Cell.area;
          (* Re-home each CK pin onto the leaf net. *)
          let load = ref 0.0 in
          List.iter
            (fun s ->
              Netlist.connect nl s.ff "CK" out_net;
              load := !load +. (Netlist.cell nl s.ff).Cell.input_cap;
              let dist = Geom.manhattan here s.at in
              load := !load +. (dist *. tech.Tech.wire_c_per_um))
            group;
          let d_buf = Cell.delay buf_cell ~load_ff:!load in
          let rel =
            List.map
              (fun s ->
                let dist = Geom.manhattan here s.at in
                (s.ff, d_buf +. wire_delay dist (Netlist.cell nl s.ff).Cell.input_cap))
              group
          in
          (in_net, here, rel)
        | Branch children ->
          let built = List.map build children in
          let pts = List.map (fun (_, p, _) -> p) built in
          let here = Geom.center (Geom.bbox_of_points pts) in
          let in_net = Netlist.fresh_net nl "clk" in
          let out_net = Netlist.fresh_net nl "clk" in
          Netlist.mark_clock nl in_net;
          Netlist.mark_clock nl out_net;
          let name = Netlist.fresh_inst_name nl "ctsbuf" in
          let buf = Netlist.add_inst nl ~name buf_cell [ ("A", in_net); ("Z", out_net) ] in
          Placement.place_inst place buf here;
          buffers := buf :: !buffers;
          area := !area +. buf_cell.Cell.area;
          let load = ref 0.0 in
          List.iter
            (fun (child_in, child_at, _) ->
              (* child subtree hangs from this buffer's output *)
              (match Netlist.sinks nl child_in with
              | [ pin ] -> Netlist.move_sink nl ~from_net:child_in pin ~to_net:out_net
              | _ -> ());
              load := !load +. buf_cell.Cell.input_cap;
              load := !load +. (Geom.manhattan here child_at *. tech.Tech.wire_c_per_um))
            built;
          let d_buf = Cell.delay buf_cell ~load_ff:!load in
          let rel =
            List.concat_map
              (fun (_, child_at, child_rel) ->
                let hop = d_buf +. wire_delay (Geom.manhattan here child_at) buf_cell.Cell.input_cap in
                List.map (fun (ff, l) -> (ff, l +. hop)) child_rel)
              built
          in
          (in_net, here, rel)
      in
      let root_in, _root_at, rel = build tree in
      (* Hang the root buffer from the clock port net. *)
      (match Netlist.sinks nl root_in with
      | [ pin ] -> Netlist.move_sink nl ~from_net:root_in pin ~to_net:clock_root
      | _ -> ());
      List.iter (fun (ff, l) -> Hashtbl.replace lat ff l) rel;
      let rec depth = function
        | Leaf _ -> 1
        | Branch children -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 children
      in
      { buffers = !buffers; levels = depth tree; lat; buffer_area = !area }
    end
