(** Crosstalk exposure of long wires.

    The paper constrains VGND line length because "a long VGND line tends
    to suffer from the crosstalk".  We model coupling exposure as the
    fraction of a wire's length running parallel to aggressors at minimum
    pitch — monotone in length — and declare a wire safe when it stays
    under the technology's [vgnd_length_limit]. *)

val coupling_fraction : length:float -> float
(** In [0, 1); grows with length, ~0.5 at 200um. *)

val noise_mv : Smt_cell.Tech.t -> length:float -> float
(** Peak coupled noise in millivolts for a victim of the given length. *)

val vgnd_ok : Smt_cell.Tech.t -> length:float -> bool
(** The clustering constraint: VGND line length within the limit. *)
