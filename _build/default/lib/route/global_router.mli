(** Congestion-aware global routing.

    The die is tiled into gcells; every net is decomposed into two-pin
    connections along its rectilinear spanning tree, and each connection is
    routed with the less congested of its two L-shapes, updating edge usage
    as it commits.  The result reports per-edge overflow and gives each
    net's routed length — a sharper source for RC extraction than the
    spanning-length-times-detour estimate, and the basis for a measured
    (rather than assumed) routing detour factor. *)

type result

val route : ?gcell:float -> ?capacity:int -> Smt_place.Placement.t -> result
(** [gcell] is the tile edge in um (default 10.); [capacity] the number of
    tracks per gcell edge per direction (default 24). *)

val routed_nets : result -> int
val total_length : result -> float
val overflow : result -> int
(** Number of gcell edges whose usage exceeds capacity. *)

val max_congestion : result -> float
(** Worst usage/capacity ratio over all edges (0 on an empty design). *)

val net_length : result -> Smt_netlist.Netlist.net_id -> float
(** Routed wirelength of the net, um; 0 for unrouted/degenerate nets. *)

val detour_factor : result -> Smt_place.Placement.t -> float
(** Measured total routed length over total HPWL (>= ~1); the number the
    flow otherwise assumes as [options.detour]. 1.0 on empty designs. *)

val to_parasitics : result -> Smt_place.Placement.t -> Parasitics.t
(** Extraction corner priced at the actual routed lengths. *)

val congested_length : result -> Smt_util.Geom.point list -> float
(** Effective routed length of a tree over the given points on the final
    congestion map: each gcell edge costs its physical length times
    [1 + usage/capacity], so wires through hotspots price longer — the
    measured replacement for the flow's assumed VGND detour factor.
    At least the plain rectilinear spanning length. *)
