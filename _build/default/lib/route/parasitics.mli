(** Per-net parasitics: placement-based estimation vs post-route extraction.

    The paper's flow constructs the switch structure {e before} routing from
    RC estimated off the placement, notes that "there is an error when
    compared with the precise RC information which is generated after
    routing", and re-optimizes afterwards from SPEF.  This module provides
    both corners:

    - [estimate] prices every net at its bounding-box half-perimeter with a
      deterministic pseudo-random error of up to the technology's
      [rc_estimation_error] (optimistic or pessimistic per net);
    - [extract] prices every net at its routed length — a rectilinear
      spanning tree over the pins times a congestion detour factor — which
      plays the role of the signed-off extraction.

    Either corner converts to an STA wire model (Elmore) and serializes to
    a SPEF-like text form. *)

type corner = Estimated | Extracted

type t

val corner : t -> corner

val estimate : ?seed:int -> Smt_place.Placement.t -> t
(** Pre-route RC from the placement, with estimation error applied. *)

val extract : ?detour:float -> Smt_place.Placement.t -> t
(** Post-route RC; [detour] (default 1.15) scales spanning-tree length to
    account for congestion-driven routing detours. *)

val of_lengths : Smt_cell.Tech.t -> corner -> float array -> t
(** Price explicit per-net lengths (indexed by net id) at the technology's
    unit RC — the constructor the global router uses. *)

val net_length : t -> Smt_netlist.Netlist.net_id -> float
(** Routed/estimated wirelength, um; 0 for unknown nets. *)

val net_cap : t -> Smt_netlist.Netlist.net_id -> float
(** Wire capacitance, fF. *)

val net_res : t -> Smt_netlist.Netlist.net_id -> float
(** Wire resistance, ohm. *)

val total_wirelength : t -> float

val wire_model : t -> Smt_netlist.Netlist.t -> Smt_sta.Wire.t
(** STA wire model: net cap plus per-sink Elmore delay. *)

val to_spef : t -> Smt_netlist.Netlist.t -> string
(** SPEF-like dump ([*D_NET name cap], [*R res], [*L length]). *)

val of_spef : lib:Smt_cell.Library.t -> Smt_netlist.Netlist.t -> string -> t
(** Parse a dump produced by [to_spef] against the same netlist. Raises
    [Failure] on malformed input. *)
