module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Geom = Smt_util.Geom
module Rng = Smt_util.Rng
module Tech = Smt_cell.Tech
module Cell = Smt_cell.Cell
module Library = Smt_cell.Library
module Wire = Smt_sta.Wire

type corner = Estimated | Extracted

type net_rc = { length : float; cap : float; res : float }

type t = {
  which : corner;
  by_net : net_rc array;  (* indexed by net id *)
  tech : Tech.t;
}

let corner t = t.which

let slot t nid =
  if nid >= 0 && nid < Array.length t.by_net then Some t.by_net.(nid) else None

let net_length t nid = match slot t nid with Some rc -> rc.length | None -> 0.0
let net_cap t nid = match slot t nid with Some rc -> rc.cap | None -> 0.0
let net_res t nid = match slot t nid with Some rc -> rc.res | None -> 0.0

let total_wirelength t = Array.fold_left (fun acc rc -> acc +. rc.length) 0.0 t.by_net

let of_lengths tech which lengths =
  let price len =
    { length = len; cap = len *. tech.Tech.wire_c_per_um; res = len *. tech.Tech.wire_r_per_um }
  in
  { which; by_net = Array.map price lengths; tech }

let tech_of place = Library.tech (Netlist.lib (Placement.netlist place))

let estimate ?(seed = 1234) place =
  let nl = Placement.netlist place in
  let tech = tech_of place in
  let rng = Rng.create seed in
  let n = Netlist.net_count nl in
  let lengths =
    Array.init n (fun nid ->
        (* Deterministic per-net error: the estimator is optimistic on some
           nets and pessimistic on others. *)
        let err = Rng.float_in rng (-.tech.Tech.rc_estimation_error) tech.Tech.rc_estimation_error in
        Placement.net_hpwl place nid *. (1.0 +. err))
  in
  of_lengths tech Estimated lengths

let extract ?(detour = 1.15) place =
  let nl = Placement.netlist place in
  let tech = tech_of place in
  let n = Netlist.net_count nl in
  let lengths =
    Array.init n (fun nid ->
        let pts = Placement.pin_points place nid in
        Geom.spanning_length pts *. detour)
  in
  of_lengths tech Extracted lengths

(* ohm * fF = 1e-3 ps *)
let rc_ps r_ohm c_ff = r_ohm *. c_ff *. 1e-3

let wire_model t nl =
  let net_cap nid = net_cap t nid in
  let net_delay nid (pin : Netlist.pin) =
    let r = net_res t nid and c = net_cap nid in
    let sink_cap = (Netlist.cell nl pin.Netlist.inst).Cell.input_cap in
    (* Elmore with the lumped-T approximation: the sink sees half the wire
       capacitance through the full wire resistance plus its own pin cap. *)
    rc_ps r ((0.5 *. c) +. sink_cap)
  in
  { Wire.net_cap; Wire.net_delay }

let to_spef t nl =
  let b = Buffer.create 4096 in
  Buffer.add_string b "*SPEF \"selective-mt subset\"\n";
  Buffer.add_string b (Printf.sprintf "*DESIGN %s\n" (Netlist.design_name nl));
  Buffer.add_string b
    (Printf.sprintf "*CORNER %s\n"
       (match t.which with Estimated -> "estimated" | Extracted -> "extracted"));
  Array.iteri
    (fun nid rc ->
      if rc.length > 0.0 then begin
        Buffer.add_string b
          (Printf.sprintf "*D_NET %s %.4f\n" (Netlist.net_name nl nid) rc.cap);
        Buffer.add_string b (Printf.sprintf "*R %.4f\n" rc.res);
        Buffer.add_string b (Printf.sprintf "*L %.4f\n" rc.length);
        Buffer.add_string b "*END\n"
      end)
    t.by_net;
  Buffer.contents b

let of_spef ~lib nl text =
  let tech = Library.tech lib in
  let by_net = Array.make (Netlist.net_count nl) { length = 0.0; cap = 0.0; res = 0.0 } in
  let which = ref Extracted in
  let current = ref None in
  let lines = String.split_on_char '\n' text in
  let parse_float s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> failwith (Printf.sprintf "Parasitics.of_spef: bad number %S" s)
  in
  List.iter
    (fun line ->
      let words = String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") in
      match words with
      | [ "*CORNER"; "estimated" ] -> which := Estimated
      | [ "*CORNER"; "extracted" ] -> which := Extracted
      | [ "*D_NET"; name; cap ] -> (
        match Netlist.find_net nl name with
        | Some nid ->
          current := Some nid;
          by_net.(nid) <- { (by_net.(nid)) with cap = parse_float cap }
        | None -> failwith (Printf.sprintf "Parasitics.of_spef: unknown net %s" name))
      | [ "*R"; res ] -> (
        match !current with
        | Some nid -> by_net.(nid) <- { (by_net.(nid)) with res = parse_float res }
        | None -> failwith "Parasitics.of_spef: *R outside *D_NET")
      | [ "*L"; len ] -> (
        match !current with
        | Some nid -> by_net.(nid) <- { (by_net.(nid)) with length = parse_float len }
        | None -> failwith "Parasitics.of_spef: *L outside *D_NET")
      | [ "*END" ] -> current := None
      | _ -> ())
    lines;
  { which = !which; by_net; tech }
