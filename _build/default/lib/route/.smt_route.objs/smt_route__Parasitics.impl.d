lib/route/parasitics.ml: Array Buffer List Printf Smt_cell Smt_netlist Smt_place Smt_sta Smt_util String
