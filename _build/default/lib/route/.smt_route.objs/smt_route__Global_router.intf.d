lib/route/global_router.mli: Parasitics Smt_netlist Smt_place Smt_util
