lib/route/crosstalk.mli: Smt_cell
