lib/route/crosstalk.ml: Float Smt_cell
