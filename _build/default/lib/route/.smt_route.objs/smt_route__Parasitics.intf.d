lib/route/parasitics.mli: Smt_cell Smt_netlist Smt_place Smt_sta
