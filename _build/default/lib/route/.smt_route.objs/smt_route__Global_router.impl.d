lib/route/global_router.ml: Array Float List Parasitics Smt_cell Smt_netlist Smt_place Smt_util
