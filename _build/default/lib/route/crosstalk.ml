module Tech = Smt_cell.Tech

(* Saturating exposure: length/(length+200). *)
let coupling_fraction ~length =
  let length = Float.max 0.0 length in
  length /. (length +. 200.0)

let noise_mv tech ~length =
  (* Noise scales with coupled charge ratio times the supply. *)
  coupling_fraction ~length *. tech.Tech.vdd *. 1000.0 *. 0.25

let vgnd_ok tech ~length = length <= tech.Tech.vgnd_length_limit
