module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Geom = Smt_util.Geom
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library

type grid = {
  cols : int;
  rows : int;
  gcell : float;
  origin_x : float;
  origin_y : float;
  (* usage of the edge between (c,r) and (c+1,r): index r*(cols-1)+c *)
  h_usage : int array;
  (* usage of the edge between (c,r) and (c,r+1): index c*(rows-1)+r *)
  v_usage : int array;
  capacity : int;
}

type result = {
  grid : grid;
  lengths : float array;  (* per net id *)
  routed : int;
}

let gcell_of grid (p : Geom.point) =
  let c = int_of_float ((p.Geom.x -. grid.origin_x) /. grid.gcell) in
  let r = int_of_float ((p.Geom.y -. grid.origin_y) /. grid.gcell) in
  (max 0 (min (grid.cols - 1) c), max 0 (min (grid.rows - 1) r))

let h_index grid c r = (r * (grid.cols - 1)) + c
let v_index grid c r = (c * (grid.rows - 1)) + r

(* Cost and commitment of a straight run of gcell edges. *)
let run_cost grid ~horizontal ~fixed ~from_ ~to_ =
  let lo = min from_ to_ and hi = max from_ to_ in
  let cost = ref 0 in
  for i = lo to hi - 1 do
    let u =
      if horizontal then grid.h_usage.(h_index grid i fixed)
      else grid.v_usage.(v_index grid fixed i)
    in
    (* congestion-aware: crossing a full edge costs quadratically more *)
    cost := !cost + 1 + (u * u / (grid.capacity * grid.capacity)) + (u / grid.capacity * 4)
  done;
  !cost

let commit_run grid ~horizontal ~fixed ~from_ ~to_ =
  let lo = min from_ to_ and hi = max from_ to_ in
  for i = lo to hi - 1 do
    if horizontal then begin
      let idx = h_index grid i fixed in
      grid.h_usage.(idx) <- grid.h_usage.(idx) + 1
    end
    else begin
      let idx = v_index grid fixed i in
      grid.v_usage.(idx) <- grid.v_usage.(idx) + 1
    end
  done

(* Route one 2-pin connection with the cheaper L-shape; returns gcell
   segment count. *)
let route_two_pin grid (c1, r1) (c2, r2) =
  if c1 = c2 && r1 = r2 then 0
  else begin
    (* L via (c2, r1) : horizontal first *)
    let cost_a =
      run_cost grid ~horizontal:true ~fixed:r1 ~from_:c1 ~to_:c2
      + run_cost grid ~horizontal:false ~fixed:c2 ~from_:r1 ~to_:r2
    in
    (* L via (c1, r2) : vertical first *)
    let cost_b =
      run_cost grid ~horizontal:false ~fixed:c1 ~from_:r1 ~to_:r2
      + run_cost grid ~horizontal:true ~fixed:r2 ~from_:c1 ~to_:c2
    in
    if cost_a <= cost_b then begin
      commit_run grid ~horizontal:true ~fixed:r1 ~from_:c1 ~to_:c2;
      commit_run grid ~horizontal:false ~fixed:c2 ~from_:r1 ~to_:r2
    end
    else begin
      commit_run grid ~horizontal:false ~fixed:c1 ~from_:r1 ~to_:r2;
      commit_run grid ~horizontal:true ~fixed:r2 ~from_:c1 ~to_:c2
    end;
    abs (c2 - c1) + abs (r2 - r1)
  end

(* Spanning-tree decomposition of the net's pins into 2-pin connections
   (Prim order on Manhattan distance). *)
let two_pin_pairs pts =
  match pts with
  | [] | [ _ ] -> []
  | first :: _ ->
    let pts = Array.of_list pts in
    let n = Array.length pts in
    let in_tree = Array.make n false in
    let dist = Array.make n infinity in
    let parent = Array.make n 0 in
    in_tree.(0) <- true;
    ignore first;
    for j = 1 to n - 1 do
      dist.(j) <- Geom.manhattan pts.(0) pts.(j)
    done;
    let pairs = ref [] in
    for _ = 1 to n - 1 do
      let best = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!best = -1 || dist.(j) < dist.(!best)) then best := j
      done;
      let b = !best in
      in_tree.(b) <- true;
      pairs := (pts.(parent.(b)), pts.(b)) :: !pairs;
      for j = 0 to n - 1 do
        if not in_tree.(j) then begin
          let d = Geom.manhattan pts.(b) pts.(j) in
          if d < dist.(j) then begin
            dist.(j) <- d;
            parent.(j) <- b
          end
        end
      done
    done;
    List.rev !pairs

let route ?(gcell = 10.0) ?(capacity = 24) place =
  let nl = Placement.netlist place in
  let die = Placement.die place in
  let cols = max 2 (int_of_float (ceil (Geom.width die /. gcell))) in
  let rows = max 2 (int_of_float (ceil (Geom.height die /. gcell))) in
  let grid =
    {
      cols;
      rows;
      gcell;
      origin_x = die.Geom.lx;
      origin_y = die.Geom.ly;
      h_usage = Array.make (rows * (cols - 1)) 0;
      v_usage = Array.make (cols * (rows - 1)) 0;
      capacity;
    }
  in
  let lengths = Array.make (Netlist.net_count nl) 0.0 in
  (* order: small nets first so big nets detour around them *)
  let nets = ref [] in
  Netlist.iter_nets nl (fun nid ->
      let pts = Placement.pin_points place nid in
      if List.length pts >= 2 then begin
        let box = Geom.bbox_of_points pts in
        nets := (nid, Geom.hpwl box, pts) :: !nets
      end);
  let ordered = List.sort (fun (_, a, _) (_, b, _) -> compare a b) !nets in
  let routed = ref 0 in
  List.iter
    (fun (nid, _, pts) ->
      let segments = ref 0 in
      List.iter
        (fun (a, b) ->
          segments := !segments + route_two_pin grid (gcell_of grid a) (gcell_of grid b))
        (two_pin_pairs pts);
      (* a same-gcell net still has local wiring of roughly its HPWL *)
      let local = if !segments = 0 then Geom.hpwl (Geom.bbox_of_points pts) else 0.0 in
      lengths.(nid) <- (float_of_int !segments *. gcell) +. local;
      incr routed)
    ordered;
  { grid; lengths; routed = !routed }

let routed_nets t = t.routed
let total_length t = Array.fold_left ( +. ) 0.0 t.lengths

let overflow t =
  let count usage =
    Array.fold_left (fun acc u -> if u > t.grid.capacity then acc + 1 else acc) 0 usage
  in
  count t.grid.h_usage + count t.grid.v_usage

let max_congestion t =
  let worst usage = Array.fold_left max 0 usage in
  float_of_int (max (worst t.grid.h_usage) (worst t.grid.v_usage))
  /. float_of_int t.grid.capacity

let net_length t nid = if nid < Array.length t.lengths then t.lengths.(nid) else 0.0

let detour_factor t place =
  let nl = Placement.netlist place in
  let hpwl = ref 0.0 and routed = ref 0.0 in
  Netlist.iter_nets nl (fun nid ->
      let h = Placement.net_hpwl place nid in
      if h > 0.0 && net_length t nid > 0.0 then begin
        hpwl := !hpwl +. h;
        routed := !routed +. net_length t nid
      end);
  if !hpwl = 0.0 then 1.0 else Float.max 1.0 (!routed /. !hpwl)

let to_parasitics t place =
  let nl = Placement.netlist place in
  let tech = Library.tech (Netlist.lib nl) in
  Parasitics.of_lengths tech Parasitics.Extracted
    (Array.init (Netlist.net_count nl) (fun nid -> net_length t nid))

(* Effective (congestion-weighted) length of one straight run. *)
let run_weighted_length t ~horizontal ~fixed ~from_ ~to_ =
  let grid = t.grid in
  let lo = min from_ to_ and hi = max from_ to_ in
  let total = ref 0.0 in
  for i = lo to hi - 1 do
    let u =
      if horizontal then grid.h_usage.(h_index grid i fixed)
      else grid.v_usage.(v_index grid fixed i)
    in
    total :=
      !total +. (grid.gcell *. (1.0 +. (float_of_int u /. float_of_int grid.capacity)))
  done;
  !total

let congested_length t pts =
  let grid = t.grid in
  let edge a b =
    let c1, r1 = gcell_of grid a and c2, r2 = gcell_of grid b in
    if c1 = c2 && r1 = r2 then Geom.manhattan a b
    else begin
      let via_a =
        run_weighted_length t ~horizontal:true ~fixed:r1 ~from_:c1 ~to_:c2
        +. run_weighted_length t ~horizontal:false ~fixed:c2 ~from_:r1 ~to_:r2
      in
      let via_b =
        run_weighted_length t ~horizontal:false ~fixed:c1 ~from_:r1 ~to_:r2
        +. run_weighted_length t ~horizontal:true ~fixed:r2 ~from_:c1 ~to_:c2
      in
      Float.min via_a via_b
    end
  in
  let weighted =
    List.fold_left (fun acc (a, b) -> acc +. edge a b) 0.0 (two_pin_pairs pts)
  in
  Float.max weighted (Geom.spanning_length pts)
