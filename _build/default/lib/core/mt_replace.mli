(** Replacement of the surviving low-Vth cells by MT-cells.

    After Dual-Vth assignment, the cells still at low-Vth are the critical
    ones.  The conventional Selective-MT flow replaces them with embedded
    MT-cells (own switch and holder, Fig. 1a); the improved flow replaces
    them with MT-cells {e without VGND ports} (the paper's intermediate
    cell: same timing, no switch yet), to be given ports and shared
    switches at insertion time. *)

type style = Conventional | Improved

val replace : style -> Smt_netlist.Netlist.t -> int
(** Swap every plain low-Vth combinational cell to its MT variant; returns
    the number replaced. Flip-flops and infrastructure cells are left
    alone (state-holding cells stay on the true rails). *)

val replace_all : style -> Smt_netlist.Netlist.t -> int
(** The all-MT strawman: convert {e every} plain combinational cell,
    high-Vth included, to the MT variant. Used as a comparison point —
    it minimizes logic leakage but gates logic that had no leakage problem,
    paying area, holders, and wake-up cost for it. *)

val mt_cells : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.inst_id list
(** Live MT-cells of any style. *)
