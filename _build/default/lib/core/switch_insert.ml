module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Check = Smt_netlist.Check
module Geom = Smt_util.Geom

type result = {
  initial_switch : Netlist.inst_id;
  holders_inserted : int;
  holders_avoided : int;
  mte_net : Netlist.net_id;
}

let mte_net_of nl =
  match Netlist.find_net nl "MTE" with
  | Some nid -> nid
  | None -> Netlist.add_input nl "MTE"

let insert ?(minimize_holders = true) ?(initial_width = 10.0) place =
  let nl = Placement.netlist place in
  let lib = Netlist.lib nl in
  let pending =
    List.filter
      (fun iid -> (Netlist.cell nl iid).Cell.style = Vth.Mt_no_vgnd)
      (Netlist.live_insts nl)
  in
  if pending = [] then
    invalid_arg "Switch_insert.insert: no MT-cells awaiting VGND ports";
  let mte = mte_net_of nl in
  (* Give every MT-cell its VGND port. *)
  List.iter
    (fun iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid (Library.variant ~drive:c.Cell.drive lib c.Cell.kind Vth.Low Vth.Mt_vgnd))
    pending;
  (* One switch for the whole block: the paper's initial structure. *)
  let sw_cell = Library.switch lib ~width:initial_width in
  let sw_name = Netlist.fresh_inst_name nl "sw" in
  let sw = Netlist.add_inst nl ~name:sw_name sw_cell [ ("MTE", mte) ] in
  Placement.place_inst place sw (Placement.centroid place pending);
  List.iter (fun iid -> Netlist.set_vgnd_switch nl iid (Some sw)) pending;
  (* Output holders where the held value leaves the MT domain. *)
  let holder_cell = Library.holder lib in
  let inserted = ref 0 and avoided = ref 0 in
  Netlist.iter_nets nl (fun nid ->
      match Netlist.driver nl nid with
      | Some d when Cell.is_mt (Netlist.cell nl d.Netlist.inst) ->
        let needed = Check.holder_required nl nid in
        if needed || not minimize_holders then begin
          let name = Netlist.fresh_inst_name nl "holder" in
          let h = Netlist.add_inst nl ~name holder_cell [ ("MTE", mte); ("Z", nid) ] in
          (match Placement.inst_point_opt place d.Netlist.inst with
          | Some p -> Placement.place_inst place h p
          | None -> Placement.place_inst place h (Geom.center (Placement.die place)));
          incr inserted
        end
        else incr avoided
      | Some _ | None -> ());
  { initial_switch = sw; holders_inserted = !inserted; holders_avoided = !avoided; mte_net = mte }

let mte_sinks nl mte = Netlist.sinks nl mte
