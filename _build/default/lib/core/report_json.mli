(** Machine-readable (JSON) serialization of flow reports.

    For dashboards and regression tracking: one object per flow report
    (including per-stage metrics and the leakage breakdown), or a Table-1
    comparison as an array of rows.  Hand-rolled emitter, no dependencies;
    output is valid JSON. *)

val of_report : Flow.report -> string

val of_rows : Compare.row list -> string
(** The Table-1 comparison as JSON. *)
