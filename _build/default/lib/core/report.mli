(** Human-readable sign-off reports (timing, power, area).

    The text formats follow the conventions of commercial sign-off tools:
    a timing report lists the worst endpoints with a per-stage breakdown of
    the worst path into each; the power report splits standby leakage by
    contributor; the area report splits by cell category and names the
    heaviest cell kinds. *)

val timing : ?paths:int -> Smt_sta.Sta.t -> string
(** Worst [paths] endpoints (default 3), each with its launch-to-capture
    path: per-stage instance, cell, incremental delay and arrival. *)

val power : Smt_netlist.Netlist.t -> string
(** Standby leakage breakdown, with each contributor's share. *)

val area : Smt_netlist.Netlist.t -> string
(** Area by category plus the top cell kinds by total area. *)

val summary : Smt_sta.Sta.t -> string
(** One-paragraph health check: WNS/TNS/hold, endpoint count. *)
