module Text_table = Smt_util.Text_table

type entry = {
  technique : Flow.technique;
  report : Flow.report;
  area_pct : float;
  leakage_pct : float;
}

type row = {
  circuit : string;
  entries : entry list;
}

let table1_row ?options fresh =
  let reports = Flow.run_all ?options fresh in
  match reports with
  | [ dual; _; _ ] ->
    let base_area = dual.Flow.area and base_leak = dual.Flow.standby_nw in
    let entries =
      List.map
        (fun (r : Flow.report) ->
          {
            technique = r.Flow.technique;
            report = r;
            area_pct = 100.0 *. r.Flow.area /. base_area;
            leakage_pct = 100.0 *. r.Flow.standby_nw /. base_leak;
          })
        reports
    in
    { circuit = dual.Flow.circuit; entries }
  | _ -> assert false

let find row technique =
  List.find (fun e -> e.technique = technique) row.entries

let improvement row =
  let con = find row Flow.Conventional_smt and imp = find row Flow.Improved_smt in
  ( 1.0 -. (imp.report.Flow.area /. con.report.Flow.area),
    1.0 -. (imp.report.Flow.standby_nw /. con.report.Flow.standby_nw) )

let render rows =
  let header = [ "Circuit"; "Area/Leakage"; "Dual-Vth"; "Con.-SMT"; "Imp.-SMT" ] in
  let body =
    List.concat_map
      (fun row ->
        let pct f = Text_table.pct (f row) in
        let area t = (find row t).area_pct and leak t = (find row t).leakage_pct in
        [
          [
            row.circuit; "Area";
            pct (fun _ -> area Flow.Dual_vth);
            pct (fun _ -> area Flow.Conventional_smt);
            pct (fun _ -> area Flow.Improved_smt);
          ];
          [
            ""; "Leakage";
            pct (fun _ -> leak Flow.Dual_vth);
            pct (fun _ -> leak Flow.Conventional_smt);
            pct (fun _ -> leak Flow.Improved_smt);
          ];
        ])
      rows
  in
  Text_table.render
    ~aligns:[ Text_table.Left; Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right ]
    ~header body

let render_details rows =
  let header =
    [
      "Circuit"; "Technique"; "Area um^2"; "Standby nW"; "MT cells"; "MT frac";
      "Switches"; "Holders"; "MTE buf"; "WNS ps"; "Hold ps"; "Bounce V";
    ]
  in
  let body =
    List.concat_map
      (fun row ->
        List.map
          (fun e ->
            let r = e.report in
            [
              row.circuit;
              Flow.technique_name e.technique;
              Text_table.f2 r.Flow.area;
              Text_table.f2 r.Flow.standby_nw;
              string_of_int r.Flow.n_mt_cells;
              Text_table.f2 r.Flow.mt_area_fraction;
              string_of_int r.Flow.n_switches;
              string_of_int r.Flow.n_holders;
              string_of_int r.Flow.n_mte_buffers;
              Text_table.f2 r.Flow.wns;
              Text_table.f2 r.Flow.hold_slack;
              Printf.sprintf "%.4f" r.Flow.worst_bounce;
            ])
          row.entries)
      rows
  in
  Text_table.render ~header body
