module Netlist = Smt_netlist.Netlist
module Sta = Smt_sta.Sta
module Corner = Smt_cell.Corner
module Tech = Smt_cell.Tech
module Leakage = Smt_power.Leakage
module Library = Smt_cell.Library
module Text_table = Smt_util.Text_table

type entry = {
  corner : Corner.t;
  wns_ps : float;
  timing_met : bool;
  standby_nw : float;
}

type summary = {
  entries : entry list;
  all_met : bool;
  worst_timing : entry;
  worst_leakage : entry;
}

let default_corners tech =
  [
    Corner.make ~process:Corner.Slow ~temperature_c:125.0 tech;
    Corner.make ~process:Corner.Slow ~temperature_c:(-40.0) tech;
    Corner.typical tech;
    Corner.make ~process:Corner.Fast ~temperature_c:125.0 tech;
  ]

let run ?corners cfg nl =
  let tech = Library.tech (Netlist.lib nl) in
  let corners = match corners with Some l -> l | None -> default_corners tech in
  if corners = [] then invalid_arg "Signoff.run: no corners";
  let sta = Sta.analyze cfg nl in
  let wns = Sta.wns sta in
  let period = cfg.Sta.clock_period in
  let base_leak = (Leakage.standby nl).Leakage.total in
  let entries =
    List.map
      (fun corner ->
        (* first-order derate: the whole launch-to-capture path (setup
           included) scales with the corner's delay factor *)
        let k = Corner.delay_factor tech corner in
        let wns_c = period -. (k *. (period -. wns)) in
        {
          corner;
          wns_ps = wns_c;
          timing_met = wns_c >= 0.0;
          standby_nw = base_leak *. Corner.leakage_factor tech corner;
        })
      corners
  in
  let worst_by f =
    match entries with
    | e :: rest -> List.fold_left (fun best x -> if f x < f best then x else best) e rest
    | [] -> assert false
  in
  {
    entries;
    all_met = List.for_all (fun e -> e.timing_met) entries;
    worst_timing = worst_by (fun e -> e.wns_ps);
    worst_leakage = worst_by (fun e -> -.e.standby_nw);
  }

let render s =
  let rows =
    List.map
      (fun e ->
        [
          Format.asprintf "%a" Corner.pp e.corner;
          Printf.sprintf "%.1f" e.wns_ps;
          (if e.timing_met then "met" else "VIOLATED");
          Printf.sprintf "%.1f" e.standby_nw;
        ])
      s.entries
  in
  Printf.sprintf "%s\nworst timing at %s, worst leakage at %s%s"
    (Text_table.render ~header:[ "Corner"; "WNS ps"; "Timing"; "Standby nW" ] rows)
    (Format.asprintf "%a" Corner.pp s.worst_timing.corner)
    (Format.asprintf "%a" Corner.pp s.worst_leakage.corner)
    (if s.all_met then "" else " — NOT CLEAN")
