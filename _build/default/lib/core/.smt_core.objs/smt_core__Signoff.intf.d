lib/core/signoff.mli: Smt_cell Smt_netlist Smt_sta
