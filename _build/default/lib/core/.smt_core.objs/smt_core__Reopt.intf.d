lib/core/reopt.mli: Cluster Smt_netlist Smt_place Smt_sim
