lib/core/switch_insert.mli: Smt_netlist Smt_place
