lib/core/cluster.mli: Smt_cell Smt_netlist Smt_place Smt_sim
