lib/core/signoff.ml: Format List Printf Smt_cell Smt_netlist Smt_power Smt_sta Smt_util
