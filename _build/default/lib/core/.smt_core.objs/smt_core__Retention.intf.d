lib/core/retention.mli: Smt_netlist Smt_sta
