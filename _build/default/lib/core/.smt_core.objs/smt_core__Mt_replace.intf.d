lib/core/mt_replace.mli: Smt_netlist
