lib/core/eco.ml: Gate_sizing List Smt_cell Smt_netlist Smt_place Smt_sta
