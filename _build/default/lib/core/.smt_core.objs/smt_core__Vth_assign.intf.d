lib/core/vth_assign.mli: Smt_netlist Smt_sta
