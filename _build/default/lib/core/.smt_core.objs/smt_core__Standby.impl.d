lib/core/standby.ml: Float List Smt_cell Smt_netlist Smt_sim Smt_sta Smt_util String
