lib/core/cluster.ml: Hashtbl List Printf Smt_cell Smt_netlist Smt_place Smt_power Smt_util
