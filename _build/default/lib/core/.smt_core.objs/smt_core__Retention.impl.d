lib/core/retention.ml: Float List Smt_cell Smt_netlist Smt_sta
