lib/core/eco.mli: Smt_netlist Smt_place Smt_sta
