lib/core/compare.ml: Flow List Printf Smt_util
