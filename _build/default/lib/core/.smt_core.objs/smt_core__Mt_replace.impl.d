lib/core/mt_replace.ml: List Smt_cell Smt_netlist
