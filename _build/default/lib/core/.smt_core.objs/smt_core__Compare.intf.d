lib/core/compare.mli: Flow Smt_netlist
