lib/core/vth_assign.ml: Hashtbl List Smt_cell Smt_netlist Smt_sta
