lib/core/gate_sizing.ml: Hashtbl List Smt_cell Smt_netlist Smt_sta
