lib/core/report_json.ml: Buffer Char Compare Float Flow List Printf Smt_power String
