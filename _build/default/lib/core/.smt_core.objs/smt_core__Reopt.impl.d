lib/core/reopt.ml: Cluster Float List Smt_cell Smt_netlist Smt_place Smt_power
