lib/core/domains.ml: Array Cluster List Printf Smt_cell Smt_netlist Smt_place Smt_util
