lib/core/mte.ml: Hashtbl List Smt_cell Smt_netlist Smt_place Smt_util String
