lib/core/flow.mli: Cluster Format Smt_netlist Smt_power
