lib/core/standby.mli: Smt_netlist Smt_sta
