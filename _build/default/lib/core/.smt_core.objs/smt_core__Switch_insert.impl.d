lib/core/switch_insert.ml: List Smt_cell Smt_netlist Smt_place Smt_util
