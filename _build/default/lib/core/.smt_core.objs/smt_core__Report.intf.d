lib/core/report.mli: Smt_netlist Smt_sta
