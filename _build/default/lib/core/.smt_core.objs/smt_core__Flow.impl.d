lib/core/flow.ml: Cluster Eco Format Gate_sizing List Mt_replace Mte Reopt Retention Smt_cell Smt_cts Smt_netlist Smt_place Smt_power Smt_route Smt_sim Smt_sta Switch_insert Vth_assign
