lib/core/report.ml: Buffer Hashtbl List Printf Smt_cell Smt_netlist Smt_power Smt_sta Smt_util
