lib/core/mte.mli: Smt_netlist Smt_place
