lib/core/domains.mli: Cluster Smt_netlist Smt_place Smt_sim
