lib/core/gate_sizing.mli: Smt_netlist Smt_sta
