lib/core/report_json.mli: Compare Flow
