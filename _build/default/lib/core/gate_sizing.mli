(** Drive-strength assignment.

    The paper's Dual-Vth baseline descends from "Power Minimization by
    Simultaneous Dual-Vth Assignment and Gate-sizing" (Wei et al., CICC
    2000): cell sizing is the second knob next to threshold choice.  This
    module provides both directions over the library's X1/X2/X4 variants:

    - [upsize_critical] strengthens cells on failing paths until timing is
      met (or no move helps), accounting for the input-capacitance penalty
      an upsized cell inflicts on its drivers;
    - [downsize_idle] weakens cells whose slack covers the slowdown,
      recovering area and leakage exactly like the high-Vth swap does —
      batch application with rollback, so timing never ends up violated.

    Both mutate the netlist and return a consistent final STA. *)

type result = {
  resized : int;
  passes : int;
  sta : Smt_sta.Sta.t;
}

val upsize_critical :
  ?max_passes:int -> Smt_sta.Sta.config -> Smt_netlist.Netlist.t -> result

val downsize_idle :
  ?max_passes:int -> ?safety:float -> Smt_sta.Sta.config -> Smt_netlist.Netlist.t -> result

val sizable : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.inst_id -> bool
(** Whether the instance's cell exists in another drive strength. *)
