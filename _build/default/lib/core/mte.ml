module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library
module Geom = Smt_util.Geom

type result = {
  buffers : int;
  area : float;
  levels : int;
  root_fanout : int;
}

type sink = { pin : Netlist.pin; at : Geom.point }

let point_of place (pin : Netlist.pin) =
  match Placement.inst_point_opt place pin.Netlist.inst with
  | Some p -> p
  | None -> Geom.center (Placement.die place)

(* Split a sink set into geometric groups of at most [cap] members. *)
let rec group cap sinks =
  if List.length sinks <= cap then [ sinks ]
  else begin
    let box = Geom.bbox_of_points (List.map (fun s -> s.at) sinks) in
    let vertical = Geom.width box >= Geom.height box in
    let key s = if vertical then s.at.Geom.x else s.at.Geom.y in
    let sorted = List.sort (fun a b -> compare (key a) (key b)) sinks in
    let n = List.length sorted in
    let left = List.filteri (fun i _ -> i < n / 2) sorted in
    let right = List.filteri (fun i _ -> i >= n / 2) sorted in
    group cap left @ group cap right
  end

let buffer_tree ?max_fanout place ~mte_net =
  let nl = Placement.netlist place in
  let lib = Netlist.lib nl in
  let tech = Library.tech lib in
  let cap = match max_fanout with Some c -> c | None -> tech.Tech.mte_max_fanout in
  let buf_cell = Library.mte_buffer lib in
  let buffers = ref 0 and area = ref 0.0 and levels = ref 0 in
  let current =
    ref (List.map (fun pin -> { pin; at = point_of place pin }) (Netlist.sinks nl mte_net))
  in
  (* Bottom-up: while too many loads, replace each geometric group by one
     buffer whose input becomes a load of the next level. *)
  while List.length !current > cap do
    incr levels;
    let groups = group cap !current in
    current :=
      List.map
        (fun members ->
          let centroid =
            Geom.center (Geom.bbox_of_points (List.map (fun s -> s.at) members))
          in
          let out_net = Netlist.fresh_net nl "mte" in
          let in_stub = Netlist.fresh_net nl "mte" in
          let name = Netlist.fresh_inst_name nl "mtebuf" in
          let buf = Netlist.add_inst nl ~name buf_cell [ ("A", in_stub); ("Z", out_net) ] in
          Placement.place_inst place buf centroid;
          incr buffers;
          area := !area +. buf_cell.Cell.area;
          List.iter
            (fun s ->
              let from_net =
                match Netlist.pin_net nl s.pin.Netlist.inst s.pin.Netlist.pin_name with
                | Some nid -> nid
                | None -> mte_net
              in
              Netlist.move_sink nl ~from_net s.pin ~to_net:out_net)
            members;
          let pin = { Netlist.inst = buf; Netlist.pin_name = "A" } in
          { pin; at = centroid })
        groups
  done;
  (* Hook the surviving loads onto the MTE port net. *)
  List.iter
    (fun s ->
      let from_net =
        match Netlist.pin_net nl s.pin.Netlist.inst s.pin.Netlist.pin_name with
        | Some nid -> nid
        | None -> mte_net
      in
      if from_net <> mte_net then Netlist.move_sink nl ~from_net s.pin ~to_net:mte_net)
    !current;
  { buffers = !buffers; area = !area; levels = !levels; root_fanout = List.length !current }

let max_stage_fanout nl mte_net =
  let seen = Hashtbl.create 97 in
  let rec walk nid acc =
    if Hashtbl.mem seen nid then acc
    else begin
      Hashtbl.add seen nid ();
      let sinks = Netlist.sinks nl nid in
      let acc = max acc (List.length sinks) in
      List.fold_left
        (fun acc (p : Netlist.pin) ->
          let name = Netlist.inst_name nl p.Netlist.inst in
          let is_buf = String.length name >= 6 && String.sub name 0 6 = "mtebuf" in
          if is_buf then
            match Netlist.output_net nl p.Netlist.inst with
            | Some out -> walk out acc
            | None -> acc
          else acc)
        acc sinks
    end
  in
  walk mte_net 0
