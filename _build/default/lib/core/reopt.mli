(** Post-route re-optimization of the switch structure.

    Pre-route switch sizing worked from VGND lengths estimated off the
    placement; routed VGND lines are longer (detours), so some clusters
    bounce above the limit.  This pass re-prices every cluster's VGND line
    at its routed length and resizes each footer so the bounce constraint
    holds again — the paper's second CoolPower invocation, after SPEF
    extraction. *)

type adjustment = {
  switch : Smt_netlist.Netlist.inst_id;
  old_width : float;
  new_width : float;
  routed_length : float;
  bounce_before : float;
  bounce_after : float;
}

type result = {
  adjustments : adjustment list;  (** one per cluster, resized or not *)
  resized : int;
  violations_before : int;
  violations_after : int;
}

val reoptimize :
  ?activity:Smt_sim.Activity.t ->
  ?load_of:(Smt_netlist.Netlist.inst_id -> float) ->
  ?params:Cluster.params ->
  ?detour:float ->
  ?length_of:(Smt_netlist.Netlist.inst_id -> float) ->
  Smt_place.Placement.t ->
  result
(** [detour] (default 1.15) converts estimated VGND length to routed
    length; [length_of] overrides that with a measured routed length per
    switch (e.g. [Global_router.congested_length] over the cluster's
    points); [load_of] should report post-route (extracted) loads, which
    is where most of the re-sizing pressure comes from. Mutates switch
    cells in place. *)
