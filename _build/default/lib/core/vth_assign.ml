module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Sta = Smt_sta.Sta

type result = {
  swapped : int;
  passes : int;
  sta : Sta.t;
}

let low_vth_cells nl =
  List.filter
    (fun iid ->
      let c = Netlist.cell nl iid in
      c.Cell.style = Vth.Plain && c.Cell.vth = Vth.Low
      && not (Smt_cell.Func.is_infrastructure c.Cell.kind))
    (Netlist.live_insts nl)

(* Delay increase of swapping this one cell to high-Vth, at its current
   load. *)
let self_delta cfg nl iid hv =
  let lv = Netlist.cell nl iid in
  let load =
    match Netlist.output_net nl iid with
    | Some out -> Sta.load_of_net cfg nl out
    | None -> 0.0
  in
  Cell.delay hv ~load_ff:load -. Cell.delay lv ~load_ff:load

let assign ?(max_passes = 10) ?(safety = 1.5) cfg nl =
  let lib = Netlist.lib nl in
  let frozen = Hashtbl.create 97 in
  let swapped_total = ref 0 in
  let passes = ref 0 in
  let sta = ref (Sta.analyze cfg nl) in
  let keep_going = ref true in
  while !keep_going && !passes < max_passes do
    incr passes;
    let candidates =
      low_vth_cells nl
      |> List.filter (fun iid -> not (Hashtbl.mem frozen iid))
      |> List.filter_map (fun iid ->
             let c = Netlist.cell nl iid in
             if Library.has_variant ~drive:c.Cell.drive lib c.Cell.kind Vth.High Vth.Plain then begin
               let hv = Library.variant ~drive:c.Cell.drive lib c.Cell.kind Vth.High Vth.Plain in
               let slack = Sta.inst_slack !sta iid in
               let delta = self_delta cfg nl iid hv in
               if slack >= safety *. delta && slack > 0.0 then Some (iid, hv, slack) else None
             end
             else None)
      |> List.sort (fun (_, _, s1) (_, _, s2) -> compare s2 s1)
    in
    if candidates = [] then keep_going := false
    else begin
      List.iter (fun (iid, hv, _) -> Netlist.replace_cell nl iid hv) candidates;
      sta := Sta.update !sta ~changed:(List.map (fun (iid, _, _) -> iid) candidates);
      let this_pass = ref (List.length candidates) in
      (* Rollback: revert the tightest-slack swaps in chunks until timing
         is met again. Reverted cells are frozen so the loop terminates. *)
      let remaining = ref (List.rev candidates) (* ascending slack *) in
      while Sta.wns !sta < 0.0 && !remaining <> [] do
        let chunk_size = max 1 (List.length !remaining / 8) in
        let chunk = List.filteri (fun i _ -> i < chunk_size) !remaining in
        remaining := List.filteri (fun i _ -> i >= chunk_size) !remaining;
        List.iter
          (fun (iid, hv, _) ->
            let lv = Library.restyle lib hv Vth.Low Vth.Plain in
            Netlist.replace_cell nl iid lv;
            Hashtbl.replace frozen iid ();
            decr this_pass)
          chunk;
        sta := Sta.update !sta ~changed:(List.map (fun (iid, _, _) -> iid) chunk)
      done;
      swapped_total := !swapped_total + !this_pass;
      if !this_pass = 0 then keep_going := false
    end
  done;
  { swapped = !swapped_total; passes = !passes; sta = !sta }
