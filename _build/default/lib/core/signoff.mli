(** Multi-corner sign-off summary.

    Checks the finished design across PVT corners: timing is evaluated by
    scaling the typical-corner data-path delays with the corner's delay
    factor (a first-order derate, standard for a quick corner sweep), and
    standby leakage by the corner's exponential leakage factor.  The worst
    corner for each metric is flagged — timing signs off at slow/cold,
    leakage at fast/hot, which is why both ends matter. *)

type entry = {
  corner : Smt_cell.Corner.t;
  wns_ps : float;
  timing_met : bool;
  standby_nw : float;
}

type summary = {
  entries : entry list;
  all_met : bool;
  worst_timing : entry;
  worst_leakage : entry;
}

val default_corners : Smt_cell.Tech.t -> Smt_cell.Corner.t list
(** SS/125C, TT/25C, FF/125C, SS/-40C — the classic four. *)

val run :
  ?corners:Smt_cell.Corner.t list ->
  Smt_sta.Sta.config ->
  Smt_netlist.Netlist.t ->
  summary
(** Raises [Invalid_argument] on an empty corner list. *)

val render : summary -> string
