module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Library = Smt_cell.Library
module Sta = Smt_sta.Sta

type result = {
  converted : int;
  sta : Sta.t;
}

let retention_registers nl =
  List.filter
    (fun iid -> Library.is_retention (Netlist.cell nl iid))
    (Netlist.live_insts nl)

let convert ?(safety = 1.5) cfg nl =
  let lib = Netlist.lib nl in
  let ret = Library.retention_dff lib in
  let sta = ref (Sta.analyze cfg nl) in
  let converted = ref 0 in
  let candidates =
    Netlist.live_insts nl
    |> List.filter_map (fun iid ->
           let c = Netlist.cell nl iid in
           if c.Cell.kind = Func.Dff && not (Library.is_retention c) then begin
             (* the conversion slows clk->q and tightens setup *)
             let delta =
               ret.Cell.intrinsic_delay -. c.Cell.intrinsic_delay
               +. (ret.Cell.setup -. c.Cell.setup)
             in
             let slack = Sta.inst_slack !sta iid in
             if slack >= safety *. Float.max 0.0 delta then
               Some (iid, c, c.Cell.leak_standby -. ret.Cell.leak_standby, slack)
             else None
           end
           else None)
    |> List.filter (fun (_, _, saving, _) -> saving > 0.0)
    |> List.sort (fun (_, _, s1, _) (_, _, s2, _) -> compare s2 s1)
  in
  List.iter (fun (iid, _, _, _) -> Netlist.replace_cell nl iid ret) candidates;
  converted := List.length candidates;
  sta := Sta.update !sta ~changed:(List.map (fun (iid, _, _, _) -> iid) candidates);
  (* rollback the tightest conversions if the batch overshot *)
  let remaining = ref (List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) candidates) in
  while Sta.wns !sta < 0.0 && !remaining <> [] do
    let chunk_size = max 1 (List.length !remaining / 8) in
    let chunk = List.filteri (fun i _ -> i < chunk_size) !remaining in
    remaining := List.filteri (fun i _ -> i >= chunk_size) !remaining;
    List.iter
      (fun (iid, original, _, _) ->
        Netlist.replace_cell nl iid original;
        decr converted)
      chunk;
    sta := Sta.update !sta ~changed:(List.map (fun (iid, _, _, _) -> iid) chunk)
  done;
  { converted = !converted; sta = !sta }
