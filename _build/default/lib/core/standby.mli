(** Standby entry / exit sequencing and verification.

    The paper's circuits are only useful if the block actually survives a
    sleep cycle: MTE asserts, the logic floats behind the footers (held
    where holders exist), the clock is gated, and on wake the block must
    compute exactly as if it had never slept.  This module simulates that
    protocol against a never-slept reference and reports what the
    Selective-MT invariants promise:

    - no floating (X) net reaches always-on logic or a primary output
      during standby (the holders' job);
    - flip-flop state survives (flip-flops stay on the true rails);
    - after wake-up, outputs match the reference from the first cycle.

    It also measures the MTE enable tree's insertion delay, which bounds
    how fast the sleep signal itself can propagate. *)

type outcome = {
  cycles_run : int;
  state_preserved : bool;
  outputs_defined_in_standby : bool;
      (** no primary output floats while asleep *)
  x_leaks_into_awake_logic : int;
      (** floating nets with a non-MT sink, per standby cycle summed *)
  first_wake_cycle_correct : bool;
  all_wake_cycles_correct : bool;
}

val simulate :
  ?cycles_before:int ->
  ?standby_cycles:int ->
  ?cycles_after:int ->
  ?seed:int ->
  Smt_netlist.Netlist.t ->
  outcome
(** Run the sleep protocol on a post-flow netlist (must expose an MTE
    input; designs without one simply never float). *)

val mte_tree_delay : Smt_sta.Sta.config -> Smt_netlist.Netlist.t -> float
(** Worst insertion delay from the MTE port to any switch or holder through
    the buffer tree, ps. 0 when there is no MTE net. *)
