(** Buffering of the MT-enable (MTE) net.

    "The MT enable signal MTE has many fanouts, as MTE is necessary to be
    connected to all switch transistors and output holders.  So, buffers
    need to be inserted to the MTE net appropriately."  Buffers are
    high-Vth (they must not leak in standby), built bottom-up by geometric
    grouping with a per-stage fanout cap, and placed at group centroids. *)

type result = {
  buffers : int;
  area : float;
  levels : int;
  root_fanout : int;  (** loads left on the MTE port net itself *)
}

val buffer_tree :
  ?max_fanout:int ->
  Smt_place.Placement.t ->
  mte_net:Smt_netlist.Netlist.net_id ->
  result
(** Mutates netlist and placement. Default fanout cap comes from the
    technology ([mte_max_fanout]). A net already within the cap is left
    untouched. *)

val max_stage_fanout : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.net_id -> int
(** Worst fanout over the MTE net and every [mtebuf] stage under it. *)
