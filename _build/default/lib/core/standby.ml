module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Simulator = Smt_sim.Simulator
module Logic = Smt_sim.Logic
module Rng = Smt_util.Rng
module Sta = Smt_sta.Sta

type outcome = {
  cycles_run : int;
  state_preserved : bool;
  outputs_defined_in_standby : bool;
  x_leaks_into_awake_logic : int;
  first_wake_cycle_correct : bool;
  all_wake_cycles_correct : bool;
}

let data_inputs nl =
  Netlist.inputs nl
  |> List.filter (fun (name, nid) ->
         (not (Netlist.is_clock_net nl nid)) && not (String.equal name "MTE"))
  |> List.map fst

let ffs nl =
  List.filter
    (fun iid -> (Netlist.cell nl iid).Cell.kind = Smt_cell.Func.Dff)
    (Netlist.live_insts nl)

let outputs_equal a b =
  List.for_all2
    (fun (_, va) (_, vb) -> Logic.equal va vb)
    (Simulator.output_values a) (Simulator.output_values b)

let simulate ?(cycles_before = 4) ?(standby_cycles = 3) ?(cycles_after = 4) ?(seed = 3) nl =
  let dut = Simulator.create nl and reference = Simulator.create nl in
  Simulator.reset dut;
  Simulator.reset reference;
  let rng = Rng.create seed in
  let names = data_inputs nl in
  let has_mte = Netlist.find_net nl "MTE" <> None in
  let set_mte sim v = if has_mte then Simulator.set_inputs sim [ ("MTE", v) ] in
  let clock_inputs nl =
    Netlist.inputs nl
    |> List.filter (fun (_, nid) -> Netlist.is_clock_net nl nid)
    |> List.map fst
  in
  let drive sim vector =
    Simulator.set_inputs sim vector;
    List.iter (fun c -> Simulator.set_inputs sim [ (c, Logic.F) ]) (clock_inputs nl)
  in
  set_mte dut Logic.F;
  set_mte reference Logic.F;
  (* warm-up: both run identically *)
  for _ = 1 to cycles_before do
    let vector = List.map (fun n -> (n, Logic.of_bool (Rng.bool rng))) names in
    drive dut vector;
    drive reference vector;
    Simulator.propagate dut;
    Simulator.propagate reference;
    Simulator.clock_edge dut;
    Simulator.clock_edge reference
  done;
  (* standby: MTE asserted, clock gated (no edges), inputs frozen *)
  set_mte dut Logic.T;
  let x_leaks = ref 0 in
  let outputs_ok = ref true in
  for _ = 1 to standby_cycles do
    Simulator.propagate ~mode:Simulator.Standby dut;
    List.iter
      (fun nid ->
        if Netlist.is_po nl nid then outputs_ok := false;
        List.iter
          (fun (p : Netlist.pin) ->
            if not (Cell.is_mt (Netlist.cell nl p.Netlist.inst)) then incr x_leaks)
          (Netlist.sinks nl nid))
      (Simulator.floating_nets dut)
  done;
  (* state check: the reference has simply been idle *)
  let state_preserved =
    List.for_all
      (fun ff -> Logic.equal (Simulator.ff_state dut ff) (Simulator.ff_state reference ff))
      (ffs nl)
  in
  (* wake: MTE released, both resume on identical inputs *)
  set_mte dut Logic.F;
  let first_ok = ref true and all_ok = ref true in
  for cycle = 1 to cycles_after do
    let vector = List.map (fun n -> (n, Logic.of_bool (Rng.bool rng))) names in
    drive dut vector;
    drive reference vector;
    Simulator.propagate dut;
    Simulator.propagate reference;
    let same = outputs_equal dut reference in
    if cycle = 1 && not same then first_ok := false;
    if not same then all_ok := false;
    Simulator.clock_edge dut;
    Simulator.clock_edge reference
  done;
  {
    cycles_run = cycles_before + standby_cycles + cycles_after;
    state_preserved;
    outputs_defined_in_standby = !outputs_ok;
    x_leaks_into_awake_logic = !x_leaks;
    first_wake_cycle_correct = !first_ok;
    all_wake_cycles_correct = !all_ok;
  }

let mte_tree_delay cfg nl =
  match Netlist.find_net nl "MTE" with
  | None -> 0.0
  | Some mte ->
    (* worst path through mtebuf stages, buffer delay at actual loads *)
    let rec walk nid depth_delay =
      let sinks = Netlist.sinks nl nid in
      List.fold_left
        (fun acc (p : Netlist.pin) ->
          let name = Netlist.inst_name nl p.Netlist.inst in
          let is_buf = String.length name >= 6 && String.sub name 0 6 = "mtebuf" in
          if is_buf then
            match Netlist.output_net nl p.Netlist.inst with
            | Some out ->
              let d = Sta.cell_delay cfg nl p.Netlist.inst in
              Float.max acc (walk out (depth_delay +. d))
            | None -> acc
          else Float.max acc depth_delay)
        depth_delay sinks
    in
    walk mte 0.0
