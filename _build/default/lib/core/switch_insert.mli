(** Switch-transistor and output-holder insertion (improved flow).

    Implements the paper's insertion stage verbatim: every MT-cell without
    a VGND port is replaced by the variant with one; {e one} switch
    transistor is added and every VGND port is connected to its drain,
    forming the initial switch structure that the clustering optimizer
    will replace; output holders are inserted only on nets that need them —
    "when all fanouts of the MT-cell are connected to MT-cells, an output
    holder is unnecessary".

    The MTE enable signal becomes a primary input driving the switch and
    every holder (buffering comes later, with routing). *)

type result = {
  initial_switch : Smt_netlist.Netlist.inst_id;
  holders_inserted : int;
  holders_avoided : int;  (** MT-driven nets that needed no holder *)
  mte_net : Smt_netlist.Netlist.net_id;
}

val insert :
  ?minimize_holders:bool ->
  ?initial_width:float ->
  Smt_place.Placement.t ->
  result
(** Mutates the netlist and places the new cells. [minimize_holders]
    (default true) applies the all-fanouts-MT rule; switching it off
    instantiates a holder on every MT-driven net, the conventional
    behaviour, for the ablation. [initial_width] (default 10.) sizes the
    temporary single switch. Raises [Invalid_argument] if the netlist has
    no MT-cells awaiting ports. *)

val mte_sinks : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.net_id -> Smt_netlist.Netlist.pin list
(** All pins on the MTE net (switches, holders, buffers). *)

val mte_net_of : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.net_id
(** The design's MTE primary input, created on first use. *)
