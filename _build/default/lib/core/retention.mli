(** Retention-register conversion (extension).

    The Selective-MT technique only gates combinational logic: flip-flops
    must keep their state and stay on the true rails, so low-Vth flip-flops
    on critical paths remain a standby leakage floor in every flow.
    Balloon-style retention flip-flops remove that floor at an area and
    clk->q cost; this pass converts every flip-flop whose slack covers the
    penalty, largest leakage saving first, with the same batch-and-rollback
    discipline as the Vth assignment. *)

type result = {
  converted : int;
  sta : Smt_sta.Sta.t;
}

val convert :
  ?safety:float -> Smt_sta.Sta.config -> Smt_netlist.Netlist.t -> result
(** Mutates the netlist; timing is preserved ([safety] defaults to 1.5). *)

val retention_registers : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.inst_id list
