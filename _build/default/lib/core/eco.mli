(** Hold-violation fixing ECO.

    After CTS the clock reaches flip-flops with different insertion delays;
    short launch-to-capture paths can then violate hold.  The ECO walks the
    violating endpoints and splices a high-Vth delay buffer in front of
    each offending D pin (moving only that sink), iterating timing until
    hold is clean — the paper's "ECO ... for fixing the hold violation". *)

type result = {
  buffers_added : int;
  iterations : int;
  hold_before : float;
  hold_after : float;
  setup_after : float;
}

val fix_hold :
  ?max_iterations:int ->
  Smt_sta.Sta.config ->
  Smt_place.Placement.t ->
  result
(** Mutates netlist and placement. Stops early if an iteration cannot
    improve the worst hold slack. *)

type setup_result = {
  upsized : int;
  wns_before : float;
  wns_after : float;
}

val fix_setup : Smt_sta.Sta.config -> Smt_netlist.Netlist.t -> setup_result
(** Post-route setup repair: strengthen cells on violating paths
    (drive-strength upsizing under the final wire/bounce/latency model).
    No-op when timing is already met. *)
