module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Library = Smt_cell.Library
module Sta = Smt_sta.Sta

type result = {
  resized : int;
  passes : int;
  sta : Sta.t;
}

let next_drive up drive =
  let sorted = List.sort compare Library.drives in
  let ordered = if up then sorted else List.rev sorted in
  let rec after = function
    | d :: next :: _ when d = drive -> Some next
    | _ :: rest -> after rest
    | [] -> None
  in
  after ordered

let candidate_cell nl up iid =
  let lib = Netlist.lib nl in
  let c = Netlist.cell nl iid in
  if Smt_cell.Func.is_infrastructure c.Cell.kind then None
  else
    match next_drive up c.Cell.drive with
    | Some drive ->
      if Library.has_variant ~drive lib c.Cell.kind c.Cell.vth c.Cell.style then
        Some (Library.resize lib c drive)
      else None
    | None -> None

let sizable nl iid =
  candidate_cell nl true iid <> None || candidate_cell nl false iid <> None

(* Delay change of swapping [iid] to [cell'], including the load penalty the
   changed input capacitance inflicts on each driving cell. *)
let move_delta cfg nl iid cell' =
  let c = Netlist.cell nl iid in
  let load =
    match Netlist.output_net nl iid with
    | Some out -> Sta.load_of_net cfg nl out
    | None -> 0.0
  in
  let self = Cell.delay cell' ~load_ff:load -. Cell.delay c ~load_ff:load in
  let cap_delta = cell'.Cell.input_cap -. c.Cell.input_cap in
  let upstream =
    List.fold_left
      (fun acc pred -> acc +. ((Netlist.cell nl pred).Cell.drive_res *. cap_delta))
      0.0 (Netlist.fanin_insts nl iid)
  in
  self +. upstream

let upsize_critical ?(max_passes = 8) cfg nl =
  let resized = ref 0 in
  let passes = ref 0 in
  let sta = ref (Sta.analyze cfg nl) in
  let keep_going = ref true in
  while !keep_going && !passes < max_passes && not (Sta.meets_timing !sta) do
    incr passes;
    (* Strengthen the cells on violating paths whose move helps overall. *)
    let moves =
      Netlist.live_insts nl
      |> List.filter (fun iid -> Sta.inst_slack !sta iid < 0.0)
      |> List.filter_map (fun iid ->
             match candidate_cell nl true iid with
             | Some cell' ->
               let delta = move_delta cfg nl iid cell' in
               if delta < 0.0 then Some (iid, cell', delta) else None
             | None -> None)
      |> List.sort (fun (_, _, d1) (_, _, d2) -> compare d1 d2)
    in
    (* Take the best third each pass so load interactions stay local. *)
    let quota = max 1 (List.length moves / 3) in
    let chosen = List.filteri (fun i _ -> i < quota) moves in
    if chosen = [] then keep_going := false
    else begin
      let wns_before = Sta.wns !sta in
      List.iter (fun (iid, cell', _) -> Netlist.replace_cell nl iid cell') chosen;
      sta := Sta.analyze cfg nl;
      if Sta.wns !sta < wns_before then begin
        (* overshoot (load coupling): revert the whole batch and stop *)
        List.iter
          (fun (iid, _, _) ->
            let c = Netlist.cell nl iid in
            match next_drive false c.Cell.drive with
            | Some drive -> Netlist.replace_cell nl iid (Library.resize (Netlist.lib nl) c drive)
            | None -> ())
          chosen;
        sta := Sta.analyze cfg nl;
        keep_going := false
      end
      else resized := !resized + List.length chosen
    end
  done;
  { resized = !resized; passes = !passes; sta = !sta }

let downsize_idle ?(max_passes = 8) ?(safety = 1.5) cfg nl =
  let frozen = Hashtbl.create 97 in
  let resized = ref 0 in
  let passes = ref 0 in
  let sta = ref (Sta.analyze cfg nl) in
  let keep_going = ref true in
  while !keep_going && !passes < max_passes do
    incr passes;
    let candidates =
      Netlist.live_insts nl
      |> List.filter (fun iid -> not (Hashtbl.mem frozen iid))
      |> List.filter_map (fun iid ->
             match candidate_cell nl false iid with
             | Some cell' ->
               let slack = Sta.inst_slack !sta iid in
               let delta = move_delta cfg nl iid cell' in
               if slack > 0.0 && slack >= safety *. delta then Some (iid, cell', slack)
               else None
             | None -> None)
      |> List.sort (fun (_, _, s1) (_, _, s2) -> compare s2 s1)
    in
    if candidates = [] then keep_going := false
    else begin
      List.iter (fun (iid, cell', _) -> Netlist.replace_cell nl iid cell') candidates;
      sta := Sta.update !sta ~changed:(List.map (fun (iid, _, _) -> iid) candidates);
      let this_pass = ref (List.length candidates) in
      let remaining = ref (List.rev candidates) in
      while Sta.wns !sta < 0.0 && !remaining <> [] do
        let chunk_size = max 1 (List.length !remaining / 8) in
        let chunk = List.filteri (fun i _ -> i < chunk_size) !remaining in
        remaining := List.filteri (fun i _ -> i >= chunk_size) !remaining;
        List.iter
          (fun (iid, cell', _) ->
            (match next_drive true cell'.Cell.drive with
            | Some drive ->
              Netlist.replace_cell nl iid (Library.resize (Netlist.lib nl) cell' drive)
            | None -> ());
            Hashtbl.replace frozen iid ();
            decr this_pass)
          chunk;
        sta := Sta.update !sta ~changed:(List.map (fun (iid, _, _) -> iid) chunk)
      done;
      resized := !resized + !this_pass;
      if !this_pass = 0 then keep_going := false
    end
  done;
  { resized = !resized; passes = !passes; sta = !sta }
