(** Multiple power domains (extension).

    A real SoC gates subsystems independently: the paper's single MTE
    signal becomes one enable per domain, and each domain owns its own
    switch clusters.  This module partitions the MT-cell population
    geometrically into [n] domains, rebuilds the switch structure per
    domain on a per-domain MTE input (MTE0, MTE1, ...), and evaluates the
    standby leakage of any sleep subset — the partial-standby states a
    single-MTE design cannot express. *)

type t

val partition :
  ?domains:int ->
  ?activity:Smt_sim.Activity.t ->
  ?params:Cluster.params ->
  Smt_place.Placement.t ->
  t
(** Split the VGND-style MT-cells into [domains] (default 2) geometric
    groups (balanced k-means on placement), dissolve any existing switch
    structure, and rebuild clusters per domain, each hanging from its own
    MTE port.  Raises [Invalid_argument] when there are no MT-cells or
    [domains < 1]. *)

val count : t -> int
val mte_net : t -> int -> Smt_netlist.Netlist.net_id
(** The domain's enable net. Raises [Invalid_argument] on a bad index. *)

val members : t -> int -> Smt_netlist.Netlist.inst_id list
val switches : t -> int -> Smt_netlist.Netlist.inst_id list

val standby_leakage : t -> asleep:int list -> float
(** Total standby leakage (nW) when exactly the listed domains sleep:
    sleeping domains contribute their MT residual plus switch leakage;
    awake domains leak at their cells' active (low-Vth) rate.  Always-on
    logic leaks identically in every state. *)

val domain_of : t -> Smt_netlist.Netlist.inst_id -> int option
(** Which domain an MT-cell landed in. *)
