module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library

type style = Conventional | Improved

let target_style = function
  | Conventional -> Vth.Mt_embedded
  | Improved -> Vth.Mt_no_vgnd

let replace_matching ~also_high_vth style nl =
  let lib = Netlist.lib nl in
  let mt = target_style style in
  let count = ref 0 in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      if
        c.Cell.style = Vth.Plain
        && (c.Cell.vth = Vth.Low || also_high_vth)
        && Library.has_variant ~drive:c.Cell.drive lib c.Cell.kind Vth.Low mt
      then begin
        Netlist.replace_cell nl iid
          (Library.variant ~drive:c.Cell.drive lib c.Cell.kind Vth.Low mt);
        incr count
      end);
  !count

let replace style nl = replace_matching ~also_high_vth:false style nl
let replace_all style nl = replace_matching ~also_high_vth:true style nl

let mt_cells nl =
  List.filter (fun iid -> Cell.is_mt (Netlist.cell nl iid)) (Netlist.live_insts nl)
