(** Dual-Vth assignment: demote off-critical cells to high-Vth.

    This is both the paper's baseline technique and the first replacement
    stage of the Selective-MT flow ("executed by the method which is
    similar to the way of generating the Dual-Vth circuit"): starting from
    an all-low-Vth netlist that meets timing, cells with enough setup slack
    are swapped to their high-Vth variant, largest slack first, in batches
    with rollback when a batch overshoots.  Cells left at low-Vth are by
    construction the (near-)critical ones — exactly the cells the
    Selective-MT flow then turns into MT-cells. *)

type result = {
  swapped : int;  (** cells now high-Vth *)
  passes : int;
  sta : Smt_sta.Sta.t;  (** final timing *)
}

val assign :
  ?max_passes:int ->
  ?safety:float ->
  Smt_sta.Sta.config ->
  Smt_netlist.Netlist.t ->
  result
(** Mutates the netlist. [safety] (default 1.5) scales the per-cell delay
    increase a candidate's slack must cover before it is swapped, absorbing
    same-path interactions; rollback then repairs any residual overshoot.
    The returned STA is consistent with the final netlist. *)

val low_vth_cells : Smt_netlist.Netlist.t -> Smt_netlist.Netlist.inst_id list
(** Live plain low-Vth logic cells (the Dual-Vth leftovers that a
    Selective-MT flow will replace with MT-cells). *)
