lib/place/placement.mli: Smt_netlist Smt_util
