lib/place/placement.ml: Array Buffer Float Hashtbl List Printf Smt_cell Smt_netlist Smt_util String
