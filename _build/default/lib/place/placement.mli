(** Row-based standard-cell placement.

    Constructive placement orders cells by logic level (so connected cells
    land near each other), fills rows in a boustrophedon sweep, then runs
    force-directed refinement passes with per-row legalization.  Cells
    inserted later by the MT flow (switches, holders, MTE buffers, ECO
    buffers) are dropped at a requested point through [place_inst].

    The placement is the geometric substrate for: RC estimation and
    routing; VGND cluster wire-length budgeting (the paper's crosstalk
    cap); and positioning each shared switch at the centroid of its
    cluster. *)

type t

val place :
  ?seed:int ->
  ?utilization:float ->
  ?iterations:int ->
  Smt_netlist.Netlist.t ->
  t
(** Place all live instances. Defaults: seed 1, utilization 0.65, 12
    refinement passes. *)

val netlist : t -> Smt_netlist.Netlist.t
val die : t -> Smt_util.Geom.bbox
val row_count : t -> int

val inst_point : t -> Smt_netlist.Netlist.inst_id -> Smt_util.Geom.point
(** Raises [Not_found] for instances that were never placed. *)

val inst_point_opt : t -> Smt_netlist.Netlist.inst_id -> Smt_util.Geom.point option

val place_inst : t -> Smt_netlist.Netlist.inst_id -> Smt_util.Geom.point -> unit
(** Record (or move) an instance at a point, clamped into the die. *)

val port_point : t -> string -> Smt_util.Geom.point option
(** Boundary location of a primary port. *)

val pin_points : t -> Smt_netlist.Netlist.net_id -> Smt_util.Geom.point list
(** Locations of everything on a net: driver, sinks, holder, and the port
    pad when the net is a primary input/output. *)

val net_hpwl : t -> Smt_netlist.Netlist.net_id -> float
(** Half-perimeter wirelength of the net's bounding box; 0 for nets with
    fewer than two placed endpoints. *)

val total_hpwl : t -> float
val centroid : t -> Smt_netlist.Netlist.inst_id list -> Smt_util.Geom.point
(** Mean location of the given instances; die center for the empty list. *)

val to_string : t -> string
(** DEF-flavoured dump: die box, row count, port pads, instance
    locations. *)

val of_string : Smt_netlist.Netlist.t -> string -> t
(** Restore a placement dumped by [to_string] onto the same (or a
    same-named) netlist. Raises [Failure] on malformed input or unknown
    instances. *)
