module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Logic = Smt_sim.Logic
module Simulator = Smt_sim.Simulator
module Rng = Smt_util.Rng

let stack_per_zero = 0.75
let floor_factor = 0.4

let state_factor kind inputs =
  if Func.is_sequential kind || Func.is_infrastructure kind then 1.0
  else begin
    let weight v =
      match (v : Logic.value) with Logic.F -> 1.0 | Logic.X -> 0.5 | Logic.T -> 0.0
    in
    let zeros = List.fold_left (fun acc v -> acc +. weight v) 0.0 inputs in
    Float.max floor_factor (stack_per_zero ** zeros)
  end

let cell_leak_with_state nl sim iid =
  let cell = Netlist.cell nl iid in
  if Cell.is_mt cell then cell.Cell.leak_standby
  else begin
    let inputs =
      Func.input_names cell.Cell.kind
      |> Array.to_list
      |> List.filter_map (fun pin ->
             match Netlist.pin_net nl iid pin with
             | Some nid -> Some (Simulator.value sim nid)
             | None -> None)
    in
    cell.Cell.leak_standby *. state_factor cell.Cell.kind inputs
  end

let standby_with_vector ?(ff_state = []) nl ~vector =
  let sim = Simulator.create nl in
  Simulator.reset sim;
  List.iter (fun (iid, v) -> Simulator.set_ff_state sim iid v) ff_state;
  let all_inputs =
    List.map
      (fun (name, _) ->
        match List.assoc_opt name vector with
        | Some v -> (name, v)
        | None -> (name, Logic.F))
      (Netlist.inputs nl)
  in
  Simulator.set_inputs sim all_inputs;
  Simulator.propagate ~mode:Simulator.Standby sim;
  let total = ref 0.0 in
  Netlist.iter_insts nl (fun iid -> total := !total +. cell_leak_with_state nl sim iid);
  !total

type search = {
  best_vector : (string * Logic.value) list;
  best_state : (Netlist.inst_id * Logic.value) list;
  best_nw : float;
  worst_nw : float;
  average_nw : float;
  tries : int;
}

let search ?(tries = 64) ?(seed = 13) ?(park_state = true) nl =
  let rng = Rng.create seed in
  let names =
    Netlist.inputs nl
    |> List.filter (fun (_, nid) -> not (Netlist.is_clock_net nl nid))
    |> List.map fst
  in
  let ffs =
    if park_state then
      List.filter
        (fun iid -> (Netlist.cell nl iid).Cell.kind = Func.Dff)
        (Netlist.live_insts nl)
    else []
  in
  let draw () =
    ( List.map (fun n -> (n, Logic.of_bool (Rng.bool rng))) names,
      List.map (fun iid -> (iid, Logic.of_bool (Rng.bool rng))) ffs )
  in
  let rec loop i best best_state best_nw worst sum =
    if i >= tries then
      {
        best_vector = best;
        best_state;
        best_nw;
        worst_nw = worst;
        average_nw = sum /. float_of_int tries;
        tries;
      }
    else begin
      let v, st = draw () in
      let nw = standby_with_vector ~ff_state:st nl ~vector:v in
      let best, best_state, best_nw =
        if nw < best_nw then (v, st, nw) else (best, best_state, best_nw)
      in
      let worst = Float.max worst nw in
      loop (i + 1) best best_state best_nw worst (sum +. nw)
    end
  in
  let v0, st0 = draw () in
  let nw0 = standby_with_vector ~ff_state:st0 nl ~vector:v0 in
  loop 1 v0 st0 nw0 nw0 nw0
