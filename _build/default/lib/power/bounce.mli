(** Virtual-ground voltage bounce analysis.

    In active mode the cluster's switching current flows through its shared
    footer and the VGND wiring, lifting the virtual ground by
    [I * (R_switch + R_wire_eff)].  The designer's bounce limit is the
    central sizing constraint of the paper's back-end optimization: the
    footer must be wide enough that the bounce never exceeds it, because the
    bounce directly slows every cell in the cluster (see
    [Cell.bounce_derate]).

    The simultaneous-switching current of a cluster is estimated as the
    worst member's peak plus the activity-weighted average currents of the
    others — the diversity effect that lets one shared footer be far
    narrower than the sum of the per-cell footers conventional MT-cells
    embed. *)

val load_scale : float -> float
(** Current multiplier for a cell driving the given load (fF): switching
    current is the charge moved per transition, so it grows with the driven
    capacitance. Clamped to [0.4, 2.5]; ~1.0 at a typical 7.5 fF load. *)

val simultaneous_current :
  ?activity:Smt_sim.Activity.t ->
  ?load_of:(Smt_netlist.Netlist.inst_id -> float) ->
  Smt_netlist.Netlist.t ->
  members:Smt_netlist.Netlist.inst_id list ->
  float
(** Cluster current in uA; 0 for the empty cluster. Without an activity
    profile a conservative default toggle rate of 0.5 is assumed; without
    [load_of] (fF seen by each cell's output) the load factor is 1.  The
    load dependence is what makes pre-route (estimated RC) and post-route
    (extracted RC) sizing disagree — the error the paper's re-optimization
    pass exists to fix. *)

val sustained_current :
  ?activity:Smt_sim.Activity.t ->
  ?load_of:(Smt_netlist.Netlist.inst_id -> float) ->
  Smt_netlist.Netlist.t ->
  members:Smt_netlist.Netlist.inst_id list ->
  float
(** Activity-weighted average current (electromigration stress), uA. *)

val vgnd_wire_res : Smt_cell.Tech.t -> length:float -> float
(** Effective distributed resistance of a VGND line of the given length. *)

val bounce_v :
  Smt_cell.Tech.t -> switch_width:float -> wire_length:float -> current_ua:float -> float
(** Bounce in volts across footer plus VGND wiring. *)

type cluster_report = {
  switch : Smt_netlist.Netlist.inst_id;
  members : int;
  current_ua : float;
  wire_length : float;
  bounce : float;
  ok : bool;
}

val analyze :
  ?activity:Smt_sim.Activity.t ->
  ?load_of:(Smt_netlist.Netlist.inst_id -> float) ->
  ?limit:float ->
  Smt_netlist.Netlist.t ->
  wire_length_of:(Smt_netlist.Netlist.inst_id -> float) ->
  cluster_report list
(** One report per sleep switch in the netlist; [wire_length_of] maps a
    switch to its VGND line length (from placement). Default [limit] is the
    technology's bounce limit. *)

val worst : cluster_report list -> float
val violations : cluster_report list -> int

val bounce_of_fn :
  cluster_report list -> Smt_netlist.Netlist.t -> Smt_netlist.Netlist.inst_id -> float
(** Per-instance bounce for STA: an MT-cell sees its cluster's bounce; an
    embedded MT-cell sees the bounce of its private footer at its own peak
    current; plain cells see none. *)
