(** Wake-up cost of the sleep-switch structure.

    When MTE de-asserts, each footer must discharge its cluster's virtual
    ground before the cells compute reliably.  The wake time of a cluster
    is approximately [3 * R_switch * C_vgnd] (settling to ~5%), where the
    VGND capacitance aggregates the members' internal capacitance and the
    VGND wiring; the wake energy is [C_vgnd * Vdd^2 / 2] plus the rush
    current through the switch.

    This is the classic MTCMOS trade-off that bounds how aggressively one
    shares switches: bigger clusters leak less but wake slower — an
    extension the paper leaves implicit in its EM/bounce constraints. *)

type cluster_wake = {
  switch : Smt_netlist.Netlist.inst_id;
  members : int;
  vgnd_cap_ff : float;
  wake_time_ps : float;
  wake_energy_fj : float;
  rush_current_ua : float;  (** initial discharge current through the footer *)
}

val analyze :
  Smt_netlist.Netlist.t ->
  wire_length_of:(Smt_netlist.Netlist.inst_id -> float) ->
  cluster_wake list
(** One entry per sleep switch. *)

val worst_wake_time : cluster_wake list -> float
val total_wake_energy : cluster_wake list -> float

val block_wake_time :
  Smt_netlist.Netlist.t ->
  wire_length_of:(Smt_netlist.Netlist.inst_id -> float) ->
  float
(** Wake time of the whole block = the slowest cluster (switches all open
    in parallel on MTE). 0 when there are no switches. *)
