module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Activity = Smt_sim.Activity
module Wire = Smt_sta.Wire
module Library = Smt_cell.Library
module Tech = Smt_cell.Tech

type estimate = {
  switching_mw : float;
  leakage_mw : float;
  total_mw : float;
  clock_mhz : float;
}

let default_toggle = 0.15

let estimate ?activity ?(wire = Wire.zero) ~clock_mhz nl =
  let tech = Library.tech (Netlist.lib nl) in
  let vdd = tech.Tech.vdd in
  let f_hz = clock_mhz *. 1e6 in
  let switching_w = ref 0.0 in
  Netlist.iter_insts nl (fun iid ->
      match Netlist.output_net nl iid with
      | None -> ()
      | Some out ->
        if not (Netlist.is_clock_net nl out) then begin
          let alpha =
            match activity with Some a -> Activity.factor a iid | None -> default_toggle
          in
          let pin_caps =
            List.fold_left
              (fun acc (p : Netlist.pin) ->
                acc +. (Netlist.cell nl p.Netlist.inst).Cell.input_cap)
              0.0 (Netlist.sinks nl out)
          in
          let cap_ff = pin_caps +. wire.Wire.net_cap out in
          (* fF -> F is 1e-15; P = alpha * C * V^2 * f *)
          switching_w := !switching_w +. (alpha *. cap_ff *. 1e-15 *. vdd *. vdd *. f_hz)
        end);
  let leakage_mw = Leakage.active nl /. 1e6 in
  let switching_mw = !switching_w *. 1e3 in
  {
    switching_mw;
    leakage_mw;
    total_mw = switching_mw +. leakage_mw;
    clock_mhz;
  }
