module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth

type breakdown = {
  total : float;
  low_vth_logic : float;
  high_vth_logic : float;
  sequential : float;
  mt_residual : float;
  switches : float;
  embedded_mt : float;
  holders : float;
  infrastructure : float;
}

let zero =
  {
    total = 0.0;
    low_vth_logic = 0.0;
    high_vth_logic = 0.0;
    sequential = 0.0;
    mt_residual = 0.0;
    switches = 0.0;
    embedded_mt = 0.0;
    holders = 0.0;
    infrastructure = 0.0;
  }

(* Buffers inserted by CTS / MTE buffering / ECO are recognisable by name
   stem; they are ordinary cells, the classification is only for the
   report. *)
let is_infrastructure_inst nl iid =
  let name = Netlist.inst_name nl iid in
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "ctsbuf" || has_prefix "mtebuf" || has_prefix "ecobuf"

let standby nl =
  let acc = ref zero in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      let leak = c.Cell.leak_standby in
      let s = !acc in
      let s = { s with total = s.total +. leak } in
      let s =
        match c.Cell.kind with
        | Func.Sleep_switch -> { s with switches = s.switches +. leak }
        | Func.Holder -> { s with holders = s.holders +. leak }
        | Func.Dff -> { s with sequential = s.sequential +. leak }
        | Func.Inv | Func.Buf | Func.Clkbuf | Func.Nand2 | Func.Nand3 | Func.Nand4
        | Func.Nor2 | Func.Nor3 | Func.And2 | Func.And3 | Func.Or2 | Func.Or3
        | Func.Xor2 | Func.Xnor2 | Func.Aoi21 | Func.Oai21 | Func.Mux2 -> (
          match c.Cell.style with
          | Vth.Mt_embedded -> { s with embedded_mt = s.embedded_mt +. leak }
          | Vth.Mt_no_vgnd | Vth.Mt_vgnd -> { s with mt_residual = s.mt_residual +. leak }
          | Vth.Plain ->
            if is_infrastructure_inst nl iid then
              { s with infrastructure = s.infrastructure +. leak }
            else if c.Cell.vth = Vth.Low then
              { s with low_vth_logic = s.low_vth_logic +. leak }
            else { s with high_vth_logic = s.high_vth_logic +. leak })
      in
      acc := s);
  !acc

let active nl =
  let acc = ref 0.0 in
  Netlist.iter_insts nl (fun iid -> acc := !acc +. (Netlist.cell nl iid).Cell.leak_active);
  !acc

let scale b k =
  {
    total = b.total *. k;
    low_vth_logic = b.low_vth_logic *. k;
    high_vth_logic = b.high_vth_logic *. k;
    sequential = b.sequential *. k;
    mt_residual = b.mt_residual *. k;
    switches = b.switches *. k;
    embedded_mt = b.embedded_mt *. k;
    holders = b.holders *. k;
    infrastructure = b.infrastructure *. k;
  }

let at_corner corner nl =
  let tech = Smt_cell.Library.tech (Netlist.lib nl) in
  scale (standby nl) (Smt_cell.Corner.leakage_factor tech corner)

let pp fmt b =
  Format.fprintf fmt
    "standby %.1f nW (lv=%.1f hv=%.1f seq=%.1f mt=%.1f sw=%.1f emb=%.1f hold=%.1f infra=%.1f)"
    b.total b.low_vth_logic b.high_vth_logic b.sequential b.mt_residual b.switches
    b.embedded_mt b.holders b.infrastructure
