lib/power/bounce.mli: Smt_cell Smt_netlist Smt_sim
