lib/power/wakeup.ml: Float List Smt_cell Smt_netlist
