lib/power/leakage.ml: Format Smt_cell Smt_netlist String
