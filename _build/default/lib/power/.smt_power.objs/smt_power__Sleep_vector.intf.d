lib/power/sleep_vector.mli: Smt_cell Smt_netlist Smt_sim
