lib/power/bounce.ml: Float Hashtbl List Smt_cell Smt_netlist Smt_sim
