lib/power/em.ml: Printf Smt_cell
