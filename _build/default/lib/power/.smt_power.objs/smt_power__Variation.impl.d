lib/power/variation.ml: List Smt_cell Smt_netlist Smt_util
