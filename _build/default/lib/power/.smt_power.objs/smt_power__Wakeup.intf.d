lib/power/wakeup.mli: Smt_netlist
