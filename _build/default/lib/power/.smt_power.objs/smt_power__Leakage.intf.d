lib/power/leakage.mli: Format Smt_cell Smt_netlist
