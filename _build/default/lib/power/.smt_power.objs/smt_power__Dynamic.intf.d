lib/power/dynamic.mli: Smt_netlist Smt_sim Smt_sta
