lib/power/dynamic.ml: Leakage List Smt_cell Smt_netlist Smt_sim Smt_sta
