lib/power/sleep_vector.ml: Array Float List Smt_cell Smt_netlist Smt_sim Smt_util
