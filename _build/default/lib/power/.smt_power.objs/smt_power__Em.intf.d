lib/power/em.mli: Smt_cell
