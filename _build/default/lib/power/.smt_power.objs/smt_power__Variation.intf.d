lib/power/variation.mli: Smt_netlist
