(** Statistical standby leakage under process variation.

    Sub-threshold leakage varies exponentially with threshold-voltage
    variation, so per-cell leakage is well modelled as lognormal.  Monte
    Carlo over independent per-cell multipliers gives the block's leakage
    distribution; because a Dual-Vth design's leakage is concentrated in a
    minority of low-Vth cells while an SMT design's floor is spread over
    many tiny contributors, the *relative* spread differs by technique —
    a sign-off quantity the deterministic number hides. *)

type stats = {
  samples : int;
  mean : float;
  stddev : float;
  p5 : float;
  p50 : float;
  p95 : float;
  deterministic : float;  (** the no-variation total, for reference *)
}

val sample_standby :
  ?sigma:float -> ?samples:int -> ?seed:int -> Smt_netlist.Netlist.t -> stats
(** [sigma] is the lognormal shape parameter of each cell's multiplier
    (default 0.35); multipliers are normalized to mean 1 so the ensemble
    mean tracks the deterministic total. Deterministic per seed. *)
