module Tech = Smt_cell.Tech

type verdict = Ok | Too_many_cells of int | Current_exceeded of float

let check tech ~cells ~sustained_ua =
  if cells > tech.Tech.em_cell_limit then Too_many_cells cells
  else if sustained_ua > tech.Tech.em_current_limit then Current_exceeded sustained_ua
  else Ok

let cluster_ok tech ~cells ~sustained_ua =
  match check tech ~cells ~sustained_ua with
  | Ok -> true
  | Too_many_cells _ | Current_exceeded _ -> false

let describe = function
  | Ok -> "ok"
  | Too_many_cells n -> Printf.sprintf "too many cells per switch (%d)" n
  | Current_exceeded c -> Printf.sprintf "sustained current %.1f uA exceeds EM limit" c
