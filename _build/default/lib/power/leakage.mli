(** Standby leakage accounting — the paper's Table 1 "Leakage" rows.

    In standby the MTE signal is asserted: MT-cells are cut from ground and
    leak only a residual plus their (shared or embedded) high-Vth switch;
    plain cells — including every low-Vth cell a Dual-Vth design keeps on
    its critical paths — leak at full rate.  All figures in nW. *)

type breakdown = {
  total : float;
  low_vth_logic : float;  (** plain low-Vth combinational cells *)
  high_vth_logic : float;
  sequential : float;  (** flip-flops (always powered) *)
  mt_residual : float;  (** MT-cell junction/residual leakage *)
  switches : float;  (** standalone footers; embedded ones count in [mt_residual]'s cells *)
  embedded_mt : float;  (** conventional MT-cells (switch+holder inside) *)
  holders : float;
  infrastructure : float;  (** clock tree, MTE buffers and other buffers *)
}

val standby : Smt_netlist.Netlist.t -> breakdown

val active : Smt_netlist.Netlist.t -> float
(** Total leakage with everything powered (active-mode floor). *)

val at_corner : Smt_cell.Corner.t -> Smt_netlist.Netlist.t -> breakdown
(** [standby] scaled to a PVT corner (exponential in temperature, see
    {!Smt_cell.Corner}). *)

val scale : breakdown -> float -> breakdown
(** Multiply every component (corner scaling helper). *)

val pp : Format.formatter -> breakdown -> unit
