(** Electromigration constraints on sleep switches.

    The paper: "The number of MT-cells which share the same switch
    transistor is also cared to prevent the electro-migration."  Two caps
    are enforced per switch: a member-count cap and a sustained-current
    cap. *)

type verdict = Ok | Too_many_cells of int | Current_exceeded of float

val check : Smt_cell.Tech.t -> cells:int -> sustained_ua:float -> verdict

val cluster_ok : Smt_cell.Tech.t -> cells:int -> sustained_ua:float -> bool

val describe : verdict -> string
