module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Rng = Smt_util.Rng
module Stats = Smt_util.Stats

type stats = {
  samples : int;
  mean : float;
  stddev : float;
  p5 : float;
  p50 : float;
  p95 : float;
  deterministic : float;
}

let sample_standby ?(sigma = 0.35) ?(samples = 500) ?(seed = 21) nl =
  let rng = Rng.create seed in
  let leaks =
    List.filter_map
      (fun iid ->
        let l = (Netlist.cell nl iid).Cell.leak_standby in
        if l > 0.0 then Some l else None)
      (Netlist.live_insts nl)
  in
  let deterministic = List.fold_left ( +. ) 0.0 leaks in
  (* lognormal with mean 1: exp(sigma*z - sigma^2/2) *)
  let draw_total () =
    List.fold_left
      (fun acc l ->
        let z = Rng.gaussian rng ~mean:0.0 ~sigma:1.0 in
        acc +. (l *. exp ((sigma *. z) -. (sigma *. sigma /. 2.0))))
      0.0 leaks
  in
  let totals = List.init samples (fun _ -> draw_total ()) in
  {
    samples;
    mean = Stats.mean totals;
    stddev = Stats.stddev totals;
    p5 = Stats.percentile totals 5.0;
    p50 = Stats.percentile totals 50.0;
    p95 = Stats.percentile totals 95.0;
    deterministic;
  }
