(** Dynamic (switching) power estimation.

    The paper's opening sentence: portable appliances care about both
    dynamic power and standby leakage.  Dynamic power is
    [alpha * C * Vdd^2 * f] summed over nets: toggle rates come from the
    activity estimator, capacitance from pin loads plus wires, frequency
    from the flow's clock.  This closes the power story: Selective-MT
    leaves dynamic power essentially untouched (same logic, slightly more
    wire) while crushing the standby component. *)

type estimate = {
  switching_mw : float;  (** net-charging power at the given clock *)
  leakage_mw : float;  (** active-mode leakage floor *)
  total_mw : float;
  clock_mhz : float;
}

val estimate :
  ?activity:Smt_sim.Activity.t ->
  ?wire:Smt_sta.Wire.t ->
  clock_mhz:float ->
  Smt_netlist.Netlist.t ->
  estimate
(** Without a measured activity profile a default toggle rate of 0.15 per
    cycle is assumed; without a wire model, pin loads only. *)
