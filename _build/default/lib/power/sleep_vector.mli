(** Input-vector-dependent standby leakage and sleep-vector selection.

    A CMOS gate's sub-threshold leakage depends on its input state: every
    series transistor that is off adds stack effect and cuts the leakage
    several-fold.  The cells a Selective-MT design leaves powered in
    standby (high-Vth logic, flip-flops) therefore leak by an amount that
    depends on the values frozen at the primary inputs — so the *sleep
    vector* is itself an optimization knob, complementary to the paper's
    technique: gate what you can, and park what you cannot in its least
    leaky state.

    The model: each 0 input multiplies a cell's standby leakage by the
    stack factor (default physics: ~0.75 per off-stack transistor, floored
    at 0.4); X inputs count half. Gated MT-cells are unaffected (their
    leakage is the residual regardless of state). *)

val state_factor : Smt_cell.Func.kind -> Smt_sim.Logic.value list -> float
(** Leakage multiplier for a combinational cell with the given input
    values; 1.0 for sequential/infrastructure kinds. In [0.4, 1.0]. *)

val standby_with_vector :
  ?ff_state:(Smt_netlist.Netlist.inst_id * Smt_sim.Logic.value) list ->
  Smt_netlist.Netlist.t ->
  vector:(string * Smt_sim.Logic.value) list ->
  float
(** Total standby leakage (nW) with the primary inputs frozen at [vector]
    (all inputs not mentioned are held at 0) and flip-flops parked at
    [ff_state] (default all 0, as after a reset); nets settle through a
    standby simulation, so held/floating MT outputs shape the awake cells'
    states. *)

type search = {
  best_vector : (string * Smt_sim.Logic.value) list;
  best_state : (Smt_netlist.Netlist.inst_id * Smt_sim.Logic.value) list;
  best_nw : float;
  worst_nw : float;
  average_nw : float;
  tries : int;
}

val search :
  ?tries:int -> ?seed:int -> ?park_state:bool -> Smt_netlist.Netlist.t -> search
(** Random search (default 64 vectors) over sleep vectors and, with
    [park_state] (default true, the scan-in technique), flip-flop states.
    Deterministic per seed. *)
