(** Combinational cell kinds and their boolean functions. *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nand4
  | Nor2
  | Nor3
  | And2
  | And3
  | Or2
  | Or3
  | Xor2
  | Xnor2
  | Aoi21  (** Z = not ((A and B) or C) *)
  | Oai21  (** Z = not ((A or B) and C) *)
  | Mux2  (** Z = if S then B else A; inputs A, B, S *)
  | Dff  (** ports D, CK -> Q; sequential *)
  | Clkbuf
  | Sleep_switch  (** footer; input MTE, no logic output *)
  | Holder  (** output holder; input MTE, weak pin Z on the held net *)

val all : kind list

val arity : kind -> int
(** Number of logic inputs (0 for [Sleep_switch] and [Holder]; 1 for [Dff],
    its data pin). *)

val input_names : kind -> string array
(** Logic input pin names in evaluation order. [Dff] lists [D] only; its
    clock pin is ["CK"]. *)

val output_names : kind -> string array

val is_sequential : kind -> bool
val is_infrastructure : kind -> bool
(** True for [Sleep_switch] and [Holder] (no data-path logic). *)

val eval : kind -> bool array -> bool
(** Combinational value from input values, in [input_names] order. Raises
    [Invalid_argument] on sequential/infrastructure kinds or arity
    mismatch. *)

val to_string : kind -> string
val of_string : string -> kind option
