(** Standard-cell descriptor: the timing / power / geometry view that the
    rest of the flow consumes.

    The delay model is the classic linear one ([intrinsic + drive * load]);
    loads are in fF, delays in ps, leakage in nW, currents in uA, area in
    um^2.  MT-cells additionally expose the current they draw through the
    virtual ground, which drives sleep-switch sizing. *)

type t = {
  name : string;
  kind : Func.kind;
  vth : Vth.t;  (** threshold flavour of the logic transistors *)
  style : Vth.mt_style;
  area : float;
  input_cap : float;  (** per logic input pin, fF *)
  intrinsic_delay : float;  (** ps (clk->q for flip-flops) *)
  drive_res : float;  (** ps per fF of load *)
  leak_standby : float;  (** nW drawn in standby (MTE asserted for MT) *)
  leak_active : float;  (** nW drawn in active mode *)
  avg_current : float;  (** average active current through ground, uA *)
  peak_current : float;  (** peak simultaneous-switching current, uA *)
  switch_width : float;  (** footer width; 0 unless [Sleep_switch]/embedded *)
  setup : float;  (** ps; 0 for combinational *)
  hold : float;  (** ps; 0 for combinational *)
  drive : int;  (** drive strength (1, 2, 4 = X1/X2/X4); 1 for non-logic *)
}

val delay : t -> load_ff:float -> float
(** Propagation delay into the given load, without bounce derating. *)

val bounce_derate : Tech.t -> bounce_v:float -> float
(** Multiplier [1 + k * bounce/vdd] applied to MT-cell delays when their
    virtual ground bounces by [bounce_v]. *)

val delay_with_bounce : Tech.t -> t -> load_ff:float -> bounce_v:float -> float
(** [delay] derated by bounce when the cell is an MT style; bounce is
    ignored for [Plain] cells. *)

val is_mt : t -> bool
val is_sequential : t -> bool
val output_arity : t -> int

val pp : Format.formatter -> t -> unit
