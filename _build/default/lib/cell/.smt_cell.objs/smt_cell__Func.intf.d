lib/cell/func.mli:
