lib/cell/func.ml: Array List Printf String
