lib/cell/tech.ml: Float
