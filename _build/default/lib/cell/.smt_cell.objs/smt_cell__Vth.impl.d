lib/cell/vth.ml:
