lib/cell/cell.ml: Array Float Format Func Tech Vth
