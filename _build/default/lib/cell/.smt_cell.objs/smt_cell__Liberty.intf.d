lib/cell/liberty.mli: Library
