lib/cell/library.ml: Cell Float Func Hashtbl List Printf String Tech Vth
