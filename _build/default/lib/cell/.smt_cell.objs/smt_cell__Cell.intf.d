lib/cell/cell.mli: Format Func Tech Vth
