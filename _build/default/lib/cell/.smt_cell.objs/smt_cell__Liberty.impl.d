lib/cell/liberty.ml: Array Buffer Cell Fun Func Library List Printf String Vth
