lib/cell/vth.mli:
