lib/cell/tech.mli:
