lib/cell/corner.mli: Format Tech
