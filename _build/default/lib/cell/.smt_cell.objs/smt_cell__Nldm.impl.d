lib/cell/nldm.ml: Array Cell Float Hashtbl Printf
