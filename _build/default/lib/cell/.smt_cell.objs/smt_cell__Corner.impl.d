lib/cell/corner.ml: Format Tech
