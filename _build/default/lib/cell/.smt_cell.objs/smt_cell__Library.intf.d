lib/cell/library.mli: Cell Func Tech Vth
