lib/cell/nldm.mli: Cell
