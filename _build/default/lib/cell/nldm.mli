(** NLDM-style non-linear delay model.

    Commercial libraries characterize each timing arc as a 2-D lookup table
    over (input slew, output load); STA interpolates bilinearly and
    propagates slew.  This module provides the table type plus a
    characterizer that synthesizes tables from this library's linear model
    with the curvature real silicon shows: delay grows logarithmically with
    input slew, output slew is dominated by the drive-resistance/load
    product.

    Indices are clamped at the table edges (no extrapolation blow-ups),
    matching common STA practice. *)

type table = {
  slews : float array;  (** ascending input-slew axis, ps *)
  loads : float array;  (** ascending load axis, fF *)
  values : float array array;  (** [values.(i).(j)] at [slews.(i)], [loads.(j)] *)
}

val lookup : table -> slew:float -> load:float -> float
(** Bilinear interpolation, clamped to the table's corners. *)

val make :
  slews:float array -> loads:float array -> f:(slew:float -> load:float -> float) -> table
(** Tabulate [f] on the given grid. Raises [Invalid_argument] on empty or
    unsorted axes. *)

type arcs = {
  delay : table;
  out_slew : table;
}

val characterize : Cell.t -> arcs
(** Synthesize the cell's tables on the standard grid. *)

type store

val store : unit -> store
(** A memoizing cache of [characterize] keyed by cell name. *)

val arcs_of : store -> Cell.t -> arcs

val default_input_slew : float
(** Slew assumed at primary inputs and flip-flop clock pins, ps. *)
