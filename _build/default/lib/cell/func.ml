type kind =
  | Inv
  | Buf
  | Nand2
  | Nand3
  | Nand4
  | Nor2
  | Nor3
  | And2
  | And3
  | Or2
  | Or3
  | Xor2
  | Xnor2
  | Aoi21
  | Oai21
  | Mux2
  | Dff
  | Clkbuf
  | Sleep_switch
  | Holder

let all =
  [
    Inv; Buf; Nand2; Nand3; Nand4; Nor2; Nor3; And2; And3; Or2; Or3; Xor2;
    Xnor2; Aoi21; Oai21; Mux2; Dff; Clkbuf; Sleep_switch; Holder;
  ]

let arity = function
  | Inv | Buf | Clkbuf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Nand3 | Nor3 | And3 | Or3 | Aoi21 | Oai21 | Mux2 -> 3
  | Nand4 -> 4
  | Dff -> 1
  | Sleep_switch | Holder -> 0

let input_names = function
  | Inv | Buf | Clkbuf -> [| "A" |]
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> [| "A"; "B" |]
  | Nand3 | Nor3 | And3 | Or3 -> [| "A"; "B"; "C" |]
  | Nand4 -> [| "A"; "B"; "C"; "D" |]
  | Aoi21 | Oai21 -> [| "A"; "B"; "C" |]
  | Mux2 -> [| "A"; "B"; "S" |]
  | Dff -> [| "D" |]
  | Sleep_switch | Holder -> [||]

let output_names = function
  | Dff -> [| "Q" |]
  | Sleep_switch -> [||]
  | Holder -> [||]
  | Inv | Buf | Clkbuf | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | And2 | And3
  | Or2 | Or3 | Xor2 | Xnor2 | Aoi21 | Oai21 | Mux2 ->
    [| "Z" |]

let is_sequential = function
  | Dff -> true
  | Inv | Buf | Clkbuf | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | And2 | And3
  | Or2 | Or3 | Xor2 | Xnor2 | Aoi21 | Oai21 | Mux2 | Sleep_switch | Holder ->
    false

let is_infrastructure = function
  | Sleep_switch | Holder -> true
  | Inv | Buf | Clkbuf | Nand2 | Nand3 | Nand4 | Nor2 | Nor3 | And2 | And3
  | Or2 | Or3 | Xor2 | Xnor2 | Aoi21 | Oai21 | Mux2 | Dff ->
    false

let eval kind inputs =
  let need n =
    if Array.length inputs <> n then
      invalid_arg
        (Printf.sprintf "Func.eval: %d inputs given, %d expected" (Array.length inputs) n)
  in
  match kind with
  | Inv -> need 1; not inputs.(0)
  | Buf | Clkbuf -> need 1; inputs.(0)
  | Nand2 -> need 2; not (inputs.(0) && inputs.(1))
  | Nand3 -> need 3; not (inputs.(0) && inputs.(1) && inputs.(2))
  | Nand4 -> need 4; not (inputs.(0) && inputs.(1) && inputs.(2) && inputs.(3))
  | Nor2 -> need 2; not (inputs.(0) || inputs.(1))
  | Nor3 -> need 3; not (inputs.(0) || inputs.(1) || inputs.(2))
  | And2 -> need 2; inputs.(0) && inputs.(1)
  | And3 -> need 3; inputs.(0) && inputs.(1) && inputs.(2)
  | Or2 -> need 2; inputs.(0) || inputs.(1)
  | Or3 -> need 3; inputs.(0) || inputs.(1) || inputs.(2)
  | Xor2 -> need 2; inputs.(0) <> inputs.(1)
  | Xnor2 -> need 2; inputs.(0) = inputs.(1)
  | Aoi21 -> need 3; not ((inputs.(0) && inputs.(1)) || inputs.(2))
  | Oai21 -> need 3; not ((inputs.(0) || inputs.(1)) && inputs.(2))
  | Mux2 -> need 3; if inputs.(2) then inputs.(1) else inputs.(0)
  | Dff -> invalid_arg "Func.eval: Dff is sequential"
  | Sleep_switch -> invalid_arg "Func.eval: Sleep_switch has no logic function"
  | Holder -> invalid_arg "Func.eval: Holder has no logic function"

let to_string = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nand3 -> "NAND3"
  | Nand4 -> "NAND4"
  | Nor2 -> "NOR2"
  | Nor3 -> "NOR3"
  | And2 -> "AND2"
  | And3 -> "AND3"
  | Or2 -> "OR2"
  | Or3 -> "OR3"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"
  | Mux2 -> "MUX2"
  | Dff -> "DFF"
  | Clkbuf -> "CLKBUF"
  | Sleep_switch -> "SWITCH"
  | Holder -> "HOLDER"

let of_string s =
  let canon = String.uppercase_ascii s in
  List.find_opt (fun k -> String.equal (to_string k) canon) all
