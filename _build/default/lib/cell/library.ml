type t = {
  tech : Tech.t;
  table : (string, Cell.t) Hashtbl.t;
}

let tech t = t.tech

(* Low-Vth base characterization per kind:
   (area um^2, input cap fF, intrinsic ps, drive ps/fF, leak nW, avg uA, peak uA) *)
let base_params kind =
  match (kind : Func.kind) with
  | Inv -> (2.0, 1.6, 10.0, 0.90, 12.0, 0.8, 5.0)
  | Buf -> (3.0, 1.6, 16.0, 0.70, 14.0, 0.9, 5.5)
  | Nand2 -> (4.0, 2.0, 14.0, 1.00, 20.0, 1.1, 7.0)
  | Nand3 -> (5.2, 2.2, 17.0, 1.15, 26.0, 1.3, 8.0)
  | Nand4 -> (6.4, 2.4, 20.0, 1.30, 32.0, 1.5, 9.0)
  | Nor2 -> (4.2, 2.1, 15.0, 1.10, 21.0, 1.1, 7.0)
  | Nor3 -> (5.6, 2.3, 19.0, 1.30, 27.0, 1.3, 8.0)
  | And2 -> (4.8, 2.0, 18.0, 0.95, 22.0, 1.2, 7.0)
  | And3 -> (6.0, 2.2, 21.0, 1.05, 28.0, 1.4, 8.0)
  | Or2 -> (5.0, 2.1, 19.0, 1.00, 23.0, 1.2, 7.0)
  | Or3 -> (6.2, 2.3, 22.0, 1.10, 29.0, 1.4, 8.0)
  | Xor2 -> (7.5, 2.6, 24.0, 1.20, 34.0, 1.8, 10.0)
  | Xnor2 -> (7.5, 2.6, 24.0, 1.20, 34.0, 1.8, 10.0)
  | Aoi21 -> (5.4, 2.2, 18.0, 1.15, 26.0, 1.3, 8.0)
  | Oai21 -> (5.4, 2.2, 18.0, 1.15, 26.0, 1.3, 8.0)
  | Mux2 -> (7.0, 2.4, 22.0, 1.10, 32.0, 1.6, 9.0)
  | Dff -> (18.0, 2.8, 45.0, 1.00, 55.0, 2.5, 12.0)
  | Clkbuf -> (4.5, 2.0, 14.0, 0.60, 18.0, 2.0, 10.0)
  | Sleep_switch -> (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
  | Holder -> (1.6, 1.0, 0.0, 0.0, 0.25, 0.05, 0.2)

(* Derating of the low-Vth base into the other flavours. *)
let hv_delay_factor = 1.45
let hv_drive_factor = 1.35
let hv_leak_factor = 0.02
let hv_current_factor = 0.8
let mt_delay_factor = 1.06
let mt_drive_factor = 1.08
let mt_area_factor = 1.12
let mt_residual_leak_factor = 0.01

(* A library's embedded footer is sized once for worst-case simultaneous
   switching across PVT, with no knowledge of the instance's real activity:
   it carries a guardband a shared, activity-sized footer does not need. *)
let embedded_switch_guardband = 1.6

let comb_kinds : Func.kind list =
  [
    Func.Inv; Func.Buf; Func.Nand2; Func.Nand3; Func.Nand4; Func.Nor2;
    Func.Nor3; Func.And2; Func.And3; Func.Or2; Func.Or3; Func.Xor2;
    Func.Xnor2; Func.Aoi21; Func.Oai21; Func.Mux2;
  ]

let drives = [ 1; 2; 4 ]

let variant_name ?(drive = 1) kind (vth : Vth.t) (style : Vth.mt_style) =
  let suffix =
    match (style, vth) with
    | Vth.Plain, Vth.Low -> "LVT"
    | Vth.Plain, Vth.High -> "HVT"
    | Vth.Mt_embedded, _ -> "MTE"
    | Vth.Mt_no_vgnd, _ -> "MTN"
    | Vth.Mt_vgnd, _ -> "MTV"
  in
  let size = if drive = 1 then "" else Printf.sprintf "_X%d" drive in
  Func.to_string kind ^ "_" ^ suffix ^ size

let dff_setup = 30.0
let dff_hold = 15.0

let make_variant ?(drive = 1) tech kind (vth : Vth.t) (style : Vth.mt_style) : Cell.t =
  let area, cap, intr, drive_res, leak_lv, avg, peak = base_params kind in
  (* A stronger gate is wider transistors throughout: proportionally more
     area, pin capacitance, leakage, and current; proportionally less
     output resistance. *)
  let s = float_of_int drive in
  let area = area *. s
  and cap = cap *. s
  and drive_res = drive_res /. s
  and leak_lv = leak_lv *. s
  and avg = avg *. s
  and peak = peak *. s in
  let seq = Func.is_sequential kind in
  let setup = if seq then dff_setup else 0.0 in
  let hold = if seq then dff_hold else 0.0 in
  let base : Cell.t =
    {
      Cell.name = variant_name ~drive kind vth style;
      kind;
      vth;
      style;
      area;
      input_cap = cap;
      intrinsic_delay = intr;
      drive_res;
      leak_standby = leak_lv;
      leak_active = leak_lv;
      avg_current = avg;
      peak_current = peak;
      switch_width = 0.0;
      setup;
      hold;
      drive;
    }
  in
  match (style, vth) with
  | Vth.Plain, Vth.Low -> base
  | Vth.Plain, Vth.High ->
    {
      base with
      Cell.intrinsic_delay = intr *. hv_delay_factor;
      drive_res = drive_res *. hv_drive_factor;
      leak_standby = leak_lv *. hv_leak_factor;
      leak_active = leak_lv *. hv_leak_factor;
      avg_current = avg *. hv_current_factor;
      peak_current = peak *. hv_current_factor;
    }
  | (Vth.Mt_no_vgnd | Vth.Mt_vgnd), _ ->
    (* Low-Vth logic over a shared (external) footer: the cell itself keeps
       only a residual standby leakage; the footer is accounted per cluster. *)
    {
      base with
      Cell.intrinsic_delay = intr *. mt_delay_factor;
      drive_res = drive_res *. mt_drive_factor;
      area = area *. mt_area_factor;
      leak_standby = leak_lv *. mt_residual_leak_factor;
    }
  | Vth.Mt_embedded, _ ->
    (* Conventional MT-cell: private footer sized for this cell's own peak
       current at the technology bounce limit, plus a private holder. *)
    let w =
      Tech.width_for_bounce tech ~current_ua:peak ~limit_v:tech.Tech.bounce_limit
      *. embedded_switch_guardband
    in
    let holder_area, _, _, _, holder_leak, _, _ = base_params Func.Holder in
    {
      base with
      Cell.intrinsic_delay = intr *. mt_delay_factor;
      drive_res = drive_res *. mt_drive_factor;
      area = (area *. mt_area_factor) +. Tech.switch_area tech ~width:w +. holder_area;
      leak_standby =
        (leak_lv *. mt_residual_leak_factor)
        +. Tech.switch_leakage tech ~width:w +. holder_leak;
      switch_width = w;
    }

let add t cell = Hashtbl.replace t.table cell.Cell.name cell

let quantize_width w = Float.round (w *. 10.0) /. 10.0

(* Width is quantized to tenths; encode 4.2 as "SW_W4p2" so the name stays a
   plain identifier in netlist dumps. *)
let switch_name w =
  let tenths = int_of_float (Float.round (w *. 10.0)) in
  Printf.sprintf "SW_W%dp%d" (tenths / 10) (tenths mod 10)

let make_switch tech ~width : Cell.t =
  let width = Float.max 0.1 (quantize_width width) in
  {
    Cell.name = switch_name width;
    kind = Func.Sleep_switch;
    vth = Vth.High;
    style = Vth.Plain;
    area = Tech.switch_area tech ~width;
    input_cap = tech.Tech.switch_input_cap *. width;
    intrinsic_delay = 0.0;
    drive_res = 0.0;
    leak_standby = Tech.switch_leakage tech ~width;
    leak_active = Tech.switch_leakage tech ~width;
    avg_current = 0.0;
    peak_current = 0.0;
    switch_width = width;
    setup = 0.0;
    hold = 0.0;
    drive = 1;
  }

let make_holder () : Cell.t =
  let area, cap, _, _, leak, avg, peak = base_params Func.Holder in
  {
    Cell.name = "HOLDER";
    kind = Func.Holder;
    vth = Vth.High;
    style = Vth.Plain;
    area;
    input_cap = cap;
    intrinsic_delay = 0.0;
    drive_res = 0.0;
    leak_standby = leak;
    leak_active = leak;
    avg_current = avg;
    peak_current = peak;
    switch_width = 0.0;
    setup = 0.0;
    hold = 0.0;
    drive = 1;
  }

let retention_name = "DFF_RET"

let make_retention tech : Cell.t =
  let base = make_variant tech Func.Dff Vth.Low Vth.Plain in
  {
    base with
    Cell.name = retention_name;
    area = base.Cell.area *. 1.35;
    intrinsic_delay = base.Cell.intrinsic_delay *. 1.12;
    setup = base.Cell.setup *. 1.10;
    leak_standby = 0.45;
    (* active leakage stays at the low-Vth level: the shadow latch only
       matters in standby *)
  }

let default ?(tech = Tech.default) () =
  let t = { tech; table = Hashtbl.create 97 } in
  let add_kind kind =
    List.iter
      (fun drive ->
        add t (make_variant ~drive tech kind Vth.Low Vth.Plain);
        add t (make_variant ~drive tech kind Vth.High Vth.Plain);
        (* MT logic is always low-Vth (that is what makes it fast); one name
           per MT style regardless of the requested vth. *)
        add t (make_variant ~drive tech kind Vth.Low Vth.Mt_embedded);
        add t (make_variant ~drive tech kind Vth.Low Vth.Mt_no_vgnd);
        add t (make_variant ~drive tech kind Vth.Low Vth.Mt_vgnd))
      drives
  in
  List.iter add_kind comb_kinds;
  add t (make_variant tech Func.Dff Vth.Low Vth.Plain);
  add t (make_variant tech Func.Dff Vth.High Vth.Plain);
  add t (make_variant tech Func.Clkbuf Vth.Low Vth.Plain);
  add t (make_variant tech Func.Clkbuf Vth.High Vth.Plain);
  add t (make_holder ());
  add t (make_retention tech);
  t

let find t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> c
  | None -> raise Not_found

let find_opt t name = Hashtbl.find_opt t.table name

let variant ?drive t kind vth style = find t (variant_name ?drive kind vth style)

let has_variant ?drive t kind vth style =
  Hashtbl.mem t.table (variant_name ?drive kind vth style)

let restyle t cell vth style = variant ~drive:cell.Cell.drive t cell.Cell.kind vth style

let resize t cell drive = variant ~drive t cell.Cell.kind cell.Cell.vth cell.Cell.style

let switch t ~width =
  let width = Float.max 0.1 (quantize_width width) in
  let name = switch_name width in
  match Hashtbl.find_opt t.table name with
  | Some c -> c
  | None ->
    let c = make_switch t.tech ~width in
    add t c;
    c

let holder t = find t "HOLDER"

let retention_dff t = find t retention_name

let is_retention (cell : Cell.t) = String.equal cell.Cell.name retention_name

let mte_buffer t = variant t Func.Buf Vth.High Vth.Plain

(* Clock, MTE, and ECO buffers are high-Vth: they are not on constrained
   data paths and must not leak through standby. *)
let clock_buffer t = find t (variant_name Func.Clkbuf Vth.High Vth.Plain)

let hold_buffer t = variant t Func.Buf Vth.High Vth.Plain

let cells t = Hashtbl.fold (fun _ c acc -> c :: acc) t.table []
