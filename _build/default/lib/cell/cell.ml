type t = {
  name : string;
  kind : Func.kind;
  vth : Vth.t;
  style : Vth.mt_style;
  area : float;
  input_cap : float;
  intrinsic_delay : float;
  drive_res : float;
  leak_standby : float;
  leak_active : float;
  avg_current : float;
  peak_current : float;
  switch_width : float;
  setup : float;
  hold : float;
  drive : int;
}

let delay t ~load_ff = t.intrinsic_delay +. (t.drive_res *. load_ff)

let bounce_derate (tech : Tech.t) ~bounce_v =
  1.0 +. (tech.Tech.bounce_delay_factor *. Float.max 0.0 bounce_v /. tech.Tech.vdd)

let is_mt t = Vth.is_mt t.style

let delay_with_bounce tech t ~load_ff ~bounce_v =
  let base = delay t ~load_ff in
  if is_mt t then base *. bounce_derate tech ~bounce_v else base

let is_sequential t = Func.is_sequential t.kind

let output_arity t = Array.length (Func.output_names t.kind)

let pp fmt t =
  Format.fprintf fmt "%s(%s,%s,%s area=%.2f leak_stby=%.2f)" t.name
    (Func.to_string t.kind) (Vth.to_string t.vth)
    (Vth.style_to_string t.style) t.area t.leak_standby
