(** The default cell library with all Vth / MT variants.

    Derivation rules from the low-Vth base characterization:
    - high-Vth: ~45% more intrinsic delay, ~35% weaker drive, 5% of the
      leakage (the 20:1 low/high leakage ratio the Dual-Vth literature
      assumes), same footprint;
    - MT (VGND style): low-Vth logic in series with the shared footer:
      small delay penalty, 12% area for the VGND port, standby leakage
      reduced to a residual (the footer itself is accounted per cluster);
    - MT (embedded style, conventional Selective-MT): the VGND variant plus
      a private footer sized for the cell's own peak current at the
      technology bounce limit, plus a private output holder — which is why
      conventional MT-cells are so much larger;
    - the MT-no-VGND variant is electrically the VGND variant but with no
      VGND port definition, used between replacement and switch insertion
      exactly as in the paper's flow. *)

type t

val default : ?tech:Tech.t -> unit -> t
(** Build the library for a technology ([Tech.default] if omitted). *)

val tech : t -> Tech.t

val find : t -> string -> Cell.t
(** Lookup by cell name. Raises [Not_found]. *)

val find_opt : t -> string -> Cell.t option

val variant : ?drive:int -> t -> Func.kind -> Vth.t -> Vth.mt_style -> Cell.t
(** The library cell implementing [kind] in the given flavour and drive
    strength (default X1; combinational kinds also come as X2 and X4).
    Raises [Not_found] for combinations the library does not provide
    (e.g. MT flip-flops: state-holding cells stay on the true rails). *)

val has_variant : ?drive:int -> t -> Func.kind -> Vth.t -> Vth.mt_style -> bool

val restyle : t -> Cell.t -> Vth.t -> Vth.mt_style -> Cell.t
(** Same logic function and drive strength, different flavour. Raises
    [Not_found]. *)

val resize : t -> Cell.t -> int -> Cell.t
(** Same logic function and flavour, different drive strength. Raises
    [Not_found] when that strength does not exist. *)

val drives : int list
(** Available drive strengths, ascending. *)

val switch : t -> width:float -> Cell.t
(** A sleep-switch (footer) cell of the given width, created on demand and
    cached; widths are quantized to 0.1. *)

val holder : t -> Cell.t
(** The output-holder cell. *)

val retention_dff : t -> Cell.t
(** A state-retention flip-flop ("balloon" style): low-Vth master/slave for
    speed plus a high-Vth shadow latch that keeps the state through
    standby.  Slightly slower and ~30% larger than the plain flip-flop, but
    its standby leakage is two orders of magnitude below the low-Vth
    flip-flop's — the knob that attacks the sequential leakage floor the
    Selective-MT style cannot touch. *)

val is_retention : Cell.t -> bool

val mte_buffer : t -> Cell.t
(** Buffer used to build the MTE enable tree (high-Vth: it must not leak). *)

val clock_buffer : t -> Cell.t

val hold_buffer : t -> Cell.t
(** Delay buffer inserted by the hold-fixing ECO. *)

val cells : t -> Cell.t list
(** All cells currently in the library (sized switches included). *)

val comb_kinds : Func.kind list
(** The combinational kinds the generators may instantiate. *)
