type t = {
  vdd : float;
  wire_r_per_um : float;
  wire_c_per_um : float;
  switch_r_width : float;
  switch_area_per_width : float;
  switch_leak_per_width : float;
  switch_input_cap : float;
  bounce_delay_factor : float;
  bounce_limit : float;
  vgnd_length_limit : float;
  em_cell_limit : int;
  em_current_limit : float;
  rc_estimation_error : float;
  row_height : float;
  mte_max_fanout : int;
  hold_margin : float;
}

let default =
  {
    vdd = 1.2;
    wire_r_per_um = 0.8;
    wire_c_per_um = 0.2;
    switch_r_width = 60_000.0;
    switch_area_per_width = 0.9;
    switch_leak_per_width = 0.25;
    switch_input_cap = 1.1;
    bounce_delay_factor = 1.0;
    bounce_limit = 0.10;
    vgnd_length_limit = 120.0;
    em_cell_limit = 24;
    em_current_limit = 120.0;
    rc_estimation_error = 0.25;
    row_height = 2.0;
    mte_max_fanout = 12;
    hold_margin = 0.0;
  }

let switch_resistance t ~width =
  if width <= 0.0 then invalid_arg "Tech.switch_resistance: width must be positive";
  t.switch_r_width /. width

let switch_area t ~width = t.switch_area_per_width *. width
let switch_leakage t ~width = t.switch_leak_per_width *. width

let width_for_bounce t ~current_ua ~limit_v =
  if limit_v <= 0.0 then invalid_arg "Tech.width_for_bounce: limit must be positive";
  if current_ua <= 0.0 then 0.1
  else
    (* bounce = I * R = I * r_width / W  =>  W = I * r_width / limit *)
    let amps = current_ua *. 1e-6 in
    Float.max 0.1 (amps *. t.switch_r_width /. limit_v)
