(** Technology constants for the simulated process.

    The values are calibrated to a 90nm-class low-power process so that the
    qualitative relations the paper relies on hold: low-Vth cells are ~1.4x
    faster and ~20x leakier than high-Vth cells; a high-Vth footer switch in
    series costs a few percent of delay plus an IR bounce on the virtual
    ground; switch on-resistance, area, and leakage all scale with width. *)

type t = {
  vdd : float;  (** supply voltage, V *)
  wire_r_per_um : float;  (** wire resistance, ohm/um *)
  wire_c_per_um : float;  (** wire capacitance, fF/um *)
  switch_r_width : float;  (** footer on-resistance = this / width, ohm *)
  switch_area_per_width : float;  (** footer area per unit width, um^2 *)
  switch_leak_per_width : float;  (** footer standby leakage per width, nW *)
  switch_input_cap : float;  (** MTE pin cap of a unit-width footer, fF *)
  bounce_delay_factor : float;
      (** data-path delay multiplier is [1 + factor * bounce/vdd] *)
  bounce_limit : float;  (** designer's VGND bounce upper limit, V *)
  vgnd_length_limit : float;  (** crosstalk cap on VGND line length, um *)
  em_cell_limit : int;  (** electromigration cap on cells per switch *)
  em_current_limit : float;  (** max current through one switch, uA *)
  rc_estimation_error : float;
      (** relative error bound of pre-route RC estimates vs extraction *)
  row_height : float;  (** placement row height, um *)
  mte_max_fanout : int;  (** max fanout per buffer on the MTE net *)
  hold_margin : float;  (** required hold slack, ps *)
}

val default : t
(** The calibrated process used throughout the experiments. *)

val switch_resistance : t -> width:float -> float
(** On-resistance (ohm) of a footer of the given width. *)

val switch_area : t -> width:float -> float
val switch_leakage : t -> width:float -> float

val width_for_bounce : t -> current_ua:float -> limit_v:float -> float
(** Minimum footer width such that [current * R(width) <= limit], given the
    current in microamperes.  Raises [Invalid_argument] if the limit is not
    positive. *)
