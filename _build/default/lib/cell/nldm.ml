type table = {
  slews : float array;
  loads : float array;
  values : float array array;
}

let check_axis name axis =
  if Array.length axis = 0 then invalid_arg (Printf.sprintf "Nldm: empty %s axis" name);
  for i = 1 to Array.length axis - 1 do
    if axis.(i) <= axis.(i - 1) then
      invalid_arg (Printf.sprintf "Nldm: %s axis not strictly ascending" name)
  done

let make ~slews ~loads ~f =
  check_axis "slew" slews;
  check_axis "load" loads;
  let values =
    Array.map (fun s -> Array.map (fun l -> f ~slew:s ~load:l) loads) slews
  in
  { slews; loads; values }

(* Index of the cell below x, clamped so that [i, i+1] is always valid;
   returns the interpolation fraction too (clamped to [0,1]). *)
let locate axis x =
  let n = Array.length axis in
  if n = 1 then (0, 0.0)
  else begin
    let rec search i = if i < n - 1 && axis.(i + 1) < x then search (i + 1) else i in
    let i = min (search 0) (n - 2) in
    let x0 = axis.(i) and x1 = axis.(i + 1) in
    let frac = (x -. x0) /. (x1 -. x0) in
    (i, Float.max 0.0 (Float.min 1.0 frac))
  end

let lookup t ~slew ~load =
  let i, fs = locate t.slews slew in
  let j, fl = locate t.loads load in
  let at i j =
    let i = min i (Array.length t.slews - 1) and j = min j (Array.length t.loads - 1) in
    t.values.(i).(j)
  in
  let v00 = at i j and v01 = at i (j + 1) and v10 = at (i + 1) j and v11 = at (i + 1) (j + 1) in
  let lo = v00 +. (fl *. (v01 -. v00)) in
  let hi = v10 +. (fl *. (v11 -. v10)) in
  lo +. (fs *. (hi -. lo))

type arcs = {
  delay : table;
  out_slew : table;
}

let grid_slews = [| 5.0; 20.0; 50.0; 100.0; 200.0 |]
let grid_loads = [| 1.0; 4.0; 10.0; 25.0; 60.0 |]

let default_input_slew = 20.0

(* Curvature on top of the linear model: a slow input edge adds delay
   (roughly logarithmically saturating), and the output edge rate follows
   the drive-resistance x load time constant plus a floor. *)
let characterize (cell : Cell.t) =
  let delay ~slew ~load =
    Cell.delay cell ~load_ff:load
    +. (0.12 *. cell.Cell.intrinsic_delay *. log (1.0 +. (slew /. 40.0)))
  in
  let out_slew ~slew ~load =
    let driven = (0.9 *. cell.Cell.drive_res *. load) +. (0.4 *. cell.Cell.intrinsic_delay) in
    (* a fraction of a very slow input edge leaks through *)
    driven +. (0.1 *. slew)
  in
  {
    delay = make ~slews:grid_slews ~loads:grid_loads ~f:delay;
    out_slew = make ~slews:grid_slews ~loads:grid_loads ~f:out_slew;
  }

type store = (string, arcs) Hashtbl.t

let store () : store = Hashtbl.create 97

let arcs_of store cell =
  match Hashtbl.find_opt store cell.Cell.name with
  | Some arcs -> arcs
  | None ->
    let arcs = characterize cell in
    Hashtbl.add store cell.Cell.name arcs;
    arcs
