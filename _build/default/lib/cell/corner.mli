(** Process / voltage / temperature corners.

    Sub-threshold leakage is the paper's whole subject, and it is fiercely
    PVT-dependent: exponential in temperature and threshold shift, roughly
    linear in supply.  This module scales the typical-corner library values
    so experiments can report leakage and timing across corners — the
    "leakage vs temperature" curves every MTCMOS evaluation shows.

    Model: leakage multiplies by [exp ((T - 25) / T0)] with T0 = 35C
    (about 2x per 25C, the usual rule of thumb), by a process factor
    (slow 0.5x, fast 2.5x — fast silicon has lower Vth), and by the supply
    ratio cubed (DIBL); delay multiplies by the inverse process speed and a
    mild temperature slope. *)

type process = Slow | Typical | Fast

type t = {
  process : process;
  temperature_c : float;
  vdd : float;
}

val typical : Tech.t -> t
(** TT, 25C, nominal supply. *)

val make : ?process:process -> ?temperature_c:float -> ?vdd:float -> Tech.t -> t

val leakage_factor : Tech.t -> t -> float
(** Multiplier on standby/active leakage (1.0 at [typical]). *)

val delay_factor : Tech.t -> t -> float
(** Multiplier on cell delays (1.0 at [typical]). *)

val process_name : process -> string

val pp : Format.formatter -> t -> unit
