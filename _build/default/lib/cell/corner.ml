type process = Slow | Typical | Fast

type t = {
  process : process;
  temperature_c : float;
  vdd : float;
}

let typical (tech : Tech.t) = { process = Typical; temperature_c = 25.0; vdd = tech.Tech.vdd }

let make ?(process = Typical) ?(temperature_c = 25.0) ?vdd tech =
  let vdd = match vdd with Some v -> v | None -> tech.Tech.vdd in
  { process; temperature_c; vdd }

let process_leak_factor = function Slow -> 0.5 | Typical -> 1.0 | Fast -> 2.5
let process_speed_factor = function Slow -> 1.15 | Typical -> 1.0 | Fast -> 0.9

let leakage_factor (tech : Tech.t) t =
  let thermal = exp ((t.temperature_c -. 25.0) /. 35.0) in
  let supply = (t.vdd /. tech.Tech.vdd) ** 3.0 in
  process_leak_factor t.process *. thermal *. supply

let delay_factor (tech : Tech.t) t =
  (* hotter and lower-supply silicon is slower; a mild linear model *)
  let thermal = 1.0 +. (0.0012 *. (t.temperature_c -. 25.0)) in
  let supply = tech.Tech.vdd /. t.vdd in
  process_speed_factor t.process *. thermal *. supply

let process_name = function Slow -> "SS" | Typical -> "TT" | Fast -> "FF"

let pp fmt t =
  Format.fprintf fmt "%s/%.0fC/%.2fV" (process_name t.process) t.temperature_c t.vdd
