type t = Low | High

type mt_style = Plain | Mt_embedded | Mt_no_vgnd | Mt_vgnd

let to_string = function Low -> "low-vth" | High -> "high-vth"

let style_to_string = function
  | Plain -> "plain"
  | Mt_embedded -> "mt-embedded"
  | Mt_no_vgnd -> "mt-no-vgnd"
  | Mt_vgnd -> "mt-vgnd"

let is_mt = function
  | Plain -> false
  | Mt_embedded | Mt_no_vgnd | Mt_vgnd -> true

let equal a b = match (a, b) with
  | Low, Low | High, High -> true
  | Low, High | High, Low -> false

let style_equal a b =
  match (a, b) with
  | Plain, Plain | Mt_embedded, Mt_embedded | Mt_no_vgnd, Mt_no_vgnd | Mt_vgnd, Mt_vgnd ->
    true
  | (Plain | Mt_embedded | Mt_no_vgnd | Mt_vgnd), _ -> false
