(** Threshold-voltage flavour and multi-threshold style of a cell.

    The paper's taxonomy (its Fig. 1):
    - a {e low-Vth} cell is fast and leaky;
    - a {e high-Vth} cell is slow and tight;
    - an {e MT-cell} has low-Vth logic gated by a high-Vth switch, either
      embedded per-cell with its own output holder (conventional
      Selective-MT, Fig. 1a) or exposed through a VGND port so that plural
      cells share one switch (improved Selective-MT, Fig. 1b).  During the
      replacement stage the flow uses an MT-cell {e without} the VGND port
      definition, since the switch does not exist yet. *)

type t = Low | High

type mt_style =
  | Plain  (** ordinary cell, directly on the ground rail *)
  | Mt_embedded  (** conventional MT-cell: own switch + output holder inside *)
  | Mt_no_vgnd  (** improved MT-cell as used before switch insertion *)
  | Mt_vgnd  (** improved MT-cell with VGND port, switch shared externally *)

val to_string : t -> string
val style_to_string : mt_style -> string

val is_mt : mt_style -> bool
(** True for every MT style (embedded or VGND, with or without port). *)

val equal : t -> t -> bool
val style_equal : mt_style -> mt_style -> bool
