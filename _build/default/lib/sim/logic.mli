(** Three-valued logic: 0, 1, and X (unknown / floating).

    X models the floating output of an MT-cell in standby before an output
    holder is attached — exactly the "unexpected power" hazard the paper's
    holders exist to prevent. Evaluation is exact: an output is X only if
    the two completions of the X inputs disagree. *)

type value = F | T | X

val of_bool : bool -> value
val to_bool_opt : value -> bool option
val to_char : value -> char
val equal : value -> value -> bool

val eval : Smt_cell.Func.kind -> value array -> value
(** X-aware evaluation of a combinational kind. Raises like
    [Func.eval] on bad arity / non-combinational kinds. *)
