(** Switching-activity estimation by random simulation.

    The clustering optimizer sizes each shared sleep switch for the cluster's
    simultaneous switching current; per-cell toggle rates measured here give
    the diversity factor that makes shared switches cheaper than the
    worst-case per-cell footers embedded in conventional MT-cells. *)

type t = {
  toggles_per_cycle : float array;  (** indexed by instance id; 0..1 *)
  cycles : int;
}

val estimate : ?cycles:int -> ?seed:int -> Smt_netlist.Netlist.t -> t
(** Random primary-input sequences; counts output toggles per instance. *)

val factor : t -> Smt_netlist.Netlist.inst_id -> float
(** Toggle probability of the instance's output per cycle (0 for
    instances with no output, e.g. switches). *)

val average : t -> float
