module Netlist = Smt_netlist.Netlist
module Rng = Smt_util.Rng

type t = {
  toggles_per_cycle : float array;
  cycles : int;
}

let estimate ?(cycles = 200) ?(seed = 7) nl =
  let sim = Simulator.create nl in
  let rng = Rng.create seed in
  let n = Netlist.inst_count nl in
  let toggles = Array.make n 0 in
  let last = Array.make n Logic.X in
  let names =
    Netlist.inputs nl
    |> List.filter (fun (_, nid) -> not (Netlist.is_clock_net nl nid))
    |> List.map fst
  in
  Simulator.reset sim;
  for cycle = 0 to cycles - 1 do
    let vector = List.map (fun name -> (name, Logic.of_bool (Rng.bool rng))) names in
    Simulator.set_inputs sim vector;
    Simulator.propagate sim;
    Netlist.iter_insts nl (fun iid ->
        match Netlist.output_net nl iid with
        | None -> ()
        | Some out ->
          let v = Simulator.value sim out in
          if cycle > 0 && (not (Logic.equal v last.(iid))) then
            toggles.(iid) <- toggles.(iid) + 1;
          last.(iid) <- v);
    Simulator.clock_edge sim
  done;
  let denom = float_of_int (max 1 (cycles - 1)) in
  { toggles_per_cycle = Array.map (fun c -> float_of_int c /. denom) toggles; cycles }

let factor t iid =
  if iid < Array.length t.toggles_per_cycle then t.toggles_per_cycle.(iid) else 0.0

let average t =
  let n = Array.length t.toggles_per_cycle in
  if n = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 t.toggles_per_cycle /. float_of_int n
