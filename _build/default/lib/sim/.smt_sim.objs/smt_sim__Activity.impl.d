lib/sim/activity.ml: Array List Logic Simulator Smt_netlist Smt_util
