lib/sim/vcd.ml: Array Buffer Char Fun Hashtbl List Logic Printf Simulator Smt_netlist String
