lib/sim/logic.mli: Smt_cell
