lib/sim/equiv.ml: List Logic Simulator Smt_cell Smt_netlist Smt_util
