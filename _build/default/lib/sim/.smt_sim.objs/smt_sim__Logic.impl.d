lib/sim/logic.ml: Array Bool List Smt_cell
