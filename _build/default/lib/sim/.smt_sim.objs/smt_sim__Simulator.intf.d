lib/sim/simulator.mli: Logic Smt_netlist
