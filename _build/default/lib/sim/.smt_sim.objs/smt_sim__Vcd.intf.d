lib/sim/vcd.mli: Simulator Smt_netlist
