lib/sim/equiv.mli: Logic Smt_netlist
