lib/sim/simulator.ml: Array Hashtbl List Logic Printf Smt_cell Smt_netlist
