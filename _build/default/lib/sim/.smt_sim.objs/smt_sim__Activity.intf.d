lib/sim/activity.mli: Smt_netlist
