(** Functional equivalence checking by simulation.

    The paper asserts that the conventional (Fig. 2) and improved (Fig. 3)
    Selective-MT circuits are equivalent; the MT transformations must not
    change logic.  Two netlists are compared over their common primary
    interface: exhaustively when the input space is small, otherwise with
    seeded random sequences (flip-flop state included via multi-cycle
    runs). *)

type result = Equivalent | Mismatch of { vector : (string * Logic.value) list; output : string }

val check :
  ?cycles:int ->
  ?vectors:int ->
  ?seed:int ->
  Smt_netlist.Netlist.t ->
  Smt_netlist.Netlist.t ->
  result
(** [check a b] drives both netlists with identical input sequences and
    compares primary outputs after each cycle.  Raises [Invalid_argument]
    when the primary interfaces differ. Defaults: 8 cycles per sequence,
    256 random sequences (or exhaustive single-cycle when there are at most
    12 non-clock inputs and no flip-flops). *)

val equivalent : ?cycles:int -> ?vectors:int -> ?seed:int -> Smt_netlist.Netlist.t -> Smt_netlist.Netlist.t -> bool
