module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func

type mode = Active | Standby

type t = {
  nl : Netlist.t;
  order : Netlist.inst_id list;
  values : Logic.value array;  (* indexed by net id *)
  ff_q : (Netlist.inst_id, Logic.value) Hashtbl.t;
}

let create nl =
  {
    nl;
    order = Netlist.topo_order nl;
    values = Array.make (Netlist.net_count nl) Logic.X;
    ff_q = Hashtbl.create 97;
  }

let netlist t = t.nl

let set_input t nid v =
  if not (Netlist.is_pi t.nl nid) then
    invalid_arg
      (Printf.sprintf "Simulator.set_input: %s is not a primary input"
         (Netlist.net_name t.nl nid));
  t.values.(nid) <- v

let set_inputs t bindings =
  List.iter
    (fun (name, v) ->
      match Netlist.find_net t.nl name with
      | Some nid -> set_input t nid v
      | None -> invalid_arg (Printf.sprintf "Simulator.set_inputs: no net %s" name))
    bindings

let ff_state t iid =
  match Hashtbl.find_opt t.ff_q iid with Some v -> v | None -> Logic.F

let set_ff_state t iid v = Hashtbl.replace t.ff_q iid v

let eval_inst t mode iid =
  let cell = Netlist.cell t.nl iid in
  match cell.Cell.kind with
  | Func.Dff | Func.Sleep_switch | Func.Holder -> ()
  | k ->
    (match Netlist.output_net t.nl iid with
    | None -> ()
    | Some out ->
      let names = Func.input_names k in
      let ins =
        Array.map
          (fun pin ->
            match Netlist.pin_net t.nl iid pin with
            | Some nid -> t.values.(nid)
            | None -> Logic.X)
          names
      in
      let v = Logic.eval k ins in
      let v =
        match mode with
        | Active -> v
        | Standby ->
          (* MT logic is cut from ground: its output floats, unless a
             holder (embedded or attached to the net) keeps it at 1. *)
          if Cell.is_mt cell then
            match cell.Cell.style with
            | Smt_cell.Vth.Mt_embedded -> Logic.T
            | Smt_cell.Vth.Mt_vgnd | Smt_cell.Vth.Mt_no_vgnd ->
              if Netlist.holder_of t.nl out <> None then Logic.T else Logic.X
            | Smt_cell.Vth.Plain -> v
          else v
      in
      t.values.(out) <- v)

let propagate ?(mode = Active) t =
  (* Seed flip-flop outputs from state. *)
  Netlist.iter_insts t.nl (fun iid ->
      let cell = Netlist.cell t.nl iid in
      if cell.Cell.kind = Func.Dff then
        match Netlist.pin_net t.nl iid "Q" with
        | Some q -> t.values.(q) <- ff_state t iid
        | None -> ());
  List.iter (eval_inst t mode) t.order

let clock_edge t =
  let latched = ref [] in
  Netlist.iter_insts t.nl (fun iid ->
      let cell = Netlist.cell t.nl iid in
      if cell.Cell.kind = Func.Dff then
        match Netlist.pin_net t.nl iid "D" with
        | Some d -> latched := (iid, t.values.(d)) :: !latched
        | None -> ());
  List.iter (fun (iid, v) -> set_ff_state t iid v) !latched

let value t nid = t.values.(nid)

let output_values t =
  List.map (fun (name, nid) -> (name, t.values.(nid))) (Netlist.outputs t.nl)

let reset ?(state = Logic.F) t =
  Hashtbl.reset t.ff_q;
  Netlist.iter_insts t.nl (fun iid ->
      if (Netlist.cell t.nl iid).Cell.kind = Func.Dff then Hashtbl.replace t.ff_q iid state);
  Array.fill t.values 0 (Array.length t.values) Logic.X

let floating_nets t =
  let acc = ref [] in
  Netlist.iter_nets t.nl (fun nid ->
      if t.values.(nid) = Logic.X && (Netlist.driver t.nl nid <> None || Netlist.is_pi t.nl nid)
      then acc := nid :: !acc);
  List.rev !acc
