(** Levelized netlist simulator.

    Active mode evaluates the logic as usual.  Standby mode models the
    sleep state: every MT-cell's output floats (X) — unless the net carries
    an output holder, which forces it to 1, the holder polarity the paper
    specifies — while plain high-Vth cells keep evaluating whatever reaches
    them.  This lets tests observe exactly the floating-input hazard that
    holder insertion must eliminate. *)

type mode = Active | Standby

type t

val create : Smt_netlist.Netlist.t -> t
(** Builds the evaluation order once. Raises [Smt_netlist.Netlist.Combinational_cycle]. *)

val netlist : t -> Smt_netlist.Netlist.t

val set_input : t -> Smt_netlist.Netlist.net_id -> Logic.value -> unit
(** Only primary-input nets may be set; raises [Invalid_argument]. *)

val set_inputs : t -> (string * Logic.value) list -> unit
(** By port name; unknown names raise [Invalid_argument]. *)

val propagate : ?mode:mode -> t -> unit
(** Combinational settle from current inputs and flip-flop states. *)

val clock_edge : t -> unit
(** Latch every flip-flop's D into its state (call after [propagate]). *)

val value : t -> Smt_netlist.Netlist.net_id -> Logic.value
val output_values : t -> (string * Logic.value) list

val ff_state : t -> Smt_netlist.Netlist.inst_id -> Logic.value
val set_ff_state : t -> Smt_netlist.Netlist.inst_id -> Logic.value -> unit
val reset : ?state:Logic.value -> t -> unit
(** Reset flip-flop states (default all 0) and clear net values. *)

val floating_nets : t -> Smt_netlist.Netlist.net_id list
(** After a standby [propagate]: nets that settle to X — the nets whose
    downstream leakage the paper's holders suppress. *)
