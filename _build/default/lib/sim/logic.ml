module Func = Smt_cell.Func

type value = F | T | X

let of_bool b = if b then T else F
let to_bool_opt = function F -> Some false | T -> Some true | X -> None
let to_char = function F -> '0' | T -> '1' | X -> 'x'
let equal a b = match (a, b) with
  | F, F | T, T | X, X -> true
  | (F | T | X), _ -> false

(* Exact X-propagation: enumerate completions of the X inputs (arity <= 4
   in this library, so at most 16 cases) and check whether the boolean
   output is insensitive to them. *)
let eval kind inputs =
  let n = Array.length inputs in
  let xs = ref [] in
  for i = n - 1 downto 0 do
    if inputs.(i) = X then xs := i :: !xs
  done;
  match !xs with
  | [] -> of_bool (Func.eval kind (Array.map (fun v -> v = T) inputs))
  | unknowns ->
    let k = List.length unknowns in
    let bools = Array.map (fun v -> v = T) inputs in
    let results = ref [] in
    for mask = 0 to (1 lsl k) - 1 do
      List.iteri (fun j idx -> bools.(idx) <- mask land (1 lsl j) <> 0) unknowns;
      results := Func.eval kind bools :: !results
    done;
    (match !results with
    | [] -> X
    | r :: rest -> if List.for_all (Bool.equal r) rest then of_bool r else X)
