module Netlist = Smt_netlist.Netlist

type t = {
  nl : Netlist.t;
  nets : Netlist.net_id array;
  codes : string array;
  last : Logic.value option array;
  mutable events : (int * int * Logic.value) list;  (* time, net index, value *)
}

(* VCD identifier codes: printable ASCII 33..126, then two-char codes. *)
let code_of_index i =
  let base = 94 in
  let rec build i acc =
    let c = Char.chr (33 + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i / base = 0 then acc else build ((i / base) - 1) acc
  in
  build i ""

let create nl ~nets =
  let seen = Hashtbl.create 97 in
  let uniq =
    List.filter
      (fun nid ->
        if Hashtbl.mem seen nid then false
        else begin
          Hashtbl.add seen nid ();
          true
        end)
      nets
  in
  let nets = Array.of_list uniq in
  {
    nl;
    nets;
    codes = Array.mapi (fun i _ -> code_of_index i) nets;
    last = Array.make (Array.length nets) None;
    events = [];
  }

let of_ports nl =
  let nets = List.map snd (Netlist.inputs nl) @ List.map snd (Netlist.outputs nl) in
  create nl ~nets

let sample t sim ~time =
  Array.iteri
    (fun i nid ->
      let v = Simulator.value sim nid in
      match t.last.(i) with
      | Some prev when Logic.equal prev v -> ()
      | Some _ | None ->
        t.last.(i) <- Some v;
        t.events <- (time, i, v) :: t.events)
    t.nets

let value_char = function Logic.F -> '0' | Logic.T -> '1' | Logic.X -> 'x'

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "$date reproduction run $end\n";
  Buffer.add_string b "$version selective-mt simulator $end\n";
  Buffer.add_string b "$timescale 1ps $end\n";
  Buffer.add_string b (Printf.sprintf "$scope module %s $end\n" (Netlist.design_name t.nl));
  Array.iteri
    (fun i nid ->
      Buffer.add_string b
        (Printf.sprintf "$var wire 1 %s %s $end\n" t.codes.(i) (Netlist.net_name t.nl nid)))
    t.nets;
  Buffer.add_string b "$upscope $end\n$enddefinitions $end\n";
  let events = List.rev t.events in
  let current_time = ref min_int in
  List.iter
    (fun (time, i, v) ->
      if time <> !current_time then begin
        Buffer.add_string b (Printf.sprintf "#%d\n" time);
        current_time := time
      end;
      Buffer.add_char b (value_char v);
      Buffer.add_string b t.codes.(i);
      Buffer.add_char b '\n')
    events;
  Buffer.contents b

let to_file t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))
