module Netlist = Smt_netlist.Netlist
module Rng = Smt_util.Rng
module Func = Smt_cell.Func

type result = Equivalent | Mismatch of { vector : (string * Logic.value) list; output : string }

let data_inputs nl =
  Netlist.inputs nl |> List.filter (fun (_, nid) -> not (Netlist.is_clock_net nl nid))

let interface nl =
  ( List.map fst (data_inputs nl) |> List.sort compare,
    List.map fst (Netlist.outputs nl) |> List.sort compare )

let has_ff nl =
  List.exists
    (fun iid -> (Netlist.cell nl iid).Smt_cell.Cell.kind = Func.Dff)
    (Netlist.live_insts nl)

let compare_outputs sa sb vector =
  let out_a = Simulator.output_values sa and out_b = Simulator.output_values sb in
  let mismatch =
    List.find_opt
      (fun (name, va) ->
        match List.assoc_opt name out_b with
        | Some vb -> not (Logic.equal va vb)
        | None -> true)
      out_a
  in
  match mismatch with
  | Some (name, _) -> Some (Mismatch { vector; output = name })
  | None -> None

let check ?(cycles = 8) ?(vectors = 256) ?(seed = 42) a b =
  if interface a <> interface b then
    invalid_arg "Equiv.check: primary interfaces differ";
  let sa = Simulator.create a and sb = Simulator.create b in
  let names = List.map fst (data_inputs a) in
  let apply vector =
    Simulator.set_inputs sa vector;
    Simulator.set_inputs sb vector;
    Simulator.propagate sa;
    Simulator.propagate sb
  in
  let exhaustive = List.length names <= 12 && (not (has_ff a)) && not (has_ff b) in
  if exhaustive then begin
    let n = List.length names in
    let rec loop mask =
      if mask >= 1 lsl n then Equivalent
      else begin
        let vector =
          List.mapi (fun i name -> (name, Logic.of_bool (mask land (1 lsl i) <> 0))) names
        in
        apply vector;
        match compare_outputs sa sb vector with
        | Some m -> m
        | None -> loop (mask + 1)
      end
    in
    loop 0
  end
  else begin
    let rng = Rng.create seed in
    let rec sequences remaining =
      if remaining = 0 then Equivalent
      else begin
        Simulator.reset sa;
        Simulator.reset sb;
        let rec run cycle =
          if cycle = 0 then None
          else begin
            let vector = List.map (fun name -> (name, Logic.of_bool (Rng.bool rng))) names in
            apply vector;
            match compare_outputs sa sb vector with
            | Some m -> Some m
            | None ->
              Simulator.clock_edge sa;
              Simulator.clock_edge sb;
              run (cycle - 1)
          end
        in
        match run cycles with Some m -> m | None -> sequences (remaining - 1)
      end
    in
    sequences vectors
  end

let equivalent ?cycles ?vectors ?seed a b =
  match check ?cycles ?vectors ?seed a b with Equivalent -> true | Mismatch _ -> false
