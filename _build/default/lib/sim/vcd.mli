(** VCD (value-change dump) recording of simulation runs.

    Samples named nets after each [Simulator] evaluation and emits a
    standard IEEE-1364 VCD text that waveform viewers open directly; X
    values map to ['x'].  Useful for debugging the standby/holder behaviour
    visually. *)

type t

val create : Smt_netlist.Netlist.t -> nets:Smt_netlist.Netlist.net_id list -> t
(** Record the given nets (deduplicated, order preserved). *)

val of_ports : Smt_netlist.Netlist.t -> t
(** Record every primary input and output. *)

val sample : t -> Simulator.t -> time:int -> unit
(** Capture the simulator's current values at the given timestamp (times
    must be non-decreasing; only changed values are stored). *)

val to_string : t -> string
(** Render the VCD document. *)

val to_file : t -> string -> unit
