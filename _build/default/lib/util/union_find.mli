(** Disjoint-set forest with path compression and union by rank.

    Used by the VGND clustering pass to merge MT-cell groups and by the
    router to detect connected components. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets labelled [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative of the element's set. *)

val union : t -> int -> int -> unit
(** Merge the two sets. No-op if already together. *)

val same : t -> int -> int -> bool
(** Whether the two elements share a set. *)

val size : t -> int -> int
(** Number of elements in the element's set. *)

val count : t -> int
(** Number of distinct sets. *)

val groups : t -> int list array
(** [groups t] lists members per representative; entry is [[]] for
    non-representatives. *)
