(** Plain-text tables for flow reports and paper-table reproduction. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table. Columns default to
    left alignment; [aligns] overrides per column. Rows shorter than the
    header are padded with empty cells. *)

val pct : float -> string
(** Format a percentage as the paper prints them, e.g. ["133.18%"]. *)

val f2 : float -> string
(** Two-decimal float. *)
