type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(aligns = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let all = header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all)
  in
  let align_of c =
    match List.nth_opt aligns c with Some a -> a | None -> Left
  in
  let fmt_row row =
    let cells = List.mapi (fun c s -> pad (align_of c) (List.nth widths c) s) row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    let dashes = List.map (fun w -> String.make (w + 2) '-') widths in
    "+" ^ String.concat "+" dashes ^ "+"
  in
  let body = List.map fmt_row rows in
  String.concat "\n" ((sep :: fmt_row header :: sep :: body) @ [ sep ])

let pct v = Printf.sprintf "%.2f%%" v
let f2 v = Printf.sprintf "%.2f" v
