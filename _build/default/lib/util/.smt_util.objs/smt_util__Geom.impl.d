lib/util/geom.ml: Array Float List
