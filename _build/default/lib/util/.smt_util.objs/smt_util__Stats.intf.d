lib/util/stats.mli:
