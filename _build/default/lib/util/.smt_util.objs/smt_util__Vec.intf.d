lib/util/vec.mli:
