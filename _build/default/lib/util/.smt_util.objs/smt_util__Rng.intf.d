lib/util/rng.mli:
