lib/util/text_table.ml: List Printf String
