lib/util/heap.mli:
