lib/util/geom.mli:
