type point = { x : float; y : float }
type bbox = { lx : float; ly : float; hx : float; hy : float }

let point x y = { x; y }

let manhattan a b = abs_float (a.x -. b.x) +. abs_float (a.y -. b.y)

let euclid a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let empty_bbox = { lx = infinity; ly = infinity; hx = neg_infinity; hy = neg_infinity }

let bbox_of_point p = { lx = p.x; ly = p.y; hx = p.x; hy = p.y }

let expand b p =
  {
    lx = Float.min b.lx p.x;
    ly = Float.min b.ly p.y;
    hx = Float.max b.hx p.x;
    hy = Float.max b.hy p.y;
  }

let bbox_union a b =
  {
    lx = Float.min a.lx b.lx;
    ly = Float.min a.ly b.ly;
    hx = Float.max a.hx b.hx;
    hy = Float.max a.hy b.hy;
  }

let bbox_of_points = function
  | [] -> invalid_arg "Geom.bbox_of_points: empty"
  | p :: rest -> List.fold_left expand (bbox_of_point p) rest

let hpwl b = if b.lx > b.hx then 0.0 else b.hx -. b.lx +. (b.hy -. b.ly)

let width b = Float.max 0.0 (b.hx -. b.lx)
let height b = Float.max 0.0 (b.hy -. b.ly)
let center b = { x = (b.lx +. b.hx) /. 2.0; y = (b.ly +. b.hy) /. 2.0 }

let contains b p = p.x >= b.lx && p.x <= b.hx && p.y >= b.ly && p.y <= b.hy

let overlap a b = a.lx <= b.hx && b.lx <= a.hx && a.ly <= b.hy && b.ly <= a.hy

let clamp v ~lo ~hi = if v < lo then lo else if v > hi then hi else v

(* Prim's algorithm over Manhattan distance; O(n^2), fine for cluster-sized
   point sets (EM caps keep clusters small). *)
let spanning_length points =
  match Array.of_list points with
  | [||] -> 0.0
  | pts when Array.length pts = 1 -> 0.0
  | pts ->
    let n = Array.length pts in
    let in_tree = Array.make n false in
    let dist = Array.make n infinity in
    in_tree.(0) <- true;
    for j = 1 to n - 1 do
      dist.(j) <- manhattan pts.(0) pts.(j)
    done;
    let total = ref 0.0 in
    for _ = 1 to n - 1 do
      let best = ref (-1) in
      for j = 0 to n - 1 do
        if (not in_tree.(j)) && (!best = -1 || dist.(j) < dist.(!best)) then best := j
      done;
      let b = !best in
      in_tree.(b) <- true;
      total := !total +. dist.(b);
      for j = 0 to n - 1 do
        if not in_tree.(j) then dist.(j) <- Float.min dist.(j) (manhattan pts.(b) pts.(j))
      done
    done;
    !total
