type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (bits64 t) }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (bits64 t) mask) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0,1). *)
  let v = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p = float t 1.0 < p

let gaussian t ~mean ~sigma =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (sigma *. z)

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  if k < 0 || k > n then invalid_arg "Rng.sample: k out of range";
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 k
