(** Binary min-heap over a caller-supplied ordering.

    Used for K-worst path extraction in STA and net ordering in the
    router. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap; [cmp] orders elements, smallest popped first. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the minimum. *)

val peek : 'a t -> 'a option

val of_array : cmp:('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)

val to_sorted_list : 'a t -> 'a list
(** Drains the heap; ascending order. *)
