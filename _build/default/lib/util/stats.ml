let total = List.fold_left ( +. ) 0.0

let mean = function
  | [] -> 0.0
  | xs -> total xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let percentile xs p =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    let lo = max 0 (min lo (n - 1)) and hi = max 0 (min hi (n - 1)) in
    let frac = rank -. floor rank in
    arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))

let ratio_pct v base = if base = 0.0 then nan else 100.0 *. v /. base

let histogram ~bins xs =
  match xs with
  | [] -> []
  | _ ->
    let lo, hi = min_max xs in
    let span = if hi > lo then hi -. lo else 1.0 in
    let width = span /. float_of_int bins in
    let counts = Array.make bins 0 in
    let place x =
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1
    in
    List.iter place xs;
    List.init bins (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))
