(** Growable array (OCaml 5.1 has no stdlib Dynarray yet).

    Backbone of the netlist graph: instances and nets are appended during
    construction and indexed by dense integer ids. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> int
(** Append and return the new element's index. *)

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val find_index : ('a -> bool) -> 'a t -> int option
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val map_to_list : ('a -> 'b) -> 'a t -> 'b list
