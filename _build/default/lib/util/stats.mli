(** Descriptive statistics over float samples, for reports and benches. *)

val mean : float list -> float
(** 0. on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0. on fewer than two samples. *)

val min_max : float list -> float * float
(** Raises [Invalid_argument] on the empty list. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [0,100], linear interpolation.
    Raises [Invalid_argument] on the empty list. *)

val total : float list -> float

val ratio_pct : float -> float -> float
(** [ratio_pct v base] is [100 * v / base]; [nan] if [base = 0]. *)

val histogram : bins:int -> float list -> (float * float * int) list
(** Equal-width bins as [(lo, hi, count)]; empty list gives []. *)
