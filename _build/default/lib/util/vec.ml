type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

let create () = { data = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else cap * 2 in
    let ndata = Array.make ncap x in
    Array.blit t.data 0 ndata 0 t.len;
    t.data <- ndata
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i =
  if i < 0 || i >= t.len then invalid_arg (Printf.sprintf "Vec: index %d out of [0,%d)" i t.len)

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec loop i = i < t.len && (p t.data.(i) || loop (i + 1)) in
  loop 0

let find_index p t =
  let rec loop i = if i >= t.len then None else if p t.data.(i) then Some i else loop (i + 1) in
  loop 0

let to_list t = List.init t.len (fun i -> t.data.(i))

let of_list l =
  let t = create () in
  List.iter (fun x -> ignore (push t x)) l;
  t

let map_to_list f t = List.init t.len (fun i -> f t.data.(i))
