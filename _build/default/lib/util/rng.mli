(** Deterministic pseudo-random number generation.

    Every stochastic component of the repository (circuit generators, vector
    generation, placement perturbation, extraction noise) draws from this
    module so that experiments are exactly reproducible from a seed.  The
    generator is a splitmix64 core; [split] derives an independent stream,
    which lets subsystems consume randomness without perturbing each other. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val gaussian : t -> mean:float -> sigma:float -> float
(** Normal deviate (Box-Muller). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [k] distinct elements (k <= length). *)
