(** Planar geometry for placement, routing, and VGND wire-length budgeting.

    Coordinates are in micrometres throughout the repository. *)

type point = { x : float; y : float }

type bbox = { lx : float; ly : float; hx : float; hy : float }
(** Axis-aligned rectangle; invariant [lx <= hx && ly <= hy]. *)

val point : float -> float -> point

val manhattan : point -> point -> float
(** L1 distance, the routed-wire metric. *)

val euclid : point -> point -> float

val midpoint : point -> point -> point

val empty_bbox : bbox
(** Identity for [expand]: contains nothing. *)

val bbox_of_point : point -> bbox

val expand : bbox -> point -> bbox
(** Smallest bbox containing both. *)

val bbox_union : bbox -> bbox -> bbox

val bbox_of_points : point list -> bbox
(** Raises [Invalid_argument] on the empty list. *)

val hpwl : bbox -> float
(** Half-perimeter wirelength of the box. *)

val width : bbox -> float
val height : bbox -> float
val center : bbox -> point
val contains : bbox -> point -> bool
val overlap : bbox -> bbox -> bool

val clamp : float -> lo:float -> hi:float -> float

val spanning_length : point list -> float
(** Length of a rectilinear spanning tree over the points (Prim on
    Manhattan distance); the VGND-line length model. Empty or singleton
    lists give [0.]. *)
