(* The paper's motivating scenario: portable electric appliances, where
   standby leakage drains the battery while the phone does nothing.

   This example runs all three techniques on the datapath-heavy evaluation
   circuit and converts the standby leakage into battery life for a
   baseband-class block, the application domain of the paper's reference
   [3] (a CDMA cellular baseband chip).

     dune exec examples/baseband_standby.exe *)

module Flow = Smt_core.Flow
module Compare = Smt_core.Compare
module Suite = Smt_circuits.Suite
module Text_table = Smt_util.Text_table

(* A small coin-cell class budget for the always-on standby domain. *)
let battery_mwh = 800.0 (* mWh, a 220 mAh cell at 3.6 V *)
let block_instances_on_chip = 400.0
(* the evaluation block is a slice; a real baseband carries hundreds *)

let () =
  let lib = Smt_cell.Library.default () in
  let row = Compare.table1_row (fun () -> Suite.circuit_a lib) in
  Printf.printf "standby-leakage -> battery-life for a baseband-class chip\n";
  Printf.printf "(block scaled x%.0f, %.0f mWh battery, standby only)\n\n"
    block_instances_on_chip battery_mwh;
  let rows =
    List.map
      (fun e ->
        let r = e.Compare.report in
        let chip_leak_mw = r.Flow.standby_nw *. block_instances_on_chip /. 1e6 in
        let hours = battery_mwh /. chip_leak_mw in
        [
          Flow.technique_name e.Compare.technique;
          Printf.sprintf "%.1f" r.Flow.standby_nw;
          Printf.sprintf "%.3f" chip_leak_mw;
          Printf.sprintf "%.0f" hours;
          Printf.sprintf "%.1f" (hours /. 24.0);
          Text_table.pct e.Compare.leakage_pct;
        ])
      row.Compare.entries
  in
  print_endline
    (Text_table.render
       ~header:
         [ "Technique"; "Block nW"; "Chip mW"; "Standby hours"; "Days"; "vs Dual-Vth" ]
       rows);
  let dual = List.nth row.Compare.entries 0 and imp = List.nth row.Compare.entries 2 in
  let ratio = dual.Compare.report.Flow.standby_nw /. imp.Compare.report.Flow.standby_nw in
  Printf.printf
    "\nthe improved Selective-MT domain idles %.1fx longer than the Dual-Vth design —\n\
     the difference between days and weeks of standby on the same battery.\n"
    ratio;
  (* And the cost side: the area price of that standby win. *)
  let con = List.nth row.Compare.entries 1 in
  Printf.printf
    "area price: conventional Selective-MT pays %+.1f%% area over Dual-Vth; the improved\n\
     style pays only %+.1f%% — the paper's area-efficiency claim.\n"
    (con.Compare.area_pct -. 100.0)
    (imp.Compare.area_pct -. 100.0);
  (* and the active side of the power budget, for perspective *)
  let lib2 = Smt_cell.Library.default () in
  let nl = Smt_circuits.Suite.circuit_a lib2 in
  let r = Flow.run Flow.Improved_smt nl in
  let clock_mhz = 1e6 /. r.Flow.clock_period in
  let dyn = Smt_power.Dynamic.estimate ~clock_mhz nl in
  Printf.printf
    "\nactive power at %.0f MHz: %.2f mW switching + %.3f mW leakage floor;\n\
     standby: %.4f mW — gating wins where the phone spends its life: doing nothing.\n"
    clock_mhz dyn.Smt_power.Dynamic.switching_mw dyn.Smt_power.Dynamic.leakage_mw
    (r.Flow.standby_nw /. 1e6)
