(* Quickstart: build a small registered circuit, run the improved
   Selective-MT flow on it, and inspect the result.

     dune exec examples/quickstart.exe *)

module Builder = Smt_netlist.Builder
module Func = Smt_cell.Func
module Flow = Smt_core.Flow

let () =
  let lib = Smt_cell.Library.default () in

  (* 1. Build a netlist: a tiny registered datapath. Generators for larger
     circuits live in Smt_circuits. *)
  let b = Builder.create ~name:"quickstart" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let x = Builder.input b "x" in
  let y = Builder.input b "y" in
  let z = Builder.input b "z" in
  let qx = Builder.dff b ~d:x ~clk in
  let qy = Builder.dff b ~d:y ~clk in
  let qz = Builder.dff b ~d:z ~clk in
  let s, c = Builder.full_adder b ~a:qx ~b:qy ~cin:qz in
  let qs = Builder.dff b ~d:s ~clk in
  let qc = Builder.dff b ~d:c ~clk in
  let sum = Builder.output b "sum" in
  let carry = Builder.output b "carry" in
  Builder.gate_into b Func.Buf [ qs ] sum;
  Builder.gate_into b Func.Buf [ qc ] carry;
  let nl = Builder.netlist b in

  (* 2. Run the paper's improved Selective-MT flow: placement, Dual-Vth
     style replacement, MT conversion, switch clustering & sizing, routing
     (CTS + MTE buffering + extraction), post-route re-optimization, hold
     ECO. The flow mutates the netlist. *)
  let report = Flow.run Flow.Improved_smt nl in

  (* 3. Inspect the outcome. *)
  Format.printf "%a@." Flow.pp_report report;
  Printf.printf "\nstage progression:\n";
  List.iter
    (fun (s : Flow.stage) ->
      Printf.printf "  %-55s area=%7.1f  standby=%8.1f nW  wns=%7.1f ps\n"
        s.Flow.stage_name s.Flow.stage_area s.Flow.stage_standby_nw s.Flow.stage_wns)
    report.Flow.stages;

  (* 4. The transformed netlist is ordinary data: dump it. *)
  print_newline ();
  print_string (Smt_netlist.Writer.to_string nl)
