(* Design-space exploration with the designer-facing knobs the paper
   names: the VGND bounce upper limit, the VGND line length cap
   (crosstalk), and the electromigration cells-per-switch cap.

   A designer would sweep these to pick the corner that meets timing with
   the least area, exactly what this example does on circuit B.

     dune exec examples/design_space.exe *)

module Flow = Smt_core.Flow
module Cluster = Smt_core.Cluster
module Suite = Smt_circuits.Suite
module Text_table = Smt_util.Text_table

let () =
  let lib = Smt_cell.Library.default () in
  let tech = Smt_cell.Library.tech lib in
  let params = Cluster.default_params tech in
  let candidates =
    (* (bounce limit V, VGND length cap um, cells per switch) *)
    [
      (0.05, 80.0, 12);
      (0.08, 80.0, 16);
      (0.08, 120.0, 24);
      (0.10, 120.0, 24);
      (0.10, 160.0, 32);
      (0.12, 160.0, 32);
    ]
  in
  Printf.printf "design-space exploration: improved Selective-MT on circuit B\n\n";
  let evaluate (bounce, length, cells) =
    let options =
      {
        Flow.default_options with
        Flow.cluster_params =
          Some
            {
              params with
              Cluster.bounce_limit = bounce;
              Cluster.length_limit = length;
              Cluster.cell_limit = cells;
            };
      }
    in
    let r = Flow.run ~options Flow.Improved_smt (Suite.circuit_b lib) in
    ((bounce, length, cells), r)
  in
  let results = List.map evaluate candidates in
  let rows =
    List.map
      (fun ((bounce, length, cells), (r : Flow.report)) ->
        [
          Printf.sprintf "%.2f V / %.0f um / %d" bounce length cells;
          Printf.sprintf "%.0f" r.Flow.area;
          Printf.sprintf "%.0f" r.Flow.standby_nw;
          string_of_int r.Flow.n_clusters;
          Printf.sprintf "%.1f" r.Flow.wns;
          (if r.Flow.timing_met && r.Flow.hold_met && r.Flow.bounce_violations = 0 then
             "yes"
           else "NO");
        ])
      results
  in
  print_endline
    (Text_table.render
       ~header:[ "bounce / length / cells"; "Area"; "Standby nW"; "Clusters"; "WNS ps"; "clean" ]
       rows);
  (* pick the cheapest clean corner *)
  let clean =
    List.filter
      (fun (_, (r : Flow.report)) ->
        r.Flow.timing_met && r.Flow.hold_met && r.Flow.bounce_violations = 0)
      results
  in
  match
    List.sort (fun (_, a) (_, b) -> compare a.Flow.area b.Flow.area) clean
  with
  | ((bounce, length, cells), best) :: _ ->
    Printf.printf
      "\nbest clean corner: bounce<=%.2fV, VGND<=%.0fum, <=%d cells/switch -> area %.0f um^2, \
       standby %.0f nW\n"
      bounce length cells best.Flow.area best.Flow.standby_nw
  | [] -> print_endline "\nno clean corner found (tighten the sweep)"
