examples/design_space.ml: List Printf Smt_cell Smt_circuits Smt_core Smt_util
