examples/baseband_standby.mli:
