examples/quickstart.mli:
