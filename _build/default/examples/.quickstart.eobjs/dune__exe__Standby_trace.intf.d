examples/standby_trace.mli:
