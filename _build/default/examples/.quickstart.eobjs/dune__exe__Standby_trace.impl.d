examples/standby_trace.ml: Filename List Printf Smt_cell Smt_circuits Smt_core Smt_netlist Smt_place Smt_sim Smt_sta Smt_util
