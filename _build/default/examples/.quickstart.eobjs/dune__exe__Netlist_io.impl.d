examples/netlist_io.ml: Format List Printf Smt_cell Smt_circuits Smt_core Smt_netlist Smt_place Smt_route Smt_sim String
