examples/quickstart.ml: Format List Printf Smt_cell Smt_core Smt_netlist
