examples/baseband_standby.ml: List Printf Smt_cell Smt_circuits Smt_core Smt_power Smt_util
