(* Sleep like a phone: run the improved Selective-MT block through a full
   active -> standby -> wake cycle, verify the Selective-MT invariants,
   dump a VCD trace of the primary interface, and show what multiple power
   domains buy in partial-standby states.

     dune exec examples/standby_trace.exe *)

module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Sta = Smt_sta.Sta
module Simulator = Smt_sim.Simulator
module Logic = Smt_sim.Logic
module Vcd = Smt_sim.Vcd
module Flow = Smt_core.Flow
module Standby = Smt_core.Standby
module Domains = Smt_core.Domains
module Mt_replace = Smt_core.Mt_replace
module Vth_assign = Smt_core.Vth_assign
module Switch_insert = Smt_core.Switch_insert
module Generators = Smt_circuits.Generators

let () =
  let lib = Smt_cell.Library.default () in
  let nl = Generators.multiplier ~name:"mult8" ~bits:8 lib in
  let report = Flow.run Flow.Improved_smt nl in
  Printf.printf "block built: %d MT-cells over %d shared switches, %d holders\n\n"
    report.Flow.n_mt_cells report.Flow.n_switches report.Flow.n_holders;

  (* 1. the sleep protocol, checked against a never-slept reference *)
  let o = Standby.simulate ~standby_cycles:4 nl in
  Printf.printf "sleep protocol over %d cycles:\n" o.Standby.cycles_run;
  Printf.printf "  flip-flop state preserved through standby : %b\n" o.Standby.state_preserved;
  Printf.printf "  primary outputs held while asleep          : %b\n"
    o.Standby.outputs_defined_in_standby;
  Printf.printf "  floating nets reaching awake logic         : %d\n"
    o.Standby.x_leaks_into_awake_logic;
  Printf.printf "  first cycle after wake-up correct          : %b\n"
    o.Standby.first_wake_cycle_correct;
  let cfg = Sta.config ~clock_period:report.Flow.clock_period () in
  Printf.printf "  MTE enable-tree insertion delay            : %.1f ps\n\n"
    (Standby.mte_tree_delay cfg nl);

  (* 2. a VCD trace of the episode, for a waveform viewer *)
  let sim = Simulator.create nl in
  Simulator.reset sim;
  let vcd = Vcd.of_ports nl in
  let rng = Smt_util.Rng.create 7 in
  let inputs mte =
    ("MTE", mte)
    :: (Netlist.inputs nl
       |> List.filter (fun (n, nid) ->
              (not (Netlist.is_clock_net nl nid)) && n <> "MTE")
       |> List.map (fun (n, _) -> (n, Logic.of_bool (Smt_util.Rng.bool rng))))
  in
  let time = ref 0 in
  let cycle ~mode mte =
    Simulator.set_inputs sim (inputs mte);
    Simulator.propagate ~mode sim;
    Vcd.sample vcd sim ~time:!time;
    incr time;
    if mode = Simulator.Active then Simulator.clock_edge sim
  in
  for _ = 1 to 4 do cycle ~mode:Simulator.Active Logic.F done;
  for _ = 1 to 3 do cycle ~mode:Simulator.Standby Logic.T done;
  for _ = 1 to 4 do cycle ~mode:Simulator.Active Logic.F done;
  let path = Filename.temp_file "standby" ".vcd" in
  Vcd.to_file vcd path;
  Printf.printf "VCD trace of %d cycles written to %s\n\n" !time path;

  (* 3. multiple power domains: partial standby states *)
  let nl2 = Generators.multiplier ~name:"mult8d" ~bits:8 lib in
  let probe = 1e6 in
  let sta = Sta.analyze (Sta.config ~clock_period:probe ()) nl2 in
  let period = (probe -. Sta.wns sta) *. 1.05 in
  ignore (Vth_assign.assign (Sta.config ~clock_period:period ()) nl2);
  ignore (Mt_replace.replace Mt_replace.Improved nl2);
  let place = Placement.place nl2 in
  ignore (Switch_insert.insert place);
  let d = Domains.partition ~domains:2 place in
  Printf.printf "two power domains (%d + %d MT-cells):\n"
    (List.length (Domains.members d 0))
    (List.length (Domains.members d 1));
  List.iter
    (fun (label, asleep) ->
      Printf.printf "  %-22s %8.1f nW\n" label (Domains.standby_leakage d ~asleep))
    [
      ("all awake", []); ("domain 0 asleep", [ 0 ]); ("domain 1 asleep", [ 1 ]);
      ("full standby", [ 0; 1 ]);
    ]
