(** A small fixed pool of [Domain.t] workers for embarrassingly parallel
    [map]s over independent jobs.

    The pool is spawned per [map] call and joined before [map] returns, so
    no domains outlive the call and there is nothing to shut down.  Results
    come back in input order regardless of which worker ran which element,
    and the first exception (by input position) a job raised is re-raised
    on the caller with its original backtrace — but only after {e every}
    worker has been joined: a failing job (or a failing [Domain.spawn]
    partway through pool bring-up) never leaks a running domain.  Workers
    keep draining the remaining jobs after another job has failed, so
    side effects of unrelated jobs are not silently skipped.

    [map ~jobs:1] (or a single-element list) runs in place on the calling
    domain — no spawn, byte-identical behaviour to [List.map].  Nested use
    is supported by degradation: a [map] called from inside a worker runs
    sequentially on that worker rather than spawning a second tier of
    domains. *)

val default_jobs : unit -> int
(** Worker count to use when the caller expressed no preference: the
    [SMT_JOBS] environment variable if set to a positive integer, else
    [Domain.recommended_domain_count ()].  Always at least 1. *)

val worker_index : unit -> int option
(** [Some i] (0-based, [< jobs]) when called from inside a [map] worker,
    [None] on the caller's domain.  Stable for the duration of one job and
    of any nested (degraded) [map] it performs. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] to every element of [xs], running up to
    [jobs] applications concurrently on fresh domains.  Order-preserving;
    [jobs] is clamped to [List.length xs]; [jobs <= 1], nested calls, and
    lists shorter than 2 degrade to sequential in-place execution. *)
