let worker_key : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let worker_index () = Domain.DLS.get worker_key

let default_jobs () =
  match Sys.getenv_opt "SMT_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* Work distribution: an atomic next-job counter over an array of the
   inputs, each worker writing into its job's slot of [results].  Slot
   indexing is what makes the output order independent of scheduling. *)
let map_parallel ~jobs f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let results :
      ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let next = Atomic.make 0 in
  let worker w () =
    Domain.DLS.set worker_key (Some w);
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (results.(i) <-
           (match f items.(i) with
           | y -> Some (Ok y)
           | exception e ->
               Some (Error (e, Printexc.get_raw_backtrace ()))));
        loop ()
      end
    in
    loop ()
  in
  (* Spawn under protection: a failed [Domain.spawn] (resource
     exhaustion) must not leak the workers already running — join them
     before letting the failure escape, so no domain outlives [map]
     whichever way it exits. *)
  let domains = ref [] in
  (try
     for w = 0 to jobs - 1 do
       domains := Domain.spawn (worker w) :: !domains
     done
   with e ->
     let bt = Printexc.get_raw_backtrace () in
     List.iter Domain.join !domains;
     Printexc.raise_with_backtrace e bt);
  List.iter Domain.join !domains;
  (* Re-raise the first failure by input position, so which job's
     exception escapes does not depend on scheduling. *)
  Array.iter
    (function
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | _ -> ())
    results;
  Array.to_list
    (Array.map
       (function
         | Some (Ok y) -> y
         | _ -> assert false (* every slot filled, no Error left *))
       results)

let map ~jobs f xs =
  let n = List.length xs in
  let jobs = min jobs n in
  if jobs <= 1 || worker_index () <> None then List.map f xs
  else map_parallel ~jobs f xs
