module J = Smt_obs.Obs_json

type workload = {
  wl_name : string;
  wl_findings : Rules.finding list;
  wl_waived : (Rules.finding * Waiver.entry) list;
}

let sarif_level (s : Rules.severity) =
  match s with Rules.Error -> "error" | Rules.Warn -> "warning"

let rule_index (r : Rules.rule) =
  let rec go i = function
    | [] -> 0
    | x :: rest -> if String.equal x.Rules.id r.Rules.id then i else go (i + 1) rest
  in
  go 0 Rules.all

let descriptor (r : Rules.rule) =
  J.obj
    [
      ("id", J.str r.Rules.id);
      ( "shortDescription",
        J.obj [ ("text", J.str r.Rules.summary) ] );
      ( "defaultConfiguration",
        J.obj [ ("level", J.str (sarif_level r.Rules.severity)) ] );
      ( "properties",
        J.obj [ ("repairable", J.boolean r.Rules.repairable) ] );
    ]

let logical_location ?mode ~wl fqn =
  let entries =
    J.obj [ ("fullyQualifiedName", J.str (wl ^ "/" ^ fqn)); ("kind", J.str "element") ]
    ::
    (match mode with
    | Some m when m <> "" ->
      (* the sleep-mode vector the finding was observed in, as a second
         logical location so SARIF viewers group by domain mode *)
      [
        J.obj
          [
            ("fullyQualifiedName", J.str (wl ^ "/mode/" ^ m)); ("kind", J.str "namespace");
          ];
      ]
    | _ -> [])
  in
  J.obj [ ("logicalLocations", J.arr entries) ]

let result ~wl ?waived_by (f : Rules.finding) =
  let base =
    [
      ("ruleId", J.str f.Rules.rule.Rules.id);
      ("ruleIndex", string_of_int (rule_index f.Rules.rule));
      ("level", J.str (sarif_level f.Rules.rule.Rules.severity));
      ("message", J.obj [ ("text", J.str f.Rules.message) ]);
      ("locations", J.arr [ logical_location ~mode:f.Rules.mode ~wl f.Rules.loc ]);
    ]
  in
  let witness =
    match f.Rules.witness with
    | [] -> []
    | steps ->
      [ ("relatedLocations", J.arr (List.map (logical_location ~wl) steps)) ]
  in
  let suppression =
    match waived_by with
    | None -> []
    | Some (e : Waiver.entry) ->
      [
        ( "suppressions",
          J.arr
            [
              J.obj
                [
                  ("kind", J.str "external");
                  ( "justification",
                    J.str
                      (Printf.sprintf "waiver line %d: %s %s" e.Waiver.w_line
                         e.Waiver.w_rule e.Waiver.w_loc) );
                ];
            ] );
      ]
  in
  J.obj (base @ witness @ suppression)

let render workloads =
  let results =
    List.concat_map
      (fun wl ->
        List.map (result ~wl:wl.wl_name) wl.wl_findings
        @ List.map
            (fun (f, e) -> result ~wl:wl.wl_name ~waived_by:e f)
            wl.wl_waived)
      workloads
  in
  J.obj
    [
      ( "$schema",
        J.str
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
      );
      ("version", J.str "2.1.0");
      ( "runs",
        J.arr
          [
            J.obj
              [
                ( "tool",
                  J.obj
                    [
                      ( "driver",
                        J.obj
                          [
                            ("name", J.str "smt_flow-lint");
                            ("version", J.str "1.0.0");
                            ( "informationUri",
                              J.str "https://example.invalid/smt_flow" );
                            ("rules", J.arr (List.map descriptor Rules.all));
                          ] );
                    ] );
                ("results", J.arr results);
              ];
          ] );
    ]
