module Logic = Smt_sim.Logic
module Func = Smt_cell.Func

type v = Zero | One | Held | Float | Top

let equal (a : v) b = a = b

let join a b =
  match (a, b) with
  | x, y when x = y -> x
  | Top, _ | _, Top -> Top
  | Float, _ | _, Float -> Top (* Float joined with any driven level *)
  | (Zero | One | Held), (Zero | One | Held) -> Held

(* Float/Float and driven/driven pairs are handled above; only the mixed
   Float-vs-driven case reaches the Top line, so the lattice height is 2
   and every transfer chain stabilizes after at most two value changes
   per net. *)

let leq a b = join a b = b

let bot_join old v = match old with None -> Some v | Some o -> Some (join o v)

let is_defined = function Zero | One | Held -> true | Float | Top -> false
let may_float = function Float | Top -> true | Zero | One | Held -> false

let to_string = function
  | Zero -> "0"
  | One -> "1"
  | Held -> "held"
  | Float -> "float"
  | Top -> "top"

let of_logic = function Logic.F -> Zero | Logic.T -> One | Logic.X -> Held

let to_logic = function
  | Zero -> Some Logic.F
  | One -> Some Logic.T
  | Held -> Some Logic.X
  | Float | Top -> None

let eval kind vs =
  let n = Array.length vs in
  let logic = Array.make n Logic.X in
  let rec fill i =
    if i >= n then true
    else
      match to_logic vs.(i) with
      | Some l ->
        logic.(i) <- l;
        fill (i + 1)
      | None -> false
  in
  if fill 0 then of_logic (Logic.eval kind logic) else Top
