(** The semantic rule catalog and its findings.

    Rule ids are stable, kebab-case, and public API: waiver files match
    on them, [lib/fault]'s semantic fault classes name them in
    [expected_rules], and the SARIF export publishes them as
    [reportingDescriptor]s.  Renaming one is a breaking change. *)

type severity = Error | Warn

type rule = {
  id : string;  (** stable kebab-case identifier *)
  severity : severity;
  summary : string;  (** one line, shown in listings and SARIF *)
  repairable : bool;
      (** whether [Smt_check.Repair] knows a fix; semantic findings
          encode design intent the repair pass cannot guess, so today
          the whole catalog is unrepairable *)
}

val float_into_awake : rule
(** A net floats in standby and is read by always-on logic or exposed on
    a primary output — the paper's "unexpected power" hazard. *)

val crowbar_risk : rule
(** A powered gate input may be at an intermediate voltage in standby
    (value [top]): both halves of its input stage can conduct. *)

val useless_holder : rule
(** A holder keeps a net that never floats, or that only floating logic
    reads — area spent on nothing. *)

val mte_polarity : rule
(** A sleep switch, holder, or embedded MT-cell sees MTE = 0 while the
    design sleeps: inverted enable polarity or a constant disable. *)

val mte_undetermined : rule
(** An MTE control pin does not evaluate to a constant in standby. *)

val retention_input_float : rule
(** A retention flip-flop's data input floats in standby: the saved
    state would be restored into corrupted surroundings. *)

val cross_domain_float : rule
(** A net driven from a sleeping power domain may float into logic of a
    domain that is still awake in the analyzed mode — the multi-domain
    form of [float_into_awake], reported even when a (non-functional)
    holder is wired. *)

val missing_isolation : rule
(** A net crosses a sleeping domain's boundary toward powered readers
    with no isolation holder wired on it at all. *)

val isolation_enable_off_domain : rule
(** An isolation holder guards a sleeping domain's output but its MTE
    enable comes from a {e different} domain, so the clamp engages (or
    releases) on the wrong domain's schedule. *)

val always_on_path : rule
(** A combinational path between awake endpoints routes through a
    sleeping domain's MT logic: the through-gate's output is stale or
    floating while both ends still run. *)

val all : rule list
val find : string -> rule option

val severity_name : severity -> string
(** ["error" | "warning"]. *)

type finding = {
  rule : rule;
  loc : string;  (** ["net:<name>"] or ["inst:<name>"] *)
  mode : string;
      (** sleep-mode vector the finding was observed in, e.g.
          ["sleep{a,b}"]; [""] on single-domain (legacy) analyses *)
  message : string;
  witness : string list;
      (** propagation path, origin first, as [net:]/[inst:] steps *)
}

val to_string : finding -> string
(** One line: [severity rule-id @ loc \[mode\]: message \[via a -> b\]];
    the [\[mode\]] segment is omitted when [mode] is empty. *)

val errors : finding list -> finding list
val warnings : finding list -> finding list
val has_errors : finding list -> bool

val summary : finding list -> string
(** ["N errors, M warnings"]. *)
