module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Walk = Smt_check.Walk
module Metrics = Smt_obs.Metrics
module Trace = Smt_obs.Trace
module Par = Smt_obs.Par
module L = Lattice

let m_runs = Metrics.counter "lint.runs"
let m_updates = Metrics.counter "lint.updates"
let m_transfers = Metrics.counter "lint.transfers"
let m_widened = Metrics.counter "lint.widened"
let m_mode_dedup = Metrics.counter "lint.mode_dedup"

type result = {
  findings : Rules.finding list;
  values : (string * L.v) list;
  transfers : int;
  widened : int;
  modes : string list;
}

(* Witness paths are net:/inst: steps, origin first; long chains keep
   the origin (where the float is born) and elide the middle. *)
let max_witness = 12

let extend_path base steps =
  let p = base @ steps in
  if List.length p <= max_witness then p
  else
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> [ "..." ]
    in
    take (max_witness - 1) p @ [ List.nth p (List.length p - 1) ]

(* --- sleep-mode vectors --- *)

(* A mode names the subset of sleepable domains currently asleep.  A
   netlist with no sleepable domain runs in the single legacy mode
   (everything MT sleeps at once, MTE net high). *)
type mode = { m_name : string; m_asleep : string list }

let legacy_mode = { m_name = ""; m_asleep = [] }

let modes_of nl =
  let sleepable =
    List.filter_map
      (fun (d, mte) -> match mte with Some _ -> Some d | None -> None)
      (Netlist.domains nl)
  in
  match sleepable with
  | [] -> [ legacy_mode ]
  | doms ->
    let k = List.length doms in
    if k > 10 then
      invalid_arg
        (Printf.sprintf "Verify: %d sleepable domains means %d modes; not a mode-vector job"
           k ((1 lsl k) - 1));
    let ms = ref [] in
    for mask = 1 to (1 lsl k) - 1 do
      let asleep = List.filteri (fun i _ -> mask land (1 lsl i) <> 0) doms in
      ms := { m_name = "sleep{" ^ String.concat "," asleep ^ "}"; m_asleep = asleep } :: !ms
    done;
    List.rev !ms

(* Domain facts shared by every mode of one run. *)
type dom_info = {
  di_sleepable : (string * Netlist.net_id) list;  (* declaration order *)
  di_dom : string array;  (* instance id -> domain name, "" = always-on *)
  di_mte_dom : (Netlist.net_id, string) Hashtbl.t;  (* enable net -> its domain *)
}

let dom_info_of nl =
  let ni = Netlist.inst_count nl in
  let di_dom = Array.make ni "" in
  Netlist.iter_insts nl (fun iid ->
      match Netlist.inst_domain nl iid with
      | Some d -> di_dom.(iid) <- d
      | None -> ());
  let di_mte_dom = Hashtbl.create 7 in
  let di_sleepable =
    List.filter_map
      (fun (d, mte) ->
        match mte with
        | Some m ->
          Hashtbl.replace di_mte_dom m d;
          Some (d, m)
        | None -> None)
      (Netlist.domains nl)
  in
  { di_sleepable; di_dom; di_mte_dom }

type state = {
  nl : Netlist.t;
  mode : mode;
  mutable info : dom_info;
  (* per-net effective value (after any holder), None = bottom *)
  mutable value : L.v option array;
  (* per-net driver value before the holder is applied *)
  mutable raw : L.v option array;
  (* seed witness per net, None for transfer-computed nets *)
  mutable seed_path : string list option array;
  (* witness paths, rebuilt deterministically after each fixpoint *)
  mutable path : string list array;
  mutable holders : (Netlist.net_id, Netlist.inst_id) Hashtbl.t;
  (* net -> instances to re-run when the net's value changes *)
  mutable deps : Netlist.inst_id list array;
  (* net -> held nets to re-settle when this (holder-MTE) net changes *)
  mutable holder_deps : Netlist.net_id list array;
  queue : Netlist.inst_id Queue.t;
  mutable queued : bool array;
  mutable transfers : int;  (* this run (analyze or update) only *)
  mutable widened : int;
}

let enqueue st iid =
  if not st.queued.(iid) then begin
    st.queued.(iid) <- true;
    Queue.push iid st.queue
  end

let rec enqueue_deps st nid =
  List.iter (enqueue st) st.deps.(nid);
  List.iter
    (fun held ->
      if st.raw.(held) <> None then settle st held)
    st.holder_deps.(nid)

(* Effective value of [nid] given its raw driver value: the holder wired
   to the net (if any) keeps a floating level when its own enable is 1.
   None = the holder's enable is not known yet, try again later. *)
and holder_view st nid rv =
  match Hashtbl.find_opt st.holders nid with
  | None -> Some rv
  | Some h -> (
    match Netlist.pin_net st.nl h "MTE" with
    | None -> Some rv (* inert keeper; the DRC flags the floating pin *)
    | Some m -> (
      match st.value.(m) with
      | None -> None
      | Some L.One -> Some (match rv with L.Float -> L.Held | v -> v)
      | Some L.Zero -> Some rv (* keeper disabled in standby *)
      | Some (L.Held | L.Float | L.Top) ->
        (* enable undetermined: a float may or may not be kept *)
        Some (if L.may_float rv then L.Top else rv)))

and settle st nid =
  match st.raw.(nid) with
  | None -> ()
  | Some rv -> (
    match holder_view st nid rv with
    | None -> ()
    | Some eff ->
      let old = st.value.(nid) in
      let nv = match L.bot_join old eff with Some v -> v | None -> eff in
      if old <> Some nv then begin
        st.value.(nid) <- Some nv;
        enqueue_deps st nid
      end)

let set_raw st nid v =
  let old = st.raw.(nid) in
  let nv = match L.bot_join old v with Some x -> x | None -> v in
  if old <> Some nv then begin
    st.raw.(nid) <- Some nv;
    settle st nid
  end

(* Cells whose output the worklist computes: combinational logic.
   Flip-flop outputs are standby sources (seeded Held), switches and
   holders have no logic output. *)
let transferable kind =
  match kind with
  | Func.Dff | Func.Sleep_switch | Func.Holder -> false
  | _ -> true

let net_token nl nid = "net:" ^ Netlist.net_name nl nid
let inst_token nl iid = "inst:" ^ Netlist.inst_name nl iid

(* How the gate is supplied in the analyzed mode. *)
type supply =
  | Powered  (** true rails: evaluates *)
  | Cut  (** virtual ground open: output floats *)
  | Internally_held  (** embedded MT-cell asleep: private holder drives *)
  | Unknown_power of Netlist.net_id  (** enable not constant; net is the witness *)
  | Defer_supply

let supply_of st iid (cell : Cell.t) =
  match cell.Cell.style with
  | Vth.Plain -> Powered
  | Vth.Mt_no_vgnd -> Cut (* no path to ground at all *)
  | Vth.Mt_embedded -> (
    match Netlist.pin_net st.nl iid "MTE" with
    | None -> Powered (* enable floating: DRC territory; logic still wired *)
    | Some m -> (
      match st.value.(m) with
      | None -> Defer_supply
      | Some L.One -> Internally_held
      | Some L.Zero -> Powered
      | Some (L.Held | L.Float | L.Top) -> Unknown_power m))
  | Vth.Mt_vgnd -> (
    match Walk.vgnd_state st.nl iid with
    | Walk.Ungated -> Powered (* unreachable for this style *)
    | Walk.Floating_vgnd | Walk.Dead_switch _ -> Cut
    | Walk.Gated sw -> (
      match Netlist.pin_net st.nl sw "MTE" with
      | None -> Unknown_power (Option.get (Netlist.output_net st.nl iid))
      | Some m -> (
        match st.value.(m) with
        | None -> Defer_supply
        | Some L.One -> Cut (* switch off: sleeping as designed *)
        | Some L.Zero -> Powered (* switch stuck on: mte-polarity finding *)
        | Some (L.Held | L.Float | L.Top) -> Unknown_power m)))

let transfer st iid =
  let cell = Netlist.cell st.nl iid in
  match Netlist.output_net st.nl iid with
  | None -> ()
  | Some out -> (
    st.transfers <- st.transfers + 1;
    match supply_of st iid cell with
    | Defer_supply -> ()
    | Cut -> set_raw st out L.Float
    | Internally_held -> set_raw st out L.Held
    | Unknown_power _ -> set_raw st out L.Top
    | Powered ->
      let names = Func.input_names cell.Cell.kind in
      let n = Array.length names in
      let ins = Array.make n L.Top in
      let ready = ref true in
      for i = 0 to n - 1 do
        match Netlist.pin_net st.nl iid names.(i) with
        | None -> ins.(i) <- L.Float (* an unconnected gate input floats *)
        | Some nid -> (
          match st.value.(nid) with
          | None -> ready := false
          | Some v -> ins.(i) <- v)
      done;
      if !ready then set_raw st out (L.eval cell.Cell.kind ins))

(* --- seeding ---
   [in_cone] restricts which nets get (re-)seeded: everything on a full
   run, only the dirty cone on an incremental one.  Seed notes are
   mode-independent where possible so findings dedup across modes. *)
let seed st ~in_cone =
  let nl = st.nl in
  let legacy = st.mode.m_name = "" in
  let mte_net = if legacy then Netlist.find_net nl "MTE" else None in
  Netlist.iter_nets nl (fun nid ->
      if in_cone nid then
        if Netlist.is_pi nl nid then begin
          let v, note =
            if legacy && mte_net = Some nid then (L.One, " (MTE=1 in standby)")
            else
              match Hashtbl.find_opt st.info.di_mte_dom nid with
              | Some d ->
                ( (if List.mem d st.mode.m_asleep then L.One else L.Zero),
                  Printf.sprintf " (domain %s enable)" d )
              | None ->
                if Netlist.is_clock_net nl nid then (L.Zero, " (clock parked low)")
                else (L.Held, " (primary input, frozen)")
          in
          st.seed_path.(nid) <- Some [ net_token nl nid ^ note ];
          set_raw st nid v
        end
        else if Netlist.driver nl nid = None then begin
          st.seed_path.(nid) <- Some [ net_token nl nid ^ " (no driver)" ];
          set_raw st nid L.Float
        end);
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      if cell.Cell.kind = Func.Dff then
        match Netlist.output_net nl iid with
        | Some q when in_cone q ->
          st.seed_path.(q) <-
            Some [ inst_token nl iid ^ " (flip-flop state)"; net_token nl q ];
          set_raw st q L.Held
        | Some _ | None -> ())

(* --- structure: holders + dependency edges, from the current netlist --- *)
let build_structure st =
  let nl = st.nl in
  let nn = Netlist.net_count nl in
  st.holders <- Walk.holder_pins nl;
  st.deps <- Array.make nn [];
  st.holder_deps <- Array.make nn [];
  let add_dep nid iid = st.deps.(nid) <- iid :: st.deps.(nid) in
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      if transferable cell.Cell.kind then begin
        Array.iter
          (fun pin ->
            match Netlist.pin_net nl iid pin with
            | Some nid -> add_dep nid iid
            | None -> ())
          (Func.input_names cell.Cell.kind);
        match cell.Cell.style with
        | Vth.Mt_embedded -> (
          match Netlist.pin_net nl iid "MTE" with
          | Some m -> add_dep m iid
          | None -> ())
        | Vth.Mt_vgnd -> (
          (* the member re-evaluates when its switch's enable changes *)
          match Walk.vgnd_state nl iid with
          | Walk.Gated sw -> (
            match Netlist.pin_net nl sw "MTE" with
            | Some m -> add_dep m iid
            | None -> ())
          | _ -> ())
        | Vth.Plain | Vth.Mt_no_vgnd -> ()
      end);
  (* a holder's enable gates the effective value of the net its Z pin
     touches: re-settle that net when the enable net moves *)
  Hashtbl.iter
    (fun nid h ->
      match Netlist.pin_net nl h "MTE" with
      | Some m -> st.holder_deps.(m) <- nid :: st.holder_deps.(m)
      | None -> ())
    st.holders;
  for nid = 0 to nn - 1 do
    st.deps.(nid) <- List.rev st.deps.(nid);
    st.holder_deps.(nid) <- List.rev st.holder_deps.(nid)
  done

let fixpoint st =
  let drained = ref false in
  while not !drained do
    while not (Queue.is_empty st.queue) do
      let iid = Queue.pop st.queue in
      st.queued.(iid) <- false;
      transfer st iid
    done;
    (* widening: anything still bottom sits in (or behind) a
       combinational cycle the deferring transfers cannot enter; force
       those nets to Top and resume until nothing is bottom *)
    let bottoms = ref [] in
    Netlist.iter_nets st.nl (fun nid ->
        if st.value.(nid) = None then bottoms := nid :: !bottoms);
    match List.rev !bottoms with
    | [] -> drained := true
    | nids ->
      st.widened <- st.widened + List.length nids;
      List.iter
        (fun nid ->
          st.value.(nid) <- Some L.Top;
          enqueue_deps st nid)
        nids
  done

(* --- witnesses ---
   Rebuilt from the fixpoint values by a memoized walk entered in net-id
   order, so a path depends only on the final values — never on the
   order the worklist happened to visit nets in.  That is what makes an
   incremental update's report byte-identical to a from-scratch run. *)
let rebuild_paths st =
  let nl = st.nl in
  let nn = Netlist.net_count nl in
  let path = Array.make nn [] in
  let stat = Array.make nn 0 in
  (* 0 unvisited, 1 in progress, 2 done *)
  let rec build nid =
    if stat.(nid) = 2 then path.(nid)
    else if stat.(nid) = 1 then [ net_token nl nid ^ " (cyclic)" ]
    else begin
      stat.(nid) <- 1;
      let p =
        match st.seed_path.(nid) with
        | Some sp -> sp
        | None -> (
          match Netlist.driver nl nid with
          | None -> [ net_token nl nid ] (* unreachable: undriven nets are seeded *)
          | Some dp ->
            let iid = dp.Netlist.inst in
            let cell = Netlist.cell nl iid in
            if not (transferable cell.Cell.kind) then
              [ inst_token nl iid; net_token nl nid ]
            else (
              match supply_of st iid cell with
              | Cut -> [ inst_token nl iid ^ " (VGND cut in standby)"; net_token nl nid ]
              | Internally_held ->
                [ inst_token nl iid ^ " (embedded holder)"; net_token nl nid ]
              | Unknown_power m ->
                extend_path (build m)
                  [ inst_token nl iid ^ " (enable undetermined)"; net_token nl nid ]
              | Defer_supply -> [ net_token nl nid ^ " (widened: cyclic)" ]
              | Powered ->
                if st.raw.(nid) = None then [ net_token nl nid ^ " (widened: cyclic)" ]
                else begin
                  let names = Func.input_names cell.Cell.kind in
                  let n = Array.length names in
                  let ins = Array.make n L.Top in
                  let nets = Array.make n None in
                  for i = 0 to n - 1 do
                    match Netlist.pin_net nl iid names.(i) with
                    | None -> ins.(i) <- L.Float
                    | Some src -> (
                      nets.(i) <- Some src;
                      match st.value.(src) with
                      | Some v -> ins.(i) <- v
                      | None -> ins.(i) <- L.Top)
                  done;
                  (* witness: the first possibly-floating input when
                     contaminated, else the first input *)
                  let pick pred =
                    let r = ref None in
                    for i = n - 1 downto 0 do
                      match nets.(i) with
                      | Some s when pred ins.(i) -> r := Some s
                      | Some _ | None -> ()
                    done;
                    !r
                  in
                  let v = match st.raw.(nid) with Some v -> v | None -> L.Top in
                  let source =
                    match (L.may_float v, pick L.may_float) with
                    | true, (Some _ as s) -> s
                    | _ -> pick (fun _ -> true)
                  in
                  let base = match source with Some s -> build s | None -> [] in
                  extend_path base [ inst_token nl iid; net_token nl nid ]
                end))
      in
      path.(nid) <- p;
      stat.(nid) <- 2;
      p
    end
  in
  for nid = 0 to nn - 1 do
    ignore (build nid)
  done;
  st.path <- path

(* --- rules, evaluated once per mode --- *)
let eval_rules st ~deepest =
  let nl = st.nl in
  let legacy = st.mode.m_name = "" in
  let asleep d = d <> "" && List.mem d st.mode.m_asleep in
  let dom_of iid = st.info.di_dom.(iid) in
  let out = ref [] in
  let emit rule loc ?(witness = []) fmt =
    Printf.ksprintf
      (fun message ->
        out := { Rules.rule; loc; mode = st.mode.m_name; message; witness } :: !out)
      fmt
  in
  let value nid = match st.value.(nid) with Some v -> v | None -> L.Top in
  (* a reader that sees the net's level in this mode: not switch/holder
     plumbing, and either always-on or an MT-cell of an awake domain *)
  let powered_reader (p : Netlist.pin) =
    let c = Netlist.cell nl p.Netlist.inst in
    (not (Func.is_infrastructure c.Cell.kind))
    && ((not (Cell.is_mt c)) || ((not legacy) && not (asleep (dom_of p.Netlist.inst))))
  in
  (* [Some d] when the net is driven by MT logic of a domain asleep in
     this mode: candidate boundary-crossing source *)
  let crossing_source nid =
    if legacy then None
    else
      match Netlist.driver nl nid with
      | Some p when Cell.is_mt (Netlist.cell nl p.Netlist.inst) ->
        let d = dom_of p.Netlist.inst in
        if asleep d then Some d else None
      | _ -> None
  in
  let enable_domain e =
    match Hashtbl.find_opt st.info.di_mte_dom e with
    | Some d -> d
    | None -> (
      match Netlist.driver nl e with
      | Some p -> dom_of p.Netlist.inst
      | None -> "")
  in
  (* Holders whose cross-wired enable is the root cause are excluded
     from the generic MTE-constant check below. *)
  let iso_flagged : (Netlist.inst_id, unit) Hashtbl.t = Hashtbl.create 7 in
  (* net rules *)
  Netlist.iter_nets nl (fun nid ->
      let name = Netlist.net_name nl nid in
      let loc = "net:" ^ name in
      let v = value nid in
      let readers = List.filter powered_reader (Netlist.sinks nl nid) in
      let cross = crossing_source nid in
      let iso_bad =
        match (Hashtbl.find_opt st.holders nid, cross) with
        | Some h, Some d -> (
          match Netlist.pin_net nl h "MTE" with
          | Some e ->
            let ed = enable_domain e in
            if ed <> d then Some (h, e, ed, d) else None
          | None -> None)
        | _ -> None
      in
      (match v with
      | L.Float -> (
        match cross with
        | None ->
          if Netlist.is_po nl nid then
            emit Rules.float_into_awake loc ~witness:st.path.(nid)
              "net floats in standby and is a primary output"
          else if readers <> [] then
            let r = List.hd readers in
            emit Rules.float_into_awake loc ~witness:st.path.(nid)
              "net floats in standby; %d always-on sink%s (first: %s.%s)"
              (List.length readers)
              (if List.length readers = 1 then "" else "s")
              (Netlist.inst_name nl r.Netlist.inst)
              r.Netlist.pin_name
        | Some d ->
          if Netlist.is_po nl nid then
            emit Rules.float_into_awake loc ~witness:st.path.(nid)
              "net floats in standby and is a primary output";
          let local, foreign =
            List.partition (fun (p : Netlist.pin) -> dom_of p.Netlist.inst = d) readers
          in
          (if local <> [] then
             let r = List.hd local in
             emit Rules.float_into_awake loc ~witness:st.path.(nid)
               "net floats in standby; %d always-on sink%s (first: %s.%s)"
               (List.length local)
               (if List.length local = 1 then "" else "s")
               (Netlist.inst_name nl r.Netlist.inst)
               r.Netlist.pin_name);
          (match foreign with
          | [] -> ()
          | r :: _ when iso_bad = None ->
            let rd = dom_of r.Netlist.inst in
            let rdom = if rd = "" then "always-on logic" else "domain " ^ rd in
            if Hashtbl.mem st.holders nid then
              emit Rules.cross_domain_float loc ~witness:st.path.(nid)
                "net from sleeping domain %s floats into awake logic: %d powered sink%s \
                 outside the domain (first: %s.%s in %s); the wired holder does not engage"
                d (List.length foreign)
                (if List.length foreign = 1 then "" else "s")
                (Netlist.inst_name nl r.Netlist.inst)
                r.Netlist.pin_name rdom
            else
              emit Rules.missing_isolation loc ~witness:st.path.(nid)
                "net leaves sleeping domain %s with no isolation holder; %d powered \
                 sink%s in other domains (first: %s.%s in %s)"
                d (List.length foreign)
                (if List.length foreign = 1 then "" else "s")
                (Netlist.inst_name nl r.Netlist.inst)
                r.Netlist.pin_name rdom
          | _ :: _ -> ()))
      | L.Top -> (
        if Netlist.is_po nl nid then
          emit Rules.crowbar_risk loc ~witness:st.path.(nid)
            "primary output may float in standby (value top)";
        match cross with
        | Some d
          when iso_bad = None
               && Hashtbl.mem st.holders nid
               && (match st.raw.(nid) with Some rv -> L.may_float rv | None -> true) -> (
          let foreign =
            List.filter (fun (p : Netlist.pin) -> dom_of p.Netlist.inst <> d) readers
          in
          match foreign with
          | [] -> ()
          | r :: _ ->
            emit Rules.cross_domain_float loc ~witness:st.path.(nid)
              "net from sleeping domain %s may float into awake logic (holder enable is \
               not a constant); %d powered sink%s outside the domain (first: %s.%s)"
              d (List.length foreign)
              (if List.length foreign = 1 then "" else "s")
              (Netlist.inst_name nl r.Netlist.inst)
              r.Netlist.pin_name)
        | _ -> ())
      | L.Zero | L.One | L.Held -> ());
      (match iso_bad with
      | Some (h, e, ed, d) ->
        Hashtbl.replace iso_flagged h ();
        let edn = if ed = "" then "the always-on domain" else "domain " ^ ed in
        emit Rules.isolation_enable_off_domain
          ("inst:" ^ Netlist.inst_name nl h)
          ~witness:st.path.(e)
          "isolation holder on net %s guards sleeping domain %s but its enable (net %s) \
           belongs to %s"
          name d (Netlist.net_name nl e) edn
      | None -> ());
      (* uselessness is judged in the deepest mode only: a holder idle in
         a partial-sleep mode may be doing its job in a deeper one *)
      if deepest then
        match Hashtbl.find_opt st.holders nid with
        | None -> ()
        | Some h -> (
          let hname = Netlist.inst_name nl h in
          let boundary =
            match cross with
            | None -> false
            | Some d ->
              List.exists
                (fun (p : Netlist.pin) ->
                  (not (Func.is_infrastructure (Netlist.cell nl p.Netlist.inst).Cell.kind))
                  && dom_of p.Netlist.inst <> d)
                (Netlist.sinks nl nid)
          in
          match st.raw.(nid) with
          | Some ((L.Zero | L.One | L.Held) as r) ->
            emit Rules.useless_holder loc
              "holder %s keeps a net that never floats (driver value %s in standby)" hname
              (L.to_string r)
          | Some L.Float when (not (Netlist.is_po nl nid)) && readers = [] && not boundary ->
            emit Rules.useless_holder loc
              "holder %s keeps a net only floating MT logic reads" hname
          | Some (L.Float | L.Top) | None -> ()));
  (* instance rules *)
  let holder_net : (Netlist.inst_id, Netlist.net_id) Hashtbl.t = Hashtbl.create 7 in
  Hashtbl.iter (fun nid h -> Hashtbl.replace holder_net h nid) st.holders;
  let mte_pin_check iid what =
    match Netlist.pin_net nl iid what with
    | None -> () (* DRC: floating required pin *)
    | Some m -> (
      let loc = "inst:" ^ Netlist.inst_name nl iid in
      let kind = Netlist.cell nl iid in
      let role =
        match kind.Cell.kind with
        | Func.Sleep_switch -> "sleep switch"
        | Func.Holder -> "holder"
        | _ -> "embedded MT-cell"
      in
      (* the domain whose sleep schedule this enable should follow *)
      let gov =
        if legacy then ""
        else
          match kind.Cell.kind with
          | Func.Holder -> (
            match Hashtbl.find_opt holder_net iid with
            | Some nid -> (
              match Netlist.driver nl nid with
              | Some p when Cell.is_mt (Netlist.cell nl p.Netlist.inst) ->
                dom_of p.Netlist.inst
              | _ -> "")
            | None -> "")
          | _ -> dom_of iid
      in
      if legacy || gov = "" || asleep gov then begin
        match value m with
        | L.One -> ()
        | L.Zero ->
          emit Rules.mte_polarity loc ~witness:st.path.(m)
            "%s enable is 0 in standby (net %s): it never sleeps%s" role
            (Netlist.net_name nl m)
            (match kind.Cell.kind with
            | Func.Holder -> "; the net it keeps is unguarded"
            | _ -> "")
        | (L.Held | L.Float | L.Top) as v ->
          emit Rules.mte_undetermined loc ~witness:st.path.(m)
            "%s enable is %s in standby (net %s), not a constant" role (L.to_string v)
            (Netlist.net_name nl m)
      end
      else begin
        (* governing domain awake in this mode *)
        match kind.Cell.kind with
        | Func.Holder -> () (* a keeper engaged while its source drives is harmless *)
        | _ -> (
          match value m with
          | L.Zero -> ()
          | L.One ->
            emit Rules.mte_polarity loc ~witness:st.path.(m)
              "%s enable is 1 while domain %s is awake (net %s): the domain sleeps when \
               it should run"
              role gov (Netlist.net_name nl m)
          | (L.Held | L.Float | L.Top) as v ->
            emit Rules.mte_undetermined loc ~witness:st.path.(m)
              "%s enable is %s while domain %s is awake (net %s), not a constant" role
              (L.to_string v) gov (Netlist.net_name nl m))
      end)
  in
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      (match cell.Cell.kind with
      | Func.Sleep_switch -> mte_pin_check iid "MTE"
      | Func.Holder -> if not (Hashtbl.mem iso_flagged iid) then mte_pin_check iid "MTE"
      | Func.Dff ->
        if Library.is_retention cell then begin
          match Netlist.pin_net nl iid "D" with
          | Some d when L.may_float (value d) ->
            emit Rules.retention_input_float
              ("inst:" ^ Netlist.inst_name nl iid)
              ~witness:st.path.(d)
              "retention flip-flop data input is %s in standby (net %s)"
              (L.to_string (value d)) (Netlist.net_name nl d)
          | Some _ | None -> ()
        end
      | _ -> if Vth.style_equal cell.Cell.style Vth.Mt_embedded then mte_pin_check iid "MTE");
      (* crowbar: a powered gate fed by a maybe-floating level *)
      (if Vth.style_equal cell.Cell.style Vth.Plain && transferable cell.Cell.kind then begin
         let names = Func.input_names cell.Cell.kind in
         let bad = ref None in
         Array.iter
           (fun pin ->
             if !bad = None then
               match Netlist.pin_net nl iid pin with
               | Some nid when value nid = L.Top -> bad := Some (pin, nid)
               | Some _ | None -> ())
           names;
         match !bad with
         | Some (pin, nid) ->
           emit Rules.crowbar_risk
             ("inst:" ^ Netlist.inst_name nl iid)
             ~witness:st.path.(nid)
             "powered gate input %s may be at an intermediate level in standby (net %s)"
             pin (Netlist.net_name nl nid)
         | None -> ()
       end);
      (* always-on path: this gate sleeps while both the logic feeding it
         and the logic reading it stay powered — a structural routing
         hazard even when isolation clamps the level *)
      if (not legacy) && Cell.is_mt cell && transferable cell.Cell.kind then begin
        let d = dom_of iid in
        if asleep d then
          match Netlist.output_net nl iid with
          | None -> ()
          | Some out -> (
            let powered_src (p : Netlist.pin) =
              let c = Netlist.cell nl p.Netlist.inst in
              (not (Func.is_infrastructure c.Cell.kind))
              && ((not (Cell.is_mt c)) || not (asleep (dom_of p.Netlist.inst)))
            in
            let live_in = ref None in
            Array.iter
              (fun pin ->
                if !live_in = None then
                  match Netlist.pin_net nl iid pin with
                  | None -> ()
                  | Some src -> (
                    match Netlist.driver nl src with
                    | Some p when dom_of p.Netlist.inst <> d && powered_src p ->
                      live_in := Some (pin, src)
                    | Some _ | None -> ()))
              (Func.input_names cell.Cell.kind);
            match !live_in with
            | None -> ()
            | Some (pin, src) ->
              let read_out =
                Netlist.is_po nl out
                || List.exists
                     (fun (p : Netlist.pin) ->
                       powered_reader p && dom_of p.Netlist.inst <> d)
                     (Netlist.sinks nl out)
              in
              if read_out then
                emit Rules.always_on_path
                  ("inst:" ^ Netlist.inst_name nl iid)
                  ~witness:
                    [
                      net_token nl src;
                      inst_token nl iid ^ " (through sleeping domain " ^ d ^ ")";
                      net_token nl out;
                    ]
                  "path through sleeping domain %s: input %s is driven from awake logic \
                   and output %s is read outside the domain"
                  d pin (Netlist.net_name nl out))
      end);
  List.rev !out

(* --- per-mode runs --- *)

let make_state nl info mode =
  let nn = Netlist.net_count nl in
  let ni = Netlist.inst_count nl in
  {
    nl;
    mode;
    info;
    value = Array.make nn None;
    raw = Array.make nn None;
    seed_path = Array.make nn None;
    path = Array.make nn [];
    holders = Hashtbl.create 7;
    deps = Array.make nn [];
    holder_deps = Array.make nn [];
    queue = Queue.create ();
    queued = Array.make ni false;
    transfers = 0;
    widened = 0;
  }

let run_mode nl info mode ~deepest =
  let st = make_state nl info mode in
  build_structure st;
  seed st ~in_cone:(fun _ -> true);
  Netlist.iter_insts nl (fun iid ->
      if transferable (Netlist.cell nl iid).Cell.kind then enqueue st iid);
  fixpoint st;
  rebuild_paths st;
  let findings = eval_rules st ~deepest in
  (st, findings)

(* Findings from different modes that agree on (rule, location, witness)
   are one defect observed twice; the first (shallowest) mode wins. *)
let dedup_findings per_mode =
  let seen = Hashtbl.create 97 in
  let dupes = ref 0 in
  let kept =
    List.concat_map
      (List.filter (fun (f : Rules.finding) ->
           let key =
             String.concat "\x00" (f.Rules.rule.Rules.id :: f.Rules.loc :: f.Rules.witness)
           in
           if Hashtbl.mem seen key then begin
             incr dupes;
             false
           end
           else begin
             Hashtbl.add seen key ();
             true
           end))
      per_mode
  in
  (kept, !dupes)

let finish nl sf =
  let findings, dupes = dedup_findings (List.map snd sf) in
  Metrics.incr m_mode_dedup ~by:dupes;
  let transfers = List.fold_left (fun a (st, _) -> a + st.transfers) 0 sf in
  let widened = List.fold_left (fun a (st, _) -> a + st.widened) 0 sf in
  Metrics.incr m_transfers ~by:transfers;
  Metrics.incr m_widened ~by:widened;
  let deep = fst (List.nth sf (List.length sf - 1)) in
  let value nid = match deep.value.(nid) with Some v -> v | None -> L.Top in
  let values = ref [] in
  Netlist.iter_nets nl (fun nid ->
      values := (Netlist.net_name nl nid, value nid) :: !values);
  {
    findings;
    values = List.rev !values;
    transfers;
    widened;
    modes = List.map (fun (st, _) -> st.mode.m_name) sf;
  }

let run_all ~jobs nl =
  let modes = modes_of nl in
  let info = dom_info_of nl in
  let last = List.length modes - 1 in
  let tagged = List.mapi (fun i m -> (i = last, m)) modes in
  Par.map ~jobs (fun (deepest, m) -> run_mode nl info m ~deepest) tagged

let analyze ?(jobs = 1) nl =
  Trace.with_span "Verify.analyze" ~args:[ ("circuit", Netlist.design_name nl) ]
  @@ fun () ->
  Metrics.incr m_runs;
  finish nl (run_all ~jobs nl)

(* --- incremental sessions --- *)

type session = {
  s_nl : Netlist.t;
  mutable s_states : state list;
  mutable s_mode_names : string list;
}

let start ?(jobs = 1) nl =
  Trace.with_span "Verify.start" ~args:[ ("circuit", Netlist.design_name nl) ]
  @@ fun () ->
  Metrics.incr m_runs;
  let sf = run_all ~jobs nl in
  ignore (Netlist.drain_touched nl);
  let s =
    {
      s_nl = nl;
      s_states = List.map fst sf;
      s_mode_names = List.map (fun (st, _) -> st.mode.m_name) sf;
    }
  in
  (s, finish nl sf)

let grow_arr old default n =
  if Array.length old >= n then old
  else begin
    let a = Array.make n default in
    Array.blit old 0 a 0 (Array.length old);
    a
  end

(* Forward closure of the dirty set over data, supply, and holder-enable
   edges: every net whose value could depend on a dirty net. *)
let cone_of st dirty =
  let nn = Netlist.net_count st.nl in
  let in_cone = Array.make nn false in
  let q = Queue.create () in
  let add nid =
    if nid >= 0 && nid < nn && not in_cone.(nid) then begin
      in_cone.(nid) <- true;
      Queue.push nid q
    end
  in
  List.iter add dirty;
  while not (Queue.is_empty q) do
    let nid = Queue.pop q in
    List.iter
      (fun iid ->
        match Netlist.output_net st.nl iid with Some o -> add o | None -> ())
      st.deps.(nid);
    List.iter add st.holder_deps.(nid)
  done;
  in_cone

let update_mode st info ~dirty ~deepest =
  st.info <- info;
  let nn = Netlist.net_count st.nl in
  let ni = Netlist.inst_count st.nl in
  st.value <- grow_arr st.value None nn;
  st.raw <- grow_arr st.raw None nn;
  st.seed_path <- grow_arr st.seed_path None nn;
  st.queued <- grow_arr st.queued false ni;
  st.transfers <- 0;
  st.widened <- 0;
  build_structure st;
  let in_cone = cone_of st dirty in
  Array.iteri
    (fun nid dirty_here ->
      if dirty_here then begin
        st.raw.(nid) <- None;
        st.value.(nid) <- None;
        st.seed_path.(nid) <- None
      end)
    in_cone;
  seed st ~in_cone:(fun nid -> in_cone.(nid));
  Netlist.iter_nets st.nl (fun nid ->
      if in_cone.(nid) then
        match Netlist.driver st.nl nid with
        | Some p when transferable (Netlist.cell st.nl p.Netlist.inst).Cell.kind ->
          enqueue st p.Netlist.inst
        | Some _ | None -> ());
  fixpoint st;
  rebuild_paths st;
  let findings = eval_rules st ~deepest in
  (st, findings)

let update ?(jobs = 1) ?dirty s =
  Trace.with_span "Verify.update" ~args:[ ("circuit", Netlist.design_name s.s_nl) ]
  @@ fun () ->
  Metrics.incr m_updates;
  let nl = s.s_nl in
  let dirty = match dirty with Some d -> d | None -> Netlist.drain_touched nl in
  let names = List.map (fun m -> m.m_name) (modes_of nl) in
  if names <> s.s_mode_names then begin
    (* the domain table itself changed: mode vector is different, restart *)
    let sf = run_all ~jobs nl in
    ignore (Netlist.drain_touched nl);
    s.s_states <- List.map fst sf;
    s.s_mode_names <- names;
    finish nl sf
  end
  else begin
    let info = dom_info_of nl in
    let last = List.length s.s_states - 1 in
    let tagged = List.mapi (fun i st -> (i = last, st)) s.s_states in
    let sf = Par.map ~jobs (fun (deepest, st) -> update_mode st info ~dirty ~deepest) tagged in
    s.s_states <- List.map fst sf;
    finish nl sf
  end

let value_of r name =
  List.assoc_opt name r.values
