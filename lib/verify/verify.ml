module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Walk = Smt_check.Walk
module Metrics = Smt_obs.Metrics
module Trace = Smt_obs.Trace
module L = Lattice

let m_runs = Metrics.counter "lint.runs"
let m_transfers = Metrics.counter "lint.transfers"
let m_widened = Metrics.counter "lint.widened"

type result = {
  findings : Rules.finding list;
  values : (string * L.v) list;
  transfers : int;
  widened : int;
}

(* Witness paths are net:/inst: steps, origin first; long chains keep
   the origin (where the float is born) and elide the middle. *)
let max_witness = 12

let extend_path base steps =
  let p = base @ steps in
  if List.length p <= max_witness then p
  else
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> [ "..." ]
    in
    take (max_witness - 1) p @ [ List.nth p (List.length p - 1) ]

type state = {
  nl : Netlist.t;
  (* per-net effective value (after any holder), None = bottom *)
  value : L.v option array;
  (* per-net driver value before the holder is applied *)
  raw : L.v option array;
  path : string list array;
  holders : (Netlist.net_id, Netlist.inst_id) Hashtbl.t;
  (* net -> instances to re-run when the net's value changes *)
  deps : Netlist.inst_id list array;
  (* net -> held nets to re-settle when this (holder-MTE) net changes *)
  holder_deps : Netlist.net_id list array;
  queue : Netlist.inst_id Queue.t;
  queued : bool array;
  mutable transfers : int;
}

let enqueue st iid =
  if not st.queued.(iid) then begin
    st.queued.(iid) <- true;
    Queue.push iid st.queue
  end

let rec enqueue_deps st nid =
  List.iter (enqueue st) st.deps.(nid);
  List.iter
    (fun held ->
      if st.raw.(held) <> None then settle st held)
    st.holder_deps.(nid)

(* Effective value of [nid] given its raw driver value: the holder wired
   to the net (if any) keeps a floating level when its own enable is 1.
   None = the holder's enable is not known yet, try again later. *)
and holder_view st nid rv =
  match Hashtbl.find_opt st.holders nid with
  | None -> Some rv
  | Some h -> (
    match Netlist.pin_net st.nl h "MTE" with
    | None -> Some rv (* inert keeper; the DRC flags the floating pin *)
    | Some m -> (
      match st.value.(m) with
      | None -> None
      | Some L.One -> Some (match rv with L.Float -> L.Held | v -> v)
      | Some L.Zero -> Some rv (* keeper disabled in standby *)
      | Some (L.Held | L.Float | L.Top) ->
        (* enable undetermined: a float may or may not be kept *)
        Some (if L.may_float rv then L.Top else rv)))

and settle st nid =
  match st.raw.(nid) with
  | None -> ()
  | Some rv -> (
    match holder_view st nid rv with
    | None -> ()
    | Some eff ->
      let old = st.value.(nid) in
      let nv = match L.bot_join old eff with Some v -> v | None -> eff in
      if old <> Some nv then begin
        st.value.(nid) <- Some nv;
        enqueue_deps st nid
      end)

let set_raw st nid v path =
  let old = st.raw.(nid) in
  let nv = match L.bot_join old v with Some x -> x | None -> v in
  if old <> Some nv then begin
    st.raw.(nid) <- Some nv;
    st.path.(nid) <- path;
    settle st nid
  end

(* Cells whose output the worklist computes: combinational logic.
   Flip-flop outputs are standby sources (seeded Held), switches and
   holders have no logic output. *)
let transferable kind =
  match kind with
  | Func.Dff | Func.Sleep_switch | Func.Holder -> false
  | _ -> true

let net_token nl nid = "net:" ^ Netlist.net_name nl nid
let inst_token nl iid = "inst:" ^ Netlist.inst_name nl iid

(* How the gate is supplied in standby. *)
type supply =
  | Powered  (** true rails: evaluates *)
  | Cut  (** virtual ground open: output floats *)
  | Internally_held  (** embedded MT-cell asleep: private holder drives *)
  | Unknown_power of Netlist.net_id  (** enable not constant; net is the witness *)
  | Defer_supply

let supply_of st iid (cell : Cell.t) =
  match cell.Cell.style with
  | Vth.Plain -> Powered
  | Vth.Mt_no_vgnd -> Cut (* no path to ground at all *)
  | Vth.Mt_embedded -> (
    match Netlist.pin_net st.nl iid "MTE" with
    | None -> Powered (* enable floating: DRC territory; logic still wired *)
    | Some m -> (
      match st.value.(m) with
      | None -> Defer_supply
      | Some L.One -> Internally_held
      | Some L.Zero -> Powered
      | Some (L.Held | L.Float | L.Top) -> Unknown_power m))
  | Vth.Mt_vgnd -> (
    match Walk.vgnd_state st.nl iid with
    | Walk.Ungated -> Powered (* unreachable for this style *)
    | Walk.Floating_vgnd | Walk.Dead_switch _ -> Cut
    | Walk.Gated sw -> (
      match Netlist.pin_net st.nl sw "MTE" with
      | None -> Unknown_power (Option.get (Netlist.output_net st.nl iid))
      | Some m -> (
        match st.value.(m) with
        | None -> Defer_supply
        | Some L.One -> Cut (* switch off: sleeping as designed *)
        | Some L.Zero -> Powered (* switch stuck on: mte-polarity finding *)
        | Some (L.Held | L.Float | L.Top) -> Unknown_power m)))

let transfer st iid =
  let cell = Netlist.cell st.nl iid in
  match Netlist.output_net st.nl iid with
  | None -> ()
  | Some out -> (
    st.transfers <- st.transfers + 1;
    match supply_of st iid cell with
    | Defer_supply -> ()
    | Cut ->
      set_raw st out
        (L.Float)
        [ inst_token st.nl iid ^ " (VGND cut in standby)"; net_token st.nl out ]
    | Internally_held ->
      set_raw st out L.Held
        [ inst_token st.nl iid ^ " (embedded holder)"; net_token st.nl out ]
    | Unknown_power m ->
      set_raw st out L.Top
        (extend_path st.path.(m)
           [ inst_token st.nl iid ^ " (enable undetermined)"; net_token st.nl out ])
    | Powered ->
      let names = Func.input_names cell.Cell.kind in
      let n = Array.length names in
      let ins = Array.make n L.Top in
      let nets = Array.make n None in
      let ready = ref true in
      for i = 0 to n - 1 do
        match Netlist.pin_net st.nl iid names.(i) with
        | None -> ins.(i) <- L.Float (* an unconnected gate input floats *)
        | Some nid -> (
          nets.(i) <- Some nid;
          match st.value.(nid) with
          | None -> ready := false
          | Some v -> ins.(i) <- v)
      done;
      if !ready then begin
        let v = L.eval cell.Cell.kind ins in
        (* witness: the first possibly-floating input when contaminated,
           else the first input *)
        let pick pred =
          let r = ref None in
          for i = n - 1 downto 0 do
            match nets.(i) with
            | Some nid when pred ins.(i) -> r := Some nid
            | Some _ | None -> ()
          done;
          !r
        in
        let source =
          match (L.may_float v, pick L.may_float) with
          | true, (Some _ as s) -> s
          | _ -> pick (fun _ -> true)
        in
        let base = match source with Some nid -> st.path.(nid) | None -> [] in
        set_raw st out
          v
          (extend_path base [ inst_token st.nl iid; net_token st.nl out ])
      end)

let seed_value st nid v note =
  set_raw st nid v [ net_token st.nl nid ^ note ]

let analyze nl =
  Trace.with_span "Verify.analyze" ~args:[ ("circuit", Netlist.design_name nl) ]
  @@ fun () ->
  Metrics.incr m_runs;
  let nn = Netlist.net_count nl in
  let ni = Netlist.inst_count nl in
  let st =
    {
      nl;
      value = Array.make nn None;
      raw = Array.make nn None;
      path = Array.make nn [];
      holders = Walk.holder_pins nl;
      deps = Array.make nn [];
      holder_deps = Array.make nn [];
      queue = Queue.create ();
      queued = Array.make ni false;
      transfers = 0;
    }
  in
  (* --- dependency edges --- *)
  let add_dep nid iid = st.deps.(nid) <- iid :: st.deps.(nid) in
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      if transferable cell.Cell.kind then begin
        Array.iter
          (fun pin ->
            match Netlist.pin_net nl iid pin with
            | Some nid -> add_dep nid iid
            | None -> ())
          (Func.input_names cell.Cell.kind);
        (match cell.Cell.style with
        | Vth.Mt_embedded -> (
          match Netlist.pin_net nl iid "MTE" with
          | Some m -> add_dep m iid
          | None -> ())
        | Vth.Mt_vgnd -> (
          (* the member re-evaluates when its switch's enable changes *)
          match Walk.vgnd_state nl iid with
          | Walk.Gated sw -> (
            match Netlist.pin_net nl sw "MTE" with
            | Some m -> add_dep m iid
            | None -> ())
          | _ -> ())
        | Vth.Plain | Vth.Mt_no_vgnd -> ())
      end);
  (* a holder's enable gates the effective value of the net its Z pin
     touches: re-settle that net when the enable net moves *)
  Hashtbl.iter
    (fun nid h ->
      match Netlist.pin_net nl h "MTE" with
      | Some m -> st.holder_deps.(m) <- nid :: st.holder_deps.(m)
      | None -> ())
    st.holders;
  for nid = 0 to nn - 1 do
    st.deps.(nid) <- List.rev st.deps.(nid);
    st.holder_deps.(nid) <- List.rev st.holder_deps.(nid)
  done;
  (* --- seeds --- *)
  let mte_net = Netlist.find_net nl "MTE" in
  Netlist.iter_nets nl (fun nid ->
      if Netlist.is_pi nl nid then
        if mte_net = Some nid then seed_value st nid L.One " (MTE=1 in standby)"
        else if Netlist.is_clock_net nl nid then
          seed_value st nid L.Zero " (clock parked low)"
        else seed_value st nid L.Held " (primary input, frozen)"
      else if Netlist.driver nl nid = None then
        seed_value st nid L.Float " (no driver)");
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      if cell.Cell.kind = Func.Dff then
        match Netlist.output_net nl iid with
        | Some q ->
          set_raw st q L.Held [ inst_token nl iid ^ " (flip-flop state)"; net_token nl q ]
        | None -> ());
  (* --- fixpoint --- *)
  Netlist.iter_insts nl (fun iid ->
      if transferable (Netlist.cell nl iid).Cell.kind then enqueue st iid);
  let widened = ref 0 in
  let drained = ref false in
  while not !drained do
    while not (Queue.is_empty st.queue) do
      let iid = Queue.pop st.queue in
      st.queued.(iid) <- false;
      transfer st iid
    done;
    (* widening: anything still bottom sits in (or behind) a
       combinational cycle the deferring transfers cannot enter; force
       those nets to Top and resume until nothing is bottom *)
    let bottoms = ref [] in
    Netlist.iter_nets nl (fun nid ->
        if st.value.(nid) = None then bottoms := nid :: !bottoms);
    match List.rev !bottoms with
    | [] -> drained := true
    | nids ->
      widened := !widened + List.length nids;
      List.iter
        (fun nid ->
          st.value.(nid) <- Some L.Top;
          if st.path.(nid) = [] then
            st.path.(nid) <- [ net_token nl nid ^ " (widened: cyclic)" ];
          enqueue_deps st nid)
        nids
  done;
  Metrics.incr m_transfers ~by:st.transfers;
  Metrics.incr m_widened ~by:!widened;
  (* --- findings --- *)
  let out = ref [] in
  let emit rule loc ?(witness = []) fmt =
    Printf.ksprintf
      (fun message -> out := { Rules.rule; loc; message; witness } :: !out)
      fmt
  in
  let value nid = match st.value.(nid) with Some v -> v | None -> L.Top in
  let awake_reader (p : Netlist.pin) =
    let c = Netlist.cell nl p.Netlist.inst in
    (not (Cell.is_mt c)) && not (Func.is_infrastructure c.Cell.kind)
  in
  (* net rules *)
  Netlist.iter_nets nl (fun nid ->
      let name = Netlist.net_name nl nid in
      let loc = "net:" ^ name in
      let v = value nid in
      let awake = List.filter awake_reader (Netlist.sinks nl nid) in
      (match v with
      | L.Float ->
        if Netlist.is_po nl nid then
          emit Rules.float_into_awake loc ~witness:st.path.(nid)
            "net floats in standby and is a primary output"
        else if awake <> [] then
          let r = List.hd awake in
          emit Rules.float_into_awake loc ~witness:st.path.(nid)
            "net floats in standby; %d always-on sink%s (first: %s.%s)"
            (List.length awake)
            (if List.length awake = 1 then "" else "s")
            (Netlist.inst_name nl r.Netlist.inst)
            r.Netlist.pin_name
      | L.Top ->
        if Netlist.is_po nl nid then
          emit Rules.crowbar_risk loc ~witness:st.path.(nid)
            "primary output may float in standby (value top)"
      | L.Zero | L.One | L.Held -> ());
      match Hashtbl.find_opt st.holders nid with
      | None -> ()
      | Some h -> (
        let hname = Netlist.inst_name nl h in
        match st.raw.(nid) with
        | Some ((L.Zero | L.One | L.Held) as r) ->
          emit Rules.useless_holder loc
            "holder %s keeps a net that never floats (driver value %s in standby)" hname
            (L.to_string r)
        | Some L.Float when (not (Netlist.is_po nl nid)) && awake = [] ->
          emit Rules.useless_holder loc
            "holder %s keeps a net only floating MT logic reads" hname
        | Some (L.Float | L.Top) | None -> ()));
  (* instance rules *)
  let mte_pin_check iid what =
    match Netlist.pin_net nl iid what with
    | None -> () (* DRC: floating required pin *)
    | Some m -> (
      let loc = "inst:" ^ Netlist.inst_name nl iid in
      let kind = Netlist.cell nl iid in
      let role =
        match kind.Cell.kind with
        | Func.Sleep_switch -> "sleep switch"
        | Func.Holder -> "holder"
        | _ -> "embedded MT-cell"
      in
      match value m with
      | L.One -> ()
      | L.Zero ->
        emit Rules.mte_polarity loc ~witness:st.path.(m)
          "%s enable is 0 in standby (net %s): it never sleeps%s" role
          (Netlist.net_name nl m)
          (match kind.Cell.kind with
          | Func.Holder -> "; the net it keeps is unguarded"
          | _ -> "")
      | (L.Held | L.Float | L.Top) as v ->
        emit Rules.mte_undetermined loc ~witness:st.path.(m)
          "%s enable is %s in standby (net %s), not a constant" role (L.to_string v)
          (Netlist.net_name nl m))
  in
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      (match cell.Cell.kind with
      | Func.Sleep_switch | Func.Holder -> mte_pin_check iid "MTE"
      | Func.Dff ->
        if Library.is_retention cell then begin
          match Netlist.pin_net nl iid "D" with
          | Some d when L.may_float (value d) ->
            emit Rules.retention_input_float
              ("inst:" ^ Netlist.inst_name nl iid)
              ~witness:st.path.(d)
              "retention flip-flop data input is %s in standby (net %s)"
              (L.to_string (value d)) (Netlist.net_name nl d)
          | Some _ | None -> ()
        end
      | _ -> if Vth.style_equal cell.Cell.style Vth.Mt_embedded then mte_pin_check iid "MTE");
      (* crowbar: a powered gate fed by a maybe-floating level *)
      if
        Vth.style_equal cell.Cell.style Vth.Plain
        && transferable cell.Cell.kind
      then begin
        let names = Func.input_names cell.Cell.kind in
        let bad = ref None in
        Array.iter
          (fun pin ->
            if !bad = None then
              match Netlist.pin_net nl iid pin with
              | Some nid when value nid = L.Top -> bad := Some (pin, nid)
              | Some _ | None -> ())
          names;
        match !bad with
        | Some (pin, nid) ->
          emit Rules.crowbar_risk
            ("inst:" ^ Netlist.inst_name nl iid)
            ~witness:st.path.(nid)
            "powered gate input %s may be at an intermediate level in standby (net %s)"
            pin (Netlist.net_name nl nid)
        | None -> ()
      end);
  let values = ref [] in
  Netlist.iter_nets nl (fun nid ->
      values := (Netlist.net_name nl nid, value nid) :: !values);
  {
    findings = List.rev !out;
    values = List.rev !values;
    transfers = st.transfers;
    widened = !widened;
  }

let value_of r name =
  List.assoc_opt name r.values
