(** Static standby-state verifier: abstract interpretation of sleep
    modes over a mode vector of power domains.

    The netlist is evaluated over the {!Lattice.v} value domain once
    per {e sleep mode}.  A netlist with no sleepable power domain
    (see {!Smt_netlist.Netlist.add_domain}) has exactly one mode — the
    paper's single standby configuration (MTE asserted, clocks parked
    low, primary inputs frozen) — and behaves exactly as before.  A
    netlist with [k] sleepable domains is analyzed in the [2^k - 1]
    modes where at least one domain sleeps; each domain's declared
    enable net seeds [One] when that domain is asleep in the mode and
    [Zero] when it is awake.

    Within one mode:

    - primary inputs seed [Held] ([One] for the MTE net / asleep
      domain enables, [Zero] for clock nets and awake domain enables),
      flip-flop outputs seed [Held], undriven nets seed [Float];
    - a powered gate transfers through exact three-valued evaluation
      ([Held] as X), with any possibly-floating input contaminating the
      output to [Top];
    - a VGND-style MT-cell's output is [Float] when its sleep switch is
      off, evaluated normally when the switch is (wrongly) stuck on,
      and [Top] when the switch's enable is not a constant — where the
      switch it hangs from comes from {!Smt_check.Walk}, the traversal
      the structural DRC uses;
    - a holder keeps its net: [Float] becomes [Held] when the holder's
      own MTE pin is 1.  Holders are resolved by the net their Z pin is
      {e wired} to ({!Smt_check.Walk.holder_pins}), not by the
      [holder_of] record, so a holder on the wrong net does not fool
      the analysis.

    Values propagate through a deterministic FIFO worklist to a
    fixpoint; nets trapped in combinational cycles are widened to
    [Top].  {b Soundness}: every transfer is monotone over a finite
    lattice and values only move up (stores join), so the fixpoint
    exists, is reached in finitely many steps, and over-approximates
    every concrete standby state in that mode — a net the analysis
    calls [Zero], [One], or [Held] cannot float in silicon, so the
    absence of float findings is a guarantee, while [Top]-based
    findings are conservative warnings.

    Witness paths are rebuilt from the fixpoint values by a memoized
    deterministic walk, so they depend only on the final abstract store
    — never on worklist visit order.  Modes fan out through
    {!Smt_obs.Par.map}; results are byte-identical at any job count.
    Findings that agree on (rule, location, witness) across modes are
    reported once, from the shallowest mode; suppressed repeats count
    into the [lint.mode_dedup] metric.

    Findings are reported against the {!Rules} catalog.  The analysis
    never mutates the netlist (it does consume the touched-net journal
    in {!start} / {!update}).

    Emits [lint.runs] / [lint.updates] / [lint.transfers] /
    [lint.widened] / [lint.mode_dedup] metrics and
    [Verify.analyze] / [Verify.start] / [Verify.update] trace spans. *)

type result = {
  findings : Rules.finding list;
      (** deterministic order: modes shallowest-first, within a mode net
          rules in net-id order then instance rules in instance-id
          order; cross-mode duplicates removed *)
  values : (string * Lattice.v) list;
      (** every net's standby value in the {e deepest} (all-asleep)
          mode, in net-id order *)
  transfers : int;
      (** worklist transfer-function evaluations, summed over modes
          (for an {!update}: this update only) *)
  widened : int;  (** nets forced to [Top] to break cycles *)
  modes : string list;  (** analyzed mode names; [[""]] on legacy runs *)
}

val analyze : ?jobs:int -> Smt_netlist.Netlist.t -> result
(** Assumes post-MT structure (run it on a flow product or any netlist
    without MT cells); on a netlist between MT replacement and switch
    insertion every MT output is reported floating, which is true but
    not useful — the flow guard only engages the semantic pass once
    switch insertion has run.  [jobs] fans the modes out in parallel;
    the result is byte-identical at any job count. *)

val value_of : result -> string -> Lattice.v option
(** Lookup in [values] by net name. *)

(** {1 Incremental re-analysis}

    A session keeps the per-mode fixpoint stores alive between runs so
    an ECO-sized edit re-analyzes only its cone.  {!update} takes the
    set of nets whose standby value may have changed (by default the
    netlist's touched-net journal, which every structural mutator
    feeds), closes it forward over data, supply, and holder-enable
    edges, re-seeds and re-propagates just that cone, then re-evaluates
    rules over the whole store.

    {b Soundness of the incremental step}: the cone is forward-closed,
    so every transfer that could read a changed value has its output
    inside the cone and is re-run from bottom; values outside the cone
    are exactly the previous fixpoint restricted to nets whose inputs
    did not change.  Since witnesses are a pure function of the final
    store and rule evaluation rereads the whole store, the report is
    byte-identical to a from-scratch {!analyze} (property-tested over
    randomized ECO deltas in [test/test_props.ml]).  If the domain
    table itself changed, the mode vector is stale and the session
    transparently restarts from scratch. *)

type session

val start : ?jobs:int -> Smt_netlist.Netlist.t -> session * result
(** Full analysis that also retains its stores; drains the netlist's
    touched-net journal so a following {!update} starts clean. *)

val update : ?jobs:int -> ?dirty:Smt_netlist.Netlist.net_id list -> session -> result
(** Re-analyze after netlist edits.  [dirty] defaults to draining the
    netlist's touched-net journal; pass it explicitly only if it covers
    {e every} net touched since the last run. *)
