(** Static standby-state verifier: abstract interpretation of sleep mode.

    The netlist is evaluated once, in the standby configuration the
    paper's circuits sleep in (MTE asserted, clocks parked low, primary
    inputs frozen at unknown-but-stable levels), over the
    {!Lattice.v} value domain:

    - primary inputs seed [Held] ([One] for the MTE net, [Zero] for
      clock nets), flip-flop outputs seed [Held], undriven nets seed
      [Float];
    - a powered gate transfers through exact three-valued evaluation
      ([Held] as X), with any possibly-floating input contaminating the
      output to [Top];
    - a VGND-style MT-cell's output is [Float] when its sleep switch is
      off (MTE = 1), evaluated normally when the switch is (wrongly)
      stuck on, and [Top] when the switch's enable is not a constant —
      where the switch it hangs from comes from {!Smt_check.Walk}, the
      traversal the structural DRC uses;
    - a holder keeps its net: [Float] becomes [Held] when the holder's
      own MTE pin is 1.  Holders are resolved by the net their Z pin is
      {e wired} to ({!Smt_check.Walk.holder_pins}), not by the
      [holder_of] record, so a holder on the wrong net does not fool
      the analysis.

    Values propagate through a deterministic FIFO worklist to a
    fixpoint; nets trapped in combinational cycles are widened to
    [Top].  {b Soundness}: every transfer is monotone over a finite
    lattice and values only move up (stores join), so the fixpoint
    exists, is reached in finitely many steps, and over-approximates
    every concrete standby state — a net the analysis calls [Zero],
    [One], or [Held] cannot float in silicon, so the absence of
    [float-into-awake] findings is a guarantee, while [Top]-based
    findings are conservative warnings.

    Findings are reported against the {!Rules} catalog, each with a
    witness propagation path from its origin.  The analysis never
    mutates the netlist.

    Emits [lint.runs] / [lint.transfers] / [lint.widened] metrics and a
    [Verify.analyze] trace span. *)

type result = {
  findings : Rules.finding list;
      (** deterministic order: net rules in net-id order, then instance
          rules in instance-id order *)
  values : (string * Lattice.v) list;
      (** every net's standby value, in net-id order *)
  transfers : int;  (** worklist transfer-function evaluations *)
  widened : int;  (** nets forced to [Top] to break cycles *)
}

val analyze : Smt_netlist.Netlist.t -> result
(** Assumes post-MT structure (run it on a flow product or any netlist
    without MT cells); on a netlist between MT replacement and switch
    insertion every MT output is reported floating, which is true but
    not useful — the flow guard only engages the semantic pass once
    switch insertion has run. *)

val value_of : result -> string -> Lattice.v option
(** Lookup in [values] by net name. *)
