type severity = Error | Warn

type rule = {
  id : string;
  severity : severity;
  summary : string;
  repairable : bool;
}

let float_into_awake =
  {
    id = "float-into-awake";
    severity = Error;
    summary = "floating net reaches always-on logic or a primary output in standby";
    repairable = false;
  }

let crowbar_risk =
  {
    id = "crowbar-risk";
    severity = Warn;
    summary = "powered gate input may sit at an intermediate voltage in standby";
    repairable = false;
  }

let useless_holder =
  {
    id = "useless-holder";
    severity = Warn;
    summary = "holder keeps a net that never floats (or that nothing awake reads)";
    repairable = false;
  }

let mte_polarity =
  {
    id = "mte-polarity";
    severity = Error;
    summary = "MTE control pin is 0 in standby: inverted polarity or constant disable";
    repairable = false;
  }

let mte_undetermined =
  {
    id = "mte-undetermined";
    severity = Error;
    summary = "MTE control pin does not evaluate to a constant in standby";
    repairable = false;
  }

let retention_input_float =
  {
    id = "retention-input-float";
    severity = Error;
    summary = "retention flip-flop data input floats in standby";
    repairable = false;
  }

let cross_domain_float =
  {
    id = "cross-domain-float-into-awake";
    severity = Error;
    summary = "net from a sleeping domain floats into logic of an awake domain";
    repairable = false;
  }

let missing_isolation =
  {
    id = "missing-isolation-at-boundary";
    severity = Error;
    summary = "net leaves a sleeping domain with no isolation holder at the boundary";
    repairable = false;
  }

let isolation_enable_off_domain =
  {
    id = "isolation-enable-from-off-domain";
    severity = Error;
    summary = "isolation holder's enable belongs to a different domain than the one it guards";
    repairable = false;
  }

let always_on_path =
  {
    id = "always-on-path-through-off-domain";
    severity = Warn;
    summary = "combinational path between awake endpoints routes through a sleeping domain";
    repairable = false;
  }

let all =
  [
    float_into_awake; crowbar_risk; useless_holder; mte_polarity; mte_undetermined;
    retention_input_float; cross_domain_float; missing_isolation;
    isolation_enable_off_domain; always_on_path;
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let severity_name = function Error -> "error" | Warn -> "warning"

type finding = {
  rule : rule;
  loc : string;
  mode : string;
  message : string;
  witness : string list;
}

let to_string f =
  let mode = if f.mode = "" then "" else Printf.sprintf " [%s]" f.mode in
  let via =
    match f.witness with
    | [] -> ""
    | steps -> Printf.sprintf " [via %s]" (String.concat " -> " steps)
  in
  Printf.sprintf "%s %s @ %s%s: %s%s"
    (severity_name f.rule.severity)
    f.rule.id f.loc mode f.message via

let errors fs = List.filter (fun f -> f.rule.severity = Error) fs
let warnings fs = List.filter (fun f -> f.rule.severity = Warn) fs
let has_errors fs = errors fs <> []

let summary fs =
  Printf.sprintf "%d errors, %d warnings" (List.length (errors fs))
    (List.length (warnings fs))
