(** The standby value lattice.

    Every net is abstracted to what can be said about its voltage while
    the design sleeps (MTE asserted, clocks parked low, primary inputs
    frozen):

    {v
              Top
             /   \
          Held   Float
          /  \
       Zero  One
    v}

    - [Zero]/[One]: a constant the powered logic computes in standby;
    - [Held]: driven to a stable, defined level — which one depends on
      the frozen input values, so the analysis does not know it, but the
      node is {e not} floating (flip-flop outputs, holder-kept nets,
      logic of held values);
    - [Float]: high-impedance — an MT-cell output whose virtual ground
      is cut, with no holder;
    - [Top]: possibly floating, possibly driven (join of the two sides,
      or any value computed from a floating input by powered logic).

    The severity split the verifier's rules build on: [Zero|One|Held]
    are safe levels, [Float|Top] are the "unexpected power" hazards the
    paper's holders exist to prevent. *)

type v = Zero | One | Held | Float | Top

val bot_join : v option -> v -> v option
(** Join where [None] is bottom (not yet computed). *)

val join : v -> v -> v
val leq : v -> v -> bool
val equal : v -> v -> bool

val is_defined : v -> bool
(** [Zero], [One], or [Held] — a stable, driven level. *)

val may_float : v -> bool
(** [Float] or [Top]. *)

val to_string : v -> string
(** ["0" | "1" | "held" | "float" | "top"]. *)

val of_logic : Smt_sim.Logic.value -> v
val to_logic : v -> Smt_sim.Logic.value option
(** [None] for [Float]/[Top] — three-valued simulation has no
    high-impedance state. *)

val eval : Smt_cell.Func.kind -> v array -> v
(** Abstract transfer of a powered combinational gate: any
    [Float]/[Top] input contaminates the output to [Top] (an undriven
    gate input is an intermediate voltage, so the output can be
    anything); otherwise exact three-valued evaluation via
    {!Smt_sim.Logic.eval}, with [Held] as X.  Monotone in every input by
    construction. *)
