(** SARIF 2.1.0 export of semantic findings.

    One run, driver ["smt_flow-lint"], the whole {!Rules} catalog as
    [reportingDescriptor]s, one [result] per finding.  Findings are
    netlist objects rather than file regions, so locations are
    [logicalLocations] with a [fullyQualifiedName] of
    ["<workload>/net:<name>"] (or [inst:]); the witness path rides
    along as a [relatedLocations] sequence.  A finding observed in a
    named sleep mode carries a second logical location
    ["<workload>/mode/<mode>"] of kind [namespace] so viewers can group
    by domain mode.  Waived findings are kept
    in the log with an [external] suppression, so a waiver remains
    auditable in the artifact.

    Output is deterministic: no timestamps, no absolute paths, ordering
    as given — byte-identical across [--jobs] counts. *)

type workload = {
  wl_name : string;  (** e.g. ["circuit_a/improved"] *)
  wl_findings : Rules.finding list;
  wl_waived : (Rules.finding * Waiver.entry) list;
}

val render : workload list -> string
(** The complete SARIF JSON document. *)
