type entry = {
  w_rule : string;
  w_loc : string;
  w_expires : (int * int * int) option;
  w_line : int;
}

type t = entry list

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let parse_date s =
  match String.split_on_char '-' s with
  | [ y; m; d ] -> (
    match (int_of_string_opt y, int_of_string_opt m, int_of_string_opt d) with
    | Some y, Some m, Some d
      when String.length s = 10 && y >= 1970 && m >= 1 && m <= 12 && d >= 1 && d <= 31 ->
      Some (y, m, d)
    | _ -> None)
  | _ -> None

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = String.trim line in
      if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
      else
        let mk rule loc expires =
          if rule <> "*" && Rules.find rule = None then
            Error
              (Printf.sprintf "waiver line %d: unknown rule id %s (known: %s)" lineno rule
                 (String.concat ", " (List.map (fun (r : Rules.rule) -> r.Rules.id) Rules.all)))
          else
            go (lineno + 1)
              ({ w_rule = rule; w_loc = loc; w_expires = expires; w_line = lineno } :: acc)
              rest
        in
        match split_ws line with
        | [ rule; loc ] -> mk rule loc None
        | [ rule; loc; opt ]
          when String.length opt > 8 && String.sub opt 0 8 = "expires=" -> (
          let date = String.sub opt 8 (String.length opt - 8) in
          match parse_date date with
          | Some d -> mk rule loc (Some d)
          | None ->
            Error
              (Printf.sprintf "waiver line %d: bad expiry date %S (expected expires=YYYY-MM-DD)"
                 lineno date))
        | _ ->
          Error
            (Printf.sprintf
               "waiver line %d: expected `<rule-id> <location-pattern> [expires=YYYY-MM-DD]`, got %S"
               lineno line))
  in
  go 1 [] lines

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse text
  | exception Sys_error e -> Error e

(* Anchored *-glob: classic two-pointer scan with backtracking to the
   last star. *)
let glob_match ~pattern s =
  let np = String.length pattern and ns = String.length s in
  let rec scan p i star star_i =
    if i < ns then
      if p < np && (pattern.[p] = s.[i]) then scan (p + 1) (i + 1) star star_i
      else if p < np && pattern.[p] = '*' then scan (p + 1) i (Some p) i
      else
        match star with
        | Some sp -> scan (sp + 1) (star_i + 1) star (star_i + 1)
        | None -> false
    else begin
      let p = ref p in
      while !p < np && pattern.[!p] = '*' do
        incr p
      done;
      !p = np
    end
  in
  scan 0 0 None 0

let expired ~today e =
  match e.w_expires with None -> false | Some d -> today > d

let matches e (f : Rules.finding) =
  (e.w_rule = "*" || String.equal e.w_rule f.Rules.rule.Rules.id)
  && glob_match ~pattern:e.w_loc f.Rules.loc

let apply ?today waivers findings =
  let live =
    match today with
    | None -> waivers
    | Some today -> List.filter (fun e -> not (expired ~today e)) waivers
  in
  let kept = ref [] and waived = ref [] in
  List.iter
    (fun f ->
      match List.find_opt (fun e -> matches e f) live with
      | Some e -> waived := (f, e) :: !waived
      | None -> kept := f :: !kept)
    findings;
  (List.rev !kept, List.rev !waived)
