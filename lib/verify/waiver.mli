(** Waiver files for semantic findings.

    Line-oriented text, one waiver per line:

    {v
    # comment (blank lines ignored)
    <rule-id> <location-pattern> [expires=YYYY-MM-DD]
    useless-holder net:dp_out_*
    crowbar-risk * expires=2026-12-31
    v}

    The rule id must name a catalog rule exactly ([*] waives every
    rule).  The location pattern is a glob over the finding's
    ["net:<name>"] / ["inst:<name>"] location, where [*] matches any
    run of characters (including none).  Waivers silence findings — the
    lint exit code and the SARIF results mark them suppressed rather
    than dropping them, so a waiver is auditable.

    An [expires=] waiver is live through its expiry date and stops
    suppressing the day after; callers derive "today" from the
    [SMT_CLOCK] environment variable (epoch seconds, UTC) so expiry is
    deterministic under test. *)

type entry = {
  w_rule : string;  (** rule id or ["*"] *)
  w_loc : string;  (** glob over the finding location *)
  w_expires : (int * int * int) option;  (** (year, month, day), inclusive *)
  w_line : int;  (** 1-based source line, for messages *)
}

type t = entry list

val parse : string -> (t, string) result
(** Parse waiver-file text.  Unknown rule ids, malformed lines, and
    malformed expiry dates are errors (a typo would otherwise silently
    waive nothing). *)

val load : string -> (t, string) result
(** [parse] on a file's contents; I/O problems come back as [Error]. *)

val glob_match : pattern:string -> string -> bool
(** [*]-glob matching, anchored at both ends. *)

val expired : today:int * int * int -> entry -> bool
(** Whether the entry's expiry date is strictly before [today]. *)

val matches : entry -> Rules.finding -> bool
(** Rule/location match only; expiry is [apply]'s business. *)

val apply :
  ?today:int * int * int ->
  t ->
  Rules.finding list ->
  Rules.finding list * (Rules.finding * entry) list
(** Split findings into (kept, waived-with-the-entry-that-matched);
    order is preserved on both sides, first matching entry wins.
    Entries expired relative to [today] (when given) match nothing. *)
