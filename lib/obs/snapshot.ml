let schema_version = 1

type workload = {
  w_name : string;
  w_qor : (string * float) list;
  w_counters : (string * int) list;
  w_stage_ms : (string * float) list;
}

type t = { s_version : int; s_tag : string; s_workloads : workload list }

let sort_fields l = List.sort (fun (a, _) (b, _) -> compare a b) l

let workload ~name ~qor ~counters ~stage_ms =
  { w_name = name; w_qor = sort_fields qor; w_counters = sort_fields counters; w_stage_ms = stage_ms }

let make ~tag workloads =
  {
    s_version = schema_version;
    s_tag = tag;
    s_workloads = List.sort (fun a b -> compare a.w_name b.w_name) workloads;
  }

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let workload_json w =
  Obs_json.obj
    [
      ("name", Obs_json.str w.w_name);
      ("qor", Obs_json.obj (List.map (fun (k, v) -> (k, Obs_json.num_exact v)) w.w_qor));
      ( "counters",
        Obs_json.obj (List.map (fun (k, v) -> (k, string_of_int v)) w.w_counters) );
      ( "stage_ms",
        Obs_json.arr
          (List.map
             (fun (stage, ms) ->
               Obs_json.obj [ ("stage", Obs_json.str stage); ("ms", Obs_json.num ms) ])
             w.w_stage_ms) );
    ]

let to_json s =
  Obs_json.obj
    [
      ("schema_version", string_of_int s.s_version);
      ("tag", Obs_json.str s.s_tag);
      ("workloads", Obs_json.arr (List.map workload_json s.s_workloads));
    ]

let write path s = Obs_json.to_file path (to_json s)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field_of name doc =
  match Obs_json.member name doc with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "snapshot: missing field %S" name)

let num_of name doc =
  let* v = field_of name doc in
  match Obs_json.to_num v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "snapshot: field %S is not a number" name)

let str_of name doc =
  let* v = field_of name doc in
  match Obs_json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "snapshot: field %S is not a string" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let num_fields name doc =
  let* v = field_of name doc in
  match v with
  | Obs_json.Obj fields ->
    map_result
      (fun (k, v) ->
        match Obs_json.to_num v with
        | Some f -> Ok (k, f)
        | None -> Error (Printf.sprintf "snapshot: %s.%s is not a number" name k))
      fields
  | _ -> Error (Printf.sprintf "snapshot: field %S is not an object" name)

let workload_of_json doc =
  let* name = str_of "name" doc in
  let* qor = num_fields "qor" doc in
  let* counters = num_fields "counters" doc in
  let counters = List.map (fun (k, v) -> (k, int_of_float v)) counters in
  let* stage_ms =
    let* v = field_of "stage_ms" doc in
    match v with
    | Obs_json.Arr items ->
      map_result
        (fun item ->
          let* stage = str_of "stage" item in
          let* ms = num_of "ms" item in
          Ok (stage, ms))
        items
    | _ -> Error "snapshot: stage_ms is not an array"
  in
  Ok (workload ~name ~qor ~counters ~stage_ms)

let of_json s =
  let* doc = Obs_json.parse s in
  let* version = num_of "schema_version" doc in
  let* tag = str_of "tag" doc in
  let* workloads =
    let* v = field_of "workloads" doc in
    match v with
    | Obs_json.Arr items -> map_result workload_of_json items
    | _ -> Error "snapshot: workloads is not an array"
  in
  Ok { s_version = int_of_float version; s_tag = tag; s_workloads = workloads }

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_json contents

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type severity = Advisory | Regression

type delta = {
  d_workload : string;
  d_field : string;
  d_baseline : float option;
  d_current : float option;
  d_severity : severity;
  d_note : string;
}

(* "Exact" for QoR floats means exact up to serialization: %.17g round-trips,
   so the tolerance below only absorbs a baseline written by an older
   compact emitter, never a real QoR drift. *)
let qor_rel_tolerance = 1e-9

(* Wall-clock is advisory: flag a stage only when it moved by more than
   this factor and the time is above the scheduler-noise floor. *)
let stage_ms_ratio = 1.5

let stage_ms_floor = 5.0

let qor_equal a b =
  a = b
  || (Float.is_nan a && Float.is_nan b)
  || Float.abs (a -. b) <= qor_rel_tolerance *. Float.max (Float.abs a) (Float.abs b)

let delta ?baseline ?current ~severity ~note workload field =
  {
    d_workload = workload;
    d_field = field;
    d_baseline = baseline;
    d_current = current;
    d_severity = severity;
    d_note = note;
  }

let compare_fields ~workload ~prefix ~severity ~equal ~note_changed base cur =
  let deltas = ref [] in
  let push d = deltas := d :: !deltas in
  List.iter
    (fun (k, b) ->
      let field = prefix ^ k in
      match List.assoc_opt k cur with
      | None ->
        push
          (delta ~baseline:b ~severity ~note:"field missing from current run" workload field)
      | Some c ->
        if not (equal b c) then
          push (delta ~baseline:b ~current:c ~severity ~note:note_changed workload field))
    base;
  List.iter
    (fun (k, c) ->
      if not (List.mem_assoc k base) then
        push
          (delta ~current:c ~severity ~note:"field absent from baseline" workload
             (prefix ^ k)))
    cur;
  List.rev !deltas

let compare_workload base cur =
  let name = base.w_name in
  let qor =
    compare_fields ~workload:name ~prefix:"qor." ~severity:Regression ~equal:qor_equal
      ~note_changed:"QoR drifted" base.w_qor cur.w_qor
  in
  let counters =
    compare_fields ~workload:name ~prefix:"counter." ~severity:Regression
      ~equal:(fun a b -> a = b)
      ~note_changed:"work counter changed"
      (List.map (fun (k, v) -> (k, float_of_int v)) base.w_counters)
      (List.map (fun (k, v) -> (k, float_of_int v)) cur.w_counters)
  in
  let stages =
    compare_fields ~workload:name ~prefix:"stage_ms." ~severity:Advisory
      ~equal:(fun b c ->
        Float.max b c <= stage_ms_floor
        || (b > 0.0 && c /. b <= stage_ms_ratio && b /. c <= stage_ms_ratio))
      ~note_changed:"wall-clock moved (advisory)" base.w_stage_ms cur.w_stage_ms
  in
  qor @ counters @ stages

let compare ~baseline ~current =
  let version =
    if baseline.s_version <> current.s_version then
      [
        delta
          ~baseline:(float_of_int baseline.s_version)
          ~current:(float_of_int current.s_version)
          ~severity:Regression ~note:"snapshot schema version mismatch" "-" "schema_version";
      ]
    else []
  in
  let per_workload =
    List.concat_map
      (fun base ->
        match List.find_opt (fun w -> w.w_name = base.w_name) current.s_workloads with
        | Some cur -> compare_workload base cur
        | None ->
          [
            delta ~severity:Regression ~note:"workload missing from current run" base.w_name
              "workload";
          ])
      baseline.s_workloads
  in
  let added =
    List.filter_map
      (fun cur ->
        if List.exists (fun w -> w.w_name = cur.w_name) baseline.s_workloads then None
        else
          Some
            (delta ~severity:Advisory ~note:"workload absent from baseline" cur.w_name
               "workload"))
      current.s_workloads
  in
  version @ per_workload @ added

let regressions deltas = List.filter (fun d -> d.d_severity = Regression) deltas
let has_regressions deltas = regressions deltas <> []

let render_value = function
  | None -> "-"
  | Some v ->
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

let render_delta d =
  Printf.sprintf "%s %s/%s: %s -> %s (%s)"
    (match d.d_severity with Regression -> "REGRESSION" | Advisory -> "advisory  ")
    d.d_workload d.d_field (render_value d.d_baseline) (render_value d.d_current) d.d_note

let render deltas =
  let regs = List.length (regressions deltas) in
  let advisories = List.length deltas - regs in
  (* Name-set differences are called out in the summary, not only in the
     per-delta lines: a disappeared workload is the easiest regression to
     scroll past. *)
  let disappeared, added =
    List.fold_left
      (fun (dis, add) d ->
        if d.d_field <> "workload" then (dis, add)
        else
          match d.d_severity with
          | Regression -> (dis + 1, add)
          | Advisory -> (dis, add + 1))
      (0, 0) deltas
  in
  let b = Buffer.create 256 in
  List.iter
    (fun d ->
      Buffer.add_string b (render_delta d);
      Buffer.add_char b '\n')
    deltas;
  Buffer.add_string b
    (Printf.sprintf "bench-compare: %d regression%s, %d advisor%s%s%s\n" regs
       (if regs = 1 then "" else "s")
       advisories
       (if advisories = 1 then "y" else "ies")
       (if disappeared > 0 then
          Printf.sprintf "; %d workload%s disappeared" disappeared
            (if disappeared = 1 then "" else "s")
        else "")
       (if added > 0 then
          Printf.sprintf "; %d new workload%s" added (if added = 1 then "" else "s")
        else ""));
  Buffer.contents b
