(** Versioned quality-of-results snapshots and baseline comparison.

    A snapshot ([BENCH_<tag>.json]) freezes, per workload (one flow run on
    one circuit), the numbers a change must not silently move:

    - {b QoR fields} — area, standby leakage, WNS, cluster count, total
      switch width, ... (floats, serialized round-trip-exactly);
    - {b work counters} — the deterministic {!Metrics} counters
      ([sta.arrival_evals], [place.iterations], ...) diffed over the
      workload, so "how much work" is tracked independently of "how long";
    - {b per-stage wall-clock} — milliseconds per flow stage, advisory
      only (machines differ; work counters are the portable proxy).

    [compare] classifies every difference against a baseline with
    per-field tolerances: QoR and counters must match exactly (QoR up to
    a 1e-9 relative serialization guard), wall-clock only produces
    advisories.  The CLI's [bench-compare] exits non-zero iff
    [has_regressions].

    The [schema_version] field is checked first: a snapshot written by a
    different schema is itself a regression (refresh the baseline rather
    than guessing field semantics). *)

val schema_version : int
(** Version of the on-disk layout; bumped whenever fields are added,
    removed, or change meaning. *)

type workload = {
  w_name : string;  (** e.g. ["circuit_a/improved"] *)
  w_qor : (string * float) list;  (** sorted by field name *)
  w_counters : (string * int) list;  (** sorted by counter name *)
  w_stage_ms : (string * float) list;  (** flow order preserved *)
}

type t = {
  s_version : int;
  s_tag : string;  (** the [<tag>] of [BENCH_<tag>.json] *)
  s_workloads : workload list;  (** sorted by workload name *)
}

val workload :
  name:string ->
  qor:(string * float) list ->
  counters:(string * int) list ->
  stage_ms:(string * float) list ->
  workload

val make : tag:string -> workload list -> t
(** A snapshot at the current {!schema_version}; workloads are sorted. *)

(** {1 Serialization} *)

val to_json : t -> string
val of_json : string -> (t, string) result
val write : string -> t -> unit
val read : string -> (t, string) result

val workload_json : workload -> string
(** One workload as a JSON object — the element format of [to_json]'s
    [workloads] array, reused verbatim by the run ledger. *)

val workload_of_json : Obs_json.t -> (workload, string) result

(** {1 Comparison} *)

type severity =
  | Advisory  (** worth a look, never fails the gate (wall-clock, new workloads) *)
  | Regression  (** QoR / work-counter / schema drift: the gate fails *)

type delta = {
  d_workload : string;
  d_field : string;  (** [qor.*], [counter.*], [stage_ms.*], [workload], [schema_version] *)
  d_baseline : float option;  (** [None] when absent on that side *)
  d_current : float option;
  d_severity : severity;
  d_note : string;
}

val compare : baseline:t -> current:t -> delta list
(** Every difference, baseline order; an empty list is a clean pass.
    Matching fields produce no delta. *)

val regressions : delta list -> delta list
val has_regressions : delta list -> bool

val render_delta : delta -> string
val render : delta list -> string
(** One line per delta plus a closing summary line. *)
