(** Process-global registry of named counters, gauges, and fixed-bucket
    histograms.

    Registration is idempotent: [counter "x"] returns the same counter every
    time, so hot-path modules bind their instruments once at module
    initialization and pay one integer/float store per event afterwards.
    Instruments never affect computation results — they only observe — so a
    run with the registry untouched is bit-identical to one that dumps it.

    {b Domain safety.}  Instrument {e definitions} (names) are global and
    mutex-guarded, so concurrent registration from worker domains is safe.
    Instrument {e values} are per-domain: [incr]/[set]/[observe] touch only
    the calling domain's store and never contend, and the readers
    ([counters], [snapshot], [to_json], ...) report the calling domain's
    values.  Parallel jobs hand their effects back to the caller through
    {!collect} and {!merge}; merging job stores in input order reproduces
    the sequential totals exactly — counters and histograms are additive
    (order-independent), gauges are last-write-wins.

    Naming convention: [subsystem.thing_unit] (e.g. [sta.arrival_evals],
    [eco.buffers_added], [flow.stage_ms]). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Monotonically increasing integer count. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
(** Last-write-wins float value. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float list -> string -> histogram
(** Fixed upper-bound buckets (an implicit [+inf] bucket is always added).
    The bucket list of the first registration wins.  Default buckets suit
    millisecond durations: powers of ~3 from 0.1 ms to 10 s. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_hits : histogram -> int array
(** A copy of the calling domain's per-bucket hit counts, one slot per
    bound plus the trailing [+inf] bucket.  Subtracting two snapshots
    gives the hits of just the phase between them. *)

val quantile_of_hits : histogram -> int array -> float -> float
(** [quantile_of_hits h hits q] — Prometheus-style bucket quantile
    (linear interpolation within the winning bucket; the open [+inf]
    bucket reports its lower bound) computed over an explicit hit-count
    array, e.g. a before/after delta of {!histogram_hits}.  [nan] when
    the hits are empty. *)

val histogram_quantile : histogram -> float -> float
(** [quantile_of_hits h (histogram_hits h) q]. *)

val counters : unit -> (string * int) list
(** Current value of every registered counter, sorted by name.  Counters
    are the deterministic "work done" instruments (arrival evaluations,
    placement iterations, ...), which is what QoR snapshots diff per
    workload — gauges and histograms carry wall-clock and are excluded. *)

val snapshot : unit -> (string * float) list
(** Current value of every instrument, sorted by name.  Histograms
    contribute [name.count], [name.sum], and estimated [name.p50] /
    [name.p90] / [name.p99] quantiles ([nan] while empty). *)

val reset : unit -> unit
(** Zero every registered instrument in the calling domain's store
    (registrations survive).  For tests and benchmark harnesses that diff
    the registry between workloads. *)

type collected
(** The instrument values accumulated during one {!collect} scope. *)

val collect : (unit -> 'a) -> 'a * collected
(** [collect f] runs [f] against a fresh, empty value store and returns
    its result together with everything [f] recorded; the caller's own
    values are untouched and restored before returning (also on
    exception, in which case the recorded values are discarded with the
    re-raise).  The parallel-sweep primitive: run each job under
    [collect], then {!merge} the job stores on the caller in input
    order. *)

val merge : collected -> unit
(** Fold a collected store into the calling domain's store: counters and
    histogram buckets/sums add; gauges that were written inside the
    scope overwrite the caller's value (last-write-wins). *)

type portable = {
  p_counters : (string * int) list;
  p_gauges : (string * float) list;
  p_hists : (string * hport) list;
}
(** Name-keyed instrument values, the cross-process form: instrument ids
    are assigned per process in registration order, so values exported to
    another process must travel by name.  All three sections are sorted
    by name and trimmed (zero counters, never-written gauges, and empty
    histograms are omitted), so an idle registry exports as empty. *)

and hport = { hp_bounds : float list; hp_sum : float; hp_hits : int list }
(** Histogram payload: [hp_hits] has one slot per bound plus the
    trailing [+inf] bucket. *)

val export : unit -> portable
(** The calling domain's instrument values, keyed by name. *)

val absorb : portable -> unit
(** Fold a {!portable} (typically from another process) into the calling
    domain's store: each name is re-registered locally and the values are
    {!merge}d with in-process semantics — counters and histograms add,
    gauges last-write-wins.  Names registered locally as a different
    kind, and histograms whose bucket bounds disagree with the local
    registration, are skipped. *)

val portable_json : portable -> string
val portable_of_json : Obs_json.t -> (portable, string) result

val to_json : unit -> string
(** The whole registry as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{..}}]. *)

val to_text : unit -> string
(** One [name value] line per instrument, sorted — the dump format for
    quick greps. *)

val write : string -> unit
(** Write [to_json ()] to a file. *)
