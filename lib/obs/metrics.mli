(** Process-global registry of named counters, gauges, and fixed-bucket
    histograms.

    Registration is idempotent: [counter "x"] returns the same counter every
    time, so hot-path modules bind their instruments once at module
    initialization and pay one integer/float store per event afterwards.
    Instruments never affect computation results — they only observe — so a
    run with the registry untouched is bit-identical to one that dumps it.

    Naming convention: [subsystem.thing_unit] (e.g. [sta.arrival_evals],
    [eco.buffers_added], [flow.stage_ms]). *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Monotonically increasing integer count. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

val gauge : string -> gauge
(** Last-write-wins float value. *)

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : ?buckets:float list -> string -> histogram
(** Fixed upper-bound buckets (an implicit [+inf] bucket is always added).
    The bucket list of the first registration wins.  Default buckets suit
    millisecond durations: powers of ~3 from 0.1 ms to 10 s. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val counters : unit -> (string * int) list
(** Current value of every registered counter, sorted by name.  Counters
    are the deterministic "work done" instruments (arrival evaluations,
    placement iterations, ...), which is what QoR snapshots diff per
    workload — gauges and histograms carry wall-clock and are excluded. *)

val snapshot : unit -> (string * float) list
(** Current value of every instrument, sorted by name.  Histograms
    contribute [name.count] and [name.sum]. *)

val reset : unit -> unit
(** Zero every registered instrument (registrations survive).  For tests
    and benchmark harnesses that diff the registry between workloads. *)

val to_json : unit -> string
(** The whole registry as one JSON object:
    [{"counters":{..},"gauges":{..},"histograms":{..}}]. *)

val to_text : unit -> string
(** One [name value] line per instrument, sorted — the dump format for
    quick greps. *)

val write : string -> unit
(** Write [to_json ()] to a file. *)
