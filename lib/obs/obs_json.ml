(* Minimal JSON emission and parsing shared by Trace, Metrics, and
   Snapshot.  Report_json builds on the same emitters for flow reports. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = Printf.sprintf "\"%s\"" (escape s)

let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let num_exact f =
  if Float.is_finite f then
    (* %.17g round-trips every double, so snapshot files compare exactly *)
    let s = Printf.sprintf "%.17g" f in
    (* prefer the shortest representation that still round-trips *)
    let short = Printf.sprintf "%.15g" f in
    if float_of_string short = f then short else s
  else "null"

let boolean b = if b then "true" else "false"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let to_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | _ -> ()
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          incr pos;
          Buffer.contents b
        | '\\' ->
          incr pos;
          if !pos >= n then fail "dangling escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 >= n then fail "truncated \\u escape";
            (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some code ->
              pos := !pos + 4;
              if code < 128 then Buffer.add_char b (Char.chr code)
                (* non-ASCII escapes are lossy; the library never emits them *)
              else Buffer.add_char b '?'
            | None -> fail "bad \\u escape")
          | _ -> fail "unknown escape");
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some _ -> number ()
    | None -> fail "unexpected end of input"
  and lit word v =
    let k = String.length word in
    if !pos + k <= n && String.sub s !pos k = word then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ word)
  and number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num s.[!pos] do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      incr pos;
      Arr []
    end
    else begin
      let items = ref [ value () ] in
      skip_ws ();
      while peek () = Some ',' do
        incr pos;
        items := value () :: !items;
        skip_ws ()
      done;
      expect ']';
      Arr (List.rev !items)
    end
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      incr pos;
      Obj []
    end
    else begin
      let parse_field () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = value () in
        (k, v)
      in
      let fields = ref [ parse_field () ] in
      skip_ws ();
      while peek () = Some ',' do
        incr pos;
        fields := parse_field () :: !fields;
        skip_ws ()
      done;
      expect '}';
      Obj (List.rev !fields)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s = match parse_exn s with v -> Ok v | exception Parse_error e -> Error e

let member name = function Obj fields -> List.assoc_opt name fields | _ -> None

let to_num = function Num f -> Some f | Null -> Some Float.nan | _ -> None
let to_str = function Str s -> Some s | _ -> None

let of_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    parse contents
