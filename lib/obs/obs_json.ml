(* Minimal JSON emission helpers shared by Trace and Metrics.  Kept private
   to the library in spirit: Report_json owns report serialization. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = Printf.sprintf "\"%s\"" (escape s)

let num f = if Float.is_finite f then Printf.sprintf "%.6g" f else "null"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"

let to_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
