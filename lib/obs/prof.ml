(* Like [Trace], the on/off switch is global (one [--profile] flag governs
   every domain) and the accumulator is per-domain, so concurrent workers
   attribute GC work without contention.  A span's cost is the difference
   of two [Gc.quick_stat] samples; [quick_stat] reads the calling domain's
   allocation counters without walking the heap, so an enabled profile
   stays cheap enough to leave on for whole benchmark sweeps. *)

type stats = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_words : int;  (* peak heap observed at span close, words *)
}

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
    compactions = 0;
    top_heap_words = 0;
  }

let add a b =
  {
    minor_words = a.minor_words +. b.minor_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    major_words = a.major_words +. b.major_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
    compactions = a.compactions + b.compactions;
    top_heap_words = max a.top_heap_words b.top_heap_words;
  }

let recording = Atomic.make false

let enable () = Atomic.set recording true
let disable () = Atomic.set recording false
let enabled () = Atomic.get recording

(* Per-domain accumulator: span name -> running stats. *)

type store = (string, stats) Hashtbl.t

type collected = store

let store_key : store Domain.DLS.key = Domain.DLS.new_key (fun () -> Hashtbl.create 17)
let store () = Domain.DLS.get store_key

type mark = Gc.stat option

let mark () = if Atomic.get recording then Some (Gc.quick_stat ()) else None

(* Mirrors [Flow.slug]: stage names become metric-name components. *)
let slug name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '_')
    (String.lowercase_ascii name)

let gauges name st =
  let s = slug name in
  let set field v = Metrics.set (Metrics.gauge ("prof." ^ s ^ "." ^ field)) v in
  set "minor_words" st.minor_words;
  set "promoted_words" st.promoted_words;
  set "major_words" st.major_words;
  set "minor_collections" (float_of_int st.minor_collections);
  set "major_collections" (float_of_int st.major_collections);
  set "compactions" (float_of_int st.compactions);
  set "top_heap_words" (float_of_int st.top_heap_words)

let record name m =
  match m with
  | None -> None
  | Some (s0 : Gc.stat) ->
    let s1 = Gc.quick_stat () in
    let d =
      {
        minor_words = s1.Gc.minor_words -. s0.Gc.minor_words;
        promoted_words = s1.Gc.promoted_words -. s0.Gc.promoted_words;
        major_words = s1.Gc.major_words -. s0.Gc.major_words;
        minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
        major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
        compactions = s1.Gc.compactions - s0.Gc.compactions;
        top_heap_words = s1.Gc.top_heap_words;
      }
    in
    let st = store () in
    let acc = match Hashtbl.find_opt st name with Some a -> add a d | None -> d in
    Hashtbl.replace st name acc;
    gauges name acc;
    Some d

let with_span name f =
  if not (Atomic.get recording) then f ()
  else begin
    let m = mark () in
    Fun.protect ~finally:(fun () -> ignore (record name m)) f
  end

let spans () =
  Hashtbl.fold (fun name st acc -> (name, st) :: acc) (store ()) []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let reset () = Hashtbl.reset (store ())

let collect f =
  let saved = Domain.DLS.get store_key in
  let fresh : store = Hashtbl.create 17 in
  Domain.DLS.set store_key fresh;
  match f () with
  | y ->
    Domain.DLS.set store_key saved;
    (y, fresh)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Domain.DLS.set store_key saved;
    Printexc.raise_with_backtrace e bt

let merge (col : collected) =
  let st = store () in
  Hashtbl.iter
    (fun name d ->
      let acc = match Hashtbl.find_opt st name with Some a -> add a d | None -> d in
      Hashtbl.replace st name acc;
      (* Re-publish from the merged totals: the gauge writes that rode the
         job's Metrics scope carried only that job's view. *)
      gauges name acc)
    col

(* Cross-process form of [merge]: sidecar spans arrive as an association
   list (the [spans] wire shape), not a live hashtable. *)
let absorb spans =
  let col : store = Hashtbl.create 17 in
  List.iter
    (fun (name, d) ->
      let acc = match Hashtbl.find_opt col name with Some a -> add a d | None -> d in
      Hashtbl.replace col name acc)
    spans;
  merge col

let stats_json st =
  Obs_json.obj
    [
      ("minor_words", Obs_json.num st.minor_words);
      ("promoted_words", Obs_json.num st.promoted_words);
      ("major_words", Obs_json.num st.major_words);
      ("minor_collections", string_of_int st.minor_collections);
      ("major_collections", string_of_int st.major_collections);
      ("compactions", string_of_int st.compactions);
      ("top_heap_words", string_of_int st.top_heap_words);
    ]

let stats_of_json doc =
  let num name = match Obs_json.member name doc with
    | Some v -> (match Obs_json.to_num v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "prof: field %S is not a number" name))
    | None -> Error (Printf.sprintf "prof: missing field %S" name)
  in
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* minor_words = num "minor_words" in
  let* promoted_words = num "promoted_words" in
  let* major_words = num "major_words" in
  let* minor_collections = num "minor_collections" in
  let* major_collections = num "major_collections" in
  let* compactions = num "compactions" in
  let* top_heap_words = num "top_heap_words" in
  Ok
    {
      minor_words;
      promoted_words;
      major_words;
      minor_collections = int_of_float minor_collections;
      major_collections = int_of_float major_collections;
      compactions = int_of_float compactions;
      top_heap_words = int_of_float top_heap_words;
    }

let to_json () =
  Obs_json.obj (List.map (fun (name, st) -> (name, stats_json st)) (spans ()))
