(** Folded-stacks ("flamegraph collapsed") export of Chrome-trace spans.

    The Chrome JSON {!Trace} writes has no explicit nesting, so stacks
    are rebuilt from time containment per [tid]: after sorting by (start
    ascending, duration descending), a span is a child of every span
    still covering its start time.  Each span then contributes its
    {e self} time — duration minus direct children — to the line for its
    full [root;...;leaf] path, in integer microseconds.

    Identical paths merge across tids, and lines sort lexicographically,
    so the folded output depends only on the span structure of the input
    trace, not on worker placement or hash order.  The result feeds
    [flamegraph.pl] / speedscope / inferno unchanged. *)

type span = { sp_name : string; sp_ts : float; sp_dur : float; sp_tid : int }

val fold : span list -> (string * float) list
(** [(stack_path, self_us)] per unique path, sorted by path. *)

val of_events : Trace.event list -> (string * float) list
(** Fold live {!Trace} events (zero-duration instants are dropped). *)

val of_trace_json : Obs_json.t -> ((string * float) list, string) result
(** Fold a parsed Chrome trace document ([{"traceEvents":[...]}]). *)

val of_file : string -> ((string * float) list, string) result

val render : (string * float) list -> string
(** One ["a;b;c <us>\n"] line per stack with at least 1us of self time. *)
