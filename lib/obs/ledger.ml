(* Append-only JSONL run store.  One line per completed invocation; writes
   are single [write]s to an O_APPEND descriptor under an advisory lock on
   a sibling [.lock] file, so concurrent flows (domains or processes) can
   share one ledger without interleaving partial lines.  The lock is an
   atomically created file, broken by age when its holder died without
   releasing it (see [with_lock]).  The reader is deliberately forgiving:
   a line that does not parse — typically the truncated tail of a run that
   died mid-append — is counted and skipped, never fatal. *)

let schema_version = 1

type workload = {
  lw_workload : Snapshot.workload;
  lw_prof : (string * Prof.stats) list;  (* stage name -> GC attribution *)
}

type record = {
  r_version : int;
  r_id : string;  (* 12-hex digest of the canonical payload *)
  r_time : float;  (* unix seconds, injected by the caller *)
  r_tool : string;
  r_kind : string;  (* "run" | "bench" | "lint" | "campaign" *)
  r_tag : string;
  r_circuit : string;
  r_technique : string;
  r_guard : string;
  r_jobs : int;
  r_args_hash : string;
  r_workloads : workload list;
}

let default_path () = Sys.getenv_opt "SMT_LEDGER"

let clock () =
  match Sys.getenv_opt "SMT_CLOCK" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some t -> t
    | None -> Unix.gettimeofday ())
  | None -> Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let workload_json w =
  let base = Snapshot.workload_json w.lw_workload in
  match w.lw_prof with
  | [] -> base
  | prof ->
    (* Splice the prof object into the workload object: the base emitter
       closes with '}', the prof block rides behind the last field. *)
    let prof_json =
      Obs_json.obj (List.map (fun (stage, st) -> (stage, Prof.stats_json st)) prof)
    in
    String.sub base 0 (String.length base - 1) ^ ",\"prof\":" ^ prof_json ^ "}"

let payload_json r =
  Obs_json.obj
    [
      ("schema_version", string_of_int r.r_version);
      ("time", Obs_json.num_exact r.r_time);
      ("tool", Obs_json.str r.r_tool);
      ("kind", Obs_json.str r.r_kind);
      ("tag", Obs_json.str r.r_tag);
      ("circuit", Obs_json.str r.r_circuit);
      ("technique", Obs_json.str r.r_technique);
      ("guard", Obs_json.str r.r_guard);
      ("jobs", string_of_int r.r_jobs);
      ("args_hash", Obs_json.str r.r_args_hash);
      ("workloads", Obs_json.arr (List.map workload_json r.r_workloads));
    ]

let to_json r =
  let p = payload_json r in
  "{\"id\":" ^ Obs_json.str r.r_id ^ "," ^ String.sub p 1 (String.length p - 1)

let short_digest s = String.sub (Digest.to_hex (Digest.string s)) 0 12

let make ?(time = clock ()) ?(tool = "smt_flow") ?(tag = "") ?(circuit = "-")
    ?(technique = "-") ?(guard = "off") ?(jobs = 1) ?(args = []) ~kind workloads =
  let r =
    {
      r_version = schema_version;
      r_id = "";
      r_time = time;
      r_tool = tool;
      r_kind = kind;
      r_tag = tag;
      r_circuit = circuit;
      r_technique = technique;
      r_guard = guard;
      r_jobs = jobs;
      r_args_hash = short_digest (String.concat "\x00" args);
      r_workloads = workloads;
    }
  in
  { r with r_id = short_digest (payload_json r) }

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_of name doc =
  match Obs_json.member name doc with
  | Some v -> (
    match Obs_json.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "ledger: field %S is not a string" name))
  | None -> Error (Printf.sprintf "ledger: missing field %S" name)

let num_of name doc =
  match Obs_json.member name doc with
  | Some v -> (
    match Obs_json.to_num v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "ledger: field %S is not a number" name))
  | None -> Error (Printf.sprintf "ledger: missing field %S" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let workload_of_json doc =
  let* w = Snapshot.workload_of_json doc in
  let* prof =
    match Obs_json.member "prof" doc with
    | None -> Ok []
    | Some (Obs_json.Obj fields) ->
      map_result
        (fun (stage, v) ->
          let* st = Prof.stats_of_json v in
          Ok (stage, st))
        fields
    | Some _ -> Error "ledger: workload prof is not an object"
  in
  Ok { lw_workload = w; lw_prof = prof }

let of_json doc =
  let* version = num_of "schema_version" doc in
  let* id = str_of "id" doc in
  let* time = num_of "time" doc in
  let* tool = str_of "tool" doc in
  let* kind = str_of "kind" doc in
  let* tag = str_of "tag" doc in
  let* circuit = str_of "circuit" doc in
  let* technique = str_of "technique" doc in
  let* guard = str_of "guard" doc in
  let* jobs = num_of "jobs" doc in
  let* args_hash = str_of "args_hash" doc in
  let* workloads =
    match Obs_json.member "workloads" doc with
    | Some (Obs_json.Arr items) -> map_result workload_of_json items
    | Some _ -> Error "ledger: workloads is not an array"
    | None -> Error "ledger: missing field \"workloads\""
  in
  Ok
    {
      r_version = int_of_float version;
      r_id = id;
      r_time = time;
      r_tool = tool;
      r_kind = kind;
      r_tag = tag;
      r_circuit = circuit;
      r_technique = technique;
      r_guard = guard;
      r_jobs = int_of_float jobs;
      r_args_hash = args_hash;
      r_workloads = workloads;
    }

let of_line line =
  match Obs_json.parse line with Ok doc -> of_json doc | Error e -> Error e

(* ------------------------------------------------------------------ *)
(* File I/O                                                            *)
(* ------------------------------------------------------------------ *)

(* Appends serialize on an atomically created sibling [.lock] file, which
   works across processes and filesystems but can be orphaned: a holder
   SIGKILLed between create and unlink leaves the file behind, and
   without recovery every later append would spin forever.  Contenders
   therefore break locks older than a staleness threshold — generous next
   to the sub-millisecond hold time of an append — with a warning.  The
   known (documented) race: a holder stalled past the threshold can have
   its lock broken under it; pick SMT_LOCK_STALE_MS above the longest
   plausible critical section (the default is 4 orders of magnitude
   above). *)
let default_stale_lock_s = 10.

let stale_lock_s () =
  match Sys.getenv_opt "SMT_LOCK_STALE_MS" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some ms when ms > 0. -> ms /. 1000.
    | _ -> default_stale_lock_s)
  | None -> default_stale_lock_s

let with_lock path f =
  let lock = path ^ ".lock" in
  let rec acquire delay =
    match Unix.openfile lock [ Unix.O_CREAT; Unix.O_EXCL; Unix.O_WRONLY ] 0o644 with
    | fd -> fd
    | exception Unix.Unix_error (Unix.EEXIST, _, _) ->
      let broke =
        match Unix.stat lock with
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> true (* just released *)
        | st ->
          let age = Unix.gettimeofday () -. st.Unix.st_mtime in
          if age > stale_lock_s () then begin
            Log.warn "ledger" "breaking stale lock"
              ~fields:
                [ ("lock", lock); ("age_s", Printf.sprintf "%.1f" age) ];
            (try Unix.unlink lock with Unix.Unix_error _ -> ());
            true
          end
          else false
      in
      if not broke then Unix.sleepf delay;
      acquire (Float.min 0.05 (delay *. 2.))
  in
  let fd = acquire 0.001 in
  (* Record the holder for post-mortems of any orphan that does occur. *)
  let pid = Bytes.of_string (string_of_int (Unix.getpid ()) ^ "\n") in
  (try ignore (Unix.write fd pid 0 (Bytes.length pid))
   with Unix.Unix_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink lock with Unix.Unix_error _ -> ())
    f

let append path r =
  with_lock path (fun () ->
      let fd =
        Unix.openfile path [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_APPEND ] 0o644
      in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let line = to_json r ^ "\n" in
          let b = Bytes.of_string line in
          let n = Unix.write fd b 0 (Bytes.length b) in
          if n <> Bytes.length b then failwith "ledger: short write"))

type read_result = { records : record list; skipped : int }

let read path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let records = ref [] and skipped = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            if String.trim line <> "" then
              match of_line line with
              | Ok r -> records := r :: !records
              | Error _ -> incr skipped
          done
        with End_of_file -> ());
    Ok { records = List.rev !records; skipped = !skipped }

let find path id =
  match read path with
  | Error e -> Error e
  | Ok { records; _ } -> (
    match List.find_opt (fun r -> r.r_id = id) records with
    | Some r -> Ok r
    | None -> Error (Printf.sprintf "no record with id %s in %s" id path))

type gc_result = { kept : int; dropped_malformed : int; dropped_old : int }

let gc ?keep path =
  with_lock path (fun () ->
      match open_in path with
      | exception Sys_error e -> Error e
      | ic ->
        let records = ref [] and malformed = ref 0 in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            try
              while true do
                let line = input_line ic in
                if String.trim line <> "" then
                  match of_line line with
                  | Ok r -> records := r :: !records
                  | Error _ -> incr malformed
              done
            with End_of_file -> ());
        let records = List.rev !records in
        let dropped_old, records =
          match keep with
          | Some k when k >= 0 && List.length records > k ->
            let n = List.length records in
            (n - k, List.filteri (fun i _ -> i >= n - k) records)
          | _ -> (0, records)
        in
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            List.iter
              (fun r ->
                output_string oc (to_json r);
                output_char oc '\n')
              records);
        Sys.rename tmp path;
        Ok { kept = List.length records; dropped_malformed = !malformed; dropped_old })
