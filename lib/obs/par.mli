(** Observability-aware parallel map: {!Smt_util.Pool.map} plus the
    bookkeeping that keeps parallel runs indistinguishable from sequential
    ones to the metrics and trace consumers.

    Each job runs under {!Metrics.collect}, {!Trace.collect}, and
    {!Prof.collect}; the job stores are merged back on the caller {e in
    input order}, so counter and histogram totals are identical at any job
    count and gauges resolve exactly as they would have sequentially.
    Worker trace buffers are absorbed with [tid = 2 + input index], giving
    one Chrome trace row per job next to the caller's own [tid 1] row.
    Per-stage GC attribution sums across jobs (peak heap by max) and the
    [prof.*] gauges are re-published from the merged totals.

    [jobs <= 1] is a plain [List.map] on the calling domain — no domains,
    no collection scopes, byte-identical to the pre-parallel behaviour. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving; exceptions re-raised on the caller (first failing
    input wins, as {!Smt_util.Pool.map}). *)
