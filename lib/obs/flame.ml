(* Folded-stacks export of Chrome-trace spans, for flamegraph tooling.

   The trace JSON carries no nesting depth, so stacks are reconstructed
   from time containment per tid: events sorted by (start asc, duration
   desc) visit parents before their children, and a frame stays on the
   stack while later events start before it ends.  Each frame contributes
   its self time (duration minus the durations of its direct children) to
   its full stack path; identical paths merge across tids so the folded
   file is stable under worker placement. *)

type span = { sp_name : string; sp_ts : float; sp_dur : float; sp_tid : int }

(* Timestamps and durations are printed with %.3f (microseconds), each
   rounded independently, so a reconstructed end can drift a full lsb
   from the next sibling's start; two lsbs of slack keep adjacent
   mark-delimited stages from being read as nested. *)
let eps = 0.002

type frame = { fr_name : string; fr_end : float; fr_dur : float; mutable fr_child : float }

let fold_tid add spans =
  let stack = ref [] in
  let path () = String.concat ";" (List.rev_map (fun fr -> fr.fr_name) !stack) in
  let pop () =
    match !stack with
    | [] -> ()
    | fr :: rest ->
      add (path ()) (Float.max 0.0 (fr.fr_dur -. fr.fr_child));
      stack := rest
  in
  List.iter
    (fun sp ->
      (* A frame is an ancestor only if it covers the whole new span:
         spans that end first, or that the new span outlives, pop. *)
      while
        match !stack with
        | fr :: _ ->
          fr.fr_end <= sp.sp_ts +. eps || sp.sp_ts +. sp.sp_dur > fr.fr_end +. eps
        | [] -> false
      do
        pop ()
      done;
      (match !stack with
      | parent :: _ -> parent.fr_child <- parent.fr_child +. sp.sp_dur
      | [] -> ());
      stack :=
        { fr_name = sp.sp_name; fr_end = sp.sp_ts +. sp.sp_dur; fr_dur = sp.sp_dur; fr_child = 0.0 }
        :: !stack)
    spans;
  while !stack <> [] do
    pop ()
  done

let fold spans =
  let tbl : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let add path self =
    if path <> "" && self > 0.0 then
      Hashtbl.replace tbl path (self +. Option.value ~default:0.0 (Hashtbl.find_opt tbl path))
  in
  let tids =
    List.sort_uniq compare (List.map (fun sp -> sp.sp_tid) spans)
  in
  List.iter
    (fun tid ->
      let mine = List.filter (fun sp -> sp.sp_tid = tid) spans in
      let mine =
        List.stable_sort
          (fun a b ->
            match compare a.sp_ts b.sp_ts with
            | 0 -> compare b.sp_dur a.sp_dur
            | c -> c)
          mine
      in
      fold_tid add mine)
    tids;
  Hashtbl.fold (fun path self acc -> (path, self) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let of_events evs =
  fold
    (List.filter_map
       (fun (ev : Trace.event) ->
         if ev.Trace.ev_dur_us > 0.0 then
           Some
             {
               sp_name = ev.Trace.ev_name;
               sp_ts = ev.Trace.ev_ts_us;
               sp_dur = ev.Trace.ev_dur_us;
               sp_tid = ev.Trace.ev_tid;
             }
         else None)
       evs)

(* A span from the trace JSON: complete ("ph":"X") events only, instants
   and zero-width spans carry no self time. *)
let span_of_json doc =
  let str name = Option.bind (Obs_json.member name doc) Obs_json.to_str in
  let num name = Option.bind (Obs_json.member name doc) Obs_json.to_num in
  match (str "ph", str "name", num "ts", num "dur") with
  | Some "X", Some name, Some ts, Some dur when dur > 0.0 ->
    let tid = match num "tid" with Some t -> int_of_float t | None -> 1 in
    Some { sp_name = name; sp_ts = ts; sp_dur = dur; sp_tid = tid }
  | _ -> None

let of_trace_json doc =
  match Obs_json.member "traceEvents" doc with
  | Some (Obs_json.Arr items) -> Ok (fold (List.filter_map span_of_json items))
  | Some _ -> Error "flame: traceEvents is not an array"
  | None -> Error "flame: missing field \"traceEvents\""

let of_file path =
  match Obs_json.of_file path with
  | Error e -> Error e
  | Ok doc -> of_trace_json doc

(* Folded format: one "stack;path;leaf <weight>" line per unique stack,
   weight in integer microseconds of self time, sorted by stack for
   byte-reproducible output. *)
let render folded =
  let b = Buffer.create 256 in
  List.iter
    (fun (path, self) ->
      let us = Float.round self in
      if us >= 1.0 then Buffer.add_string b (Printf.sprintf "%s %.0f\n" path us))
    folded;
  Buffer.contents b
