(* Trend analysis over a run ledger (or a directory of snapshots): per
   workload, per metric, the value's trajectory across records, plus the
   same Regression/Advisory classification Snapshot.compare applies to a
   2-point comparison, extended to every adjacent pair of an N-point
   series.  Records are ordered by (time, file order), so an injected
   clock makes the whole analysis byte-reproducible. *)

type point = { p_time : float; p_id : string; p_value : float }

type status = Steady | Advisory | Regression

type series = {
  sr_workload : string;
  sr_field : string;  (* "qor.area_um2" | "counter.<c>" | "stage_ms.<s>" *)
  sr_points : point list;  (* time order *)
  sr_status : status;
}

let status_name = function
  | Steady -> "steady"
  | Advisory -> "advisory"
  | Regression -> "REGRESSION"

(* ------------------------------------------------------------------ *)
(* Sources                                                             *)
(* ------------------------------------------------------------------ *)

let ordered records =
  List.stable_sort
    (fun (a : Ledger.record) b -> compare a.Ledger.r_time b.Ledger.r_time)
    records

(* A directory of BENCH_*.json snapshots reads as a pseudo-ledger: one
   record per file, timestamped by filename order (snapshots carry no
   clock of their own). *)
let of_snapshot_dir dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | names ->
    let names =
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".json")
      |> List.sort compare
    in
    let records =
      List.mapi
        (fun i name ->
          match Snapshot.read (Filename.concat dir name) with
          | Error _ -> None
          | Ok snap ->
            Some
              (Ledger.make ~time:(float_of_int i) ~tag:snap.Snapshot.s_tag
                 ~kind:"snapshot"
                 (List.map
                    (fun w -> { Ledger.lw_workload = w; Ledger.lw_prof = [] })
                    snap.Snapshot.s_workloads)))
        names
      |> List.filter_map Fun.id
    in
    Ok records

(* ------------------------------------------------------------------ *)
(* Series extraction                                                   *)
(* ------------------------------------------------------------------ *)

let workload_fields (w : Snapshot.workload) =
  List.map (fun (k, v) -> ("qor." ^ k, v)) w.Snapshot.w_qor
  @ List.map (fun (k, v) -> ("counter." ^ k, float_of_int v)) w.Snapshot.w_counters
  @ List.map (fun (k, v) -> ("stage_ms." ^ k, v)) w.Snapshot.w_stage_ms

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  nl = 0
  ||
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let workload_names ?(filter = "") records =
  List.fold_left
    (fun acc (r : Ledger.record) ->
      List.fold_left
        (fun acc (lw : Ledger.workload) ->
          let n = lw.Ledger.lw_workload.Snapshot.w_name in
          if List.mem n acc then acc else n :: acc)
        acc r.Ledger.r_workloads)
    [] records
  |> List.filter (contains ~needle:filter)
  |> List.sort compare

(* Adjacent-pair classification, reusing Snapshot.compare verbatim on
   single-workload snapshots: the rules (exact QoR/counter equality,
   ratio-with-floor advisory wall-clock) stay in one place. *)
let transitions ~workload records =
  let snaps =
    List.filter_map
      (fun (r : Ledger.record) ->
        List.find_opt
          (fun (lw : Ledger.workload) ->
            lw.Ledger.lw_workload.Snapshot.w_name = workload)
          r.Ledger.r_workloads
        |> Option.map (fun lw ->
               (r.Ledger.r_id, Snapshot.make ~tag:r.Ledger.r_id [ lw.Ledger.lw_workload ])))
      (ordered records)
  in
  let rec pairs = function
    | (id0, s0) :: ((id1, s1) :: _ as rest) ->
      (id0, id1, Snapshot.compare ~baseline:s0 ~current:s1) :: pairs rest
    | _ -> []
  in
  pairs snaps

let field_status transs field =
  List.fold_left
    (fun acc (_, _, deltas) ->
      List.fold_left
        (fun acc (d : Snapshot.delta) ->
          if d.Snapshot.d_field <> field then acc
          else
            match (acc, d.Snapshot.d_severity) with
            | (Regression, _) | (_, Snapshot.Regression) -> Regression
            | _ -> Advisory)
        acc deltas)
    Steady transs

let analyze_workload ?(metric = "") ?(qor_only = true) records wname =
  let records = ordered records in
  let per_record =
        List.filter_map
          (fun (r : Ledger.record) ->
            List.find_opt
              (fun (lw : Ledger.workload) ->
                lw.Ledger.lw_workload.Snapshot.w_name = wname)
              r.Ledger.r_workloads
            |> Option.map (fun lw ->
                   (r.Ledger.r_time, r.Ledger.r_id, workload_fields lw.Ledger.lw_workload)))
          records
      in
      let fields =
        List.fold_left
          (fun acc (_, _, fs) ->
            List.fold_left
              (fun acc (k, _) -> if List.mem k acc then acc else k :: acc)
              acc fs)
          [] per_record
        |> List.sort compare
      in
      let selected =
        List.filter
          (fun f ->
            (if metric = "" then
               (not qor_only) || String.length f >= 4 && String.sub f 0 4 = "qor."
             else contains ~needle:metric f))
          fields
      in
      let transs = transitions ~workload:wname records in
      List.filter_map
        (fun field ->
          let points =
            List.filter_map
              (fun (t, id, fs) ->
                List.assoc_opt field fs
                |> Option.map (fun v -> { p_time = t; p_id = id; p_value = v }))
              per_record
          in
          if points = [] then None
          else
            Some
              {
                sr_workload = wname;
                sr_field = field;
                sr_points = points;
                sr_status = field_status transs field;
              })
        selected

let analyze ?(metric = "") ?(workload = "") ?(qor_only = true) records =
  let records = ordered records in
  List.concat_map
    (analyze_workload ~metric ~qor_only records)
    (workload_names ~filter:workload records)

let regressions records =
  List.concat_map
    (fun wname ->
      List.concat_map
        (fun (id0, id1, deltas) ->
          List.filter_map
            (fun (d : Snapshot.delta) ->
              if d.Snapshot.d_severity = Snapshot.Regression then
                Some (id0, id1, d)
              else None)
            deltas)
        (transitions ~workload:wname records))
    (workload_names records)

let has_regressions records = regressions records <> []

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let minmax points =
  List.fold_left
    (fun (lo, hi) p -> (Float.min lo p.p_value, Float.max hi p.p_value))
    (infinity, neg_infinity) points

let render series =
  let header = [ "Workload"; "Metric"; "N"; "First"; "Latest"; "Best"; "Worst"; "Status" ] in
  let rows =
    List.map
      (fun s ->
        let lo, hi = minmax s.sr_points in
        let first = (List.hd s.sr_points).p_value in
        let latest = (List.nth s.sr_points (List.length s.sr_points - 1)).p_value in
        [
          s.sr_workload;
          s.sr_field;
          string_of_int (List.length s.sr_points);
          render_value first;
          render_value latest;
          render_value lo;
          render_value hi;
          status_name s.sr_status;
        ])
      series
  in
  Smt_util.Text_table.render ~header rows

let to_json series =
  Obs_json.arr
    (List.map
       (fun s ->
         let lo, hi = minmax s.sr_points in
         Obs_json.obj
           [
             ("workload", Obs_json.str s.sr_workload);
             ("metric", Obs_json.str s.sr_field);
             ("status", Obs_json.str (status_name s.sr_status));
             ("best", Obs_json.num_exact lo);
             ("worst", Obs_json.num_exact hi);
             ( "points",
               Obs_json.arr
                 (List.map
                    (fun p ->
                      Obs_json.obj
                        [
                          ("time", Obs_json.num_exact p.p_time);
                          ("id", Obs_json.str p.p_id);
                          ("value", Obs_json.num_exact p.p_value);
                        ])
                    s.sr_points) );
           ])
       series)

let render_regressions records =
  let regs = regressions records in
  if regs = [] then "trend: no regressions\n"
  else
    String.concat ""
      (List.map
         (fun (id0, id1, d) ->
           Printf.sprintf "%s -> %s: %s\n" id0 id1 (Snapshot.render_delta d))
         regs)
