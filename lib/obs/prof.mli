(** Per-span resource profiling: GC and heap cost attributed to named
    flow stages.

    A profiled span samples [Gc.quick_stat] at open and close and charges
    the difference — minor/major/promoted words, collection counts,
    compactions, and the peak heap observed — to the span's name.
    [quick_stat] reads the calling domain's counters without walking the
    heap, so profiling is cheap enough to stay enabled across whole
    benchmark sweeps; with the switch off (the default), [mark] and
    [record] are no-ops and runs are bit-identical to an unprofiled
    build.

    Each recorded span also publishes [prof.<slug>.minor_words],
    [prof.<slug>.major_words], ... {!Metrics} gauges, so profile data
    rides every existing metrics dump.

    {b Domain safety.}  The on/off switch is global (atomic); the
    accumulator is per-domain.  Parallel drivers scope each job with
    {!collect} and fold the result back with {!merge} in input order,
    exactly like {!Metrics} — stats are additive (peak heap merges by
    [max]).

    {b Determinism.}  OCaml allocation is deterministic for a
    deterministic program, so minor-word attribution is reproducible
    run-to-run; collection counts and promoted words depend on minor-heap
    state at span entry and may drift a little between job placements.
    Nothing here feeds QoR comparison — profile numbers are attribution,
    not gate inputs. *)

type stats = {
  minor_words : float;
  promoted_words : float;
  major_words : float;  (** includes promotions, as in [Gc.stat] *)
  minor_collections : int;
  major_collections : int;
  compactions : int;
  top_heap_words : int;  (** peak heap at span close (words), merged by max *)
}

val zero : stats
val add : stats -> stats -> stats
(** Field-wise sum; [top_heap_words] is the max of the two. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

type mark
(** An open-span sample.  Opaque; [None]-like when profiling is off. *)

val mark : unit -> mark
(** Sample the current GC counters (no-op value when disabled). *)

val record : string -> mark -> stats option
(** [record name m] charges the cost since [m] to [name]: accumulates into
    the per-domain store, refreshes the [prof.<slug>.*] gauges, and
    returns this span's own delta.  [None] when profiling was off at
    [mark] time. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [mark]/[record] around a thunk, for lexically scoped stages.  The cost
    is recorded even if the thunk raises. *)

val spans : unit -> (string * stats) list
(** Accumulated per-span stats of the calling domain, sorted by name. *)

val reset : unit -> unit
(** Drop the calling domain's accumulator (recording state unchanged). *)

type collected
(** The profile a {!collect} scope accumulated. *)

val collect : (unit -> 'a) -> 'a * collected
(** Run the thunk against a fresh, empty accumulator and hand it back;
    the caller's own accumulator is untouched and restored (also on
    exception, discarding the scope with the re-raise). *)

val merge : collected -> unit
(** Fold a collected accumulator into the calling domain's store
    (additive; peak heap by max). *)

val absorb : (string * stats) list -> unit
(** {!merge} for spans that arrived as data rather than a live scope —
    the {!spans} shape, e.g. deserialized from another process's
    telemetry sidecar.  Additive; peak heap by max; also refreshes the
    [prof.<slug>.*] gauges from the merged totals. *)

val stats_json : stats -> string
val stats_of_json : Obs_json.t -> (stats, string) result
val to_json : unit -> string
(** The calling domain's accumulator as one JSON object, span name to
    stats, sorted. *)
