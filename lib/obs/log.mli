(** Leveled structured logging to stderr.

    Every line is one event: a level tag, a component name, a message, and
    optional [key=value] fields — grep-friendly, no multi-line records.
    The default level is [Off], so an uninstrumented run writes nothing;
    the [SMT_LOG] environment variable (read once at startup) or
    [set_level] (the CLI's [--log-level]) turns it on. *)

type level = Debug | Info | Warn | Error | Off

val level_of_string : string -> (level, string) result
(** Accepts [debug|info|warn|error|off] (case-insensitive). *)

val level_name : level -> string

val set_level : level -> unit
val level : unit -> level

val enabled : level -> bool
(** Would a message at this level be written under the current level? *)

val debug : ?fields:(string * string) list -> string -> string -> unit
(** [debug component msg] — likewise [info], [warn], [error].  Fields are
    appended as [key=value] pairs. *)

val info : ?fields:(string * string) list -> string -> string -> unit
val warn : ?fields:(string * string) list -> string -> string -> unit
val error : ?fields:(string * string) list -> string -> string -> unit
