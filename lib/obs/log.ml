type level = Debug | Info | Warn | Error | Off

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3 | Off -> 4

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"
  | Off -> "off"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | "off" | "none" | "quiet" -> Ok Off
  | other -> Error (Printf.sprintf "unknown log level %S (debug|info|warn|error|off)" other)

let current =
  ref
    (match Sys.getenv_opt "SMT_LOG" with
    | None -> Off
    | Some s -> ( match level_of_string s with Ok l -> l | Error _ -> Off))

let set_level l = current := l
let level () = !current
let enabled l = severity l >= severity !current && !current <> Off

(* One line per [emit], guarded so concurrent domains never interleave
   partial lines on stderr. *)
let sink_mu = Mutex.create ()

let emit l ?(fields = []) component msg =
  if enabled l then begin
    let b = Buffer.create 80 in
    Buffer.add_string b (Printf.sprintf "[smt:%s] %s: %s" (level_name l) component msg);
    List.iter (fun (k, v) -> Buffer.add_string b (Printf.sprintf " %s=%s" k v)) fields;
    Buffer.add_char b '\n';
    Mutex.lock sink_mu;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock sink_mu)
      (fun () ->
        output_string stderr (Buffer.contents b);
        flush stderr)
  end

let debug ?fields component msg = emit Debug ?fields component msg
let info ?fields component msg = emit Info ?fields component msg
let warn ?fields component msg = emit Warn ?fields component msg
let error ?fields component msg = emit Error ?fields component msg
