(* Instrument *definitions* (name -> id + kind) are process-global and
   mutex-guarded; instrument *values* live in a per-domain store reached
   through domain-local storage.  A handle is just an id into that store,
   so the hot-path cost stays one array store per event and two domains
   never contend on a value.  [collect]/[merge] scope a store around a job
   so parallel sweeps can replay each job's effects on the caller in input
   order — counter and histogram merges are additive (order-independent);
   gauges written during a job overwrite on merge (last-write-wins, same
   as sequential execution when merged in input order). *)

type counter = { c_id : int; c_name : string }
type gauge = { g_id : int; g_name : string }

type histogram = {
  h_id : int;
  h_name : string;
  h_bounds : float array;  (* upper bounds, ascending; implicit +inf last *)
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

let defs_mu = Mutex.create ()
let defs : (string, instrument) Hashtbl.t = Hashtbl.create 97
let n_counters = ref 0
let n_gauges = ref 0
let n_histograms = ref 0

let locked f =
  Mutex.lock defs_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock defs_mu) f

(* Per-domain value store.  Arrays are indexed by instrument id and grown
   on demand (ids are dense per kind). *)

type hstate = { mutable hs_sum : float; mutable hs_n : int; hs_hits : int array }

type store = {
  mutable st_counts : int array;
  mutable st_gauges : float array;
  mutable st_gset : bool array;  (* gauge written in this store? *)
  mutable st_hists : hstate option array;
}

type collected = store

let fresh_store () =
  {
    st_counts = Array.make 64 0;
    st_gauges = Array.make 32 0.0;
    st_gset = Array.make 32 false;
    st_hists = Array.make 16 None;
  }

let store_key : store Domain.DLS.key = Domain.DLS.new_key fresh_store
let store () = Domain.DLS.get store_key

let grown make a n =
  let len = Array.length a in
  if n <= len then a
  else begin
    let b = make (max n (2 * len)) in
    Array.blit a 0 b 0 len;
    b
  end

let ensure_counter st id =
  st.st_counts <- grown (fun n -> Array.make n 0) st.st_counts (id + 1)

let ensure_gauge st id =
  st.st_gauges <- grown (fun n -> Array.make n 0.0) st.st_gauges (id + 1);
  st.st_gset <- grown (fun n -> Array.make n false) st.st_gset (id + 1)

let ensure_hist st id =
  st.st_hists <- grown (fun n -> Array.make n None) st.st_hists (id + 1)

let default_buckets =
  [ 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0; 10000.0 ]

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt defs name with
      | Some (Counter c) -> c
      | Some _ ->
        invalid_arg (Printf.sprintf "Metrics.counter: %s registered as another kind" name)
      | None ->
        let c = { c_id = !n_counters; c_name = name } in
        n_counters := !n_counters + 1;
        Hashtbl.replace defs name (Counter c);
        c)

let incr ?(by = 1) c =
  let st = store () in
  if c.c_id >= Array.length st.st_counts then ensure_counter st c.c_id;
  st.st_counts.(c.c_id) <- st.st_counts.(c.c_id) + by

let counter_value c =
  let st = store () in
  if c.c_id < Array.length st.st_counts then st.st_counts.(c.c_id) else 0

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt defs name with
      | Some (Gauge g) -> g
      | Some _ ->
        invalid_arg (Printf.sprintf "Metrics.gauge: %s registered as another kind" name)
      | None ->
        let g = { g_id = !n_gauges; g_name = name } in
        n_gauges := !n_gauges + 1;
        Hashtbl.replace defs name (Gauge g);
        g)

let gauge_value g =
  let st = store () in
  if g.g_id < Array.length st.st_gauges then st.st_gauges.(g.g_id) else 0.0

let set g v =
  let st = store () in
  if g.g_id >= Array.length st.st_gauges then ensure_gauge st g.g_id;
  st.st_gauges.(g.g_id) <- v;
  st.st_gset.(g.g_id) <- true

let add g v = set g (gauge_value g +. v)

let histogram ?(buckets = default_buckets) name =
  locked (fun () ->
      match Hashtbl.find_opt defs name with
      | Some (Histogram h) -> h
      | Some _ ->
        invalid_arg (Printf.sprintf "Metrics.histogram: %s registered as another kind" name)
      | None ->
        let bounds = Array.of_list (List.sort_uniq compare buckets) in
        let h = { h_id = !n_histograms; h_name = name; h_bounds = bounds } in
        n_histograms := !n_histograms + 1;
        Hashtbl.replace defs name (Histogram h);
        h)

let hstate_of st h =
  if h.h_id >= Array.length st.st_hists then ensure_hist st h.h_id;
  match st.st_hists.(h.h_id) with
  | Some hs -> hs
  | None ->
    let hs =
      { hs_sum = 0.0; hs_n = 0; hs_hits = Array.make (Array.length h.h_bounds + 1) 0 }
    in
    st.st_hists.(h.h_id) <- Some hs;
    hs

let observe h v =
  let hs = hstate_of (store ()) h in
  let k = Array.length h.h_bounds in
  let rec slot i = if i >= k then k else if v <= h.h_bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  hs.hs_hits.(i) <- hs.hs_hits.(i) + 1;
  hs.hs_sum <- hs.hs_sum +. v;
  hs.hs_n <- hs.hs_n + 1

let hist_values st h =
  if h.h_id < Array.length st.st_hists then
    match st.st_hists.(h.h_id) with
    | Some hs -> (hs.hs_n, hs.hs_sum, hs.hs_hits)
    | None -> (0, 0.0, Array.make (Array.length h.h_bounds + 1) 0)
  else (0, 0.0, Array.make (Array.length h.h_bounds + 1) 0)

let histogram_count h = let n, _, _ = hist_values (store ()) h in n
let histogram_sum h = let _, s, _ = hist_values (store ()) h in s

let histogram_hits h =
  let _, _, hits = hist_values (store ()) h in
  Array.copy hits

(* Prometheus-style bucket quantile: find the bucket holding rank q*n in
   the cumulative hit counts, then interpolate linearly inside it (the
   open +inf bucket degrades to its lower bound — the largest finite
   boundary).  Purely a function of the hit counts, so callers can feed
   before/after deltas for a deterministic per-phase readout. *)
let quantile_of bounds hits q =
  let n = Array.fold_left ( + ) 0 hits in
  if n = 0 then nan
  else begin
    let q = Float.min 1.0 (Float.max 0.0 q) in
    let rank = q *. float_of_int n in
    let k = Array.length bounds in
    let rec go i cum =
      if i > k then nan
      else
        let cum' = cum + hits.(i) in
        if float_of_int cum' >= rank && cum' > 0 then
          let lo = if i = 0 then 0.0 else bounds.(i - 1) in
          if i = k || hits.(i) = 0 then lo
          else
            lo
            +. (bounds.(i) -. lo)
               *. ((rank -. float_of_int cum) /. float_of_int hits.(i))
        else go (i + 1) cum'
    in
    go 0 0
  end

let quantile_of_hits h hits q = quantile_of h.h_bounds hits q
let histogram_quantile h q = quantile_of h.h_bounds (histogram_hits h) q

(* Scoped collection: run [f] against a fresh store, hand the store back. *)

let collect f =
  let saved = Domain.DLS.get store_key in
  let fresh = fresh_store () in
  Domain.DLS.set store_key fresh;
  match f () with
  | y ->
    Domain.DLS.set store_key saved;
    (y, fresh)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Domain.DLS.set store_key saved;
    Printexc.raise_with_backtrace e bt

let merge (col : collected) =
  let st = store () in
  Array.iteri
    (fun id v ->
      if v <> 0 then begin
        if id >= Array.length st.st_counts then ensure_counter st id;
        st.st_counts.(id) <- st.st_counts.(id) + v
      end)
    col.st_counts;
  Array.iteri
    (fun id written ->
      if written then begin
        if id >= Array.length st.st_gauges then ensure_gauge st id;
        st.st_gauges.(id) <- col.st_gauges.(id);
        st.st_gset.(id) <- true
      end)
    col.st_gset;
  Array.iteri
    (fun id hso ->
      match hso with
      | None -> ()
      | Some hs -> (
        if id >= Array.length st.st_hists then ensure_hist st id;
        match st.st_hists.(id) with
        | None ->
          st.st_hists.(id) <-
            Some { hs_sum = hs.hs_sum; hs_n = hs.hs_n; hs_hits = Array.copy hs.hs_hits }
        | Some dst ->
          dst.hs_sum <- dst.hs_sum +. hs.hs_sum;
          dst.hs_n <- dst.hs_n + hs.hs_n;
          Array.iteri (fun i h -> dst.hs_hits.(i) <- dst.hs_hits.(i) + h) hs.hs_hits))
    col.st_hists

(* Readers: a locked snapshot of the definitions, values from the calling
   domain's store. *)

let instruments () =
  locked (fun () -> Hashtbl.fold (fun _ inst acc -> inst :: acc) defs [])

let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l

let counters () =
  let st = store () in
  List.filter_map
    (function
      | Counter c ->
        Some (c.c_name, if c.c_id < Array.length st.st_counts then st.st_counts.(c.c_id) else 0)
      | Gauge _ | Histogram _ -> None)
    (instruments ())
  |> sorted

let snapshot () =
  let st = store () in
  List.concat_map
    (function
      | Counter c ->
        [ (c.c_name,
           float_of_int
             (if c.c_id < Array.length st.st_counts then st.st_counts.(c.c_id) else 0)) ]
      | Gauge g ->
        [ (g.g_name, if g.g_id < Array.length st.st_gauges then st.st_gauges.(g.g_id) else 0.0) ]
      | Histogram h ->
        let n, sum, hits = hist_values st h in
        [
          (h.h_name ^ ".count", float_of_int n);
          (h.h_name ^ ".sum", sum);
          (h.h_name ^ ".p50", quantile_of h.h_bounds hits 0.5);
          (h.h_name ^ ".p90", quantile_of h.h_bounds hits 0.9);
          (h.h_name ^ ".p99", quantile_of h.h_bounds hits 0.99);
        ])
    (instruments ())
  |> sorted

let reset () = Domain.DLS.set store_key (fresh_store ())

let to_json () =
  let st = store () in
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (function
      | Counter c ->
        let v = if c.c_id < Array.length st.st_counts then st.st_counts.(c.c_id) else 0 in
        counters := (c.c_name, string_of_int v) :: !counters
      | Gauge g ->
        let v = if g.g_id < Array.length st.st_gauges then st.st_gauges.(g.g_id) else 0.0 in
        gauges := (g.g_name, Obs_json.num v) :: !gauges
      | Histogram h ->
        let n, sum, hits = hist_values st h in
        let bucket i bound =
          Obs_json.obj [ ("le", bound); ("count", string_of_int hits.(i)) ]
        in
        let buckets =
          Array.to_list (Array.mapi (fun i b -> bucket i (Obs_json.num b)) h.h_bounds)
          @ [ bucket (Array.length h.h_bounds) "\"+inf\"" ]
        in
        histograms :=
          ( h.h_name,
            Obs_json.obj
              [
                ("count", string_of_int n);
                ("sum", Obs_json.num sum);
                ("p50", Obs_json.num (quantile_of h.h_bounds hits 0.5));
                ("p90", Obs_json.num (quantile_of h.h_bounds hits 0.9));
                ("p99", Obs_json.num (quantile_of h.h_bounds hits 0.99));
                ("buckets", Obs_json.arr buckets);
              ] )
          :: !histograms)
    (instruments ());
  Obs_json.obj
    [
      ("counters", Obs_json.obj (sorted !counters));
      ("gauges", Obs_json.obj (sorted !gauges));
      ("histograms", Obs_json.obj (sorted !histograms));
    ]

let to_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      let s = if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      Buffer.add_string b (Printf.sprintf "%s %s\n" name s))
    (snapshot ());
  Buffer.contents b

let write path = Obs_json.to_file path (to_json ())

(* ------------------------------------------------------------------ *)
(* Cross-process transport.  Instrument ids are assigned per process in
   registration order, so values cannot travel by id: [export] keys them
   by name, and [absorb] re-registers each name locally, rebuilds a
   collected store in the receiving process's id space, and reuses
   [merge] — cross-process semantics are exactly the in-process ones
   (counters and histograms additive, gauges last-write-wins).  Names
   registered locally as a different kind, and histograms whose bucket
   bounds disagree with the local registration, are skipped rather than
   merged wrong. *)

type hport = { hp_bounds : float list; hp_sum : float; hp_hits : int list }

type portable = {
  p_counters : (string * int) list;
  p_gauges : (string * float) list;
  p_hists : (string * hport) list;
}

let export () =
  let st = store () in
  let counters = ref [] and gauges = ref [] and hists = ref [] in
  List.iter
    (function
      | Counter c ->
        if c.c_id < Array.length st.st_counts && st.st_counts.(c.c_id) <> 0 then
          counters := (c.c_name, st.st_counts.(c.c_id)) :: !counters
      | Gauge g ->
        if g.g_id < Array.length st.st_gset && st.st_gset.(g.g_id) then
          gauges := (g.g_name, st.st_gauges.(g.g_id)) :: !gauges
      | Histogram h ->
        let n, sum, hits = hist_values st h in
        if n > 0 then
          hists :=
            ( h.h_name,
              {
                hp_bounds = Array.to_list h.h_bounds;
                hp_sum = sum;
                hp_hits = Array.to_list hits;
              } )
            :: !hists)
    (instruments ());
  { p_counters = sorted !counters; p_gauges = sorted !gauges; p_hists = sorted !hists }

let absorb p =
  let col = fresh_store () in
  List.iter
    (fun (name, v) ->
      match counter name with
      | c ->
        ensure_counter col c.c_id;
        col.st_counts.(c.c_id) <- v
      | exception Invalid_argument _ -> ())
    p.p_counters;
  List.iter
    (fun (name, v) ->
      match gauge name with
      | g ->
        ensure_gauge col g.g_id;
        col.st_gauges.(g.g_id) <- v;
        col.st_gset.(g.g_id) <- true
      | exception Invalid_argument _ -> ())
    p.p_gauges;
  List.iter
    (fun (name, hp) ->
      match histogram ~buckets:hp.hp_bounds name with
      | h ->
        if
          Array.to_list h.h_bounds = hp.hp_bounds
          && List.length hp.hp_hits = Array.length h.h_bounds + 1
        then begin
          ensure_hist col h.h_id;
          col.st_hists.(h.h_id) <-
            Some
              {
                hs_sum = hp.hp_sum;
                hs_n = List.fold_left ( + ) 0 hp.hp_hits;
                hs_hits = Array.of_list hp.hp_hits;
              }
        end
      | exception Invalid_argument _ -> ())
    p.p_hists;
  merge col

let portable_json p =
  Obs_json.obj
    [
      ( "counters",
        Obs_json.obj (List.map (fun (n, v) -> (n, string_of_int v)) p.p_counters) );
      ( "gauges",
        Obs_json.obj (List.map (fun (n, v) -> (n, Obs_json.num_exact v)) p.p_gauges) );
      ( "histograms",
        Obs_json.obj
          (List.map
             (fun (n, hp) ->
               ( n,
                 Obs_json.obj
                   [
                     ("bounds", Obs_json.arr (List.map Obs_json.num_exact hp.hp_bounds));
                     ("sum", Obs_json.num_exact hp.hp_sum);
                     ("hits", Obs_json.arr (List.map string_of_int hp.hp_hits));
                   ] ))
             p.p_hists) );
    ]

let portable_of_json doc =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let rec map_result f = function
    | [] -> Ok []
    | x :: tl ->
      let* y = f x in
      let* ys = map_result f tl in
      Ok (y :: ys)
  in
  let obj_members name =
    match Obs_json.member name doc with
    | None -> Ok []
    | Some (Obs_json.Obj kv) -> Ok kv
    | Some _ -> Error (Printf.sprintf "metrics: %S is not an object" name)
  in
  let num_list name = function
    | Obs_json.Arr items ->
      map_result
        (fun it ->
          match Obs_json.to_num it with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "metrics: %S has a non-numeric element" name))
        items
    | _ -> Error (Printf.sprintf "metrics: %S is not an array" name)
  in
  let* counters =
    let* kv = obj_members "counters" in
    map_result
      (fun (n, v) ->
        match Obs_json.to_num v with
        | Some f -> Ok (n, int_of_float f)
        | None -> Error "metrics: counter value is not a number")
      kv
  in
  let* gauges =
    let* kv = obj_members "gauges" in
    map_result
      (fun (n, v) ->
        match Obs_json.to_num v with
        | Some f -> Ok (n, f)
        | None -> Error "metrics: gauge value is not a number")
      kv
  in
  let* hists =
    let* kv = obj_members "histograms" in
    map_result
      (fun (n, v) ->
        match (Obs_json.member "bounds" v, Obs_json.member "sum" v, Obs_json.member "hits" v)
        with
        | Some bounds, Some sum, Some hits -> (
          let* bounds = num_list "bounds" bounds in
          let* hits = num_list "hits" hits in
          match Obs_json.to_num sum with
          | Some s ->
            Ok (n, { hp_bounds = bounds; hp_sum = s; hp_hits = List.map int_of_float hits })
          | None -> Error "metrics: histogram sum is not a number")
        | _ -> Error "metrics: histogram missing bounds/sum/hits")
      kv
  in
  Ok { p_counters = counters; p_gauges = gauges; p_hists = hists }
