type counter = { c_name : string; mutable count : int }
type gauge = { g_name : string; mutable value : float }

type histogram = {
  h_name : string;
  bounds : float array;  (* upper bounds, ascending; implicit +inf last *)
  hits : int array;  (* one per bound, plus the +inf overflow at the end *)
  mutable sum : float;
  mutable n : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 97

let default_buckets =
  [ 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0; 10000.0 ]

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.counter: %s registered as another kind" name)
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace registry name (Counter c);
    c

let incr ?(by = 1) c = c.count <- c.count + by
let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> invalid_arg (Printf.sprintf "Metrics.gauge: %s registered as another kind" name)
  | None ->
    let g = { g_name = name; value = 0.0 } in
    Hashtbl.replace registry name (Gauge g);
    g

let set g v = g.value <- v
let add g v = g.value <- g.value +. v
let gauge_value g = g.value

let histogram ?(buckets = default_buckets) name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ ->
    invalid_arg (Printf.sprintf "Metrics.histogram: %s registered as another kind" name)
  | None ->
    let bounds = Array.of_list (List.sort_uniq compare buckets) in
    let h =
      { h_name = name; bounds; hits = Array.make (Array.length bounds + 1) 0; sum = 0.0; n = 0 }
    in
    Hashtbl.replace registry name (Histogram h);
    h

let observe h v =
  let k = Array.length h.bounds in
  let rec slot i = if i >= k then k else if v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.hits.(i) <- h.hits.(i) + 1;
  h.sum <- h.sum +. v;
  h.n <- h.n + 1

let histogram_count h = h.n
let histogram_sum h = h.sum

let fold f acc =
  Hashtbl.fold (fun _ inst acc -> f acc inst) registry acc
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let counters () =
  fold
    (fun acc inst ->
      match inst with Counter c -> (c.c_name, c.count) :: acc | Gauge _ | Histogram _ -> acc)
    []

let snapshot () =
  fold
    (fun acc inst ->
      match inst with
      | Counter c -> (c.c_name, float_of_int c.count) :: acc
      | Gauge g -> (g.g_name, g.value) :: acc
      | Histogram h ->
        (h.h_name ^ ".count", float_of_int h.n) :: (h.h_name ^ ".sum", h.sum) :: acc)
    []

let reset () =
  Hashtbl.iter
    (fun _ inst ->
      match inst with
      | Counter c -> c.count <- 0
      | Gauge g -> g.value <- 0.0
      | Histogram h ->
        Array.fill h.hits 0 (Array.length h.hits) 0;
        h.sum <- 0.0;
        h.n <- 0)
    registry

let to_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name inst ->
      match inst with
      | Counter c -> counters := (name, string_of_int c.count) :: !counters
      | Gauge g -> gauges := (name, Obs_json.num g.value) :: !gauges
      | Histogram h ->
        let bucket i bound =
          Obs_json.obj
            [ ("le", bound); ("count", string_of_int h.hits.(i)) ]
        in
        let buckets =
          Array.to_list (Array.mapi (fun i b -> bucket i (Obs_json.num b)) h.bounds)
          @ [ bucket (Array.length h.bounds) "\"+inf\"" ]
        in
        histograms :=
          ( name,
            Obs_json.obj
              [
                ("count", string_of_int h.n);
                ("sum", Obs_json.num h.sum);
                ("buckets", Obs_json.arr buckets);
              ] )
          :: !histograms)
    registry;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  Obs_json.obj
    [
      ("counters", Obs_json.obj (sorted !counters));
      ("gauges", Obs_json.obj (sorted !gauges));
      ("histograms", Obs_json.obj (sorted !histograms));
    ]

let to_text () =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, v) ->
      let s = if Float.is_integer v && Float.abs v < 1e15 then
          Printf.sprintf "%.0f" v
        else Printf.sprintf "%.6g" v
      in
      Buffer.add_string b (Printf.sprintf "%s %s\n" name s))
    (snapshot ());
  Buffer.contents b

let write path = Obs_json.to_file path (to_json ())
