(** Span-based tracing with Chrome [trace_event] export.

    Spans are recorded as complete ("ph":"X") events with microsecond
    wall-clock timestamps; the JSON produced by [to_json] loads directly in
    Perfetto / [about://tracing].  Recording is off by default and
    [with_span] is then a single branch around the wrapped thunk — flows
    built without [--trace] behave (and time) exactly as before.

    {b Domain safety.}  The on/off switch is global (atomic); the span
    stack and event buffer are per-domain, so workers record without
    contention.  A parallel driver wraps each job in {!collect} and
    replays the buffers on the caller with {!absorb}, giving one merged
    Chrome trace with [tid] = worker id (the caller's own events carry
    [tid = 1]). *)

type event = {
  ev_name : string;
  ev_ts_us : float;  (** absolute start, microseconds *)
  ev_dur_us : float;
  ev_depth : int;  (** nesting depth at the time the span opened (0 = root) *)
  ev_tid : int;  (** Chrome-trace thread id: 1 on the recording domain,
                     rewritten by {!absorb} for merged worker events *)
  ev_args : (string * string) list;
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val main_tid : int
(** The tid events carry on the recording domain (1); absorbed worker
    events are retagged above it. *)

val clear : unit -> unit
(** Drop all recorded events (recording state unchanged). *)

val now_us : unit -> float
(** Wall clock in microseconds since library load, the timebase of every
    event. *)

val epoch_unix_s : unit -> float
(** Absolute unix time of [ts_us = 0] in this process, used to normalize
    event timestamps recorded by another process onto the caller's
    timebase.  When [SMT_CLOCK] is set (the deterministic-test clock) it
    is returned verbatim, so every cooperating process reports the same
    epoch and cross-process shifts are exactly zero. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk; when enabled, record a span covering it.  The span is
    recorded (flagged [error=raised]) even if the thunk raises. *)

val complete :
  ?args:(string * string) list -> name:string -> ts_us:float -> dur_us:float -> unit -> unit
(** Record an explicit span, for phases delimited by marks rather than by
    lexical scope (e.g. flow stages measured between snapshots).  No-op
    when disabled. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record a zero-duration marker at the current time.  No-op when
    disabled. *)

val events : unit -> event list
(** Events recorded on the calling domain, in completion order. *)

val collect : (unit -> 'a) -> 'a * event list
(** [collect f] runs [f] with a fresh, empty event buffer and returns its
    result plus the events [f] recorded, in completion order.  The
    caller's own buffer is untouched and restored before returning (on
    exception too, discarding the scope's events with the re-raise). *)

val absorb : tid:int -> event list -> unit
(** Append events from a {!collect} scope to the calling domain's buffer,
    retagged with the worker's Chrome-trace thread id.  Absorbing job
    buffers in input order keeps the exported trace deterministic up to
    timestamps. *)

val event_json : event -> string
(** One Chrome [trace_event] object ("ph":"X"), the element format of
    [to_json]'s [traceEvents] array — also the wire format of telemetry
    sidecars. *)

val event_of_json : Obs_json.t -> (event, string) result
(** Parse an event emitted by {!event_json}.  [ev_depth] is not on the
    wire and comes back 0; non-string args are dropped. *)

val to_json : unit -> string
(** Chrome [trace_event] JSON: [{"traceEvents":[...],...}]. *)

val write : string -> unit
(** Write [to_json ()] to a file. *)
