(** Trend analysis over a run {!Ledger} (or a directory of snapshot
    files): per-workload, per-metric time series, best/worst/latest
    values, and regression detection across N points.

    Classification genuinely reuses {!Snapshot.compare}: every adjacent
    pair of records containing a workload is compared as two
    single-workload snapshots, so the Regression/Advisory rules (exact
    QoR and counter equality, ratio-with-floor advisory wall-clock) are
    defined in exactly one place.

    All output is deterministic given the records: workloads and fields
    sort lexicographically, points keep ledger time order, and nothing
    here reads a clock — so [runs trend --json] byte-compares across
    [--jobs] counts and repeated invocations. *)

type point = { p_time : float; p_id : string; p_value : float }

type status = Steady | Advisory | Regression

type series = {
  sr_workload : string;
  sr_field : string;
      (** ["qor.<field>"], ["counter.<name>"], or ["stage_ms.<stage>"] *)
  sr_points : point list;  (** ledger time order *)
  sr_status : status;
      (** worst classification over all adjacent-pair transitions *)
}

val status_name : status -> string

val of_snapshot_dir : string -> (Ledger.record list, string) result
(** Read every [*.json] snapshot in a directory (filename order) as a
    pseudo-ledger — one record per file, indexed synthetic timestamps —
    so [trend] also works on a directory of [BENCH_*.json] baselines. *)

val workload_names : ?filter:string -> Ledger.record list -> string list
(** Every workload name appearing in any record, sorted; [filter] keeps
    names containing the substring. *)

val analyze :
  ?metric:string ->
  ?workload:string ->
  ?qor_only:bool ->
  Ledger.record list ->
  series list
(** [metric]/[workload] filter by substring.  With no [metric] filter,
    [qor_only] (default [true]) restricts to [qor.*] fields; pass
    [~qor_only:false] for every counter and stage too. *)

val analyze_workload :
  ?metric:string -> ?qor_only:bool -> Ledger.record list -> string -> series list
(** The series of one exactly-named workload — [analyze] is the
    concatenation of this over the (filtered, sorted) workload names,
    which is also the unit a parallel driver can fan out per workload
    and re-concatenate in input order without changing the output. *)

val regressions :
  Ledger.record list -> (string * string * Snapshot.delta) list
(** Every Regression-severity delta across every adjacent record pair,
    as [(from_id, to_id, delta)]. *)

val has_regressions : Ledger.record list -> bool

val render : series list -> string
(** Text table: workload, metric, point count, first/latest/best/worst,
    status. *)

val to_json : series list -> string
val render_regressions : Ledger.record list -> string
