(** Append-only JSONL run ledger: a durable record of what ran, with
    what inputs, and what QoR came out.

    Each completed [smt_flow run] / [bench-snapshot] / [lint] invocation
    appends one schema-versioned line carrying provenance (tool version,
    circuit, technique, guard, job count, an argv hash, and an injected
    timestamp) plus the run's payload: per-workload QoR fields, work
    counters, per-stage wall-clock, and — when profiling was on — the
    per-stage GC attribution from {!Prof}.  The workload payload reuses
    {!Snapshot.workload} verbatim, so everything {!Snapshot.compare} can
    gate on, {!Trend} can chart over time.

    {b Concurrency.}  Appends serialize on an advisory lock over a
    sibling [<path>.lock] file (created atomically, removed on release)
    and issue the line as a single [write] to an [O_APPEND] descriptor,
    so parallel workers (and separate processes) can share a ledger
    without interleaving partial lines.  A lock orphaned by a holder that
    died without releasing it (SIGKILL mid-append) does not block the
    ledger forever: contenders break locks older than a staleness
    threshold — 10 s by default, [SMT_LOCK_STALE_MS] to override — with a
    logged warning.  Keep the threshold far above the longest plausible
    append (sub-millisecond) to make false breaks implausible.

    {b Robustness.}  [read] skips lines that do not parse — typically the
    truncated tail of a run that died mid-append — and reports how many
    it skipped; [gc] rewrites the file without them.

    {b Determinism.}  The caller injects the clock ([make ~time]); with a
    fixed time the id (a digest of the canonical payload) and the whole
    line are byte-reproducible, which is what the tests and the CI
    byte-compares rely on.  The CLI reads [SMT_CLOCK] (unix seconds) for
    the same purpose, via {!clock}. *)

val schema_version : int

type workload = {
  lw_workload : Snapshot.workload;
  lw_prof : (string * Prof.stats) list;
      (** stage name -> GC attribution; empty when profiling was off *)
}

type record = {
  r_version : int;
  r_id : string;  (** 12-hex digest of the canonical payload (sans id) *)
  r_time : float;  (** unix seconds, injected *)
  r_tool : string;  (** e.g. ["smt_flow 1.0.0"] *)
  r_kind : string;  (** ["run"] | ["bench"] | ["lint"] | ["campaign"] *)
  r_tag : string;  (** snapshot tag, or [""] *)
  r_circuit : string;  (** single-run circuit, or ["-"] for sweeps *)
  r_technique : string;
  r_guard : string;
  r_jobs : int;
  r_args_hash : string;  (** 12-hex digest of the invocation's argv *)
  r_workloads : workload list;
}

val default_path : unit -> string option
(** The [SMT_LEDGER] environment variable, if set. *)

val clock : unit -> float
(** [SMT_CLOCK] (unix seconds, for deterministic tests and CI) if set and
    parseable, else [Unix.gettimeofday ()]. *)

val make :
  ?time:float ->
  ?tool:string ->
  ?tag:string ->
  ?circuit:string ->
  ?technique:string ->
  ?guard:string ->
  ?jobs:int ->
  ?args:string list ->
  kind:string ->
  workload list ->
  record
(** Assemble a record; [time] defaults to {!clock}[ ()], the id and
    args-hash are computed here. *)

val to_json : record -> string
(** One canonical JSON line (no trailing newline). *)

val of_json : Obs_json.t -> (record, string) result
val of_line : string -> (record, string) result

val append : string -> record -> unit
(** Lock-guarded single-write append of [to_json r ^ "\n"]. *)

type read_result = {
  records : record list;  (** file order *)
  skipped : int;  (** malformed / truncated lines tolerated *)
}

val read : string -> (read_result, string) result
val find : string -> string -> (record, string) result
(** [find path id] — the first record whose [r_id] matches. *)

type gc_result = { kept : int; dropped_malformed : int; dropped_old : int }

val gc : ?keep:int -> string -> (gc_result, string) result
(** Rewrite the ledger in place (under the append lock): malformed lines
    are dropped; with [keep], only the newest [keep] records (by file
    order) survive. *)
