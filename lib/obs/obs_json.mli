(** Dependency-free JSON emission and parsing.

    The emitters build JSON as strings — the right weight for this
    library's append-only documents (traces, metric dumps, QoR snapshots).
    The parser is a small recursive-descent reader for the documents the
    emitters produce (and any other well-formed JSON): [Snapshot] uses it
    to load committed baselines, tests use it to validate exports.

    Emission conventions: [num] prints a compact [%.6g] (display
    precision) and maps non-finite floats to [null]; [num_exact] prints
    the shortest representation that round-trips the double, for values
    that must compare exactly after a file round-trip. *)

(** {1 Emission} *)

val escape : string -> string
(** Backslash-escape for inclusion inside a JSON string literal. *)

val str : string -> string
(** A quoted, escaped JSON string literal. *)

val num : float -> string
(** Compact display-precision number; [null] when not finite. *)

val num_exact : float -> string
(** Round-trip-exact number ([%.17g], shortened when lossless); [null]
    when not finite.  Use for values a later run must compare equal. *)

val boolean : bool -> string

val obj : (string * string) list -> string
(** [obj [(k, v); ...]] where each [v] is already-rendered JSON. *)

val arr : string list -> string
(** [arr items] where each item is already-rendered JSON. *)

val to_file : string -> string -> unit
(** [to_file path contents] writes the string atomically enough for this
    library's single-writer dumps (plain create/write/close). *)

(** {1 Parsing} *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. *)

val parse_exn : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on other constructors. *)

val to_num : t -> float option
(** [Num f] gives [f]; [Null] gives [nan] (the emitters' encoding of
    non-finite values); anything else gives [None]. *)

val to_str : t -> string option

val of_file : string -> (t, string) result
(** Read and parse a file; I/O errors come back as [Error]. *)
