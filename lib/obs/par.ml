let map ~jobs f xs =
  if jobs <= 1 || List.length xs < 2 then List.map f xs
  else begin
    let packed =
      Smt_util.Pool.map ~jobs
        (fun x ->
          let ((y, mcol), tev), pcol =
            Prof.collect (fun () ->
                Trace.collect (fun () -> Metrics.collect (fun () -> f x)))
          in
          (y, mcol, tev, pcol))
        xs
    in
    (* Merge in input order: additive instruments are order-independent,
       gauges become last-write-wins exactly as in a sequential run.
       Prof merges after Metrics so the re-published prof gauges reflect
       the accumulated totals, not the last job's slice. *)
    List.mapi
      (fun idx (y, mcol, tev, pcol) ->
        Metrics.merge mcol;
        Trace.absorb ~tid:(2 + idx) tev;
        Prof.merge pcol;
        y)
      packed
  end
