type event = {
  ev_name : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_args : (string * string) list;
}

let recording = ref false
let depth = ref 0
let recorded : event list ref = ref []  (* newest first *)

let enable () = recording := true
let disable () = recording := false
let enabled () = !recording
let clear () = recorded := []

(* Timestamps are relative to library load: small enough that fixed-point
   printing keeps full microsecond precision in the exported JSON. *)
let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

let record ev = recorded := ev :: !recorded

let complete ?(args = []) ~name ~ts_us ~dur_us () =
  if !recording then
    record
      { ev_name = name; ev_ts_us = ts_us; ev_dur_us = dur_us; ev_depth = !depth; ev_args = args }

let instant ?(args = []) name =
  if !recording then
    record
      { ev_name = name; ev_ts_us = now_us (); ev_dur_us = 0.0; ev_depth = !depth; ev_args = args }

let with_span ?(args = []) name f =
  if not !recording then f ()
  else begin
    let t0 = now_us () in
    let d0 = !depth in
    depth := d0 + 1;
    let raised = ref true in
    Fun.protect
      ~finally:(fun () ->
        depth := d0;
        let t1 = now_us () in
        let args = if !raised then ("error", "raised") :: args else args in
        record
          { ev_name = name; ev_ts_us = t0; ev_dur_us = t1 -. t0; ev_depth = d0; ev_args = args })
      (fun () ->
        let r = f () in
        raised := false;
        r)
  end

let events () = List.rev !recorded

let event_json ev =
  let base =
    [
      ("name", Obs_json.str ev.ev_name);
      ("cat", Obs_json.str "smt");
      ("ph", Obs_json.str "X");
      ("ts", Printf.sprintf "%.3f" ev.ev_ts_us);
      ("dur", Printf.sprintf "%.3f" ev.ev_dur_us);
      ("pid", "1");
      ("tid", "1");
    ]
  in
  let args =
    match ev.ev_args with
    | [] -> []
    | kv -> [ ("args", Obs_json.obj (List.map (fun (k, v) -> (k, Obs_json.str v)) kv)) ]
  in
  Obs_json.obj (base @ args)

let to_json () =
  Obs_json.obj
    [
      ("traceEvents", Obs_json.arr (List.map event_json (events ())));
      ("displayTimeUnit", Obs_json.str "ms");
    ]

let write path = Obs_json.to_file path (to_json ())
