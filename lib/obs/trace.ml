type event = {
  ev_name : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_depth : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

(* The recording switch is global (one [--trace] flag governs every
   domain); the span stack and event buffer are per-domain so concurrent
   workers never race.  Worker buffers come back to the caller through
   [collect]/[absorb], which retags them with the worker's tid so the
   merged Chrome trace shows one row per worker. *)

let recording = Atomic.make false

type state = { mutable depth : int; mutable recorded : event list (* newest first *) }

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { depth = 0; recorded = [] })

let state () = Domain.DLS.get state_key

let enable () = Atomic.set recording true
let disable () = Atomic.set recording false
let enabled () = Atomic.get recording
let clear () = (state ()).recorded <- []

let main_tid = 1

(* Timestamps are relative to library load: small enough that fixed-point
   printing keeps full microsecond precision in the exported JSON. *)
let epoch = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. epoch) *. 1e6

(* Cross-process normalization needs the absolute time of ts_us = 0.  Under
   SMT_CLOCK (the deterministic-test clock, same convention as
   Ledger.clock) every process reports the same pinned epoch, so sidecar
   shifts collapse to zero and merged traces are reproducible. *)
let epoch_unix_s () =
  match Sys.getenv_opt "SMT_CLOCK" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some t -> t
    | None -> epoch)
  | None -> epoch

let record st ev = st.recorded <- ev :: st.recorded

let complete ?(args = []) ~name ~ts_us ~dur_us () =
  if Atomic.get recording then begin
    let st = state () in
    record st
      {
        ev_name = name;
        ev_ts_us = ts_us;
        ev_dur_us = dur_us;
        ev_depth = st.depth;
        ev_tid = main_tid;
        ev_args = args;
      }
  end

let instant ?(args = []) name =
  if Atomic.get recording then begin
    let st = state () in
    record st
      {
        ev_name = name;
        ev_ts_us = now_us ();
        ev_dur_us = 0.0;
        ev_depth = st.depth;
        ev_tid = main_tid;
        ev_args = args;
      }
  end

let with_span ?(args = []) name f =
  if not (Atomic.get recording) then f ()
  else begin
    let st = state () in
    let t0 = now_us () in
    let d0 = st.depth in
    st.depth <- d0 + 1;
    let raised = ref true in
    Fun.protect
      ~finally:(fun () ->
        st.depth <- d0;
        let t1 = now_us () in
        let args = if !raised then ("error", "raised") :: args else args in
        record st
          {
            ev_name = name;
            ev_ts_us = t0;
            ev_dur_us = t1 -. t0;
            ev_depth = d0;
            ev_tid = main_tid;
            ev_args = args;
          })
      (fun () ->
        let r = f () in
        raised := false;
        r)
  end

let events () = List.rev (state ()).recorded

let collect f =
  let saved = Domain.DLS.get state_key in
  let fresh = { depth = 0; recorded = [] } in
  Domain.DLS.set state_key fresh;
  match f () with
  | y ->
    Domain.DLS.set state_key saved;
    (y, List.rev fresh.recorded)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    Domain.DLS.set state_key saved;
    Printexc.raise_with_backtrace e bt

let absorb ~tid evs =
  let st = state () in
  st.recorded <- List.rev_append (List.map (fun ev -> { ev with ev_tid = tid }) evs) st.recorded

let event_json ev =
  let base =
    [
      ("name", Obs_json.str ev.ev_name);
      ("cat", Obs_json.str "smt");
      ("ph", Obs_json.str "X");
      ("ts", Printf.sprintf "%.3f" ev.ev_ts_us);
      ("dur", Printf.sprintf "%.3f" ev.ev_dur_us);
      ("pid", "1");
      ("tid", string_of_int ev.ev_tid);
    ]
  in
  let args =
    match ev.ev_args with
    | [] -> []
    | kv -> [ ("args", Obs_json.obj (List.map (fun (k, v) -> (k, Obs_json.str v)) kv)) ]
  in
  Obs_json.obj (base @ args)

let event_of_json doc =
  let num n = Option.bind (Obs_json.member n doc) Obs_json.to_num in
  let str n = Option.bind (Obs_json.member n doc) Obs_json.to_str in
  match (str "name", num "ts", num "dur") with
  | Some name, Some ts, Some dur ->
    let tid = match num "tid" with Some t -> int_of_float t | None -> main_tid in
    let args =
      match Obs_json.member "args" doc with
      | Some (Obs_json.Obj kv) ->
        List.filter_map (fun (k, v) -> Option.map (fun s -> (k, s)) (Obs_json.to_str v)) kv
      | _ -> []
    in
    Ok
      {
        ev_name = name;
        ev_ts_us = ts;
        ev_dur_us = dur;
        ev_depth = 0;
        ev_tid = tid;
        ev_args = args;
      }
  | _ -> Error "trace: event missing name/ts/dur"

let to_json () =
  Obs_json.obj
    [
      ("traceEvents", Obs_json.arr (List.map event_json (events ())));
      ("displayTimeUnit", Obs_json.str "ms");
    ]

let write path = Obs_json.to_file path (to_json ())
