module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Geom = Smt_util.Geom
module Rng = Smt_util.Rng
module Library = Smt_cell.Library
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Log = Smt_obs.Log

let m_runs = Metrics.counter "place.runs"
let m_iterations = Metrics.counter "place.iterations"
let m_moves = Metrics.counter "place.moves"

type t = {
  nl : Netlist.t;
  die : Geom.bbox;
  rows : int;
  row_height : float;
  coords : (Netlist.inst_id, Geom.point) Hashtbl.t;
  ports : (string, Geom.point) Hashtbl.t;
}

let netlist t = t.nl
let die t = t.die
let row_count t = t.rows

let inst_point t iid =
  match Hashtbl.find_opt t.coords iid with
  | Some p -> p
  | None -> raise Not_found

let inst_point_opt t iid = Hashtbl.find_opt t.coords iid

let clamp_into die (p : Geom.point) =
  {
    Geom.x = Geom.clamp p.Geom.x ~lo:die.Geom.lx ~hi:die.Geom.hx;
    Geom.y = Geom.clamp p.Geom.y ~lo:die.Geom.ly ~hi:die.Geom.hy;
  }

let place_inst t iid p = Hashtbl.replace t.coords iid (clamp_into t.die p)

let port_point t name = Hashtbl.find_opt t.ports name

let pin_points t nid =
  let nl = t.nl in
  let of_inst iid = Hashtbl.find_opt t.coords iid in
  let driver = match Netlist.driver nl nid with
    | Some p -> (match of_inst p.Netlist.inst with Some pt -> [ pt ] | None -> [])
    | None -> []
  in
  let sinks =
    List.filter_map (fun (p : Netlist.pin) -> of_inst p.Netlist.inst) (Netlist.sinks nl nid)
  in
  let holder =
    match Netlist.holder_of nl nid with
    | Some h -> (match of_inst h with Some pt -> [ pt ] | None -> [])
    | None -> []
  in
  let pads =
    let name = Netlist.net_name nl nid in
    if Netlist.is_pi nl nid || Netlist.is_po nl nid then
      match Hashtbl.find_opt t.ports name with Some p -> [ p ] | None -> []
    else []
  in
  driver @ sinks @ holder @ pads

let net_hpwl t nid =
  match pin_points t nid with
  | [] | [ _ ] -> 0.0
  | pts -> Geom.hpwl (Geom.bbox_of_points pts)

let total_hpwl t =
  let acc = ref 0.0 in
  Netlist.iter_nets t.nl (fun nid -> acc := !acc +. net_hpwl t nid);
  !acc

let centroid t insts =
  match insts with
  | [] -> Geom.center t.die
  | _ ->
    let n = float_of_int (List.length insts) in
    let sx, sy =
      List.fold_left
        (fun (sx, sy) iid ->
          match Hashtbl.find_opt t.coords iid with
          | Some p -> (sx +. p.Geom.x, sy +. p.Geom.y)
          | None -> (sx, sy))
        (0.0, 0.0) insts
    in
    { Geom.x = sx /. n; Geom.y = sy /. n }

let to_string t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "DIE %.4f %.4f %.4f %.4f ROWS %d\n" t.die.Geom.lx t.die.Geom.ly
       t.die.Geom.hx t.die.Geom.hy t.rows);
  Hashtbl.iter
    (fun name (p : Geom.point) ->
      Buffer.add_string b (Printf.sprintf "PORT %s %.4f %.4f\n" name p.Geom.x p.Geom.y))
    t.ports;
  Netlist.iter_insts t.nl (fun iid ->
      match Hashtbl.find_opt t.coords iid with
      | Some p ->
        Buffer.add_string b
          (Printf.sprintf "INST %s %.4f %.4f\n" (Netlist.inst_name t.nl iid) p.Geom.x p.Geom.y)
      | None -> ());
  Buffer.contents b

let of_string nl text =
  let lines = String.split_on_char '\n' text in
  let die = ref None and rows = ref 0 in
  let ports = Hashtbl.create 97 and coords = Hashtbl.create 997 in
  let bad line = failwith (Printf.sprintf "Placement.of_string: bad line %S" line) in
  let f s line = match float_of_string_opt s with Some v -> v | None -> bad line in
  List.iter
    (fun line ->
      match String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "") with
      | [] -> ()
      | [ "DIE"; lx; ly; hx; hy; "ROWS"; r ] ->
        die := Some { Geom.lx = f lx line; ly = f ly line; hx = f hx line; hy = f hy line };
        rows := (match int_of_string_opt r with Some v -> v | None -> bad line)
      | [ "PORT"; name; x; y ] ->
        Hashtbl.replace ports name { Geom.x = f x line; Geom.y = f y line }
      | [ "INST"; name; x; y ] -> (
        match Netlist.find_inst nl name with
        | Some iid -> Hashtbl.replace coords iid { Geom.x = f x line; Geom.y = f y line }
        | None -> failwith (Printf.sprintf "Placement.of_string: unknown instance %s" name))
      | _ -> bad line)
    lines;
  match !die with
  | None -> failwith "Placement.of_string: missing DIE header"
  | Some die ->
    let tech = Library.tech (Netlist.lib nl) in
    { nl; die; rows = max 1 !rows; row_height = tech.Smt_cell.Tech.row_height; coords; ports }

(* Longest-path logic level per instance; flip-flops level 0. *)
let levels nl =
  let order = Netlist.topo_order nl in
  let n = Netlist.inst_count nl in
  let level = Array.make n 0 in
  List.iter
    (fun iid ->
      let deep =
        List.fold_left (fun acc pred -> max acc (level.(pred) + 1)) 0 (Netlist.fanin_insts nl iid)
      in
      level.(iid) <- deep)
    order;
  level

let legalize t order_hint =
  (* Bucket cells into rows, spill overfull rows into their neighbours (so
     no row exceeds the die width), then pack each row left-to-right. *)
  let rows = Array.make t.rows [] in
  let cell_width iid = (Netlist.cell t.nl iid).Cell.area /. t.row_height in
  List.iter
    (fun iid ->
      match Hashtbl.find_opt t.coords iid with
      | None -> ()
      | Some p ->
        let row =
          int_of_float ((p.Geom.y -. t.die.Geom.ly) /. t.row_height)
          |> max 0 |> min (t.rows - 1)
        in
        rows.(row) <- (iid, p.Geom.x) :: rows.(row))
    order_hint;
  let capacity = Geom.width t.die in
  (* Global repack: walk the cells in (row, x) order and refill the rows
     sequentially, never exceeding the row capacity.  Total cell width is at
     most utilization * rows * capacity, so the greedy fill always fits (the
     last row absorbs any remainder). *)
  let ordered =
    Array.to_list rows
    |> List.concat_map (fun members ->
           List.sort (fun (_, x1) (_, x2) -> compare x1 x2) members)
  in
  let repacked = Array.make t.rows [] in
  let row = ref 0 in
  let used = ref 0.0 in
  List.iter
    (fun (iid, x) ->
      let w = cell_width iid in
      if !used +. w > capacity && !row < t.rows - 1 && repacked.(!row) <> [] then begin
        incr row;
        used := 0.0
      end;
      repacked.(!row) <- (iid, x) :: repacked.(!row);
      used := !used +. w)
    ordered;
  Array.iteri
    (fun r members ->
      let members = List.rev members in
      let y = t.die.Geom.ly +. ((float_of_int r +. 0.5) *. t.row_height) in
      let x = ref t.die.Geom.lx in
      List.iter
        (fun (iid, _) ->
          let w = cell_width iid in
          Hashtbl.replace t.coords iid { Geom.x = !x +. (w /. 2.0); Geom.y = y };
          x := !x +. w)
        members)
    repacked

let place ?(seed = 1) ?(utilization = 0.65) ?(iterations = 12) nl =
  Trace.with_span "Placement.place"
    ~args:[ ("design", Netlist.design_name nl); ("iterations", string_of_int iterations) ]
  @@ fun () ->
  Metrics.incr m_runs;
  let rng = Rng.create seed in
  let area = Netlist.total_area nl in
  let tech = Library.tech (Netlist.lib nl) in
  let row_height = tech.Smt_cell.Tech.row_height in
  let side = Float.max (4.0 *. row_height) (sqrt (area /. utilization)) in
  let rows = max 2 (int_of_float (side /. row_height)) in
  let die =
    { Geom.lx = 0.0; Geom.ly = 0.0; Geom.hx = side; Geom.hy = float_of_int rows *. row_height }
  in
  let t = { nl; die; rows; row_height; coords = Hashtbl.create 997; ports = Hashtbl.create 97 } in
  (* Ports on the west (inputs) and east (outputs) edges. *)
  let spread edge_x ports =
    let n = List.length ports in
    List.iteri
      (fun i (name, _) ->
        let y = die.Geom.ly +. ((float_of_int i +. 1.0) /. (float_of_int n +. 1.0) *. Geom.height die) in
        Hashtbl.replace t.ports name { Geom.x = edge_x; Geom.y })
      ports
  in
  spread die.Geom.lx (Netlist.inputs nl);
  spread die.Geom.hx (Netlist.outputs nl);
  (* Constructive placement: sweep by logic level, snake through rows. *)
  let level = levels nl in
  let insts = Netlist.live_insts nl in
  let keyed =
    List.map (fun iid -> (iid, (level.(iid), Rng.int rng 1000))) insts
    |> List.sort (fun (_, k1) (_, k2) -> compare k1 k2)
    |> List.map fst
  in
  let per_row = max 1 ((List.length keyed + rows - 1) / rows) in
  List.iteri
    (fun i iid ->
      let row = i / per_row in
      let pos = i mod per_row in
      let pos = if row mod 2 = 1 then per_row - 1 - pos else pos in
      let x =
        die.Geom.lx +. ((float_of_int pos +. 0.5) /. float_of_int per_row *. Geom.width die)
      in
      let y = die.Geom.ly +. ((float_of_int (row mod rows) +. 0.5) *. row_height) in
      Hashtbl.replace t.coords iid { Geom.x; Geom.y })
    keyed;
  (* Force-directed refinement: move every cell toward the centroid of its
     neighbours (connected instances and port pads), then legalize rows. *)
  let neighbours iid =
    let nets =
      List.filter_map
        (fun (pin, nid) ->
          (* the clock net connects everything; skip it *)
          if Netlist.is_clock_net nl nid then None else Some (pin, nid))
        (Netlist.conns nl iid)
    in
    List.concat_map
      (fun (_, nid) ->
        let pts = pin_points t nid in
        let self = Hashtbl.find_opt t.coords iid in
        match self with
        | None -> pts
        | Some p -> List.filter (fun q -> q <> p) pts)
      nets
  in
  let moved = ref 0 in
  for _pass = 1 to iterations do
    Metrics.incr m_iterations;
    List.iter
      (fun iid ->
        let pts = neighbours iid in
        match pts with
        | [] -> ()
        | _ ->
          let n = float_of_int (List.length pts) in
          let sx = List.fold_left (fun acc p -> acc +. p.Geom.x) 0.0 pts in
          let sy = List.fold_left (fun acc p -> acc +. p.Geom.y) 0.0 pts in
          let target = { Geom.x = sx /. n; Geom.y = sy /. n } in
          let cur = Hashtbl.find t.coords iid in
          let blended =
            { Geom.x = (cur.Geom.x +. target.Geom.x) /. 2.0;
              Geom.y = (cur.Geom.y +. target.Geom.y) /. 2.0 }
          in
          let next = clamp_into die blended in
          if next <> cur then incr moved;
          Hashtbl.replace t.coords iid next)
      keyed;
    legalize t keyed
  done;
  Metrics.incr ~by:!moved m_moves;
  if Log.enabled Log.Debug then
    Log.debug "place" "placed"
      ~fields:
        [
          ("design", Netlist.design_name nl);
          ("cells", string_of_int (List.length keyed));
          ("iterations", string_of_int iterations);
          ("moves", string_of_int !moved);
          ("hpwl", Printf.sprintf "%.1f" (total_hpwl t));
        ];
  t
