(** Switch-transistor structure construction — the back-end optimization the
    paper delegates to CoolPower(TM).

    MT-cells are grouped into clusters that each share one footer, subject
    to the paper's three constraints:
    - the VGND line of a cluster (rectilinear spanning tree over the
      members and the switch) must stay under the crosstalk length limit;
    - the number of cells per switch is capped (electromigration), as is
      the sustained current;
    - the footer is then sized so that the cluster's simultaneous-switching
      current keeps the VGND bounce under the designer's limit, wire
      resistance included.

    Clustering is geometric: cells are swept in placement order and packed
    greedily while all constraints remain satisfiable, then each cluster's
    switch is placed at the member centroid.  Activity-aware sizing
    ([diversity = true]) uses measured toggle rates for the cluster
    current; turning it off sizes every footer for the sum of member peak
    currents — the per-cell worst case conventional embedded MT-cells pay —
    which is the ablation showing where the improved style's area win
    comes from. *)

type params = {
  bounce_limit : float;  (** V *)
  length_limit : float;  (** um of VGND line per cluster *)
  cell_limit : int;
  current_limit : float;  (** uA sustained per switch *)
  sizing_margin : float;  (** fractional width reserve, default 0.10 *)
  diversity : bool;
  length_factor : float;
      (** scales computed VGND lengths (1.0 pre-route estimate; the
          post-route pass re-prices with the routing detour) *)
}

val default_params : Smt_cell.Tech.t -> params

type cluster = {
  switch : Smt_netlist.Netlist.inst_id;
  members : Smt_netlist.Netlist.inst_id list;
  width : float;
  wire_length : float;
  sim_current_ua : float;
  sustained_ua : float;
  bounce : float;
}

type result = {
  clusters : cluster list;
  total_switch_width : float;
  total_switch_area : float;
}

val required_width : Smt_cell.Tech.t -> params -> current_ua:float -> wire_length:float -> float option
(** Footer width achieving the bounce limit at this current over this VGND
    line; [None] when the wire alone already exceeds the budget (the
    cluster must shrink). *)

val vgnd_length :
  ?members:Smt_netlist.Netlist.inst_id list ->
  Smt_place.Placement.t ->
  Smt_netlist.Netlist.inst_id ->
  float
(** Current VGND spanning length of a switch's cluster (switch included).
    Scans the netlist for the members unless [members] is supplied. *)

val vgnd_lengths :
  Smt_place.Placement.t -> Smt_netlist.Netlist.inst_id -> float
(** Precomputed [vgnd_length] for every current switch in one netlist
    pass — the efficient [wire_length_of] callback for
    {!Smt_power.Bounce.analyze} / {!Smt_power.Wakeup.analyze}.  Switches
    added after the call fall back to the direct scan. *)

val refine :
  ?activity:Smt_sim.Activity.t ->
  ?load_of:(Smt_netlist.Netlist.inst_id -> float) ->
  ?params:params ->
  ?passes:int ->
  Smt_place.Placement.t ->
  result
(** Local improvement over an existing switch structure: consider moving
    each MT-cell to the geometrically nearest neighbouring cluster and
    accept the move when it reduces the sum of the two footers' required
    widths without violating any constraint; then re-size every footer and
    re-centre the switches.  Total switch width never increases.  Returns
    the refined structure summary. *)

val build :
  ?activity:Smt_sim.Activity.t ->
  ?load_of:(Smt_netlist.Netlist.inst_id -> float) ->
  ?params:params ->
  ?dissolve:bool ->
  ?cells:Smt_netlist.Netlist.inst_id list ->
  Smt_place.Placement.t ->
  mte_net:Smt_netlist.Netlist.net_id ->
  result
(** Dissolves any existing switch structure (e.g. the single initial
    switch) unless [dissolve:false], builds clusters over the given
    [cells] (default: every VGND-style MT-cell), creates and places one
    sized footer per cluster on the MTE net. Raises [Invalid_argument]
    when a single cell cannot satisfy the constraints. The multi-domain
    extension calls this once per domain with [dissolve:false] and that
    domain's cell list and enable net. *)
