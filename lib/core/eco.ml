module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Library = Smt_cell.Library
module Sta = Smt_sta.Sta
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Log = Smt_obs.Log

let m_iterations = Metrics.counter "eco.hold_iterations"
let m_buffers = Metrics.counter "eco.hold_buffers_added"
let m_upsized = Metrics.counter "eco.setup_cells_upsized"

type result = {
  buffers_added : int;
  iterations : int;
  hold_before : float;
  hold_after : float;
  setup_after : float;
}

let fix_hold ?(max_iterations = 10) cfg place =
  Trace.with_span "Eco.fix_hold" @@ fun () ->
  let nl = Placement.netlist place in
  let lib = Netlist.lib nl in
  let buf_cell = Library.hold_buffer lib in
  let sta = ref (Sta.analyze cfg nl) in
  let hold_before = Sta.worst_hold_slack !sta in
  let added = ref 0 in
  let iterations = ref 0 in
  let progress = ref true in
  (* A delay buffer slows the same path for setup as it pads for hold: only
     insert where the endpoint's setup slack affords it (with margin). *)
  let setup_guard = 5.0 in
  while (not (Sta.meets_hold !sta)) && !iterations < max_iterations && !progress do
    incr iterations;
    let before = Sta.worst_hold_slack !sta in
    let violating =
      List.filter_map
        (fun (ep : Sta.endpoint) ->
          match ep.Sta.kind with
          | Sta.Ff_data ff when ep.Sta.hold_slack < 0.0 ->
            let buf_delay =
              Smt_cell.Cell.delay buf_cell
                ~load_ff:(Netlist.cell nl ff).Smt_cell.Cell.input_cap
            in
            if ep.Sta.slack >= buf_delay +. setup_guard then Some (ff, ep.Sta.net)
            else None (* padding here would break setup: leave for skew rework *)
          | Sta.Ff_data _ | Sta.Primary_output _ -> None)
        (Sta.endpoints !sta)
    in
    List.iter
      (fun (ff, d_net) ->
        let new_net = Netlist.fresh_net nl "eco" in
        let name = Netlist.fresh_inst_name nl "ecobuf" in
        let pin = { Netlist.inst = ff; Netlist.pin_name = "D" } in
        Netlist.move_sink nl ~from_net:d_net pin ~to_net:new_net;
        let buf = Netlist.add_inst nl ~name buf_cell [ ("A", d_net); ("Z", new_net) ] in
        (match Placement.inst_point_opt place ff with
        | Some p -> Placement.place_inst place buf p
        | None -> ());
        incr added)
      violating;
    sta := Sta.analyze cfg nl;
    progress := violating <> [] && Sta.worst_hold_slack !sta > before +. 1e-9
  done;
  Metrics.incr ~by:!iterations m_iterations;
  Metrics.incr ~by:!added m_buffers;
  if Log.enabled Log.Info then
    Log.info "eco" "hold-fix ECO"
      ~fields:
        [
          ("design", Netlist.design_name nl);
          ("iterations", string_of_int !iterations);
          ("buffers_added", string_of_int !added);
          ("hold_before", Printf.sprintf "%.1f" hold_before);
          ("hold_after", Printf.sprintf "%.1f" (Sta.worst_hold_slack !sta));
        ];
  {
    buffers_added = !added;
    iterations = !iterations;
    hold_before;
    hold_after = Sta.worst_hold_slack !sta;
    setup_after = Sta.wns !sta;
  }

type setup_result = {
  upsized : int;
  wns_before : float;
  wns_after : float;
}

let fix_setup cfg nl =
  let before = Sta.wns (Sta.analyze cfg nl) in
  if before >= 0.0 then { upsized = 0; wns_before = before; wns_after = before }
  else begin
    let r = Gate_sizing.upsize_critical cfg nl in
    Metrics.incr ~by:r.Gate_sizing.resized m_upsized;
    {
      upsized = r.Gate_sizing.resized;
      wns_before = before;
      wns_after = Sta.wns r.Gate_sizing.sta;
    }
  end
