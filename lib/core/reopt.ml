module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Library = Smt_cell.Library
module Bounce = Smt_power.Bounce
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Log = Smt_obs.Log

let m_runs = Metrics.counter "reopt.runs"
let m_resized = Metrics.counter "reopt.switches_resized"
let m_repaired = Metrics.counter "reopt.violations_repaired"

type adjustment = {
  switch : Netlist.inst_id;
  old_width : float;
  new_width : float;
  routed_length : float;
  bounce_before : float;
  bounce_after : float;
}

type result = {
  adjustments : adjustment list;
  resized : int;
  violations_before : int;
  violations_after : int;
}

let reoptimize ?activity ?load_of ?params ?(detour = 1.15) ?length_of place =
  Trace.with_span "Reopt.reoptimize" @@ fun () ->
  Metrics.incr m_runs;
  let nl = Placement.netlist place in
  let lib = Netlist.lib nl in
  let tech = Library.tech lib in
  let p = match params with Some p -> p | None -> Cluster.default_params tech in
  let adjustments =
    List.map
      (fun (sw, members) ->
        let routed_length =
          match length_of with
          | Some f -> f sw
          | None -> Cluster.vgnd_length ~members place sw *. detour
        in
        let current =
          if p.Cluster.diversity then Bounce.simultaneous_current ?activity ?load_of nl ~members
          else
            List.fold_left
              (fun acc iid -> acc +. (Netlist.cell nl iid).Cell.peak_current)
              0.0 members
        in
        let old_width = (Netlist.cell nl sw).Cell.switch_width in
        let bounce_before =
          Bounce.bounce_v tech ~switch_width:old_width ~wire_length:routed_length
            ~current_ua:current
        in
        let new_width =
          match Cluster.required_width tech p ~current_ua:current ~wire_length:routed_length with
          | Some w -> w
          | None -> old_width (* wire alone blows the budget; keep and report *)
        in
        let quantized = (Library.switch lib ~width:new_width).Cell.switch_width in
        if Float.abs (quantized -. old_width) > 0.0 then
          Netlist.replace_cell nl sw (Library.switch lib ~width:new_width);
        let final_width = (Netlist.cell nl sw).Cell.switch_width in
        let bounce_after =
          Bounce.bounce_v tech ~switch_width:final_width ~wire_length:routed_length
            ~current_ua:current
        in
        {
          switch = sw;
          old_width;
          new_width = final_width;
          routed_length;
          bounce_before;
          bounce_after;
        })
      (Netlist.switch_groups nl)
  in
  let count f = List.length (List.filter f adjustments) in
  let r =
    {
      adjustments;
      resized = count (fun a -> Float.abs (a.new_width -. a.old_width) > 1e-9);
      violations_before = count (fun a -> a.bounce_before > p.Cluster.bounce_limit +. 1e-12);
      violations_after = count (fun a -> a.bounce_after > p.Cluster.bounce_limit +. 1e-12);
    }
  in
  Metrics.incr ~by:r.resized m_resized;
  Metrics.incr ~by:(max 0 (r.violations_before - r.violations_after)) m_repaired;
  if Log.enabled Log.Info then
    Log.info "reopt" "post-route switch re-optimization"
      ~fields:
        [
          ("design", Netlist.design_name nl);
          ("switches", string_of_int (List.length adjustments));
          ("resized", string_of_int r.resized);
          ("violations_before", string_of_int r.violations_before);
          ("violations_after", string_of_int r.violations_after);
        ];
  r
