module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library
module Geom = Smt_util.Geom
module Bounce = Smt_power.Bounce
module Em = Smt_power.Em
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Log = Smt_obs.Log

let m_builds = Metrics.counter "cluster.builds"
let m_formed = Metrics.counter "cluster.clusters_formed"
let m_cells = Metrics.counter "cluster.cells_clustered"
let m_refine_moves = Metrics.counter "cluster.refine_moves"

type params = {
  bounce_limit : float;
  length_limit : float;
  cell_limit : int;
  current_limit : float;
  sizing_margin : float;
  diversity : bool;
  length_factor : float;
}

let default_params (tech : Tech.t) =
  {
    bounce_limit = tech.Tech.bounce_limit;
    length_limit = tech.Tech.vgnd_length_limit;
    cell_limit = tech.Tech.em_cell_limit;
    current_limit = tech.Tech.em_current_limit;
    sizing_margin = 0.10;
    diversity = true;
    length_factor = 1.0;
  }

type cluster = {
  switch : Netlist.inst_id;
  members : Netlist.inst_id list;
  width : float;
  wire_length : float;
  sim_current_ua : float;
  sustained_ua : float;
  bounce : float;
}

type result = {
  clusters : cluster list;
  total_switch_width : float;
  total_switch_area : float;
}

let required_width tech p ~current_ua ~wire_length =
  if current_ua <= 0.0 then Some 0.1
  else begin
    let amps = current_ua *. 1e-6 in
    let r_wire = Bounce.vgnd_wire_res tech ~length:wire_length in
    let budget = (p.bounce_limit /. amps) -. r_wire in
    if budget <= 0.0 then None
    else Some (tech.Tech.switch_r_width /. budget *. (1.0 +. p.sizing_margin))
  end

let member_points place members =
  List.filter_map (fun iid -> Placement.inst_point_opt place iid) members

let cluster_length ?switch_at place p members =
  let pts = member_points place members in
  let pts = match switch_at with Some at -> at :: pts | None -> pts in
  Geom.spanning_length pts *. p.length_factor

let vgnd_length ?members place sw =
  let nl = Placement.netlist place in
  let members =
    match members with Some m -> m | None -> Netlist.switch_members nl sw
  in
  let pts = member_points place members in
  let pts = match Placement.inst_point_opt place sw with Some at -> at :: pts | None -> pts in
  Geom.spanning_length pts

let vgnd_lengths place =
  (* One [switch_groups] pass instead of a members scan per switch; the
     returned function falls back to the direct computation for switches
     created after the table was built. *)
  let nl = Placement.netlist place in
  let tbl = Hashtbl.create 97 in
  List.iter
    (fun (sw, members) -> Hashtbl.replace tbl sw (vgnd_length ~members place sw))
    (Netlist.switch_groups nl);
  fun sw ->
    match Hashtbl.find_opt tbl sw with Some l -> l | None -> vgnd_length place sw

(* Simultaneous current of a would-be cluster under the sizing policy. *)
let sim_current ?activity ?load_of p nl members =
  if p.diversity then Bounce.simultaneous_current ?activity ?load_of nl ~members
  else
    List.fold_left (fun acc iid -> acc +. (Netlist.cell nl iid).Cell.peak_current) 0.0 members

let feasible ?activity ?load_of place p members =
  let nl = Placement.netlist place in
  let tech = Library.tech (Netlist.lib nl) in
  let n = List.length members in
  if n > p.cell_limit then false
  else begin
    let sustained = Bounce.sustained_current ?activity ?load_of nl ~members in
    if not (Em.cluster_ok { tech with Tech.em_cell_limit = p.cell_limit;
                            Tech.em_current_limit = p.current_limit }
              ~cells:n ~sustained_ua:sustained)
    then false
    else begin
      let centroid = Placement.centroid place members in
      let length = cluster_length ~switch_at:centroid place p members in
      if length > p.length_limit then false
      else
        let current = sim_current ?activity ?load_of p nl members in
        required_width tech p ~current_ua:current ~wire_length:length <> None
    end
  end

(* Placement-order sweep key: row index then serpentine x. *)
let sweep_order place members =
  let nl = Placement.netlist place in
  let tech = Library.tech (Netlist.lib nl) in
  let row_h = tech.Tech.row_height in
  let key iid =
    match Placement.inst_point_opt place iid with
    | Some p ->
      let row = int_of_float (p.Geom.y /. row_h) in
      let x = if row mod 2 = 0 then p.Geom.x else -.p.Geom.x in
      (row, x)
    | None -> (max_int, 0.0)
  in
  List.sort (fun a b -> compare (key a) (key b)) members

let build ?activity ?load_of ?params ?(dissolve = true) ?cells place ~mte_net =
  Trace.with_span "Cluster.build" @@ fun () ->
  Metrics.incr m_builds;
  let nl = Placement.netlist place in
  let lib = Netlist.lib nl in
  let tech = Library.tech lib in
  let p = match params with Some p -> p | None -> default_params tech in
  (* Dissolve the existing switch structure. *)
  if dissolve then
    List.iter
      (fun (sw, members) ->
        List.iter (fun m -> Netlist.set_vgnd_switch nl m None) members;
        Netlist.remove_inst nl sw)
      (Netlist.switch_groups nl);
  let cells =
    match cells with
    | Some l -> l
    | None ->
      Netlist.live_insts nl
      |> List.filter (fun iid -> (Netlist.cell nl iid).Cell.style = Vth.Mt_vgnd)
  in
  let ordered = sweep_order place cells in
  (* Greedy packing along the sweep. *)
  let groups = ref [] in
  let current = ref [] in
  let flush () =
    if !current <> [] then begin
      groups := List.rev !current :: !groups;
      current := []
    end
  in
  List.iter
    (fun iid ->
      let candidate = iid :: !current in
      if feasible ?activity ?load_of place p candidate then current := candidate
      else begin
        if !current = [] then
          invalid_arg
            (Printf.sprintf "Cluster.build: cell %s cannot satisfy constraints alone"
               (Netlist.inst_name nl iid));
        flush ();
        if feasible ?activity ?load_of place p [ iid ] then current := [ iid ]
        else
          invalid_arg
            (Printf.sprintf "Cluster.build: cell %s cannot satisfy constraints alone"
               (Netlist.inst_name nl iid))
      end)
    ordered;
  flush ();
  (* Materialize one sized switch per group. *)
  let clusters =
    List.map
      (fun members ->
        let centroid = Placement.centroid place members in
        let length = cluster_length ~switch_at:centroid place p members in
        let current = sim_current ?activity ?load_of p nl members in
        let sustained = Bounce.sustained_current ?activity ?load_of nl ~members in
        let width =
          match required_width tech p ~current_ua:current ~wire_length:length with
          | Some w -> w
          | None -> assert false (* feasible() checked *)
        in
        let sw_cell = Library.switch lib ~width in
        let name = Netlist.fresh_inst_name nl "sw" in
        let sw = Netlist.add_inst nl ~name sw_cell [ ("MTE", mte_net) ] in
        Placement.place_inst place sw centroid;
        List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) members;
        let bounce =
          Bounce.bounce_v tech ~switch_width:sw_cell.Cell.switch_width ~wire_length:length
            ~current_ua:current
        in
        {
          switch = sw;
          members;
          width = sw_cell.Cell.switch_width;
          wire_length = length;
          sim_current_ua = current;
          sustained_ua = sustained;
          bounce;
        })
      (List.rev !groups)
  in
  let total_width = List.fold_left (fun acc c -> acc +. c.width) 0.0 clusters in
  let total_area =
    List.fold_left (fun acc c -> acc +. Tech.switch_area tech ~width:c.width) 0.0 clusters
  in
  Metrics.incr ~by:(List.length clusters) m_formed;
  Metrics.incr ~by:(List.length ordered) m_cells;
  if Log.enabled Log.Info then
    Log.info "cluster" "built switch clusters"
      ~fields:
        [
          ("design", Netlist.design_name nl);
          ("cells", string_of_int (List.length ordered));
          ("clusters", string_of_int (List.length clusters));
          ("total_width", Printf.sprintf "%.1f" total_width);
        ];
  { clusters; total_switch_width = total_width; total_switch_area = total_area }

(* --- refinement --- *)

(* Required width of a member set at its own centroid, or None when the
   set violates a constraint. *)
let group_width ?activity ?load_of place p members =
  match members with
  | [] -> Some 0.0
  | _ ->
    if not (feasible ?activity ?load_of place p members) then None
    else begin
      let nl = Placement.netlist place in
      let tech = Library.tech (Netlist.lib nl) in
      let centroid = Placement.centroid place members in
      let length = cluster_length ~switch_at:centroid place p members in
      let current = sim_current ?activity ?load_of p nl members in
      required_width tech p ~current_ua:current ~wire_length:length
    end

let refine ?activity ?load_of ?params ?(passes = 2) place =
  let nl = Placement.netlist place in
  let lib = Netlist.lib nl in
  let tech = Library.tech lib in
  let p = match params with Some p -> p | None -> default_params tech in
  let membership = Hashtbl.create 97 in
  List.iter
    (fun (sw, members) -> Hashtbl.replace membership sw members)
    (Netlist.switch_groups nl);
  let switch_ids () = Hashtbl.fold (fun k _ acc -> k :: acc) membership [] in
  let centroid_of sw = Placement.centroid place (Hashtbl.find membership sw) in
  let width_of members = group_width ?activity ?load_of place p members in
  for _pass = 1 to passes do
    let ids = switch_ids () in
    List.iter
      (fun sw ->
        List.iter
          (fun cell ->
            (* still a member? (it may have moved this pass) *)
            let members = Hashtbl.find membership sw in
            if List.mem cell members && List.length members > 1 then begin
              match Placement.inst_point_opt place cell with
              | None -> ()
              | Some at -> (
                (* nearest other cluster *)
                let best = ref None in
                List.iter
                  (fun other ->
                    if other <> sw then begin
                      let d = Smt_util.Geom.manhattan at (centroid_of other) in
                      match !best with
                      | Some (_, bd) when bd <= d -> ()
                      | Some _ | None -> best := Some (other, d)
                    end)
                  ids;
                match !best with
                | None -> ()
                | Some (other, _) -> (
                  let from_now = List.filter (( <> ) cell) members in
                  let to_now = cell :: Hashtbl.find membership other in
                  match
                    ( width_of members, width_of (Hashtbl.find membership other),
                      width_of from_now, width_of to_now )
                  with
                  | Some w_from, Some w_to, Some w_from', Some w_to'
                    when w_from' +. w_to' < w_from +. w_to -. 1e-6 ->
                    Metrics.incr m_refine_moves;
                    Hashtbl.replace membership sw from_now;
                    Hashtbl.replace membership other to_now;
                    Netlist.set_vgnd_switch nl cell (Some other)
                  | _ -> ()))
            end)
          (Hashtbl.find membership sw))
      ids
  done;
  (* drop emptied clusters, re-size and re-centre the rest *)
  let clusters =
    Hashtbl.fold
      (fun sw members acc ->
        match members with
        | [] ->
          Netlist.remove_inst nl sw;
          acc
        | _ ->
          let centroid = Placement.centroid place members in
          Placement.place_inst place sw centroid;
          let length = cluster_length ~switch_at:centroid place p members in
          let current = sim_current ?activity ?load_of p nl members in
          let sustained = Bounce.sustained_current ?activity ?load_of nl ~members in
          let width =
            match required_width tech p ~current_ua:current ~wire_length:length with
            | Some w -> w
            | None -> (Netlist.cell nl sw).Cell.switch_width
          in
          Netlist.replace_cell nl sw (Library.switch lib ~width);
          let actual = (Netlist.cell nl sw).Cell.switch_width in
          let bounce =
            Bounce.bounce_v tech ~switch_width:actual ~wire_length:length ~current_ua:current
          in
          {
            switch = sw;
            members;
            width = actual;
            wire_length = length;
            sim_current_ua = current;
            sustained_ua = sustained;
            bounce;
          }
          :: acc)
      membership []
  in
  let total_width = List.fold_left (fun acc c -> acc +. c.width) 0.0 clusters in
  let total_area =
    List.fold_left (fun acc c -> acc +. Tech.switch_area tech ~width:c.width) 0.0 clusters
  in
  { clusters; total_switch_width = total_width; total_switch_area = total_area }
