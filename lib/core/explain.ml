module Netlist = Smt_netlist.Netlist
module Sta = Smt_sta.Sta
module Leakage = Smt_power.Leakage
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Text_table = Smt_util.Text_table
module J = Smt_obs.Obs_json

let vth_label (c : Cell.t) =
  match c.Cell.style with
  | Vth.Plain -> Vth.to_string c.Cell.vth
  | style -> Printf.sprintf "%s %s" (Vth.to_string c.Cell.vth) (Vth.style_to_string style)

let header (r : Flow.report) =
  Printf.sprintf "%s (%s), clock %.1f ps: wns %.2f ps, standby %.2f nW" r.Flow.circuit
    (Flow.technique_name r.Flow.technique)
    r.Flow.clock_period r.Flow.wns r.Flow.standby_nw

(* --- critical paths ---------------------------------------------------- *)

let arc_who_what nl (a : Sta.path_arc) =
  match a.Sta.arc_inst with
  | Some iid ->
    let c = Netlist.cell nl iid in
    (Netlist.inst_name nl iid, c.Cell.name, vth_label c)
  | None -> ("(launch)", "-", "-")

let paths ?(k = 5) (r : Flow.report) (art : Flow.artifacts) =
  let sta = art.Flow.art_sta in
  let nl = Sta.netlist sta in
  let b = Buffer.create 4096 in
  Buffer.add_string b (header r);
  Buffer.add_char b '\n';
  List.iter
    (fun (p : Sta.path) ->
      let ep = p.Sta.path_endpoint in
      Buffer.add_string b
        (Printf.sprintf "\npath to %s: arrival %.2f, required %.2f, slack %.2f %s\n"
           (Sta.endpoint_name sta ep) ep.Sta.arrival ep.Sta.required ep.Sta.slack
           (if ep.Sta.slack >= 0.0 then "(MET)" else "(VIOLATED)"));
      let body =
        List.map
          (fun (a : Sta.path_arc) ->
            let who, what, vth = arc_who_what nl a in
            [
              who; what; vth;
              Printf.sprintf "%.2f" a.Sta.arc_cell_delay;
              Printf.sprintf "%.2f" a.Sta.arc_wire_delay;
              Printf.sprintf "%.2f" a.Sta.arc_arrival;
            ])
          p.Sta.path_arcs
        @ [
            [
              "(capture)"; "-"; "-"; "0.00";
              Printf.sprintf "%.2f" p.Sta.path_capture_wire;
              Printf.sprintf "%.2f" ep.Sta.arrival;
            ];
          ]
      in
      Buffer.add_string b
        (Text_table.render
           ~header:[ "Instance"; "Cell"; "Vth"; "Cell ps"; "Wire ps"; "Arrival ps" ]
           body))
    (Sta.worst_paths sta k);
  Buffer.contents b

let arc_json nl (a : Sta.path_arc) =
  let who, what, vth = arc_who_what nl a in
  J.obj
    [
      ("instance", J.str who);
      ("cell", J.str what);
      ("vth", J.str vth);
      ("cell_ps", J.num a.Sta.arc_cell_delay);
      ("wire_ps", J.num a.Sta.arc_wire_delay);
      ("arrival_ps", J.num a.Sta.arc_arrival);
      ("slew_ps", J.num a.Sta.arc_slew);
    ]

let paths_json ?(k = 5) (r : Flow.report) (art : Flow.artifacts) =
  let sta = art.Flow.art_sta in
  let nl = Sta.netlist sta in
  let path_json (p : Sta.path) =
    let ep = p.Sta.path_endpoint in
    J.obj
      [
        ("endpoint", J.str (Sta.endpoint_name sta ep));
        ("arrival_ps", J.num ep.Sta.arrival);
        ("required_ps", J.num ep.Sta.required);
        ("slack_ps", J.num ep.Sta.slack);
        ("capture_wire_ps", J.num p.Sta.path_capture_wire);
        ("arcs", J.arr (List.map (arc_json nl) p.Sta.path_arcs));
      ]
  in
  J.obj
    [
      ("circuit", J.str r.Flow.circuit);
      ("technique", J.str (Flow.technique_name r.Flow.technique));
      ("clock_period_ps", J.num r.Flow.clock_period);
      ("wns_ps", J.num r.Flow.wns);
      ("paths", J.arr (List.map path_json (Sta.worst_paths sta k)));
    ]

(* --- leakage attribution ----------------------------------------------- *)

let share_rows shares =
  List.map
    (fun (s : Leakage.class_share) ->
      [
        s.Leakage.share_label;
        string_of_int s.Leakage.share_cells;
        Printf.sprintf "%.2f" s.Leakage.share_nw;
      ])
    shares

let waterfall (stages : Flow.stage list) =
  let prev = ref 0.0 in
  List.mapi
    (fun i (s : Flow.stage) ->
      let delta = if i = 0 then 0.0 else s.Flow.stage_standby_nw -. !prev in
      prev := s.Flow.stage_standby_nw;
      (s.Flow.stage_name, s.Flow.stage_standby_nw, delta))
    stages

let leakage (r : Flow.report) (art : Flow.artifacts) =
  let nl = Sta.netlist art.Flow.art_sta in
  let b = Buffer.create 4096 in
  Buffer.add_string b (header r);
  Buffer.add_string b "\n\nby threshold class:\n";
  Buffer.add_string b
    (Text_table.render ~header:[ "Class"; "Cells"; "nW" ] (share_rows (Leakage.by_vth nl)));
  Buffer.add_string b "\nby cell function:\n";
  Buffer.add_string b
    (Text_table.render ~header:[ "Function"; "Cells"; "nW" ]
       (share_rows (Leakage.by_function nl)));
  if r.Flow.stages <> [] then begin
    Buffer.add_string b "\nstage-by-stage waterfall:\n";
    Buffer.add_string b
      (Text_table.render ~header:[ "Stage"; "Standby nW"; "Delta nW" ]
         (List.map
            (fun (name, nw, delta) ->
              [ name; Printf.sprintf "%.2f" nw; Printf.sprintf "%+.2f" delta ])
            (waterfall r.Flow.stages)))
  end;
  Buffer.contents b

let share_json (s : Leakage.class_share) =
  J.obj
    [
      ("label", J.str s.Leakage.share_label);
      ("cells", string_of_int s.Leakage.share_cells);
      ("nw", J.num s.Leakage.share_nw);
    ]

let leakage_json (r : Flow.report) (art : Flow.artifacts) =
  let nl = Sta.netlist art.Flow.art_sta in
  J.obj
    [
      ("circuit", J.str r.Flow.circuit);
      ("technique", J.str (Flow.technique_name r.Flow.technique));
      ("standby_nw", J.num r.Flow.standby_nw);
      ("by_vth", J.arr (List.map share_json (Leakage.by_vth nl)));
      ("by_function", J.arr (List.map share_json (Leakage.by_function nl)));
      ( "waterfall",
        J.arr
          (List.map
             (fun (name, nw, delta) ->
               J.obj
                 [
                   ("stage", J.str name);
                   ("standby_nw", J.num nw);
                   ("delta_nw", J.num delta);
                 ])
             (waterfall r.Flow.stages)) );
    ]

(* --- cluster attribution ----------------------------------------------- *)

let cluster_attrs (art : Flow.artifacts) =
  let nl = Sta.netlist art.Flow.art_sta in
  Leakage.clusters ~cell_limit:art.Flow.art_params.Cluster.cell_limit
    ~bounce_limit:art.Flow.art_params.Cluster.bounce_limit nl
    ~bounce:art.Flow.art_bounce

let clusters (r : Flow.report) (art : Flow.artifacts) =
  let attrs = cluster_attrs art in
  let b = Buffer.create 4096 in
  Buffer.add_string b (header r);
  Buffer.add_string b
    (Printf.sprintf "\n%d clusters, total switch width %.2f um\n\n" (List.length attrs)
       r.Flow.total_switch_width);
  if attrs = [] then Buffer.add_string b "no sleep switches (nothing clustered)\n"
  else
    Buffer.add_string b
      (Text_table.render
         ~header:
           [
             "Switch"; "Cells"; "Occupancy"; "VGND um"; "Bounce V"; "Margin V";
             "Members nW"; "Switch nW";
           ]
         (List.map
            (fun (a : Leakage.cluster_attr) ->
              [
                a.Leakage.ca_switch_name;
                string_of_int a.Leakage.ca_members;
                Printf.sprintf "%d/%d" a.Leakage.ca_members a.Leakage.ca_cell_limit;
                Printf.sprintf "%.2f" a.Leakage.ca_vgnd_um;
                Printf.sprintf "%.4f" a.Leakage.ca_bounce_v;
                Printf.sprintf "%.4f" (a.Leakage.ca_bounce_limit -. a.Leakage.ca_bounce_v);
                Printf.sprintf "%.2f" a.Leakage.ca_members_nw;
                Printf.sprintf "%.2f" a.Leakage.ca_switch_nw;
              ])
            attrs));
  Buffer.contents b

let clusters_json (r : Flow.report) (art : Flow.artifacts) =
  let attrs = cluster_attrs art in
  J.obj
    [
      ("circuit", J.str r.Flow.circuit);
      ("technique", J.str (Flow.technique_name r.Flow.technique));
      ("clusters", string_of_int (List.length attrs));
      ("total_switch_width", J.num r.Flow.total_switch_width);
      ( "attribution",
        J.arr
          (List.map
             (fun (a : Leakage.cluster_attr) ->
               J.obj
                 [
                   ("switch", J.str a.Leakage.ca_switch_name);
                   ("members", string_of_int a.Leakage.ca_members);
                   ("cell_limit", string_of_int a.Leakage.ca_cell_limit);
                   ("vgnd_um", J.num a.Leakage.ca_vgnd_um);
                   ("bounce_v", J.num a.Leakage.ca_bounce_v);
                   ("bounce_limit_v", J.num a.Leakage.ca_bounce_limit);
                   ("members_nw", J.num a.Leakage.ca_members_nw);
                   ("switch_nw", J.num a.Leakage.ca_switch_nw);
                 ])
             attrs) );
    ]
