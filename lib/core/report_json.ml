module Leakage = Smt_power.Leakage

(* All JSON fragments come from the shared emitter, which also maps
   infinities to null — a [wns] of +inf (endpoint-free netlist) used to
   produce invalid JSON here. *)
let str = Smt_obs.Obs_json.str
let num = Smt_obs.Obs_json.num
let boolean = Smt_obs.Obs_json.boolean
let obj = Smt_obs.Obs_json.obj
let arr = Smt_obs.Obs_json.arr

let leakage_json (l : Leakage.breakdown) =
  obj
    [
      ("total", num l.Leakage.total);
      ("low_vth_logic", num l.Leakage.low_vth_logic);
      ("high_vth_logic", num l.Leakage.high_vth_logic);
      ("sequential", num l.Leakage.sequential);
      ("mt_residual", num l.Leakage.mt_residual);
      ("switches", num l.Leakage.switches);
      ("embedded_mt", num l.Leakage.embedded_mt);
      ("holders", num l.Leakage.holders);
      ("infrastructure", num l.Leakage.infrastructure);
    ]

let stage_json (s : Flow.stage) =
  (* The prof block appears only when profiling was on, so unprofiled
     reports stay byte-identical to earlier builds (same convention as the
     guard's check block below). *)
  let prof_fields =
    match s.Flow.stage_prof with
    | None -> []
    | Some p -> [ ("prof", Smt_obs.Prof.stats_json p) ]
  in
  obj
    ([
       ("name", str s.Flow.stage_name);
       ("area", num s.Flow.stage_area);
       ("standby_nw", num s.Flow.stage_standby_nw);
       ("wns_ps", num s.Flow.stage_wns);
       ("worst_bounce_v", num s.Flow.stage_worst_bounce);
       ("switches", string_of_int s.Flow.stage_switches);
       ("holders", string_of_int s.Flow.stage_holders);
       ("duration_ms", num s.Flow.stage_ms);
     ]
    @ prof_fields)

let of_report (r : Flow.report) =
  (* Guard results appear only when a guard actually recorded something, so
     guard-off output stays byte-identical to earlier builds. *)
  let check_fields =
    if
      r.Flow.diagnostics = [] && r.Flow.check_violations = 0
      && r.Flow.check_repairs = 0
      && not r.Flow.degraded
    then []
    else
      [
        ( "check",
          obj
            [
              ("violations", string_of_int r.Flow.check_violations);
              ("repairs", string_of_int r.Flow.check_repairs);
              ("degraded", boolean r.Flow.degraded);
              ("diagnostics", arr (List.map str r.Flow.diagnostics));
            ] );
      ]
  in
  obj
    ([
      ("technique", str (Flow.technique_name r.Flow.technique));
      ("circuit", str r.Flow.circuit);
      ("clock_period_ps", num r.Flow.clock_period);
      ("area_um2", num r.Flow.area);
      ("standby_nw", num r.Flow.standby_nw);
      ("leakage", leakage_json r.Flow.leakage);
      ("wns_ps", num r.Flow.wns);
      ("hold_slack_ps", num r.Flow.hold_slack);
      ("worst_bounce_v", num r.Flow.worst_bounce);
      ("bounce_violations", string_of_int r.Flow.bounce_violations);
      ("timing_met", boolean r.Flow.timing_met);
      ("hold_met", boolean r.Flow.hold_met);
      ("mt_cells", string_of_int r.Flow.n_mt_cells);
      ("switches", string_of_int r.Flow.n_switches);
      ("clusters", string_of_int r.Flow.n_clusters);
      ("holders", string_of_int r.Flow.n_holders);
      ("holders_avoided", string_of_int r.Flow.holders_avoided);
      ("mte_buffers", string_of_int r.Flow.n_mte_buffers);
      ("cts_buffers", string_of_int r.Flow.n_cts_buffers);
      ("hold_buffers", string_of_int r.Flow.n_hold_buffers);
      ("high_vth_swaps", string_of_int r.Flow.swapped_to_high_vth);
      ("cells_downsized", string_of_int r.Flow.cells_downsized);
      ("ffs_retained", string_of_int r.Flow.ffs_retained);
      ("reopt_resized", string_of_int r.Flow.reopt_resized);
      ("reopt_violations_repaired", string_of_int r.Flow.reopt_violations_repaired);
      ("mt_area_fraction", num r.Flow.mt_area_fraction);
      ("total_switch_width", num r.Flow.total_switch_width);
      ("stages", arr (List.map stage_json r.Flow.stages));
      (* the process-global counter registry at serialization time, so a
         paper-table run carries its own profile *)
      ("metrics", Smt_obs.Metrics.to_json ());
    ]
    @ check_fields)

let entry_json (e : Compare.entry) =
  obj
    [
      ("technique", str (Flow.technique_name e.Compare.technique));
      ("area_pct", num e.Compare.area_pct);
      ("leakage_pct", num e.Compare.leakage_pct);
      ("report", of_report e.Compare.report);
    ]

let of_rows rows =
  arr
    (List.map
       (fun (row : Compare.row) ->
         obj
           [
             ("circuit", str row.Compare.circuit);
             ("entries", arr (List.map entry_json row.Compare.entries));
           ])
       rows)
