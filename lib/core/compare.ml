module Text_table = Smt_util.Text_table

type entry = {
  technique : Flow.technique;
  report : Flow.report;
  area_pct : float;
  leakage_pct : float;
}

type row = {
  circuit : string;
  entries : entry list;
}

let table1_row ?options ?jobs fresh =
  let outcomes = Flow.run_all ?options ?jobs fresh in
  let reports = Flow.completed outcomes in
  let dual =
    match
      List.find_opt (fun (r : Flow.report) -> r.Flow.technique = Flow.Dual_vth) reports
    with
    | Some d -> d
    | None ->
      invalid_arg
        "Compare.table1_row: the Dual-Vth baseline flow failed, so there is nothing \
         to normalize against"
  in
  let base_area = dual.Flow.area and base_leak = dual.Flow.standby_nw in
  let entries =
    List.map
      (fun (r : Flow.report) ->
        {
          technique = r.Flow.technique;
          report = r;
          area_pct = 100.0 *. r.Flow.area /. base_area;
          leakage_pct = 100.0 *. r.Flow.standby_nw /. base_leak;
        })
      reports
  in
  { circuit = dual.Flow.circuit; entries }

let find_opt row technique =
  List.find_opt (fun e -> e.technique = technique) row.entries

let find row technique =
  List.find (fun e -> e.technique = technique) row.entries

let improvement row =
  let con = find row Flow.Conventional_smt and imp = find row Flow.Improved_smt in
  ( 1.0 -. (imp.report.Flow.area /. con.report.Flow.area),
    1.0 -. (imp.report.Flow.standby_nw /. con.report.Flow.standby_nw) )

let render rows =
  let header = [ "Circuit"; "Area/Leakage"; "Dual-Vth"; "Con.-SMT"; "Imp.-SMT" ] in
  let body =
    List.concat_map
      (fun row ->
        (* A failed technique renders as "fail" rather than sinking the row. *)
        let area t =
          match find_opt row t with Some e -> Text_table.pct e.area_pct | None -> "fail"
        in
        let leak t =
          match find_opt row t with
          | Some e -> Text_table.pct e.leakage_pct
          | None -> "fail"
        in
        [
          [
            row.circuit; "Area";
            area Flow.Dual_vth;
            area Flow.Conventional_smt;
            area Flow.Improved_smt;
          ];
          [
            ""; "Leakage";
            leak Flow.Dual_vth;
            leak Flow.Conventional_smt;
            leak Flow.Improved_smt;
          ];
        ])
      rows
  in
  Text_table.render
    ~aligns:[ Text_table.Left; Text_table.Left; Text_table.Right; Text_table.Right; Text_table.Right ]
    ~header body

let render_details rows =
  let header =
    [
      "Circuit"; "Technique"; "Area um^2"; "Standby nW"; "MT cells"; "MT frac";
      "Switches"; "Holders"; "MTE buf"; "WNS ps"; "Hold ps"; "Bounce V";
    ]
  in
  let body =
    List.concat_map
      (fun row ->
        List.map
          (fun e ->
            let r = e.report in
            [
              row.circuit;
              Flow.technique_name e.technique;
              Text_table.f2 r.Flow.area;
              Text_table.f2 r.Flow.standby_nw;
              string_of_int r.Flow.n_mt_cells;
              Text_table.f2 r.Flow.mt_area_fraction;
              string_of_int r.Flow.n_switches;
              string_of_int r.Flow.n_holders;
              string_of_int r.Flow.n_mte_buffers;
              Text_table.f2 r.Flow.wns;
              Text_table.f2 r.Flow.hold_slack;
              Printf.sprintf "%.4f" r.Flow.worst_bounce;
            ])
          row.entries)
      rows
  in
  Text_table.render ~header body
