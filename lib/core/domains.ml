module Netlist = Smt_netlist.Netlist
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Geom = Smt_util.Geom

type t = {
  nl : Netlist.t;
  mtes : Netlist.net_id array;
  groups : Netlist.inst_id list array;
  group_switches : Netlist.inst_id list array;
}

(* Geometric partition: k-means on cell positions with a few Lloyd
   iterations, seeded deterministically along the die diagonal. *)
let kmeans place cells k =
  let pts = List.map (fun iid -> (iid, Placement.inst_point place iid)) cells in
  let die = Placement.die place in
  let centers =
    Array.init k (fun i ->
        let f = (float_of_int i +. 0.5) /. float_of_int k in
        Geom.point
          (die.Geom.lx +. (f *. Geom.width die))
          (die.Geom.ly +. (f *. Geom.height die)))
  in
  let assign () =
    let groups = Array.make k [] in
    List.iter
      (fun (iid, p) ->
        let best = ref 0 in
        Array.iteri
          (fun i c -> if Geom.manhattan p c < Geom.manhattan p centers.(!best) then best := i)
          centers;
        groups.(!best) <- iid :: groups.(!best))
      pts;
    Array.map List.rev groups
  in
  let recenter groups =
    Array.iteri
      (fun i members ->
        match members with
        | [] -> ()
        | _ ->
          let n = float_of_int (List.length members) in
          let sx, sy =
            List.fold_left
              (fun (sx, sy) iid ->
                let p = Placement.inst_point place iid in
                (sx +. p.Geom.x, sy +. p.Geom.y))
              (0.0, 0.0) members
          in
          centers.(i) <- Geom.point (sx /. n) (sy /. n))
      groups
  in
  let groups = ref (assign ()) in
  for _ = 1 to 6 do
    recenter !groups;
    groups := assign ()
  done;
  !groups

let partition ?(domains = 2) ?activity ?params place =
  if domains < 1 then invalid_arg "Domains.partition: need at least one domain";
  let nl = Placement.netlist place in
  let cells =
    List.filter
      (fun iid -> (Netlist.cell nl iid).Cell.style = Vth.Mt_vgnd)
      (Netlist.live_insts nl)
  in
  if cells = [] then invalid_arg "Domains.partition: no MT-cells to partition";
  (* dissolve any existing structure once *)
  List.iter
    (fun (sw, members) ->
      List.iter (fun m -> Netlist.set_vgnd_switch nl m None) members;
      Netlist.remove_inst nl sw)
    (Netlist.switch_groups nl);
  let groups = kmeans place cells domains in
  let mtes =
    Array.init domains (fun i ->
        let name = Printf.sprintf "MTE%d" i in
        match Netlist.find_net nl name with
        | Some nid -> nid
        | None -> Netlist.add_input nl name)
  in
  let group_switches =
    Array.mapi
      (fun i members ->
        match members with
        | [] -> []
        | _ ->
          let before = Netlist.switches nl in
          let built =
            Cluster.build ?activity ?params ~dissolve:false ~cells:members place
              ~mte_net:mtes.(i)
          in
          ignore built;
          List.filter (fun sw -> not (List.mem sw before)) (Netlist.switches nl))
      groups
  in
  { nl; mtes; groups; group_switches }

let count t = Array.length t.mtes

let check_index t i =
  if i < 0 || i >= count t then invalid_arg "Domains: bad domain index"

let mte_net t i =
  check_index t i;
  t.mtes.(i)

let members t i =
  check_index t i;
  t.groups.(i)

let switches t i =
  check_index t i;
  t.group_switches.(i)

let domain_of t iid =
  let found = ref None in
  Array.iteri (fun i members -> if !found = None && List.mem iid members then found := Some i)
    t.groups;
  !found

let standby_leakage t ~asleep =
  let nl = t.nl in
  let asleep_domain iid =
    match domain_of t iid with Some d -> List.mem d asleep | None -> false
  in
  let total = ref 0.0 in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      let leak =
        match c.Cell.style with
        | Vth.Mt_vgnd | Vth.Mt_no_vgnd ->
          if asleep_domain iid then c.Cell.leak_standby else c.Cell.leak_active
        | Vth.Plain | Vth.Mt_embedded -> c.Cell.leak_standby
      in
      total := !total +. leak);
  !total
