(** Machine-readable (JSON) serialization of flow reports.

    For dashboards and regression tracking: one object per flow report
    (including per-stage metrics with wall-clock durations, the leakage
    breakdown, and a snapshot of the {!Smt_obs.Metrics} counter registry,
    making every serialized run self-profiling), or a Table-1 comparison
    as an array of rows.  Hand-rolled emitter, no dependencies; output is
    valid JSON. *)

val of_report : Flow.report -> string

val of_rows : Compare.row list -> string
(** The Table-1 comparison as JSON. *)
