module Netlist = Smt_netlist.Netlist
module Nl_stats = Smt_netlist.Nl_stats
module Sta = Smt_sta.Sta
module Leakage = Smt_power.Leakage
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Text_table = Smt_util.Text_table

let timing ?(paths = 3) sta =
  let nl = Sta.netlist sta in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf "Timing report: wns %.1f ps, tns %.1f ps, hold %.1f ps, %d endpoints\n"
       (Sta.wns sta) (Sta.tns sta) (Sta.worst_hold_slack sta)
       (List.length (Sta.endpoints sta)));
  List.iter
    (fun (p : Sta.path) ->
      let ep = p.Sta.path_endpoint in
      Buffer.add_string b
        (Printf.sprintf "\nendpoint %s: arrival %.1f, required %.1f, slack %.1f %s\n"
           (Sta.endpoint_name sta ep) ep.Sta.arrival ep.Sta.required ep.Sta.slack
           (if ep.Sta.slack >= 0.0 then "(MET)" else "(VIOLATED)"));
      let body =
        List.map
          (fun (a : Sta.path_arc) ->
            let who, what =
              match a.Sta.arc_inst with
              | Some iid -> (Netlist.inst_name nl iid, (Netlist.cell nl iid).Cell.name)
              | None -> ("(launch)", "-")
            in
            [
              who; what;
              Printf.sprintf "%.1f" a.Sta.arc_cell_delay;
              Printf.sprintf "%.1f" a.Sta.arc_wire_delay;
              Printf.sprintf "%.1f" a.Sta.arc_arrival;
            ])
          p.Sta.path_arcs
        @ [
            [
              "(capture)"; "-"; "0.0";
              Printf.sprintf "%.1f" p.Sta.path_capture_wire;
              Printf.sprintf "%.1f" ep.Sta.arrival;
            ];
          ]
      in
      Buffer.add_string b
        (Text_table.render
           ~header:[ "Instance"; "Cell"; "Cell ps"; "Wire ps"; "Arrival ps" ]
           body);
      Buffer.add_char b '\n')
    (Sta.worst_paths sta paths);
  Buffer.contents b

let power nl =
  let lk = Leakage.standby nl in
  let total = lk.Leakage.total in
  let pct v = if total = 0.0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. v /. total) in
  let rows =
    [
      ("low-Vth logic", lk.Leakage.low_vth_logic);
      ("high-Vth logic", lk.Leakage.high_vth_logic);
      ("flip-flops", lk.Leakage.sequential);
      ("MT-cell residual", lk.Leakage.mt_residual);
      ("sleep switches", lk.Leakage.switches);
      ("embedded MT-cells", lk.Leakage.embedded_mt);
      ("output holders", lk.Leakage.holders);
      ("clock/MTE/ECO buffers", lk.Leakage.infrastructure);
    ]
    |> List.filter (fun (_, v) -> v > 0.0)
    |> List.map (fun (name, v) -> [ name; Printf.sprintf "%.2f" v; pct v ])
  in
  Printf.sprintf "Standby leakage: %.2f nW total (active floor %.2f nW)\n%s" total
    (Leakage.active nl)
    (Text_table.render ~header:[ "Contributor"; "nW"; "Share" ] rows)

let area nl =
  let stats = Nl_stats.compute nl in
  let by_kind = Hashtbl.create 31 in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      let key = Func.to_string c.Cell.kind in
      let total, count =
        match Hashtbl.find_opt by_kind key with Some (t, n) -> (t, n) | None -> (0.0, 0)
      in
      Hashtbl.replace by_kind key (total +. c.Cell.area, count + 1));
  let kinds =
    Hashtbl.fold (fun k (a, n) acc -> (k, a, n) :: acc) by_kind []
    |> List.sort (fun (_, a1, _) (_, a2, _) -> compare a2 a1)
    |> List.filteri (fun i _ -> i < 8)
  in
  let category_rows =
    [
      [ "plain logic"; Printf.sprintf "%.1f" stats.Nl_stats.area_logic ];
      [ "MT-cells"; Printf.sprintf "%.1f" stats.Nl_stats.area_mt_cells ];
      [ "sleep switches"; Printf.sprintf "%.1f" stats.Nl_stats.area_switches ];
      [ "output holders"; Printf.sprintf "%.1f" stats.Nl_stats.area_holders ];
    ]
  in
  let kind_rows =
    List.map
      (fun (k, a, n) -> [ k; string_of_int n; Printf.sprintf "%.1f" a ])
      kinds
  in
  Printf.sprintf "Area: %.1f um^2 over %d instances (MT fraction %.2f)\n%s\n\ntop cell kinds:\n%s"
    stats.Nl_stats.area_total stats.Nl_stats.instances
    (Nl_stats.mt_area_fraction stats)
    (Text_table.render ~header:[ "Category"; "um^2" ] category_rows)
    (Text_table.render ~header:[ "Kind"; "Count"; "um^2" ] kind_rows)

let summary sta =
  Printf.sprintf
    "timing %s: wns %.1f ps, tns %.1f ps over %d endpoints; hold %s (worst %.1f ps)"
    (if Sta.meets_timing sta then "MET" else "VIOLATED")
    (Sta.wns sta) (Sta.tns sta)
    (List.length (Sta.endpoints sta))
    (if Sta.meets_hold sta then "MET" else "VIOLATED")
    (Sta.worst_hold_slack sta)
