module Suite = Smt_circuits.Suite
module Library = Smt_cell.Library
module Metrics = Smt_obs.Metrics
module Snapshot = Smt_obs.Snapshot

let technique_slug = function
  | Flow.Dual_vth -> "dual"
  | Flow.Conventional_smt -> "conventional"
  | Flow.Improved_smt -> "improved"

let default_workloads =
  List.concat_map
    (fun (cname, gen) ->
      List.map
        (fun t -> (Printf.sprintf "%s/%s" cname (technique_slug t), gen, t))
        [ Flow.Dual_vth; Flow.Conventional_smt; Flow.Improved_smt ])
    [ ("circuit_a", Suite.circuit_a); ("circuit_b", Suite.circuit_b) ]

let counter_delta ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let b = Option.value (List.assoc_opt name before) ~default:0 in
      if v <> b then Some (name, v - b) else None)
    after

let qor_of (r : Flow.report) =
  [
    ("area_um2", r.Flow.area);
    ("standby_nw", r.Flow.standby_nw);
    ("wns_ps", r.Flow.wns);
    ("clusters", float_of_int r.Flow.n_clusters);
    ("switches", float_of_int r.Flow.n_switches);
    ("holders", float_of_int r.Flow.n_holders);
    ("mt_cells", float_of_int r.Flow.n_mt_cells);
    ("total_switch_width", r.Flow.total_switch_width);
  ]

let run_workload ~options (name, gen, t) =
  let before = Metrics.counters () in
  let r = Flow.run ~options t (gen (Library.default ())) in
  let after = Metrics.counters () in
  let workload =
    Snapshot.workload ~name ~qor:(qor_of r)
      ~counters:(counter_delta ~before ~after)
      ~stage_ms:
        (List.map (fun (s : Flow.stage) -> (s.Flow.stage_name, s.Flow.stage_ms)) r.Flow.stages)
  in
  {
    Smt_obs.Ledger.lw_workload = workload;
    Smt_obs.Ledger.lw_prof =
      List.filter_map
        (fun (s : Flow.stage) ->
          Option.map (fun p -> (s.Flow.stage_name, p)) s.Flow.stage_prof)
        r.Flow.stages;
  }

let collect_ledger ?(seed = 1) ?(jobs = 1) ~tag () =
  let options = { Flow.default_options with Flow.seed } in
  let workloads = Smt_obs.Par.map ~jobs (run_workload ~options) default_workloads in
  let snapshot =
    Snapshot.make ~tag (List.map (fun lw -> lw.Smt_obs.Ledger.lw_workload) workloads)
  in
  (snapshot, workloads)

let collect ?seed ?jobs ~tag () = fst (collect_ledger ?seed ?jobs ~tag ())
