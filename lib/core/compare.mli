(** Technique comparison normalized as the paper's Table 1.

    Each row runs the three flows on fresh copies of one circuit and
    normalizes area and standby leakage to the Dual-Vth result (= 100%). *)

type entry = {
  technique : Flow.technique;
  report : Flow.report;
  area_pct : float;
  leakage_pct : float;
}

type row = {
  circuit : string;
  entries : entry list;
      (** Dual-Vth, Conventional-SMT, Improved-SMT; a technique whose flow
          raised {!Flow.Flow_error} (strict guard) is simply absent, and
          [render] prints "fail" in its column *)
}

val table1_row :
  ?options:Flow.options -> ?jobs:int -> (unit -> Smt_netlist.Netlist.t) -> row
(** [jobs] (default 1) is passed straight to {!Flow.run_all}.
    @raise Invalid_argument when the Dual-Vth baseline itself failed. *)

val improvement : row -> float * float
(** [(area_saving, leakage_saving)] of improved over conventional, as
    fractions (the paper's headline: about 0.20 and 0.40). *)

val render : row list -> string
(** ASCII rendition in the layout of the paper's Table 1. *)

val render_details : row list -> string
(** Extended table: raw values, MT fractions, switch/holder/buffer counts,
    timing status. *)
