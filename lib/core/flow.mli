(** End-to-end design flows for the three techniques of Table 1.

    Every flow starts from the same precondition as the paper's Fig. 4:
    an all-low-Vth netlist, physically synthesized (placed), whose clock
    period is chosen so the low-Vth circuit meets timing with a margin.
    Then:

    - {b Dual-Vth}: high-Vth swap of off-critical cells; CTS; routing;
      hold ECO. The remaining low-Vth cells leak all through standby —
      the baseline both Selective-MT styles are normalized against.
    - {b Conventional Selective-MT}: the low-Vth survivors become embedded
      MT-cells (private switch + holder each, Fig. 1a); the MTE net is
      created, connected to every MT-cell, and buffered.
    - {b Improved Selective-MT}: the survivors become MT-cells without
      VGND ports, then switch/holder insertion, VGND clustering and switch
      sizing on pre-route estimates, routing + CTS + MTE buffering,
      post-route switch re-optimization, and the hold ECO — the paper's
      full Fig. 4 pipeline.

    [run] mutates the netlist it is given; use [Smt_netlist.Clone.copy] or
    a generator thunk ([run_all]) to compare techniques on one circuit.

    {2 Guarding}

    With [options.guard] above {!Guard_off}, every stage snapshot is
    followed by a structural design-rule check ({!Smt_check.Drc.check})
    against the live netlist:

    - {!Guard_warn} records violations as report diagnostics (and
      [check.violations] metrics) and keeps going;
    - {!Guard_repair} first lets {!Smt_check.Repair.repair} fix what it
      can (reconnect floating MTE pins, re-insert holders, clamp
      degenerate footers, ...), then records whatever remains;
    - {!Guard_strict} raises {!Flow_error} on the first Error-severity
      violation, naming the stage and the offending objects.

    Under [warn] and [repair] an exception out of the MT-construction
    stages degrades the run instead of aborting it: the flow continues on
    the Dual-Vth-style circuit it still has, sets [report.degraded], and
    appends the cause to [report.diagnostics].

    With the guard at its {!Guard_off} default no check or repair runs and
    reports are bit-identical to a build without this subsystem. *)

type technique = Dual_vth | Conventional_smt | Improved_smt

val technique_name : technique -> string

(** Per-stage netlist validation policy; see the module preamble. *)
type guard = Guard_off | Guard_warn | Guard_repair | Guard_strict

val guard_name : guard -> string
val guard_of_string : string -> (guard, string) result

type flow_error = {
  fe_stage : string;  (** stage whose post-check (or body) failed *)
  fe_circuit : string;
  fe_diagnostics : string list;  (** rendered violations or the exception *)
}

exception Flow_error of flow_error
(** Raised under {!Guard_strict} when a stage leaves Error-severity
    violations behind, and by any guard mode when a failure cannot be
    degraded away. *)

type options = {
  seed : int;
  clock_margin : float;  (** slack margin over the all-low-Vth critical path *)
  assignment_margin : float;
      (** margin the Vth assignment is allowed to consume.  Must stay below
          [clock_margin]: the difference is the timing reserve that absorbs
          the MT conversion penalty (series footer plus VGND bounce), which
          is how the paper's replacement stage keeps "the timing
          specification satisfied" *)
  utilization : float;
  placement_iterations : int;
  activity_cycles : int;
  cluster_params : Cluster.params option;  (** [None]: technology defaults *)
  minimize_holders : bool;  (** the all-fanouts-MT holder rule (ablation knob) *)
  gate_sizing : bool;
      (** also downsize off-critical cells to weaker drive strengths after
          the Vth assignment (the sizing half of the Wei et al. baseline);
          applies to all three techniques *)
  retention_registers : bool;
      (** convert slack-rich flip-flops to retention flip-flops, removing
          the sequential standby-leakage floor (extension; applies to all
          techniques) *)
  slew_aware : bool;
      (** time the whole flow with the NLDM table model and slew
          propagation instead of the linear model *)
  reoptimize : bool;  (** post-route switch resizing (ablation knob) *)
  detour : float;  (** routed/estimated VGND length ratio *)
  mte_max_fanout : int option;
  cts_max_fanout : int;
  max_hold_iterations : int;
  guard : guard;  (** per-stage structural checking; default {!Guard_off} *)
  on_stage : (string -> unit) option;
      (** progress hook, called with each stage's name as the stage
          closes (before the guard runs); default [None].  Purely
          observational — campaign workers use it to feed their
          heartbeat file — and must not raise. *)
}

val default_options : options

type stage = {
  stage_name : string;
  stage_area : float;
  stage_standby_nw : float;
  stage_wns : float;
  stage_worst_bounce : float;
  stage_switches : int;
  stage_holders : int;
  stage_ms : float;  (** wall-clock time from the previous snapshot to this one *)
  stage_prof : Smt_obs.Prof.stats option;
      (** GC/heap cost over the same interval; [None] unless profiling
          ({!Smt_obs.Prof.enable}, CLI [--profile]) was on *)
}

type report = {
  technique : technique;
  circuit : string;
  clock_period : float;
  area : float;
  standby_nw : float;
  leakage : Smt_power.Leakage.breakdown;
  wns : float;
  hold_slack : float;
  worst_bounce : float;
  bounce_violations : int;
  timing_met : bool;
  hold_met : bool;
  n_mt_cells : int;
  n_switches : int;
  n_clusters : int;
  n_holders : int;
  holders_avoided : int;
  n_mte_buffers : int;
  n_cts_buffers : int;
  n_hold_buffers : int;
  swapped_to_high_vth : int;
  cells_downsized : int;
  ffs_retained : int;
  reopt_resized : int;
      (** switches the post-route re-optimization resized (improved flow) *)
  reopt_violations_repaired : int;
      (** bounce-limit violations the re-optimization removed *)
  mt_area_fraction : float;
  total_switch_width : float;
  stages : stage list;
  diagnostics : string list;
      (** guard findings in flow order: violations (rendered once each,
          however many stages they persist through) and repair actions.
          Empty under {!Guard_off} *)
  check_violations : int;  (** distinct violations the guard recorded *)
  check_repairs : int;  (** repair actions applied under {!Guard_repair} *)
  degraded : bool;
      (** MT construction failed and the flow fell back to the Dual-Vth-style
          circuit it had (guard [warn]/[repair] only) *)
}

val endpoint_free_fallback_ps : float
(** Period [minimal_period] reports for a netlist with no timing endpoints
    (no non-clock primary outputs and no flip-flops): with nothing for STA
    to constrain, the worst slack is [+inf] and no finite critical path
    exists, so the flow assumes this nominal 100 ps period rather than a
    meaningless one.  The condition is logged at [warn] level and surfaces
    from the checker as a [no-timing-endpoints] violation. *)

val minimal_period : ?slew_aware:bool -> wire:Smt_sta.Wire.t -> Smt_netlist.Netlist.t -> float
(** Minimal clock period of the netlist under the wire model: STA at a
    probe period minus the worst slack.  Falls back to
    {!endpoint_free_fallback_ps} when the design has no timing endpoints. *)

val run : ?options:options -> technique -> Smt_netlist.Netlist.t -> report
(** @raise Flow_error under {!Guard_strict} on Error-severity violations. *)

(** The analysis context behind a report's headline numbers, for QoR
    attribution ({!Explain}): the placement, the final post-route STA
    configuration and analysis (whose {!Smt_sta.Sta.wns} is the report's
    [wns]), the final bounce reports, the built clusters (improved flow
    only), and the cluster parameters the run used. *)
type artifacts = {
  art_place : Smt_place.Placement.t;
  art_cfg : Smt_sta.Sta.config;
  art_sta : Smt_sta.Sta.t;
  art_bounce : Smt_power.Bounce.cluster_report list;
  art_clusters : Cluster.cluster list;
  art_params : Cluster.params;
}

val run_with_artifacts :
  ?options:options -> technique -> Smt_netlist.Netlist.t -> report * artifacts
(** [run], also handing back the final-state artifacts instead of
    discarding them.  [run] is [fst] of this. *)

(** One technique's result in a [run_all] sweep: either its report or,
    when {!Flow_error} escaped [run], the stage and diagnostics of the
    failure — one broken technique no longer aborts the whole
    comparison. *)
type outcome =
  | Completed of report
  | Failed of { technique : technique; stage : string; diagnostics : string list }

val completed : outcome list -> report list
(** The successful reports, in sweep order. *)

val run_all :
  ?options:options -> ?jobs:int -> (unit -> Smt_netlist.Netlist.t) -> outcome list
(** One fresh netlist per technique, in order
    [Dual_vth; Conventional_smt; Improved_smt].  [jobs] (default 1) runs
    the techniques concurrently on that many domains via {!Smt_obs.Par};
    outcomes, metric totals, and reports are identical at any job
    count. *)

val pp_report : Format.formatter -> report -> unit
