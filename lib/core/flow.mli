(** End-to-end design flows for the three techniques of Table 1.

    Every flow starts from the same precondition as the paper's Fig. 4:
    an all-low-Vth netlist, physically synthesized (placed), whose clock
    period is chosen so the low-Vth circuit meets timing with a margin.
    Then:

    - {b Dual-Vth}: high-Vth swap of off-critical cells; CTS; routing;
      hold ECO. The remaining low-Vth cells leak all through standby —
      the baseline both Selective-MT styles are normalized against.
    - {b Conventional Selective-MT}: the low-Vth survivors become embedded
      MT-cells (private switch + holder each, Fig. 1a); the MTE net is
      created, connected to every MT-cell, and buffered.
    - {b Improved Selective-MT}: the survivors become MT-cells without
      VGND ports, then switch/holder insertion, VGND clustering and switch
      sizing on pre-route estimates, routing + CTS + MTE buffering,
      post-route switch re-optimization, and the hold ECO — the paper's
      full Fig. 4 pipeline.

    [run] mutates the netlist it is given; use [Smt_netlist.Clone.copy] or
    a generator thunk ([run_all]) to compare techniques on one circuit. *)

type technique = Dual_vth | Conventional_smt | Improved_smt

val technique_name : technique -> string

type options = {
  seed : int;
  clock_margin : float;  (** slack margin over the all-low-Vth critical path *)
  assignment_margin : float;
      (** margin the Vth assignment is allowed to consume.  Must stay below
          [clock_margin]: the difference is the timing reserve that absorbs
          the MT conversion penalty (series footer plus VGND bounce), which
          is how the paper's replacement stage keeps "the timing
          specification satisfied" *)
  utilization : float;
  placement_iterations : int;
  activity_cycles : int;
  cluster_params : Cluster.params option;  (** [None]: technology defaults *)
  minimize_holders : bool;  (** the all-fanouts-MT holder rule (ablation knob) *)
  gate_sizing : bool;
      (** also downsize off-critical cells to weaker drive strengths after
          the Vth assignment (the sizing half of the Wei et al. baseline);
          applies to all three techniques *)
  retention_registers : bool;
      (** convert slack-rich flip-flops to retention flip-flops, removing
          the sequential standby-leakage floor (extension; applies to all
          techniques) *)
  slew_aware : bool;
      (** time the whole flow with the NLDM table model and slew
          propagation instead of the linear model *)
  reoptimize : bool;  (** post-route switch resizing (ablation knob) *)
  detour : float;  (** routed/estimated VGND length ratio *)
  mte_max_fanout : int option;
  cts_max_fanout : int;
  max_hold_iterations : int;
}

val default_options : options

type stage = {
  stage_name : string;
  stage_area : float;
  stage_standby_nw : float;
  stage_wns : float;
  stage_worst_bounce : float;
  stage_switches : int;
  stage_holders : int;
  stage_ms : float;  (** wall-clock time from the previous snapshot to this one *)
}

type report = {
  technique : technique;
  circuit : string;
  clock_period : float;
  area : float;
  standby_nw : float;
  leakage : Smt_power.Leakage.breakdown;
  wns : float;
  hold_slack : float;
  worst_bounce : float;
  bounce_violations : int;
  timing_met : bool;
  hold_met : bool;
  n_mt_cells : int;
  n_switches : int;
  n_clusters : int;
  n_holders : int;
  holders_avoided : int;
  n_mte_buffers : int;
  n_cts_buffers : int;
  n_hold_buffers : int;
  swapped_to_high_vth : int;
  cells_downsized : int;
  ffs_retained : int;
  reopt_resized : int;
      (** switches the post-route re-optimization resized (improved flow) *)
  reopt_violations_repaired : int;
      (** bounce-limit violations the re-optimization removed *)
  mt_area_fraction : float;
  total_switch_width : float;
  stages : stage list;
}

val run : ?options:options -> technique -> Smt_netlist.Netlist.t -> report

val run_all : ?options:options -> (unit -> Smt_netlist.Netlist.t) -> report list
(** One fresh netlist per technique, in order
    [Dual_vth; Conventional_smt; Improved_smt]. *)

val pp_report : Format.formatter -> report -> unit
