(** QoR snapshot collection over the benchmark workloads.

    A workload is one flow run on one circuit, named
    ["<circuit>/<technique>"].  [collect] runs the standard six — circuits
    A and B under each of the three techniques — and freezes, per
    workload, the headline QoR fields of the report, the {!Smt_obs.Metrics}
    counter deltas attributable to that run alone (registry diffed before
    and after, so concurrent sections cannot contaminate each other), and
    the per-stage wall-clock times.

    The result is a {!Smt_obs.Snapshot.t} ready for [Snapshot.write] /
    [Snapshot.compare] — the payload behind [smt_flow bench-snapshot] and
    the committed [BENCH_*.json] baselines. *)

val technique_slug : Flow.technique -> string
(** ["dual"], ["conventional"], ["improved"] — the CLI spellings. *)

val default_workloads :
  (string * (Smt_cell.Library.t -> Smt_netlist.Netlist.t) * Flow.technique) list
(** Circuits A and B under each technique, in that order. *)

val counter_delta :
  before:(string * int) list -> after:(string * int) list -> (string * int) list
(** Per-counter difference, dropping counters that did not move.  Counters
    only present in [before] (impossible with a monotonic registry) are
    ignored. *)

val qor_of : Flow.report -> (string * float) list
(** The snapshot's QoR fields for one report: area, standby leakage, WNS,
    cluster/switch/holder/MT-cell counts, total switch width. *)

val collect_ledger :
  ?seed:int ->
  ?jobs:int ->
  tag:string ->
  unit ->
  Smt_obs.Snapshot.t * Smt_obs.Ledger.workload list
(** [collect] plus the same workloads in run-ledger form, carrying the
    per-stage GC attribution from {!Smt_obs.Prof} when profiling was on
    (empty attribution otherwise).  This is what [bench-snapshot
    --ledger] appends. *)

val collect : ?seed:int -> ?jobs:int -> tag:string -> unit -> Smt_obs.Snapshot.t
(** Run every default workload (seed 1 by default) and assemble the
    snapshot.  Mutates the calling domain's metrics store as a side
    effect of running the flows.  [jobs] (default 1) runs the six
    workloads concurrently via {!Smt_obs.Par}; each job's counters are
    collected in a scoped store, so the per-workload deltas — and the
    snapshot JSON — are identical at any job count. *)
