(** QoR attribution reports — the "why" behind a flow report's headline
    numbers.

    Every renderer takes a {!Flow.report} together with the
    {!Flow.artifacts} of the {b same} [Flow.run_with_artifacts] call: the
    paths report reads the final post-route STA, so its worst slack equals
    the report's [wns] exactly (re-running STA under a default
    configuration would not match — bounce derates and clock latency
    differ).

    Each report exists as a text table ([paths], [leakage], [clusters])
    and as a JSON document ([*_json]) parseable by
    {!Smt_obs.Obs_json.parse}. *)

val paths : ?k:int -> Flow.report -> Flow.artifacts -> string
(** The [k] (default 5) worst setup paths: per-arc instance, cell,
    Vth/style, cell and wire delay, arrival; capture hop last.  The first
    path's slack is the report's [wns]. *)

val paths_json : ?k:int -> Flow.report -> Flow.artifacts -> string

val leakage : Flow.report -> Flow.artifacts -> string
(** Standby leakage sliced by threshold class and by cell function, plus
    the stage-by-stage waterfall over the flow's recorded stages. *)

val leakage_json : Flow.report -> Flow.artifacts -> string

val clusters : Flow.report -> Flow.artifacts -> string
(** Per-sleep-switch attribution: occupancy against the EM cell limit,
    VGND length, bounce margin, member and footer leakage — descending by
    cluster leakage. *)

val clusters_json : Flow.report -> Flow.artifacts -> string
