module Netlist = Smt_netlist.Netlist
module Nl_stats = Smt_netlist.Nl_stats
module Placement = Smt_place.Placement
module Parasitics = Smt_route.Parasitics
module Cts = Smt_cts.Cts
module Sta = Smt_sta.Sta
module Wire = Smt_sta.Wire
module Leakage = Smt_power.Leakage
module Bounce = Smt_power.Bounce
module Activity = Smt_sim.Activity
module Library = Smt_cell.Library
module Tech = Smt_cell.Tech
module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Prof = Smt_obs.Prof
module Log = Smt_obs.Log
module Par = Smt_obs.Par
module Drc = Smt_check.Drc
module Repair = Smt_check.Repair
module Violation = Smt_check.Violation
module Verify = Smt_verify.Verify
module Rules = Smt_verify.Rules

let m_runs = Metrics.counter "flow.runs"
let m_stages = Metrics.counter "flow.stages"
let m_stage_ms = Metrics.histogram "flow.stage_ms"
let m_check_violations = Metrics.counter "check.violations"
let m_check_repairs = Metrics.counter "check.repairs"
let m_lint_findings = Metrics.counter "lint.findings"

(* Findings re-reported by later stages, recognised by (rule, location,
   witness) rather than message text so a reworded message can't leak a
   duplicate through. *)
let m_lint_dedup = Metrics.counter "lint.dedup"
let m_degraded = Metrics.counter "flow.degraded"

(* Stage names become metric-name components: spaces and punctuation to
   underscores so dumps stay grep- and Prometheus-friendly. *)
let slug name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '_')
    (String.lowercase_ascii name)

type technique = Dual_vth | Conventional_smt | Improved_smt

let technique_name = function
  | Dual_vth -> "Dual-Vth"
  | Conventional_smt -> "Con.-SMT"
  | Improved_smt -> "Imp.-SMT"

type guard = Guard_off | Guard_warn | Guard_repair | Guard_strict

let guard_name = function
  | Guard_off -> "off"
  | Guard_warn -> "warn"
  | Guard_repair -> "repair"
  | Guard_strict -> "strict"

let guard_of_string = function
  | "off" -> Ok Guard_off
  | "warn" -> Ok Guard_warn
  | "repair" -> Ok Guard_repair
  | "strict" -> Ok Guard_strict
  | s -> Error (Printf.sprintf "unknown guard mode %s (off|warn|repair|strict)" s)

type flow_error = {
  fe_stage : string;
  fe_circuit : string;
  fe_diagnostics : string list;
}

exception Flow_error of flow_error

let () =
  Printexc.register_printer (function
    | Flow_error e ->
      Some
        (Printf.sprintf "Flow_error at stage %S on %s: %s" e.fe_stage e.fe_circuit
           (String.concat "; " e.fe_diagnostics))
    | _ -> None)

type options = {
  seed : int;
  clock_margin : float;
  assignment_margin : float;
  utilization : float;
  placement_iterations : int;
  activity_cycles : int;
  cluster_params : Cluster.params option;
  minimize_holders : bool;
  gate_sizing : bool;
  retention_registers : bool;
  slew_aware : bool;
  reoptimize : bool;
  detour : float;
  mte_max_fanout : int option;
  cts_max_fanout : int;
  max_hold_iterations : int;
  guard : guard;
  on_stage : (string -> unit) option;
}

let default_options =
  {
    seed = 1;
    clock_margin = 0.30;
    assignment_margin = 0.05;
    utilization = 0.65;
    placement_iterations = 8;
    activity_cycles = 128;
    cluster_params = None;
    minimize_holders = true;
    gate_sizing = false;
    retention_registers = false;
    slew_aware = false;
    reoptimize = true;
    detour = 1.15;
    mte_max_fanout = None;
    cts_max_fanout = 8;
    max_hold_iterations = 10;
    guard = Guard_off;
    on_stage = None;
  }

type stage = {
  stage_name : string;
  stage_area : float;
  stage_standby_nw : float;
  stage_wns : float;
  stage_worst_bounce : float;
  stage_switches : int;
  stage_holders : int;
  stage_ms : float;
  stage_prof : Smt_obs.Prof.stats option;
}

type report = {
  technique : technique;
  circuit : string;
  clock_period : float;
  area : float;
  standby_nw : float;
  leakage : Leakage.breakdown;
  wns : float;
  hold_slack : float;
  worst_bounce : float;
  bounce_violations : int;
  timing_met : bool;
  hold_met : bool;
  n_mt_cells : int;
  n_switches : int;
  n_clusters : int;
  n_holders : int;
  holders_avoided : int;
  n_mte_buffers : int;
  n_cts_buffers : int;
  n_hold_buffers : int;
  swapped_to_high_vth : int;
  cells_downsized : int;
  ffs_retained : int;
  reopt_resized : int;
  reopt_violations_repaired : int;
  mt_area_fraction : float;
  total_switch_width : float;
  stages : stage list;
  diagnostics : string list;
  check_violations : int;
  check_repairs : int;
  degraded : bool;
}

(* The minimal clock period of the current netlist under the given wire
   model: run STA at a huge period and subtract the worst slack. *)
let endpoint_free_fallback_ps = 100.0

let minimal_period ?(slew_aware = false) ~wire nl =
  let probe = 1e6 in
  let cfg = Sta.config ~wire ~slew_aware ~clock_period:probe () in
  let sta = Sta.analyze cfg nl in
  let wns = Sta.wns sta in
  if wns = infinity then begin
    (* No endpoints: nothing constrains the clock.  The checker reports the
       same condition as a no-timing-endpoints warning. *)
    Log.warn "flow"
      (Printf.sprintf
         "netlist %s has no timing endpoints; minimal_period falls back to %.1f ps"
         (Netlist.design_name nl) endpoint_free_fallback_ps);
    endpoint_free_fallback_ps
  end
  else probe -. wns

let connect_embedded_mte nl mte =
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      if Vth.style_equal c.Cell.style Vth.Mt_embedded && Netlist.pin_net nl iid "MTE" = None
      then Netlist.connect nl iid "MTE" mte)

type artifacts = {
  art_place : Placement.t;
  art_cfg : Sta.config;
  art_sta : Sta.t;
  art_bounce : Bounce.cluster_report list;
  art_clusters : Cluster.cluster list;
  art_params : Cluster.params;
}

let run_with_artifacts ?(options = default_options) technique nl =
  Trace.with_span "Flow.run"
    ~args:[ ("technique", technique_name technique); ("circuit", Netlist.design_name nl) ]
  @@ fun () ->
  Metrics.incr m_runs;
  let lib = Netlist.lib nl in
  let tech = Library.tech lib in
  let params =
    match options.cluster_params with Some p -> p | None -> Cluster.default_params tech
  in
  let stages = ref [] in
  (* Each stage span runs from the previous snapshot to this one, so the
     snapshot's own closing STA is billed to the stage that required it. *)
  let mark = ref (Trace.now_us ()) in
  (* GC attribution follows the same mark discipline: each stage is charged
     the allocation between the previous snapshot and its own. *)
  let pmark = ref (Prof.mark ()) in
  let prev = ref None in
  let place =
    Placement.place ~seed:options.seed ~utilization:options.utilization
      ~iterations:options.placement_iterations nl
  in
  let est = Parasitics.estimate ~seed:(options.seed + 17) place in
  let wire_est = Parasitics.wire_model est nl in
  let min_period = minimal_period ~slew_aware:options.slew_aware ~wire:wire_est nl in
  let clock_period = min_period *. (1.0 +. options.clock_margin) in
  (* The Vth assignment works against a tighter period, reserving
     [clock_margin - assignment_margin] of slack for the MT conversion. *)
  let assign_period = min_period *. (1.0 +. options.assignment_margin) in
  let base_cfg = Sta.config ~wire:wire_est ~slew_aware:options.slew_aware ~clock_period () in
  let assign_cfg =
    Sta.config ~wire:wire_est ~slew_aware:options.slew_aware ~clock_period:assign_period ()
  in
  (* Per-instance output load under a wire model: drives the switching
     current used for footer sizing. *)
  let load_with cfg iid =
    match Netlist.output_net nl iid with
    | Some out -> Sta.load_of_net cfg nl out
    | None -> 0.0
  in
  let load_est = load_with base_cfg in
  (* --- per-stage guard: validate, repair, or abort after each stage --- *)
  let diagnostics = ref [] in
  let check_violations = ref 0 in
  let check_repairs = ref 0 in
  let degraded = ref false in
  let guard_phase = ref Drc.Pre_mt in
  let expect_buffered_mte = ref false in
  (* Persistent warnings (e.g. a dangling net the flow never touches) are
     reported once, not once per stage. *)
  let seen_violations = Hashtbl.create 97 in
  (* Incremental lint: the first Post_mt guard seeds a verifier session;
     later stages re-verify only the cone of nets the stage touched
     (tracked by the netlist's journal), which [Verify.update] proves
     equivalent to a from-scratch pass. *)
  let lint_session = ref None in
  let diag line =
    diagnostics := line :: !diagnostics;
    Log.warn "check" line
  in
  let guard_check stage =
    match options.guard with
    | Guard_off -> ()
    | g ->
      let run_check () =
        Drc.check ~phase:!guard_phase ~place ~expect_buffered_mte:!expect_buffered_mte nl
      in
      let vs = run_check () in
      let vs =
        if g = Guard_repair && vs <> [] then begin
          let r = Repair.repair ~place nl vs in
          if r.Repair.repaired > 0 then begin
            check_repairs := !check_repairs + r.Repair.repaired;
            Metrics.incr m_check_repairs ~by:r.Repair.repaired;
            List.iter (fun a -> diag (stage ^ ": repaired: " ^ a)) r.Repair.actions;
            run_check ()
          end
          else vs
        end
        else vs
      in
      let fresh =
        List.filter
          (fun v ->
            let key = Violation.to_string v in
            if Hashtbl.mem seen_violations key then false
            else begin
              Hashtbl.add seen_violations key ();
              true
            end)
          vs
      in
      if fresh <> [] then begin
        check_violations := !check_violations + List.length fresh;
        Metrics.incr m_check_violations ~by:(List.length fresh);
        List.iter (fun v -> diag (stage ^ ": " ^ Violation.to_string v)) fresh
      end;
      if g = Guard_strict && Drc.has_errors vs then
        raise
          (Flow_error
             {
               fe_stage = stage;
               fe_circuit = Netlist.design_name nl;
               fe_diagnostics = List.map Violation.to_string (Violation.errors vs);
             });
      (* Semantic standby verification rides the same guard: once the MT
         support structure exists, the design must also sleep correctly
         — structure first (above), values second, so a structurally
         broken netlist fails on the precise structural message. *)
      if !guard_phase = Drc.Post_mt then begin
        let sem =
          Trace.with_span "Flow.lint" ~args:[ ("stage", stage) ] (fun () ->
              match !lint_session with
              | None ->
                let s, r = Verify.start nl in
                lint_session := Some s;
                r.Verify.findings
              | Some s -> (Verify.update s).Verify.findings)
        in
        let sem_fresh =
          List.filter
            (fun f ->
              let key =
                String.concat "\x00"
                  (f.Rules.rule.Rules.id :: f.Rules.loc :: f.Rules.witness)
              in
              if Hashtbl.mem seen_violations key then false
              else begin
                Hashtbl.add seen_violations key ();
                true
              end)
            sem
        in
        let repeats = List.length sem - List.length sem_fresh in
        if repeats > 0 then Metrics.incr m_lint_dedup ~by:repeats;
        if sem_fresh <> [] then begin
          Metrics.incr m_lint_findings ~by:(List.length sem_fresh);
          List.iter (fun f -> diag (stage ^ ": lint: " ^ Rules.to_string f)) sem_fresh
        end;
        if g = Guard_strict && Rules.has_errors sem then
          raise
            (Flow_error
               {
                 fe_stage = stage;
                 fe_circuit = Netlist.design_name nl;
                 fe_diagnostics = List.map Rules.to_string (Rules.errors sem);
               })
      end
  in
  let snapshot ?(cfg = base_cfg) ?(bounce = 0.0) name =
    let sta = Sta.analyze cfg nl in
    let stats = Nl_stats.compute nl in
    let area = stats.Nl_stats.area_total in
    let standby = (Leakage.standby nl).Leakage.total in
    let wns = Sta.wns sta in
    let now = Trace.now_us () in
    let dur_us = now -. !mark in
    let d_area, d_standby, d_wns =
      match !prev with
      | None -> (0.0, 0.0, 0.0)
      | Some (a, s, w) -> (area -. a, standby -. s, wns -. w)
    in
    prev := Some (area, standby, wns);
    let s = slug name in
    Metrics.incr m_stages;
    Metrics.observe m_stage_ms (dur_us /. 1000.0);
    Metrics.set (Metrics.gauge ("flow.stage." ^ s ^ ".ms")) (dur_us /. 1000.0);
    Metrics.set (Metrics.gauge ("flow.stage." ^ s ^ ".area_delta_um2")) d_area;
    Metrics.set (Metrics.gauge ("flow.stage." ^ s ^ ".standby_delta_nw")) d_standby;
    Metrics.set (Metrics.gauge ("flow.stage." ^ s ^ ".wns_delta_ps")) d_wns;
    Trace.complete ~name ~ts_us:!mark ~dur_us
      ~args:
        [
          ("area_um2", Printf.sprintf "%.1f" area);
          ("area_delta_um2", Printf.sprintf "%.1f" d_area);
          ("standby_nw", Printf.sprintf "%.1f" standby);
          ("standby_delta_nw", Printf.sprintf "%.1f" d_standby);
          ("wns_ps", Printf.sprintf "%.1f" wns);
          ("worst_bounce_v", Printf.sprintf "%.4f" bounce);
          ("switches", string_of_int stats.Nl_stats.sleep_switches);
          ("holders", string_of_int stats.Nl_stats.holders);
        ]
      ();
    if Log.enabled Log.Debug then
      Log.debug "flow" ("stage: " ^ name)
        ~fields:
          [
            ("ms", Printf.sprintf "%.2f" (dur_us /. 1000.0));
            ("area", Printf.sprintf "%.1f" area);
            ("standby_nw", Printf.sprintf "%.1f" standby);
            ("wns", Printf.sprintf "%.1f" wns);
          ];
    mark := now;
    let pstats = Prof.record name !pmark in
    pmark := Prof.mark ();
    stages :=
      {
        stage_name = name;
        stage_area = area;
        stage_standby_nw = standby;
        stage_wns = wns;
        stage_worst_bounce = bounce;
        stage_switches = stats.Nl_stats.sleep_switches;
        stage_holders = stats.Nl_stats.holders;
        stage_ms = dur_us /. 1000.0;
        stage_prof = pstats;
      }
      :: !stages;
    (match options.on_stage with Some f -> f name | None -> ());
    guard_check name
  in
  snapshot "physical-synthesis (all low-Vth)";
  (* Stage: Dual-Vth-style replacement (all techniques). *)
  let assign = Vth_assign.assign assign_cfg nl in
  snapshot "high-Vth replacement";
  let downsized =
    if options.gate_sizing then begin
      let r = Gate_sizing.downsize_idle assign_cfg nl in
      snapshot "gate sizing (drive-strength recovery)";
      r.Gate_sizing.resized
    end
    else 0
  in
  let retained =
    if options.retention_registers then begin
      let r = Retention.convert assign_cfg nl in
      snapshot "retention-register conversion";
      r.Retention.converted
    end
    else 0
  in
  (* Technique-specific MT construction. *)
  let n_mt = ref 0 in
  let clusters = ref [] in
  let holders_avoided = ref 0 in
  let activity = ref None in
  let construct_mt () =
    match technique with
    | Dual_vth -> ()
    | Conventional_smt ->
      n_mt := Mt_replace.replace Mt_replace.Conventional nl;
      let mte = Switch_insert.mte_net_of nl in
      connect_embedded_mte nl mte;
      snapshot "MT-cell replacement (embedded)"
    | Improved_smt ->
      n_mt := Mt_replace.replace Mt_replace.Improved nl;
      snapshot "MT-cell replacement (no VGND port)";
      if !n_mt > 0 then begin
        let ins =
          Switch_insert.insert ~minimize_holders:options.minimize_holders place
        in
        guard_phase := Drc.Post_mt;
        holders_avoided := ins.Switch_insert.holders_avoided;
        let bounce0 =
          let wire_length_of = Cluster.vgnd_lengths place in
          Bounce.worst (Bounce.analyze ~load_of:load_est nl ~wire_length_of)
        in
        snapshot ~bounce:bounce0 "switch & holder insertion (initial structure)";
        let act =
          Activity.estimate ~cycles:options.activity_cycles ~seed:options.seed nl
        in
        activity := Some act;
        let built =
          Cluster.build ~activity:act ~load_of:load_est ~params place
            ~mte_net:ins.Switch_insert.mte_net
        in
        clusters := built.Cluster.clusters;
        let bounce1 =
          let wire_length_of = Cluster.vgnd_lengths place in
          Bounce.worst (Bounce.analyze ~activity:act ~load_of:load_est nl ~wire_length_of)
        in
        snapshot ~bounce:bounce1 "switch structure construction (clustering & sizing)"
      end
  in
  (match options.guard with
  | Guard_off -> construct_mt ()
  | Guard_strict -> (
    try construct_mt () with
    | Flow_error _ as e -> raise e
    | exn ->
      raise
        (Flow_error
           {
             fe_stage = "MT construction";
             fe_circuit = Netlist.design_name nl;
             fe_diagnostics = [ Printexc.to_string exn ];
           }))
  | Guard_warn | Guard_repair -> (
    (* Graceful degradation: a failed MT conversion leaves the design a
       working (if unoptimized) Dual-Vth-style circuit.  Report that rather
       than abort the whole comparison. *)
    try construct_mt () with
    | Flow_error _ as e -> raise e
    | exn ->
      degraded := true;
      Metrics.incr m_degraded;
      diag
        (Printf.sprintf "MT construction failed (%s); degrading to a Dual-Vth-style flow"
           (Printexc.to_string exn))));
  (* Routing stage: CTS, then MTE buffering, then extraction. *)
  let cts = Cts.synthesize ~max_fanout:options.cts_max_fanout place in
  let mte_buffers =
    match technique with
    | Dual_vth -> 0
    | Conventional_smt | Improved_smt -> (
      match Netlist.find_net nl "MTE" with
      | Some mte ->
        let r = Mte.buffer_tree ?max_fanout:options.mte_max_fanout place ~mte_net:mte in
        r.Mte.buffers
      | None -> 0)
  in
  expect_buffered_mte := true;
  let ext = Parasitics.extract ~detour:options.detour place in
  let wire_ext = Parasitics.wire_model ext nl in
  let ext_cfg = Sta.config ~wire:wire_ext ~slew_aware:options.slew_aware ~clock_period () in
  let load_ext = load_with ext_cfg in
  (* Rebuilt per analysis so later stages (reopt, hold ECO) see current
     membership; each build is one netlist pass via [vgnd_lengths]. *)
  let routed_vgnd () =
    let lengths = Cluster.vgnd_lengths place in
    fun sw -> lengths sw *. options.detour
  in
  let bounce_reports () =
    Bounce.analyze ?activity:!activity ~load_of:load_ext
      ~limit:params.Cluster.bounce_limit nl ~wire_length_of:(routed_vgnd ())
  in
  let post_route_cfg bounce_fn =
    {
      (Sta.config ~wire:wire_ext ~slew_aware:options.slew_aware ~clock_period ()) with
      Sta.bounce_of = bounce_fn;
      Sta.clock_latency = Cts.latency_fn cts;
      Sta.hold_margin = tech.Tech.hold_margin;
    }
  in
  let bounce_fn_of reports = Bounce.bounce_of_fn reports nl in
  let reports0 = bounce_reports () in
  snapshot
    ~cfg:(post_route_cfg (bounce_fn_of reports0))
    ~bounce:(Bounce.worst reports0) "routing (CTS, MTE buffering, extraction)";
  (* Post-route re-optimization of the switch structure. *)
  let reopt_stats = ref None in
  (match technique with
  | Improved_smt when options.reoptimize && !clusters <> [] ->
    let r =
      Reopt.reoptimize ?activity:!activity ~load_of:load_ext ~params
        ~detour:options.detour place
    in
    reopt_stats := Some r;
    let reports = bounce_reports () in
    snapshot
      ~cfg:(post_route_cfg (bounce_fn_of reports))
      ~bounce:(Bounce.worst reports) "post-route switch re-optimization"
  | Improved_smt | Dual_vth | Conventional_smt -> ());
  (* ECO: fix hold violations; final timing. *)
  let final_reports = bounce_reports () in
  let final_cfg = post_route_cfg (bounce_fn_of final_reports) in
  let eco = Eco.fix_hold ~max_iterations:options.max_hold_iterations final_cfg place in
  let final_sta = Sta.analyze final_cfg nl in
  snapshot ~cfg:final_cfg ~bounce:(Bounce.worst final_reports) "ECO & timing analysis";
  let stats = Nl_stats.compute nl in
  let leakage = Leakage.standby nl in
  ( {
    technique;
    circuit = Netlist.design_name nl;
    clock_period;
    area = stats.Nl_stats.area_total;
    standby_nw = leakage.Leakage.total;
    leakage;
    wns = Sta.wns final_sta;
    hold_slack = Sta.worst_hold_slack final_sta;
    worst_bounce = Bounce.worst final_reports;
    bounce_violations = Bounce.violations final_reports;
    timing_met = Sta.meets_timing final_sta;
    hold_met = Sta.meets_hold final_sta;
    n_mt_cells = stats.Nl_stats.count_mt;
    n_switches = stats.Nl_stats.sleep_switches;
    n_clusters = List.length !clusters;
    n_holders = stats.Nl_stats.holders;
    holders_avoided = !holders_avoided;
    n_mte_buffers = mte_buffers;
    n_cts_buffers = Cts.buffer_count cts;
    n_hold_buffers = eco.Eco.buffers_added;
    swapped_to_high_vth = assign.Vth_assign.swapped;
    cells_downsized = downsized;
    ffs_retained = retained;
    reopt_resized = (match !reopt_stats with Some r -> r.Reopt.resized | None -> 0);
    reopt_violations_repaired =
      (match !reopt_stats with
      | Some r -> max 0 (r.Reopt.violations_before - r.Reopt.violations_after)
      | None -> 0);
    mt_area_fraction = Nl_stats.mt_area_fraction stats;
    total_switch_width = stats.Nl_stats.total_switch_width;
    stages = List.rev !stages;
    diagnostics = List.rev !diagnostics;
    check_violations = !check_violations;
    check_repairs = !check_repairs;
    degraded = !degraded;
  },
    {
      art_place = place;
      art_cfg = final_cfg;
      art_sta = final_sta;
      art_bounce = final_reports;
      art_clusters = !clusters;
      art_params = params;
    } )

let run ?options technique nl = fst (run_with_artifacts ?options technique nl)

type outcome =
  | Completed of report
  | Failed of { technique : technique; stage : string; diagnostics : string list }

let completed outcomes =
  List.filter_map (function Completed r -> Some r | Failed _ -> None) outcomes

let run_all ?options ?(jobs = 1) fresh =
  Par.map ~jobs
    (fun technique ->
      try Completed (run ?options technique (fresh ())) with
      | Flow_error e ->
        Log.error "flow"
          (Printf.sprintf "%s failed at %s" (technique_name technique) e.fe_stage)
          ~fields:[ ("circuit", e.fe_circuit) ];
        Failed { technique; stage = e.fe_stage; diagnostics = e.fe_diagnostics })
    [ Dual_vth; Conventional_smt; Improved_smt ]

let pp_report fmt r =
  Format.fprintf fmt
    "%s on %s: area=%.1f um^2, standby=%.1f nW, wns=%.1f ps (met=%b), hold=%.1f ps \
     (met=%b), bounce=%.3f V (viol=%d), mt=%d sw=%d holders=%d(+%d avoided) mte_buf=%d \
     cts_buf=%d eco_buf=%d hv_swaps=%d reopt_resized=%d reopt_viol_fixed=%d mt_frac=%.2f"
    (technique_name r.technique) r.circuit r.area r.standby_nw r.wns r.timing_met
    r.hold_slack r.hold_met r.worst_bounce r.bounce_violations r.n_mt_cells r.n_switches
    r.n_holders r.holders_avoided r.n_mte_buffers r.n_cts_buffers r.n_hold_buffers
    r.swapped_to_high_vth r.reopt_resized r.reopt_violations_repaired r.mt_area_fraction;
  if r.degraded then Format.fprintf fmt " DEGRADED";
  if r.check_violations > 0 || r.check_repairs > 0 then
    Format.fprintf fmt " check_viol=%d check_repairs=%d" r.check_violations
      r.check_repairs
