(** The evaluation circuits.

    The paper's circuits A and B are unnamed Toshiba production blocks; we
    substitute synthetic blocks with the structural properties the results
    imply:

    - {b circuit A} is datapath-dominated — an array multiplier plus deep,
      uniform-depth registered logic.  Nearly every path is close to
      critical, so Dual-Vth assignment leaves a large low-Vth (→ MT)
      population: large conventional-SMT area overhead, big improved-SMT
      saving (paper: 164.8% → 133.2%).
    - {b circuit B} is control-flavoured — shallow layered logic with wide
      depth variation plus a small ALU.  Much of it has slack and goes
      high-Vth, so the MT population and the overheads are smaller
      (paper: 142.2% → 115.7%).

    Generators return a fresh netlist per call ([Flow.run] mutates its
    input). *)

val circuit_a : Smt_cell.Library.t -> Smt_netlist.Netlist.t
val circuit_b : Smt_cell.Library.t -> Smt_netlist.Netlist.t

val tiny : Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** A small registered block for fast tests (a ripple adder). *)

val fig23_example : Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** A flip-flop-bounded fragment shaped like the paper's Fig. 2/3 example:
    a few critical gates between registers, with fanouts both inside and
    outside the critical set. *)

val multi_domain :
  ?domains:int -> name:string -> Smt_cell.Library.t -> Smt_netlist.Netlist.t
(** A post-MT SoC of [domains] (2-4, default 3) independently-gated
    power domains: per-domain enable input [mte_<d>], sleep switch, and
    output holders, plus a ring of boundary crossings each clamped by a
    declared isolation holder.  Healthy by construction — DRC-clean and
    lint-clean in every sleep mode — so tests and fault injection mutate
    from a known-good baseline.  Already MT-structured: feed it to
    {!Smt_verify.Verify.analyze} directly, not to the flow. *)

val all : (string * (Smt_cell.Library.t -> Smt_netlist.Netlist.t)) list
(** Named generators, for the CLI. *)

val is_multi_domain : string -> bool
(** Whether a [all] entry names a {!multi_domain} circuit (these are
    post-MT already, so the CLI lints them raw instead of running the
    flow). *)
