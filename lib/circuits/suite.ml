module Netlist = Smt_netlist.Netlist
module Builder = Smt_netlist.Builder
module Func = Smt_cell.Func
module Library = Smt_cell.Library
module Vth = Smt_cell.Vth
module Rng = Smt_util.Rng

(* Helpers to extend an existing netlist (used to fuse blocks into one
   design sharing a clock). *)

let lv_cell lib kind = Library.variant lib kind Vth.Low Vth.Plain

let add_gate nl lib kind ins out =
  let cell = lv_cell lib kind in
  let names = Func.input_names kind in
  let pins = List.mapi (fun i nid -> (names.(i), nid)) ins @ [ ("Z", out) ] in
  let name = Netlist.fresh_inst_name nl (String.lowercase_ascii (Func.to_string kind)) in
  ignore (Netlist.add_inst nl ~name cell pins)

let fresh_gate nl lib kind ins =
  let out = Netlist.fresh_net nl "n" in
  add_gate nl lib kind ins out;
  out

let add_reg nl lib ~clk d =
  let q = Netlist.fresh_net nl "q" in
  let name = Netlist.fresh_inst_name nl "dff" in
  ignore (Netlist.add_inst nl ~name (lv_cell lib Func.Dff) [ ("D", d); ("CK", clk); ("Q", q) ]);
  q

(* Extend a netlist with a registered block of layered random logic sharing
   the clock: column [c] runs for a depth drawn from [min_depth, depth]. *)
let extend_layered nl lib ~clk ~seed ~prefix ~width ~depth ~min_depth =
  let rng = Rng.create seed in
  let ins = List.init width (fun i -> Netlist.add_input nl (Printf.sprintf "%s%d" prefix i)) in
  let current = Array.of_list (List.map (add_reg nl lib ~clk) ins) in
  let col_depth = Array.init width (fun _ -> Rng.int_in rng min_depth depth) in
  let pool =
    [| Func.Nand2; Func.Nor2; Func.Xor2; Func.Aoi21; Func.Oai21; Func.And2; Func.Or2 |]
  in
  for layer = 1 to depth do
    let prev = Array.copy current in
    for c = 0 to width - 1 do
      if layer <= col_depth.(c) then begin
        let kind = Rng.pick rng pool in
        let srcs =
          List.init (Func.arity kind) (fun i ->
              if i = 0 then prev.(c) else prev.(Rng.int rng width))
        in
        current.(c) <- fresh_gate nl lib kind srcs
      end
    done
  done;
  Array.iteri
    (fun c net ->
      let q = add_reg nl lib ~clk net in
      let po = Netlist.add_output nl (Printf.sprintf "%so%d" prefix c) in
      add_gate nl lib Func.Buf [ q ] po)
    current

let clock_of nl =
  match Netlist.clock_net nl with
  | Some c -> c
  | None -> Netlist.add_input ~clock:true nl "clk"

let circuit_a lib =
  (* Datapath-dominated: a 12x12 array multiplier plus a uniformly deep
     layered block — nearly every path is near-critical, like the paper's
     circuit A. *)
  let nl = Generators.multiplier ~name:"circuit_a" ~bits:12 lib in
  let clk = clock_of nl in
  extend_layered nl lib ~clk ~seed:23 ~prefix:"dx" ~width:24 ~depth:16 ~min_depth:16;
  nl

let circuit_b lib =
  (* Mixed: an 8x8 multiplier core keeps a substantial critical population,
     while wide shallow control logic supplies the slack that Dual-Vth
     converts to high-Vth — circuit B's smaller overheads. *)
  let nl = Generators.multiplier ~name:"circuit_b" ~bits:8 lib in
  let clk = clock_of nl in
  extend_layered nl lib ~clk ~seed:31 ~prefix:"cx" ~width:40 ~depth:8 ~min_depth:2;
  nl

let tiny lib = Generators.ripple_adder ~registered:true ~name:"tiny_adder" ~bits:4 lib

let fig23_example lib =
  let b = Builder.create ~name:"fig23" ~lib () in
  let clk = Builder.input ~clock:true b "clk" in
  let d0 = Builder.input b "d0" in
  let d1 = Builder.input b "d1" in
  let d2 = Builder.input b "d2" in
  let q0 = Builder.dff b ~d:d0 ~clk in
  let q1 = Builder.dff b ~d:d1 ~clk in
  let q2 = Builder.dff b ~d:d2 ~clk in
  (* critical cloud: a chain with internal and boundary fanouts *)
  let g1 = Builder.nand_ b q0 q1 in
  let g2 = Builder.xor_ b g1 q2 in
  let g3 = Builder.nand_ b g2 g1 in
  let g4 = Builder.or_ b g3 q1 in
  (* non-critical side logic *)
  let s1 = Builder.and_ b q0 q2 in
  let s2 = Builder.not_ b s1 in
  let q3 = Builder.dff b ~d:g4 ~clk in
  let q4 = Builder.dff b ~d:s2 ~clk in
  let o0 = Builder.output b "o0" in
  let o1 = Builder.output b "o1" in
  Builder.gate_into b Func.Buf [ q3 ] o0;
  Builder.gate_into b Func.Xor2 [ q4; g2 ] o1;
  Builder.netlist b

(* A post-MT multi-domain SoC: 2-4 blocks, each its own sleepable power
   domain with a private enable, sleep switch, and output holders, plus
   a ring of domain crossings (each domain exports one net, through a
   declared isolation holder, to a reader gate in the next domain).
   Healthy by construction: DRC-clean and lint-clean in every sleep
   mode, so tests and faults mutate from a known-good baseline.  The
   netlist is already MT-structured — run the verifier on it directly,
   not the flow. *)
let multi_domain ?(domains = 3) ~name lib =
  if domains < 2 || domains > 4 then invalid_arg "Suite.multi_domain: 2..4 domains";
  let specs =
    [
      ("a", fun lib -> Generators.ripple_adder ~registered:true ~name:"blk" ~bits:4 lib);
      ("b", fun lib -> Generators.counter ~name:"blk" ~bits:4 lib);
      ("c", fun lib -> Generators.crc ~name:"blk" ~bits:4 ~taps:[ 1; 3 ] lib);
      ("d", fun lib -> Generators.kogge_stone ~registered:true ~name:"blk" ~bits:4 lib);
    ]
    |> List.filteri (fun i _ -> i < domains)
  in
  let nl = Smt_netlist.Compose.merge ~name (List.map (fun (p, g) -> (p, g lib)) specs) in
  let doms = List.map fst specs in
  let enable = List.map (fun d -> (d, Netlist.add_input nl ("mte_" ^ d))) doms in
  List.iter (fun (d, e) -> Netlist.add_domain nl ~name:d ~mte:(Some e)) enable;
  (* membership: merge prefixed every block instance with its domain *)
  let dom_of_name nm =
    List.find_opt (fun d -> String.starts_with ~prefix:(d ^ "_") nm) doms
  in
  Netlist.iter_insts nl (fun iid ->
      match dom_of_name (Netlist.inst_name nl iid) with
      | Some d -> Netlist.set_inst_domain nl iid (Some d)
      | None -> ());
  (* every combinational member becomes a VGND-style MT-cell *)
  let is_comb k =
    match k with
    | Func.Dff | Func.Sleep_switch | Func.Holder | Func.Clkbuf -> false
    | _ -> true
  in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      if is_comb c.Smt_cell.Cell.kind && Netlist.inst_domain nl iid <> None then
        Netlist.replace_cell nl iid
          (Library.variant ~drive:c.Smt_cell.Cell.drive lib c.Smt_cell.Cell.kind Vth.Low
             Vth.Mt_vgnd));
  let clk = clock_of nl in
  let mt_cell kind = Library.variant lib kind Vth.Low Vth.Mt_vgnd in
  let dff_qs d =
    let qs = ref [] in
    Netlist.iter_insts nl (fun iid ->
        if
          (Netlist.cell nl iid).Smt_cell.Cell.kind = Func.Dff
          && Netlist.inst_domain nl iid = Some d
        then
          match Netlist.output_net nl iid with
          | Some q -> qs := q :: !qs
          | None -> ());
    List.rev !qs
  in
  (* crossing ring: domain i exports one net to a reader in domain i+1 *)
  let holder_cell = Library.holder lib in
  let k = List.length doms in
  List.iteri
    (fun i di ->
      let dj = List.nth doms ((i + 1) mod k) in
      let ei = List.assoc di enable in
      let q1, q2 =
        match dff_qs di with
        | a :: b :: _ -> (a, b)
        | [ a ] -> (a, a)
        | [] -> invalid_arg "Suite.multi_domain: block without flip-flops"
      in
      let xnet = Netlist.fresh_net nl ("xn_" ^ di) in
      let xg =
        Netlist.add_inst nl
          ~name:(Netlist.fresh_inst_name nl ("xg_" ^ di))
          (mt_cell Func.Nand2)
          [ ("A", q1); ("B", q2); ("Z", xnet) ]
      in
      Netlist.set_inst_domain nl xg (Some di);
      (* declared isolation at the boundary, clamped by the source
         domain's own enable *)
      let iso =
        Netlist.add_inst nl
          ~name:(Netlist.fresh_inst_name nl ("iso_" ^ di))
          holder_cell
          [ ("MTE", ei); ("Z", xnet) ]
      in
      Netlist.set_isolation nl iso true;
      let qj =
        match dff_qs dj with q :: _ -> q | [] -> assert false
      in
      let rnet = Netlist.fresh_net nl ("xr_" ^ dj) in
      let rg =
        Netlist.add_inst nl
          ~name:(Netlist.fresh_inst_name nl ("rg_" ^ dj ^ "_" ^ di))
          (mt_cell Func.Nand2)
          [ ("A", xnet); ("B", qj); ("Z", rnet) ]
      in
      Netlist.set_inst_domain nl rg (Some dj);
      (* land the crossing in a register of the reading domain *)
      let qn = Netlist.fresh_net nl ("xq_" ^ dj) in
      let dff =
        Netlist.add_inst nl
          ~name:(Netlist.fresh_inst_name nl ("xdff_" ^ dj))
          (lv_cell lib Func.Dff)
          [ ("D", rnet); ("CK", clk); ("Q", qn) ]
      in
      Netlist.set_inst_domain nl dff (Some dj);
      Netlist.mark_output nl qn)
    doms;
  (* one sleep switch per domain, gating every MT member *)
  List.iter
    (fun (d, e) ->
      let members = ref [] in
      Netlist.iter_insts nl (fun iid ->
          if
            Vth.style_equal (Netlist.cell nl iid).Smt_cell.Cell.style Vth.Mt_vgnd
            && Netlist.inst_domain nl iid = Some d
          then members := iid :: !members);
      let sw =
        Netlist.add_inst nl
          ~name:(Netlist.fresh_inst_name nl ("sw_" ^ d))
          (Library.switch lib ~width:4.0)
          [ ("MTE", e) ]
      in
      Netlist.set_inst_domain nl sw (Some d);
      List.iter (fun m -> Netlist.set_vgnd_switch nl m (Some sw)) (List.rev !members))
    enable;
  (* output holders wherever a held value leaves MT logic, enabled by
     the source domain's own enable *)
  Netlist.iter_nets nl (fun nid ->
      if Smt_netlist.Check.holder_required nl nid && Netlist.holder_of nl nid = None then
        match Netlist.driver nl nid with
        | Some dp -> (
          match Netlist.inst_domain nl dp.Netlist.inst with
          | Some d ->
            let e = List.assoc d enable in
            ignore
              (Netlist.add_inst nl
                 ~name:(Netlist.fresh_inst_name nl ("hold_" ^ d))
                 holder_cell
                 [ ("MTE", e); ("Z", nid) ])
          | None -> ())
        | None -> ());
  ignore (Netlist.drain_touched nl);
  nl

let all =
  [
    ("circuit_a", circuit_a);
    ("circuit_b", circuit_b);
    ("c17", Generators.c17);
    ("tiny", tiny);
    ("fig23", fig23_example);
    ("mult8", fun lib -> Generators.multiplier ~name:"mult8" ~bits:8 lib);
    ("alu8", fun lib -> Generators.alu ~name:"alu8" ~bits:8 lib);
    ("adder16", fun lib -> Generators.ripple_adder ~name:"adder16" ~bits:16 lib);
    ("counter12", fun lib -> Generators.counter ~name:"counter12" ~bits:12 lib);
    ("ks16", fun lib -> Generators.kogge_stone ~name:"ks16" ~bits:16 lib);
    ("crc16", fun lib -> Generators.crc ~name:"crc16" ~bits:16 ~taps:[ 2; 15 ] lib);
    ( "pipe4x16",
      fun lib -> Generators.pipeline ~name:"pipe4x16" ~stages:4 ~width:16 ~stage_depth:6 lib );
    ( "soc",
      fun lib ->
        Smt_netlist.Compose.merge ~name:"soc"
          [
            ("dp", Generators.multiplier ~name:"mult" ~bits:8 lib);
            ("alu", Generators.alu ~name:"alu" ~bits:8 lib);
            ("crc", Generators.crc ~name:"crc" ~bits:16 ~taps:[ 2; 15 ] lib);
          ] );
    ("domains2", fun lib -> multi_domain ~domains:2 ~name:"domains2" lib);
    ("domains3", fun lib -> multi_domain ~domains:3 ~name:"domains3" lib);
    ("domains4", fun lib -> multi_domain ~domains:4 ~name:"domains4" lib);
  ]

let is_multi_domain name = String.length name > 7 && String.sub name 0 7 = "domains"
