(** Seeded fault injection.

    Each fault class corrupts a healthy post-MT design the way real flow
    bugs (or hand edits to an emitted netlist) do: a sleep switch vanishes,
    a holder is dropped, a library entry goes NaN, the MTE tree loses a
    branch, a whole cluster is orphaned, a footer degenerates to zero
    width, a net loses its driver.  The harness exists to prove the
    checkers' combined coverage: for every class, [expected_codes] lists
    the {!Smt_check.Violation.code}s that [Smt_check.Drc.check] must
    report after the injection, [expected_rules] lists the
    {!Smt_verify.Rules} ids the semantic standby pass must report, and
    [repairable] says whether [Smt_check.Repair.repair] must then restore
    a clean report.

    The last four classes are {e semantic-only}: the mutated netlist is
    structurally flawless (every DRC rule passes), and only the
    value-level standby analysis can see the bug — a keeper wired to the
    wrong net behind an accurate-looking record, a sleep switch whose
    enable is inverted so its cluster never sleeps, a deleted isolation
    clamp at a power-domain boundary, and an isolation clamp enabled by
    the wrong domain's sleep vector. *)

type fault =
  | Drop_switch  (** remove a sleep switch out from under its members *)
  | Disconnect_holder  (** delete a required output holder *)
  | Poison_library  (** corrupt an instance's cell data with NaN leakage *)
  | Break_mte_fanout  (** disconnect one MTE pin from the enable tree *)
  | Orphan_cluster  (** detach every member of one cluster from its switch *)
  | Zero_width_switch  (** degrade a footer to zero width *)
  | Undrive_net  (** disconnect a driving output, leaving sinks floating *)
  | Holder_wrong_net
      (** rewire a required keeper's Z pin to a safe net, keeping the
          [holder_of] record on the original — DRC-invisible *)
  | Invert_mte_polarity
      (** splice an inverter into one switch's enable — DRC-invisible *)
  | Drop_isolation
      (** delete a declared isolation clamp at a domain boundary whose net
          is not [holder_required] — DRC-invisible, needs domains *)
  | Isolation_enable_cross
      (** rewire an isolation clamp's enable to another domain's enable
          net — DRC-invisible, needs domains *)

val all : fault list

val name : fault -> string
val of_name : string -> fault option

val expected_codes : fault -> Smt_check.Violation.code list
(** Violation classes the structural checker must report once this fault
    is live; at least one of them must appear (test-enforced).  Empty for
    the semantic-only classes — and the tests also enforce that
    emptiness: the DRC must {e not} grow errors on those. *)

val expected_rules : fault -> string list
(** {!Smt_verify.Rules} ids the semantic pass must report once this
    fault is live; at least one must appear (test-enforced).  Empty when
    only the structural checker is guaranteed to see the class. *)

val repairable : fault -> bool
(** Whether the repair pass must be able to clear every expected violation
    of this class. *)

val requires_domains : fault -> bool
(** Whether the class only applies to multi-domain designs (declared
    power domains plus isolation clamps); injection on a single-domain
    netlist returns [None].  Coverage tests use a
    {!Smt_circuits.Suite.multi_domain} fixture for these. *)

type injection = {
  fault : fault;
  target : string;  (** instance or net the fault landed on *)
  detail : string;
}

val inject : seed:int -> Smt_netlist.Netlist.t -> fault -> injection option
(** Mutate the netlist with one seeded instance of the fault.  [None] when
    the design offers no applicable site (e.g. [Drop_switch] on a
    switchless Dual-Vth netlist); the netlist is untouched in that case. *)
