module Netlist = Smt_netlist.Netlist
module Nl_check = Smt_netlist.Check
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Rng = Smt_util.Rng
module V = Smt_check.Violation
module Rules = Smt_verify.Rules

type fault =
  | Drop_switch
  | Disconnect_holder
  | Poison_library
  | Break_mte_fanout
  | Orphan_cluster
  | Zero_width_switch
  | Undrive_net
  | Holder_wrong_net
  | Invert_mte_polarity
  | Drop_isolation
  | Isolation_enable_cross

let all =
  [
    Drop_switch; Disconnect_holder; Poison_library; Break_mte_fanout;
    Orphan_cluster; Zero_width_switch; Undrive_net; Holder_wrong_net;
    Invert_mte_polarity; Drop_isolation; Isolation_enable_cross;
  ]

let name = function
  | Drop_switch -> "drop-switch"
  | Disconnect_holder -> "disconnect-holder"
  | Poison_library -> "poison-library"
  | Break_mte_fanout -> "break-mte-fanout"
  | Orphan_cluster -> "orphan-cluster"
  | Zero_width_switch -> "zero-width-switch"
  | Undrive_net -> "undrive-net"
  | Holder_wrong_net -> "holder-wrong-net"
  | Invert_mte_polarity -> "invert-mte-polarity"
  | Drop_isolation -> "drop-isolation"
  | Isolation_enable_cross -> "isolation-enable-cross"

let of_name s = List.find_opt (fun f -> String.equal (name f) s) all

let expected_codes = function
  | Drop_switch -> [ V.Unreachable_vgnd ]
  | Disconnect_holder -> [ V.Missing_holder ]
  | Poison_library -> [ V.Bad_cell_data ]
  | Break_mte_fanout -> [ V.Floating_input ]
  | Orphan_cluster -> [ V.Unreachable_vgnd; V.Orphan_switch ]
  | Zero_width_switch -> [ V.Degenerate_switch ]
  | Undrive_net -> [ V.Undriven_net ]
  | Holder_wrong_net | Invert_mte_polarity | Drop_isolation
  | Isolation_enable_cross ->
    []

(* Rule ids the semantic pass must report; referenced through the
   catalog so a rule rename cannot silently break the mapping. *)
let expected_rules = function
  | Drop_switch | Poison_library | Break_mte_fanout | Orphan_cluster
  | Zero_width_switch | Undrive_net ->
    []
  | Disconnect_holder -> [ Rules.float_into_awake.Rules.id ]
  | Holder_wrong_net ->
    [ Rules.float_into_awake.Rules.id; Rules.useless_holder.Rules.id ]
  | Invert_mte_polarity -> [ Rules.mte_polarity.Rules.id ]
  | Drop_isolation -> [ Rules.missing_isolation.Rules.id ]
  | Isolation_enable_cross -> [ Rules.isolation_enable_off_domain.Rules.id ]

let repairable = function
  | Drop_switch | Disconnect_holder | Poison_library | Break_mte_fanout
  | Orphan_cluster | Zero_width_switch ->
    true
  | Undrive_net | Holder_wrong_net | Invert_mte_polarity | Drop_isolation
  | Isolation_enable_cross ->
    false

let requires_domains = function
  | Drop_isolation | Isolation_enable_cross -> true
  | _ -> false

type injection = {
  fault : fault;
  target : string;
  detail : string;
}

let pick_opt rng = function
  | [] -> None
  | xs -> Some (List.nth xs (Rng.int rng (List.length xs)))

(* Switches that actually gate MT-cells: dropping or detaching those is
   what makes the fault observable. *)
let populated_switches = Smt_check.Walk.populated_switches

let inject ~seed nl fault =
  let rng = Rng.create (0x0fa17 + seed) in
  let made target detail = Some { fault; target; detail } in
  match fault with
  | Drop_switch -> (
    match pick_opt rng (populated_switches nl) with
    | None -> None
    | Some sw ->
      let target = Netlist.inst_name nl sw in
      let members = List.length (Netlist.switch_members nl sw) in
      Netlist.remove_inst nl sw;
      made target (Printf.sprintf "removed switch gating %d MT-cells" members))
  | Disconnect_holder -> (
    let held = ref [] in
    Netlist.iter_nets nl (fun nid ->
        match Netlist.holder_of nl nid with
        | Some h when Nl_check.holder_required nl nid -> held := (nid, h) :: !held
        | Some _ | None -> ());
    match pick_opt rng !held with
    | None -> None
    | Some (nid, h) ->
      let target = Netlist.net_name nl nid in
      let hname = Netlist.inst_name nl h in
      Netlist.remove_inst nl h;
      made target (Printf.sprintf "deleted required holder %s" hname))
  | Poison_library -> (
    let logic =
      List.filter
        (fun iid ->
          let k = (Netlist.cell nl iid).Cell.kind in
          (not (Func.is_infrastructure k)) && not (Func.is_sequential k))
        (Netlist.live_insts nl)
    in
    match pick_opt rng logic with
    | None -> None
    | Some iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid { c with Cell.leak_standby = Float.nan };
      made (Netlist.inst_name nl iid)
        (Printf.sprintf "poisoned cell %s with NaN standby leakage" c.Cell.name))
  | Break_mte_fanout -> (
    match Netlist.find_net nl "MTE" with
    | None -> None
    | Some mte -> (
      match pick_opt rng (Netlist.sinks nl mte) with
      | None -> None
      | Some (pin : Netlist.pin) ->
        Netlist.disconnect nl pin.Netlist.inst pin.Netlist.pin_name;
        made
          (Netlist.inst_name nl pin.Netlist.inst)
          (Printf.sprintf "disconnected pin %s from the MTE net" pin.Netlist.pin_name)))
  | Orphan_cluster -> (
    match pick_opt rng (populated_switches nl) with
    | None -> None
    | Some sw ->
      let members = Netlist.switch_members nl sw in
      List.iter (fun iid -> Netlist.set_vgnd_switch nl iid None) members;
      made (Netlist.inst_name nl sw)
        (Printf.sprintf "detached all %d members from their switch" (List.length members)))
  | Zero_width_switch -> (
    match pick_opt rng (Netlist.switches nl) with
    | None -> None
    | Some sw ->
      let c = Netlist.cell nl sw in
      Netlist.replace_cell nl sw { c with Cell.switch_width = 0.0 };
      made (Netlist.inst_name nl sw) "degraded footer to zero width")
  | Undrive_net -> (
    let drivers =
      List.filter
        (fun iid ->
          match Netlist.output_net nl iid with
          | Some out ->
            Netlist.sinks nl out <> []
            && not (Func.is_infrastructure (Netlist.cell nl iid).Cell.kind)
          | None -> false)
        (Netlist.live_insts nl)
    in
    match pick_opt rng drivers with
    | None -> None
    | Some iid ->
      let out_pin = (Func.output_names (Netlist.cell nl iid).Cell.kind).(0) in
      let net =
        match Netlist.output_net nl iid with
        | Some out -> Netlist.net_name nl out
        | None -> "?"
      in
      Netlist.disconnect nl iid out_pin;
      made net (Printf.sprintf "disconnected driver %s.%s" (Netlist.inst_name nl iid) out_pin))
  | Holder_wrong_net -> (
    (* Rewire a required keeper's Z pin to a net that never floats,
       then restore the bookkeeping record on the original net.  Every
       structural rule still passes — the record points at a live
       HOLDER, all pins are connected — but the silicon follows the
       wires: the recorded net is unguarded in standby.  Only a
       value-level analysis working from the Z pin can see it. *)
    let held = ref [] in
    Netlist.iter_nets nl (fun nid ->
        match Netlist.holder_of nl nid with
        | Some h when Nl_check.holder_required nl nid && not (Netlist.is_dead nl h) ->
          held := (nid, h) :: !held
        | Some _ | None -> ());
    match pick_opt rng (List.rev !held) with
    | None -> None
    | Some (nid, h) -> (
      let dests = ref [] in
      Netlist.iter_nets nl (fun d ->
          if
            d <> nid
            && Netlist.holder_of nl d = None
            && (not (Netlist.is_clock_net nl d))
            &&
            match Netlist.driver nl d with
            | Some p -> not (Cell.is_mt (Netlist.cell nl p.Netlist.inst))
            | None -> false
          then dests := d :: !dests);
      match pick_opt rng (List.rev !dests) with
      | None -> None
      | Some dest ->
        Netlist.disconnect nl h "Z";
        Netlist.connect nl h "Z" dest;
        (* the wires now guard [dest]; the stale record still claims [nid] *)
        Netlist.set_holder nl dest None;
        Netlist.set_holder nl nid (Some h);
        made (Netlist.net_name nl nid)
          (Printf.sprintf "moved keeper %s to net %s; record still claims %s"
             (Netlist.inst_name nl h) (Netlist.net_name nl dest)
             (Netlist.net_name nl nid))))
  | Invert_mte_polarity -> (
    (* Splice an inverter into one switch's enable.  Structurally
       flawless — every pin connected, the new net driven and read —
       but that cluster's footer is on whenever the design sleeps. *)
    match pick_opt rng (populated_switches nl) with
    | None -> None
    | Some sw -> (
      match Netlist.pin_net nl sw "MTE" with
      | None -> None
      | Some m ->
        let inv = Library.variant (Netlist.lib nl) Func.Inv Vth.High Vth.Plain in
        let nname = Netlist.fresh_net nl "mte_n" in
        let iname = Netlist.fresh_inst_name nl "mte_inv" in
        ignore (Netlist.add_inst nl ~name:iname inv [ ("A", m); ("Z", nname) ]);
        Netlist.disconnect nl sw "MTE";
        Netlist.connect nl sw "MTE" nname;
        made (Netlist.inst_name nl sw)
          (Printf.sprintf "inverted enable polarity via %s" iname)))
  | Drop_isolation -> (
    (* Delete a declared isolation clamp at a domain boundary.  The net
       is not [holder_required] — every sink is an MT cell — so no
       structural rule misses the keeper; only the mode-vector analysis
       sees the crossing float into the awake side. *)
    let isos = ref [] in
    Netlist.iter_insts nl (fun iid ->
        if Netlist.is_isolation nl iid then
          match Netlist.pin_net nl iid "Z" with
          | Some nid when not (Nl_check.holder_required nl nid) ->
            isos := (nid, iid) :: !isos
          | Some _ | None -> ());
    match pick_opt rng (List.rev !isos) with
    | None -> None
    | Some (nid, iid) ->
      let target = Netlist.net_name nl nid in
      let iname = Netlist.inst_name nl iid in
      Netlist.remove_inst nl iid;
      made target (Printf.sprintf "deleted isolation holder %s" iname))
  | Isolation_enable_cross -> (
    (* Rewire a declared isolation clamp's enable to a different
       domain's enable net.  Structurally flawless — the pin is still
       driven by a primary input — but the clamp now engages with the
       wrong domain's sleep vector. *)
    let dom_of_net nid =
      match Netlist.driver nl nid with
      | Some p -> Netlist.inst_domain nl p.Netlist.inst
      | None -> None
    in
    let sites = ref [] in
    Netlist.iter_insts nl (fun iid ->
        if Netlist.is_isolation nl iid then
          match Netlist.pin_net nl iid "Z" with
          | Some nid -> (
            match dom_of_net nid with
            | Some d -> (
              let foreign =
                List.filter_map
                  (fun (dn, mte) -> if dn <> d then mte else None)
                  (Netlist.domains nl)
              in
              match foreign with
              | [] -> ()
              | m :: _ -> sites := (iid, m) :: !sites)
            | None -> ())
          | None -> ());
    match pick_opt rng (List.rev !sites) with
    | None -> None
    | Some (iid, m) ->
      Netlist.connect nl iid "MTE" m;
      made (Netlist.inst_name nl iid)
        (Printf.sprintf "rewired isolation enable to %s" (Netlist.net_name nl m)))
