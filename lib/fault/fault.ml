module Netlist = Smt_netlist.Netlist
module Nl_check = Smt_netlist.Check
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Rng = Smt_util.Rng
module V = Smt_check.Violation

type fault =
  | Drop_switch
  | Disconnect_holder
  | Poison_library
  | Break_mte_fanout
  | Orphan_cluster
  | Zero_width_switch
  | Undrive_net

let all =
  [
    Drop_switch; Disconnect_holder; Poison_library; Break_mte_fanout;
    Orphan_cluster; Zero_width_switch; Undrive_net;
  ]

let name = function
  | Drop_switch -> "drop-switch"
  | Disconnect_holder -> "disconnect-holder"
  | Poison_library -> "poison-library"
  | Break_mte_fanout -> "break-mte-fanout"
  | Orphan_cluster -> "orphan-cluster"
  | Zero_width_switch -> "zero-width-switch"
  | Undrive_net -> "undrive-net"

let of_name s = List.find_opt (fun f -> String.equal (name f) s) all

let expected_codes = function
  | Drop_switch -> [ V.Unreachable_vgnd ]
  | Disconnect_holder -> [ V.Missing_holder ]
  | Poison_library -> [ V.Bad_cell_data ]
  | Break_mte_fanout -> [ V.Floating_input ]
  | Orphan_cluster -> [ V.Unreachable_vgnd; V.Orphan_switch ]
  | Zero_width_switch -> [ V.Degenerate_switch ]
  | Undrive_net -> [ V.Undriven_net ]

let repairable = function
  | Drop_switch | Disconnect_holder | Poison_library | Break_mte_fanout
  | Orphan_cluster | Zero_width_switch ->
    true
  | Undrive_net -> false

type injection = {
  fault : fault;
  target : string;
  detail : string;
}

let pick_opt rng = function
  | [] -> None
  | xs -> Some (List.nth xs (Rng.int rng (List.length xs)))

(* Switches that actually gate MT-cells: dropping or detaching those is
   what makes the fault observable. *)
let populated_switches nl =
  List.filter_map
    (fun (sw, members) -> if members <> [] then Some sw else None)
    (Netlist.switch_groups nl)

let inject ~seed nl fault =
  let rng = Rng.create (0x0fa17 + seed) in
  let made target detail = Some { fault; target; detail } in
  match fault with
  | Drop_switch -> (
    match pick_opt rng (populated_switches nl) with
    | None -> None
    | Some sw ->
      let target = Netlist.inst_name nl sw in
      let members = List.length (Netlist.switch_members nl sw) in
      Netlist.remove_inst nl sw;
      made target (Printf.sprintf "removed switch gating %d MT-cells" members))
  | Disconnect_holder -> (
    let held = ref [] in
    Netlist.iter_nets nl (fun nid ->
        match Netlist.holder_of nl nid with
        | Some h when Nl_check.holder_required nl nid -> held := (nid, h) :: !held
        | Some _ | None -> ());
    match pick_opt rng !held with
    | None -> None
    | Some (nid, h) ->
      let target = Netlist.net_name nl nid in
      let hname = Netlist.inst_name nl h in
      Netlist.remove_inst nl h;
      made target (Printf.sprintf "deleted required holder %s" hname))
  | Poison_library -> (
    let logic =
      List.filter
        (fun iid ->
          let k = (Netlist.cell nl iid).Cell.kind in
          (not (Func.is_infrastructure k)) && not (Func.is_sequential k))
        (Netlist.live_insts nl)
    in
    match pick_opt rng logic with
    | None -> None
    | Some iid ->
      let c = Netlist.cell nl iid in
      Netlist.replace_cell nl iid { c with Cell.leak_standby = Float.nan };
      made (Netlist.inst_name nl iid)
        (Printf.sprintf "poisoned cell %s with NaN standby leakage" c.Cell.name))
  | Break_mte_fanout -> (
    match Netlist.find_net nl "MTE" with
    | None -> None
    | Some mte -> (
      match pick_opt rng (Netlist.sinks nl mte) with
      | None -> None
      | Some (pin : Netlist.pin) ->
        Netlist.disconnect nl pin.Netlist.inst pin.Netlist.pin_name;
        made
          (Netlist.inst_name nl pin.Netlist.inst)
          (Printf.sprintf "disconnected pin %s from the MTE net" pin.Netlist.pin_name)))
  | Orphan_cluster -> (
    match pick_opt rng (populated_switches nl) with
    | None -> None
    | Some sw ->
      let members = Netlist.switch_members nl sw in
      List.iter (fun iid -> Netlist.set_vgnd_switch nl iid None) members;
      made (Netlist.inst_name nl sw)
        (Printf.sprintf "detached all %d members from their switch" (List.length members)))
  | Zero_width_switch -> (
    match pick_opt rng (Netlist.switches nl) with
    | None -> None
    | Some sw ->
      let c = Netlist.cell nl sw in
      Netlist.replace_cell nl sw { c with Cell.switch_width = 0.0 };
      made (Netlist.inst_name nl sw) "degraded footer to zero width")
  | Undrive_net -> (
    let drivers =
      List.filter
        (fun iid ->
          match Netlist.output_net nl iid with
          | Some out ->
            Netlist.sinks nl out <> []
            && not (Func.is_infrastructure (Netlist.cell nl iid).Cell.kind)
          | None -> false)
        (Netlist.live_insts nl)
    in
    match pick_opt rng drivers with
    | None -> None
    | Some iid ->
      let out_pin = (Func.output_names (Netlist.cell nl iid).Cell.kind).(0) in
      let net =
        match Netlist.output_net nl iid with
        | Some out -> Netlist.net_name nl out
        | None -> "?"
      in
      Netlist.disconnect nl iid out_pin;
      made net (Printf.sprintf "disconnected driver %s.%s" (Netlist.inst_name nl iid) out_pin))
