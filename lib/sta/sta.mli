(** Block-based static timing analysis.

    Setup model: data launched at flip-flop clock pins (or primary inputs at
    time [input_arrival]) must arrive at capturing flip-flop D pins by
    [clock_period - setup + clock_latency] and at primary outputs by
    [clock_period - output_margin].  Hold model: the earliest arrival at a D
    pin must exceed [clock_latency + hold + hold_margin].

    MT-cells are derated by the voltage bounce of their virtual-ground line
    ([bounce_of]), which is how the switch-sizing constraint ("bounce below
    the designer's limit") connects to timing closure. *)

type config = {
  clock_period : float;  (** ps *)
  wire : Wire.t;
  bounce_of : Smt_netlist.Netlist.inst_id -> float;  (** volts on the cell's VGND *)
  clock_latency : Smt_netlist.Netlist.inst_id -> float;  (** ps to each FF clock pin *)
  input_arrival : float;
  output_margin : float;
  hold_margin : float;
  slew_model : Smt_cell.Nldm.store option;
      (** when set, delays come from NLDM tables and slew propagates;
          when [None], the plain linear model is used (slew-less) *)
}

val config : ?wire:Wire.t -> ?slew_aware:bool -> clock_period:float -> unit -> config
(** Defaults: ideal wires, zero bounce, zero clock latency and margins,
    linear (slew-less) delays. [slew_aware:true] enables the NLDM path. *)

type endpoint_kind =
  | Ff_data of Smt_netlist.Netlist.inst_id
  | Primary_output of string

type endpoint = {
  kind : endpoint_kind;
  net : Smt_netlist.Netlist.net_id;
  arrival : float;
  required : float;
  slack : float;
  hold_slack : float;
}

type t

val analyze : config -> Smt_netlist.Netlist.t -> t
(** Raises [Smt_netlist.Netlist.Combinational_cycle] on cyclic logic. *)

val netlist : t -> Smt_netlist.Netlist.t

val arrival : t -> Smt_netlist.Netlist.net_id -> float
(** Worst (max) arrival at the net's driver output; 0 for clock nets. *)

val slew : t -> Smt_netlist.Netlist.net_id -> float
(** Output slew at the net's driver (the default input slew under the
    linear model or at sources). *)

val required : t -> Smt_netlist.Netlist.net_id -> float
val net_slack : t -> Smt_netlist.Netlist.net_id -> float

val inst_slack : t -> Smt_netlist.Netlist.inst_id -> float
(** Setup slack of the instance's output net; [infinity] when it has none
    (flip-flops report the min of their D-endpoint and Q-net slacks). *)

val endpoints : t -> endpoint list
val wns : t -> float
(** Worst negative slack (positive when timing is met: this is the worst
    slack, whatever its sign). *)

val tns : t -> float
(** Total negative slack (0 when met). *)

val worst_hold_slack : t -> float
val meets_timing : t -> bool
val meets_hold : t -> bool

val load_of_net : config -> Smt_netlist.Netlist.t -> Smt_netlist.Netlist.net_id -> float
(** Capacitive load seen by the net's driver (pins + wire), fF. *)

val cell_delay : config -> Smt_netlist.Netlist.t -> Smt_netlist.Netlist.inst_id -> float
(** The instance's gate delay into its current load, bounce included. *)

val used_delay : t -> Smt_netlist.Netlist.inst_id -> float
(** The delay the analysis actually used for the instance (slew effects
    included under the NLDM model); 0 for instances with no output. *)

type path_step = {
  step_inst : Smt_netlist.Netlist.inst_id option;  (** [None] at a primary input *)
  step_net : Smt_netlist.Netlist.net_id;
  step_arrival : float;
}

val critical_path : t -> path_step list
(** Worst setup path, launch to capture, empty if there are no endpoints. *)

val path_to : t -> endpoint -> path_step list
(** Backtrace of the worst path into the given endpoint. *)

val worst_endpoints : t -> int -> endpoint list
(** The [k] smallest-slack endpoints, ascending by slack. *)

(** One hop of a critical path: the gate driving [arc_net] (or the launch
    point when [arc_inst] is [None]) together with how its arrival was
    built up.  Delay attribution: [arc_cell_delay] is the gate delay the
    analysis used for the driving instance (bounce derate and slew effects
    included); [arc_wire_delay] is the residual over the previous arc's
    arrival — the interconnect delay of the hop into the gate, and, on the
    launch arc, the clock latency (flip-flop source) or configured input
    arrival. *)
type path_arc = {
  arc_inst : Smt_netlist.Netlist.inst_id option;
  arc_net : Smt_netlist.Netlist.net_id;
  arc_cell_delay : float;
  arc_wire_delay : float;
  arc_arrival : float;  (** worst arrival at the net's driver output *)
  arc_slew : float;  (** output slew at the net's driver *)
}

(** A worst setup path as a structured record: the arcs launch-to-capture
    plus the final hop into the endpoint pin.  Invariant:
    [sum (cell + wire) over arcs + capture_wire = endpoint.arrival]. *)
type path = {
  path_endpoint : endpoint;
  path_arcs : path_arc list;  (** launch first *)
  path_capture_wire : float;  (** wire delay of the last hop into the endpoint pin *)
}

val worst_paths : t -> int -> path list
(** Structured reports of the [k] worst setup paths, ascending by slack —
    the first path's slack is {!wns}.  The "why" behind every WNS number
    the flow prints. *)

val path_report : t -> endpoint -> path
(** The structured worst path into one endpoint. *)

val endpoint_name : t -> endpoint -> string
(** [inst/D] for a flip-flop data pin, the port name for a primary
    output. *)

val update : t -> changed:Smt_netlist.Netlist.inst_id list -> t
(** Incremental re-analysis after cell swaps that do not alter connectivity
    (Vth/MT restyling, drive resizing): arrivals are recomputed only inside
    the downstream cone of the changed instances — plus the fanin cones of
    cells whose load changed — and required times are rebuilt.  The result
    equals [analyze cfg nl] on the mutated netlist.  Topology changes
    (added/removed instances or rewired pins) require a fresh [analyze]. *)
