module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Nldm = Smt_cell.Nldm
module Metrics = Smt_obs.Metrics

let m_analyses = Metrics.counter "sta.analyses"
let m_incremental = Metrics.counter "sta.incremental_updates"
let m_arrival_evals = Metrics.counter "sta.arrival_evals"

(* Arrival evaluations per incremental update: the cost distribution of
   [update] calls, deterministic where wall-clock is not.  Buckets span
   one touched gate to full-netlist recompute territory. *)
let m_update_evals =
  Metrics.histogram
    ~buckets:[ 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0; 10000.0; 30000.0 ]
    "sta.update_evals"

type config = {
  clock_period : float;
  wire : Wire.t;
  bounce_of : Netlist.inst_id -> float;
  clock_latency : Netlist.inst_id -> float;
  input_arrival : float;
  output_margin : float;
  hold_margin : float;
  slew_model : Nldm.store option;
}

let config ?(wire = Wire.zero) ?(slew_aware = false) ~clock_period () =
  {
    clock_period;
    wire;
    bounce_of = (fun _ -> 0.0);
    clock_latency = (fun _ -> 0.0);
    input_arrival = 0.0;
    output_margin = 0.0;
    hold_margin = 0.0;
    slew_model = (if slew_aware then Some (Nldm.store ()) else None);
  }

type endpoint_kind = Ff_data of Netlist.inst_id | Primary_output of string

type endpoint = {
  kind : endpoint_kind;
  net : Netlist.net_id;
  arrival : float;
  required : float;
  slack : float;
  hold_slack : float;
}

type t = {
  cfg : config;
  nl : Netlist.t;
  order : Netlist.inst_id list;
  loads : float array;  (* per net, capacitive load seen by the driver *)
  at_max : float array;  (* per net, at driver output *)
  at_min : float array;
  at_slew : float array;  (* per net, output slew at the driver *)
  inst_delay : float array;  (* per inst, the delay forward used *)
  rat : float array;  (* per net, setup-based required *)
  from_net : int array;  (* worst predecessor net, -1 if source *)
  via_inst : int array;  (* instance between from_net and this net, -1 at sources *)
  eps : endpoint list;
}

let netlist t = t.nl

let po_pin_cap = 4.0

let load_of_net cfg nl nid =
  let pin_caps =
    List.fold_left
      (fun acc (p : Netlist.pin) -> acc +. (Netlist.cell nl p.Netlist.inst).Cell.input_cap)
      0.0 (Netlist.sinks nl nid)
  in
  let holder_cap =
    match Netlist.holder_of nl nid with
    | Some h -> (Netlist.cell nl h).Cell.input_cap
    | None -> 0.0
  in
  let po_cap = if Netlist.is_po nl nid then po_pin_cap else 0.0 in
  pin_caps +. holder_cap +. po_cap +. cfg.wire.Wire.net_cap nid

let cell_delay cfg nl iid =
  let cell = Netlist.cell nl iid in
  let load = match Netlist.output_net nl iid with
    | Some out -> load_of_net cfg nl out
    | None -> 0.0
  in
  Cell.delay_with_bounce
    (Smt_cell.Library.tech (Netlist.lib nl))
    cell ~load_ff:load ~bounce_v:(cfg.bounce_of iid)

(* Per-net loads for one (re)analysis: every [gate_timing] call during
   seed/forward used to re-fold its output net's sink list; one pass here
   makes that an array read, and [update] invalidates only the nets
   adjacent to the changed instances. *)
let compute_loads cfg nl =
  let loads = Array.make (Netlist.net_count nl) 0.0 in
  Netlist.iter_nets nl (fun nid -> loads.(nid) <- load_of_net cfg nl nid);
  loads

(* Gate delay and output slew under the configured model, at the given
   worst input slew.  The VGND bounce derate applies to either model. *)
let gate_timing cfg nl ~loads iid ~in_slew =
  Metrics.incr m_arrival_evals;
  let cell = Netlist.cell nl iid in
  let load = match Netlist.output_net nl iid with
    | Some out -> loads.(out)
    | None -> 0.0
  in
  let tech = Smt_cell.Library.tech (Netlist.lib nl) in
  let derate =
    if Cell.is_mt cell then Cell.bounce_derate tech ~bounce_v:(cfg.bounce_of iid) else 1.0
  in
  match cfg.slew_model with
  | None -> (Cell.delay cell ~load_ff:load *. derate, Nldm.default_input_slew)
  | Some store ->
    let arcs = Nldm.arcs_of store cell in
    ( Nldm.lookup arcs.Nldm.delay ~slew:in_slew ~load *. derate,
      Nldm.lookup arcs.Nldm.out_slew ~slew:in_slew ~load )

(* Data pins of an instance: logic inputs (D for flip-flops); CK and MTE are
   not data. *)
let data_input_pins cell = Func.input_names cell.Cell.kind

(* Seed flip-flop Q arrivals from the clock; [mask] limits the work to a
   subset of flip-flops (None = all). *)
let seed_sources cfg nl ~loads ~at_max ~at_min ~at_slew ~inst_delay ~via_inst ~mask =
  Netlist.iter_nets nl (fun nid ->
      if Netlist.is_clock_net nl nid then begin
        at_max.(nid) <- 0.0;
        at_min.(nid) <- 0.0;
        at_slew.(nid) <- Nldm.default_input_slew
      end
      else if Netlist.is_pi nl nid then begin
        at_max.(nid) <- cfg.input_arrival;
        at_min.(nid) <- cfg.input_arrival;
        at_slew.(nid) <- Nldm.default_input_slew
      end);
  Netlist.iter_insts nl (fun iid ->
      let include_ff = match mask with None -> true | Some f -> f iid in
      let cell = Netlist.cell nl iid in
      if include_ff && cell.Cell.kind = Func.Dff then
        match Netlist.pin_net nl iid "Q" with
        | Some q ->
          let d, out_slew = gate_timing cfg nl ~loads iid ~in_slew:Nldm.default_input_slew in
          let lat = cfg.clock_latency iid in
          inst_delay.(iid) <- d;
          at_max.(q) <- lat +. d;
          at_min.(q) <- lat +. cell.Cell.intrinsic_delay;
          at_slew.(q) <- out_slew;
          via_inst.(q) <- iid
        | None -> ())

(* Forward propagation restricted to instances passing [mask]. *)
let forward cfg nl order ~loads ~at_max ~at_min ~at_slew ~inst_delay ~from_net ~via_inst ~mask =
  let pin_arrival_max nid pin =
    if at_max.(nid) = neg_infinity then cfg.input_arrival +. cfg.wire.Wire.net_delay nid pin
    else at_max.(nid) +. cfg.wire.Wire.net_delay nid pin
  in
  let pin_arrival_min nid pin =
    if at_min.(nid) = infinity then cfg.input_arrival +. cfg.wire.Wire.net_delay nid pin
    else at_min.(nid) +. cfg.wire.Wire.net_delay nid pin
  in
  List.iter
    (fun iid ->
      let included = match mask with None -> true | Some f -> f iid in
      if included then begin
        let cell = Netlist.cell nl iid in
        match Netlist.output_net nl iid with
        | None -> ()
        | Some out ->
          if not (Netlist.is_clock_net nl out) then begin
            let worst = ref neg_infinity and worst_src = ref (-1) in
            let earliest = ref infinity in
            let worst_slew = ref 0.0 in
            Array.iter
              (fun pin_name ->
                match Netlist.pin_net nl iid pin_name with
                | None -> ()
                | Some nid ->
                  let pin = { Netlist.inst = iid; Netlist.pin_name } in
                  let a = pin_arrival_max nid pin in
                  if a > !worst then begin
                    worst := a;
                    worst_src := nid
                  end;
                  let s =
                    if at_slew.(nid) > 0.0 then at_slew.(nid) else Nldm.default_input_slew
                  in
                  if s > !worst_slew then worst_slew := s;
                  let e = pin_arrival_min nid pin in
                  if e < !earliest then earliest := e)
              (data_input_pins cell);
            let in_slew =
              if !worst_slew > 0.0 then !worst_slew else Nldm.default_input_slew
            in
            let d, out_slew = gate_timing cfg nl ~loads iid ~in_slew in
            let base_max = if !worst = neg_infinity then cfg.input_arrival else !worst in
            let base_min = if !earliest = infinity then cfg.input_arrival else !earliest in
            inst_delay.(iid) <- d;
            at_max.(out) <- base_max +. d;
            at_min.(out) <- base_min +. cell.Cell.intrinsic_delay;
            at_slew.(out) <- out_slew;
            from_net.(out) <- !worst_src;
            via_inst.(out) <- iid
          end
      end)
    order

(* Endpoint list plus seed of the required-time array. *)
let endpoints_and_rat cfg nl ~at_max ~at_min ~rat =
  let eps = ref [] in
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      if cell.Cell.kind = Func.Dff then
        match Netlist.pin_net nl iid "D" with
        | None -> ()
        | Some d_net ->
          let pin = { Netlist.inst = iid; Netlist.pin_name = "D" } in
          let a =
            (if at_max.(d_net) = neg_infinity then cfg.input_arrival else at_max.(d_net))
            +. cfg.wire.Wire.net_delay d_net pin
          in
          let a_min =
            (if at_min.(d_net) = infinity then cfg.input_arrival else at_min.(d_net))
            +. cfg.wire.Wire.net_delay d_net pin
          in
          let lat = cfg.clock_latency iid in
          let req = cfg.clock_period +. lat -. cell.Cell.setup in
          let hold_slack = a_min -. (lat +. cell.Cell.hold +. cfg.hold_margin) in
          rat.(d_net) <- Float.min rat.(d_net) (req -. cfg.wire.Wire.net_delay d_net pin);
          eps :=
            {
              kind = Ff_data iid;
              net = d_net;
              arrival = a;
              required = req;
              slack = req -. a;
              hold_slack;
            }
            :: !eps);
  List.iter
    (fun (name, nid) ->
      if not (Netlist.is_clock_net nl nid) then begin
        let a = if at_max.(nid) = neg_infinity then cfg.input_arrival else at_max.(nid) in
        let req = cfg.clock_period -. cfg.output_margin in
        rat.(nid) <- Float.min rat.(nid) req;
        eps :=
          {
            kind = Primary_output name;
            net = nid;
            arrival = a;
            required = req;
            slack = req -. a;
            hold_slack = infinity;
          }
          :: !eps
      end)
    (Netlist.outputs nl);
  List.rev !eps

let backward cfg nl order ~rat ~inst_delay =
  List.iter
    (fun iid ->
      let cell = Netlist.cell nl iid in
      match Netlist.output_net nl iid with
      | None -> ()
      | Some out ->
        if not (Netlist.is_clock_net nl out) then begin
          let d = inst_delay.(iid) in
          Array.iter
            (fun pin_name ->
              match Netlist.pin_net nl iid pin_name with
              | None -> ()
              | Some nid ->
                let pin = { Netlist.inst = iid; Netlist.pin_name } in
                let r = rat.(out) -. d -. cfg.wire.Wire.net_delay nid pin in
                rat.(nid) <- Float.min rat.(nid) r)
            (data_input_pins cell)
        end)
    (List.rev order)

let analyze cfg nl =
  Metrics.incr m_analyses;
  let order = Netlist.topo_order nl in
  let nnets = Netlist.net_count nl in
  let at_max = Array.make nnets neg_infinity in
  let at_min = Array.make nnets infinity in
  let at_slew = Array.make nnets 0.0 in
  let inst_delay = Array.make (Netlist.inst_count nl) 0.0 in
  let rat = Array.make nnets infinity in
  let from_net = Array.make nnets (-1) in
  let via_inst = Array.make nnets (-1) in
  let loads = compute_loads cfg nl in
  seed_sources cfg nl ~loads ~at_max ~at_min ~at_slew ~inst_delay ~via_inst ~mask:None;
  forward cfg nl order ~loads ~at_max ~at_min ~at_slew ~inst_delay ~from_net ~via_inst
    ~mask:None;
  let eps = endpoints_and_rat cfg nl ~at_max ~at_min ~rat in
  backward cfg nl order ~rat ~inst_delay;
  { cfg; nl; order; loads; at_max; at_min; at_slew; inst_delay; rat; from_net; via_inst; eps }

(* The downstream combinational cone of the changed instances, extended
   upstream by one step through load coupling: a changed cell's new input
   capacitance alters the delay of whatever drives it. *)
let affected_insts nl changed =
  let n = Netlist.inst_count nl in
  let touched = Array.make n false in
  let queue = Queue.create () in
  let enqueue iid =
    if iid >= 0 && iid < n && not touched.(iid) then begin
      touched.(iid) <- true;
      Queue.add iid queue
    end
  in
  List.iter
    (fun iid ->
      enqueue iid;
      (* drivers of the changed instance's input nets see a new load *)
      List.iter enqueue (Netlist.fanin_insts nl iid))
    changed;
  while not (Queue.is_empty queue) do
    let iid = Queue.pop queue in
    List.iter enqueue (Netlist.fanout_insts nl iid)
  done;
  touched

let update t ~changed =
  Metrics.incr m_incremental;
  let evals0 = Metrics.counter_value m_arrival_evals in
  let { cfg; nl; order; _ } = t in
  let touched = affected_insts nl changed in
  let mask iid = iid < Array.length touched && touched.(iid) in
  let at_max = Array.copy t.at_max in
  let at_min = Array.copy t.at_min in
  let at_slew = Array.copy t.at_slew in
  let inst_delay = Array.copy t.inst_delay in
  let from_net = Array.copy t.from_net in
  let via_inst = Array.copy t.via_inst in
  let rat = Array.make (Array.length t.rat) infinity in
  (* A replaced cell changes the load of every net it pins (its new input
     caps, or its holder cap); only those nets need re-folding.  A grown
     netlist (shouldn't happen under [update]'s contract) falls back to a
     full recompute rather than indexing out of bounds. *)
  let loads =
    if Netlist.net_count nl <> Array.length t.loads then compute_loads cfg nl
    else begin
      let loads = Array.copy t.loads in
      List.iter
        (fun iid ->
          List.iter (fun (_, nid) -> loads.(nid) <- load_of_net cfg nl nid) (Netlist.conns nl iid))
        changed;
      loads
    end
  in
  seed_sources cfg nl ~loads ~at_max ~at_min ~at_slew ~inst_delay ~via_inst ~mask:(Some mask);
  forward cfg nl order ~loads ~at_max ~at_min ~at_slew ~inst_delay ~from_net ~via_inst
    ~mask:(Some mask);
  let eps = endpoints_and_rat cfg nl ~at_max ~at_min ~rat in
  backward cfg nl order ~rat ~inst_delay;
  Metrics.observe m_update_evals
    (float_of_int (Metrics.counter_value m_arrival_evals - evals0));
  { t with loads; at_max; at_min; at_slew; inst_delay; rat; from_net; via_inst; eps }

let arrival t nid = if t.at_max.(nid) = neg_infinity then t.cfg.input_arrival else t.at_max.(nid)

let slew t nid =
  if t.at_slew.(nid) > 0.0 then t.at_slew.(nid) else Nldm.default_input_slew

let used_delay t iid =
  if iid >= 0 && iid < Array.length t.inst_delay then t.inst_delay.(iid) else 0.0
let required t nid = t.rat.(nid)

let net_slack t nid =
  if t.rat.(nid) = infinity then infinity else t.rat.(nid) -. arrival t nid

let inst_slack t iid =
  let cell = Netlist.cell t.nl iid in
  if cell.Cell.kind = Func.Dff then begin
    let d_slack =
      List.fold_left
        (fun acc ep -> match ep.kind with
          | Ff_data i when i = iid -> Float.min acc ep.slack
          | Ff_data _ | Primary_output _ -> acc)
        infinity t.eps
    in
    let q_slack =
      match Netlist.pin_net t.nl iid "Q" with Some q -> net_slack t q | None -> infinity
    in
    Float.min d_slack q_slack
  end
  else
    match Netlist.output_net t.nl iid with
    | Some out -> net_slack t out
    | None -> infinity

let endpoints t = t.eps

let wns t =
  List.fold_left (fun acc ep -> Float.min acc ep.slack) infinity t.eps

let tns t =
  List.fold_left (fun acc ep -> acc +. Float.min 0.0 ep.slack) 0.0 t.eps

let worst_hold_slack t =
  List.fold_left (fun acc ep -> Float.min acc ep.hold_slack) infinity t.eps

let meets_timing t = wns t >= 0.0
let meets_hold t = worst_hold_slack t >= 0.0

type path_step = {
  step_inst : Netlist.inst_id option;
  step_net : Netlist.net_id;
  step_arrival : float;
}

let path_to t ep =
  let rec backtrace nid acc =
    let inst = if t.via_inst.(nid) >= 0 then Some t.via_inst.(nid) else None in
    let step = { step_inst = inst; step_net = nid; step_arrival = arrival t nid } in
    let prev = t.from_net.(nid) in
    if prev >= 0 then backtrace prev (step :: acc) else step :: acc
  in
  backtrace ep.net []

let critical_path t =
  match List.fold_left (fun acc ep -> match acc with
      | None -> Some ep
      | Some best -> if ep.slack < best.slack then Some ep else Some best)
      None t.eps
  with
  | None -> []
  | Some ep -> path_to t ep

let worst_endpoints t k =
  let sorted = List.sort (fun a b -> compare a.slack b.slack) t.eps in
  List.filteri (fun i _ -> i < k) sorted

(* --- structured critical-path reports ------------------------------- *)

type path_arc = {
  arc_inst : Netlist.inst_id option;
  arc_net : Netlist.net_id;
  arc_cell_delay : float;
  arc_wire_delay : float;
  arc_arrival : float;
  arc_slew : float;
}

type path = {
  path_endpoint : endpoint;
  path_arcs : path_arc list;
  path_capture_wire : float;
}

let endpoint_name t ep =
  match ep.kind with
  | Ff_data ff -> Netlist.inst_name t.nl ff ^ "/D"
  | Primary_output name -> name

let path_report t ep =
  let steps = path_to t ep in
  let arcs, _ =
    List.fold_left
      (fun (acc, prev_arrival) (s : path_step) ->
        let cell_delay =
          match s.step_inst with Some iid -> t.inst_delay.(iid) | None -> 0.0
        in
        (* The launch arc's residual over its cell delay is clock latency
           (flip-flop sources) or the configured input arrival; later arcs'
           residual is the wire delay of the hop that fed the gate. *)
        let wire_delay = s.step_arrival -. prev_arrival -. cell_delay in
        let arc =
          {
            arc_inst = s.step_inst;
            arc_net = s.step_net;
            arc_cell_delay = cell_delay;
            arc_wire_delay = wire_delay;
            arc_arrival = s.step_arrival;
            arc_slew = slew t s.step_net;
          }
        in
        (arc :: acc, s.step_arrival))
      ([], 0.0) steps
  in
  let last_arrival = match arcs with a :: _ -> a.arc_arrival | [] -> 0.0 in
  {
    path_endpoint = ep;
    path_arcs = List.rev arcs;
    path_capture_wire = ep.arrival -. last_arrival;
  }

let worst_paths t k = List.map (path_report t) (worst_endpoints t k)
