(** Deterministic reassembly of a campaign's checkpoints into one QoR
    snapshot, plus the coverage report behind [campaign status].

    The merged snapshot contains one workload per [Done] checkpoint,
    {b byte-deterministic} regardless of shard count, scheduling, chaos
    kills, or how many resume cycles produced the checkpoints:

    - workloads are keyed by job name and sorted by {!Smt_obs.Snapshot.make}
      (scan order never leaks through);
    - per-stage wall-clock ([stage_ms]) is stripped — it is the one
      nondeterministic field a worker records, advisory by the snapshot
      contract, and still available in the individual checkpoints;
    - QoR fields and work counters come from the flow, which is a
      deterministic function of the job coordinates, and floats
      round-trip exactly ([num_exact]).

    So an interrupted-and-resumed campaign merges to exactly the bytes of
    an uninterrupted one — the property the chaos tests pin down. *)

type state =
  | Sdone
  | Sfailed of string  (** quarantined or aborted, with the last error *)
  | Smissing  (** no (readable) checkpoint: never ran, in-flight, or torn *)

type job_state = {
  js_job : Job.t;
  js_state : state;
  js_attempt : int;  (** attempts recorded in the checkpoint; 0 when missing *)
  js_duration_s : float;
      (** wall seconds of the producing attempt (checkpoint envelope);
          0 when missing or written by a pre-duration binary.  Feeds the
          status view's throughput/ETA. *)
}

type t = {
  mg_tag : string;  (** from the manifest *)
  mg_snapshot : Smt_obs.Snapshot.t;  (** [Done] workloads only *)
  mg_workloads : Smt_obs.Ledger.workload list;
      (** [Done] workloads in run-ledger form, sorted by workload name:
          unlike [mg_snapshot] these keep per-stage wall-clock and carry
          the worker's per-stage GC attribution ([cp_prof]) — envelope
          data that never enters the byte-compared snapshot *)
  mg_states : job_state list;  (** canonical matrix order *)
  mg_done : int;
  mg_failed : int;
  mg_missing : int;
  mg_unreadable : int;  (** torn checkpoint files tolerated during the scan *)
}

val of_dir : string -> (t, string) result
(** Load the manifest and scan the checkpoints of a campaign directory.
    Checkpoints for jobs outside the manifest's matrix are ignored. *)

val complete : t -> bool
(** Every matrix job has a [Done] checkpoint. *)

val workloads : t -> Smt_obs.Ledger.workload list
(** [mg_workloads]: the merged workloads in run-ledger form, with real
    per-stage wall-clock and GC attribution threaded through from the
    worker checkpoints — what [campaign run] appends to the run ledger,
    so [runs show]/[runs gc]-style analysis works on campaign records
    exactly as on single-process runs. *)

val render_status : t -> string
(** Per-job state table plus a one-line summary. *)
