(** Deterministic reassembly of a campaign's checkpoints into one QoR
    snapshot, plus the coverage report behind [campaign status].

    The merged snapshot contains one workload per [Done] checkpoint,
    {b byte-deterministic} regardless of shard count, scheduling, chaos
    kills, or how many resume cycles produced the checkpoints:

    - workloads are keyed by job name and sorted by {!Smt_obs.Snapshot.make}
      (scan order never leaks through);
    - per-stage wall-clock ([stage_ms]) is stripped — it is the one
      nondeterministic field a worker records, advisory by the snapshot
      contract, and still available in the individual checkpoints;
    - QoR fields and work counters come from the flow, which is a
      deterministic function of the job coordinates, and floats
      round-trip exactly ([num_exact]).

    So an interrupted-and-resumed campaign merges to exactly the bytes of
    an uninterrupted one — the property the chaos tests pin down. *)

type state =
  | Sdone
  | Sfailed of string  (** quarantined or aborted, with the last error *)
  | Smissing  (** no (readable) checkpoint: never ran, in-flight, or torn *)

type job_state = {
  js_job : Job.t;
  js_state : state;
  js_attempt : int;  (** attempts recorded in the checkpoint; 0 when missing *)
}

type t = {
  mg_tag : string;  (** from the manifest *)
  mg_snapshot : Smt_obs.Snapshot.t;  (** [Done] workloads only *)
  mg_states : job_state list;  (** canonical matrix order *)
  mg_done : int;
  mg_failed : int;
  mg_missing : int;
  mg_unreadable : int;  (** torn checkpoint files tolerated during the scan *)
}

val of_dir : string -> (t, string) result
(** Load the manifest and scan the checkpoints of a campaign directory.
    Checkpoints for jobs outside the manifest's matrix are ignored. *)

val complete : t -> bool
(** Every matrix job has a [Done] checkpoint. *)

val workloads : t -> Smt_obs.Ledger.workload list
(** The merged workloads in run-ledger form (no GC attribution — that
    stays in the worker processes). *)

val render_status : t -> string
(** Per-job state table plus a one-line summary. *)
