(** Per-shard liveness files: how the supervisor tells {e hung} from
    {e slow}.

    A worker runs a {!beater} — a dedicated domain that rewrites
    [<job-id>.hb] every [SMT_HB_INTERVAL_MS] (default 200 ms) with the
    current flow stage, a count of completed stages, and a monotonic
    beat counter.  The supervisor's reap loop reads the file: a beat
    counter that stops advancing for longer than the stall timeout means
    the shard is wedged (or its beater died with it) and can be killed
    immediately instead of waiting out the wall clock.  Because the
    beater is its own domain, a worker spinning in a compute loop keeps
    beating only if the OS still schedules the process — a SIGSTOPped,
    livelocked-in-malloc, or D-state worker goes silent, which is
    exactly the signal.

    Writes are atomic (temp + rename) so readers never see a torn file,
    but not fsynced — heartbeats are a liveness overlay, worthless after
    a crash and not worth a sync per beat. *)

type t = {
  hb_stage : string;  (** most recent flow-stage progress marker *)
  hb_stages_done : int;  (** stages completed so far (monotonic) *)
  hb_beat : int;  (** write counter; advancing = alive *)
}

val suffix : string
(** [".hb"]. *)

val path : dir:string -> string -> string
(** [path ~dir id] — [<dir>/<id>.hb]. *)

val interval_s : unit -> float
(** The beat interval: [SMT_HB_INTERVAL_MS] (milliseconds) when set and
    positive, else 0.2 s. *)

val write : string -> t -> unit
(** Atomic single write (temp + rename, no fsync). *)

val read : string -> (t, string) result

type beater
(** A background domain beating on one path. *)

val start : path:string -> beater
(** Spawn the beater; it writes immediately, then every
    {!interval_s}. *)

val set_stage : beater -> string -> unit
(** Record flow-stage progress under a stage name (also bumps
    [hb_stages_done]); picked up by the next beat. *)

val stop : beater -> unit
(** Write one final heartbeat and join the domain.  Idempotent. *)
