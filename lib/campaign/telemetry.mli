(** Worker-to-supervisor telemetry sidecars: the cross-process
    counterpart of {!Smt_obs.Trace.collect}/[absorb].

    A worker process serializes its collected trace spans, metrics
    store, and per-stage GC profile into [<job-id>.telemetry.json] next
    to its checkpoint; the supervisor absorbs the sidecar after each
    verified exit, remapping spans onto the shard's stable tid and
    merging metrics/prof with the in-process semantics.  The result is
    one Chrome trace and one metrics registry for the whole campaign,
    assembled from as many OS processes as the matrix had jobs.

    {b Clock normalization.}  Each sidecar is stamped with the absolute
    unix time of its writer's [ts_us = 0] ({!Smt_obs.Trace.epoch_unix_s});
    {!absorb} shifts every span by the difference between the writer's
    epoch and the reader's, so spans from processes started minutes
    apart land at their true wall-clock positions on one timeline.
    Under [SMT_CLOCK] both epochs are the pinned clock and the shift is
    exactly zero — deterministic for tests.

    {b Failure model.}  Same as {!Checkpoint}: atomic write (temp +
    fsync + rename), and a torn, truncated, or unparseable sidecar loads
    as [Error] and is simply skipped — telemetry is an overlay; losing a
    sidecar never changes a campaign's merged snapshot. *)

val schema_version : int

type t = {
  tl_version : int;
  tl_job : string;  (** the writing job's id *)
  tl_attempt : int;  (** 1-based attempt that produced this sidecar *)
  tl_epoch_unix_s : float;
      (** absolute unix time of [ts_us = 0] in the writing process *)
  tl_events : Smt_obs.Trace.event list;
  tl_metrics : Smt_obs.Metrics.portable;
  tl_prof : (string * Smt_obs.Prof.stats) list;
}

val suffix : string
(** [".telemetry.json"]. *)

val path : dir:string -> string -> string
(** [path ~dir id] — [<dir>/<id>.telemetry.json]. *)

val capture : job:string -> attempt:int -> t
(** Snapshot the calling process's current trace buffer, metrics store,
    and prof accumulator into a sidecar value. *)

val write : dir:string -> t -> unit
(** Atomic: temp + fsync + rename, overwriting any earlier attempt's
    sidecar for the same job. *)

val load : string -> (t, string) result

val to_json : t -> string
val of_json : Smt_obs.Obs_json.t -> (t, string) result

val shift_events :
  from_epoch:float ->
  to_epoch:float ->
  attempt:int ->
  Smt_obs.Trace.event list ->
  Smt_obs.Trace.event list
(** Move events recorded against [from_epoch] onto a timeline whose zero
    is [to_epoch], and stamp each event's args with the attempt number.
    Pure — exposed for tests; {!absorb} is this plus the actual merge. *)

val absorb : ?tid:int -> t -> unit
(** Replay a sidecar onto the calling process: spans are epoch-shifted,
    stamped with the attempt, retagged to [tid] (default
    {!Smt_obs.Trace.main_tid}), and appended to the trace buffer (only
    while tracing is enabled); metrics merge by name with
    {!Smt_obs.Metrics.absorb}; prof merges additively.  Absorbing the
    same sidecar twice double-counts — callers dedupe by
    [(tl_job, tl_attempt)]. *)
