(* Liveness, not durability: a worker touches <job-id>.hb every few
   hundred milliseconds with its current flow stage and a monotonic beat
   counter, and the supervisor reads the file to tell a *hung* shard (no
   beat advancing) from a merely *slow* one (beats advancing through a
   long stage).  Writes are temp + rename — atomic so a reader never
   sees a torn line — but deliberately not fsynced: a lost heartbeat
   costs nothing, while an fsync every 200 ms per shard would.  The
   beater runs on its own domain so a worker wedged in a compute loop
   (the exact failure stall detection exists for) stops beating even
   though the process is alive. *)

module J = Smt_obs.Obs_json

type t = { hb_stage : string; hb_stages_done : int; hb_beat : int }

let suffix = ".hb"
let path ~dir id = Filename.concat dir (id ^ suffix)

let default_interval_ms = 200.

let interval_s () =
  match Sys.getenv_opt "SMT_HB_INTERVAL_MS" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some ms when ms > 0. -> ms /. 1000.
    | _ -> default_interval_ms /. 1000.)
  | None -> default_interval_ms /. 1000.

let to_json t =
  J.obj
    [
      ("stage", J.str t.hb_stage);
      ("stages_done", string_of_int t.hb_stages_done);
      ("beat", string_of_int t.hb_beat);
    ]

let of_json doc =
  match
    ( Option.bind (J.member "stage" doc) J.to_str,
      Option.bind (J.member "stages_done" doc) J.to_num,
      Option.bind (J.member "beat" doc) J.to_num )
  with
  | Some stage, Some stages, Some beat ->
    Ok { hb_stage = stage; hb_stages_done = int_of_float stages; hb_beat = int_of_float beat }
  | _ -> Error "heartbeat: missing stage/stages_done/beat"

let write path t =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> try close_out oc with Sys_error _ -> ())
    (fun () ->
      output_string oc (to_json t);
      output_char oc '\n');
  Sys.rename tmp path

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match J.parse (String.trim contents) with
    | Error e -> Error e
    | Ok doc -> of_json doc)

(* ------------------------------------------------------------------ *)
(* Beater                                                              *)
(* ------------------------------------------------------------------ *)

type beater = {
  bt_path : string;
  bt_stage : string Atomic.t;
  bt_stages : int Atomic.t;
  bt_stop : bool Atomic.t;
  bt_domain : unit Domain.t;
}

let start ~path =
  let stage = Atomic.make "start" in
  let stages = Atomic.make 0 in
  let stop = Atomic.make false in
  let domain =
    Domain.spawn (fun () ->
        let beat = ref 0 in
        let tick () =
          incr beat;
          (* Best-effort by design: a full disk or vanished directory must
             not take the worker down with it. *)
          try
            write path
              {
                hb_stage = Atomic.get stage;
                hb_stages_done = Atomic.get stages;
                hb_beat = !beat;
              }
          with Sys_error _ | Unix.Unix_error _ -> ()
        in
        tick ();
        while not (Atomic.get stop) do
          (* Sleep in short slices so [stop] never waits out a long
             interval. *)
          let remaining = ref (interval_s ()) in
          while !remaining > 0. && not (Atomic.get stop) do
            let slice = Float.min 0.05 !remaining in
            Unix.sleepf slice;
            remaining := !remaining -. slice
          done;
          if not (Atomic.get stop) then tick ()
        done;
        tick ())
  in
  { bt_path = path; bt_stage = stage; bt_stages = stages; bt_stop = stop; bt_domain = domain }

let set_stage b name =
  Atomic.set b.bt_stage name;
  Atomic.incr b.bt_stages

let stop b =
  if not (Atomic.get b.bt_stop) then begin
    Atomic.set b.bt_stop true;
    Domain.join b.bt_domain
  end
