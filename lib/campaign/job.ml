module J = Smt_obs.Obs_json

type t = {
  jb_circuit : string;
  jb_technique : string;
  jb_guard : string;
  jb_seed : int;
}

let id j =
  Printf.sprintf "%s~%s~%s~s%d" j.jb_circuit j.jb_technique j.jb_guard j.jb_seed

let name j =
  Printf.sprintf "%s/%s/%s/s%d" j.jb_circuit j.jb_technique j.jb_guard j.jb_seed

let matrix ~circuits ~techniques ~guards ~seeds =
  List.concat_map
    (fun c ->
      List.concat_map
        (fun t ->
          List.concat_map
            (fun g ->
              List.map
                (fun s ->
                  { jb_circuit = c; jb_technique = t; jb_guard = g; jb_seed = s })
                seeds)
            guards)
        techniques)
    circuits

let to_json j =
  J.obj
    [
      ("circuit", J.str j.jb_circuit);
      ("technique", J.str j.jb_technique);
      ("guard", J.str j.jb_guard);
      ("seed", string_of_int j.jb_seed);
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_of field doc =
  match J.member field doc with
  | Some v -> (
    match J.to_str v with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "job: field %S is not a string" field))
  | None -> Error (Printf.sprintf "job: missing field %S" field)

let of_json doc =
  let* circuit = str_of "circuit" doc in
  let* technique = str_of "technique" doc in
  let* guard = str_of "guard" doc in
  match J.member "seed" doc with
  | Some v -> (
    match J.to_num v with
    | Some f ->
      Ok
        {
          jb_circuit = circuit;
          jb_technique = technique;
          jb_guard = guard;
          jb_seed = int_of_float f;
        }
    | None -> Error "job: field \"seed\" is not a number")
  | None -> Error "job: missing field \"seed\""
