module J = Smt_obs.Obs_json

let schema_version = 1

type t = {
  m_version : int;
  m_tag : string;
  m_circuits : string list;
  m_techniques : string list;
  m_guards : string list;
  m_seeds : int list;
}

let make ~tag ~circuits ~techniques ~guards ~seeds =
  {
    m_version = schema_version;
    m_tag = tag;
    m_circuits = circuits;
    m_techniques = techniques;
    m_guards = guards;
    m_seeds = seeds;
  }

let jobs m =
  Job.matrix ~circuits:m.m_circuits ~techniques:m.m_techniques ~guards:m.m_guards
    ~seeds:m.m_seeds

(* The slot table is what keeps absorbed telemetry stable: a job's index
   in the canonical matrix depends only on the manifest, so the tid its
   spans land on survives retries, resumes, and shard-count changes. *)
let slots m = List.mapi (fun i job -> (Job.id job, i)) (jobs m)

let path dir = Filename.concat dir "campaign.json"

let to_json m =
  J.obj
    [
      ("schema_version", string_of_int m.m_version);
      ("tag", J.str m.m_tag);
      ("circuits", J.arr (List.map J.str m.m_circuits));
      ("techniques", J.arr (List.map J.str m.m_techniques));
      ("guards", J.arr (List.map J.str m.m_guards));
      ("seeds", J.arr (List.map string_of_int m.m_seeds));
    ]

let write dir m =
  let final = path dir in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_json m);
      output_char oc '\n');
  Sys.rename tmp final

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let str_list field doc =
  match J.member field doc with
  | Some (J.Arr items) ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | J.Str s :: rest -> go (s :: acc) rest
      | _ -> Error (Printf.sprintf "manifest: %S holds a non-string" field)
    in
    go [] items
  | Some _ -> Error (Printf.sprintf "manifest: %S is not an array" field)
  | None -> Error (Printf.sprintf "manifest: missing field %S" field)

let load dir =
  let file = path dir in
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match J.parse (String.trim contents) with
    | Error e -> Error e
    | Ok doc ->
      let* version =
        match J.member "schema_version" doc with
        | Some v -> (
          match J.to_num v with
          | Some f -> Ok (int_of_float f)
          | None -> Error "manifest: schema_version is not a number")
        | None -> Error "manifest: missing field \"schema_version\""
      in
      if version <> schema_version then
        Error
          (Printf.sprintf "manifest: schema version %d, expected %d" version
             schema_version)
      else
        let* tag =
          match J.member "tag" doc with
          | Some (J.Str s) -> Ok s
          | _ -> Error "manifest: missing or non-string \"tag\""
        in
        let* circuits = str_list "circuits" doc in
        let* techniques = str_list "techniques" doc in
        let* guards = str_list "guards" doc in
        let* seeds =
          match J.member "seeds" doc with
          | Some (J.Arr items) ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | it :: rest -> (
                match J.to_num it with
                | Some f -> go (int_of_float f :: acc) rest
                | None -> Error "manifest: \"seeds\" holds a non-number")
            in
            go [] items
          | Some _ -> Error "manifest: \"seeds\" is not an array"
          | None -> Error "manifest: missing field \"seeds\""
        in
        Ok
          {
            m_version = version;
            m_tag = tag;
            m_circuits = circuits;
            m_techniques = techniques;
            m_guards = guards;
            m_seeds = seeds;
          })
