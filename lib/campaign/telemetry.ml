(* The cross-process observability channel.  A worker cannot hand its
   in-memory Trace/Metrics/Prof state back to the supervisor — it is a
   fork/exec'd OS process — so it serializes the collected state into a
   sidecar file next to its checkpoint, and the supervisor absorbs the
   sidecar after the exit is verified.  The file carries the worker's
   epoch (absolute unix time of its ts_us = 0) so the supervisor can
   shift span timestamps onto its own timebase: two processes agree on
   wall-clock time, not on when each loaded the library.  Discipline and
   failure model are exactly Checkpoint's: temp + fsync + rename on
   write, and a torn or mislabeled sidecar is treated as absent — the
   campaign result never depends on telemetry surviving. *)

module J = Smt_obs.Obs_json
module Trace = Smt_obs.Trace
module Metrics = Smt_obs.Metrics
module Prof = Smt_obs.Prof

let schema_version = 1

type t = {
  tl_version : int;
  tl_job : string;
  tl_attempt : int;
  tl_epoch_unix_s : float;
  tl_events : Trace.event list;
  tl_metrics : Metrics.portable;
  tl_prof : (string * Prof.stats) list;
}

let suffix = ".telemetry.json"
let path ~dir id = Filename.concat dir (id ^ suffix)

let capture ~job ~attempt =
  {
    tl_version = schema_version;
    tl_job = job;
    tl_attempt = attempt;
    tl_epoch_unix_s = Trace.epoch_unix_s ();
    tl_events = Trace.events ();
    tl_metrics = Metrics.export ();
    tl_prof = Prof.spans ();
  }

let to_json t =
  J.obj
    [
      ("schema_version", string_of_int t.tl_version);
      ("job", J.str t.tl_job);
      ("attempt", string_of_int t.tl_attempt);
      ("epoch_unix_s", J.num_exact t.tl_epoch_unix_s);
      ("events", J.arr (List.map Trace.event_json t.tl_events));
      ("metrics", Metrics.portable_json t.tl_metrics);
      ( "prof",
        J.obj (List.map (fun (stage, st) -> (stage, Prof.stats_json st)) t.tl_prof) );
    ]

let write ~dir t =
  let final = path ~dir t.tl_job in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string (to_json t ^ "\n") in
      let n = Unix.write fd b 0 (Bytes.length b) in
      if n <> Bytes.length b then failwith "telemetry: short write";
      Unix.fsync fd);
  Sys.rename tmp final

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let of_json doc =
  let* version =
    match Option.bind (J.member "schema_version" doc) J.to_num with
    | Some v -> Ok (int_of_float v)
    | None -> Error "telemetry: missing schema_version"
  in
  if version <> schema_version then
    Error (Printf.sprintf "telemetry: schema version %d, expected %d" version schema_version)
  else
    let* job =
      match Option.bind (J.member "job" doc) J.to_str with
      | Some j -> Ok j
      | None -> Error "telemetry: missing job"
    in
    let* attempt =
      match Option.bind (J.member "attempt" doc) J.to_num with
      | Some a -> Ok (int_of_float a)
      | None -> Error "telemetry: missing attempt"
    in
    let* epoch =
      match Option.bind (J.member "epoch_unix_s" doc) J.to_num with
      | Some e -> Ok e
      | None -> Error "telemetry: missing epoch_unix_s"
    in
    let* events =
      match J.member "events" doc with
      | Some (J.Arr items) -> map_result Trace.event_of_json items
      | Some _ -> Error "telemetry: events is not an array"
      | None -> Ok []
    in
    let* metrics =
      match J.member "metrics" doc with
      | Some m -> Metrics.portable_of_json m
      | None -> Ok { Metrics.p_counters = []; p_gauges = []; p_hists = [] }
    in
    let* prof =
      match J.member "prof" doc with
      | None -> Ok []
      | Some (J.Obj fields) ->
        map_result
          (fun (stage, v) ->
            let* st = Prof.stats_of_json v in
            Ok (stage, st))
          fields
      | Some _ -> Error "telemetry: prof is not an object"
    in
    Ok
      {
        tl_version = version;
        tl_job = job;
        tl_attempt = attempt;
        tl_epoch_unix_s = epoch;
        tl_events = events;
        tl_metrics = metrics;
        tl_prof = prof;
      }

let load file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match J.parse (String.trim contents) with
    | Error e -> Error e
    | Ok doc -> of_json doc)

let shift_events ~from_epoch ~to_epoch ~attempt evs =
  let shift_us = (from_epoch -. to_epoch) *. 1e6 in
  let attempt_arg = ("attempt", string_of_int attempt) in
  List.map
    (fun ev ->
      {
        ev with
        Trace.ev_ts_us = ev.Trace.ev_ts_us +. shift_us;
        Trace.ev_args = attempt_arg :: List.remove_assoc "attempt" ev.Trace.ev_args;
      })
    evs

let absorb ?(tid = Trace.main_tid) t =
  if Trace.enabled () then
    Trace.absorb ~tid
      (shift_events ~from_epoch:t.tl_epoch_unix_s ~to_epoch:(Trace.epoch_unix_s ())
         ~attempt:t.tl_attempt t.tl_events);
  Metrics.absorb t.tl_metrics;
  Prof.absorb t.tl_prof
