(** Per-shard OS-process supervision: fork/exec one worker process per
    job, with wall-clock timeouts, retry with exponential backoff, a
    quarantine list for persistent failures, and a seeded fault-injection
    (chaos) mode that SIGKILLs shards mid-run.

    The supervisor is deliberately generic: it knows nothing about flows
    or checkpoints.  The caller supplies the argv to exec per (job,
    attempt) and a [verify] predicate consulted after {e every} child
    exit — normal, crashed, or killed — that decides whether the job's
    durable result actually landed.  That last point is what makes
    SIGKILL harmless: a shard killed after writing its checkpoint still
    verifies, so the kill is absorbed without a redundant re-run, and a
    shard killed before writing verifies false and is retried.

    {b Retry policy.}  A failed attempt (non-zero exit, death by signal —
    including a chaos kill — timeout, or a clean exit that fails
    [verify]) is retried after [min(cap, base·2^(attempt-1))] scaled by a
    deterministic jitter in [1, 1.5), both derived from [sv_seed], until
    [sv_max_attempts] attempts are spent; the job is then quarantined and
    the campaign continues without it.

    {b Chaos.}  With [sv_chaos = p], each attempt is SIGKILLed with
    probability [p] at a uniform delay within [sv_chaos_delay_ms] of its
    spawn.  Both draws come from a splitmix stream keyed on
    [(sv_seed, job id, attempt)], so the kill {e schedule} is a pure
    function of the configuration — independent of shard interleaving —
    which is what lets CI replay a chaos campaign deterministically.

    {b Determinism.}  Supervision affects only {e when} and {e how often}
    workers run, never what they compute; as long as workers are
    deterministic functions of their job coordinates, any mix of kills,
    retries, and resume cycles converges to byte-identical results.

    {b Stall detection.}  With [hb_path] given and [sv_stall_timeout_s]
    positive, the reap loop also polls each running shard's
    {!Heartbeat} file (throttled to ~a tenth of the stall timeout): a
    beat counter that stops advancing for the stall window — including
    a shard that never beats at all — marks the shard {e hung} rather
    than slow, and it is SIGKILLed and retried immediately instead of
    waiting out [sv_timeout_s].  Each read also refreshes the
    per-shard [campaign.shard.<slug>.last_stage] gauge from the
    heartbeat's completed-stage count.

    {b Metrics.}  Emits the [campaign.*] counter group
    ([jobs_total]/[jobs_done]/[retries]/[quarantined]/[chaos_kills]/
    [timeouts]/[stalls]) and, when tracing is enabled, one span per
    shard attempt ([shard <id>], args [attempt]/[outcome]), a
    [campaign.kill] instant per delivered kill (args [cause] =
    chaos|stall|timeout), plus a [campaign.supervise] envelope span. *)

type config = {
  sv_jobs : int;  (** concurrent worker processes *)
  sv_timeout_s : float;  (** wall-clock limit per attempt; SIGKILL past it *)
  sv_stall_timeout_s : float;
      (** SIGKILL an attempt whose heartbeat stops advancing this long;
          0 disables (needs [hb_path] to matter) *)
  sv_max_attempts : int;  (** quarantine after this many failed attempts *)
  sv_retry_base_ms : float;  (** backoff of the first retry *)
  sv_retry_cap_ms : float;  (** backoff ceiling (pre-jitter) *)
  sv_chaos : float;  (** per-attempt SIGKILL probability, 0 disables *)
  sv_chaos_delay_ms : float;  (** kills land uniformly within this of spawn *)
  sv_seed : int;  (** seeds the chaos schedule and the backoff jitter *)
  sv_poll_interval_s : float;  (** reap/kill polling period *)
}

val default_config : config
(** 2 shards, 60 s timeout, 3 attempts, 100 ms base / 2 s cap backoff,
    chaos off, stall detection off, 2 ms polling. *)

type outcome =
  | Completed of { attempts : int }
  | Quarantined of { attempts : int; last_error : string }

type summary = {
  sm_outcomes : (string * outcome) list;  (** job id -> outcome, input order *)
  sm_retries : int;
  sm_chaos_kills : int;
  sm_timeouts : int;
  sm_stalls : int;  (** attempts killed by heartbeat stall detection *)
}

val quarantined : summary -> (string * int * string) list
(** The quarantine list: (job id, attempts spent, last error). *)

val run :
  config ->
  command:(id:string -> attempt:int -> string array) ->
  verify:(string -> (unit, string) result) ->
  ?log_path:(string -> string) ->
  ?hb_path:(string -> string) ->
  ?on_exit:(id:string -> attempt:int -> unit) ->
  string list ->
  summary
(** Supervise the given job ids to completion or quarantine.  [command]
    builds the argv to exec (argv.(0) is the program path); [verify id]
    decides, after a child exits, whether the job's durable result is in
    place; [log_path] redirects each shard's stdout+stderr to a per-job
    file (truncated per attempt; default: /dev/null); [hb_path] names
    each job's heartbeat file, enabling stall detection when
    [sv_stall_timeout_s > 0]; [on_exit] runs on the supervisor after
    every child exit — before the outcome is decided — the hook the
    caller uses to absorb telemetry sidecars (of failed attempts too).
    Every spawned child is reaped before [run] returns — no zombies, no
    orphans.

    @raise Unix.Unix_error on infrastructure failure (e.g. fork denied);
    jobs whose exec fails inside the child surface as ordinary attempt
    failures (exit 127) and quarantine like any other persistent error. *)
