module Snapshot = Smt_obs.Snapshot
module Ledger = Smt_obs.Ledger

type state = Sdone | Sfailed of string | Smissing

type job_state = {
  js_job : Job.t;
  js_state : state;
  js_attempt : int;
  js_duration_s : float;
}

type t = {
  mg_tag : string;
  mg_snapshot : Snapshot.t;
  mg_workloads : Ledger.workload list;
  mg_states : job_state list;
  mg_done : int;
  mg_failed : int;
  mg_missing : int;
  mg_unreadable : int;
}

(* Wall-clock is the one worker-recorded field that differs run to run;
   everything else in a workload is a deterministic function of the job. *)
let strip_wallclock (w : Snapshot.workload) =
  Snapshot.workload ~name:w.Snapshot.w_name ~qor:w.Snapshot.w_qor
    ~counters:w.Snapshot.w_counters ~stage_ms:[]

let of_dir dir =
  match Manifest.load dir with
  | Error e -> Error (Printf.sprintf "cannot load campaign manifest: %s" e)
  | Ok man -> (
    match Checkpoint.scan dir with
    | Error e -> Error (Printf.sprintf "cannot scan checkpoints: %s" e)
    | Ok { Checkpoint.sc_checkpoints; sc_unreadable } ->
      let states =
        List.map
          (fun job ->
            match List.assoc_opt (Job.id job) sc_checkpoints with
            | Some (cp : Checkpoint.t) -> (
              match cp.Checkpoint.cp_status with
              | Checkpoint.Done ->
                {
                  js_job = job;
                  js_state = Sdone;
                  js_attempt = cp.Checkpoint.cp_attempt;
                  js_duration_s = cp.Checkpoint.cp_duration_s;
                }
              | Checkpoint.Failed e ->
                {
                  js_job = job;
                  js_state = Sfailed e;
                  js_attempt = cp.Checkpoint.cp_attempt;
                  js_duration_s = cp.Checkpoint.cp_duration_s;
                })
            | None ->
              { js_job = job; js_state = Smissing; js_attempt = 0; js_duration_s = 0. })
          (Manifest.jobs man)
      in
      let done_checkpoints =
        List.filter_map
          (fun js ->
            match js.js_state with
            | Sdone -> (
              match List.assoc_opt (Job.id js.js_job) sc_checkpoints with
              | Some ({ Checkpoint.cp_workload = Some _; _ } as cp) -> Some cp
              | _ -> None)
            | _ -> None)
          states
      in
      let done_workloads =
        List.filter_map
          (fun cp -> Option.map strip_wallclock cp.Checkpoint.cp_workload)
          done_checkpoints
      in
      (* Ledger form keeps what the snapshot strips: per-stage wall-clock
         and the worker's GC attribution are exactly what [runs show] and
         [runs gc] read back.  Sorted like the snapshot so ledger records
         are independent of scan order. *)
      let ledger_workloads =
        List.filter_map
          (fun cp ->
            Option.map
              (fun w ->
                { Ledger.lw_workload = w; Ledger.lw_prof = cp.Checkpoint.cp_prof })
              cp.Checkpoint.cp_workload)
          done_checkpoints
        |> List.sort (fun a b ->
               compare a.Ledger.lw_workload.Snapshot.w_name
                 b.Ledger.lw_workload.Snapshot.w_name)
      in
      let count p = List.length (List.filter p states) in
      Ok
        {
          mg_tag = man.Manifest.m_tag;
          mg_snapshot = Snapshot.make ~tag:man.Manifest.m_tag done_workloads;
          mg_workloads = ledger_workloads;
          mg_states = states;
          mg_done = count (fun js -> js.js_state = Sdone);
          mg_failed =
            count (fun js -> match js.js_state with Sfailed _ -> true | _ -> false);
          mg_missing = count (fun js -> js.js_state = Smissing);
          mg_unreadable = sc_unreadable;
        })

let complete m = m.mg_failed = 0 && m.mg_missing = 0

let workloads m = m.mg_workloads

let render_status m =
  let header = [ "Job"; "State"; "Attempts"; "Detail" ] in
  let rows =
    List.map
      (fun js ->
        let state, detail =
          match js.js_state with
          | Sdone -> ("done", "")
          | Sfailed e -> ("failed", e)
          | Smissing -> ("missing", "")
        in
        [
          Job.id js.js_job;
          state;
          (if js.js_attempt = 0 then "-" else string_of_int js.js_attempt);
          detail;
        ])
      m.mg_states
  in
  let summary =
    Printf.sprintf "campaign %s: %d/%d done, %d failed, %d missing%s" m.mg_tag
      m.mg_done
      (List.length m.mg_states)
      m.mg_failed m.mg_missing
      (if m.mg_unreadable = 0 then ""
       else
         Printf.sprintf " (%d unreadable checkpoint%s treated as missing)"
           m.mg_unreadable
           (if m.mg_unreadable = 1 then "" else "s"))
  in
  Smt_util.Text_table.render ~header rows ^ "\n" ^ summary
