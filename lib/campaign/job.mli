(** One unit of campaign work: a single flow invocation, fully identified
    by the (circuit, technique, guard, seed) coordinates of the campaign
    matrix.

    A job is what one worker process runs and what one checkpoint file
    records.  Its {!id} is filename-safe and injective over the matrix
    coordinates, so the checkpoint directory doubles as the authoritative
    set of completed work; its {!name} is the workload name the job's
    result carries in snapshots and ledger records
    (["<circuit>/<technique>/<guard>/s<seed>"], extending the established
    ["<circuit>/<technique>"] convention with the remaining
    coordinates). *)

type t = {
  jb_circuit : string;
  jb_technique : string;  (** CLI slug: ["dual"] | ["conventional"] | ["improved"] *)
  jb_guard : string;  (** ["off"] | ["warn"] | ["repair"] | ["strict"] *)
  jb_seed : int;  (** the flow seed, not the supervisor's *)
}

val id : t -> string
(** Filename-safe identity, e.g. ["circuit_a~improved~off~s1"]. *)

val name : t -> string
(** Workload name, e.g. ["circuit_a/improved/off/s1"]. *)

val matrix :
  circuits:string list ->
  techniques:string list ->
  guards:string list ->
  seeds:int list ->
  t list
(** The full cross product in canonical order: circuits outermost, then
    techniques, guards, seeds — the order [run]/[status]/[merge] list jobs
    in, independent of how shards were scheduled. *)

val to_json : t -> string
val of_json : Smt_obs.Obs_json.t -> (t, string) result
