module Rng = Smt_util.Rng
module Metrics = Smt_obs.Metrics
module Trace = Smt_obs.Trace
module Log = Smt_obs.Log

type config = {
  sv_jobs : int;
  sv_timeout_s : float;
  sv_stall_timeout_s : float;
  sv_max_attempts : int;
  sv_retry_base_ms : float;
  sv_retry_cap_ms : float;
  sv_chaos : float;
  sv_chaos_delay_ms : float;
  sv_seed : int;
  sv_poll_interval_s : float;
}

let default_config =
  {
    sv_jobs = 2;
    sv_timeout_s = 60.;
    sv_stall_timeout_s = 0.;
    sv_max_attempts = 3;
    sv_retry_base_ms = 100.;
    sv_retry_cap_ms = 2000.;
    sv_chaos = 0.;
    sv_chaos_delay_ms = 25.;
    sv_seed = 1;
    sv_poll_interval_s = 0.002;
  }

type outcome =
  | Completed of { attempts : int }
  | Quarantined of { attempts : int; last_error : string }

type summary = {
  sm_outcomes : (string * outcome) list;
  sm_retries : int;
  sm_chaos_kills : int;
  sm_timeouts : int;
  sm_stalls : int;
}

let quarantined sm =
  List.filter_map
    (fun (id, o) ->
      match o with
      | Quarantined { attempts; last_error } -> Some (id, attempts, last_error)
      | Completed _ -> None)
    sm.sm_outcomes

let m_jobs_total = Metrics.counter "campaign.jobs_total"
let m_jobs_done = Metrics.counter "campaign.jobs_done"
let m_retries = Metrics.counter "campaign.retries"
let m_quarantined = Metrics.counter "campaign.quarantined"
let m_chaos_kills = Metrics.counter "campaign.chaos_kills"
let m_timeouts = Metrics.counter "campaign.timeouts"
let m_stalls = Metrics.counter "campaign.stalls"

(* Mirrors [Prof.slug]: job ids become metric-name components. *)
let slug name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '_')
    (String.lowercase_ascii name)

(* Per-(job, attempt) randomness: a fresh splitmix stream keyed on the
   campaign seed and the attempt's identity.  [Hashtbl.hash] is the
   unseeded generic hash, stable across runs and processes, so the chaos
   schedule and backoff jitter are pure functions of the configuration —
   independent of which shard happens to run when. *)
let attempt_rng cfg id attempt salt =
  Rng.create (Hashtbl.hash (cfg.sv_seed, id, attempt, salt))

let backoff_s cfg id attempt =
  let exp = cfg.sv_retry_base_ms *. (2. ** float_of_int (attempt - 1)) in
  let capped = Float.min cfg.sv_retry_cap_ms exp in
  let rng = attempt_rng cfg id attempt "backoff" in
  capped *. (1. +. Rng.float rng 0.5) /. 1000.

let chaos_kill_delay cfg id attempt =
  if cfg.sv_chaos <= 0. then None
  else begin
    let rng = attempt_rng cfg id attempt "chaos" in
    if Rng.chance rng cfg.sv_chaos then
      Some (Rng.float rng (cfg.sv_chaos_delay_ms /. 1000.))
    else None
  end

type pending = {
  pd_idx : int;
  pd_id : string;
  pd_attempt : int;
  pd_ready_s : float;
}

type running = {
  rn_idx : int;
  rn_id : string;
  rn_attempt : int;
  rn_pid : int;
  rn_start_us : float;
  rn_deadline_s : float;
  rn_kill_at_s : float option;
  mutable rn_chaos_killed : bool;
  mutable rn_timed_out : bool;
  mutable rn_stalled : bool;
  mutable rn_beat : int;  (* last heartbeat counter observed; -1 = none yet *)
  mutable rn_beat_seen_s : float;  (* when the counter last advanced *)
  mutable rn_next_hb_s : float;  (* next heartbeat poll (throttled) *)
}

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function
  | _ :: rest when n > 0 -> drop (n - 1) rest
  | l -> l

let sigkill pid = try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()

let run cfg ~command ~verify ?log_path ?hb_path ?on_exit ids =
  let n = List.length ids in
  Metrics.incr ~by:n m_jobs_total;
  let outcomes : outcome option array = Array.make n None in
  let retries = ref 0 and chaos_kills = ref 0 and timeouts = ref 0 and stalls = ref 0 in
  (* Heartbeat polls are throttled well below the reap cadence: liveness
     needs stall-timeout resolution, not poll-interval resolution, and a
     stat+read per shard per 2 ms would dwarf the work supervised. *)
  let hb_check_s = Float.max 0.05 (cfg.sv_stall_timeout_s /. 10.) in
  let pending =
    ref
      (List.mapi
         (fun i id -> { pd_idx = i; pd_id = id; pd_attempt = 1; pd_ready_s = 0. })
         ids)
  in
  let running = ref [] in
  let spawn p =
    let argv = command ~id:p.pd_id ~attempt:p.pd_attempt in
    let out_fd =
      match log_path with
      | Some lp ->
        Unix.openfile (lp p.pd_id)
          [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_TRUNC ]
          0o644
      | None -> Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0o644
    in
    let pid =
      Fun.protect
        ~finally:(fun () -> try Unix.close out_fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.create_process argv.(0) argv Unix.stdin out_fd out_fd)
    in
    let now = Unix.gettimeofday () in
    Log.debug "campaign" "shard spawned"
      ~fields:
        [
          ("job", p.pd_id); ("attempt", string_of_int p.pd_attempt);
          ("pid", string_of_int pid);
        ];
    running :=
      {
        rn_idx = p.pd_idx;
        rn_id = p.pd_id;
        rn_attempt = p.pd_attempt;
        rn_pid = pid;
        rn_start_us = Trace.now_us ();
        rn_deadline_s = now +. cfg.sv_timeout_s;
        rn_kill_at_s =
          Option.map (fun d -> now +. d)
            (chaos_kill_delay cfg p.pd_id p.pd_attempt);
        rn_chaos_killed = false;
        rn_timed_out = false;
        rn_stalled = false;
        rn_beat = -1;
        rn_beat_seen_s = now;
        rn_next_hb_s = now +. hb_check_s;
      }
      :: !running
  in
  let finish_attempt rn status =
    let dur_us = Trace.now_us () -. rn.rn_start_us in
    (* Give the caller its look at the exit (e.g. sidecar absorption)
       before the outcome is decided: telemetry of failed attempts is
       still telemetry. *)
    (match on_exit with
    | Some f -> f ~id:rn.rn_id ~attempt:rn.rn_attempt
    | None -> ());
    let cause () =
      if rn.rn_chaos_killed then "chaos-kill"
      else if rn.rn_stalled then
        Printf.sprintf "stalled: no heartbeat progress for %.1fs" cfg.sv_stall_timeout_s
      else if rn.rn_timed_out then
        Printf.sprintf "timeout after %.1fs" cfg.sv_timeout_s
      else
        match status with
        | Unix.WEXITED c -> Printf.sprintf "exit %d" c
        | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
        | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s
    in
    (* The durable result decides, not the exit status: a shard killed an
       instant after its checkpoint rename still completed the job. *)
    match verify rn.rn_id with
    | Ok () ->
      Trace.complete
        ~name:(Printf.sprintf "shard %s" rn.rn_id)
        ~args:[ ("attempt", string_of_int rn.rn_attempt); ("outcome", "done") ]
        ~ts_us:rn.rn_start_us ~dur_us ();
      Metrics.incr m_jobs_done;
      outcomes.(rn.rn_idx) <- Some (Completed { attempts = rn.rn_attempt })
    | Error reason ->
      let err = Printf.sprintf "%s (%s)" (cause ()) reason in
      let label =
        if rn.rn_chaos_killed then "chaos-kill"
        else if rn.rn_stalled then "stall"
        else if rn.rn_timed_out then "timeout"
        else "failed"
      in
      Trace.complete
        ~name:(Printf.sprintf "shard %s" rn.rn_id)
        ~args:[ ("attempt", string_of_int rn.rn_attempt); ("outcome", label) ]
        ~ts_us:rn.rn_start_us ~dur_us ();
      if rn.rn_chaos_killed then begin
        incr chaos_kills;
        Metrics.incr m_chaos_kills
      end;
      if rn.rn_stalled then begin
        incr stalls;
        Metrics.incr m_stalls
      end;
      if rn.rn_timed_out then begin
        incr timeouts;
        Metrics.incr m_timeouts
      end;
      if rn.rn_attempt >= cfg.sv_max_attempts then begin
        Metrics.incr m_quarantined;
        Log.warn "campaign" "job quarantined"
          ~fields:
            [
              ("job", rn.rn_id); ("attempts", string_of_int rn.rn_attempt);
              ("error", err);
            ];
        outcomes.(rn.rn_idx) <-
          Some (Quarantined { attempts = rn.rn_attempt; last_error = err })
      end
      else begin
        incr retries;
        Metrics.incr m_retries;
        let delay = backoff_s cfg rn.rn_id rn.rn_attempt in
        Log.info "campaign" "shard failed, retrying"
          ~fields:
            [
              ("job", rn.rn_id); ("attempt", string_of_int rn.rn_attempt);
              ("error", err); ("backoff_s", Printf.sprintf "%.3f" delay);
            ];
        pending :=
          !pending
          @ [
              {
                pd_idx = rn.rn_idx;
                pd_id = rn.rn_id;
                pd_attempt = rn.rn_attempt + 1;
                pd_ready_s = Unix.gettimeofday () +. delay;
              };
            ]
      end
  in
  let rec loop () =
    if !pending <> [] || !running <> [] then begin
      let now = Unix.gettimeofday () in
      (* Fill free shard slots with due pending work, input order first. *)
      let slots = cfg.sv_jobs - List.length !running in
      if slots > 0 then begin
        let due, not_due = List.partition (fun p -> p.pd_ready_s <= now) !pending in
        let launch = take slots due in
        pending := drop slots due @ not_due;
        List.iter spawn launch
      end;
      (* Deliver overdue kills: the chaos schedule first, then stalls,
         then timeouts. *)
      List.iter
        (fun rn ->
          let live = (not rn.rn_chaos_killed) && (not rn.rn_stalled) && not rn.rn_timed_out in
          (match rn.rn_kill_at_s with
          | Some t when now >= t && live ->
            rn.rn_chaos_killed <- true;
            Trace.instant "campaign.kill"
              ~args:
                [
                  ("job", rn.rn_id); ("attempt", string_of_int rn.rn_attempt);
                  ("cause", "chaos");
                ];
            sigkill rn.rn_pid
          | _ -> ());
          (* Heartbeat liveness: a beat counter that stops advancing for
             sv_stall_timeout_s marks the shard hung — wedged compute, a
             dead beater, or a SIGSTOPped process — and it is killed now
             instead of waiting out the wall clock.  A shard that never
             produced a heartbeat file counts from spawn time, so a
             worker wedged before its first beat stalls too. *)
          (match hb_path with
          | Some hb
            when cfg.sv_stall_timeout_s > 0.
                 && (not rn.rn_chaos_killed) && (not rn.rn_stalled)
                 && (not rn.rn_timed_out) && now >= rn.rn_next_hb_s -> (
            rn.rn_next_hb_s <- now +. hb_check_s;
            (match Heartbeat.read (hb rn.rn_id) with
            | Ok h ->
              Metrics.set
                (Metrics.gauge ("campaign.shard." ^ slug rn.rn_id ^ ".last_stage"))
                (float_of_int h.Heartbeat.hb_stages_done);
              if h.Heartbeat.hb_beat <> rn.rn_beat then begin
                rn.rn_beat <- h.Heartbeat.hb_beat;
                rn.rn_beat_seen_s <- now
              end
            | Error _ -> ());
            if now -. rn.rn_beat_seen_s > cfg.sv_stall_timeout_s then begin
              rn.rn_stalled <- true;
              Trace.instant "campaign.kill"
                ~args:
                  [
                    ("job", rn.rn_id); ("attempt", string_of_int rn.rn_attempt);
                    ("cause", "stall");
                  ];
              sigkill rn.rn_pid
            end)
          | _ -> ());
          if now >= rn.rn_deadline_s && (not rn.rn_timed_out)
             && (not rn.rn_chaos_killed) && not rn.rn_stalled
          then begin
            rn.rn_timed_out <- true;
            Trace.instant "campaign.kill"
              ~args:
                [
                  ("job", rn.rn_id); ("attempt", string_of_int rn.rn_attempt);
                  ("cause", "timeout");
                ];
            sigkill rn.rn_pid
          end)
        !running;
      (* Reap without blocking; idle-sleep only when nothing moved. *)
      let before = List.length !running in
      running :=
        List.filter
          (fun rn ->
            match Unix.waitpid [ Unix.WNOHANG ] rn.rn_pid with
            | 0, _ -> true
            | _, status ->
              finish_attempt rn status;
              false
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> true)
          !running;
      if List.length !running = before then Unix.sleepf cfg.sv_poll_interval_s;
      loop ()
    end
  in
  Trace.with_span "campaign.supervise" loop;
  {
    sm_outcomes =
      List.mapi
        (fun i id ->
          match outcomes.(i) with
          | Some o -> (id, o)
          | None -> assert false (* loop exits only with every slot decided *))
        ids;
    sm_retries = !retries;
    sm_chaos_kills = !chaos_kills;
    sm_timeouts = !timeouts;
    sm_stalls = !stalls;
  }
