module J = Smt_obs.Obs_json
module Snapshot = Smt_obs.Snapshot

let schema_version = 1

type status = Done | Failed of string

type t = {
  cp_version : int;
  cp_job : Job.t;
  cp_status : status;
  cp_attempt : int;
  cp_time : float;
  cp_duration_s : float;
  cp_workload : Snapshot.workload option;
  cp_prof : (string * Smt_obs.Prof.stats) list;
}

let suffix = ".ckpt.json"
let path ~dir job = Filename.concat dir (Job.id job ^ suffix)

let to_json cp =
  let fields =
    [
      ("schema_version", string_of_int cp.cp_version);
      ("job", Job.to_json cp.cp_job);
      ( "status",
        match cp.cp_status with Done -> J.str "done" | Failed _ -> J.str "failed" );
    ]
    @ (match cp.cp_status with
      | Done -> []
      | Failed e -> [ ("error", J.str e) ])
    @ [
        ("attempt", string_of_int cp.cp_attempt);
        ("time", J.num_exact cp.cp_time);
        ("duration_s", J.num_exact cp.cp_duration_s);
      ]
    @ (match cp.cp_workload with
      | Some w -> [ ("workload", Snapshot.workload_json w) ]
      | None -> [])
    @
    match cp.cp_prof with
    | [] -> []
    | prof ->
      [
        ( "prof",
          J.obj (List.map (fun (stage, st) -> (stage, Smt_obs.Prof.stats_json st)) prof) );
      ]
  in
  J.obj fields

(* Stage + fsync + rename: after a crash at any instruction the final path
   holds either the previous checkpoint or the complete new one, never a
   prefix.  The temp name carries the pid so two processes retrying the
   same job cannot corrupt each other's staging file. *)
let write ~dir cp =
  let final = path ~dir cp.cp_job in
  let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_CREAT; Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string (to_json cp ^ "\n") in
      let n = Unix.write fd b 0 (Bytes.length b) in
      if n <> Bytes.length b then failwith "checkpoint: short write";
      Unix.fsync fd);
  Sys.rename tmp final

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let of_json doc =
  let num_of field =
    match J.member field doc with
    | Some v -> (
      match J.to_num v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "checkpoint: field %S is not a number" field))
    | None -> Error (Printf.sprintf "checkpoint: missing field %S" field)
  in
  let* version = num_of "schema_version" in
  if int_of_float version <> schema_version then
    Error
      (Printf.sprintf "checkpoint: schema version %d, expected %d"
         (int_of_float version) schema_version)
  else
    let* job =
      match J.member "job" doc with
      | Some j -> Job.of_json j
      | None -> Error "checkpoint: missing field \"job\""
    in
    let* status =
      match J.member "status" doc with
      | Some (J.Str "done") -> Ok Done
      | Some (J.Str "failed") ->
        let err =
          match J.member "error" doc with
          | Some (J.Str e) -> e
          | _ -> "unknown failure"
        in
        Ok (Failed err)
      | Some _ -> Error "checkpoint: unknown status"
      | None -> Error "checkpoint: missing field \"status\""
    in
    let* attempt = num_of "attempt" in
    let* time = num_of "time" in
    (* Fields added after the first release of schema 1 read back with
       neutral defaults, so checkpoints written by an older binary still
       load (forward additions, not a version bump). *)
    let duration_s =
      match Option.bind (J.member "duration_s" doc) J.to_num with
      | Some d -> d
      | None -> 0.
    in
    let* prof =
      match J.member "prof" doc with
      | None -> Ok []
      | Some (J.Obj fields) ->
        let rec go = function
          | [] -> Ok []
          | (stage, v) :: rest ->
            let* st = Smt_obs.Prof.stats_of_json v in
            let* tl = go rest in
            Ok ((stage, st) :: tl)
        in
        go fields
      | Some _ -> Error "checkpoint: prof is not an object"
    in
    let* workload =
      match (status, J.member "workload" doc) with
      | Done, Some w ->
        let* w = Snapshot.workload_of_json w in
        Ok (Some w)
      | Done, None -> Error "checkpoint: done without workload"
      | Failed _, _ -> Ok None
    in
    Ok
      {
        cp_version = int_of_float version;
        cp_job = job;
        cp_status = status;
        cp_attempt = int_of_float attempt;
        cp_time = time;
        cp_duration_s = duration_s;
        cp_workload = workload;
        cp_prof = prof;
      }

let load file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error e -> Error e
  | contents -> (
    match J.parse (String.trim contents) with
    | Error e -> Error e
    | Ok doc -> of_json doc)

type scan_result = {
  sc_checkpoints : (string * t) list;
  sc_unreadable : int;
}

let scan dir =
  match Sys.readdir dir with
  | exception Sys_error e -> Error e
  | entries ->
    let files =
      List.filter
        (fun f -> Filename.check_suffix f suffix)
        (Array.to_list entries)
    in
    let checkpoints = ref [] and unreadable = ref 0 in
    List.iter
      (fun f ->
        let expected_id = Filename.chop_suffix f suffix in
        match load (Filename.concat dir f) with
        | Ok cp when Job.id cp.cp_job = expected_id ->
          checkpoints := (expected_id, cp) :: !checkpoints
        | Ok _ | Error _ -> incr unreadable)
      files;
    Ok
      {
        sc_checkpoints =
          List.sort (fun (a, _) (b, _) -> compare a b) !checkpoints;
        sc_unreadable = !unreadable;
      }
