(** The campaign's identity file, [campaign.json] in the checkpoint
    directory: the matrix coordinates and snapshot tag a campaign was
    started with.

    [resume], [status], and [merge] read the manifest instead of trusting
    re-typed command lines, so the job set — and therefore which
    checkpoints count as complete coverage — cannot drift between resume
    cycles.  Supervision parameters (shard count, timeouts, chaos) are
    deliberately {e not} recorded: they affect how jobs are driven, never
    what a job computes, and may differ per invocation (a chaos run is
    resumed with chaos off). *)

val schema_version : int

type t = {
  m_version : int;
  m_tag : string;  (** tag of the merged snapshot *)
  m_circuits : string list;
  m_techniques : string list;
  m_guards : string list;
  m_seeds : int list;
}

val make :
  tag:string ->
  circuits:string list ->
  techniques:string list ->
  guards:string list ->
  seeds:int list ->
  t

val jobs : t -> Job.t list
(** The full matrix in canonical order ({!Job.matrix}). *)

val slots : t -> (string * int) list
(** Job id -> 0-based index in the canonical matrix: the job's stable
    {e shard slot}.  A pure function of the manifest — independent of
    scheduling, attempts, and resume cycles — which is what makes it the
    right basis for per-shard Chrome-trace tids (telemetry absorption
    uses [2 + slot]; tid 1 is the supervisor). *)

val path : string -> string
(** [<dir>/campaign.json]. *)

val write : string -> t -> unit
(** Atomic (temp + rename), like checkpoints. *)

val load : string -> (t, string) result
(** Load from a campaign directory. *)
