(** Per-job result checkpoints: one schema-versioned JSON file per
    completed (or definitively failed) job, the unit of campaign
    crash-tolerance.

    {b Atomicity.}  [write] stages the document in a sibling temp file,
    fsyncs, and renames it into place, so a reader never observes a
    half-written checkpoint: a shard SIGKILLed mid-write leaves either no
    checkpoint or a stray temp file, both of which [scan] treats as "job
    not done".  A checkpoint file that exists but does not parse (e.g. a
    tail truncated by a dying filesystem) is likewise counted and treated
    as absent — resume re-runs the job rather than crashing or trusting a
    torn record.

    {b Payload.}  A [Done] checkpoint embeds the job's result as an
    {!Smt_obs.Snapshot.workload} (the exact object snapshots and ledger
    records carry), so the merge step only reassembles payloads it never
    recomputes.  The envelope (attempt count, timestamp) is deliberately
    excluded from merged snapshots: it records how the shard got there,
    which may legitimately differ between an interrupted and an
    uninterrupted campaign. *)

val schema_version : int

type status =
  | Done
  | Failed of string  (** terminal failure: quarantined, or a flow abort *)

type t = {
  cp_version : int;
  cp_job : Job.t;
  cp_status : status;
  cp_attempt : int;  (** 1-based attempt that produced this checkpoint *)
  cp_time : float;  (** unix seconds, injected (respects [SMT_CLOCK]) *)
  cp_duration_s : float;
      (** wall seconds the producing attempt ran; [0.] in checkpoints
          written before the field existed.  Envelope data (feeds the
          status view's ETA, never merged snapshots). *)
  cp_workload : Smt_obs.Snapshot.workload option;  (** [Some] iff [Done] *)
  cp_prof : (string * Smt_obs.Prof.stats) list;
      (** per-stage GC attribution from the producing worker, the
          [Ledger.workload.lw_prof] payload; empty when the worker ran
          unprofiled or predates the field *)
}

val suffix : string
(** [".ckpt.json"] — what {!scan} recognizes, and what everything else in
    a campaign directory (manifest, logs, staging temps) must not end in. *)

val path : dir:string -> Job.t -> string
(** [<dir>/<job-id>.ckpt.json]. *)

val write : dir:string -> t -> unit
(** Atomic: temp file + fsync + rename.  Overwrites any previous
    checkpoint of the same job (a retry superseding a failure). *)

val load : string -> (t, string) result

type scan_result = {
  sc_checkpoints : (string * t) list;
      (** job id -> checkpoint, sorted by job id; only well-formed files
          whose embedded job matches their filename *)
  sc_unreadable : int;
      (** [.ckpt.json] files that were torn, truncated, or mislabeled —
          treated as if the job never completed *)
}

val scan : string -> (scan_result, string) result
(** Scan a checkpoint directory.  [Error] only for directory-level I/O
    failure; per-file damage is tolerated and counted. *)
