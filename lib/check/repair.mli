(** Repair pass over the checker's repairable violation classes.

    Given a netlist and the violations [Drc.check] reported on it, fixes
    what has a known local remedy:

    - floating MTE pins are reconnected to the design's MTE net (created as
      a primary input if absent, as switch insertion does);
    - MT-cells with an unreachable VGND (floating port, removed switch, or
      still portless post-MT) are attached to the nearest live sleep
      switch — a fresh one is created and placed at their centroid when no
      live switch remains;
    - missing or broken output holders are (re-)inserted next to the
      driving cell;
    - degenerate footer widths (zero, negative, NaN) are clamped to
      [clamp_width];
    - instances whose cell data went bad (NaN/negative fields) are restored
      to the canonical library cell of the same name, when that cell is
      itself sane;
    - switches left with no members are removed, and unplaced instances are
      dropped at the die center.

    Unrepairable classes (undriven nets, combinational loops, …) are left
    untouched.  Running [repair] on the violations of an already-repaired
    netlist performs no actions, so the pass is idempotent. *)

type result = {
  repaired : int;  (** number of repair actions performed *)
  actions : string list;  (** human-readable description of each action *)
}

val repair :
  ?place:Smt_place.Placement.t ->
  ?clamp_width:float ->
  Smt_netlist.Netlist.t ->
  Violation.t list ->
  result
(** Mutates the netlist (and placement, when given: new/clamped cells are
    placed).  [clamp_width] (default 10.0, the flow's initial-structure
    footer width) sizes replacement and clamped switches. *)
