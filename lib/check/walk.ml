module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth

type vgnd_state =
  | Ungated
  | Gated of Netlist.inst_id
  | Floating_vgnd
  | Dead_switch of Netlist.inst_id

let vgnd_state nl iid =
  match (Netlist.cell nl iid).Cell.style with
  | Vth.Plain | Vth.Mt_embedded | Vth.Mt_no_vgnd -> Ungated
  | Vth.Mt_vgnd -> (
    match Netlist.vgnd_switch nl iid with
    | None -> Floating_vgnd
    | Some sw -> if Netlist.is_dead nl sw then Dead_switch sw else Gated sw)

type keeper_state =
  | No_keeper
  | Keeper of Netlist.inst_id
  | Dead_keeper of Netlist.inst_id
  | Not_a_holder of Netlist.inst_id

let keeper_state nl nid =
  match Netlist.holder_of nl nid with
  | None -> No_keeper
  | Some h ->
    if Netlist.is_dead nl h then Dead_keeper h
    else if (Netlist.cell nl h).Cell.kind <> Func.Holder then Not_a_holder h
    else Keeper h

let populated_switches nl =
  List.filter_map
    (fun (sw, members) -> if members <> [] then Some sw else None)
    (Netlist.switch_groups nl)

let sane_switches nl =
  List.filter
    (fun sw ->
      let w = (Netlist.cell nl sw).Cell.switch_width in
      Float.is_finite w && w > 0.0)
    (Netlist.switches nl)

let holder_pins nl =
  let tbl = Hashtbl.create 97 in
  Netlist.iter_insts nl (fun iid ->
      if (Netlist.cell nl iid).Cell.kind = Func.Holder then
        match Netlist.pin_net nl iid "Z" with
        | Some nid -> if not (Hashtbl.mem tbl nid) then Hashtbl.add tbl nid iid
        | None -> ());
  tbl
