(** Shared reachability walks over the MT support structure.

    [Drc] (structural rules), [Repair] (fix-up candidates), and the
    semantic standby verifier ([Smt_verify]) all need the same three
    questions answered: does an MT-cell's VGND reach a live switch, which
    switches actually gate members, and which holder instance really sits
    on a net.  The answers live here so the three passes cannot drift
    apart.

    Everything works from the {e wires}, not from bookkeeping records
    where the two can disagree: [holder_pins] keys holders by the net
    their Z pin touches, which is what the silicon would do — a stale
    [Netlist.holder_of] record is exactly the kind of bug the semantic
    pass exists to catch. *)

module Netlist = Smt_netlist.Netlist

type vgnd_state =
  | Ungated  (** the cell has no VGND port (plain / embedded / no-VGND) *)
  | Gated of Netlist.inst_id  (** hangs from this live sleep switch *)
  | Floating_vgnd  (** VGND port attached to nothing *)
  | Dead_switch of Netlist.inst_id  (** attached to a removed switch *)

val vgnd_state : Netlist.t -> Netlist.inst_id -> vgnd_state
(** Where the instance's virtual ground lands.  Only [Vth.Mt_vgnd] cells
    can be anything other than [Ungated]. *)

type keeper_state =
  | No_keeper
  | Keeper of Netlist.inst_id  (** live HOLDER instance *)
  | Dead_keeper of Netlist.inst_id
  | Not_a_holder of Netlist.inst_id  (** recorded keeper is some other cell *)

val keeper_state : Netlist.t -> Netlist.net_id -> keeper_state
(** What the net's [holder_of] record points at. *)

val populated_switches : Netlist.t -> Netlist.inst_id list
(** Live sleep switches with at least one member MT-cell, in
    [Netlist.switches] order; one pass over the instances. *)

val sane_switches : Netlist.t -> Netlist.inst_id list
(** Live sleep switches whose footer width is finite and positive — the
    switches a repair or a standby analysis may rely on. *)

val holder_pins : Netlist.t -> (Netlist.net_id, Netlist.inst_id) Hashtbl.t
(** Live HOLDER instances keyed by the net their Z pin is wired to — the
    electrical truth, independent of the [holder_of] records.  When two
    holders share a net the one from the earlier instance id wins. *)
