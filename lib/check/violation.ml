type severity = Error | Warn

type location =
  | Design
  | Net of string
  | Inst of string
  | Cell of string

type code =
  | Undriven_net
  | Dangling_net
  | Floating_input
  | Unconnected_output
  | Comb_loop
  | Premature_vgnd
  | Missing_vgnd_port
  | Unreachable_vgnd
  | Missing_holder
  | Bad_holder
  | Orphan_switch
  | Degenerate_switch
  | Mte_undriven
  | Mte_unbuffered
  | Bad_cell_data
  | No_timing_endpoints
  | Unplaced_inst

type t = {
  severity : severity;
  code : code;
  loc : location;
  message : string;
  hint : string option;
}

let code_name = function
  | Undriven_net -> "undriven-net"
  | Dangling_net -> "dangling-net"
  | Floating_input -> "floating-input"
  | Unconnected_output -> "unconnected-output"
  | Comb_loop -> "comb-loop"
  | Premature_vgnd -> "premature-vgnd"
  | Missing_vgnd_port -> "missing-vgnd-port"
  | Unreachable_vgnd -> "unreachable-vgnd"
  | Missing_holder -> "missing-holder"
  | Bad_holder -> "bad-holder"
  | Orphan_switch -> "orphan-switch"
  | Degenerate_switch -> "degenerate-switch"
  | Mte_undriven -> "mte-undriven"
  | Mte_unbuffered -> "mte-unbuffered"
  | Bad_cell_data -> "bad-cell-data"
  | No_timing_endpoints -> "no-timing-endpoints"
  | Unplaced_inst -> "unplaced-inst"

let severity_name = function Error -> "error" | Warn -> "warn"

let loc_name = function
  | Design -> "design"
  | Net n -> "net " ^ n
  | Inst i -> "inst " ^ i
  | Cell c -> "cell " ^ c

let repairable = function
  | Floating_input | Missing_vgnd_port | Unreachable_vgnd | Missing_holder
  | Bad_holder | Orphan_switch | Degenerate_switch | Bad_cell_data
  | Unplaced_inst ->
    true
  | Undriven_net | Dangling_net | Unconnected_output | Comb_loop | Premature_vgnd
  | Mte_undriven | Mte_unbuffered | No_timing_endpoints ->
    false

let to_string v =
  Printf.sprintf "%s %s @ %s: %s%s" (severity_name v.severity) (code_name v.code)
    (loc_name v.loc) v.message
    (match v.hint with Some h -> " (" ^ h ^ ")" | None -> "")

let errors vs = List.filter (fun v -> v.severity = Error) vs
let warnings vs = List.filter (fun v -> v.severity = Warn) vs
let count s vs = List.length (List.filter (fun v -> v.severity = s) vs)

let summary vs =
  Printf.sprintf "%d errors, %d warnings" (count Error vs) (count Warn vs)
