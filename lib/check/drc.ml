module Netlist = Smt_netlist.Netlist
module Nl_check = Smt_netlist.Check
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Tech = Smt_cell.Tech
module V = Violation

type phase = Pre_mt | Post_mt

let infer_phase nl =
  let post = ref false in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      if c.Cell.kind = Func.Sleep_switch || Vth.style_equal c.Cell.style Vth.Mt_vgnd then
        post := true);
  if !post then Post_mt else Pre_mt

(* Mirrors the pin-completeness contract of Smt_netlist.Check: logic inputs,
   plus the control pins each kind carries. *)
let required_pins (cell : Cell.t) =
  let logic = Array.to_list (Func.input_names cell.Cell.kind) in
  let mte = if Vth.style_equal cell.Cell.style Vth.Mt_embedded then [ "MTE" ] else [] in
  let extra =
    match cell.Cell.kind with
    | Func.Dff -> [ "CK" ]
    | Func.Sleep_switch -> [ "MTE" ]
    | Func.Holder -> [ "MTE"; "Z" ]
    | _ -> []
  in
  logic @ extra @ mte

let finite_nonneg x = Float.is_finite x && x >= 0.0

(* Fields every cell must keep sane for timing/power to mean anything. *)
let cell_data_problems (c : Cell.t) =
  List.filter_map
    (fun (field, v) -> if finite_nonneg v then None else Some (field, v))
    [
      ("area", c.Cell.area);
      ("input_cap", c.Cell.input_cap);
      ("intrinsic_delay", c.Cell.intrinsic_delay);
      ("drive_res", c.Cell.drive_res);
      ("leak_standby", c.Cell.leak_standby);
      ("leak_active", c.Cell.leak_active);
    ]

let bad_cell_violations ~loc (c : Cell.t) =
  List.map
    (fun (field, v) ->
      {
        V.severity = V.Error;
        code = V.Bad_cell_data;
        loc;
        message =
          Printf.sprintf "cell %s has %s %s" c.Cell.name field
            (if Float.is_nan v then "NaN" else Printf.sprintf "%g" v);
        hint = Some "restore the canonical library cell";
      })
    (cell_data_problems c)

let check ?phase ?place ?(expect_buffered_mte = true) nl =
  let phase = match phase with Some p -> p | None -> infer_phase nl in
  let out = ref [] in
  let emit severity code loc ?hint fmt =
    Printf.ksprintf
      (fun message -> out := { V.severity; code; loc; message; hint } :: !out)
      fmt
  in
  let mte_net = Netlist.find_net nl "MTE" in
  (* --- net rules --- *)
  Netlist.iter_nets nl (fun nid ->
      let name = Netlist.net_name nl nid in
      let loc = V.Net name in
      let has_driver = Netlist.driver nl nid <> None || Netlist.is_pi nl nid in
      let has_load = Netlist.sinks nl nid <> [] || Netlist.is_po nl nid in
      if (not has_driver) && has_load then
        if mte_net = Some nid then
          emit V.Error V.Mte_undriven loc
            "MTE net has %d sinks but no driver and is not a primary input"
            (List.length (Netlist.sinks nl nid))
        else
          emit V.Error V.Undriven_net loc "net has loads but no driver";
      if has_driver && (not has_load) && Netlist.holder_of nl nid = None then
        emit V.Warn V.Dangling_net loc "net is driven but nothing reads it";
      (match Walk.keeper_state nl nid with
      | Walk.No_keeper | Walk.Keeper _ -> ()
      | Walk.Dead_keeper _ ->
        emit V.Error V.Bad_holder loc ~hint:"re-insert a holder"
          "keeper is a removed instance"
      | Walk.Not_a_holder h ->
        emit V.Error V.Bad_holder loc ~hint:"re-insert a holder"
          "keeper %s is not a HOLDER" (Netlist.inst_name nl h));
      match phase with
      | Pre_mt -> ()
      | Post_mt ->
        if Nl_check.holder_required nl nid && Netlist.holder_of nl nid = None then
          emit V.Error V.Missing_holder loc ~hint:"insert an output holder"
            "MT-driven value crosses into awake logic with no holder");
  (* MTE fanout cap: the buffering stage must keep every stage under the
     technology limit; a bare over-cap net means it has not run (or was
     broken afterwards). *)
  (match mte_net with
  | Some nid when expect_buffered_mte ->
    let cap = (Library.tech (Netlist.lib nl)).Tech.mte_max_fanout in
    let fanout = List.length (Netlist.sinks nl nid) in
    if fanout > cap then
      emit V.Warn V.Mte_unbuffered (V.Net (Netlist.net_name nl nid))
        "MTE net drives %d pins directly (technology cap %d); buffering needed"
        fanout cap
  | Some _ | None -> ());
  (* --- instance rules --- *)
  (* One pass for switch membership instead of a scan per switch below. *)
  let populated_switches = Hashtbl.create 97 in
  List.iter
    (fun sw -> Hashtbl.replace populated_switches sw ())
    (Walk.populated_switches nl);
  Netlist.iter_insts nl (fun iid ->
      let cell = Netlist.cell nl iid in
      let name = Netlist.inst_name nl iid in
      let loc = V.Inst name in
      List.iter
        (fun pin ->
          if Netlist.pin_net nl iid pin = None then
            let hint =
              if String.equal pin "MTE" then Some "reconnect to the MTE net" else None
            in
            emit V.Error V.Floating_input loc ?hint "required pin %s is unconnected" pin)
        (required_pins cell);
      (match Func.output_names cell.Cell.kind with
      | [||] -> ()
      | outs ->
        if Netlist.pin_net nl iid outs.(0) = None then
          emit V.Warn V.Unconnected_output loc "output %s is unconnected" outs.(0));
      (match cell_data_problems cell with
      | [] -> ()
      | problems ->
        List.iter
          (fun (field, v) ->
            emit V.Error V.Bad_cell_data loc
              ~hint:"restore the canonical library cell"
              "cell %s has %s %s" cell.Cell.name field
              (if Float.is_nan v then "NaN" else Printf.sprintf "%g" v))
          problems);
      if cell.Cell.kind = Func.Sleep_switch then begin
        let w = cell.Cell.switch_width in
        if not (Float.is_finite w && w > 0.0) then
          emit V.Error V.Degenerate_switch loc ~hint:"clamp to a sane footer width"
            "sleep switch width is %s"
            (if Float.is_nan w then "NaN" else Printf.sprintf "%g" w);
        if not (Hashtbl.mem populated_switches iid) then
          emit V.Warn V.Orphan_switch loc ~hint:"remove the unused switch"
            "sleep switch has no member MT-cells"
      end;
      match phase with
      | Pre_mt -> (
        match cell.Cell.style with
        | Vth.Mt_vgnd ->
          emit V.Error V.Premature_vgnd loc
            "instance has a VGND port before switch insertion"
        | Vth.Plain | Vth.Mt_embedded | Vth.Mt_no_vgnd -> ())
      | Post_mt -> (
        match cell.Cell.style with
        | Vth.Mt_vgnd -> (
          match Walk.vgnd_state nl iid with
          | Walk.Ungated | Walk.Gated _ -> ()
          | Walk.Floating_vgnd ->
            emit V.Error V.Unreachable_vgnd loc ~hint:"attach to a live sleep switch"
              "MT-cell has a floating VGND port"
          | Walk.Dead_switch _ ->
            emit V.Error V.Unreachable_vgnd loc ~hint:"attach to a live sleep switch"
              "MT-cell hangs from a removed switch")
        | Vth.Mt_no_vgnd ->
          emit V.Error V.Missing_vgnd_port loc
            ~hint:"restyle to the VGND variant and attach to a switch"
            "instance still lacks its VGND port after switch insertion"
        | Vth.Plain | Vth.Mt_embedded -> ()));
  (* --- placement rule --- *)
  (match place with
  | None -> ()
  | Some p ->
    Netlist.iter_insts nl (fun iid ->
        if Placement.inst_point_opt p iid = None then
          emit V.Warn V.Unplaced_inst
            (V.Inst (Netlist.inst_name nl iid))
            ~hint:"place at a legal point" "instance has no placement coordinates"));
  (* --- design rules --- *)
  (try ignore (Netlist.topo_order nl)
   with Netlist.Combinational_cycle where ->
     emit V.Error V.Comb_loop V.Design "combinational cycle through %s" where);
  let has_endpoint =
    List.exists (fun (_, nid) -> not (Netlist.is_clock_net nl nid)) (Netlist.outputs nl)
    ||
    let seq = ref false in
    Netlist.iter_insts nl (fun iid ->
        if Func.is_sequential (Netlist.cell nl iid).Cell.kind then seq := true);
    !seq
  in
  if not has_endpoint then
    emit V.Warn V.No_timing_endpoints V.Design
      "no primary outputs and no flip-flops: STA has no endpoints, so \
       Flow.minimal_period falls back to its documented 100 ps default";
  List.rev !out

let check_library lib =
  List.concat_map
    (fun (c : Cell.t) -> bad_cell_violations ~loc:(V.Cell c.Cell.name) c)
    (Library.cells lib)

let has_errors vs = List.exists (fun v -> v.V.severity = V.Error) vs

(* String shim for the callers that grew up on the retired
   [Smt_netlist.Check.validate]: same contract (empty list = well-formed,
   lines are human-readable), but every line is now a rendered typed
   violation.  Error severity only — the old checker had no advisory
   tier, so surfacing warnings here would break "validates to []"
   callers on designs that are merely suspicious. *)
let validate ?phase nl =
  List.map V.to_string (V.errors (check ?phase ~expect_buffered_mte:false nl))

let is_valid ?phase nl = validate ?phase nl = []
