(** Structural design-rule checker over a netlist (and, optionally, its
    placement and library).

    The rules encode the invariants the Improved-SMT flow relies on:
    connectivity (no undriven nets, no floating required pins, no
    combinational loops), the MT structure (every VGND-port MT-cell hangs
    from a live sleep switch, every sleep-crossing output carries a holder,
    the MTE net is driven and within the buffering fanout cap, footers have
    sane widths), and data sanity (no NaN/negative delay, leakage, cap, or
    area on any cell in use).

    Every finding is a typed {!Violation.t} so callers can branch on
    severity and class — the flow's guard mode and the fault-injection
    tests both do.  The bare-string validator that used to live in
    [Smt_netlist.Check] is now the thin {!validate} shim over [check]. *)

type phase =
  | Pre_mt  (** before switch insertion: VGND ports must not exist yet *)
  | Post_mt  (** after switch insertion: VGND and holder rules enforced *)

val infer_phase : Smt_netlist.Netlist.t -> phase
(** [Post_mt] iff the netlist contains a sleep switch or a VGND-port
    MT-cell; the right default for checking a finished design. *)

val check :
  ?phase:phase ->
  ?place:Smt_place.Placement.t ->
  ?expect_buffered_mte:bool ->
  Smt_netlist.Netlist.t ->
  Violation.t list
(** Run every rule; order is deterministic (net rules, instance rules,
    design rules).  [phase] defaults to [infer_phase].  With [place],
    instances lacking coordinates are reported.  [expect_buffered_mte]
    (default true) enables the MTE fanout-cap warning — the flow disables
    it for checkpoints before MTE buffering has run. *)

val check_library : Smt_cell.Library.t -> Violation.t list
(** Data-sanity sweep over every cell of a library. *)

val has_errors : Violation.t list -> bool

val validate : ?phase:phase -> Smt_netlist.Netlist.t -> string list
(** Legacy string view of [check]: the Error-severity findings rendered
    with {!Violation.to_string} (empty list = well-formed).  Replaces the
    retired [Smt_netlist.Check.validate]; the MTE fanout-cap advisory is
    suppressed, matching the old validator's scope. *)

val is_valid : ?phase:phase -> Smt_netlist.Netlist.t -> bool
