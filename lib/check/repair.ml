module Netlist = Smt_netlist.Netlist
module Nl_check = Smt_netlist.Check
module Placement = Smt_place.Placement
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library
module Geom = Smt_util.Geom
module V = Violation

type result = {
  repaired : int;
  actions : string list;
}

let mte_net_of nl =
  match Netlist.find_net nl "MTE" with
  | Some nid -> nid
  | None -> Netlist.add_input nl "MTE"

let finite_nonneg x = Float.is_finite x && x >= 0.0

let cell_is_sane (c : Cell.t) =
  List.for_all finite_nonneg
    [
      c.Cell.area; c.Cell.input_cap; c.Cell.intrinsic_delay; c.Cell.drive_res;
      c.Cell.leak_standby; c.Cell.leak_active;
    ]

let place_near place nl iid near =
  match place with
  | None -> ()
  | Some p ->
    let pt =
      match near with
      | Some other -> (
        match Placement.inst_point_opt p other with
        | Some pt -> pt
        | None -> Geom.center (Placement.die p))
      | None -> Geom.center (Placement.die p)
    in
    ignore nl;
    Placement.place_inst p iid pt

let repair ?place ?(clamp_width = 10.0) nl violations =
  let lib = Netlist.lib nl in
  let actions = ref [] in
  let act fmt = Printf.ksprintf (fun s -> actions := s :: !actions) fmt in
  let inst_of = function
    | V.Inst name -> Netlist.find_inst nl name
    | V.Design | V.Net _ | V.Cell _ -> None
  in
  let net_of = function
    | V.Net name -> Netlist.find_net nl name
    | V.Design | V.Inst _ | V.Cell _ -> None
  in
  let live iid = not (Netlist.is_dead nl iid) in
  let done_insts = Hashtbl.create 17 in
  let once iid f =
    if live iid && not (Hashtbl.mem done_insts iid) then begin
      Hashtbl.add done_insts iid ();
      f ()
    end
  in
  (* 1. Restore canonical cells where instance data went bad, so later
     passes (width clamping, switch candidacy) see sane numbers. *)
  List.iter
    (fun v ->
      match (v.V.code, inst_of v.V.loc) with
      | V.Bad_cell_data, Some iid ->
        once iid (fun () ->
            let c = Netlist.cell nl iid in
            match Library.find_opt lib c.Cell.name with
            | Some canon when cell_is_sane canon && not (cell_is_sane c) ->
              Netlist.replace_cell nl iid canon;
              act "restored canonical cell %s on %s" canon.Cell.name
                (Netlist.inst_name nl iid)
            | Some _ | None -> ())
      | _ -> ())
    violations;
  (* 2. Clamp degenerate footer widths. *)
  Hashtbl.reset done_insts;
  List.iter
    (fun v ->
      match (v.V.code, inst_of v.V.loc) with
      | V.Degenerate_switch, Some iid ->
        once iid (fun () ->
            let c = Netlist.cell nl iid in
            if not (Float.is_finite c.Cell.switch_width && c.Cell.switch_width > 0.0)
            then begin
              Netlist.replace_cell nl iid (Library.switch lib ~width:clamp_width);
              act "clamped switch %s width to %g" (Netlist.inst_name nl iid) clamp_width
            end)
      | _ -> ())
    violations;
  (* 3. Reconnect floating MTE pins. *)
  Hashtbl.reset done_insts;
  List.iter
    (fun v ->
      match (v.V.code, inst_of v.V.loc) with
      | V.Floating_input, Some iid ->
        once iid (fun () ->
            let c = Netlist.cell nl iid in
            let needs_mte =
              (c.Cell.kind = Func.Sleep_switch || c.Cell.kind = Func.Holder
              || Vth.style_equal c.Cell.style Vth.Mt_embedded)
              && Netlist.pin_net nl iid "MTE" = None
            in
            if needs_mte then begin
              Netlist.connect nl iid "MTE" (mte_net_of nl);
              act "reconnected %s.MTE to the MTE net" (Netlist.inst_name nl iid)
            end)
      | _ -> ())
    violations;
  (* 4. Re-home MT-cells whose VGND is unreachable (floating port, removed
     switch, or still portless): restyle where needed, then attach to the
     nearest live sane switch, creating one when none remains. *)
  let orphans =
    List.filter_map
      (fun v ->
        match (v.V.code, inst_of v.V.loc) with
        | (V.Unreachable_vgnd | V.Missing_vgnd_port), Some iid when live iid -> Some iid
        | _ -> None)
      violations
    |> List.sort_uniq compare
  in
  if orphans <> [] then begin
    List.iter
      (fun iid ->
        let c = Netlist.cell nl iid in
        if Vth.style_equal c.Cell.style Vth.Mt_no_vgnd then begin
          Netlist.replace_cell nl iid
            (Library.variant ~drive:c.Cell.drive lib c.Cell.kind Vth.Low Vth.Mt_vgnd);
          act "restyled %s to its VGND-port variant" (Netlist.inst_name nl iid)
        end)
      orphans;
    let candidates = Walk.sane_switches nl in
    let candidates =
      if candidates <> [] then candidates
      else begin
        let sw_cell = Library.switch lib ~width:clamp_width in
        let name = Netlist.fresh_inst_name nl "sw_repair" in
        let sw = Netlist.add_inst nl ~name sw_cell [ ("MTE", mte_net_of nl) ] in
        (match place with
        | Some p -> Placement.place_inst p sw (Placement.centroid p orphans)
        | None -> ());
        act "created replacement switch %s (width %g)" name clamp_width;
        [ sw ]
      end
    in
    let nearest iid =
      match place with
      | None -> List.hd candidates
      | Some p -> (
        match Placement.inst_point_opt p iid with
        | None -> List.hd candidates
        | Some pt ->
          List.fold_left
            (fun (best, best_d) sw ->
              match Placement.inst_point_opt p sw with
              | None -> (best, best_d)
              | Some sp ->
                let d = Geom.manhattan pt sp in
                if d < best_d then (sw, d) else (best, best_d))
            (List.hd candidates, infinity)
            candidates
          |> fst)
    in
    List.iter
      (fun iid ->
        let sw = nearest iid in
        Netlist.set_vgnd_switch nl iid (Some sw);
        act "attached %s VGND to switch %s" (Netlist.inst_name nl iid)
          (Netlist.inst_name nl sw))
      orphans
  end;
  (* 5. Holders: drop broken keepers, then (re-)insert where required. *)
  let holder_nets = Hashtbl.create 17 in
  List.iter
    (fun v ->
      match (v.V.code, net_of v.V.loc) with
      | V.Bad_holder, Some nid ->
        if not (Hashtbl.mem holder_nets nid) then begin
          Hashtbl.add holder_nets nid ();
          Netlist.set_holder nl nid None;
          act "detached broken keeper from net %s" (Netlist.net_name nl nid)
        end
      | _ -> ())
    violations;
  let needs_holder = Hashtbl.create 17 in
  List.iter
    (fun v ->
      match (v.V.code, net_of v.V.loc) with
      | (V.Missing_holder | V.Bad_holder), Some nid -> Hashtbl.replace needs_holder nid ()
      | _ -> ())
    violations;
  Hashtbl.iter
    (fun nid () ->
      if Nl_check.holder_required nl nid && Netlist.holder_of nl nid = None then begin
        let mte = mte_net_of nl in
        let name = Netlist.fresh_inst_name nl "holder_repair" in
        let h = Netlist.add_inst nl ~name (Library.holder lib) [ ("MTE", mte); ("Z", nid) ] in
        place_near place nl h
          (match Netlist.driver nl nid with
          | Some d -> Some d.Netlist.inst
          | None -> None);
        act "inserted holder %s on net %s" name (Netlist.net_name nl nid)
      end)
    needs_holder;
  (* 6. Remove switches that are still member-less after re-homing. *)
  List.iter
    (fun v ->
      match (v.V.code, inst_of v.V.loc) with
      | V.Orphan_switch, Some iid when live iid ->
        if Netlist.switch_members nl iid = [] then begin
          let name = Netlist.inst_name nl iid in
          Netlist.remove_inst nl iid;
          act "removed orphan switch %s" name
        end
      | _ -> ())
    violations;
  (* 7. Drop unplaced instances at the die center so geometry passes can
     run. *)
  (match place with
  | None -> ()
  | Some p ->
    List.iter
      (fun v ->
        match (v.V.code, inst_of v.V.loc) with
        | V.Unplaced_inst, Some iid when live iid ->
          if Placement.inst_point_opt p iid = None then begin
            Placement.place_inst p iid (Geom.center (Placement.die p));
            act "placed %s at the die center" (Netlist.inst_name nl iid)
          end
        | _ -> ())
      violations);
  let actions = List.rev !actions in
  { repaired = List.length actions; actions }
