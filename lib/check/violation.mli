(** Typed design-rule violations.

    Every structural problem the checker can detect is a [t]: a severity
    (is the design unusable or merely suspicious), a machine-matchable
    [code] (fault-injection tests key on these), a location, a
    human-readable message, and — when the repair pass knows what to do —
    a hint describing the fix. *)

type severity = Error | Warn

type location =
  | Design  (** whole-netlist property *)
  | Net of string
  | Inst of string
  | Cell of string  (** library cell *)

type code =
  | Undriven_net  (** loads but no driver and not a primary input *)
  | Dangling_net  (** driver but nothing reads the net *)
  | Floating_input  (** required instance pin left unconnected *)
  | Unconnected_output  (** instance output pin left unconnected *)
  | Comb_loop  (** combinational cycle *)
  | Premature_vgnd  (** VGND-port MT-cell before switch insertion *)
  | Missing_vgnd_port  (** MT-cell still portless after switch insertion *)
  | Unreachable_vgnd  (** VGND port floating or tied to a removed switch *)
  | Missing_holder  (** sleep-crossing output without an output holder *)
  | Bad_holder  (** net keeper is removed or not a HOLDER cell *)
  | Orphan_switch  (** sleep switch with no member MT-cells *)
  | Degenerate_switch  (** footer width zero, negative, or NaN *)
  | Mte_undriven  (** MTE net has sinks but no driver and is not a PI *)
  | Mte_unbuffered  (** MTE fanout beyond the technology cap, unbuffered *)
  | Bad_cell_data  (** NaN/negative delay, leakage, cap, or area *)
  | No_timing_endpoints
      (** no primary outputs and no flip-flops: STA cannot constrain the
          clock and [Flow.minimal_period] falls back to its default *)
  | Unplaced_inst  (** instance without placement coordinates *)

type t = {
  severity : severity;
  code : code;
  loc : location;
  message : string;
  hint : string option;  (** present iff the repair pass can fix this class *)
}

val code_name : code -> string
(** Stable kebab-case identifier, e.g. ["unreachable-vgnd"]. *)

val severity_name : severity -> string
val loc_name : location -> string

val repairable : code -> bool
(** Whether [Repair.repair] knows a fix for this class (the fix can still
    be impossible for a particular instance, e.g. no canonical library cell
    to restore). *)

val to_string : t -> string
(** One line: [severity code @ location: message (hint)]. *)

val errors : t list -> t list
val warnings : t list -> t list
val count : severity -> t list -> int

val summary : t list -> string
(** ["N errors, M warnings"]. *)
