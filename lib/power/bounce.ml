module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Tech = Smt_cell.Tech
module Activity = Smt_sim.Activity

let default_toggle = 0.5

let toggle_of activity iid =
  match activity with
  | Some a -> Float.max 0.05 (Activity.factor a iid)
  | None -> default_toggle

(* Switching current moves the charge on the driven net: scale with load,
   neutral (1.0) at a typical 7.5 fF. *)
let load_scale load_ff =
  let s = 0.5 +. (Float.max 0.0 load_ff /. 15.0) in
  if s < 0.4 then 0.4 else if s > 2.5 then 2.5 else s

let scale_of load_of iid =
  match load_of with Some f -> load_scale (f iid) | None -> 1.0

let simultaneous_current ?activity ?load_of nl ~members =
  match members with
  | [] -> 0.0
  | _ ->
    let peak iid = (Netlist.cell nl iid).Cell.peak_current *. scale_of load_of iid in
    let expected iid =
      let c = Netlist.cell nl iid in
      c.Cell.avg_current *. toggle_of activity iid *. scale_of load_of iid
    in
    let worst_iid =
      List.fold_left
        (fun best iid ->
          match best with
          | None -> Some iid
          | Some b -> if peak iid > peak b then Some iid else best)
        None members
    in
    (* The worst cell contributes its peak; everyone else their expected
       draw. *)
    let rest = List.fold_left (fun acc iid -> acc +. expected iid) 0.0 members in
    (match worst_iid with
    | Some w -> peak w +. rest -. expected w
    | None -> 0.0)

let sustained_current ?activity ?load_of nl ~members =
  List.fold_left
    (fun acc iid ->
      let c = Netlist.cell nl iid in
      acc +. (c.Cell.avg_current *. toggle_of activity iid *. scale_of load_of iid))
    0.0 members

(* A distributed line with current injected along it behaves like R/3 seen
   from the far end (uniform injection). *)
let vgnd_wire_res tech ~length = tech.Tech.wire_r_per_um *. Float.max 0.0 length /. 3.0

let bounce_v tech ~switch_width ~wire_length ~current_ua =
  if current_ua <= 0.0 then 0.0
  else begin
    let r_sw = Tech.switch_resistance tech ~width:(Float.max 0.1 switch_width) in
    let r_wire = vgnd_wire_res tech ~length:wire_length in
    current_ua *. 1e-6 *. (r_sw +. r_wire)
  end

type cluster_report = {
  switch : Netlist.inst_id;
  members : int;
  current_ua : float;
  wire_length : float;
  bounce : float;
  ok : bool;
}

let analyze ?activity ?load_of ?limit nl ~wire_length_of =
  let tech = Smt_cell.Library.tech (Netlist.lib nl) in
  let limit = match limit with Some l -> l | None -> tech.Tech.bounce_limit in
  List.map
    (fun (sw, members) ->
      let current = simultaneous_current ?activity ?load_of nl ~members in
      let width = (Netlist.cell nl sw).Cell.switch_width in
      let wire_length = wire_length_of sw in
      let b = bounce_v tech ~switch_width:width ~wire_length ~current_ua:current in
      {
        switch = sw;
        members = List.length members;
        current_ua = current;
        wire_length;
        bounce = b;
        ok = b <= limit;
      })
    (Netlist.switch_groups nl)

let worst reports = List.fold_left (fun acc r -> Float.max acc r.bounce) 0.0 reports

let violations reports =
  List.fold_left (fun acc r -> if r.ok then acc else acc + 1) 0 reports

let bounce_of_fn reports nl =
  let by_switch = Hashtbl.create 97 in
  List.iter (fun r -> Hashtbl.replace by_switch r.switch r.bounce) reports;
  let tech = Smt_cell.Library.tech (Netlist.lib nl) in
  fun iid ->
    let c = Netlist.cell nl iid in
    match c.Cell.style with
    | Smt_cell.Vth.Mt_vgnd | Smt_cell.Vth.Mt_no_vgnd -> (
      match Netlist.vgnd_switch nl iid with
      | Some sw -> (match Hashtbl.find_opt by_switch sw with Some b -> b | None -> 0.0)
      | None -> 0.0)
    | Smt_cell.Vth.Mt_embedded ->
      bounce_v tech ~switch_width:c.Cell.switch_width ~wire_length:0.0
        ~current_ua:c.Cell.peak_current
    | Smt_cell.Vth.Plain -> 0.0
