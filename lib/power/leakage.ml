module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth

type breakdown = {
  total : float;
  low_vth_logic : float;
  high_vth_logic : float;
  sequential : float;
  mt_residual : float;
  switches : float;
  embedded_mt : float;
  holders : float;
  infrastructure : float;
}

let zero =
  {
    total = 0.0;
    low_vth_logic = 0.0;
    high_vth_logic = 0.0;
    sequential = 0.0;
    mt_residual = 0.0;
    switches = 0.0;
    embedded_mt = 0.0;
    holders = 0.0;
    infrastructure = 0.0;
  }

(* Buffers inserted by CTS / MTE buffering / ECO are recognisable by name
   stem; they are ordinary cells, the classification is only for the
   report. *)
let is_infrastructure_inst nl iid =
  let name = Netlist.inst_name nl iid in
  let has_prefix p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  has_prefix "ctsbuf" || has_prefix "mtebuf" || has_prefix "ecobuf"

let standby nl =
  let acc = ref zero in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      let leak = c.Cell.leak_standby in
      let s = !acc in
      let s = { s with total = s.total +. leak } in
      let s =
        match c.Cell.kind with
        | Func.Sleep_switch -> { s with switches = s.switches +. leak }
        | Func.Holder -> { s with holders = s.holders +. leak }
        | Func.Dff -> { s with sequential = s.sequential +. leak }
        | Func.Inv | Func.Buf | Func.Clkbuf | Func.Nand2 | Func.Nand3 | Func.Nand4
        | Func.Nor2 | Func.Nor3 | Func.And2 | Func.And3 | Func.Or2 | Func.Or3
        | Func.Xor2 | Func.Xnor2 | Func.Aoi21 | Func.Oai21 | Func.Mux2 -> (
          match c.Cell.style with
          | Vth.Mt_embedded -> { s with embedded_mt = s.embedded_mt +. leak }
          | Vth.Mt_no_vgnd | Vth.Mt_vgnd -> { s with mt_residual = s.mt_residual +. leak }
          | Vth.Plain ->
            if is_infrastructure_inst nl iid then
              { s with infrastructure = s.infrastructure +. leak }
            else if c.Cell.vth = Vth.Low then
              { s with low_vth_logic = s.low_vth_logic +. leak }
            else { s with high_vth_logic = s.high_vth_logic +. leak })
      in
      acc := s);
  !acc

let active nl =
  let acc = ref 0.0 in
  Netlist.iter_insts nl (fun iid -> acc := !acc +. (Netlist.cell nl iid).Cell.leak_active);
  !acc

let scale b k =
  {
    total = b.total *. k;
    low_vth_logic = b.low_vth_logic *. k;
    high_vth_logic = b.high_vth_logic *. k;
    sequential = b.sequential *. k;
    mt_residual = b.mt_residual *. k;
    switches = b.switches *. k;
    embedded_mt = b.embedded_mt *. k;
    holders = b.holders *. k;
    infrastructure = b.infrastructure *. k;
  }

let at_corner corner nl =
  let tech = Smt_cell.Library.tech (Netlist.lib nl) in
  scale (standby nl) (Smt_cell.Corner.leakage_factor tech corner)

(* --- attribution: who exactly holds the residual leakage ------------- *)

type class_share = { share_label : string; share_cells : int; share_nw : float }

let shares_of_table table =
  Hashtbl.fold (fun label (cells, nw) acc -> { share_label = label; share_cells = cells; share_nw = nw } :: acc)
    table []
  |> List.sort (fun a b -> compare (b.share_nw, b.share_label) (a.share_nw, a.share_label))

let group_by nl label_of =
  let table = Hashtbl.create 31 in
  Netlist.iter_insts nl (fun iid ->
      let c = Netlist.cell nl iid in
      let label = label_of iid c in
      let cells, nw =
        match Hashtbl.find_opt table label with Some x -> x | None -> (0, 0.0)
      in
      Hashtbl.replace table label (cells + 1, nw +. c.Cell.leak_standby));
  shares_of_table table

let by_vth nl =
  group_by nl (fun _ (c : Cell.t) ->
      match c.Cell.style with
      | Vth.Plain -> Vth.to_string c.Cell.vth
      | style -> Printf.sprintf "%s %s" (Vth.to_string c.Cell.vth) (Vth.style_to_string style))

let by_function nl = group_by nl (fun _ (c : Cell.t) -> Func.to_string c.Cell.kind)

type cluster_attr = {
  ca_switch : Netlist.inst_id;
  ca_switch_name : string;
  ca_members : int;
  ca_cell_limit : int;
  ca_vgnd_um : float;
  ca_bounce_v : float;
  ca_bounce_limit : float;
  ca_members_nw : float;
  ca_switch_nw : float;
}

let clusters ?cell_limit ?bounce_limit nl ~bounce =
  let tech = Smt_cell.Library.tech (Netlist.lib nl) in
  let cell_limit =
    match cell_limit with Some l -> l | None -> tech.Smt_cell.Tech.em_cell_limit
  in
  let bounce_limit =
    match bounce_limit with Some l -> l | None -> tech.Smt_cell.Tech.bounce_limit
  in
  let groups = Hashtbl.create 97 in
  List.iter (fun (sw, ms) -> Hashtbl.replace groups sw ms) (Netlist.switch_groups nl);
  List.map
    (fun (r : Bounce.cluster_report) ->
      let members =
        Option.value (Hashtbl.find_opt groups r.Bounce.switch) ~default:[]
      in
      let members_nw =
        List.fold_left (fun acc m -> acc +. (Netlist.cell nl m).Cell.leak_standby) 0.0 members
      in
      {
        ca_switch = r.Bounce.switch;
        ca_switch_name = Netlist.inst_name nl r.Bounce.switch;
        ca_members = r.Bounce.members;
        ca_cell_limit = cell_limit;
        ca_vgnd_um = r.Bounce.wire_length;
        ca_bounce_v = r.Bounce.bounce;
        ca_bounce_limit = bounce_limit;
        ca_members_nw = members_nw;
        ca_switch_nw = (Netlist.cell nl r.Bounce.switch).Cell.leak_standby;
      })
    bounce
  |> List.sort (fun a b -> compare (b.ca_members_nw +. b.ca_switch_nw) (a.ca_members_nw +. a.ca_switch_nw))

let pp fmt b =
  Format.fprintf fmt
    "standby %.1f nW (lv=%.1f hv=%.1f seq=%.1f mt=%.1f sw=%.1f emb=%.1f hold=%.1f infra=%.1f)"
    b.total b.low_vth_logic b.high_vth_logic b.sequential b.mt_residual b.switches
    b.embedded_mt b.holders b.infrastructure
