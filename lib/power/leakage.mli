(** Standby leakage accounting — the paper's Table 1 "Leakage" rows.

    In standby the MTE signal is asserted: MT-cells are cut from ground and
    leak only a residual plus their (shared or embedded) high-Vth switch;
    plain cells — including every low-Vth cell a Dual-Vth design keeps on
    its critical paths — leak at full rate.  All figures in nW. *)

type breakdown = {
  total : float;
  low_vth_logic : float;  (** plain low-Vth combinational cells *)
  high_vth_logic : float;
  sequential : float;  (** flip-flops (always powered) *)
  mt_residual : float;  (** MT-cell junction/residual leakage *)
  switches : float;  (** standalone footers; embedded ones count in [mt_residual]'s cells *)
  embedded_mt : float;  (** conventional MT-cells (switch+holder inside) *)
  holders : float;
  infrastructure : float;  (** clock tree, MTE buffers and other buffers *)
}

val standby : Smt_netlist.Netlist.t -> breakdown

val active : Smt_netlist.Netlist.t -> float
(** Total leakage with everything powered (active-mode floor). *)

val at_corner : Smt_cell.Corner.t -> Smt_netlist.Netlist.t -> breakdown
(** [standby] scaled to a PVT corner (exponential in temperature, see
    {!Smt_cell.Corner}). *)

val scale : breakdown -> float -> breakdown
(** Multiply every component (corner scaling helper). *)

(** {1 Attribution}

    Where the paper's residual 9–15% standby leakage actually sits: the
    same total as {!standby}, sliced along the axes a designer acts on
    (swap a Vth class, restructure a function, resize or split a
    cluster). *)

type class_share = {
  share_label : string;
  share_cells : int;  (** live instances in the class *)
  share_nw : float;
}

val by_vth : Smt_netlist.Netlist.t -> class_share list
(** Standby leakage grouped by threshold class — [low-vth], [high-vth],
    and the MT styles as [low-vth mt-vgnd] etc. — descending by nW.
    Shares sum to {!standby}'s total. *)

val by_function : Smt_netlist.Netlist.t -> class_share list
(** Standby leakage grouped by cell function ([nand2], [dff], ...),
    descending by nW.  Shares sum to {!standby}'s total. *)

(** Per-cluster attribution: one record per sleep switch, joining the
    bounce analysis (current, VGND length, bounce vs limit) with the
    standby leakage its members and footer still draw, plus the occupancy
    against the electromigration [cell_limit]. *)
type cluster_attr = {
  ca_switch : Smt_netlist.Netlist.inst_id;
  ca_switch_name : string;
  ca_members : int;
  ca_cell_limit : int;  (** EM cap the clustering ran under *)
  ca_vgnd_um : float;
  ca_bounce_v : float;
  ca_bounce_limit : float;  (** [ca_bounce_limit -. ca_bounce_v] is the margin *)
  ca_members_nw : float;  (** residual leakage of the member MT-cells *)
  ca_switch_nw : float;  (** the footer's own leakage *)
}

val clusters :
  ?cell_limit:int ->
  ?bounce_limit:float ->
  Smt_netlist.Netlist.t ->
  bounce:Bounce.cluster_report list ->
  cluster_attr list
(** One attribution per report in [bounce] (see {!Bounce.analyze}),
    descending by cluster leakage.  Defaults for the limits come from the
    library's technology; pass the flow's actual {i cluster_params} values
    when they were overridden. *)

val pp : Format.formatter -> breakdown -> unit
