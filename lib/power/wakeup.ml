module Netlist = Smt_netlist.Netlist
module Cell = Smt_cell.Cell
module Tech = Smt_cell.Tech
module Library = Smt_cell.Library

type cluster_wake = {
  switch : Netlist.inst_id;
  members : int;
  vgnd_cap_ff : float;
  wake_time_ps : float;
  wake_energy_fj : float;
  rush_current_ua : float;
}

(* Internal capacitance a cell hangs on its virtual ground: proportional to
   its transistor width, for which area is our proxy. *)
let cell_vgnd_cap cell = 0.8 *. cell.Cell.area

let analyze nl ~wire_length_of =
  let tech = Library.tech (Netlist.lib nl) in
  List.map
    (fun (sw, members) ->
      let cap_cells =
        List.fold_left (fun acc iid -> acc +. cell_vgnd_cap (Netlist.cell nl iid)) 0.0 members
      in
      let cap_wire = wire_length_of sw *. tech.Tech.wire_c_per_um in
      let cap = cap_cells +. cap_wire in
      let width = (Netlist.cell nl sw).Cell.switch_width in
      let r = Tech.switch_resistance tech ~width:(Float.max 0.1 width) in
      (* ohm * fF = 1e-3 ps; settle to ~5% in 3 time constants *)
      let tau_ps = r *. cap *. 1e-3 in
      let energy_fj = 0.5 *. cap *. tech.Tech.vdd *. tech.Tech.vdd in
      let rush = tech.Tech.vdd /. r *. 1e6 in
      {
        switch = sw;
        members = List.length members;
        vgnd_cap_ff = cap;
        wake_time_ps = 3.0 *. tau_ps;
        wake_energy_fj = energy_fj;
        rush_current_ua = rush;
      })
    (Netlist.switch_groups nl)

let worst_wake_time reports =
  List.fold_left (fun acc r -> Float.max acc r.wake_time_ps) 0.0 reports

let total_wake_energy reports =
  List.fold_left (fun acc r -> acc +. r.wake_energy_fj) 0.0 reports

let block_wake_time nl ~wire_length_of = worst_wake_time (analyze nl ~wire_length_of)
