let cell_count lib = List.length (Library.cells lib)

let pin_block b ~name ~dir ?cap ?(timing = "") () =
  Buffer.add_string b (Printf.sprintf "    pin(%s) {\n" name);
  Buffer.add_string b (Printf.sprintf "      direction : %s;\n" dir);
  (match cap with
  | Some c -> Buffer.add_string b (Printf.sprintf "      capacitance : %.4f;\n" c)
  | None -> ());
  if timing <> "" then Buffer.add_string b timing;
  Buffer.add_string b "    }\n"

let timing_block (cell : Cell.t) related =
  Printf.sprintf
    "      timing() {\n\
    \        related_pin : \"%s\";\n\
    \        intrinsic_rise : %.4f;\n\
    \        intrinsic_fall : %.4f;\n\
    \        rise_resistance : %.4f;\n\
    \        fall_resistance : %.4f;\n\
    \      }\n"
    related cell.Cell.intrinsic_delay cell.Cell.intrinsic_delay cell.Cell.drive_res
    cell.Cell.drive_res

let emit_cell b (cell : Cell.t) =
  Buffer.add_string b (Printf.sprintf "  cell(%s) {\n" cell.Cell.name);
  Buffer.add_string b (Printf.sprintf "    area : %.4f;\n" cell.Cell.area);
  Buffer.add_string b
    (Printf.sprintf "    cell_leakage_power : %.6f;\n" cell.Cell.leak_standby);
  (match cell.Cell.kind with
  | Func.Dff ->
    Buffer.add_string b "    ff(IQ, IQN) { clocked_on : \"CK\"; next_state : \"D\"; }\n"
  | _ -> ());
  Array.iter
    (fun pin -> pin_block b ~name:pin ~dir:"input" ~cap:cell.Cell.input_cap ())
    (Func.input_names cell.Cell.kind);
  (match cell.Cell.kind with
  | Func.Dff -> pin_block b ~name:"CK" ~dir:"input" ~cap:cell.Cell.input_cap ()
  | Func.Sleep_switch | Func.Holder ->
    pin_block b ~name:"MTE" ~dir:"input" ~cap:cell.Cell.input_cap ()
  | _ ->
    if Vth.style_equal cell.Cell.style Vth.Mt_embedded then
      pin_block b ~name:"MTE" ~dir:"input" ~cap:cell.Cell.input_cap ());
  Array.iter
    (fun pin ->
      let related =
        match Func.input_names cell.Cell.kind with
        | [||] -> "CK"
        | ins -> ins.(0)
      in
      pin_block b ~name:pin ~dir:"output" ~timing:(timing_block cell related) ())
    (Func.output_names cell.Cell.kind);
  Buffer.add_string b "  }\n"

let to_string lib =
  let b = Buffer.create 16384 in
  Buffer.add_string b "library(selective_mt) {\n";
  Buffer.add_string b "  time_unit : \"1ps\";\n";
  Buffer.add_string b "  capacitive_load_unit (1, ff);\n";
  Buffer.add_string b "  leakage_power_unit : \"1nW\";\n";
  let cells =
    List.sort (fun (a : Cell.t) b -> compare a.Cell.name b.Cell.name) (Library.cells lib)
  in
  List.iter (emit_cell b) cells;
  Buffer.add_string b "}\n";
  Buffer.contents b

let to_file lib path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string lib))

(* --- subset reader --- *)

type parsed_cell = {
  p_name : string;
  p_area : float;
  p_leakage : float;
  p_input_pins : (string * float) list;
  p_output_pins : string list;
}

type token =
  | Tword of string
  | Tlbrace
  | Trbrace
  | Tlparen
  | Trparen
  | Tcolon
  | Tsemi

(* Every token carries the 1-based line:column where it starts, so parse
   errors point into the source text instead of just naming a construct. *)
let tokenize ~file text =
  let tokens = ref [] in
  let n = String.length text in
  let i = ref 0 in
  let line = ref 1 and bol = ref 0 in
  let pos () = (!line, !i - !bol + 1) in
  let fail_at (l, c) msg =
    failwith (Printf.sprintf "%s:%d:%d: Liberty.parse: %s" file l c msg)
  in
  let push t = tokens := (t, pos ()) :: !tokens in
  let word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = '.' || c = '-' || c = '+'
  in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr i;
      incr line;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' || c = ',' then incr i
    else if c = '{' then (push Tlbrace; incr i)
    else if c = '}' then (push Trbrace; incr i)
    else if c = '(' then (push Tlparen; incr i)
    else if c = ')' then (push Trparen; incr i)
    else if c = ':' then (push Tcolon; incr i)
    else if c = ';' then (push Tsemi; incr i)
    else if c = '"' then begin
      let start_pos = pos () in
      let j =
        try String.index_from text (!i + 1) '"'
        with Not_found -> fail_at start_pos "unterminated string"
      in
      tokens := (Tword (String.sub text (!i + 1) (j - !i - 1)), start_pos) :: !tokens;
      i := j + 1
    end
    else if word_char c then begin
      let start = !i and start_pos = pos () in
      while !i < n && word_char text.[!i] do incr i done;
      tokens := (Tword (String.sub text start (!i - start)), start_pos) :: !tokens
    end
    else fail_at (pos ()) (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !tokens

let parse ?(file = "<liberty>") text =
  let tokens = ref (tokenize ~file text) in
  let last_pos = ref (1, 1) in
  let fail msg =
    let l, c = !last_pos in
    failwith (Printf.sprintf "%s:%d:%d: Liberty.parse: %s" file l c msg)
  in
  let next () =
    match !tokens with
    | (t, pos) :: rest ->
      tokens := rest;
      last_pos := pos;
      t
    | [] -> fail "unexpected end of input"
  in
  let peek () = match !tokens with (t, _) :: _ -> Some t | [] -> None in
  (* skip a balanced { ... } block *)
  let rec skip_block depth =
    match next () with
    | Tlbrace -> skip_block (depth + 1)
    | Trbrace -> if depth > 1 then skip_block (depth - 1)
    | Tword _ | Tlparen | Trparen | Tcolon | Tsemi -> skip_block depth
  in
  let parse_float s =
    match float_of_string_opt s with Some f -> f | None -> fail (Printf.sprintf "bad number %S" s)
  in
  let cells = ref [] in
  (* inside a pin group: read attributes until the matching brace *)
  let parse_pin name =
    let dir = ref "" and cap = ref 0.0 in
    let rec attrs () =
      match next () with
      | Trbrace -> ()
      | Tword "direction" ->
        (match (next (), next (), next ()) with
        | Tcolon, Tword d, Tsemi -> dir := d
        | _ -> fail "bad direction attribute (expected direction : <dir> ;)");
        attrs ()
      | Tword "capacitance" ->
        (match (next (), next (), next ()) with
        | Tcolon, Tword v, Tsemi -> cap := parse_float v
        | _ -> fail "bad capacitance attribute (expected capacitance : <value> ;)");
        attrs ()
      | Tword "timing" ->
        (match (next (), next (), next ()) with
        | Tlparen, Trparen, Tlbrace -> skip_block 1
        | _ -> fail "bad timing group (expected timing() { ... })");
        attrs ()
      | Tword _ | Tlbrace | Tlparen | Trparen | Tcolon | Tsemi -> attrs ()
    in
    attrs ();
    (name, !dir, !cap)
  in
  let parse_cell name =
    let area = ref 0.0 and leak = ref 0.0 in
    let ins = ref [] and outs = ref [] in
    let rec body () =
      match next () with
      | Trbrace -> ()
      | Tword "area" ->
        (match (next (), next (), next ()) with
        | Tcolon, Tword v, Tsemi -> area := parse_float v
        | _ -> fail "bad area attribute (expected area : <value> ;)");
        body ()
      | Tword "cell_leakage_power" ->
        (match (next (), next (), next ()) with
        | Tcolon, Tword v, Tsemi -> leak := parse_float v
        | _ -> fail "bad leakage attribute (expected cell_leakage_power : <value> ;)");
        body ()
      | Tword "pin" ->
        (match (next (), next (), next (), next ()) with
        | Tlparen, Tword pin_name, Trparen, Tlbrace ->
          let name, dir, cap = parse_pin pin_name in
          if String.equal dir "input" then ins := (name, cap) :: !ins
          else outs := name :: !outs
        | _ -> fail "bad pin group (expected pin(<name>) { ... })");
        body ()
      | Tword "ff" ->
        (match (next (), next (), next (), next (), next ()) with
        | Tlparen, Tword _, Tword _, Trparen, Tlbrace -> skip_block 1
        | _ -> fail "bad ff group (expected ff(<iq>, <iqn>) { ... })");
        body ()
      | Tword _ | Tlbrace | Tlparen | Trparen | Tcolon | Tsemi -> body ()
    in
    body ();
    {
      p_name = name;
      p_area = !area;
      p_leakage = !leak;
      p_input_pins = List.rev !ins;
      p_output_pins = List.rev !outs;
    }
  in
  let rec top () =
    match peek () with
    | None -> ()
    | Some _ -> (
      match next () with
      | Tword "cell" -> (
        match (next (), next (), next (), next ()) with
        | Tlparen, Tword name, Trparen, Tlbrace ->
          cells := parse_cell name :: !cells;
          top ()
        | _ -> fail "bad cell header (expected cell(<name>) {)")
      | Tword _ | Tlbrace | Trbrace | Tlparen | Trparen | Tcolon | Tsemi -> top ())
  in
  top ();
  List.rev !cells
