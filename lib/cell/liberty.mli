(** Liberty (.lib) export of the cell library.

    Emits the industry interchange format's essential attributes — per-cell
    area, standby leakage, pin directions and capacitances, and the linear
    timing arc as intrinsic/resistance coefficients — so the library's
    numbers can be inspected with standard tooling or diffed against a real
    kit.  Sized sleep switches present in the library are exported too. *)

val to_string : Library.t -> string

val to_file : Library.t -> string -> unit

val cell_count : Library.t -> int
(** Number of cells the export will contain. *)

type parsed_cell = {
  p_name : string;
  p_area : float;
  p_leakage : float;
  p_input_pins : (string * float) list;  (** pin name, capacitance *)
  p_output_pins : string list;
}

val parse : ?file:string -> string -> parsed_cell list
(** Subset reader for the text [to_string] emits (group/attribute syntax
    with one level of pin nesting).  Raises [Failure] on malformed input
    with a [file:line:column:] prefix locating the offending token;
    [file] (default ["<liberty>"]) names the source in that prefix. *)
