module Vec = Smt_util.Vec
module Cell = Smt_cell.Cell
module Func = Smt_cell.Func
module Vth = Smt_cell.Vth
module Library = Smt_cell.Library

type inst_id = int
type net_id = int

type pin = { inst : inst_id; pin_name : string }

type net = {
  net_name : string;
  mutable driver : pin option;
  mutable n_is_pi : bool;
  mutable n_is_po : bool;
  mutable n_is_clock : bool;
  mutable sinks : pin list;
  mutable holder : inst_id option;
}

type instance = {
  i_name : string;
  mutable i_cell : Cell.t;
  mutable i_conns : (string * net_id) list;
  mutable i_vgnd : inst_id option;
  mutable i_dead : bool;
  mutable i_domain : string option;
  mutable i_isolation : bool;
}

type t = {
  d_name : string;
  d_lib : Library.t;
  insts : instance Vec.t;
  nets : net Vec.t;
  net_index : (string, net_id) Hashtbl.t;
  inst_index : (string, inst_id) Hashtbl.t;
  (* Newest first: ports prepend on add (O(1), not O(ports)) and the
     [inputs]/[outputs] accessors reverse into declaration order. *)
  mutable ports_in : (string * net_id) list;
  mutable ports_out : (string * net_id) list;
  mutable clock : net_id option;
  mutable uniq : int;
  (* Power-domain table, in declaration order (newest first, reversed by
     [domains]); [None] = an always-on domain with no sleep enable. *)
  mutable doms : (string * net_id option) list;
  (* Touched-net journal: every structural mutation records the nets whose
     standby value could change, so an incremental re-analysis knows where
     to re-seed.  Drained (and cleared) by [drain_touched]. *)
  touched : (net_id, unit) Hashtbl.t;
}

exception Combinational_cycle of string

let create ~name ~lib =
  {
    d_name = name;
    d_lib = lib;
    insts = Vec.create ();
    nets = Vec.create ();
    net_index = Hashtbl.create 997;
    inst_index = Hashtbl.create 997;
    ports_in = [];
    ports_out = [];
    clock = None;
    uniq = 0;
    doms = [];
    touched = Hashtbl.create 97;
  }

let design_name t = t.d_name
let lib t = t.d_lib

(* --- touched-net journal --- *)

let touch t nid = Hashtbl.replace t.touched nid ()

let drain_touched t =
  let acc = Hashtbl.fold (fun nid () acc -> nid :: acc) t.touched [] in
  Hashtbl.reset t.touched;
  List.sort_uniq compare acc

(* --- nets --- *)

let add_net ?(clock = false) t name =
  if Hashtbl.mem t.net_index name then
    invalid_arg (Printf.sprintf "Netlist.add_net: duplicate net %s" name);
  let id =
    Vec.push t.nets
      {
        net_name = name;
        driver = None;
        n_is_pi = false;
        n_is_po = false;
        n_is_clock = clock;
        sinks = [];
        holder = None;
      }
  in
  Hashtbl.add t.net_index name id;
  if clock && t.clock = None then t.clock <- Some id;
  touch t id;
  id

let fresh_net t stem =
  let rec try_name () =
    t.uniq <- t.uniq + 1;
    let name = Printf.sprintf "%s_%d" stem t.uniq in
    if Hashtbl.mem t.net_index name then try_name () else name
  in
  add_net t (try_name ())

let add_input ?(clock = false) t name =
  let id = add_net ~clock t name in
  (Vec.get t.nets id).n_is_pi <- true;
  t.ports_in <- (name, id) :: t.ports_in;
  id

let add_output t name =
  let id = add_net t name in
  (Vec.get t.nets id).n_is_po <- true;
  t.ports_out <- (name, id) :: t.ports_out;
  id

let mark_output t nid =
  let n = Vec.get t.nets nid in
  if not n.n_is_po then begin
    n.n_is_po <- true;
    t.ports_out <- (n.net_name, nid) :: t.ports_out;
    touch t nid
  end

let mark_clock t nid =
  let n = Vec.get t.nets nid in
  n.n_is_clock <- true;
  if t.clock = None then t.clock <- Some nid;
  touch t nid

let net_count t = Vec.length t.nets
let net_name t nid = (Vec.get t.nets nid).net_name
let find_net t name = Hashtbl.find_opt t.net_index name
let is_pi t nid = (Vec.get t.nets nid).n_is_pi
let is_po t nid = (Vec.get t.nets nid).n_is_po
let is_clock_net t nid = (Vec.get t.nets nid).n_is_clock
let driver t nid = (Vec.get t.nets nid).driver
let sinks t nid = (Vec.get t.nets nid).sinks
let holder_of t nid = (Vec.get t.nets nid).holder
let inputs t = List.rev t.ports_in
let outputs t = List.rev t.ports_out
let clock_net t = t.clock

(* --- pin directions --- *)

type dir = Dir_in | Dir_out | Dir_holder_z

let pin_dir (cell : Cell.t) pin_name =
  let outs = Func.output_names cell.Cell.kind in
  if Array.exists (String.equal pin_name) outs then Dir_out
  else if String.equal pin_name "MTE" && Vth.style_equal cell.Cell.style Vth.Mt_embedded then
    (* conventional MT-cells carry their own switch, controlled by MTE *)
    Dir_in
  else
    match cell.Cell.kind with
    | Func.Holder when String.equal pin_name "Z" -> Dir_holder_z
    | Func.Holder when String.equal pin_name "MTE" -> Dir_in
    | Func.Sleep_switch when String.equal pin_name "MTE" -> Dir_in
    | Func.Dff when String.equal pin_name "CK" -> Dir_in
    | k ->
      let ins = Func.input_names k in
      if Array.exists (String.equal pin_name) ins then Dir_in
      else
        invalid_arg
          (Printf.sprintf "Netlist: cell %s has no pin %s" cell.Cell.name pin_name)

(* --- instances --- *)

let inst_count t = Vec.length t.insts
let inst_name t iid = (Vec.get t.insts iid).i_name
let find_inst t name = Hashtbl.find_opt t.inst_index name
let cell t iid = (Vec.get t.insts iid).i_cell
let conns t iid = (Vec.get t.insts iid).i_conns
let is_dead t iid = (Vec.get t.insts iid).i_dead

let pin_net t iid pin_name =
  List.assoc_opt pin_name (Vec.get t.insts iid).i_conns

let output_net t iid =
  let inst = Vec.get t.insts iid in
  match Func.output_names inst.i_cell.Cell.kind with
  | [||] -> None
  | outs -> List.assoc_opt outs.(0) inst.i_conns

let attach t iid pin_name nid =
  let inst = Vec.get t.insts iid in
  let n = Vec.get t.nets nid in
  match pin_dir inst.i_cell pin_name with
  | Dir_out ->
    (match n.driver with
    | Some p when not (Vec.get t.insts p.inst).i_dead ->
      invalid_arg
        (Printf.sprintf "Netlist: net %s already driven by %s.%s" n.net_name
           (Vec.get t.insts p.inst).i_name p.pin_name)
    | Some _ | None ->
      if n.n_is_pi then
        invalid_arg (Printf.sprintf "Netlist: net %s is a primary input" n.net_name);
      n.driver <- Some { inst = iid; pin_name };
      touch t nid)
  | Dir_in ->
    n.sinks <- { inst = iid; pin_name } :: n.sinks;
    touch t nid
  | Dir_holder_z ->
    n.holder <- Some iid;
    touch t nid

let detach t iid pin_name nid =
  let inst = Vec.get t.insts iid in
  let n = Vec.get t.nets nid in
  match pin_dir inst.i_cell pin_name with
  | Dir_out -> (
    match n.driver with
    | Some p when p.inst = iid && String.equal p.pin_name pin_name ->
      n.driver <- None;
      touch t nid
    | Some _ | None -> ())
  | Dir_in ->
    n.sinks <-
      List.filter (fun p -> not (p.inst = iid && String.equal p.pin_name pin_name)) n.sinks;
    touch t nid
  | Dir_holder_z ->
    if n.holder = Some iid then begin
      n.holder <- None;
      touch t nid
    end

let add_inst t ~name cell pins =
  if Hashtbl.mem t.inst_index name then
    invalid_arg (Printf.sprintf "Netlist.add_inst: duplicate instance %s" name);
  let iid =
    Vec.push t.insts
      {
        i_name = name;
        i_cell = cell;
        i_conns = [];
        i_vgnd = None;
        i_dead = false;
        i_domain = None;
        i_isolation = false;
      }
  in
  Hashtbl.add t.inst_index name iid;
  let add_pin (pin_name, nid) =
    let inst = Vec.get t.insts iid in
    if List.mem_assoc pin_name inst.i_conns then
      invalid_arg (Printf.sprintf "Netlist: duplicate pin %s on %s" pin_name name);
    attach t iid pin_name nid;
    inst.i_conns <- inst.i_conns @ [ (pin_name, nid) ]
  in
  List.iter add_pin pins;
  iid

let fresh_inst_name t stem =
  let rec try_name () =
    t.uniq <- t.uniq + 1;
    let name = Printf.sprintf "%s_%d" stem t.uniq in
    if Hashtbl.mem t.inst_index name then try_name () else name
  in
  try_name ()

let replace_cell t iid new_cell =
  let inst = Vec.get t.insts iid in
  let same_pins =
    List.for_all
      (fun (p, _) ->
        match pin_dir new_cell p with
        | Dir_in | Dir_out | Dir_holder_z -> true
        | exception Invalid_argument _ -> false)
      inst.i_conns
  in
  if not same_pins then
    invalid_arg
      (Printf.sprintf "Netlist.replace_cell: %s -> %s changes pin interface"
         inst.i_cell.Cell.name new_cell.Cell.name);
  inst.i_cell <- new_cell;
  (* a style/strength swap can change the standby supply of every pin net *)
  List.iter (fun (_, nid) -> touch t nid) inst.i_conns

let connect t iid pin_name nid =
  let inst = Vec.get t.insts iid in
  (match List.assoc_opt pin_name inst.i_conns with
  | Some old -> detach t iid pin_name old
  | None -> ());
  attach t iid pin_name nid;
  inst.i_conns <- (pin_name, nid) :: List.remove_assoc pin_name inst.i_conns

let disconnect t iid pin_name =
  let inst = Vec.get t.insts iid in
  match List.assoc_opt pin_name inst.i_conns with
  | None -> ()
  | Some nid ->
    detach t iid pin_name nid;
    inst.i_conns <- List.remove_assoc pin_name inst.i_conns

let move_sink t ~from_net pin ~to_net =
  let n_from = Vec.get t.nets from_net in
  if not (List.exists (fun p -> p.inst = pin.inst && String.equal p.pin_name pin.pin_name) n_from.sinks)
  then
    invalid_arg
      (Printf.sprintf "Netlist.move_sink: %s.%s is not a sink of %s"
         (inst_name t pin.inst) pin.pin_name n_from.net_name);
  connect t pin.inst pin.pin_name to_net

let remove_inst t iid =
  let inst = Vec.get t.insts iid in
  if not inst.i_dead then begin
    List.iter (fun (p, nid) -> detach t iid p nid) inst.i_conns;
    (* removing a sleep switch changes the standby supply of every member:
       their outputs must re-seed on an incremental re-analysis *)
    (if inst.i_cell.Cell.kind = Func.Sleep_switch then
       Vec.iteri
         (fun _ m ->
           if (not m.i_dead) && m.i_vgnd = Some iid then
             List.iter (fun (_, nid) -> touch t nid) m.i_conns)
         t.insts);
    inst.i_conns <- [];
    inst.i_vgnd <- None;
    inst.i_dead <- true;
    Hashtbl.remove t.inst_index inst.i_name
  end

let set_vgnd_switch t iid sw =
  let inst = Vec.get t.insts iid in
  (match inst.i_cell.Cell.style with
  | Vth.Mt_vgnd -> ()
  | Vth.Plain | Vth.Mt_embedded | Vth.Mt_no_vgnd ->
    invalid_arg
      (Printf.sprintf "Netlist.set_vgnd_switch: %s has no VGND port (%s)" inst.i_name
         (Vth.style_to_string inst.i_cell.Cell.style)));
  (match sw with
  | Some sw_id ->
    let sw_inst = Vec.get t.insts sw_id in
    (match sw_inst.i_cell.Cell.kind with
    | Func.Sleep_switch -> ()
    | _ ->
      invalid_arg
        (Printf.sprintf "Netlist.set_vgnd_switch: %s is not a sleep switch" sw_inst.i_name))
  | None -> ());
  inst.i_vgnd <- sw;
  List.iter (fun (_, nid) -> touch t nid) inst.i_conns

let vgnd_switch t iid = (Vec.get t.insts iid).i_vgnd

let set_holder t nid h =
  (Vec.get t.nets nid).holder <- h;
  touch t nid

(* --- power domains --- *)

let add_domain t ~name ~mte =
  if List.mem_assoc name t.doms then
    invalid_arg (Printf.sprintf "Netlist.add_domain: duplicate domain %s" name);
  t.doms <- (name, mte) :: t.doms;
  match mte with Some nid -> touch t nid | None -> ()

let domains t = List.rev t.doms

let set_inst_domain t iid dom =
  (match dom with
  | Some d when not (List.mem_assoc d t.doms) ->
    invalid_arg (Printf.sprintf "Netlist.set_inst_domain: unknown domain %s" d)
  | Some _ | None -> ());
  let inst = Vec.get t.insts iid in
  inst.i_domain <- dom;
  List.iter (fun (_, nid) -> touch t nid) inst.i_conns

let inst_domain t iid = (Vec.get t.insts iid).i_domain

let set_isolation t iid iso =
  let inst = Vec.get t.insts iid in
  inst.i_isolation <- iso;
  List.iter (fun (_, nid) -> touch t nid) inst.i_conns

let is_isolation t iid = (Vec.get t.insts iid).i_isolation

(* --- traversal --- *)

let live_insts t =
  let acc = ref [] in
  Vec.iteri (fun i inst -> if not inst.i_dead then acc := i :: !acc) t.insts;
  List.rev !acc

let iter_insts t f = Vec.iteri (fun i inst -> if not inst.i_dead then f i) t.insts

let iter_nets t f = Vec.iteri (fun i _ -> f i) t.nets

let fanout_insts t iid =
  match output_net t iid with
  | None -> []
  | Some nid ->
    (Vec.get t.nets nid).sinks
    |> List.map (fun p -> p.inst)
    |> List.sort_uniq compare

let fanin_insts t iid =
  let inst = Vec.get t.insts iid in
  inst.i_conns
  |> List.filter_map (fun (pin_name, nid) ->
         match pin_dir inst.i_cell pin_name with
         | Dir_in -> (
           match (Vec.get t.nets nid).driver with Some p -> Some p.inst | None -> None)
         | Dir_out | Dir_holder_z -> None)
  |> List.sort_uniq compare

let is_comb_kind kind =
  (not (Func.is_sequential kind)) && not (Func.is_infrastructure kind)

let topo_order t =
  (* Kahn levelization over the combinational frame: flip-flop outputs and
     primary inputs are sources; flip-flop inputs and primary outputs are
     sinks.  Remaining instances at the end expose a combinational cycle. *)
  let n = Vec.length t.insts in
  let pending = Array.make n 0 in
  let comb = Array.make n false in
  Vec.iteri
    (fun i inst ->
      if (not inst.i_dead) && is_comb_kind inst.i_cell.Cell.kind then begin
        comb.(i) <- true;
        let deps =
          List.fold_left
            (fun acc (pin_name, nid) ->
              match pin_dir inst.i_cell pin_name with
              | Dir_in -> (
                match (Vec.get t.nets nid).driver with
                | Some p ->
                  let d = Vec.get t.insts p.inst in
                  if (not d.i_dead) && is_comb_kind d.i_cell.Cell.kind then acc + 1 else acc
                | None -> acc)
              | Dir_out | Dir_holder_z -> acc)
            0 inst.i_conns
        in
        pending.(i) <- deps
      end)
    t.insts;
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if comb.(i) && pending.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order := i :: !order;
    incr seen;
    (match output_net t i with
    | None -> ()
    | Some nid ->
      List.iter
        (fun p ->
          if comb.(p.inst) then begin
            pending.(p.inst) <- pending.(p.inst) - 1;
            if pending.(p.inst) = 0 then Queue.add p.inst queue
          end)
        (Vec.get t.nets nid).sinks)
  done;
  let total = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 comb in
  if !seen <> total then begin
    let stuck = ref "" in
    for i = 0 to n - 1 do
      if comb.(i) && pending.(i) > 0 && String.equal !stuck "" then
        stuck := (Vec.get t.insts i).i_name
    done;
    raise (Combinational_cycle !stuck)
  end;
  List.rev !order

let switch_members t sw_id =
  let acc = ref [] in
  Vec.iteri
    (fun i inst -> if (not inst.i_dead) && inst.i_vgnd = Some sw_id then acc := i :: !acc)
    t.insts;
  List.rev !acc

let switches t =
  let acc = ref [] in
  Vec.iteri
    (fun i inst ->
      if (not inst.i_dead) && inst.i_cell.Cell.kind = Func.Sleep_switch then acc := i :: !acc)
    t.insts;
  List.rev !acc

let switch_groups t =
  (* One pass over the instances instead of a [switch_members] scan per
     switch: collect members keyed by their switch, then emit in the
     [switches] order with members ascending (both as [switch_members]
     reports them). *)
  let members : (inst_id, inst_id list) Hashtbl.t = Hashtbl.create 97 in
  Vec.iteri
    (fun i inst ->
      if not inst.i_dead then
        match inst.i_vgnd with
        | Some sw -> Hashtbl.replace members sw (i :: Option.value (Hashtbl.find_opt members sw) ~default:[])
        | None -> ())
    t.insts;
  List.map
    (fun sw -> (sw, List.rev (Option.value (Hashtbl.find_opt members sw) ~default:[])))
    (switches t)

let total_area t =
  Vec.fold (fun acc inst -> if inst.i_dead then acc else acc +. inst.i_cell.Cell.area) 0.0 t.insts
