(** Reader for the structural-Verilog subset emitted by {!Writer}.

    Grammar: one [module] with a port list; [input]/[output]/[wire]
    declarations; gate instantiations with named pin connections; optional
    [// @clock] and [// @vgnd] directives. Cell names are resolved against
    the given library; sized sleep switches ([SW_W<w>p<d>]) are synthesized
    on demand. *)

exception Parse_error of string
(** Carries a message prefixed with [file:line:column:] locating the
    offending token. *)

val of_string : ?file:string -> lib:Smt_cell.Library.t -> string -> Netlist.t
(** [file] (default ["<netlist>"]) names the source in error messages. *)

val of_file : lib:Smt_cell.Library.t -> string -> Netlist.t
(** Errors carry the actual path. *)
