let buf_add_inst nl b iid =
  let cell = Netlist.cell nl iid in
  let pins =
    Netlist.conns nl iid
    |> List.map (fun (pin, nid) -> Printf.sprintf ".%s(%s)" pin (Netlist.net_name nl nid))
  in
  Buffer.add_string b
    (Printf.sprintf "  %s %s (%s);\n" cell.Smt_cell.Cell.name (Netlist.inst_name nl iid)
       (String.concat ", " pins))

let to_string nl =
  let b = Buffer.create 4096 in
  let ins = Netlist.inputs nl and outs = Netlist.outputs nl in
  let port_names = List.map fst ins @ List.map fst outs in
  Buffer.add_string b
    (Printf.sprintf "module %s (%s);\n" (Netlist.design_name nl)
       (String.concat ", " port_names));
  List.iter (fun (name, _) -> Buffer.add_string b (Printf.sprintf "  input %s;\n" name)) ins;
  List.iter (fun (name, _) -> Buffer.add_string b (Printf.sprintf "  output %s;\n" name)) outs;
  let is_port name = List.exists (fun (p, _) -> String.equal p name) (ins @ outs) in
  Netlist.iter_nets nl (fun nid ->
      let name = Netlist.net_name nl nid in
      if not (is_port name) then Buffer.add_string b (Printf.sprintf "  wire %s;\n" name));
  List.iter
    (fun (name, nid) ->
      if Netlist.is_clock_net nl nid then
        Buffer.add_string b (Printf.sprintf "  // @clock %s\n" name))
    ins;
  Netlist.iter_insts nl (fun iid -> buf_add_inst nl b iid);
  Netlist.iter_insts nl (fun iid ->
      match Netlist.vgnd_switch nl iid with
      | None -> ()
      | Some sw ->
        Buffer.add_string b
          (Printf.sprintf "  // @vgnd %s %s\n" (Netlist.inst_name nl iid)
             (Netlist.inst_name nl sw)));
  List.iter
    (fun (dom, mte) ->
      Buffer.add_string b
        (Printf.sprintf "  // @domain %s %s\n" dom
           (match mte with Some nid -> Netlist.net_name nl nid | None -> "-")))
    (Netlist.domains nl);
  Netlist.iter_insts nl (fun iid ->
      match Netlist.inst_domain nl iid with
      | None -> ()
      | Some dom ->
        Buffer.add_string b
          (Printf.sprintf "  // @member %s %s\n" (Netlist.inst_name nl iid) dom));
  Netlist.iter_insts nl (fun iid ->
      if Netlist.is_isolation nl iid then
        Buffer.add_string b
          (Printf.sprintf "  // @isolation %s\n" (Netlist.inst_name nl iid)));
  Buffer.add_string b "endmodule\n";
  Buffer.contents b

let to_file nl path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string nl))
