(** The netlist-level piece of the paper's holder rule.

    The full structural validator that used to live here returned bare
    strings; it has been re-expressed on typed violations as
    [Smt_check.Drc.check], with [Smt_check.Drc.validate] as the
    string-compatible shim.  What remains is the one predicate the MT
    transformations themselves need while they run (switch insertion,
    holder minimization, repair), which must stay below [lib/check] in
    the dependency order. *)

val holder_required : Netlist.t -> Netlist.net_id -> bool
(** The paper's rule: an output holder is unnecessary exactly when all
    fanouts of the MT-cell are themselves MT-cells (their inputs float
    together in standby). Primary outputs and flip-flop/holder-free sinks
    need the value held. Returns false for nets not driven by an MT-cell. *)
