module Library = Smt_cell.Library

exception Parse_error of string

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Dot
  | Directive of string list  (** words of a [// @...] comment *)
  | Eof

type lexer = {
  text : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (** offset of the current line's first character *)
  mutable tok_line : int;  (** position of the last token handed out *)
  mutable tok_col : int;
  mutable peeked : (token * int * int) option;
}

(* Errors point at the start of the offending token (or, while lexing, the
   current character), as file:line:column. *)
let fail lx msg =
  raise (Parse_error (Printf.sprintf "%s:%d:%d: %s" lx.file lx.tok_line lx.tok_col msg))

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  || c = '[' || c = ']'

let mark lx =
  lx.tok_line <- lx.line;
  lx.tok_col <- lx.pos - lx.bol + 1

let rec lex_token lx =
  mark lx;
  if lx.pos >= String.length lx.text then Eof
  else
    let c = lx.text.[lx.pos] in
    match c with
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      lex_token lx
    | '\n' ->
      lx.pos <- lx.pos + 1;
      lx.line <- lx.line + 1;
      lx.bol <- lx.pos;
      lex_token lx
    | '/' when lx.pos + 1 < String.length lx.text && lx.text.[lx.pos + 1] = '/' ->
      let eol =
        match String.index_from_opt lx.text lx.pos '\n' with
        | Some i -> i
        | None -> String.length lx.text
      in
      let body = String.sub lx.text (lx.pos + 2) (eol - lx.pos - 2) in
      lx.pos <- eol;
      let words =
        String.split_on_char ' ' (String.trim body) |> List.filter (fun s -> s <> "")
      in
      (match words with
      | w :: _ when String.length w > 0 && w.[0] = '@' -> Directive words
      | _ -> lex_token lx)
    | '(' -> lx.pos <- lx.pos + 1; Lparen
    | ')' -> lx.pos <- lx.pos + 1; Rparen
    | ';' -> lx.pos <- lx.pos + 1; Semi
    | ',' -> lx.pos <- lx.pos + 1; Comma
    | '.' -> lx.pos <- lx.pos + 1; Dot
    | c when is_ident_char c ->
      let start = lx.pos in
      while lx.pos < String.length lx.text && is_ident_char lx.text.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      Ident (String.sub lx.text start (lx.pos - start))
    | c -> fail lx (Printf.sprintf "unexpected character %C" c)

let next lx =
  match lx.peeked with
  | Some (t, l, c) ->
    lx.peeked <- None;
    lx.tok_line <- l;
    lx.tok_col <- c;
    t
  | None -> lex_token lx

let peek lx =
  match lx.peeked with
  | Some (t, _, _) -> t
  | None ->
    let t = lex_token lx in
    lx.peeked <- Some (t, lx.tok_line, lx.tok_col);
    t

let expect_ident lx =
  match next lx with Ident s -> s | _ -> fail lx "identifier expected"

let expect lx tok what =
  let got = next lx in
  if got <> tok then fail lx (what ^ " expected")

(* Sleep switches are synthesized per width, so "SW_W4p2" may not pre-exist
   in the library. *)
let resolve_cell lx lib name =
  match Library.find_opt lib name with
  | Some c -> c
  | None ->
    if String.length name > 4 && String.sub name 0 4 = "SW_W" then begin
      let spec = String.sub name 4 (String.length name - 4) in
      match String.split_on_char 'p' spec with
      | [ units; tenths ] -> (
        match (int_of_string_opt units, int_of_string_opt tenths) with
        | Some u, Some d -> Library.switch lib ~width:(float_of_int u +. (float_of_int d /. 10.0))
        | _ -> fail lx (Printf.sprintf "bad switch cell name %s" name))
      | _ -> fail lx (Printf.sprintf "bad switch cell name %s" name)
    end
    else fail lx (Printf.sprintf "unknown cell %s" name)

type decl = Decl_input | Decl_output | Decl_wire

let of_string ?(file = "<netlist>") ~lib text =
  let lx =
    { text; file; pos = 0; line = 1; bol = 0; tok_line = 1; tok_col = 1; peeked = None }
  in
  let rec skip_directives acc =
    match peek lx with
    | Directive d ->
      ignore (next lx);
      skip_directives (d :: acc)
    | _ -> List.rev acc
  in
  ignore (skip_directives []);
  (match next lx with
  | Ident "module" -> ()
  | _ -> fail lx "module expected");
  let design = expect_ident lx in
  expect lx Lparen "(";
  let rec ports acc =
    match next lx with
    | Rparen -> List.rev acc
    | Ident name -> (
      match next lx with
      | Comma -> ports (name :: acc)
      | Rparen -> List.rev (name :: acc)
      | _ -> fail lx ", or ) expected in port list")
    | _ -> fail lx "port name expected"
  in
  let _port_list = ports [] in
  expect lx Semi ";";
  let nl = Netlist.create ~name:design ~lib in
  (* First pass over the body: collect declarations, instances, directives. *)
  let decls = ref [] and insts = ref [] and directives = ref [] in
  let parse_conn () =
    expect lx Dot ".";
    let pin = expect_ident lx in
    expect lx Lparen "(";
    let net = expect_ident lx in
    expect lx Rparen ")";
    (pin, net)
  in
  let rec body () =
    match next lx with
    | Ident "endmodule" -> ()
    | Ident "input" ->
      decls := (Decl_input, expect_ident lx) :: !decls;
      expect lx Semi ";";
      body ()
    | Ident "output" ->
      decls := (Decl_output, expect_ident lx) :: !decls;
      expect lx Semi ";";
      body ()
    | Ident "wire" ->
      decls := (Decl_wire, expect_ident lx) :: !decls;
      expect lx Semi ";";
      body ()
    | Ident cell_name ->
      let inst_name = expect_ident lx in
      expect lx Lparen "(";
      let rec conns acc =
        let c = parse_conn () in
        match next lx with
        | Comma -> conns (c :: acc)
        | Rparen -> List.rev (c :: acc)
        | _ -> fail lx ", or ) expected in connection list"
      in
      let pins = if peek lx = Rparen then (ignore (next lx); []) else conns [] in
      expect lx Semi ";";
      insts := (cell_name, inst_name, pins) :: !insts;
      body ()
    | Directive d ->
      directives := d :: !directives;
      body ()
    | Eof -> fail lx "endmodule expected"
    | Lparen | Rparen | Semi | Comma | Dot -> fail lx "statement expected"
  in
  body ();
  let decls = List.rev !decls and insts = List.rev !insts and directives = List.rev !directives in
  let clock_nets =
    List.filter_map
      (function [ "@clock"; n ] -> Some n | _ -> None)
      directives
  in
  let is_clock n = List.mem n clock_nets in
  List.iter
    (fun (d, name) ->
      match d with
      | Decl_input -> ignore (Netlist.add_input ~clock:(is_clock name) nl name)
      | Decl_output -> ignore (Netlist.add_output nl name)
      | Decl_wire -> ignore (Netlist.add_net nl name))
    decls;
  let net_of name =
    match Netlist.find_net nl name with
    | Some nid -> nid
    | None -> Netlist.add_net nl name
  in
  List.iter
    (fun (cell_name, inst_name, pins) ->
      let cell = resolve_cell lx lib cell_name in
      let pins = List.map (fun (p, n) -> (p, net_of n)) pins in
      ignore (Netlist.add_inst nl ~name:inst_name cell pins))
    insts;
  List.iter
    (fun d ->
      match d with
      | [ "@vgnd"; inst; sw ] -> (
        match (Netlist.find_inst nl inst, Netlist.find_inst nl sw) with
        | Some i, Some s -> Netlist.set_vgnd_switch nl i (Some s)
        | _ ->
          raise
            (Parse_error
               (Printf.sprintf "%s: @vgnd refers to unknown instance %s or %s" file inst
                  sw)))
      | [ "@domain"; dom; mte ] ->
        let mte_net =
          if String.equal mte "-" then None
          else
            match Netlist.find_net nl mte with
            | Some nid -> Some nid
            | None ->
              raise
                (Parse_error
                   (Printf.sprintf "%s: @domain %s refers to unknown net %s" file dom mte))
        in
        Netlist.add_domain nl ~name:dom ~mte:mte_net
      | [ "@member"; inst; dom ] -> (
        match Netlist.find_inst nl inst with
        | Some i -> (
          try Netlist.set_inst_domain nl i (Some dom)
          with Invalid_argument _ ->
            raise
              (Parse_error
                 (Printf.sprintf "%s: @member %s refers to unknown domain %s" file
                    inst dom)))
        | None ->
          raise
            (Parse_error
               (Printf.sprintf "%s: @member refers to unknown instance %s" file inst)))
      | [ "@isolation"; inst ] -> (
        match Netlist.find_inst nl inst with
        | Some i -> Netlist.set_isolation nl i true
        | None ->
          raise
            (Parse_error
               (Printf.sprintf "%s: @isolation refers to unknown instance %s" file inst)))
      | _ -> ())
    directives;
  nl

let of_file ~lib path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string ~file:path ~lib text)
