module Cell = Smt_cell.Cell
module Vth = Smt_cell.Vth

let mt_inst nl iid = Cell.is_mt (Netlist.cell nl iid)

(* Only VGND-style MT-cells need external holders: the conventional
   embedded MT-cell carries its own (paper Fig. 1a). *)
let floating_driver nl iid =
  match (Netlist.cell nl iid).Cell.style with
  | Vth.Mt_vgnd | Vth.Mt_no_vgnd -> true
  | Vth.Plain | Vth.Mt_embedded -> false

let holder_required nl nid =
  match Netlist.driver nl nid with
  | None -> false
  | Some d ->
    floating_driver nl d.Netlist.inst
    && (Netlist.is_po nl nid
       || List.exists (fun (p : Netlist.pin) -> not (mt_inst nl p.Netlist.inst))
            (Netlist.sinks nl nid))
