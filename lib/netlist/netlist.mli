(** Gate-level netlist graph.

    Instances and nets live in dense id-indexed vectors; connectivity is
    kept on both sides (instance pin list, net driver/sink lists) so that
    timing, placement, and the MT transformations can walk either way.

    Three connections get special treatment, matching the paper's circuit
    style:
    - an MT-cell's VGND port is not an ordinary pin: it is recorded as the
      id of the sleep-switch instance the cell hangs from
      ([vgnd_switch] / [set_vgnd_switch]);
    - an output holder is a weak keeper on a net, not a second driver; it is
      recorded on the net ([holder_of]) and its MTE pin is a normal input;
    - clock nets are flagged so that STA and CTS can find them. *)

type inst_id = int
type net_id = int

type pin = { inst : inst_id; pin_name : string }

type t

exception Combinational_cycle of string

val create : name:string -> lib:Smt_cell.Library.t -> t
val design_name : t -> string
val lib : t -> Smt_cell.Library.t

(** {1 Nets and ports} *)

val add_net : ?clock:bool -> t -> string -> net_id
(** Fresh net. Raises [Invalid_argument] if the name exists. *)

val fresh_net : t -> string -> net_id
(** Fresh net with a uniquified name derived from the stem. *)

val add_input : ?clock:bool -> t -> string -> net_id
(** Primary input port plus its net. *)

val add_output : t -> string -> net_id
(** Primary output port plus its net. *)

val mark_output : t -> net_id -> unit
(** Expose an existing net as a primary output. *)

val mark_clock : t -> net_id -> unit
(** Flag a net as part of the clock network (CTS uses this for the tree
    nets it creates so timing analysis keeps treating them as clock). *)

val net_count : t -> int
val net_name : t -> net_id -> string
val find_net : t -> string -> net_id option
val is_pi : t -> net_id -> bool
val is_po : t -> net_id -> bool
val is_clock_net : t -> net_id -> bool
val driver : t -> net_id -> pin option
val sinks : t -> net_id -> pin list
val holder_of : t -> net_id -> inst_id option
val inputs : t -> (string * net_id) list
val outputs : t -> (string * net_id) list
val clock_net : t -> net_id option

(** {1 Instances} *)

val add_inst : t -> name:string -> Smt_cell.Cell.t -> (string * net_id) list -> inst_id
(** Create an instance and connect the given pins. Pin directions are
    derived from the cell kind. Raises [Invalid_argument] on duplicate
    names, unknown pins, or a second strong driver on a net. *)

val fresh_inst_name : t -> string -> string

val inst_count : t -> int
(** Total slots including removed instances; use [live_insts] to iterate. *)

val inst_name : t -> inst_id -> string
val find_inst : t -> string -> inst_id option
val cell : t -> inst_id -> Smt_cell.Cell.t
val conns : t -> inst_id -> (string * net_id) list
val pin_net : t -> inst_id -> string -> net_id option
val output_net : t -> inst_id -> net_id option
(** The net on the instance's (single) output pin, if connected. *)

val is_dead : t -> inst_id -> bool

val replace_cell : t -> inst_id -> Smt_cell.Cell.t -> unit
(** Swap the library cell (e.g. low-Vth -> high-Vth -> MT variant). The new
    cell must expose the same pin names; raises [Invalid_argument]
    otherwise. *)

val connect : t -> inst_id -> string -> net_id -> unit
val disconnect : t -> inst_id -> string -> unit

val move_sink : t -> from_net:net_id -> pin -> to_net:net_id -> unit
(** Re-home one sink pin onto another net (buffer splicing). *)

val remove_inst : t -> inst_id -> unit
(** Unlink every pin and tombstone the instance. *)

val set_vgnd_switch : t -> inst_id -> inst_id option -> unit
(** Attach/detach an MT-cell's VGND port to a sleep-switch instance.
    Raises [Invalid_argument] if the cell has no VGND port or the target is
    not a sleep switch. *)

val vgnd_switch : t -> inst_id -> inst_id option

val set_holder : t -> net_id -> inst_id option -> unit
(** Record a holder instance as the keeper of a net. *)

(** {1 Power domains}

    A domain is a named group of instances that sleeps (or stays awake)
    together.  A domain with an MTE enable net is sleepable: asserting
    that net cuts the domain's MT-cells.  A domain without one is
    always-on.  Membership is per instance; unassigned instances belong
    to the implicit always-on domain.  Isolation marks declare a holder
    as a boundary (level) cell so analyses and generators can tell a
    crossing keeper from an ordinary output holder.  The table survives
    {!Writer}/{!Parser} round-trips via [@domain]/[@member]/[@isolation]
    pragmas. *)

val add_domain : t -> name:string -> mte:net_id option -> unit
(** Declare a domain; [mte = None] declares an always-on domain.
    Raises [Invalid_argument] on a duplicate name. *)

val domains : t -> (string * net_id option) list
(** Declared domains in declaration order. *)

val set_inst_domain : t -> inst_id -> string option -> unit
(** Assign (or clear) an instance's domain.  Raises [Invalid_argument]
    on an undeclared domain name. *)

val inst_domain : t -> inst_id -> string option

val set_isolation : t -> inst_id -> bool -> unit
(** Mark an instance as a declared isolation/level-holder cell at a
    domain boundary. *)

val is_isolation : t -> inst_id -> bool

(** {1 Touched-net journal}

    Every structural mutation (pin attach/detach, cell swap, switch or
    holder rewiring, domain assignment) records the nets whose standby
    value could have changed.  An incremental analysis drains the
    journal to learn where to re-seed; see [Smt_verify.Verify.update]. *)

val touch : t -> net_id -> unit
(** Record a net as dirty (mutators call this themselves; exposed for
    callers that invalidate analysis state out of band). *)

val drain_touched : t -> net_id list
(** The dirty nets accumulated since the last drain, sorted and
    deduplicated; clears the journal. *)

(** {1 Traversal} *)

val live_insts : t -> inst_id list
val iter_insts : t -> (inst_id -> unit) -> unit
(** Live instances only. *)

val iter_nets : t -> (net_id -> unit) -> unit

val fanout_insts : t -> inst_id -> inst_id list
(** Distinct instances reading the instance's output net. *)

val fanin_insts : t -> inst_id -> inst_id list
(** Distinct instances driving this instance's input pins. *)

val topo_order : t -> inst_id list
(** Combinational instances in topological (fanin-first) order; flip-flops,
    switches, and holders are excluded (they are sources/sinks of the
    combinational frame). Raises [Combinational_cycle]. *)

val switch_members : t -> inst_id -> inst_id list
(** MT-cells hanging from the given sleep switch. *)

val switches : t -> inst_id list
(** All live sleep-switch instances. *)

val switch_groups : t -> (inst_id * inst_id list) list
(** Every live sleep switch paired with its members, in [switches] order
    with members as [switch_members] lists them — but built in one pass
    over the instances, where a [switch_members] call per switch is
    O(switches × instances).  Callers iterating all switches should use
    this. *)

val total_area : t -> float
(** Sum of live instance areas. *)
