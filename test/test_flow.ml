module Netlist = Smt_netlist.Netlist
module Check = Smt_check.Drc
module Clone = Smt_netlist.Clone
module Nl_stats = Smt_netlist.Nl_stats
module Flow = Smt_core.Flow
module Compare = Smt_core.Compare
module Library = Smt_cell.Library
module Generators = Smt_circuits.Generators
module Suite = Smt_circuits.Suite

let lib = Library.default ()

(* A mid-size registered circuit: big enough for clustering to matter,
   small enough for fast tests. *)
let gen () = Generators.multiplier ~name:"m8" ~bits:8 lib

let fast_options = { Flow.default_options with Flow.activity_cycles = 48 }

let reports =
  lazy
    (match Flow.completed (Flow.run_all ~options:fast_options gen) with
    | [ d; c; i ] -> (d, c, i)
    | _ -> assert false)

let test_all_flows_meet_timing () =
  let d, c, i = Lazy.force reports in
  List.iter
    (fun (r : Flow.report) ->
      Alcotest.(check bool)
        (Flow.technique_name r.Flow.technique ^ " meets setup")
        true r.Flow.timing_met;
      Alcotest.(check bool)
        (Flow.technique_name r.Flow.technique ^ " meets hold")
        true r.Flow.hold_met)
    [ d; c; i ]

let test_same_clock_period () =
  let d, c, i = Lazy.force reports in
  Alcotest.(check (float 1e-6)) "dual = conventional" d.Flow.clock_period c.Flow.clock_period;
  Alcotest.(check (float 1e-6)) "dual = improved" d.Flow.clock_period i.Flow.clock_period

let test_leakage_ordering () =
  let d, c, i = Lazy.force reports in
  Alcotest.(check bool) "dual >> conventional" true
    (d.Flow.standby_nw > 2.0 *. c.Flow.standby_nw);
  Alcotest.(check bool) "conventional > improved" true
    (c.Flow.standby_nw > i.Flow.standby_nw)

let test_area_ordering () =
  let d, c, i = Lazy.force reports in
  Alcotest.(check bool) "conventional largest" true (c.Flow.area > i.Flow.area);
  Alcotest.(check bool) "improved above dual" true (i.Flow.area > d.Flow.area)

let test_structure_counts () =
  let d, c, i = Lazy.force reports in
  Alcotest.(check int) "dual has no switches" 0 d.Flow.n_switches;
  Alcotest.(check int) "dual has no MT cells" 0 d.Flow.n_mt_cells;
  Alcotest.(check int) "conventional: switches embedded, none standalone" 0 c.Flow.n_switches;
  Alcotest.(check bool) "conventional has MT cells" true (c.Flow.n_mt_cells > 0);
  Alcotest.(check bool) "improved has clusters" true (i.Flow.n_clusters > 0);
  Alcotest.(check int) "one switch per cluster" i.Flow.n_clusters i.Flow.n_switches;
  Alcotest.(check bool) "plural cells per switch (the paper's point)" true
    (i.Flow.n_mt_cells > i.Flow.n_switches);
  Alcotest.(check int) "same MT population in both SMT flows" c.Flow.n_mt_cells
    i.Flow.n_mt_cells;
  Alcotest.(check bool) "holders only in improved" true
    (i.Flow.n_holders > 0 && c.Flow.n_holders = 0);
  Alcotest.(check bool) "some holders avoided" true (i.Flow.holders_avoided > 0)

let test_bounce_under_limit () =
  let _, _, i = Lazy.force reports in
  let tech = Library.tech lib in
  Alcotest.(check int) "no violations" 0 i.Flow.bounce_violations;
  Alcotest.(check bool) "worst under limit" true
    (i.Flow.worst_bounce <= tech.Smt_cell.Tech.bounce_limit +. 1e-9);
  Alcotest.(check bool) "bounce nonzero (switches really shared)" true
    (i.Flow.worst_bounce > 0.0)

let test_switch_width_savings () =
  let _, c, i = Lazy.force reports in
  (* total footer width: improved (shared, activity-sized) should be well
     below conventional (per-cell worst-case) *)
  Alcotest.(check bool) "shared switches are narrower in total" true
    (i.Flow.total_switch_width < 0.6 *. c.Flow.total_switch_width)

let test_final_netlists_valid () =
  (* run flows on fresh netlists and validate the survivors *)
  let check_one technique phase =
    let nl = gen () in
    ignore (Flow.run ~options:fast_options technique nl);
    Alcotest.(check (list string))
      (Flow.technique_name technique ^ " valid")
      [] (Check.validate ~phase nl)
  in
  check_one Flow.Dual_vth Check.Pre_mt;
  check_one Flow.Improved_smt Check.Post_mt;
  check_one Flow.Conventional_smt Check.Post_mt

let test_flows_preserve_function () =
  List.iter
    (fun technique ->
      let nl = gen () in
      let golden = Clone.copy nl in
      (* flows add an MTE input; give the golden one too so interfaces match *)
      ignore (Flow.run ~options:fast_options technique nl);
      (match Netlist.find_net golden "MTE" with
      | None when Netlist.find_net nl "MTE" <> None ->
        ignore (Netlist.add_input golden "MTE")
      | Some _ | None -> ());
      Alcotest.(check bool)
        (Flow.technique_name technique ^ " equivalent")
        true
        (Smt_sim.Equiv.equivalent ~vectors:32 golden nl))
    [ Flow.Dual_vth; Flow.Conventional_smt; Flow.Improved_smt ]

let test_stages_recorded () =
  let nl = gen () in
  let r = Flow.run ~options:fast_options Flow.Improved_smt nl in
  let names = List.map (fun s -> s.Flow.stage_name) r.Flow.stages in
  Alcotest.(check bool) ">= 7 stages" true (List.length names >= 7);
  (* the Fig.4 ordering: synthesis before replacement before clustering
     before routing before ECO *)
  let index name =
    let rec find i = function
      | [] -> Alcotest.fail (name ^ " stage missing")
      | s :: rest ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec loop j = j + nn <= nh && (String.sub hay j nn = needle || loop (j + 1)) in
          loop 0
        in
        if contains s name then i else find (i + 1) rest
    in
    find 0 names
  in
  Alcotest.(check bool) "synthesis first" true (index "physical-synthesis" < index "high-Vth");
  Alcotest.(check bool) "replacement before insertion" true
    (index "high-Vth" < index "switch & holder");
  Alcotest.(check bool) "insertion before clustering" true
    (index "switch & holder" < index "clustering");
  Alcotest.(check bool) "clustering before routing" true (index "clustering" < index "routing");
  Alcotest.(check bool) "routing before re-optimization" true
    (index "routing" < index "re-optimization");
  Alcotest.(check bool) "ECO last" true (index "ECO" = List.length names - 1)

let test_initial_switch_bounce_story () =
  (* the single initial switch must violate the bounce limit, and the
     clustering stage must fix it — the reason the optimizer exists *)
  let nl = gen () in
  let r = Flow.run ~options:fast_options Flow.Improved_smt nl in
  let stage name =
    List.find
      (fun s ->
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec loop j = j + nn <= nh && (String.sub hay j nn = needle || loop (j + 1)) in
          loop 0
        in
        contains s.Flow.stage_name name)
      r.Flow.stages
  in
  let tech = Library.tech lib in
  let initial = stage "initial structure" in
  let after = stage "clustering" in
  Alcotest.(check bool) "initial structure bounces over the limit" true
    (initial.Flow.stage_worst_bounce > tech.Smt_cell.Tech.bounce_limit);
  Alcotest.(check bool) "clustering brings it under" true
    (after.Flow.stage_worst_bounce <= tech.Smt_cell.Tech.bounce_limit +. 1e-9)

let test_ablation_no_reopt_leaves_violations () =
  let nl = gen () in
  let r =
    Flow.run
      ~options:{ fast_options with Flow.reoptimize = false; Flow.detour = 1.5 }
      Flow.Improved_smt nl
  in
  Alcotest.(check bool) "skipping re-optimization leaves routed bounce violations" true
    (r.Flow.bounce_violations > 0);
  let nl2 = gen () in
  let r2 =
    Flow.run
      ~options:{ fast_options with Flow.reoptimize = true; Flow.detour = 1.5 }
      Flow.Improved_smt nl2
  in
  Alcotest.(check int) "re-optimization clears them" 0 r2.Flow.bounce_violations

let test_ablation_holders () =
  let nl = gen () in
  let r_min = Flow.run ~options:fast_options Flow.Improved_smt nl in
  let nl2 = gen () in
  let r_all =
    Flow.run ~options:{ fast_options with Flow.minimize_holders = false } Flow.Improved_smt nl2
  in
  Alcotest.(check bool) "holder minimization saves area" true (r_min.Flow.area < r_all.Flow.area);
  Alcotest.(check bool) "and leakage" true (r_min.Flow.standby_nw < r_all.Flow.standby_nw)

let test_table1_row () =
  let row = Compare.table1_row ~options:fast_options gen in
  (match row.Compare.entries with
  | [ d; c; i ] ->
    Alcotest.(check (float 1e-9)) "dual area normalized" 100.0 d.Compare.area_pct;
    Alcotest.(check (float 1e-9)) "dual leakage normalized" 100.0 d.Compare.leakage_pct;
    Alcotest.(check bool) "con area > 100%" true (c.Compare.area_pct > 100.0);
    Alcotest.(check bool) "imp between" true
      (i.Compare.area_pct > 100.0 && i.Compare.area_pct < c.Compare.area_pct);
    Alcotest.(check bool) "leakages below 100%" true
      (c.Compare.leakage_pct < 100.0 && i.Compare.leakage_pct < c.Compare.leakage_pct)
  | _ -> Alcotest.fail "expected three entries");
  let area_saving, leak_saving = Compare.improvement row in
  Alcotest.(check bool) "improvement positive" true (area_saving > 0.0 && leak_saving > 0.0);
  let rendered = Compare.render [ row ] in
  Alcotest.(check bool) "renders" true (String.length rendered > 100);
  Alcotest.(check bool) "details render" true
    (String.length (Compare.render_details [ row ]) > 100)

let test_mte_fanout_cap_respected () =
  let nl = gen () in
  let r =
    Flow.run
      ~options:{ fast_options with Flow.mte_max_fanout = Some 5 }
      Flow.Improved_smt nl
  in
  ignore r;
  match Netlist.find_net nl "MTE" with
  | Some mte ->
    Alcotest.(check bool) "every MTE stage within the cap" true
      (Smt_core.Mte.max_stage_fanout nl mte <= 5)
  | None -> Alcotest.fail "MTE net missing"

let test_flow_deterministic () =
  let r1 = Flow.run ~options:fast_options Flow.Improved_smt (gen ()) in
  let r2 = Flow.run ~options:fast_options Flow.Improved_smt (gen ()) in
  Alcotest.(check (float 1e-9)) "same area" r1.Flow.area r2.Flow.area;
  Alcotest.(check (float 1e-9)) "same leakage" r1.Flow.standby_nw r2.Flow.standby_nw;
  Alcotest.(check int) "same clusters" r1.Flow.n_clusters r2.Flow.n_clusters

let test_flow_on_suite_circuits () =
  (* smoke: every named circuit survives the improved flow *)
  List.iter
    (fun (name, g) ->
      if name <> "c17" && name <> "fig23" then begin
        let nl = g lib in
        let r = Flow.run ~options:fast_options Flow.Improved_smt nl in
        Alcotest.(check bool) (name ^ " produces a report") true (r.Flow.area > 0.0)
      end)
    [ ("tiny", Suite.tiny); ("alu8", fun l -> Generators.alu ~name:"alu8" ~bits:8 l) ]

let () =
  Alcotest.run "smt_flow"
    [
      ( "outcomes",
        [
          Alcotest.test_case "timing met everywhere" `Quick test_all_flows_meet_timing;
          Alcotest.test_case "same clock period" `Quick test_same_clock_period;
          Alcotest.test_case "leakage ordering" `Quick test_leakage_ordering;
          Alcotest.test_case "area ordering" `Quick test_area_ordering;
          Alcotest.test_case "structure counts" `Quick test_structure_counts;
          Alcotest.test_case "bounce under limit" `Quick test_bounce_under_limit;
          Alcotest.test_case "switch width savings" `Quick test_switch_width_savings;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "final netlists valid" `Quick test_final_netlists_valid;
          Alcotest.test_case "function preserved" `Slow test_flows_preserve_function;
          Alcotest.test_case "MTE fanout cap" `Quick test_mte_fanout_cap_respected;
          Alcotest.test_case "deterministic" `Quick test_flow_deterministic;
          Alcotest.test_case "suite circuits" `Slow test_flow_on_suite_circuits;
        ] );
      ( "stages",
        [
          Alcotest.test_case "fig.4 ordering" `Quick test_stages_recorded;
          Alcotest.test_case "initial switch bounce story" `Quick test_initial_switch_bounce_story;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "no reopt leaves violations" `Quick test_ablation_no_reopt_leaves_violations;
          Alcotest.test_case "holder minimization" `Quick test_ablation_holders;
        ] );
      ("table1", [ Alcotest.test_case "row shape" `Quick test_table1_row ]);
    ]
